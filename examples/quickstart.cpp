// Quickstart: list all K4 instances of a random graph with the paper's
// CONGEST algorithm (Theorem 1.1) and validate against the sequential
// ground-truth enumerator.
//
//   ./example_quickstart [n] [m] [p]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace dcl;
  const NodeId n = (argc > 1) ? std::atoi(argv[1]) : 150;
  const EdgeId m = (argc > 2) ? std::atoll(argv[2]) : 8 * n;
  const int p = (argc > 3) ? std::atoi(argv[3]) : 4;

  // 1. Make a graph (any dcl::Graph works — see graph/graph_io.h to load
  //    your own edge list).
  Rng rng(42);
  const Graph g = erdos_renyi_gnm(n, m, rng);
  std::printf("graph: n=%d, m=%lld, max degree %d\n", g.node_count(),
              static_cast<long long>(g.edge_count()), g.max_degree());

  // 2. Run the distributed lister. Every node of the simulated CONGEST
  //    network outputs cliques; their union is the answer.
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = 1;
  ListingOutput output(g.node_count());
  const KpListResult result = list_kp_collect(g, cfg, output);

  std::printf("listed %llu unique K%d instances in %.1f simulated rounds "
              "(%llu reports, duplication x%.2f)\n",
              static_cast<unsigned long long>(result.unique_cliques), p,
              result.total_rounds(),
              static_cast<unsigned long long>(result.total_reports),
              result.duplication_factor);
  result.ledger.print_breakdown(std::cout);

  // 3. Validate against the sequential oracle.
  const CliqueSet truth{list_k_cliques(g, p)};
  if (output.cliques() == truth) {
    std::printf("validation: OK — union of node outputs == exact K%d set "
                "(%zu cliques)\n",
                p, truth.size());
    return 0;
  }
  std::printf("validation: MISMATCH (%zu expected, %llu listed)\n",
              truth.size(),
              static_cast<unsigned long long>(output.unique_count()));
  return 1;
}

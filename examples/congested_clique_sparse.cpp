// Theorem 1.3 demo: sparsity-aware Kp listing in the CONGESTED CLIQUE.
//
// Sweeps the input density for a fixed node count and shows the
// Θ̃(1 + m/n^{1+2/p}) behaviour: constant rounds below the m* = n^{1+2/p}
// crossover, then linear growth — while the oblivious (Dolev-style)
// baseline pays its fixed worst-case schedule regardless. Also
// demonstrates the fake-edge padding mechanism of Section 4.
//
//   ./example_congested_clique_sparse [n] [p]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "core/sparse_cc.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace dcl;
  const NodeId n = (argc > 1) ? std::atoi(argv[1]) : 216;
  const int p = (argc > 2) ? std::atoi(argv[2]) : 3;

  const double crossover = std::pow(static_cast<double>(n), 1.0 + 2.0 / p);
  std::printf("CONGESTED CLIQUE, n=%d, p=%d, crossover m* = n^{1+2/p} = "
              "%.0f edges\n\n",
              n, p, crossover);
  std::printf("%10s %10s %14s %14s %10s\n", "m", "m/m*", "sparse-aware",
              "oblivious", "cliques");
  for (double factor = 0.125; factor <= 8.0; factor *= 2.0) {
    const auto m = std::min<EdgeId>(
        static_cast<EdgeId>(n) * (n - 1) / 3,
        static_cast<EdgeId>(factor * crossover));
    Rng rng(static_cast<std::uint64_t>(m));
    const Graph g = erdos_renyi_gnm(n, m, rng);
    SparseCcConfig cfg;
    cfg.p = p;
    cfg.seed = 5;
    ListingOutput out(n);
    const auto result = sparse_cc_list(g, cfg, out);
    ListingOutput out2(n);
    const auto oblivious = oblivious_cc_list(g, p, out2);
    const bool ok = out.cliques() == out2.cliques();
    std::printf("%10lld %10.3f %14.1f %14.1f %10llu%s\n",
                static_cast<long long>(m),
                static_cast<double>(m) / crossover, result.total_rounds(),
                oblivious.total_rounds(),
                static_cast<unsigned long long>(result.unique_cliques),
                ok ? "" : "  DISAGREE");
  }

  // Fake-edge padding (Section 4): engage it explicitly and verify no fake
  // edge leaks into the output.
  Rng rng(9);
  const Graph sparse_g = erdos_renyi_gnm(n, 4 * n, rng);
  SparseCcConfig padded;
  padded.p = p;
  padded.pad_factor = 1.0;
  ListingOutput out(n);
  const auto result = sparse_cc_list(sparse_g, padded, out);
  const auto truth = count_k_cliques(sparse_g, p);
  std::printf("\nfake-edge padding demo: %lld fake edges added; listed "
              "%llu cliques, exact count %llu — %s\n",
              static_cast<long long>(result.fake_edges),
              static_cast<unsigned long long>(result.unique_cliques),
              static_cast<unsigned long long>(truth),
              result.unique_cliques == truth ? "no leakage" : "LEAKED");
  return result.unique_cliques == truth ? 0 : 1;
}

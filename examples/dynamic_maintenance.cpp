// Example: maintaining the K4 set of an evolving social graph.
//
// A "recent interactions" graph never sits still: each tick some
// interactions expire and new ones arrive. Re-listing cliques from
// scratch per tick pays the whole graph; the batch-dynamic engine
// (src/dynamic/) pays only for the cliques that actually changed — the
// ListingDelta per batch is the stream a downstream consumer (alerting,
// feature extraction) would subscribe to.
//
// Doubles as an end-to-end smoke test: exits non-zero if the maintained
// set ever disagrees with a from-scratch recompute.
#include <cstdio>

#include "common/rng.h"
#include "dynamic/dynamic_lister.h"
#include "graph/workloads.h"

int main() {
  using namespace dcl;
  constexpr int kP = 4;

  Rng rng(2024);
  const UpdateStream stream = sliding_window_stream(
      /*n=*/160, /*batches=*/10, /*batch_size=*/220, /*window=*/3, rng);

  DynamicLister lister(Graph::from_edges(stream.n, stream.initial), kP);
  std::printf("tracking K%d over a sliding window of recent interactions\n",
              kP);
  for (std::size_t tick = 0; tick < stream.batches.size(); ++tick) {
    const ListingDelta delta = lister.apply(stream.batches[tick]);
    const DynamicBatchStats& s = lister.last_stats();
    std::printf(
        "tick %zu: %+lld/-%lld edges -> %zu new cliques, %zu dissolved "
        "(%llu live, witness A=%d)\n",
        tick, static_cast<long long>(s.inserted_edges),
        static_cast<long long>(s.erased_edges), delta.added.size(),
        delta.removed.size(),
        static_cast<unsigned long long>(s.clique_count),
        s.arboricity_witness);
    if (!delta.added.empty()) {
      const Clique& c = delta.added.front();
      std::printf("  e.g. newly formed: {%d, %d, %d, %d}\n", c[0], c[1], c[2],
                  c[3]);
    }
  }

  // The correctness contract, checked the expensive way once at the end.
  CliqueSet expected;
  for (const auto& c : list_k_cliques(lister.graph().snapshot(), kP)) {
    expected.insert(c);
  }
  const bool ok = lister.cliques() == expected &&
                  lister.fingerprint() == expected.fingerprint();
  std::printf("final check vs from-scratch recompute: %s\n",
              ok ? "match" : "MISMATCH");
  return ok ? 0 : 1;
}

// Social-network triad census: distributed triangle listing on a
// community-structured (stochastic block model) graph.
//
// Triangle counts per community are the classic "triadic closure" signal
// in network science. Here each simulated node learns the triangles it is
// part of via the paper's machinery at p = 3 (structurally the
// Chang–Pettie–Zhang lister the paper builds on), and we aggregate a
// per-community census — all from node-local outputs, as a real
// distributed deployment would.
//
//   ./example_social_triangles [communities] [community_size]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/baselines.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace dcl;
  const int communities = (argc > 1) ? std::atoi(argv[1]) : 4;
  const NodeId size = (argc > 2) ? std::atoi(argv[2]) : 60;

  Rng rng(7);
  std::vector<NodeId> blocks(static_cast<std::size_t>(communities), size);
  const Graph g = stochastic_block_model(blocks, 0.30, 0.02, rng);
  std::printf("social graph: %d communities x %d members, m=%lld\n",
              communities, size, static_cast<long long>(g.edge_count()));

  ListingOutput out(g.node_count());
  const auto result = chang_style_triangle_list(g, out, /*seed=*/7);
  std::printf("distributed triangle listing: %llu triangles in %.1f rounds\n",
              static_cast<unsigned long long>(result.unique_cliques),
              result.total_rounds());

  // Census: classify each triangle by how many communities it spans.
  auto community_of = [&](NodeId v) { return static_cast<int>(v / size); };
  std::vector<std::uint64_t> span_count(4, 0);
  std::vector<std::uint64_t> per_community(
      static_cast<std::size_t>(communities), 0);
  for (const auto& tri : out.cliques().to_vector()) {
    const int a = community_of(tri[0]);
    const int b = community_of(tri[1]);
    const int c = community_of(tri[2]);
    int distinct = 1 + (b != a) + (c != a && c != b);
    ++span_count[static_cast<std::size_t>(distinct)];
    if (distinct == 1) ++per_community[static_cast<std::size_t>(a)];
  }
  std::printf("\ntriad census:\n");
  std::printf("  intra-community triangles: %llu\n",
              static_cast<unsigned long long>(span_count[1]));
  std::printf("  spanning 2 communities:    %llu\n",
              static_cast<unsigned long long>(span_count[2]));
  std::printf("  spanning 3 communities:    %llu\n",
              static_cast<unsigned long long>(span_count[3]));
  for (int c = 0; c < communities; ++c) {
    std::printf("  community %d closes %llu triads\n", c,
                static_cast<unsigned long long>(
                    per_community[static_cast<std::size_t>(c)]));
  }

  // Sanity: the distributed census equals the centralized one.
  const auto truth = count_k_cliques(g, 3);
  std::printf("\ncentralized check: %llu triangles — %s\n",
              static_cast<unsigned long long>(truth),
              truth == result.unique_cliques ? "match" : "MISMATCH");
  return truth == result.unique_cliques ? 0 : 1;
}

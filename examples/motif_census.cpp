// Clique-motif census on a skewed (power-law) network: K4 and K5 counting
// with the paper's CONGEST lister vs the trivial-broadcast prior art.
//
// Power-law degree distributions are the stress case for the paper's
// heavy/light machinery (hubs are C-heavy for many clusters at once).
// This example runs both K4 variants (general Theorem 1.1 and the
// Theorem 1.2 specialization) plus K5, reports the motif counts, and
// compares simulated round costs against the trivial baseline.
//
//   ./example_motif_census [n] [avg_degree]
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

namespace {

void run_case(const dcl::Graph& g, int p, bool k4_fast) {
  using namespace dcl;
  KpConfig cfg;
  cfg.p = p;
  cfg.k4_fast = k4_fast;
  cfg.seed = 3;
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  ListingOutput trivial_out(g.node_count());
  const auto trivial = trivial_broadcast_list(g, p, trivial_out);
  const bool ok = out.cliques() == trivial_out.cliques();
  std::printf(
      "  K%d%-9s %8llu motifs | ours %9.1f rounds (msg-level %7.1f) | "
      "trivial %6.1f | %s\n",
      p, k4_fast ? " (fast)" : "",
      static_cast<unsigned long long>(result.unique_cliques),
      result.total_rounds(),
      result.ledger.rounds_of_kind(CostKind::exchange),
      trivial.total_rounds(), ok ? "agree" : "DISAGREE");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcl;
  const NodeId n = (argc > 1) ? std::atoi(argv[1]) : 300;
  const double avg_degree = (argc > 2) ? std::atof(argv[2]) : 24.0;

  Rng rng(13);
  const Graph g = power_law_chung_lu(n, 2.3, avg_degree, rng);
  std::printf("power-law graph: n=%d, m=%lld, max degree %d (hub), "
              "avg %.1f\n",
              g.node_count(), static_cast<long long>(g.edge_count()),
              g.max_degree(), g.average_degree());

  std::printf("\nmotif census (distributed vs trivial broadcast):\n");
  run_case(g, 4, /*k4_fast=*/false);
  run_case(g, 4, /*k4_fast=*/true);
  run_case(g, 5, /*k4_fast=*/false);

  // Clique number via the sequential Bron–Kerbosch oracle, for context.
  std::printf("\nclique number omega(G) = %d\n", clique_number(g));
  return 0;
}

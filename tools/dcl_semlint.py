#!/usr/bin/env python3
"""dcl_semlint — the libclang-backed semantic scale-safety analyzer.

`tools/dcl_lint.py` is a comment-stripping lexer: fast, dependency-free,
and honest about what it cannot see (docs/ANALYSIS.md used to keep a
"known limitations" list). This sibling tool closes those blind spots by
analyzing the *type-resolved AST* that clang's Python bindings expose over
the already-exported `compile_commands.json`: a member declared
`std::unordered_set` in a header is recognized as unordered in every
translation unit that iterates it, an `EdgeId` flowing into an `int` is a
narrowing no matter how many typedefs stand in between, and a 32-bit
product is 32-bit even when the surrounding expression is 64.

Rules (all blocking; the shared allow() grammar below can justify a site):

  sem-unordered-iter  Iteration over a std::unordered_map/unordered_set —
                      a range-for whose range is unordered-typed, or a
                      .begin()/.cbegin() call on an unordered-typed object
                      (lookup-only uses never call begin). Hash-iteration
                      order is implementation-defined; anything it feeds
                      can leak into fingerprints. Type-resolved: members
                      declared in headers are seen across TU boundaries,
                      the case the lexer documents as invisible.
  sem-narrow          Implicit conversion of a 64-bit integer expression
                      into a 32-bit-or-smaller integer (variable init,
                      assignment, compound assignment, call argument,
                      return). Edge-scale values (EdgeId, sizes, offsets,
                      phase traffic) silently truncate at m > 2^31.
                      Expressions containing an integer literal are
                      assumed range-bounded by the author (`x & 0xff`,
                      `e % 64`); explicit casts are the author's claim —
                      route them through dcl::to_node / dcl::to_edge
                      (src/graph/ids.h) to make the claim Debug-checked.
  sem-index-32        A for-loop induction variable of 32-bit integer type
                      compared against a 64-bit bound (edge_count(),
                      .size() of an edge-scale container): the loop wraps
                      before it covers the range.
  sem-mul-width       A product computed in 32 bits and then widened to a
                      64-bit target (implicitly or by an explicit cast of
                      the completed product): the PR 6 out-degree² class —
                      70 000² already exceeds 2^32. Widen an operand
                      first, or use dcl::checked_mul64 (src/graph/ids.h).
                      Products with a literal operand are exempt.
  sem-hot-alloc       Inside a function annotated `// dcl-hot` (comment
                      block directly above the declaration): no operator
                      new, no malloc-family call, and no growing container
                      call (push_back/emplace_back/resize/insert/emplace/
                      append/assign) on a container that the same function
                      does not reserve(). The enumeration and delivery
                      kernels PR 2/PR 5 flattened stay machine-checked
                      allocation-free.
  bad-allow           Malformed allow() annotation (unknown rule name or
                      empty justification) — never allowlistable.

Allowlist grammar — shared with dcl_lint (a single vocabulary; each tool
validates the rule name against the union and suppresses only its own):

    // dcl-lint: allow(<rule>): <justification>

on the offending line or the line directly above it.

Degradation: the container may lack libclang (the bindings ship as
`python3-clang` + libclang, not in this repo). The tool then exits 77 —
the ctest entries declare SKIP_RETURN_CODE 77 and report SKIP with an
install hint — while CI installs the bindings and runs it as a blocking
job. See docs/BUILDING.md.

Exit codes: 0 clean, 1 findings, 2 usage/parse error, 77 libclang
unavailable. `--expect DIR` is the fixture self-test mode used by ctest:
findings must match `// dcl-semlint-expect: <rule>` markers line-exactly,
in both directions (tests/semlint_fixtures/).
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "sem-unordered-iter":
        "iteration over an unordered container (type-resolved)",
    "sem-narrow": "implicit 64-bit -> 32-bit integer narrowing",
    "sem-index-32": "32-bit induction variable against a 64-bit bound",
    "sem-mul-width": "32-bit product widened to a 64-bit target",
    "sem-hot-alloc": "allocation inside a // dcl-hot function",
    "bad-allow": "malformed allow() annotation",
}

# dcl_lint's rules: legal in the shared allow() grammar, suppress nothing
# here. Kept in sync with tools/dcl_lint.py (RULES there, FOREIGN_RULES
# here and vice versa).
FOREIGN_RULES = {
    "wallclock",
    "unordered-iteration",
    "float-ledger",
    "raw-thread",
    "reserve-hint",
    "bad-allow",
}

ALLOW_RE = re.compile(
    r"//\s*dcl-lint:\s*allow\(([^)]*)\)\s*(?::\s*(.*?))?\s*$")
EXPECT_RE = re.compile(r"dcl-semlint-expect:\s*([\w-]+)")
HOT_RE = re.compile(r"//\s*dcl-hot\b")

GROWTH_METHODS = {
    "push_back", "emplace_back", "resize", "insert", "emplace", "append",
    "assign",
}
MALLOC_FAMILY = {"malloc", "calloc", "realloc", "aligned_alloc", "strdup"}

SKIP_EXIT = 77
INSTALL_HINT = ("install the clang Python bindings to run it "
                "(e.g. apt-get install python3-clang libclang1, or "
                "pip install libclang)")


def load_cindex():
    """Returns the clang.cindex module with a working libclang, or None."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    # The bindings are present but the default soname did not resolve; try
    # the versioned names Debian/Ubuntu ship.
    for ver in range(21, 13, -1):
        for pattern in (f"libclang-{ver}.so.{ver}", f"libclang-{ver}.so.1",
                        f"libclang.so.{ver}", f"libclang-{ver}.so"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(pattern)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
    return None


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


class FileAnnotations:
    """allow()/expect/dcl-hot markers of one source file (line-comment
    based, matching the dcl_lint grammar: an annotation must be a // line
    comment and the allow() must end its line)."""

    def __init__(self, abspath, relpath):
        self.relpath = relpath
        with open(abspath, encoding="utf-8") as f:
            self.lines = f.read().split("\n")
        self.allows = {}      # line -> set(rules)
        self.expects = []     # (line, rule)
        self.hot_lines = set()
        self.bad_allows = []
        for i, text in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(text)
            if m:
                rules = [r.strip() for r in m.group(1).split(",")]
                justification = (m.group(2) or "").strip()
                bad = [r for r in rules
                       if r not in RULES and r not in FOREIGN_RULES]
                if bad or not justification:
                    why = (f"unknown rule(s) {', '.join(bad)}" if bad else
                           "missing justification text")
                    self.bad_allows.append(Finding(
                        relpath, i, "bad-allow",
                        f"allow() annotation rejected: {why} (format: "
                        f"// dcl-lint: allow(rule): why it is safe)"))
                else:
                    for target in (i, i + 1):
                        self.allows.setdefault(target, set()).update(rules)
            for em in EXPECT_RE.finditer(text):
                self.expects.append((i, em.group(1)))
            if HOT_RE.search(text):
                self.hot_lines.add(i)

    def allowed(self, line, rule):
        return rule in self.allows.get(line, set())

    def hot_marker_above(self, line):
        """True when a // dcl-hot marker sits in the contiguous comment
        block directly above `line` (doc comments may share the block)."""
        ln = line - 1
        while ln >= 1:
            text = self.lines[ln - 1].strip()
            if not (text.startswith("//") or text.startswith("template")):
                return False
            if ln in self.hot_lines:
                return True
            ln -= 1
        return False


class Analyzer:
    def __init__(self, cindex, root, interesting):
        self.ci = cindex
        self.root = os.path.realpath(root)
        self.interesting = interesting  # predicate over relpaths
        self.index = cindex.Index.create()
        self.findings = {}   # key -> Finding (dedup across TUs)
        self.annotations = {}  # relpath -> FileAnnotations
        self.parse_errors = []
        K = cindex.CursorKind
        self.cast_kinds = {
            K.CXX_STATIC_CAST_EXPR, K.CXX_REINTERPRET_CAST_EXPR,
            K.CXX_CONST_CAST_EXPR, K.CSTYLE_CAST_EXPR,
            K.CXX_FUNCTIONAL_CAST_EXPR,
        }
        self.func_kinds = {
            K.FUNCTION_DECL, K.CXX_METHOD, K.FUNCTION_TEMPLATE,
            K.CONSTRUCTOR, K.DESTRUCTOR, K.CONVERSION_FUNCTION,
        }
        T = cindex.TypeKind
        self.int_kinds = {
            T.CHAR_U, T.UCHAR, T.USHORT, T.UINT, T.ULONG, T.ULONGLONG,
            T.CHAR_S, T.SCHAR, T.SHORT, T.INT, T.LONG, T.LONGLONG,
        }

    # -- bookkeeping --------------------------------------------------------

    def relpath_of(self, cursor):
        loc = cursor.location
        if loc.file is None:
            return None
        ap = os.path.realpath(loc.file.name)
        if not ap.startswith(self.root + os.sep):
            return None
        rel = os.path.relpath(ap, self.root).replace(os.sep, "/")
        return rel if self.interesting(rel) else None

    def annot(self, relpath):
        if relpath not in self.annotations:
            self.annotations[relpath] = FileAnnotations(
                os.path.join(self.root, relpath), relpath)
        return self.annotations[relpath]

    def report(self, cursor, rule, message, relpath=None):
        rel = relpath or self.relpath_of(cursor)
        if rel is None:
            return
        line = cursor.location.line
        ann = self.annot(rel)
        if ann.allowed(line, rule):
            return
        f = Finding(rel, line, rule, message)
        self.findings.setdefault(f.key(), f)

    # -- type helpers -------------------------------------------------------

    def int_width(self, t):
        """Byte width of a (canonical) builtin integer type, else None.
        bool and enums are excluded on purpose."""
        ct = t.get_canonical()
        if ct.kind not in self.int_kinds:
            return None
        size = ct.get_size()
        return size if size in (1, 2, 4, 8) else None

    def strip_refs(self, t):
        T = self.ci.TypeKind
        while t.kind in (T.LVALUEREFERENCE, T.RVALUEREFERENCE):
            t = t.get_pointee()
        return t

    def is_unordered(self, t):
        spelling = self.strip_refs(t).get_canonical().spelling
        return ("unordered_map" in spelling or "unordered_set" in spelling or
                "unordered_multimap" in spelling or
                "unordered_multiset" in spelling)

    def descend(self, c):
        """Peels implicit-cast wrappers (UNEXPOSED_EXPR) and parens to the
        expression whose type is the pre-conversion type."""
        K = self.ci.CursorKind
        while c is not None and c.kind in (K.UNEXPOSED_EXPR, K.PAREN_EXPR):
            kids = list(c.get_children())
            if len(kids) != 1:
                break
            c = kids[0]
        return c

    def expr_children(self, c):
        return [k for k in c.get_children() if k.kind.is_expression()]

    def has_int_literal(self, c):
        """Any integer/char literal token inside the expression: treated as
        an author-provided range bound (x & 0xff, e % 64, i + 1)."""
        try:
            for tok in c.get_tokens():
                if tok.kind == self.ci.TokenKind.LITERAL and re.match(
                        r"^[0-9']", tok.spelling):
                    return True
        except Exception:
            pass
        return False

    def binop_operator(self, c):
        """Operator token of a binary operator cursor (the token between
        the operand extents) — cindex portable across llvm 14..18, which
        lack a stable opcode accessor."""
        kids = list(c.get_children())
        if len(kids) != 2:
            return None
        lhs_end = kids[0].extent.end.offset
        rhs_start = kids[1].extent.start.offset
        try:
            for tok in c.get_tokens():
                off = tok.extent.start.offset
                if lhs_end <= off < rhs_start and tok.spelling not in "()":
                    return tok.spelling
        except Exception:
            pass
        return None

    def source_text(self, c):
        try:
            return "".join(t.spelling for t in c.get_tokens())
        except Exception:
            return ""

    # -- conversion rules (sem-narrow / sem-mul-width) ----------------------

    def narrow_product_operand(self, c):
        """The descended cursor if it is a 32-bit (or smaller) `*` product
        without a literal operand, else None."""
        K = self.ci.CursorKind
        if c.kind != K.BINARY_OPERATOR:
            return None
        w = self.int_width(c.type)
        if w not in (1, 2, 4):
            return None
        if self.binop_operator(c) != "*":
            return None
        kids = list(c.get_children())
        if len(kids) == 2:
            for kid in kids:
                if self.descend(kid).kind == K.INTEGER_LITERAL:
                    return None
        return c

    def check_conversion(self, target_type, expr, what):
        """One conversion site: `expr` converts to `target_type`."""
        if expr is None or target_type is None:
            return
        tw = self.int_width(target_type)
        if tw is None:
            return
        e = self.descend(expr)
        if e is None:
            return
        if e.kind in self.cast_kinds:
            return  # explicit cast: the author's (to_node-checkable) claim
        sw = self.int_width(e.type)
        if sw is None:
            return
        if sw == 8 and tw in (1, 2, 4):
            if self.has_int_literal(e):
                return
            self.report(
                expr, "sem-narrow",
                f"implicit narrowing of a 64-bit value into a {tw * 8}-bit "
                f"{what} — truncates at edge scale; widen the target or "
                f"route through dcl::to_node/to_edge (src/graph/ids.h)")
        elif tw == 8 and self.narrow_product_operand(e) is not None:
            self.report(
                expr, "sem-mul-width",
                f"product computed in {sw * 8} bits, then widened to a "
                f"64-bit {what} — the overflow already happened; widen an "
                f"operand or use dcl::checked_mul64 (src/graph/ids.h)")

    def check_explicit_cast(self, c):
        """static_cast<uint64>(a * b): the product overflowed before the
        cast widened it."""
        tw = self.int_width(c.type)
        if tw != 8:
            return
        exprs = self.expr_children(c)
        if not exprs:
            return
        inner = self.descend(exprs[-1])
        if inner is not None and self.narrow_product_operand(inner) is not None:
            sw = self.int_width(inner.type)
            self.report(
                c, "sem-mul-width",
                f"explicit cast widens a product computed in {sw * 8} bits "
                f"— the overflow already happened; widen an operand or use "
                f"dcl::checked_mul64 (src/graph/ids.h)")

    def check_call_args(self, c):
        ref = c.referenced
        if ref is None:
            return
        ftype = ref.type
        if ftype is None or ftype.kind != self.ci.TypeKind.FUNCTIONPROTO:
            return
        try:
            params = list(ftype.argument_types())
            args = list(c.get_arguments())
        except Exception:
            return
        for i, arg in enumerate(args):
            if i >= len(params):
                break  # variadic tail
            self.check_conversion(params[i], arg,
                                  f"argument of '{ref.spelling}'")

    # -- sem-unordered-iter -------------------------------------------------

    def check_range_for(self, c):
        for kid in c.get_children():
            if not kid.kind.is_expression():
                continue
            e = self.descend(kid)
            if e is not None and self.is_unordered(e.type):
                self.report(
                    c, "sem-unordered-iter",
                    "range-for over an unordered container — hash iteration "
                    "order is implementation-defined; use std::set/std::map "
                    "or collect-and-sort")
                return
            break  # only the range expression, not the body

    def check_begin_call(self, c):
        if c.spelling not in ("begin", "cbegin"):
            return
        kids = list(c.get_children())
        if not kids:
            return
        member = kids[0]
        base = next(iter(member.get_children()), None)
        if base is not None and self.is_unordered(base.type):
            self.report(
                c, "sem-unordered-iter",
                f"'.{c.spelling}()' on an unordered container — iteration "
                f"order is implementation-defined; use std::set/std::map or "
                f"collect-and-sort")

    # -- sem-index-32 -------------------------------------------------------

    def check_for_stmt(self, c):
        K = self.ci.CursorKind
        kids = list(c.get_children())
        var = None
        cond = None
        for kid in kids:
            if var is None and kid.kind == K.DECL_STMT:
                decls = [d for d in kid.get_children()
                         if d.kind == K.VAR_DECL]
                if len(decls) == 1 and self.int_width(
                        decls[0].type) in (1, 2, 4):
                    var = decls[0]
                continue
            if var is not None and cond is None and \
                    kid.kind == K.BINARY_OPERATOR:
                cond = kid
                break
        if var is None or cond is None:
            return
        var_loc = (var.location.file.name if var.location.file else "",
                   var.location.offset)

        def refers_to_var(e):
            e = self.descend(e)
            if e is None or e.kind != K.DECL_REF_EXPR:
                return False
            ref = e.referenced
            if ref is None or ref.location.file is None:
                return False
            return (ref.location.file.name, ref.location.offset) == var_loc

        def scan(e):
            if e.kind == K.BINARY_OPERATOR:
                kids2 = list(e.get_children())
                if len(kids2) == 2:
                    for side, other in ((kids2[0], kids2[1]),
                                        (kids2[1], kids2[0])):
                        if not refers_to_var(side):
                            continue
                        o = self.descend(other)
                        if o is None or o.kind == K.INTEGER_LITERAL:
                            continue
                        if self.int_width(o.type) == 8:
                            self.report(
                                c, "sem-index-32",
                                f"loop induction variable "
                                f"'{var.spelling}' is "
                                f"{self.int_width(var.type) * 8}-bit but "
                                f"is compared against a 64-bit bound — "
                                f"wraps before covering an edge-scale "
                                f"range; widen the induction type")
                            return True
            for kid in e.get_children():
                if kid.kind.is_expression() and scan(kid):
                    return True
            return False

        scan(cond)

    # -- sem-hot-alloc ------------------------------------------------------

    def member_call_base_text(self, c):
        kids = list(c.get_children())
        if not kids:
            return ""
        base = next(iter(kids[0].get_children()), None)
        return self.source_text(base) if base is not None else ""

    def check_hot_function(self, func):
        rel = self.relpath_of(func)
        if rel is None:
            return
        ann = self.annot(rel)
        if not ann.hot_marker_above(func.extent.start.line):
            return
        body = [k for k in func.get_children()
                if k.kind == self.ci.CursorKind.COMPOUND_STMT]
        if not body:
            return
        K = self.ci.CursorKind
        reserved = set()

        def collect_reserves(c):
            if c.kind == K.CALL_EXPR and c.spelling == "reserve":
                reserved.add(self.member_call_base_text(c))
            for kid in c.get_children():
                collect_reserves(kid)

        def flag_allocs(c):
            if c.kind == K.CXX_NEW_EXPR:
                self.report(c, "sem-hot-alloc",
                            "operator new inside a // dcl-hot kernel — "
                            "allocate in the caller and reuse")
            elif c.kind == K.CALL_EXPR:
                name = c.spelling
                if name in MALLOC_FAMILY:
                    self.report(c, "sem-hot-alloc",
                                f"'{name}' inside a // dcl-hot kernel — "
                                f"allocate in the caller and reuse")
                elif name in GROWTH_METHODS:
                    base = self.member_call_base_text(c)
                    if base and base not in reserved:
                        self.report(
                            c, "sem-hot-alloc",
                            f"'{base}.{name}(...)' may grow inside a "
                            f"// dcl-hot kernel with no "
                            f"'{base}.reserve(...)' in the function — "
                            f"reserve first or justify with an allow()")
            for kid in c.get_children():
                flag_allocs(kid)

        for b in body:
            collect_reserves(b)
        for b in body:
            flag_allocs(b)

    # -- walk ---------------------------------------------------------------

    def walk(self, c, func_stack):
        K = self.ci.CursorKind
        kind = c.kind
        pushed = False
        if kind in self.func_kinds or kind == K.LAMBDA_EXPR:
            func_stack.append(c)
            pushed = True
            if kind in self.func_kinds:
                self.check_hot_function(c)
        if kind == K.CXX_FOR_RANGE_STMT:
            self.check_range_for(c)
        elif kind == K.FOR_STMT:
            self.check_for_stmt(c)
        elif kind == K.CALL_EXPR:
            self.check_begin_call(c)
            self.check_call_args(c)
        elif kind == K.VAR_DECL:
            exprs = self.expr_children(c)
            if exprs:
                self.check_conversion(c.type, exprs[-1],
                                      f"initializer of '{c.spelling}'")
        elif kind == K.BINARY_OPERATOR:
            op = self.binop_operator(c)
            if op == "=":
                kids = list(c.get_children())
                self.check_conversion(kids[0].type, kids[1], "assignment")
        elif kind == K.COMPOUND_ASSIGNMENT_OPERATOR:
            kids = list(c.get_children())
            if len(kids) == 2:
                self.check_conversion(kids[0].type, kids[1],
                                      "compound assignment")
        elif kind == K.RETURN_STMT:
            exprs = self.expr_children(c)
            if exprs and func_stack:
                f = func_stack[-1]
                try:
                    rt = f.result_type
                except Exception:
                    rt = None
                self.check_conversion(rt, exprs[0], "return value")
        elif kind in self.cast_kinds:
            self.check_explicit_cast(c)

        for kid in c.get_children():
            self.walk(kid, func_stack)
        if pushed:
            func_stack.pop()

    def analyze_tu(self, path, args):
        try:
            tu = self.index.parse(path, args=args)
        except Exception as e:
            self.parse_errors.append(f"{path}: parse failed: {e}")
            return
        fatal = [d for d in tu.diagnostics if d.severity >= 3]
        if fatal:
            msgs = "; ".join(str(d) for d in fatal[:5])
            self.parse_errors.append(f"{path}: {msgs}")
            return
        for top in tu.cursor.get_children():
            if self.relpath_of(top) is not None:
                self.walk(top, [])

    def results(self):
        out = list(self.findings.values())
        for ann in self.annotations.values():
            out.extend(ann.bad_allows)
        out.sort(key=lambda f: (f.path, f.line, f.rule))
        return out


# ---------------------------------------------------------------------------
# compile_commands.json handling
# ---------------------------------------------------------------------------

KEEP_WITH_VALUE = {"-I", "-isystem", "-include", "-D", "-U"}


def clang_args_from_command(entry):
    """Filters a compile command down to the flags clang's parser needs
    (includes, defines, language standard) — toolchain-specific codegen
    and warning flags from the real compiler are dropped."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        import shlex
        argv = shlex.split(entry["command"])
    directory = entry.get("directory", ".")
    out = []
    i = 1  # skip the compiler
    while i < len(argv):
        a = argv[i]
        if a in KEEP_WITH_VALUE:
            val = argv[i + 1] if i + 1 < len(argv) else ""
            if a in ("-I", "-isystem", "-include") and val and \
                    not os.path.isabs(val):
                val = os.path.join(directory, val)
            out += [a, val]
            i += 2
            continue
        for prefix in ("-I", "-D", "-U", "-std="):
            if a.startswith(prefix) and len(a) > len(prefix):
                if prefix == "-I" and not os.path.isabs(a[2:]):
                    a = "-I" + os.path.join(directory, a[2:])
                out.append(a)
                break
        i += 1
    if not any(a.startswith("-std=") for a in out):
        out.append("-std=c++20")
    return out


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        raise FileNotFoundError(path)
    with open(path, encoding="utf-8") as f:
        return json.load(f)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_src_scan(cindex, root, build_dir, paths):
    prefixes = tuple(p.rstrip("/") for p in paths)

    def interesting(rel):
        return any(rel == p or rel.startswith(p + "/") for p in prefixes)

    analyzer = Analyzer(cindex, root, interesting)
    entries = load_compile_commands(build_dir)
    seen = set()
    for entry in sorted(entries, key=lambda e: e["file"]):
        ap = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        rel = os.path.relpath(ap, os.path.realpath(root)).replace(os.sep, "/")
        if not interesting(rel) or ap in seen:
            continue
        seen.add(ap)
        analyzer.analyze_tu(ap, clang_args_from_command(entry))
    if not seen:
        raise FileNotFoundError(
            f"no compile_commands.json entry matches {paths} — stale build "
            f"dir? (re-run cmake: tools/run_semlint.sh does this for you)")
    return analyzer


def run_expect(cindex, fixture_dir):
    fixture_dir = os.path.realpath(fixture_dir)
    root = fixture_dir

    def interesting(rel):
        return not rel.startswith("..")

    analyzer = Analyzer(cindex, root, interesting)
    tus = sorted(f for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    if not tus:
        print(f"dcl_semlint: no fixture TUs in {fixture_dir}",
              file=sys.stderr)
        return 2
    for name in tus:
        analyzer.analyze_tu(os.path.join(fixture_dir, name),
                            ["-std=c++20", "-I", fixture_dir])
    if analyzer.parse_errors:
        for e in analyzer.parse_errors:
            print(f"dcl_semlint: {e}", file=sys.stderr)
        return 2
    expected = set()
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith((".cpp", ".h")):
            continue
        ann = analyzer.annot(name)
        for ln, rule in ann.expects:
            expected.add((name, ln, rule))
    actual = {f.key() for f in analyzer.results()}
    missing = sorted(expected - actual)
    surprise = sorted(actual - expected)
    for path, ln, rule in missing:
        print(f"{path}:{ln}: expected [{rule}] but the analyzer was silent")
    for path, ln, rule in surprise:
        print(f"{path}:{ln}: unexpected [{rule}] finding")
    if missing or surprise:
        print(f"self-test FAILED: {len(missing)} missed, "
              f"{len(surprise)} unexpected")
        return 1
    print(f"self-test OK: {len(expected)} planted finding(s) all reported, "
          f"nothing else flagged")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="dcl_semlint.py",
        description="libclang semantic scale-safety analyzer "
                    "(see docs/ANALYSIS.md)")
    ap.add_argument("paths", nargs="*",
                    help="repo-relative path prefixes to analyze "
                         "(default: src tools/dcl_cli.cpp)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--build-dir", "-p", default=None,
                    help="build dir containing compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--expect", metavar="DIR", default=None,
                    help="fixture self-test mode over DIR")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args(argv[1:])

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:20s} [error] {desc}")
        return 0

    cindex = load_cindex()
    if cindex is None:
        print(f"dcl_semlint: SKIP — clang Python bindings / libclang not "
              f"available; {INSTALL_HINT}")
        return SKIP_EXIT

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.expect:
        return run_expect(cindex, args.expect)

    build_dir = args.build_dir or os.path.join(root, "build")
    paths = args.paths or ["src", "tools/dcl_cli.cpp"]
    try:
        analyzer = run_src_scan(cindex, root, build_dir, paths)
    except FileNotFoundError as e:
        print(f"dcl_semlint: {e}", file=sys.stderr)
        return 2
    if analyzer.parse_errors:
        for e in analyzer.parse_errors:
            print(f"dcl_semlint: {e}", file=sys.stderr)
        return 2
    findings = analyzer.results()
    for f in findings:
        print(f)
    if findings:
        print(f"dcl_semlint: {len(findings)} finding(s)")
        return 1
    print("dcl_semlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Diff the cost-model fingerprints of two BENCH_*.json snapshots.

Usage: check_bench_fingerprint.py CURRENT BASELINE [--require NAME ...]
       check_bench_fingerprint.py --list SNAPSHOT

The counters recorded by the self-timed harnesses (clique totals,
round-ledger sums, per-phase round costs) are produced with fixed seeds
and are part of the *cost model*, not the measurement: any drift means a
perf change altered the simulated algorithm. This script compares the
counters of every benchmark present in both files and exits non-zero on

  * a counter value that differs (bit-exact compare on the %.17g text),
  * a benchmark with counters that exists in BASELINE but is missing from
    CURRENT (fingerprint coverage must never shrink silently),
  * a --require'd benchmark name absent from either file (pins must-have
    coverage — e.g. the threaded list_kp entries — so a filtered or
    truncated run cannot silently pass).

Timings (ns_per_op, items_per_sec, iterations) are ignored entirely, so
the check is machine- and settings-independent; benchmarks new in CURRENT
are reported but do not fail the check. Used by the CI bench-smoke job to
diff BENCH_core.ci.json against the committed BENCH_core.json.

`--list SNAPSHOT` prints each benchmark's name and its counter keys —
useful for picking --require pins without opening the JSON by hand.

Exit codes: 0 clean, 1 drift, 2 usage error, 3 a snapshot file is missing
or unreadable (distinct so CI can tell "the bench run never produced its
snapshot" apart from a genuine fingerprint failure).
"""

import json
import sys


class MissingSnapshot(Exception):
    pass


def load_counters(path):
    try:
        with open(path) as f:
            snapshot = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_fingerprint: cannot read snapshot {path}: {e}",
              file=sys.stderr)
        print(f"hint: generate it with tools/run_bench.sh -o {path} "
              f"(CI writes BENCH_core.ci.json in the bench-smoke job)",
              file=sys.stderr)
        raise MissingSnapshot(path) from e
    return {
        b["name"]: b.get("counters", {})
        for b in snapshot.get("benchmarks", [])
    }


def list_snapshot(path):
    counters = load_counters(path)
    for name, keys in sorted(counters.items()):
        print(f"{name}: {', '.join(sorted(keys)) if keys else '(no counters)'}")
    print(f"{len(counters)} benchmark(s), "
          f"{sum(1 for c in counters.values() if c)} with counters")
    return 0


def main(argv):
    args = list(argv[1:])
    try:
        if "--list" in args:
            args.remove("--list")
            if len(args) != 1:
                print("usage: check_bench_fingerprint.py --list SNAPSHOT",
                      file=sys.stderr)
                return 2
            return list_snapshot(args[0])
        required = []
        if "--require" in args:
            split = args.index("--require")
            required = args[split + 1:]
            args = args[:split]
        if len(args) != 2:
            print(__doc__.strip().splitlines()[2], file=sys.stderr)
            print(__doc__.strip().splitlines()[3], file=sys.stderr)
            return 2
        current = load_counters(args[0])
        baseline = load_counters(args[1])
    except MissingSnapshot:
        return 3

    drift = []
    for name in required:
        for label, snapshot in ((args[0], current), (args[1], baseline)):
            if name not in snapshot:
                drift.append(f"{name}: required but missing from {label}")
    for name, base_counters in sorted(baseline.items()):
        if not base_counters:
            continue
        if name not in current:
            drift.append(f"{name}: missing from {args[0]}")
            continue
        cur_counters = current[name]
        for key, base_value in sorted(base_counters.items()):
            cur_value = cur_counters.get(key)
            # %.17g round-trips doubles exactly; compare the repr to stay
            # bit-exact without re-deriving float tolerance rules.
            if cur_value is None or repr(cur_value) != repr(base_value):
                drift.append(
                    f"{name}: counter '{key}' drifted "
                    f"(baseline {base_value!r}, current {cur_value!r})")

    new = sorted(set(current) - set(baseline))
    if new:
        print(f"note: {len(new)} benchmark(s) not in baseline "
              f"(allowed): {', '.join(new)}")

    if drift:
        print(f"FINGERPRINT DRIFT ({len(drift)} issue(s)):")
        for line in drift:
            print(f"  {line}")
        return 1
    checked = sum(1 for n, c in baseline.items() if c and n in current)
    print(f"fingerprints OK: {checked} benchmark(s) bit-identical")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. --list | head
        sys.exit(0)

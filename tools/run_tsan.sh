#!/usr/bin/env bash
# ThreadSanitizer leg of the analysis plane (docs/ANALYSIS.md): configure a
# -DDCL_SANITIZE=thread build and run the concurrency-bearing suites with the
# sharded worker pool live (DCL_THREADS defaults to 4 — TSan on a 1-shard run
# would watch an empty pool).
#
# Usage:
#   tools/run_tsan.sh                      # fast loop (ctest -LE slow)
#   tools/run_tsan.sh -R ParallelFor       # forward extra args to ctest
#   DCL_THREADS=8 tools/run_tsan.sh        # wider pool
#   DCL_SHARD_AUDIT=random tools/run_tsan.sh   # audit + TSan combined
#
# Honours BUILD_DIR (default build-tsan), CMAKE_ARGS, and JOBS like
# tools/run_tier1.sh. A suppressions file is loaded from
# tools/tsan_suppressions.txt only if it exists; the repo policy
# (docs/ANALYSIS.md) is that every suppression must carry a written proof of
# benignity, so the default state is "no file, no suppressions".
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-build-tsan}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

case "${BUILD_DIR}" in
  /*) ;;
  *) BUILD_DIR="${REPO_ROOT}/${BUILD_DIR}" ;;
esac

TSAN_OPTS="halt_on_error=1 second_deadlock_stack=1"
if [[ -f "${REPO_ROOT}/tools/tsan_suppressions.txt" ]]; then
  TSAN_OPTS+=" suppressions=${REPO_ROOT}/tools/tsan_suppressions.txt"
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCL_SANITIZE=thread ${CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "${JOBS}"
cd "${BUILD_DIR}"

if [[ $# -gt 0 ]]; then
  CTEST_ARGS=("$@")
else
  CTEST_ARGS=(-LE slow)
fi

TSAN_OPTIONS="${TSAN_OPTIONS:-${TSAN_OPTS}}" \
DCL_THREADS="${DCL_THREADS:-4}" \
  ctest --output-on-failure -j "${JOBS}" "${CTEST_ARGS[@]}"

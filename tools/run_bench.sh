#!/usr/bin/env bash
# Self-timed perf baseline: builds Release and runs bench_core, writing the
# JSON snapshot every perf PR diffs against (see docs/PERFORMANCE.md).
#
# Usage:
#   tools/run_bench.sh                      # writes BENCH_core.json
#   tools/run_bench.sh -o /tmp/run.json     # alternative output path
#   DCL_BENCH_REPS=1 DCL_BENCH_MIN_MS=5 tools/run_bench.sh   # CI smoke
#
# Path resolution: a relative BUILD_DIR *and* a relative -o output path are
# both resolved against the repository root (not the caller's cwd), so the
# script behaves identically no matter where it is invoked from.
#
# Honours BUILD_DIR, CMAKE_ARGS, and JOBS like tools/run_tier1.sh. The
# timing-loop knobs DCL_BENCH_REPS / DCL_BENCH_MIN_MS are forwarded to the
# harness (defaults: 5 repetitions, 150 ms minimum per repetition).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"
OUT="${REPO_ROOT}/BENCH_core.json"

while getopts "o:" opt; do
  case "${opt}" in
    o) OUT="${OPTARG}" ;;
    *) echo "usage: $0 [-o output.json]" >&2; exit 2 ;;
  esac
done

case "${BUILD_DIR}" in
  /*) ;;
  *) BUILD_DIR="${REPO_ROOT}/${BUILD_DIR}" ;;
esac
case "${OUT}" in
  /*) ;;
  *) OUT="${REPO_ROOT}/${OUT}" ;;
esac

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release \
  -DDCL_BUILD_TESTS=OFF -DDCL_BUILD_EXAMPLES=OFF ${CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_core

"${BUILD_DIR}/bench_core" --out "${OUT}"
echo "wrote ${OUT}"

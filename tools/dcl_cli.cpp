// dcl — command-line front end for the distributed clique listing library.
//
// Subcommands:
//   generate <family> <n> [seed]        write an edge list to stdout
//       families: gnm:<m> | gnp:<p> | clustered | periphery | ring |
//                 powerlaw:<avg_deg> | complete
//   info <file>                         basic graph statistics
//   list <file> <p> [general|k4fast|cc|trivial] [seed]
//        [--faults SPEC | --fault-replay FILE] [--fault-record FILE]
//                                       run a lister; print rounds + count;
//                                       with faults, the oracle degrades to
//                                       the survivor contract (docs/
//                                       ROBUSTNESS.md)
//   count <file> <p>                    sequential exact count (oracle)
//   decompose <file> <delta>            expander decomposition statistics
//   dynamic <family> <n> <p> [batches] [seed]
//       families: window | churn | densify | teardown
//       replay an update stream through the batch-dynamic maintenance
//       engine (src/dynamic/); per batch: edge/clique deltas and the
//       arboricity witness, then an oracle check against a from-scratch
//       recompute of the final snapshot
//
// Examples:
//   dcl generate clustered 256 7 > g.txt
//   dcl list g.txt 4 k4fast
//   dcl decompose g.txt 0.55
//   dcl dynamic churn 120 4 16 7
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <algorithm>

#include "baselines/baselines.h"
#include "congest/fault_plan.h"
#include "common/math_util.h"
#include "common/telemetry.h"
#include "core/kp_lister.h"
#include "dynamic/dynamic_lister.h"
#include "core/sparse_cc.h"
#include "enumeration/clique_enumeration.h"
#include "expander/decomposition.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/orientation.h"
#include "graph/workloads.h"

namespace {

using namespace dcl;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dcl generate <family> <n> [seed]   (family: gnm:<m> | "
               "gnp:<p> | clustered | periphery | ring | powerlaw:<deg> | "
               "complete)\n"
               "  dcl info <file>\n"
               "  dcl list <file> <p> [general|k4fast|cc|trivial] [seed]\n"
               "           [--faults SPEC | --fault-replay FILE] "
               "[--fault-record FILE]\n"
               "           [--trace FILE] [--report FILE]\n"
               "           (SPEC e.g. drop=0.1,dup=0.05,delay=0.02:3,"
               "retries=4,seed=7,crash=5@2)\n"
               "  dcl count <file> <p>\n"
               "  dcl decompose <file> <delta>\n"
               "  dcl dynamic <family> <n> <p> [batches] [seed]   (family: "
               "window | churn | densify | teardown)\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string family = argv[0];
  const auto n = static_cast<NodeId>(std::atoi(argv[1]));
  const std::uint64_t seed = (argc > 2) ? std::strtoull(argv[2], nullptr, 10)
                                        : 1;
  Rng rng(seed);
  Graph g;
  if (family.rfind("gnm:", 0) == 0) {
    g = erdos_renyi_gnm(n, std::atoll(family.c_str() + 4), rng);
  } else if (family.rfind("gnp:", 0) == 0) {
    g = erdos_renyi_gnp(n, std::atof(family.c_str() + 4), rng);
  } else if (family == "clustered") {
    g = clustered_workload(n, rng);
  } else if (family == "periphery") {
    g = periphery_workload(n, rng);
  } else if (family == "ring") {
    g = ring_of_cliques_workload(n, rng);
  } else if (family.rfind("powerlaw:", 0) == 0) {
    g = power_law_chung_lu(n, 2.5, std::atof(family.c_str() + 9), rng);
  } else if (family == "complete") {
    g = complete_graph(n);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return usage();
  }
  write_edge_list(g, std::cout);
  std::fprintf(stderr, "generated %s graph: n=%d m=%lld\n", family.c_str(),
               g.node_count(), static_cast<long long>(g.edge_count()));
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) return usage();
  const Graph g = load_edge_list(argv[0]);
  const auto dec = degeneracy_order(g);
  const auto [comp, components] = g.connected_components();
  (void)comp;
  std::printf("nodes:       %d\n", g.node_count());
  std::printf("edges:       %lld\n", static_cast<long long>(g.edge_count()));
  std::printf("max degree:  %d\n", g.max_degree());
  std::printf("avg degree:  %.2f\n", g.average_degree());
  std::printf("degeneracy:  %d\n", dec.degeneracy);
  std::printf("components:  %d\n", components);
  std::printf("triangles:   %llu\n",
              static_cast<unsigned long long>(count_k_cliques(g, 3)));
  return 0;
}

int cmd_list(int argc, char** argv) {
  // Split option flags from the positional arguments.
  std::string fault_spec, fault_replay, fault_record;
  std::string trace_path, report_path;
  std::vector<char*> pos;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto flag_value = [&](const char* name) -> std::string {
      const std::size_t len = std::strlen(name);
      if (a.compare(0, len + 1, std::string(name) + "=") == 0) {
        return a.substr(len + 1);
      }
      if (++i >= argc) {
        throw std::runtime_error(std::string(name) + " requires a value");
      }
      return argv[i];
    };
    if (a.rfind("--faults", 0) == 0 && (a.size() == 8 || a[8] == '=')) {
      fault_spec = flag_value("--faults");
    } else if (a.rfind("--fault-replay", 0) == 0 &&
               (a.size() == 14 || a[14] == '=')) {
      fault_replay = flag_value("--fault-replay");
    } else if (a.rfind("--fault-record", 0) == 0 &&
               (a.size() == 14 || a[14] == '=')) {
      fault_record = flag_value("--fault-record");
    } else if (a.rfind("--trace", 0) == 0 && (a.size() == 7 || a[7] == '=')) {
      trace_path = flag_value("--trace");
    } else if (a.rfind("--report", 0) == 0 && (a.size() == 8 || a[8] == '=')) {
      report_path = flag_value("--report");
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return usage();
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.size() < 2) return usage();
  if (!fault_spec.empty() && !fault_replay.empty()) {
    throw std::runtime_error(
        "--faults and --fault-replay are mutually exclusive");
  }

  const Graph g = load_edge_list(pos[0]);
  const int p = std::atoi(pos[1]);
  const std::string algo = (pos.size() > 2) ? pos[2] : "general";
  const std::uint64_t seed =
      (pos.size() > 3) ? std::strtoull(pos[3], nullptr, 10) : 1;

  FaultPlan plan;
  if (!fault_replay.empty()) {
    std::ifstream in(fault_replay);
    if (!in) {
      throw std::runtime_error("cannot open fault schedule '" + fault_replay +
                               "'");
    }
    plan = FaultPlan::deserialize(in);
  } else if (!fault_spec.empty()) {
    plan = FaultPlan(FaultSpec::parse(fault_spec));
  }
  const bool faulty = plan.enabled() || plan.replaying();

  // Telemetry is collected only when asked for: the collector is installed
  // for the duration of the run, and the disabled plane costs one relaxed
  // atomic load per probe otherwise.
  const bool tracing = !trace_path.empty() || !report_path.empty();
  TraceCollector collector;
  std::optional<TelemetryScope> scope;
  if (tracing) scope.emplace(collector);
  std::string command = "list";
  for (char* const* a = pos.data(); a != pos.data() + pos.size(); ++a) {
    command += ' ';
    command += *a;
  }

  ListingOutput out(g.node_count());
  double rounds = 0;
  std::vector<NodeId> crashed;
  bool crash_degraded = false;
  std::uint64_t lost = 0;
  double retry_rounds = 0.0;
  std::uint64_t retransmitted = 0;
  RoundLedger report_ledger;
  if (algo == "general" || algo == "k4fast") {
    KpConfig cfg;
    cfg.p = p;
    cfg.k4_fast = (algo == "k4fast");
    cfg.seed = seed;
    cfg.faults = faulty ? &plan : nullptr;
    const auto result = list_kp_collect(g, cfg, out);
    rounds = result.total_rounds();
    crashed = result.crashed_nodes;
    crash_degraded = result.crash_degraded;
    lost = result.lost_messages;
    retry_rounds = result.ledger.retry_rounds();
    retransmitted = result.ledger.retransmitted_messages();
    report_ledger = result.ledger;
    result.ledger.print_audited(std::cout);
  } else if (algo == "cc") {
    if (faulty && !plan.crashes().empty()) {
      throw std::runtime_error(
          "cc is accounting-level only: crash=... faults are not supported "
          "(use drop/dup/delay)");
    }
    SparseCcConfig cfg;
    cfg.p = p;
    cfg.seed = seed;
    cfg.faults = faulty ? &plan : nullptr;
    const auto result = sparse_cc_list(g, cfg, out);
    rounds = result.total_rounds();
    lost = result.lost_messages;
    retry_rounds = result.ledger.retry_rounds();
    retransmitted = result.ledger.retransmitted_messages();
    report_ledger = result.ledger;
    result.ledger.print_audited(std::cout);
  } else if (algo == "trivial") {
    if (faulty) {
      throw std::runtime_error(
          "the trivial baseline does not support fault injection");
    }
    const auto result = trivial_broadcast_list(g, p, out);
    rounds = result.total_rounds();
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return usage();
  }

  if (!fault_record.empty()) {
    std::ofstream rec(fault_record);
    if (!rec) {
      throw std::runtime_error("cannot write fault schedule '" + fault_record +
                               "'");
    }
    plan.serialize(rec);
    std::fprintf(stderr, "fault schedule (%zu events) written to %s\n",
                 plan.schedule().size(), fault_record.c_str());
  }

  if (tracing) {
    scope.reset();  // stop collecting before exporting
    if (!trace_path.empty()) {
      std::ofstream tr(trace_path);
      if (!tr) {
        throw std::runtime_error("cannot write trace '" + trace_path + "'");
      }
      collector.write_chrome_trace(tr);
      std::fprintf(stderr, "chrome trace (%zu spans) written to %s\n",
                   collector.spans().size(), trace_path.c_str());
    }
    if (!report_path.empty()) {
      std::ofstream rp(report_path);
      if (!rp) {
        throw std::runtime_error("cannot write report '" + report_path + "'");
      }
      write_run_report(rp, collector, &report_ledger, command);
      std::fprintf(stderr, "run report written to %s\n", report_path.c_str());
    }
  }

  std::printf("algorithm:      %s\n", algo.c_str());
  std::printf("K%d instances:   %llu (unique; %llu reports)\n", p,
              static_cast<unsigned long long>(out.unique_count()),
              static_cast<unsigned long long>(out.total_reports()));
  std::printf("rounds:         %.1f\n", rounds);
  if (faulty) {
    std::printf("faults:         %.1f retry rounds, %llu retransmitted, "
                "%llu lost, %zu crashed%s\n",
                retry_rounds,
                static_cast<unsigned long long>(retransmitted),
                static_cast<unsigned long long>(lost), crashed.size(),
                crash_degraded ? " (degraded fallback used)" : "");
  }

  const auto truth = count_k_cliques(g, p);
  if (crashed.empty()) {
    // Fault-free / recoverable regime: the output is exact.
    std::printf("oracle check:   %llu — %s\n",
                static_cast<unsigned long long>(truth),
                truth == out.unique_count() ? "match" : "MISMATCH");
    return truth == out.unique_count() ? 0 : 1;
  }

  // Survivor contract (docs/ROBUSTNESS.md): every Kp of G[alive] must be
  // listed, everything listed must be a Kp of G (cliques touching a crashed
  // node may legitimately appear — they were listed before the crash).
  std::vector<char> dead(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId v : crashed) dead[static_cast<std::size_t>(v)] = 1;
  std::vector<Edge> alive_edges;
  alive_edges.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (dead[static_cast<std::size_t>(ed.u)] ||
        dead[static_cast<std::size_t>(ed.v)]) {
      continue;
    }
    alive_edges.push_back(ed);
  }
  const Graph alive =
      Graph::from_edges(g.node_count(), std::move(alive_edges));
  const auto alive_cliques = list_k_cliques(alive, p);
  std::uint64_t missing = 0;
  for (const auto& c : alive_cliques) {
    if (!out.cliques().contains(c)) ++missing;
  }
  const bool sound = out.unique_count() <= truth;
  std::printf("oracle check:   survivor contract — %llu/%zu alive K%d "
              "listed, %llu total (<= %llu in G) — %s\n",
              static_cast<unsigned long long>(alive_cliques.size() - missing),
              alive_cliques.size(), p,
              static_cast<unsigned long long>(out.unique_count()),
              static_cast<unsigned long long>(truth),
              (missing == 0 && sound) ? "match" : "MISMATCH");
  return (missing == 0 && sound) ? 0 : 1;
}

int cmd_count(int argc, char** argv) {
  if (argc < 2) return usage();
  const Graph g = load_edge_list(argv[0]);
  const int p = std::atoi(argv[1]);
  std::printf("%llu\n",
              static_cast<unsigned long long>(count_k_cliques(g, p)));
  return 0;
}

int cmd_decompose(int argc, char** argv) {
  if (argc < 2) return usage();
  const Graph g = load_edge_list(argv[0]);
  const double delta = std::atof(argv[1]);
  DecompositionConfig cfg;
  cfg.delta = delta;
  Rng rng(1);
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  std::printf("delta:           %.3f (n^delta = %lld)\n", delta,
              static_cast<long long>(ceil_pow(g.node_count(), delta)));
  std::printf("charged rounds:  %.1f (T2.3: Õ(n^{1-delta}))\n",
              d.charged_rounds);
  std::printf("|Em| (clusters): %lld\n", static_cast<long long>(d.em_count));
  std::printf("|Es| (sparse):   %lld\n", static_cast<long long>(d.es_count));
  std::printf("|Er| (removed):  %lld (budget |E|/6 = %lld)\n",
              static_cast<long long>(d.er_count),
              static_cast<long long>(g.edge_count() / 6));
  std::printf("clusters:        %zu\n", d.clusters.size());
  for (const auto& c : d.clusters) {
    std::printf("  cluster %d: %zu nodes, min degree %d, %lld internal "
                "edges, mixing ≈ %.1f\n",
                c.id, c.nodes.size(), c.min_internal_degree,
                static_cast<long long>(c.internal_edges), c.mixing_time);
  }
  const auto errors = verify_decomposition(
      g, g.node_count(), cfg, d, polylog_mixing_bound(g.edge_count()));
  std::printf("verification:    %s\n",
              errors.empty() ? "all Definition 2.2 guarantees hold"
                             : errors.front().c_str());
  return errors.empty() ? 0 : 1;
}

int cmd_dynamic(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string family = argv[0];
  const auto n = static_cast<NodeId>(std::atoi(argv[1]));
  const int p = std::atoi(argv[2]);
  const int batches = (argc > 3) ? std::atoi(argv[3]) : 12;
  const std::uint64_t seed = (argc > 4) ? std::strtoull(argv[4], nullptr, 10)
                                        : 1;
  Rng rng(seed);
  UpdateStream stream;
  if (family == "window") {
    stream = sliding_window_stream(n, batches, std::max(1, n / 3), 4, rng);
  } else if (family == "churn") {
    const auto m = std::min<EdgeId>(4 * static_cast<EdgeId>(n),
                                    static_cast<EdgeId>(n) * (n - 1) / 6);
    stream = churn_stream(n, m, batches, std::max(1, n / 8), rng);
  } else if (family == "densify") {
    stream = densifying_community_stream(n, 4, batches, std::max(1, n / 4),
                                         rng);
  } else if (family == "teardown") {
    const auto peak = std::min<EdgeId>(3 * static_cast<EdgeId>(n),
                                       static_cast<EdgeId>(n) * (n - 1) / 4);
    stream = build_teardown_stream(n, peak, std::max(2, batches), rng);
  } else {
    std::fprintf(stderr, "unknown stream family '%s'\n", family.c_str());
    return usage();
  }

  DynamicLister lister(Graph::from_edges(stream.n, stream.initial), p);
  std::printf("initial:  m=%lld  K%d=%llu\n",
              static_cast<long long>(lister.graph().edge_count()), p,
              static_cast<unsigned long long>(lister.clique_count()));
  std::printf("%6s %8s %8s %10s %10s %10s %8s\n", "batch", "+edges", "-edges",
              "+cliques", "-cliques", "total", "witness");
  for (std::size_t b = 0; b < stream.batches.size(); ++b) {
    lister.apply(stream.batches[b]);
    const DynamicBatchStats& s = lister.last_stats();
    std::printf("%6zu %8lld %8lld %10llu %10llu %10llu %8d\n", b,
                static_cast<long long>(s.inserted_edges),
                static_cast<long long>(s.erased_edges),
                static_cast<unsigned long long>(s.cliques_added),
                static_cast<unsigned long long>(s.cliques_removed),
                static_cast<unsigned long long>(s.clique_count),
                s.arboricity_witness);
  }
  const auto truth = count_k_cliques(lister.graph().snapshot(), p);
  std::printf("oracle check:   %llu — %s\n",
              static_cast<unsigned long long>(truth),
              truth == lister.clique_count() ? "match" : "MISMATCH");
  return truth == lister.clique_count() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "list") return cmd_list(argc - 2, argv + 2);
    if (cmd == "count") return cmd_count(argc - 2, argv + 2);
    if (cmd == "decompose") return cmd_decompose(argc - 2, argv + 2);
    if (cmd == "dynamic") return cmd_dynamic(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcl %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}

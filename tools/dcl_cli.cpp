// dcl — command-line front end for the distributed clique listing library.
//
// Subcommands:
//   generate <family> <n> [seed]        write an edge list to stdout
//       families: gnm:<m> | gnp:<p> | clustered | periphery | ring |
//                 powerlaw:<avg_deg> | complete
//   info <file>                         basic graph statistics
//   list <file> <p> [general|k4fast|cc|trivial] [seed]
//                                       run a lister; print rounds + count
//   count <file> <p>                    sequential exact count (oracle)
//   decompose <file> <delta>            expander decomposition statistics
//   dynamic <family> <n> <p> [batches] [seed]
//       families: window | churn | densify | teardown
//       replay an update stream through the batch-dynamic maintenance
//       engine (src/dynamic/); per batch: edge/clique deltas and the
//       arboricity witness, then an oracle check against a from-scratch
//       recompute of the final snapshot
//
// Examples:
//   dcl generate clustered 256 7 > g.txt
//   dcl list g.txt 4 k4fast
//   dcl decompose g.txt 0.55
//   dcl dynamic churn 120 4 16 7
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <algorithm>

#include "baselines/baselines.h"
#include "common/math_util.h"
#include "core/kp_lister.h"
#include "dynamic/dynamic_lister.h"
#include "core/sparse_cc.h"
#include "enumeration/clique_enumeration.h"
#include "expander/decomposition.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/orientation.h"
#include "graph/workloads.h"

namespace {

using namespace dcl;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dcl generate <family> <n> [seed]   (family: gnm:<m> | "
               "gnp:<p> | clustered | periphery | ring | powerlaw:<deg> | "
               "complete)\n"
               "  dcl info <file>\n"
               "  dcl list <file> <p> [general|k4fast|cc|trivial] [seed]\n"
               "  dcl count <file> <p>\n"
               "  dcl decompose <file> <delta>\n"
               "  dcl dynamic <family> <n> <p> [batches] [seed]   (family: "
               "window | churn | densify | teardown)\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string family = argv[0];
  const auto n = static_cast<NodeId>(std::atoi(argv[1]));
  const std::uint64_t seed = (argc > 2) ? std::strtoull(argv[2], nullptr, 10)
                                        : 1;
  Rng rng(seed);
  Graph g;
  if (family.rfind("gnm:", 0) == 0) {
    g = erdos_renyi_gnm(n, std::atoll(family.c_str() + 4), rng);
  } else if (family.rfind("gnp:", 0) == 0) {
    g = erdos_renyi_gnp(n, std::atof(family.c_str() + 4), rng);
  } else if (family == "clustered") {
    g = clustered_workload(n, rng);
  } else if (family == "periphery") {
    g = periphery_workload(n, rng);
  } else if (family == "ring") {
    g = ring_of_cliques_workload(n, rng);
  } else if (family.rfind("powerlaw:", 0) == 0) {
    g = power_law_chung_lu(n, 2.5, std::atof(family.c_str() + 9), rng);
  } else if (family == "complete") {
    g = complete_graph(n);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return usage();
  }
  write_edge_list(g, std::cout);
  std::fprintf(stderr, "generated %s graph: n=%d m=%lld\n", family.c_str(),
               g.node_count(), static_cast<long long>(g.edge_count()));
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) return usage();
  const Graph g = load_edge_list(argv[0]);
  const auto dec = degeneracy_order(g);
  const auto [comp, components] = g.connected_components();
  (void)comp;
  std::printf("nodes:       %d\n", g.node_count());
  std::printf("edges:       %lld\n", static_cast<long long>(g.edge_count()));
  std::printf("max degree:  %d\n", g.max_degree());
  std::printf("avg degree:  %.2f\n", g.average_degree());
  std::printf("degeneracy:  %d\n", dec.degeneracy);
  std::printf("components:  %d\n", components);
  std::printf("triangles:   %llu\n",
              static_cast<unsigned long long>(count_k_cliques(g, 3)));
  return 0;
}

int cmd_list(int argc, char** argv) {
  if (argc < 2) return usage();
  const Graph g = load_edge_list(argv[0]);
  const int p = std::atoi(argv[1]);
  const std::string algo = (argc > 2) ? argv[2] : "general";
  const std::uint64_t seed = (argc > 3) ? std::strtoull(argv[3], nullptr, 10)
                                        : 1;
  ListingOutput out(g.node_count());
  double rounds = 0;
  if (algo == "general" || algo == "k4fast") {
    KpConfig cfg;
    cfg.p = p;
    cfg.k4_fast = (algo == "k4fast");
    cfg.seed = seed;
    const auto result = list_kp_collect(g, cfg, out);
    rounds = result.total_rounds();
    result.ledger.print_breakdown(std::cout);
  } else if (algo == "cc") {
    SparseCcConfig cfg;
    cfg.p = p;
    cfg.seed = seed;
    const auto result = sparse_cc_list(g, cfg, out);
    rounds = result.total_rounds();
    result.ledger.print_breakdown(std::cout);
  } else if (algo == "trivial") {
    const auto result = trivial_broadcast_list(g, p, out);
    rounds = result.total_rounds();
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return usage();
  }
  std::printf("algorithm:      %s\n", algo.c_str());
  std::printf("K%d instances:   %llu (unique; %llu reports)\n", p,
              static_cast<unsigned long long>(out.unique_count()),
              static_cast<unsigned long long>(out.total_reports()));
  std::printf("rounds:         %.1f\n", rounds);
  const auto truth = count_k_cliques(g, p);
  std::printf("oracle check:   %llu — %s\n",
              static_cast<unsigned long long>(truth),
              truth == out.unique_count() ? "match" : "MISMATCH");
  return truth == out.unique_count() ? 0 : 1;
}

int cmd_count(int argc, char** argv) {
  if (argc < 2) return usage();
  const Graph g = load_edge_list(argv[0]);
  const int p = std::atoi(argv[1]);
  std::printf("%llu\n",
              static_cast<unsigned long long>(count_k_cliques(g, p)));
  return 0;
}

int cmd_decompose(int argc, char** argv) {
  if (argc < 2) return usage();
  const Graph g = load_edge_list(argv[0]);
  const double delta = std::atof(argv[1]);
  DecompositionConfig cfg;
  cfg.delta = delta;
  Rng rng(1);
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  std::printf("delta:           %.3f (n^delta = %lld)\n", delta,
              static_cast<long long>(ceil_pow(g.node_count(), delta)));
  std::printf("charged rounds:  %.1f (T2.3: Õ(n^{1-delta}))\n",
              d.charged_rounds);
  std::printf("|Em| (clusters): %lld\n", static_cast<long long>(d.em_count));
  std::printf("|Es| (sparse):   %lld\n", static_cast<long long>(d.es_count));
  std::printf("|Er| (removed):  %lld (budget |E|/6 = %lld)\n",
              static_cast<long long>(d.er_count),
              static_cast<long long>(g.edge_count() / 6));
  std::printf("clusters:        %zu\n", d.clusters.size());
  for (const auto& c : d.clusters) {
    std::printf("  cluster %d: %zu nodes, min degree %d, %lld internal "
                "edges, mixing ≈ %.1f\n",
                c.id, c.nodes.size(), c.min_internal_degree,
                static_cast<long long>(c.internal_edges), c.mixing_time);
  }
  const auto errors = verify_decomposition(
      g, g.node_count(), cfg, d, polylog_mixing_bound(g.edge_count()));
  std::printf("verification:    %s\n",
              errors.empty() ? "all Definition 2.2 guarantees hold"
                             : errors.front().c_str());
  return errors.empty() ? 0 : 1;
}

int cmd_dynamic(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string family = argv[0];
  const auto n = static_cast<NodeId>(std::atoi(argv[1]));
  const int p = std::atoi(argv[2]);
  const int batches = (argc > 3) ? std::atoi(argv[3]) : 12;
  const std::uint64_t seed = (argc > 4) ? std::strtoull(argv[4], nullptr, 10)
                                        : 1;
  Rng rng(seed);
  UpdateStream stream;
  if (family == "window") {
    stream = sliding_window_stream(n, batches, std::max(1, n / 3), 4, rng);
  } else if (family == "churn") {
    const auto m = std::min<EdgeId>(4 * static_cast<EdgeId>(n),
                                    static_cast<EdgeId>(n) * (n - 1) / 6);
    stream = churn_stream(n, m, batches, std::max(1, n / 8), rng);
  } else if (family == "densify") {
    stream = densifying_community_stream(n, 4, batches, std::max(1, n / 4),
                                         rng);
  } else if (family == "teardown") {
    const auto peak = std::min<EdgeId>(3 * static_cast<EdgeId>(n),
                                       static_cast<EdgeId>(n) * (n - 1) / 4);
    stream = build_teardown_stream(n, peak, std::max(2, batches), rng);
  } else {
    std::fprintf(stderr, "unknown stream family '%s'\n", family.c_str());
    return usage();
  }

  DynamicLister lister(Graph::from_edges(stream.n, stream.initial), p);
  std::printf("initial:  m=%lld  K%d=%llu\n",
              static_cast<long long>(lister.graph().edge_count()), p,
              static_cast<unsigned long long>(lister.clique_count()));
  std::printf("%6s %8s %8s %10s %10s %10s %8s\n", "batch", "+edges", "-edges",
              "+cliques", "-cliques", "total", "witness");
  for (std::size_t b = 0; b < stream.batches.size(); ++b) {
    lister.apply(stream.batches[b]);
    const DynamicBatchStats& s = lister.last_stats();
    std::printf("%6zu %8lld %8lld %10llu %10llu %10llu %8d\n", b,
                static_cast<long long>(s.inserted_edges),
                static_cast<long long>(s.erased_edges),
                static_cast<unsigned long long>(s.cliques_added),
                static_cast<unsigned long long>(s.cliques_removed),
                static_cast<unsigned long long>(s.clique_count),
                s.arboricity_witness);
  }
  const auto truth = count_k_cliques(lister.graph().snapshot(), p);
  std::printf("oracle check:   %llu — %s\n",
              static_cast<unsigned long long>(truth),
              truth == lister.clique_count() ? "match" : "MISMATCH");
  return truth == lister.clique_count() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "list") return cmd_list(argc - 2, argv + 2);
    if (cmd == "count") return cmd_count(argc - 2, argv + 2);
    if (cmd == "decompose") return cmd_decompose(argc - 2, argv + 2);
    if (cmd == "dynamic") return cmd_dynamic(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcl %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}

#!/usr/bin/env bash
# Semantic-lint driver: runs tools/dcl_semlint.py against the repo's
# compile_commands.json, regenerating it when the CMake cache is missing or
# older than CMakeLists.txt (a stale database silently drops new TUs, which
# reads as "clean" when it is not).
#
# Usage:
#   tools/run_semlint.sh                 # fixtures self-test + src scan
#   tools/run_semlint.sh --src-only      # skip the fixture self-test
#   tools/run_semlint.sh --fixtures-only # skip the src scan
#   BUILD_DIR=build-asan tools/run_semlint.sh   # alternate build dir
#
# Exit codes mirror the analyzer: 0 clean, 1 findings/self-test mismatch,
# 2 usage or parse error, 77 libclang unavailable (ctest maps 77 to SKIP;
# CI installs python3-clang so the job is blocking there).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-build}"

case "${BUILD_DIR}" in
  /*) ;;
  *) BUILD_DIR="${REPO_ROOT}/${BUILD_DIR}" ;;
esac

RUN_FIXTURES=1
RUN_SRC=1
for arg in "$@"; do
  case "${arg}" in
    --src-only) RUN_FIXTURES=0 ;;
    --fixtures-only) RUN_SRC=0 ;;
    *) echo "run_semlint.sh: unknown argument '${arg}'" >&2; exit 2 ;;
  esac
done

SEMLINT="${REPO_ROOT}/tools/dcl_semlint.py"

if [[ "${RUN_FIXTURES}" -eq 1 ]]; then
  python3 "${SEMLINT}" --expect "${REPO_ROOT}/tests/semlint_fixtures"
fi

if [[ "${RUN_SRC}" -eq 1 ]]; then
  # The src scan needs the exported compilation database; (re)configure when
  # it is absent or predates CMakeLists.txt. Configure only — no build.
  DB="${BUILD_DIR}/compile_commands.json"
  if [[ ! -f "${DB}" || "${REPO_ROOT}/CMakeLists.txt" -nt "${DB}" ]]; then
    echo "run_semlint.sh: refreshing ${DB}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
  fi
  python3 "${SEMLINT}" --root "${REPO_ROOT}" --build-dir "${BUILD_DIR}"
fi

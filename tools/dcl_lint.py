#!/usr/bin/env python3
"""dcl_lint — the project lint that machine-checks the determinism contracts.

Every headline claim of this reproduction (bit-identical RoundLedger
fingerprints and clique sets at any DCL_THREADS; fault histories that are a
pure function of (seed, clock, key, index, attempt)) rests on source-level
contracts that used to live only in comments. This tool codifies them as
named, testable rules over `src/` and `tools/dcl_cli.cpp`:

  wallclock            No rand/srand/std::random_device/time(/
                       std::chrono::system_clock in library code — all
                       randomness flows through the seeded `Rng`
                       (common/rng.h) and nothing reads the wall clock, or
                       the PR 7 replay guarantee dies. One carve-out: the
                       TUs in WALLCLOCK_OVERLAY_TUS may read a clock for
                       the opt-in trace overlay (DCL_TRACE_WALLCLOCK=1),
                       but only if the file carries a written
                       `// dcl-lint: wallclock-overlay: <justification>`
                       marker (docs/OBSERVABILITY.md).
  unordered-iteration  No iteration over std::unordered_map/unordered_set in
                       any translation unit that charges the RoundLedger or
                       reports into ListingOutput (decided by a taint pass
                       over the include graph): hash-table iteration order
                       is implementation-defined and would leak into
                       fingerprints.
  float-ledger         No float/double accumulator (`x += ...`) may feed a
                       RoundLedger charge_* call: float accumulation order
                       varies across shard merges. Merge exact integers,
                       cast to double once at the charge site.
  raw-thread           No std::thread/std::jthread/std::async outside
                       src/common/parallel_for.cpp — all parallelism goes
                       through the audited worker pool, whose merge
                       contract DCL_SHARD_AUDIT can replay.
  reserve-hint         (warning) push_back loops bounded by n/m-shaped
                       quantities with no reserve() for the container in
                       sight: a growth-rehash hazard on hot paths, not a
                       determinism bug — reported but never fatal.

Allowlist: a violating line (or the line directly above it) may carry

    // dcl-lint: allow(<rule>): <justification>

with a non-empty justification; an allow() with a missing/empty
justification or an unknown rule name is itself an error (rule bad-allow).

Exit codes: 0 clean (warnings allowed), 1 violations, 2 usage/internal
error. `--expect DIR` runs the self-test mode used by ctest: every finding
must match a `// dcl-lint-expect: <rule>` marker in the fixture files,
line-exactly, and vice versa.

No third-party dependencies by design: the container toolchain has no
libclang/clang-query, so the scanner is a comment/string-stripping lexer
plus per-file regex passes — shallow but deterministic, fast, and entirely
testable (tests/lint_fixtures/). Documented in docs/ANALYSIS.md.
"""

import argparse
import os
import re
import sys

RULES = {
    "wallclock": "wall-clock or unseeded randomness in library code",
    "unordered-iteration":
        "unordered container iterated in a ledger/output-bearing TU",
    "float-ledger": "float accumulator feeds a RoundLedger charge",
    "raw-thread": "raw std::thread/std::async outside the audited pool",
    "reserve-hint": "push_back loop over n/m-sized range without reserve()",
    "bad-allow": "malformed dcl-lint allow() annotation",
}
WARNING_RULES = {"reserve-hint"}

# Rules owned by the semantic sibling tool (tools/dcl_semlint.py). The two
# linters share the one allow() grammar, so an allow naming a semlint rule
# is well-formed here — it simply suppresses nothing in THIS tool. Kept as
# an explicit registry so a typo'd rule name still trips bad-allow.
FOREIGN_RULES = {
    "sem-unordered-iter",
    "sem-narrow",
    "sem-index-32",
    "sem-mul-width",
    "sem-hot-alloc",
}

# Paths (relative to the repo root, forward slashes) where raw threading
# primitives are the implementation of the audited pool itself.
RAW_THREAD_ALLOWED = {
    "src/common/parallel_for.cpp",
    "src/common/parallel_for.h",
}

ALLOW_RE = re.compile(
    r"//\s*dcl-lint:\s*allow\(([^)]*)\)\s*(?::\s*(.*?))?\s*$")
# No comment-opener prefix: expect markers may ride in // or /* */ comments
# (the latter lets a marker share a line with an allow() annotation, which
# must end its own line).
EXPECT_RE = re.compile(r"dcl-lint-expect:\s*([\w-]+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        sev = "warning" if self.rule in WARNING_RULES else "error"
        return (f"{self.path}:{self.line}: {sev}: [{self.rule}] "
                f"{self.message}")


def strip_comments_and_strings(text):
    """Blanks comments, string literals, and char literals while keeping
    line structure, so token scans cannot hit prose or quoted text.
    Returns (stripped_text, comment_lines) where comment_lines maps line
    number -> full comment text (for allow/expect annotations)."""
    out = []
    comments = {}
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comments.setdefault(line, []).append(text[i:j])
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            comments.setdefault(line, []).append(chunk)
            out.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if j > i + 1 and text[j - 1] == quote else ""))
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    stripped = "".join(out)
    flat_comments = {ln: " ".join(chunks) for ln, chunks in comments.items()}
    return stripped, flat_comments


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath.replace(os.sep, "/")
        self.abspath = os.path.join(root, relpath)
        with open(self.abspath, encoding="utf-8") as f:
            self.text = f.read()
        self.stripped, self.comments = strip_comments_and_strings(self.text)
        self.lines = self.stripped.split("\n")
        self.allows = {}   # line -> set of rules allowed on that line
        self.expects = []  # (line, rule) markers for --expect mode
        self.bad_allows = []  # Finding list
        self._parse_annotations()

    def _parse_annotations(self):
        for ln, comment in sorted(self.comments.items()):
            m = ALLOW_RE.search(comment)
            if m:
                rules = [r.strip() for r in m.group(1).split(",")]
                justification = (m.group(2) or "").strip()
                bad = [r for r in rules
                       if r not in RULES and r not in FOREIGN_RULES]
                if bad or not justification:
                    why = (f"unknown rule(s) {', '.join(bad)}" if bad else
                           "missing justification text")
                    self.bad_allows.append(Finding(
                        self.relpath, ln, "bad-allow",
                        f"allow() annotation rejected: {why} "
                        f"(format: // dcl-lint: allow(rule): why it is safe)"))
                else:
                    # The annotation covers its own line and the next line,
                    # so it can ride above a long statement.
                    for target in (ln, ln + 1):
                        self.allows.setdefault(target, set()).update(rules)
            for em in EXPECT_RE.finditer(comment):
                self.expects.append((ln, em.group(1)))

    def allowed(self, line, rule):
        return rule in self.allows.get(line, set())

    def line_of_offset(self, offset):
        return self.stripped.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Rule implementations. Each returns a list of Finding.
# ---------------------------------------------------------------------------

WALLCLOCK_PATTERNS = [
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() — use the seeded dcl::Rng (common/rng.h)"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?random_device\b"),
     "std::random_device is nondeterministic — use the seeded dcl::Rng"),
    (re.compile(r"(?<![\w:.>])time\s*\("),
     "time() reads the wall clock — replay (PR 7) requires pure functions "
     "of (seed, clock, key, index, attempt)"),
    (re.compile(r"\b(?:system_clock|high_resolution_clock|steady_clock)\b"),
     "wall/steady clock reads are banned in src/ — timing belongs to the "
     "self-timed bench harnesses, never to algorithm state"),
    # `.`/`->` in the lookbehind: `collector.clock()` is a method call on a
    # project type (the telemetry VirtualClock accessor), not the C API.
    (re.compile(r"(?<![\w:.>])(?:gettimeofday|clock_gettime|clock)\s*\("),
     "C clock APIs read the wall clock"),
]

# The wall-clock overlay carve-out (docs/OBSERVABILITY.md): exactly these
# TUs may read a clock, and ONLY if the file carries a written
# justification marker
#
#     // dcl-lint: wallclock-overlay: <why this TU may read a clock>
#
# An allowlisted file without the marker is still flagged — the allowlist
# buys the *possibility* of an overlay, the justification buys the code.
# The fixture entry proves the marker requirement has teeth.
WALLCLOCK_OVERLAY_TUS = {
    "src/common/telemetry_wallclock.cpp",
    "tests/lint_fixtures/telemetry_wallclock_unjustified.cpp",
}
WALLCLOCK_OVERLAY_MARKER_RE = re.compile(
    r"//\s*dcl-lint:\s*wallclock-overlay:\s*\S")


def rule_wallclock(sf):
    if sf.relpath in WALLCLOCK_OVERLAY_TUS:
        for comment in sf.comments.values():
            if WALLCLOCK_OVERLAY_MARKER_RE.search(comment):
                return []
        # Allowlisted but unjustified: fall through and flag every clock
        # read as usual.
    findings = []
    for pattern, why in WALLCLOCK_PATTERNS:
        for m in pattern.finditer(sf.stripped):
            ln = sf.line_of_offset(m.start())
            findings.append(Finding(sf.relpath, ln, "wallclock",
                                    f"{m.group(0).strip()}: {why}"))
    return findings


UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
# `>\s+name` after the template args; template args may nest, so scan
# forward balancing angle brackets from the decl start.
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_identifiers(sf):
    """Names declared (anywhere in the file) with an unordered container
    type — members, locals, params. Heuristic: balance the <...> after the
    template name, then take the next identifier."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(sf.stripped):
        i = m.end() - 1  # at '<'
        depth = 0
        n = len(sf.stripped)
        while i < n:
            if sf.stripped[i] == "<":
                depth += 1
            elif sf.stripped[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = sf.stripped[i + 1:i + 200]
        im = IDENT_RE.search(tail)
        if im:
            names.add(im.group(0))
    return names


def rule_unordered_iteration(sf, tainted):
    if sf.relpath not in tainted:
        return []
    names = unordered_identifiers(sf)
    if not names:
        return []
    findings = []
    name_alt = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(
        r"\bfor\s*\([^;()]*?:\s*(" + name_alt + r")\s*\)")
    iter_call = re.compile(
        r"\b(" + name_alt + r")\s*\.\s*(?:c?begin|c?end|c?rbegin)\s*\(")
    for pattern, what in ((range_for, "range-for over"),
                          (iter_call, "iterator walk of")):
        for m in pattern.finditer(sf.stripped):
            ln = sf.line_of_offset(m.start())
            findings.append(Finding(
                sf.relpath, ln, "unordered-iteration",
                f"{what} unordered container '{m.group(1)}' in a TU that "
                f"feeds RoundLedger/ListingOutput — hash iteration order "
                f"would leak into fingerprints; use a sorted structure or "
                f"sort before visiting"))
    return findings


FLOAT_DECL_RE = re.compile(
    r"\b(?:double|float)\s+(?:\w+\s*,\s*)*(\w+)\s*(?:[;={,)]|\+=)")
CHARGE_CALL_RE = re.compile(
    r"\bcharge_(?:exchange|routing|analytic|retry)\s*\(")


def rule_float_ledger(sf):
    # Identifiers declared float/double anywhere in the file...
    float_names = set()
    for m in re.finditer(r"\b(?:double|float)\b([^;(){}]*)[;={]",
                         sf.stripped):
        for im in IDENT_RE.finditer(m.group(1)):
            if im.group(0) not in ("const", "static", "constexpr", "auto"):
                float_names.add(im.group(0))
    if not float_names:
        return []
    # ...that are compound-accumulated...
    accumulated = set()
    for name in float_names:
        if re.search(r"\b" + re.escape(name) + r"\s*[+\-*]=", sf.stripped) or \
           re.search(r"\b" + re.escape(name) + r"\s*=\s*" + re.escape(name) +
                     r"\s*[+\-]", sf.stripped):
            accumulated.add(name)
    if not accumulated:
        return []
    # ...and appear inside a charge_*(...) argument list.
    findings = []
    for m in CHARGE_CALL_RE.finditer(sf.stripped):
        i = m.end() - 1  # at '('
        depth = 0
        n = len(sf.stripped)
        start = i
        while i < n:
            if sf.stripped[i] == "(":
                depth += 1
            elif sf.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        args = sf.stripped[start:i + 1]
        for name in sorted(accumulated):
            if re.search(r"\b" + re.escape(name) + r"\b", args):
                ln = sf.line_of_offset(m.start())
                findings.append(Finding(
                    sf.relpath, ln, "float-ledger",
                    f"float accumulator '{name}' feeds a ledger charge — "
                    f"accumulation order varies across shard merges; sum "
                    f"exact integers and cast once at the charge site"))
    return findings


RAW_THREAD_RE = re.compile(
    r"\bstd\s*::\s*(thread|jthread|async)\b")


def rule_raw_thread(sf):
    if sf.relpath in RAW_THREAD_ALLOWED:
        return []
    findings = []
    for m in RAW_THREAD_RE.finditer(sf.stripped):
        ln = sf.line_of_offset(m.start())
        findings.append(Finding(
            sf.relpath, ln, "raw-thread",
            f"std::{m.group(1)} outside src/common/parallel_for.cpp — all "
            f"parallelism must go through parallel_for_shards so the merge "
            f"contract stays auditable (DCL_SHARD_AUDIT) and fingerprints "
            f"stay thread-count independent"))
    return findings


FOR_RE = re.compile(r"\bfor\s*\(")
SIZE_BOUND_RE = re.compile(
    r"\bnode_count\s*\(|\bedge_count\s*\(|\.size\s*\(\s*\)|\bn\b|\bm\b")
PUSH_BACK_RE = re.compile(r"([A-Za-z_]\w*)\s*\.\s*push_back\s*\(")


def rule_reserve_hint(sf):
    findings = []
    n = len(sf.stripped)
    for fm in FOR_RE.finditer(sf.stripped):
        # Grab the loop header (...) by balancing parens.
        i = fm.end() - 1
        depth = 0
        while i < n:
            if sf.stripped[i] == "(":
                depth += 1
            elif sf.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        header = sf.stripped[fm.end():i]
        if not SIZE_BOUND_RE.search(header):
            continue
        # Body: the following balanced {...} block (single-statement loop
        # bodies can't hide an interesting push_back pattern and are
        # skipped).
        j = i + 1
        while j < n and sf.stripped[j] in " \t\n":
            j += 1
        if j >= n or sf.stripped[j] != "{":
            continue
        depth = 0
        k = j
        while k < n:
            if sf.stripped[k] == "{":
                depth += 1
            elif sf.stripped[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        body = sf.stripped[j:k + 1]
        for pm in PUSH_BACK_RE.finditer(body):
            container = pm.group(1)
            if re.search(r"\b" + re.escape(container) + r"\s*\.\s*reserve\s*\(",
                         sf.stripped):
                continue
            # Only unconditional pushes at the top level of the loop body:
            # a push nested in a deeper block (if/lambda/inner loop) is
            # data-dependent, so its final size is not the loop bound and
            # reserve(bound) would be a guess, not a fix.
            depth = 0
            for ch in body[:pm.start()]:
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
            if depth != 1:
                continue
            stmt_start = max(body.rfind(";", 0, pm.start()),
                             body.rfind("{", 0, pm.start()),
                             body.rfind("}", 0, pm.start()))
            if re.search(r"\b(?:if|else|while|for)\b",
                         body[stmt_start + 1:pm.start()]):
                continue
            ln = sf.line_of_offset(j + pm.start())
            findings.append(Finding(
                sf.relpath, ln, "reserve-hint",
                f"'{container}.push_back' inside an n/m-bounded loop with no "
                f"'{container}.reserve(...)' in this file — growth rehashes "
                f"on a hot path; reserve or justify"))
    return findings


# ---------------------------------------------------------------------------
# Taint pass: which files belong to a TU that charges the RoundLedger or
# reports into ListingOutput?
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)
TAINT_RE = re.compile(r"\bRoundLedger\b|\bListingOutput\b")


def compute_tainted(files, root):
    """A file is tainted iff it names RoundLedger/ListingOutput itself or
    is (transitively) included by a file that does: its code is compiled
    into that translation unit, so its iteration orders can reach the
    fingerprints. Project includes resolve against src/ (the include root)
    and the including file's directory."""
    by_rel = {sf.relpath: sf for sf in files}
    includes = {}
    for sf in files:
        deps = []
        for inc in INCLUDE_RE.findall(sf.text):
            for base in ("src", os.path.dirname(sf.relpath)):
                cand = os.path.normpath(os.path.join(base, inc)).replace(
                    os.sep, "/")
                if cand in by_rel:
                    deps.append(cand)
                    break
        includes[sf.relpath] = deps
    tainted = {sf.relpath for sf in files if TAINT_RE.search(sf.stripped)}
    frontier = list(tainted)
    while frontier:
        cur = frontier.pop()
        for dep in includes.get(cur, []):
            if dep not in tainted:
                tainted.add(dep)
                frontier.append(dep)
    return tainted


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root, paths):
    rels = []
    for p in paths:
        ap = os.path.join(root, p)
        if os.path.isfile(ap):
            rels.append(os.path.relpath(ap, root))
        elif os.path.isdir(ap):
            for dirpath, _, names in os.walk(ap):
                for name in sorted(names):
                    if name.endswith((".cpp", ".h", ".cc", ".hpp")):
                        rels.append(os.path.relpath(
                            os.path.join(dirpath, name), root))
        else:
            raise FileNotFoundError(p)
    return sorted(set(r.replace(os.sep, "/") for r in rels))


def run_lint(root, paths):
    files = [SourceFile(root, r) for r in collect_files(root, paths)]
    tainted = compute_tainted(files, root)
    findings = []
    for sf in files:
        raw = []
        raw += rule_wallclock(sf)
        raw += rule_unordered_iteration(sf, tainted)
        raw += rule_float_ledger(sf)
        raw += rule_raw_thread(sf)
        raw += rule_reserve_hint(sf)
        kept = [f for f in raw if not sf.allowed(f.line, f.rule)]
        kept += sf.bad_allows  # bad-allow is never allowlistable
        findings += kept
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return files, findings


def main(argv):
    ap = argparse.ArgumentParser(
        prog="dcl_lint.py",
        description="determinism-contract lint (see docs/ANALYSIS.md)")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: src/ tools/dcl_cli.cpp)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--expect", action="store_true",
                    help="self-test mode: findings must match "
                         "dcl-lint-expect markers exactly")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args(argv[1:])

    if args.list_rules:
        for rule, desc in RULES.items():
            sev = "warning" if rule in WARNING_RULES else "error"
            print(f"{rule:20s} [{sev}] {desc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src", "tools/dcl_cli.cpp"]
    try:
        files, findings = run_lint(root, paths)
    except FileNotFoundError as e:
        print(f"dcl_lint: no such file or directory: {e}", file=sys.stderr)
        return 2

    if args.expect:
        expected = set()
        for sf in files:
            for ln, rule in sf.expects:
                expected.add((sf.relpath, ln, rule))
        actual = {(f.path, f.line, f.rule) for f in findings}
        missing = sorted(expected - actual)
        surprise = sorted(actual - expected)
        for path, ln, rule in missing:
            print(f"{path}:{ln}: expected [{rule}] but the lint was silent")
        for path, ln, rule in surprise:
            print(f"{path}:{ln}: unexpected [{rule}] finding")
        if missing or surprise:
            print(f"self-test FAILED: {len(missing)} missed, "
                  f"{len(surprise)} unexpected")
            return 1
        print(f"self-test OK: {len(expected)} planted finding(s) all "
              f"reported, nothing else flagged")
        return 0

    errors = [f for f in findings if f.rule not in WARNING_RULES]
    warnings = [f for f in findings if f.rule in WARNING_RULES]
    for f in findings:
        print(f)
    if errors:
        print(f"dcl_lint: {len(errors)} error(s), {len(warnings)} "
              f"warning(s) over {len(files)} file(s)")
        return 1
    print(f"dcl_lint: clean — {len(files)} file(s), {len(warnings)} "
          f"warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, exactly the gate every PR
# must keep green (see ROADMAP.md).
#
# Usage:
#   tools/run_tier1.sh                 # Release build, all tests
#   tools/run_tier1.sh -R Differential # forward extra args to ctest
#   BUILD_DIR=build-asan CMAKE_ARGS="-DCMAKE_BUILD_TYPE=Debug -DDCL_SANITIZE=ON" \
#     tools/run_tier1.sh              # sanitizer configuration
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"

# Relative BUILD_DIR is rooted at the repo; absolute paths pass through.
case "${BUILD_DIR}" in
  /*) ;;
  *) BUILD_DIR="${REPO_ROOT}/${BUILD_DIR}" ;;
esac

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" ${CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "${JOBS}"
cd "${BUILD_DIR}"
ctest --output-on-failure -j "${JOBS}" "$@"

#!/usr/bin/env python3
"""Validate, render, and diff dcl-run-report v1 JSON files.

Usage: trace_report.py --validate REPORT [REPORT ...]
       trace_report.py --summary REPORT
       trace_report.py --diff OLD NEW [--rounds-tolerance PCT]
                                      [--messages-tolerance PCT]

The reports are emitted by `dcl list --report FILE` (and by bench_core
when DCL_BENCH_REPORT_DIR is set). Their content is purely virtual-time
(ledger rounds / messages / work units), so two runs of the same build
and inputs must produce byte-identical files at any DCL_THREADS — the CI
trace-smoke leg relies on that.

  --validate   schema-check one or more reports: required keys, types,
               version, clock/ledger consistency. Exit 1 on the first
               violation, naming it.
  --summary    render one report as human-readable tables: ledger
               breakdown, deepest/widest spans, metric snapshot.
  --diff       compare two reports phase by phase and counter by counter.
               Exact integers (messages, counters) must match within the
               messages tolerance; ledger rounds within the rounds
               tolerance (both default 0%%: any growth is a regression).
               Improvements are reported but never fail. Exit 1 on
               regression.

Exit codes: 0 clean, 1 validation failure or regression, 2 usage error,
3 a report file is missing or unreadable.
"""

import json
import sys


def fail(msg):
    print("trace_report: " + msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print("trace_report: cannot read %s: %s" % (path, exc),
              file=sys.stderr)
        sys.exit(3)


# ---- validation ----------------------------------------------------------

NUMBER = (int, float)


def expect(cond, path, msg):
    if not cond:
        fail("%s: %s" % (path, msg))


def validate_ledger(led, path):
    if led is None:  # legal: runs with no round accounting (dynamic engine)
        return
    expect(isinstance(led, dict), path, "ledger must be an object")
    for key in ("total_rounds", "total_messages", "entries"):
        expect(isinstance(led.get(key), NUMBER), path,
               "ledger.%s must be a number" % key)
    kinds = led.get("rounds_by_kind")
    expect(isinstance(kinds, dict), path, "ledger.rounds_by_kind missing")
    for kind in ("exchange", "routing", "analytic"):
        expect(isinstance(kinds.get(kind), NUMBER), path,
               "rounds_by_kind.%s must be a number" % kind)
    rows = led.get("breakdown")
    expect(isinstance(rows, list), path, "ledger.breakdown must be an array")
    rounds = 0.0
    messages = 0
    for i, row in enumerate(rows):
        where = "%s: breakdown[%d]" % (path, i)
        expect(isinstance(row, dict), where, "must be an object")
        expect(isinstance(row.get("label"), str), where, "label must be a string")
        expect(isinstance(row.get("kind"), str), where, "kind must be a string")
        expect(isinstance(row.get("rounds"), NUMBER), where,
               "rounds must be a number")
        expect(isinstance(row.get("messages"), int), where,
               "messages must be an integer")
        rounds += row["rounds"]
        messages += row["messages"]
    expect(abs(rounds - led["total_rounds"]) < 1e-6, path,
           "breakdown rounds (%s) do not sum to total_rounds (%s)"
           % (rounds, led["total_rounds"]))
    expect(messages == led["total_messages"], path,
           "breakdown messages (%d) do not sum to total_messages (%d)"
           % (messages, led["total_messages"]))
    retry = led.get("retry")
    expect(isinstance(retry, dict), path, "ledger.retry missing")
    for key in ("retry_rounds", "retransmitted_messages", "lost_messages"):
        expect(isinstance(retry.get(key), NUMBER), path,
               "retry.%s must be a number" % key)


def validate_metrics(metrics, path):
    expect(isinstance(metrics, dict), path, "metrics must be an object")
    for section in ("counters", "gauges"):
        table = metrics.get(section)
        expect(isinstance(table, dict), path,
               "metrics.%s must be an object" % section)
        for name, value in table.items():
            expect(isinstance(value, int), path,
                   "metrics.%s[%s] must be an integer" % (section, name))
    histos = metrics.get("histograms")
    expect(isinstance(histos, dict), path, "metrics.histograms missing")
    for name, h in histos.items():
        where = "%s: histogram %s" % (path, name)
        for key in ("count", "sum", "min", "max"):
            expect(isinstance(h.get(key), int), where,
                   "%s must be an integer" % key)
        buckets = h.get("buckets")
        expect(isinstance(buckets, dict), where, "buckets must be an object")
        expect(sum(buckets.values()) == h["count"], where,
               "bucket counts do not sum to count")


def validate_trace(trace, path):
    expect(isinstance(trace, dict), path, "trace must be an object")
    for key in ("span_count", "instant_count", "max_depth"):
        expect(isinstance(trace.get(key), int), path,
               "trace.%s must be an integer" % key)
    clock = trace.get("clock")
    expect(isinstance(clock, dict), path, "trace.clock missing")
    for key in ("rounds", "messages", "work"):
        expect(isinstance(clock.get(key), NUMBER), path,
               "clock.%s must be a number" % key)
    spans = trace.get("spans")
    expect(isinstance(spans, list), path, "trace.spans must be an array")
    expect(len(spans) == trace["span_count"], path,
           "span_count does not match len(spans)")
    for i, span in enumerate(spans):
        where = "%s: spans[%d]" % (path, i)
        expect(isinstance(span.get("name"), str), where, "name must be a string")
        expect(isinstance(span.get("cat"), str), where,
               "cat must be a string")
        expect(isinstance(span.get("depth"), int), where,
               "depth must be an integer")
        expect(span["depth"] <= trace["max_depth"], where,
               "depth exceeds max_depth")
        expect(isinstance(span.get("parent"), int), where,
               "parent must be an integer span id")
        expect(-1 <= span["parent"] < i, where,
               "parent must precede the span (or be -1)")
        # Coordinates are [begin, end] pairs on each virtual axis.
        for axis in ("rounds", "messages", "work"):
            pair = span.get(axis)
            expect(isinstance(pair, list) and len(pair) == 2
                   and all(isinstance(v, NUMBER) for v in pair), where,
                   "%s must be a [begin, end] number pair" % axis)
            expect(pair[1] >= pair[0], where,
                   "span ends before it begins (%s)" % axis)
        # The run report is virtual-time only; a wall-clock field in a span
        # means the overlay leaked past the chrome-trace exporter.
        for key in span:
            expect("wall" not in key, where,
                   "wall-clock field '%s' in run report" % key)
    instants = trace.get("instants")
    expect(isinstance(instants, list), path, "trace.instants must be an array")
    expect(len(instants) == trace["instant_count"], path,
           "instant_count does not match len(instants)")
    for i, event in enumerate(instants):
        where = "%s: instants[%d]" % (path, i)
        expect(isinstance(event.get("name"), str), where,
               "name must be a string")
        expect(isinstance(event.get("cat"), str), where, "cat must be a string")
        for axis in ("rounds", "messages", "work"):
            expect(isinstance(event.get(axis), NUMBER), where,
                   "%s must be a number" % axis)
        for key in event:
            expect("wall" not in key, where,
                   "wall-clock field '%s' in run report" % key)


def validate(report, path):
    expect(isinstance(report, dict), path, "report must be a JSON object")
    expect(report.get("schema") == "dcl-run-report", path,
           "schema must be 'dcl-run-report' (got %r)" % report.get("schema"))
    expect(report.get("version") == 1, path,
           "version must be 1 (got %r)" % report.get("version"))
    expect(isinstance(report.get("command"), str), path,
           "command must be a string")
    validate_ledger(report.get("ledger"), path)
    validate_metrics(report.get("metrics"), path)
    validate_trace(report.get("trace"), path)


# ---- summary -------------------------------------------------------------

def render_summary(report):
    led = report["ledger"]
    trace = report["trace"]
    print("command:  %s" % report["command"])
    if led is None:
        print("ledger:   none (run charged no rounds)")
    else:
        print("ledger:   %.1f rounds, %d messages, %d entries"
              % (led["total_rounds"], led["total_messages"], led["entries"]))
        retry = led["retry"]
        if retry["retry_rounds"] or retry["retransmitted_messages"] \
                or retry["lost_messages"]:
            print("recovery: %.1f retry rounds, %d retransmitted, %d lost"
                  % (retry["retry_rounds"], retry["retransmitted_messages"],
                     retry["lost_messages"]))
    print()
    rows = led["breakdown"] if led is not None else []
    if rows:
        width = max(24, max(len(r["label"]) for r in rows))
        print("  %-*s %-8s %12s %14s" % (width, "phase", "kind", "rounds",
                                         "messages"))
        for row in rows:
            print("  %-*s %-8s %12.1f %14d" % (width, row["label"],
                                               row["kind"], row["rounds"],
                                               row["messages"]))
        print()
    spans = trace["spans"]
    print("trace:    %d spans, %d instants, depth %d"
          % (trace["span_count"], trace["instant_count"], trace["max_depth"]))
    if spans:
        width = max(20, max(2 * s["depth"] + len(s["name"]) for s in spans))
        print("  %-*s %-14s %10s %12s %14s" % (width, "span", "category",
                                               "rounds", "messages", "work"))
        for span in spans:
            name = "  " * span["depth"] + span["name"]
            print("  %-*s %-14s %10.1f %12d %14d"
                  % (width, name, span["cat"],
                     span["rounds"][1] - span["rounds"][0],
                     span["messages"][1] - span["messages"][0],
                     span["work"][1] - span["work"][0]))
        print()
    metrics = report["metrics"]
    if metrics["counters"] or metrics["gauges"]:
        print("metrics:")
        for name in sorted(metrics["counters"]):
            print("  %-36s %14d" % (name, metrics["counters"][name]))
        for name in sorted(metrics["gauges"]):
            print("  %-36s %14d  (gauge)" % (name, metrics["gauges"][name]))
    for name in sorted(metrics["histograms"]):
        h = metrics["histograms"][name]
        mean = h["sum"] / h["count"] if h["count"] else 0.0
        print("  %-36s count=%d min=%d mean=%.1f max=%d"
              % (name, h["count"], h["min"], mean, h["max"]))


# ---- diff ----------------------------------------------------------------

def grew(old, new, tolerance_pct):
    if new <= old:
        return False
    if old == 0:
        return True
    return (new - old) / old * 100.0 > tolerance_pct


def diff(old, new, rounds_tol, messages_tol):
    regressions = []
    improvements = []

    def check(what, old_v, new_v, tol):
        if old_v == new_v:
            return
        line = "%-44s %14s -> %-14s" % (what, old_v, new_v)
        if grew(old_v, new_v, tol):
            regressions.append(line)
        else:
            improvements.append(line)

    empty_ledger = {"total_rounds": 0, "total_messages": 0, "breakdown": []}
    old_led = old["ledger"] or empty_ledger
    new_led = new["ledger"] or empty_ledger
    check("ledger.total_rounds", old_led["total_rounds"],
          new_led["total_rounds"], rounds_tol)
    check("ledger.total_messages", old_led["total_messages"],
          new_led["total_messages"], messages_tol)
    old_rows = {(r["label"], r["kind"]): r for r in old_led["breakdown"]}
    new_rows = {(r["label"], r["kind"]): r for r in new_led["breakdown"]}
    for key in sorted(set(old_rows) | set(new_rows)):
        label = "phase %s [%s]" % key
        o = old_rows.get(key, {"rounds": 0, "messages": 0})
        n = new_rows.get(key, {"rounds": 0, "messages": 0})
        check(label + " rounds", o["rounds"], n["rounds"], rounds_tol)
        check(label + " messages", o["messages"], n["messages"], messages_tol)
    for section, tol in (("counters", messages_tol), ("gauges", messages_tol)):
        old_t = old["metrics"][section]
        new_t = new["metrics"][section]
        for name in sorted(set(old_t) | set(new_t)):
            check("%s %s" % (section[:-1], name), old_t.get(name, 0),
                  new_t.get(name, 0), tol)

    if improvements:
        print("improved / shrunk:")
        for line in improvements:
            print("  " + line)
    if regressions:
        print("REGRESSIONS (beyond tolerance):")
        for line in regressions:
            print("  " + line)
        return 1
    if not improvements:
        print("reports are identical on all compared dimensions")
    return 0


# ---- main ----------------------------------------------------------------

def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    mode = argv[1]
    if mode == "--validate":
        if len(argv) < 3:
            print("usage: trace_report.py --validate REPORT [REPORT ...]",
                  file=sys.stderr)
            return 2
        for path in argv[2:]:
            validate(load(path), path)
            print("%s: valid dcl-run-report v1" % path)
        return 0
    if mode == "--summary":
        if len(argv) != 3:
            print("usage: trace_report.py --summary REPORT", file=sys.stderr)
            return 2
        report = load(argv[2])
        validate(report, argv[2])
        render_summary(report)
        return 0
    if mode == "--diff":
        args = argv[2:]
        rounds_tol = 0.0
        messages_tol = 0.0
        paths = []
        i = 0
        while i < len(args):
            if args[i] == "--rounds-tolerance":
                rounds_tol = float(args[i + 1])
                i += 2
            elif args[i] == "--messages-tolerance":
                messages_tol = float(args[i + 1])
                i += 2
            else:
                paths.append(args[i])
                i += 1
        if len(paths) != 2:
            print("usage: trace_report.py --diff OLD NEW"
                  " [--rounds-tolerance PCT] [--messages-tolerance PCT]",
                  file=sys.stderr)
            return 2
        old = load(paths[0])
        new = load(paths[1])
        validate(old, paths[0])
        validate(new, paths[1])
        return diff(old, new, rounds_tol, messages_tol)
    print("trace_report: unknown mode '%s'" % mode, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Fixed-width ASCII table printer for the experiment harnesses.
//
// Every bench binary in bench/ regenerates one of the paper's claims as a
// table; this class renders aligned rows so the outputs are directly
// readable and diffable in EXPERIMENTS.md.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dcl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Starts a new row; values are appended with `add`.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& add(const std::string& value) {
    rows_.back().push_back(value);
    return *this;
  }
  Table& add(std::int64_t value) { return add(std::to_string(value)); }
  Table& add(std::uint64_t value) { return add(std::to_string(value)); }
  Table& add(int value) { return add(std::to_string(value)); }
  Table& add(double value, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return add(os.str());
  }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_rule(out, widths);
    print_row(out, headers_, widths);
    print_rule(out, widths);
    for (const auto& row : rows_) print_row(out, row, widths);
    print_rule(out, widths);
  }

 private:
  static void print_rule(std::ostream& out,
                         const std::vector<std::size_t>& widths) {
    out << '+';
    for (auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  }

  static void print_row(std::ostream& out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = (c < row.size()) ? row[c] : std::string{};
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell
          << " |";
    }
    out << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcl

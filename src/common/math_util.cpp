#include "common/math_util.h"

#include <cmath>
#include <cstddef>

namespace dcl {

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2 || y.size() != n) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = (ss_tot > 1e-12) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& n,
                        const std::vector<double>& rounds) {
  std::vector<double> lx, ly;
  lx.reserve(n.size());
  ly.reserve(rounds.size());
  for (std::size_t i = 0; i < n.size() && i < rounds.size(); ++i) {
    if (n[i] > 0 && rounds[i] > 0) {
      lx.push_back(std::log(n[i]));
      ly.push_back(std::log(rounds[i]));
    }
  }
  return fit_line(lx, ly);
}

}  // namespace dcl

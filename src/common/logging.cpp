#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <string_view>

#include "common/telemetry.h"

namespace dcl {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::warn};
// One lock for every LogLine in the process: lines from concurrent shard
// bodies serialize whole, never interleaving mid-line.
std::mutex g_log_mutex;
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {

void emit_log_line(LogLevel level, const std::string& line) {
  if (level >= LogLevel::info) {
    if (TraceCollector* telemetry = active_telemetry()) {
      std::string_view text(line);
      if (!text.empty() && text.back() == '\n') text.remove_suffix(1);
      telemetry->instant(text, "log");
    }
  }
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << line;
}

}  // namespace detail

}  // namespace dcl

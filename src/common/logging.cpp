#include "common/logging.h"

#include <atomic>

namespace dcl {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::warn};
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

}  // namespace dcl

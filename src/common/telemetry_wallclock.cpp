// Wall-clock overlay for the telemetry plane — the ONE translation unit in
// src/ allowed to read a clock.
//
// dcl-lint: wallclock-overlay: Telemetry spans are coordinatized in
// virtual time (ledger rounds/messages + work units) precisely so traces
// are deterministic; but when a human is profiling the *simulator itself*
// (not the simulated algorithm) a real-time overlay on the Chrome trace is
// the difference between guessing and measuring. This TU confines that
// overlay: it is dead unless DCL_TRACE_WALLCLOCK=1 is set in the
// environment, its stamps decorate only the Chrome-trace `args` (never the
// ts/dur timeline, never the RoundLedger, never the run report, never any
// fingerprint), and the wallclock lint rule allowlists exactly this file —
// a clock read anywhere else in src/ still fails the lint
// (docs/OBSERVABILITY.md, "Wall-clock policy").
#include "common/telemetry.h"

#include <chrono>
#include <cstdlib>

namespace dcl {

bool telemetry_wallclock_enabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("DCL_TRACE_WALLCLOCK");
    return value != nullptr && value[0] == '1' && value[1] == '\0';
  }();
  return enabled;
}

std::uint64_t telemetry_wallclock_now_ns() {
  if (!telemetry_wallclock_enabled()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace dcl

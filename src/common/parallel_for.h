// Sharded per-node execution.
//
// The simulator's heavy per-node loops (cluster-neighbor table builds,
// light-status scans, coverage tables) are embarrassingly parallel over the
// node index, but the round ledger and the listing output must stay
// bit-identical to the sequential execution. This helper therefore fixes a
// deterministic decomposition: [0, n) is split into at most
// `shard_threads()` *contiguous* shards whose boundaries depend only on
// (n, shard count), and the caller merges per-shard buffers in shard order
// (= node order). Shard bodies may write only to per-shard buffers or to
// disjoint per-node slots, and may combine per-shard integers by exact
// (integer) sums or maxima — every such merge is independent of execution
// interleaving, so DCL_THREADS=k produces the same ledger fingerprints and
// clique counts as the single-threaded default (enforced by
// tests/test_parallel_for.cpp).
//
// The default is 1 shard, executed inline on the calling thread: no worker
// pool is ever created unless DCL_THREADS (or set_shard_threads) opts in.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

namespace dcl {

/// Shard count for parallel_for_shards: DCL_THREADS when set (>= 1),
/// otherwise 1. Cached after the first read.
int shard_threads();

/// Overrides the shard count (tests; takes precedence over DCL_THREADS).
void set_shard_threads(int threads);

namespace parallel_detail {
/// Runs body(0..shards-1) on the persistent worker pool, the calling
/// thread included. Blocks until every shard finished; rethrows the first
/// shard exception.
void run_sharded(int shards, const std::function<void(int)>& body);
}  // namespace parallel_detail

/// Splits [0, n) into min(shard_threads(), n) contiguous shards and runs
/// `body(shard, begin, end)` for each. Shard boundaries are a pure
/// function of (n, shard count, min_grain); with one shard the body runs
/// inline.
///
/// `min_grain` is the smallest index range worth a worker wakeup for this
/// loop: the shard count is capped at n / min_grain, so a loop whose total
/// work cannot amortize the pool's dispatch latency runs inline instead of
/// paying it (measured: DCL_THREADS=4 was a net *loss* on laptop-sized
/// instances before the hot loops set grains). Callers pick the grain by
/// per-index cost; correctness never depends on it — shard merges are
/// order-independent by contract, so any effective shard count produces
/// bit-identical results (tests/test_parallel_for.cpp).
template <typename Body>
void parallel_for_shards(std::int64_t n, Body&& body,
                         std::int64_t min_grain = 1) {
  if (n <= 0) return;
  std::int64_t cap = shard_threads();
  if (min_grain > 1) {
    cap = std::min<std::int64_t>(cap, n / min_grain);
  }
  const int shards = static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(cap, n)));
  if (shards <= 1) {
    body(0, std::int64_t{0}, n);
    return;
  }
  const std::int64_t chunk = n / shards;
  const std::int64_t extra = n % shards;
  const std::function<void(int)> shard_body = [&](int s) {
    const std::int64_t lo =
        s * chunk + std::min<std::int64_t>(s, extra);
    const std::int64_t hi = lo + chunk + (s < extra ? 1 : 0);
    body(s, lo, hi);
  };
  parallel_detail::run_sharded(shards, shard_body);
}

}  // namespace dcl

// Sharded per-node execution.
//
// The simulator's heavy per-node loops (cluster-neighbor table builds,
// light-status scans, coverage tables) are embarrassingly parallel over the
// node index, but the round ledger and the listing output must stay
// bit-identical to the sequential execution. This helper therefore fixes a
// deterministic decomposition: [0, n) is split into at most
// `shard_threads()` *contiguous* shards whose boundaries depend only on
// (n, shard count), and the caller merges per-shard buffers in shard order
// (= node order). Shard bodies may write only to per-shard buffers or to
// disjoint per-node slots, and may combine per-shard integers by exact
// (integer) sums or maxima — every such merge is independent of execution
// interleaving, so DCL_THREADS=k produces the same ledger fingerprints and
// clique counts as the single-threaded default (enforced by
// tests/test_parallel_for.cpp).
//
// The default is 1 shard, executed inline on the calling thread: no worker
// pool is ever created unless DCL_THREADS (or set_shard_threads) opts in.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace dcl {

/// Shard count for parallel_for_shards: DCL_THREADS when set (>= 1),
/// otherwise 1. Cached after the first read.
int shard_threads();

/// Overrides the shard count (tests; takes precedence over DCL_THREADS).
void set_shard_threads(int threads);

// ---- Shard-order audit -----------------------------------------------------
//
// The merge contract above ("shard bodies may write only to per-shard
// buffers or disjoint per-node slots; merges are order-independent") is
// what makes DCL_THREADS a pure speed knob — but by itself it is only a
// comment. The audit mode makes it executable: instead of dispatching
// shards to the worker pool, every multi-shard region runs its bodies
// *sequentially on the calling thread* in a permuted order — a seeded
// random permutation (`random`) or exact reverse (`reverse`). A body that
// honours the contract cannot observe the permutation, so every
// fingerprint/clique assertion in the test suites must still land on the
// shard-order values; a body that reads state another shard wrote (the
// race class TSan may miss when the pool happens to serialize) produces a
// different merged result and fails those assertions deterministically.
//
// Enable via the environment (DCL_SHARD_AUDIT=random|reverse|1|0; `1` is
// `random`, read once at first use, DCL_SHARD_AUDIT_SEED seeds the
// permutation stream) or programmatically below. The permutation for
// region k is a pure function of (seed, k), so a failing run replays
// bit-exactly. Off by default: Release builds pay one relaxed atomic load
// per multi-shard region.
enum class ShardAudit { off, random, reverse };

/// Current audit mode: DCL_SHARD_AUDIT on first use, off by default.
ShardAudit shard_audit();

/// Overrides the audit mode (tests; takes precedence over the env).
void set_shard_audit(ShardAudit mode);

namespace parallel_detail {
/// Runs body(0..shards-1) on the persistent worker pool, the calling
/// thread included. Blocks until every shard finished; rethrows the first
/// shard exception.
void run_sharded(int shards, const std::function<void(int)>& body);
}  // namespace parallel_detail

/// Splits [0, n) into min(shard_threads(), n) contiguous shards and runs
/// `body(shard, begin, end)` for each. Shard boundaries are a pure
/// function of (n, shard count, min_grain); with one shard the body runs
/// inline.
///
/// `min_grain` is the smallest index range worth a worker wakeup for this
/// loop: the shard count is capped at n / min_grain, so a loop whose total
/// work cannot amortize the pool's dispatch latency runs inline instead of
/// paying it (measured: DCL_THREADS=4 was a net *loss* on laptop-sized
/// instances before the hot loops set grains). Callers pick the grain by
/// per-index cost; correctness never depends on it — shard merges are
/// order-independent by contract, so any effective shard count produces
/// bit-identical results (tests/test_parallel_for.cpp).
template <typename Body>
void parallel_for_shards(std::int64_t n, Body&& body,
                         std::int64_t min_grain = 1) {
  if (n <= 0) return;
  std::int64_t cap = shard_threads();
  if (min_grain > 1) {
    cap = std::min<std::int64_t>(cap, n / min_grain);
  }
  const int shards = static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(cap, n)));
  if (shards <= 1) {
    body(0, std::int64_t{0}, n);
    return;
  }
  const std::int64_t chunk = n / shards;
  const std::int64_t extra = n % shards;
  const std::function<void(int)> shard_body = [&](int s) {
    const std::int64_t lo =
        s * chunk + std::min<std::int64_t>(s, extra);
    const std::int64_t hi = lo + chunk + (s < extra ? 1 : 0);
    body(s, lo, hi);
  };
  parallel_detail::run_sharded(shards, shard_body);
}

// ---- Weighted-item sharding ------------------------------------------------
//
// Equal-count shards are the wrong decomposition when per-item cost is
// skewed (the q=1 one-huge-cluster regime: a handful of representative
// ranges carry most of the enumeration work). The weighted variant takes a
// per-item work estimate and cuts *contiguous* item ranges of near-equal
// total weight instead. All weight arithmetic is 64-bit end to end:
// out-degree² estimates overflow uint32 well below the ROADMAP target
// scales (a single 70k-degree hub exceeds 2^32 on its own).

/// Total weight, summed in 64 bits.
inline std::uint64_t weighted_total(std::span<const std::uint64_t> weights) {
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  return total;
}

/// The shard count parallel_for_weighted_shards derives: shard_threads(),
/// capped by the item count and — when a grain is given — by
/// total_weight / min_grain_weight, so a loop whose total estimated work
/// cannot amortize the pool's dispatch latency runs inline instead
/// (measured: grain-less sharding is a net DCL_THREADS=4 *loss* at laptop
/// sizes; the grain rule mirrors parallel_for_shards' min_grain).
inline int weighted_shard_count(std::uint64_t total_weight,
                                std::int64_t item_count,
                                std::uint64_t min_grain_weight = 0) {
  if (item_count <= 0) return 0;
  std::int64_t cap = shard_threads();
  if (min_grain_weight > 0) {
    cap = std::min<std::int64_t>(
        cap, static_cast<std::int64_t>(total_weight / min_grain_weight));
  }
  return static_cast<int>(std::max<std::int64_t>(
      1, std::min<std::int64_t>(cap, item_count)));
}

/// Deterministic floor-then-top-up proportional allocation of weighted
/// items to `shards` contiguous ranges (the Cluster::try_alloc shape:
/// every shard's quota is floor(W/shards), and the W mod shards remainder
/// units top up the leading shards — exactly the chunk/extra rule of
/// parallel_for_shards generalized to weights). Range boundaries are cut
/// where the item-weight prefix sum first meets the cumulative quota, so
/// the result is a pure function of (weights, shards): merge order is
/// stable and independent of scheduling. Returns shards+1 boundaries
/// (bounds[0] = 0, bounds[shards] = n); a range may be empty when one item
/// outweighs several quotas.
std::vector<std::int64_t> weighted_shard_bounds(
    std::span<const std::uint64_t> weights, int shards);

/// Splits the items [0, weights.size()) into weighted_shard_count()
/// contiguous ranges of near-equal estimated work and runs
/// `body(shard, begin, end)` for each (empty ranges included, so shard
/// indices always align with caller-allocated per-shard buffers). With one
/// effective shard — including whenever the total estimated work is below
/// `min_grain_weight` — the body runs inline on the calling thread: the
/// sequential fast path. Same merge contract as parallel_for_shards.
template <typename Body>
void parallel_for_weighted_shards(std::span<const std::uint64_t> weights,
                                  Body&& body,
                                  std::uint64_t min_grain_weight = 0) {
  const auto n = static_cast<std::int64_t>(weights.size());
  if (n <= 0) return;
  const int shards =
      weighted_shard_count(weighted_total(weights), n, min_grain_weight);
  if (shards <= 1) {
    body(0, std::int64_t{0}, n);
    return;
  }
  const std::vector<std::int64_t> bounds =
      weighted_shard_bounds(weights, shards);
  const std::function<void(int)> shard_body = [&](int s) {
    body(s, bounds[static_cast<std::size_t>(s)],
         bounds[static_cast<std::size_t>(s) + 1]);
  };
  parallel_detail::run_sharded(shards, shard_body);
}

}  // namespace dcl

#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <string_view>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dcl {

namespace {

int env_threads() {
  if (const char* s = std::getenv("DCL_THREADS")) {
    const int t = std::atoi(s);
    if (t >= 1) return std::min(t, 256);
  }
  return 1;
}

std::atomic<int> g_shard_threads{0};  // 0 = not yet initialized from env

// Audit mode: -1 = not yet initialized from env, otherwise a ShardAudit
// value. Same lazy-env-cache shape as g_shard_threads.
std::atomic<int> g_shard_audit{-1};

std::uint64_t audit_env_seed() {
  if (const char* s = std::getenv("DCL_SHARD_AUDIT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 0x5eed5eed5eed5eedULL;
}

int audit_env_mode() {
  const char* s = std::getenv("DCL_SHARD_AUDIT");
  if (s == nullptr) return static_cast<int>(ShardAudit::off);
  const std::string_view v(s);
  if (v == "random" || v == "1") return static_cast<int>(ShardAudit::random);
  if (v == "reverse") return static_cast<int>(ShardAudit::reverse);
  return static_cast<int>(ShardAudit::off);  // "0", "", unknown: off
}

std::uint64_t splitmix64_step(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Runs the region's shard bodies one after another on the calling thread
/// in a permuted order. The permutation for the k-th audited region is a
/// pure function of (audit seed, k): failures replay bit-exactly under
/// the same region sequence. The first shard exception propagates
/// immediately (remaining shards are skipped — the pool's semantics are
/// "first error wins" too, it merely finishes in-flight shards first).
void run_audited(int shards, const std::function<void(int)>& body,
                 ShardAudit mode) {
  static std::atomic<std::uint64_t> region_counter{0};
  std::vector<int> order(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) order[static_cast<std::size_t>(s)] = s;
  if (mode == ShardAudit::reverse) {
    std::reverse(order.begin(), order.end());
  } else {
    const std::uint64_t region =
        region_counter.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t x = audit_env_seed() ^ (region * 0x9e3779b97f4a7c15ULL);
    // Fisher-Yates on the seeded SplitMix64 stream.
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(splitmix64_step(x) % (i + 1));
      std::swap(order[i], order[j]);
    }
  }
  for (const int s : order) body(s);
}

/// One dispatched parallel region. Each run gets its own atomics so a
/// worker waking up late on a finished task can never steal shards from
/// the next one.
struct Task {
  const std::function<void(int)>* body = nullptr;
  int shard_count = 0;
  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  std::exception_ptr error;  // first shard exception (guarded by pool mutex)
};

/// Persistent worker pool. Workers are spawned lazily on the first
/// multi-shard region and then sleep on a condition variable between
/// regions; the calling thread always participates in draining shards, so
/// a pool of k-1 workers executes k-way regions.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(int shards, const std::function<void(int)>& body) {
    auto task = std::make_shared<Task>();
    task->body = &body;
    task->shard_count = shards;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ensure_workers(shards - 1);
      task_ = task;
      ++generation_;
      cv_work_.notify_all();
    }
    drain(*task);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] {
      return task->completed.load(std::memory_order_acquire) ==
             task->shard_count;
    });
    if (task_ == task) task_.reset();
    if (task->error) std::rethrow_exception(task->error);
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      cv_work_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers(int needed) {  // callers hold mu_
    while (static_cast<int>(workers_.size()) < needed) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    // Start behind every generation: a worker spawned mid-region must
    // still pick up the region it was spawned for.
    std::uint64_t seen = 0;
    for (;;) {
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::shared_ptr<Task> task = task_;
      lock.unlock();
      if (task) drain(*task);
      lock.lock();
    }
  }

  void drain(Task& task) {
    for (;;) {
      const int s = task.next.fetch_add(1, std::memory_order_relaxed);
      if (s >= task.shard_count) return;
      try {
        (*task.body)(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!task.error) task.error = std::current_exception();
      }
      if (task.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          task.shard_count) {
        std::lock_guard<std::mutex> lock(mu_);
        cv_done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Task> task_;  // current region (workers copy under mu_)
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

int shard_threads() {
  int t = g_shard_threads.load(std::memory_order_relaxed);
  if (t == 0) {
    t = env_threads();
    g_shard_threads.store(t, std::memory_order_relaxed);
  }
  return t;
}

void set_shard_threads(int threads) {
  g_shard_threads.store(std::max(1, std::min(threads, 256)),
                        std::memory_order_relaxed);
}

ShardAudit shard_audit() {
  int m = g_shard_audit.load(std::memory_order_relaxed);
  if (m < 0) {
    // Benign racy init, same as shard_threads(): concurrent first readers
    // all compute the same env-derived value, and the atomic store keeps
    // the race defined.
    m = audit_env_mode();
    g_shard_audit.store(m, std::memory_order_relaxed);
  }
  return static_cast<ShardAudit>(m);
}

void set_shard_audit(ShardAudit mode) {
  g_shard_audit.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::vector<std::int64_t> weighted_shard_bounds(
    std::span<const std::uint64_t> weights, int shards) {
  const auto n = static_cast<std::int64_t>(weights.size());
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(shards) + 1, n);
  bounds[0] = 0;
  if (shards <= 1) return bounds;
  const std::uint64_t total = weighted_total(weights);
  // Floor-then-top-up quotas: every shard gets floor(total/shards) weight
  // units, and the first total%shards shards one extra unit each.
  const std::uint64_t floor_quota = total / static_cast<std::uint64_t>(shards);
  const std::uint64_t extra = total % static_cast<std::uint64_t>(shards);
  std::uint64_t prefix = 0;
  std::uint64_t cum_quota = 0;
  std::int64_t i = 0;
  for (int s = 1; s < shards; ++s) {
    cum_quota += floor_quota +
                 (static_cast<std::uint64_t>(s) <= extra ? 1 : 0);
    // Shard s-1 ends at the first item index whose weight prefix meets the
    // cumulative quota; i never retreats, so the bounds are non-decreasing.
    while (i < n && prefix < cum_quota) {
      prefix += weights[static_cast<std::size_t>(i)];
      ++i;
    }
    bounds[static_cast<std::size_t>(s)] = i;
  }
  return bounds;
}

namespace parallel_detail {
void run_sharded(int shards, const std::function<void(int)>& body) {
  const ShardAudit audit = shard_audit();
  if (audit != ShardAudit::off) {
    run_audited(shards, body, audit);
    return;
  }
  WorkerPool::instance().run(shards, body);
}
}  // namespace parallel_detail

}  // namespace dcl

#include "common/telemetry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>

#include "congest/round_ledger.h"

namespace dcl {

namespace {

// JSON plumbing shared by both exporters. Doubles go through %.17g so the
// exported bytes are an exact function of the double's bits — the report
// byte-identity contract at DCL_THREADS in {1,4} rides on this.
std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(std::string_view text) {
  return '"' + json_escape(text) + '"';
}

// Synthetic Chrome-trace timestamp in microseconds: 1 round = 1000 us,
// with the global event sequence as a sub-microsecond tie-breaker so
// nested spans that begin at the same round count still nest strictly.
std::string trace_ts(double rounds, std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                rounds * 1000.0 + static_cast<double>(seq) * 1e-3);
  return buf;
}

}  // namespace

// ---- HistogramStats --------------------------------------------------------

void HistogramStats::record(std::uint64_t value) {
  if (count == 0 || value < min) min = value;
  if (count == 0 || value > max) max = value;
  ++count;
  sum += value;
  ++buckets[static_cast<int>(std::bit_width(value))];
}

void HistogramStats::merge(const HistogramStats& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (const auto& [bucket, n] : other.buckets) buckets[bucket] += n;
}

// ---- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::counter_add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::gauge_set(std::string_view name, std::int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::gauge_max(std::string_view name, std::int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::histogram_record(std::string_view name,
                                       std::uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramStats{}).first;
  }
  it->second.record(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::ShardCell::counter_add(std::string_view name,
                                             std::uint64_t delta) {
  auto it = counters.find(name);
  if (it == counters.end()) {
    counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::ShardCell::gauge_max(std::string_view name,
                                           std::int64_t value) {
  auto it = gauge_maxes.find(name);
  if (it == gauge_maxes.end()) {
    gauge_maxes.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::ShardCell::histogram_record(std::string_view name,
                                                  std::uint64_t value) {
  auto it = histograms.find(name);
  if (it == histograms.end()) {
    it = histograms.emplace(std::string(name), HistogramStats{}).first;
  }
  it->second.record(value);
}

void MetricsRegistry::merge_cells(const std::vector<ShardCell>& cells) {
  for (const ShardCell& cell : cells) {
    for (const auto& [name, delta] : cell.counters) counter_add(name, delta);
    for (const auto& [name, value] : cell.gauge_maxes) gauge_max(name, value);
    for (const auto& [name, hist] : cell.histograms) {
      auto it = histograms_.find(name);
      if (it == histograms_.end()) {
        it = histograms_.emplace(name, HistogramStats{}).first;
      }
      it->second.merge(hist);
    }
  }
}

// ---- TraceCollector --------------------------------------------------------

void TraceCollector::sync_to(double total_rounds,
                             std::uint64_t total_messages) {
  const std::lock_guard<std::mutex> lock(mutex_);
  clock_.rounds = std::max(clock_.rounds, total_rounds);
  clock_.messages = std::max(clock_.messages, total_messages);
}

void TraceCollector::add_work(std::uint64_t units) {
  const std::lock_guard<std::mutex> lock(mutex_);
  clock_.work += units;
}

VirtualClock TraceCollector::clock() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

std::int32_t TraceCollector::begin_span(std::string_view name,
                                        std::string_view category) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return begin_span_locked(name, category);
}

std::int32_t TraceCollector::begin_span_locked(std::string_view name,
                                               std::string_view category) {
  TraceSpan span;
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.depth = static_cast<std::int32_t>(open_stack_.size());
  span.name = std::string(name);
  span.category = std::string(category);
  span.begin = clock_;
  span.seq_begin = next_seq_++;
  span.wall_ns_begin = telemetry_wallclock_now_ns();
  const auto id = static_cast<std::int32_t>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void TraceCollector::end_span(std::int32_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  if (!spans_[static_cast<std::size_t>(id)].open) return;
  // Defensively close anything opened after `id` (a guard that outlived a
  // nested guard due to early return); well-formed instrumentation only
  // ever pops the top.
  while (!open_stack_.empty()) {
    const std::int32_t top = open_stack_.back();
    open_stack_.pop_back();
    TraceSpan& span = spans_[static_cast<std::size_t>(top)];
    span.end = clock_;
    span.seq_end = next_seq_++;
    span.wall_ns_end = telemetry_wallclock_now_ns();
    span.open = false;
    if (top == id) break;
  }
}

void TraceCollector::instant(std::string_view name,
                             std::string_view category) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceInstant event;
  event.parent = open_stack_.empty() ? -1 : open_stack_.back();
  event.name = std::string(name);
  event.category = std::string(category);
  event.at = clock_;
  event.seq = next_seq_++;
  instants_.push_back(std::move(event));
}

const TraceSpan* TraceCollector::find_span(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceSpan& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::vector<const TraceSpan*> TraceCollector::find_spans(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool wall = telemetry_wallclock_enabled();
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"schema\":\"dcl-chrome-trace\",\"virtual_time\":"
      << "\"1 round = 1ms; sub-us digits are the event sequence\"},"
      << "\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      << "\"args\":{\"name\":\"dcl\"}}";
  out << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      << "\"args\":{\"name\":\"virtual-time\"}}";
  for (const TraceSpan& span : spans_) {
    const double ts_begin = span.begin.rounds * 1000.0 +
                            static_cast<double>(span.seq_begin) * 1e-3;
    const double ts_end =
        span.end.rounds * 1000.0 + static_cast<double>(span.seq_end) * 1e-3;
    char dur_buf[64];
    std::snprintf(dur_buf, sizeof(dur_buf), "%.3f",
                  std::max(0.0, ts_end - ts_begin));
    out << ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
        << trace_ts(span.begin.rounds, span.seq_begin)
        << ",\"dur\":" << dur_buf
        << ",\"name\":" << json_string(span.name)
        << ",\"cat\":" << json_string(span.category) << ",\"args\":{"
        << "\"rounds\":[" << json_number(span.begin.rounds) << ','
        << json_number(span.end.rounds) << "],\"messages\":["
        << span.begin.messages << ',' << span.end.messages << "],\"work\":["
        << span.begin.work << ',' << span.end.work << ']';
    if (wall) {
      out << ",\"wall_ns\":[" << span.wall_ns_begin << ',' << span.wall_ns_end
          << ']';
    }
    out << "}}";
  }
  for (const TraceInstant& event : instants_) {
    out << ",\n{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"s\":\"t\",\"ts\":"
        << trace_ts(event.at.rounds, event.seq)
        << ",\"name\":" << json_string(event.name)
        << ",\"cat\":" << json_string(event.category) << ",\"args\":{"
        << "\"rounds\":" << json_number(event.at.rounds)
        << ",\"messages\":" << event.at.messages
        << ",\"work\":" << event.at.work << "}}";
  }
  out << "\n]}\n";
}

// ---- Active collector ------------------------------------------------------

namespace {
// Relaxed is enough: scope install/uninstall happens in sequential
// orchestration code, and the worker pool's dispatch synchronization
// orders the install before any shard body that could observe it.
std::atomic<TraceCollector*> g_active_telemetry{nullptr};
}  // namespace

TraceCollector* active_telemetry() {
  return g_active_telemetry.load(std::memory_order_relaxed);
}

TelemetryScope::TelemetryScope(TraceCollector& collector)
    : previous_(g_active_telemetry.exchange(&collector,
                                            std::memory_order_relaxed)) {}

TelemetryScope::~TelemetryScope() {
  g_active_telemetry.store(previous_, std::memory_order_relaxed);
}

// ---- Run report ------------------------------------------------------------

void write_run_report(std::ostream& out, const TraceCollector& collector,
                      const RoundLedger* ledger, std::string_view command) {
  out << "{\n\"schema\":\"dcl-run-report\",\n\"version\":1,\n\"command\":"
      << json_string(command) << ",\n";

  out << "\"ledger\":";
  if (ledger == nullptr) {
    out << "null";
  } else {
    out << "{\"total_rounds\":" << json_number(ledger->total_rounds())
        << ",\"total_messages\":" << ledger->total_messages()
        << ",\"entries\":" << ledger->entries().size()
        << ",\"rounds_by_kind\":{"
        << "\"exchange\":"
        << json_number(ledger->rounds_of_kind(CostKind::exchange))
        << ",\"routing\":"
        << json_number(ledger->rounds_of_kind(CostKind::routing))
        << ",\"analytic\":"
        << json_number(ledger->rounds_of_kind(CostKind::analytic))
        << "},\"breakdown\":[";
    bool first = true;
    for (const RoundLedger::BreakdownRow& row : ledger->breakdown()) {
      if (!first) out << ',';
      first = false;
      out << "\n{\"label\":" << json_string(row.label) << ",\"kind\":\""
          << to_string(row.kind)
          << "\",\"rounds\":" << json_number(row.rounds)
          << ",\"messages\":" << row.messages << '}';
    }
    out << "],\"retry\":{\"retry_rounds\":"
        << json_number(ledger->retry_rounds())
        << ",\"retransmitted_messages\":" << ledger->retransmitted_messages()
        << ",\"lost_messages\":" << ledger->lost_messages() << "}}";
  }
  out << ",\n";

  const MetricsRegistry& metrics = collector.metrics();
  out << "\"metrics\":{\"counters\":{";
  {
    bool first = true;
    for (const auto& [name, value] : metrics.counters()) {
      if (!first) out << ',';
      first = false;
      out << "\n" << json_string(name) << ':' << value;
    }
  }
  out << "},\"gauges\":{";
  {
    bool first = true;
    for (const auto& [name, value] : metrics.gauges()) {
      if (!first) out << ',';
      first = false;
      out << "\n" << json_string(name) << ':' << value;
    }
  }
  out << "},\"histograms\":{";
  {
    bool first = true;
    for (const auto& [name, hist] : metrics.histograms()) {
      if (!first) out << ',';
      first = false;
      out << "\n"
          << json_string(name) << ":{\"count\":" << hist.count
          << ",\"sum\":" << hist.sum << ",\"min\":" << hist.min
          << ",\"max\":" << hist.max << ",\"buckets\":{";
      bool first_bucket = true;
      for (const auto& [bucket, n] : hist.buckets) {
        if (!first_bucket) out << ',';
        first_bucket = false;
        out << '"' << bucket << "\":" << n;
      }
      out << "}}";
    }
  }
  out << "}},\n";

  const VirtualClock clock = collector.clock();
  const std::vector<TraceSpan>& spans = collector.spans();
  std::int32_t max_depth = 0;
  for (const TraceSpan& span : spans) {
    max_depth = std::max(max_depth, span.depth);
  }
  out << "\"trace\":{\"span_count\":" << spans.size()
      << ",\"instant_count\":" << collector.instants().size()
      << ",\"max_depth\":" << max_depth
      << ",\"clock\":{\"rounds\":" << json_number(clock.rounds)
      << ",\"messages\":" << clock.messages << ",\"work\":" << clock.work
      << "},\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i != 0) out << ',';
    out << "\n{\"id\":" << i << ",\"parent\":" << span.parent
        << ",\"depth\":" << span.depth
        << ",\"name\":" << json_string(span.name)
        << ",\"cat\":" << json_string(span.category) << ",\"rounds\":["
        << json_number(span.begin.rounds) << ','
        << json_number(span.end.rounds) << "],\"messages\":["
        << span.begin.messages << ',' << span.end.messages << "],\"work\":["
        << span.begin.work << ',' << span.end.work
        << "],\"open\":" << (span.open ? "true" : "false") << '}';
  }
  out << "],\"instants\":[";
  {
    const std::vector<TraceInstant>& instants = collector.instants();
    for (std::size_t i = 0; i < instants.size(); ++i) {
      const TraceInstant& event = instants[i];
      if (i != 0) out << ',';
      out << "\n{\"parent\":" << event.parent
          << ",\"name\":" << json_string(event.name)
          << ",\"cat\":" << json_string(event.category)
          << ",\"rounds\":" << json_number(event.at.rounds)
          << ",\"messages\":" << event.at.messages
          << ",\"work\":" << event.at.work << '}';
    }
  }
  out << "]}\n}\n";
}

}  // namespace dcl

// Seeded pseudo-random number generation for reproducible simulations.
//
// Every randomized component in the library (graph generators, the expander
// decomposition, the partition choices inside the listing algorithms) draws
// from an explicitly passed `Rng` so that a (seed, parameters) pair fully
// determines the run. The generator is splittable: `split()` derives an
// independent child stream, which lets per-node randomness in the simulator
// stay deterministic regardless of scheduling order.
#pragma once

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace dcl {

/// Deterministic, splittable random number generator.
///
/// Wraps SplitMix64 for stream derivation and xoshiro256** for the raw
/// stream: fast, high-quality, and fully reproducible across platforms
/// (unlike distributions in <random>, whose outputs are
/// implementation-defined; we therefore implement our own uniform/bernoulli
/// draws on top of the raw 64-bit stream).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the stream from `seed` via SplitMix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent child generator; the parent stream advances.
  Rng split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  /// Derives `count` independent children with exactly `count` sequential
  /// split() calls — the pre-split idiom for deterministic parallel
  /// regions: children are drawn in loop order *before* the region starts,
  /// so worker interleaving can never touch the parent stream and child i
  /// is bit-identical to what a sequential loop's i-th split() would get.
  std::vector<Rng> split_n(std::size_t count) {
    std::vector<Rng> children;
    children.reserve(count);
    for (std::size_t i = 0; i < count; ++i) children.push_back(split());
    return children;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) {
    const auto n = items.size();
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace dcl

// Minimal leveled logging to stderr.
//
// The simulators and algorithms are libraries, so logging defaults to
// `warn` and is globally adjustable; experiment harnesses raise it to
// `info` for phase-by-phase traces. Lines are fully formatted in a
// per-line buffer and handed to `detail::emit_log_line`, which writes them
// under one process-wide lock — shard bodies logging under DCL_THREADS>1
// cannot tear each other's lines mid-write — and routes `info`+ lines into
// the active telemetry TraceCollector as instant events.
#pragma once

#include <sstream>
#include <string>

namespace dcl {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {

/// Writes the newline-terminated `line` to stderr as a single locked
/// write, and — for `info` and above — records it as a telemetry instant
/// event when a TraceCollector is active.
void emit_log_line(LogLevel level, const std::string& line);

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    stream_ << '[' << tag << "] ";
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_threshold()) {
      stream_ << '\n';
      emit_log_line(level_, stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_threshold()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return {LogLevel::debug, "debug"}; }
inline detail::LogLine log_info() { return {LogLevel::info, "info "}; }
inline detail::LogLine log_warn() { return {LogLevel::warn, "warn "}; }
inline detail::LogLine log_error() { return {LogLevel::error, "error"}; }

}  // namespace dcl

// Small integer/floating-point helpers shared across the library.
//
// The paper's complexity bounds are expressed as real-valued powers of n
// (n^{3/4}, n^{p/(p+2)}, ...). The helpers here turn those into concrete
// integer thresholds, and provide the radix-digit decomposition used by the
// in-cluster part-assignment scheme of Section 2.4.3.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace dcl {

/// ceil(a / b) for non-negative integers; requires b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1; ilog2(1) == 0.
constexpr int ilog2(std::uint64_t x) {
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) {
  return (x <= 1) ? 0 : ilog2(x - 1) + 1;
}

/// base^exp with 64-bit overflow left to the caller's domain knowledge.
constexpr std::int64_t ipow(std::int64_t base, int exp) {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// ceil(n^alpha) as an integer threshold; alpha in [0, ~8].
inline std::int64_t ceil_pow(std::int64_t n, double alpha) {
  if (n <= 0) return 0;
  const double v = std::pow(static_cast<double>(n), alpha);
  // Guard against floating error pushing an exact power just below the
  // integer it represents (e.g. pow(8, 1/3.) = 1.9999...).
  return static_cast<std::int64_t>(std::ceil(v - 1e-9));
}

/// floor(n^alpha) as an integer threshold.
inline std::int64_t floor_pow(std::int64_t n, double alpha) {
  if (n <= 0) return 0;
  const double v = std::pow(static_cast<double>(n), alpha);
  return static_cast<std::int64_t>(std::floor(v + 1e-9));
}

/// The `digits` base-`radix` digits of `value`, least-significant first.
/// Used for the k^{1/p}-radix part assignment (Section 2.4.3): node with
/// new ID i is assigned the p parts given by the p digits of i.
inline std::vector<int> radix_digits(std::int64_t value, int radix,
                                     int digits) {
  std::vector<int> out(static_cast<std::size_t>(digits));
  for (int i = 0; i < digits; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<int>(value % radix);
    value /= radix;
  }
  return out;
}

/// Binomial coefficient C(n, k) with saturation guard; exact for the small
/// (n <= ~60, k <= ~10) arguments used by clique counting.
inline std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    r = r * (n - k + i) / i;
  }
  return r;
}

/// Ordinary least squares slope of y against x. Used by the experiment
/// harnesses to fit growth exponents on log-log data.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fits rounds ~ c * n^alpha by OLS on (log n, log rounds); returns alpha.
LinearFit fit_power_law(const std::vector<double>& n,
                        const std::vector<double>& rounds);

}  // namespace dcl

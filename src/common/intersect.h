// Sorted-intersection kernels — the innermost loops of every clique lister.
//
// All adjacency in this repository is kept as sorted NodeId lists (see
// graph/graph.h), so "which candidates extend this clique?" is always a
// sorted-set intersection. These kernels replace the scattered
// std::set_intersection / std::binary_search call sites with two shapes:
//  * a branchless two-pointer merge for similarly sized inputs — the
//    advance/emit decisions compile to flag arithmetic instead of
//    mispredicted branches on random graph data;
//  * galloping (exponential probe + binary search) when one input is much
//    shorter, giving O(|small| · log |large|) instead of O(|small|+|large|).
// Both a counting variant (no output materialization) and an
// intersect-into-buffer variant are provided; callers reuse scratch buffers
// across calls so the hot recursion allocates nothing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcl {

namespace intersect_detail {

/// One input must be at least this many times longer before galloping
/// beats the linear merge (probe cost is a binary search per element of
/// the short side).
inline constexpr std::size_t kGallopSkew = 32;

/// First index in [lo, n) with a[i] >= key, found by exponential probing
/// from `lo` — O(log of the distance advanced), so scanning the short list
/// against the long one stays sublinear overall.
inline std::size_t gallop_lower_bound(const NodeId* a, std::size_t n,
                                      std::size_t lo, NodeId key) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < n && a[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  // Binary search in (lo-1, hi].
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (a[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

inline std::size_t count_merge(const NodeId* a, std::size_t na,
                               const NodeId* b, std::size_t nb) {
  std::size_t i = 0, j = 0, c = 0;
  while (i < na && j < nb) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    c += static_cast<std::size_t>(x == y);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(y <= x);
  }
  return c;
}

inline std::size_t count_gallop(const NodeId* small, std::size_t ns,
                                const NodeId* large, std::size_t nl) {
  std::size_t j = 0, c = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    j = gallop_lower_bound(large, nl, j, small[i]);
    if (j == nl) break;
    c += static_cast<std::size_t>(large[j] == small[i]);
  }
  return c;
}

inline std::size_t into_merge(const NodeId* a, std::size_t na,
                              const NodeId* b, std::size_t nb, NodeId* out) {
  std::size_t i = 0, j = 0, c = 0;
  while (i < na && j < nb) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    out[c] = x;
    c += static_cast<std::size_t>(x == y);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(y <= x);
  }
  return c;
}

inline std::size_t into_gallop(const NodeId* small, std::size_t ns,
                               const NodeId* large, std::size_t nl,
                               NodeId* out) {
  std::size_t j = 0, c = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    j = gallop_lower_bound(large, nl, j, small[i]);
    if (j == nl) break;
    out[c] = small[i];
    c += static_cast<std::size_t>(large[j] == small[i]);
  }
  return c;
}

}  // namespace intersect_detail

/// |a ∩ b| for sorted, duplicate-free inputs. Picks merge vs galloping by
/// the size ratio.
// dcl-hot
inline std::size_t intersect_count(std::span<const NodeId> a,
                                   std::span<const NodeId> b) {
  using namespace intersect_detail;
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= kGallopSkew) {
    return count_gallop(a.data(), a.size(), b.data(), b.size());
  }
  return count_merge(a.data(), a.size(), b.data(), b.size());
}

/// a ∩ b into `out` (cleared first, capacity grown once to min size). The
/// buffer is a reference so hot recursions can reuse per-depth scratch.
// dcl-hot
inline void intersect_into(std::span<const NodeId> a, std::span<const NodeId> b,
                           std::vector<NodeId>& out) {
  using namespace intersect_detail;
  if (a.size() > b.size()) std::swap(a, b);
  // dcl-lint: allow(sem-hot-alloc): per-depth scratch, high-water capacity
  out.resize(a.size());
  if (a.empty()) return;
  std::size_t c;
  if (b.size() / a.size() >= kGallopSkew) {
    c = into_gallop(a.data(), a.size(), b.data(), b.size(), out.data());
  } else {
    c = into_merge(a.data(), a.size(), b.data(), b.size(), out.data());
  }
  // dcl-lint: allow(sem-hot-alloc): shrink to the intersection size
  out.resize(c);
}

/// Membership in a sorted list (binary search; the one-element intersection).
// dcl-hot
inline bool sorted_contains(std::span<const NodeId> a, NodeId key) {
  const std::size_t i =
      intersect_detail::gallop_lower_bound(a.data(), a.size(), 0, key);
  return i < a.size() && a[i] == key;
}

}  // namespace dcl

// Deterministic observability plane: phase-span tracing + metrics registry.
//
// Every coordinate this module records is *virtual time*: cumulative ledger
// rounds, cumulative ledger messages, and a cumulative 64-bit work-unit
// counter. No wall clock is ever consulted here — traces, metrics, and the
// exported run report are pure functions of the (deterministic) execution,
// so they are bit-identical at any DCL_THREADS setting and the dcl-lint
// wallclock rule stays clean. An *optional* wall-clock overlay lives in the
// ONE allowlisted translation unit src/common/telemetry_wallclock.cpp; it
// is off by default and its nanosecond stamps never enter the ledger, the
// run report, or any fingerprint (docs/OBSERVABILITY.md).
//
// Scoping model: telemetry is process-wide but explicitly scoped. Nothing
// is recorded unless a `TelemetryScope` has installed a `TraceCollector`;
// with no collector installed, every instrumentation site reduces to one
// relaxed atomic load and a null check — the disabled plane costs nothing
// (proven by the committed `list_kp_teleoff_a/_b` bench counters).
//
// Threading contract (mirrors parallel_for.h): spans begin and end only in
// sequential orchestration code, between parallel regions — the span tree
// is therefore identical at any shard count. Shard *bodies* never touch the
// collector directly; they write into `MetricsRegistry::ShardCell` buffers
// that the owning sequential code merges in shard order, exactly like every
// other per-shard buffer in the codebase. Instant events (e.g. routed log
// lines) may arrive from any thread and are serialized by a mutex; the
// standard pipelines emit none from shard bodies, so exported traces stay
// deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dcl {

class RoundLedger;

/// A point on the virtual-time axis: cumulative ledger rounds + messages
/// (advanced by `sync_to`, monotone max over the ledgers a pipeline
/// charges) and cumulative work units (advanced additively by `add_work`).
struct VirtualClock {
  double rounds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t work = 0;
};

/// One closed (or still-open) phase span. `parent` indexes `spans()`,
/// -1 for roots; `seq_begin`/`seq_end` order events globally (every
/// begin/end/instant draws from one sequence counter). The wall_ns fields
/// stay 0 unless the telemetry_wallclock.cpp overlay is enabled.
struct TraceSpan {
  std::int32_t parent = -1;
  std::int32_t depth = 0;
  std::string name;
  std::string category;
  VirtualClock begin;
  VirtualClock end;
  std::uint64_t seq_begin = 0;
  std::uint64_t seq_end = 0;
  std::uint64_t wall_ns_begin = 0;
  std::uint64_t wall_ns_end = 0;
  bool open = true;

  std::uint64_t work_units() const { return end.work - begin.work; }
  double rounds_delta() const { return end.rounds - begin.rounds; }
  std::uint64_t messages_delta() const { return end.messages - begin.messages; }
};

/// A zero-duration event (log line, fallback taken, crash detected).
struct TraceInstant {
  std::int32_t parent = -1;
  std::string name;
  std::string category;
  VirtualClock at;
  std::uint64_t seq = 0;
};

/// Exact-integer histogram: count/sum/min/max plus log2 buckets (bucket
/// index = bit_width(value); bucket 0 holds zeros). Bucket merges are
/// commutative integer adds, so shard merge order cannot change them.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::map<int, std::uint64_t> buckets;

  void record(std::uint64_t value);
  void merge(const HistogramStats& other);
};

/// Named counters / gauges / histograms. Storage is ordered (std::map) so
/// every export iterates in name order — no container-order nondeterminism
/// can reach the report. The registry itself must only be touched from
/// sequential orchestration code; parallel shard bodies record into
/// `ShardCell` buffers merged in shard order via `merge_cells`.
class MetricsRegistry {
 public:
  void counter_add(std::string_view name, std::uint64_t delta);
  /// Overwrites (last write wins — sequential callers only).
  void gauge_set(std::string_view name, std::int64_t value);
  /// Keeps the maximum seen (high-water marks).
  void gauge_max(std::string_view name, std::int64_t value);
  void histogram_record(std::string_view name, std::uint64_t value);

  /// Counter value, 0 when never touched.
  std::uint64_t counter(std::string_view name) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::int64_t, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, HistogramStats, std::less<>>& histograms()
      const {
    return histograms_;
  }

  /// Per-shard metric sink, parallel_for_shards-compatible: allocate one
  /// cell per shard, let each shard body write only its own cell, then
  /// fold them back with `merge_cells` *in shard order* from the calling
  /// thread — the same merge contract as every other per-shard buffer
  /// (parallel_for.h), so DCL_SHARD_AUDIT permutations cannot change the
  /// merged values.
  struct ShardCell {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, std::int64_t, std::less<>> gauge_maxes;
    std::map<std::string, HistogramStats, std::less<>> histograms;

    void counter_add(std::string_view name, std::uint64_t delta);
    void gauge_max(std::string_view name, std::int64_t value);
    void histogram_record(std::string_view name, std::uint64_t value);
  };
  /// Folds cells[0], cells[1], ... into the registry in index (= shard)
  /// order.
  void merge_cells(const std::vector<ShardCell>& cells);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, HistogramStats, std::less<>> histograms_;
};

/// Collects nested phase spans + instants on the virtual-time axis and
/// owns the run's MetricsRegistry. All span/instant/clock state is guarded
/// by one mutex: begin/end come from sequential orchestration code (rare,
/// a lock there is noise), instants may come from any thread (log routing).
class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // ---- Virtual clock ----
  /// Advances the rounds/messages axes to at least the given cumulative
  /// totals (elementwise max: several ledgers may feed one run — e.g. a
  /// network-owned ledger later merged into the pipeline ledger — and the
  /// clock must stay monotone across all of them).
  void sync_to(double total_rounds, std::uint64_t total_messages);
  /// Advances the work axis by `units` (additive).
  void add_work(std::uint64_t units);
  // dcl-lint: allow(wallclock): virtual-clock accessor, not the C clock() API
  VirtualClock clock() const;

  // ---- Spans / instants ----
  /// Opens a span nested under the innermost open span; returns its index.
  std::int32_t begin_span(std::string_view name, std::string_view category);
  /// Closes `id` (and, defensively, any span opened after it).
  void end_span(std::int32_t id);
  void instant(std::string_view name, std::string_view category);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }
  /// First span with the given name, nullptr when absent.
  const TraceSpan* find_span(std::string_view name) const;
  /// Spans with the given name, in begin order.
  std::vector<const TraceSpan*> find_spans(std::string_view name) const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // ---- Exporters ----
  /// Chrome trace-event JSON (Perfetto-loadable): one "X" complete event
  /// per span on a synthetic timeline where 1 round = 1 ms and the global
  /// event sequence breaks ties, plus exact virtual coordinates in args.
  /// Wall-clock stamps are attached to args only when the overlay TU is
  /// enabled; they never affect ts/dur.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::int32_t begin_span_locked(std::string_view name,
                                 std::string_view category);

  mutable std::mutex mutex_;
  VirtualClock clock_;
  std::uint64_t next_seq_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::vector<std::int32_t> open_stack_;
  MetricsRegistry metrics_;
};

/// The collector instrumentation sites record into, nullptr when telemetry
/// is off. One relaxed atomic load: the whole cost of the disabled plane.
TraceCollector* active_telemetry();

/// RAII installer: makes `collector` the active one for its lifetime and
/// restores the previous (usually nullptr) on destruction. Install from
/// the thread that orchestrates the run, outside parallel regions.
class TelemetryScope {
 public:
  explicit TelemetryScope(TraceCollector& collector);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  TraceCollector* previous_;
};

/// RAII span: no-op when telemetry is off.
class SpanGuard {
 public:
  SpanGuard(std::string_view name, std::string_view category)
      : SpanGuard(active_telemetry(), name, category) {}
  SpanGuard(TraceCollector* collector, std::string_view name,
            std::string_view category)
      : collector_(collector) {
    if (collector_ != nullptr) id_ = collector_->begin_span(name, category);
  }
  ~SpanGuard() {
    if (collector_ != nullptr) collector_->end_span(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  TraceCollector* collector() const { return collector_; }
  void add_work(std::uint64_t units) const {
    if (collector_ != nullptr) collector_->add_work(units);
  }
  void sync_to(double total_rounds, std::uint64_t total_messages) const {
    if (collector_ != nullptr) collector_->sync_to(total_rounds,
                                                   total_messages);
  }

 private:
  TraceCollector* collector_;
  std::int32_t id_ = -1;
};

/// Versioned machine-readable run report ("dcl-run-report", version 1):
/// ledger breakdown by (label, kind) + retry counters, metrics snapshot,
/// and a span-tree summary. Content is purely virtual-time — byte-identical
/// at any DCL_THREADS. `ledger` may be null (report carries no ledger
/// section body). Schema documented in docs/OBSERVABILITY.md; validated by
/// tools/trace_report.py.
void write_run_report(std::ostream& out, const TraceCollector& collector,
                      const RoundLedger* ledger, std::string_view command);

// ---- Wall-clock overlay (src/common/telemetry_wallclock.cpp) ----
// The ONE translation unit allowed to read a clock (dcl_lint wallclock
// allowlist). Disabled unless DCL_TRACE_WALLCLOCK=1 is set in the
// environment; when disabled, now_ns() returns 0 and the exporters emit
// no wall fields.
bool telemetry_wallclock_enabled();
std::uint64_t telemetry_wallclock_now_ns();

}  // namespace dcl

#include "routing/cluster_router.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.h"

namespace dcl {

double routing_polylog(NodeId ambient_n) {
  return std::max(1.0, std::ceil(std::log2(std::max<double>(
                      2.0, static_cast<double>(ambient_n)))));
}

double cluster_routing_rounds(std::int64_t max_load, std::int64_t bandwidth,
                              NodeId ambient_n) {
  if (max_load <= 0) return 0.0;
  const std::int64_t b = std::max<std::int64_t>(1, bandwidth);
  return static_cast<double>(ceil_div(max_load, b)) *
         routing_polylog(ambient_n);
}

void ParallelRoutingCharge::add_cluster(std::int64_t max_load,
                                        std::int64_t bandwidth,
                                        std::uint64_t messages) {
  any_ = true;
  worst_load_ = std::max(worst_load_, max_load);
  total_messages_ += messages;
  // Defer the polylog multiply to commit (it needs ambient_n); store the
  // load/bandwidth ratio as "base rounds".
  const std::int64_t b = std::max<std::int64_t>(1, bandwidth);
  worst_rounds_ = std::max(
      worst_rounds_, static_cast<double>(ceil_div(std::max<std::int64_t>(
                                             0, max_load),
                                         b)));
}

void ParallelRoutingCharge::merge_from(const ParallelRoutingCharge& other) {
  any_ = any_ || other.any_;
  worst_load_ = std::max(worst_load_, other.worst_load_);
  worst_rounds_ = std::max(worst_rounds_, other.worst_rounds_);
  total_messages_ += other.total_messages_;
}

double ParallelRoutingCharge::commit(RoundLedger& ledger,
                                     const std::string& label,
                                     NodeId ambient_n) {
  if (!any_) return 0.0;
  const double rounds = worst_rounds_ * routing_polylog(ambient_n);
  ledger.charge_routing(label, rounds, total_messages_);
  return rounds;
}

std::vector<NodeId> assign_cluster_ids(const std::vector<Cluster>& clusters,
                                       NodeId ambient_n, RoundLedger& ledger) {
  std::vector<NodeId> new_id(static_cast<std::size_t>(ambient_n), -1);
  for (const Cluster& c : clusters) {
    for (std::size_t i = 0; i < c.nodes.size(); ++i) {
      new_id[static_cast<std::size_t>(c.nodes[i])] = static_cast<NodeId>(i);
    }
  }
  if (!clusters.empty()) {
    ledger.charge_analytic("cluster-id-assignment (L2.5)",
                           routing_polylog(ambient_n));
  }
  return new_id;
}

NodeId responsible_cluster_index(NodeId original_node, NodeId ambient_n,
                                 NodeId cluster_size) {
  if (cluster_size <= 0) {
    throw std::invalid_argument("responsible_cluster_index: empty cluster");
  }
  // i is the largest index with floor(i*n/k) <= w, i.e.
  // i = floor(((w+1)*k - 1) / n), clamped to [0, k).
  const auto w = static_cast<std::int64_t>(original_node);
  const auto n = static_cast<std::int64_t>(ambient_n);
  const auto k = static_cast<std::int64_t>(cluster_size);
  const std::int64_t i = std::min<std::int64_t>(
      k - 1, std::max<std::int64_t>(0, ((w + 1) * k - 1) / n));
  return static_cast<NodeId>(i);
}

}  // namespace dcl

// Intra-cluster routing and ID assignment (Theorem 2.4 / Lemma 2.5).
//
// Theorem 2.4 (imported from Ghaffari–Kuhn–Su and Ghaffari–Li): inside an
// n^δ-cluster, if every node needs to send and receive at most
// O(n^δ · 2^{O(√log n)}) messages, all of them can be routed in
// Õ(2^{O(√log n)}) rounds, using only the cluster's own edges (so distinct
// clusters route in parallel).
//
// Our simulation delivers the messages directly and charges
//
//     rounds = ceil(max per-node load / cluster bandwidth) · ceil(log2 n)
//
// where bandwidth = the cluster's minimum internal degree (each node can
// push/pull that many messages per round through its cluster edges) and
// the ceil(log2 n) factor stands in for the theorem's subpolynomial routing
// overhead (the paper's footnote 6 argues this overhead is absorbable since
// all final complexities are Ω(n^{1/3}); DESIGN.md §2 records the
// substitution). Batches from different clusters in the same logical step
// are combined with `ParallelRoutingCharge`, which charges the maximum —
// clusters route simultaneously on disjoint edge sets.
//
// Lemma 2.5: new cluster-internal IDs {0..k-1} are assigned in O(polylog n)
// rounds; `assign_cluster_ids` reproduces the assignment (sorted by
// original id) and charges that polylog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/round_ledger.h"
#include "expander/decomposition.h"
#include "graph/graph.h"

namespace dcl {

/// Routing overhead factor standing in for Theorem 2.4's 2^{O(√log n)}.
double routing_polylog(NodeId ambient_n);

/// Round cost of routing a batch inside one cluster: every node sends and
/// receives at most `max_load` messages; the cluster's min internal degree
/// is `bandwidth`.
double cluster_routing_rounds(std::int64_t max_load, std::int64_t bandwidth,
                              NodeId ambient_n);

/// Combines per-cluster routing batches that happen in the same logical
/// step; the charged cost is the maximum over clusters (they run in
/// parallel on disjoint edges).
class ParallelRoutingCharge {
 public:
  void add_cluster(std::int64_t max_load, std::int64_t bandwidth,
                   std::uint64_t messages);

  /// Folds another accumulator into this one, as if its add_cluster calls
  /// had been made here. The state is (max, max, sum, or) — every fold is
  /// order- and grouping-independent, so per-shard accumulators merged in
  /// shard order commit the exact charge the sequential per-cluster loop
  /// would have (the cluster-parallel ARB-LIST tail depends on this).
  void merge_from(const ParallelRoutingCharge& other);

  /// Charges the ledger and returns the rounds charged.
  double commit(RoundLedger& ledger, const std::string& label,
                NodeId ambient_n);

  std::int64_t worst_load() const { return worst_load_; }
  std::uint64_t total_messages() const { return total_messages_; }

 private:
  double worst_rounds_ = 0.0;
  std::int64_t worst_load_ = 0;
  std::uint64_t total_messages_ = 0;
  bool any_ = false;
};

/// Lemma 2.5: per-cluster dense IDs 0..|C|-1 (position in the sorted node
/// list). Returns new id per node (-1 outside every cluster) and charges
/// the lemma's polylog construction cost once for all clusters in parallel.
std::vector<NodeId> assign_cluster_ids(
    const std::vector<Cluster>& clusters, NodeId ambient_n,
    RoundLedger& ledger);

/// The responsibility ranges of Section 2.4.3: the cluster node with new ID
/// i ∈ [0,k) is responsible for original nodes w with
/// floor(i·n/k) ≤ w < floor((i+1)·n/k).
NodeId responsible_cluster_index(NodeId original_node, NodeId ambient_n,
                                 NodeId cluster_size);

}  // namespace dcl

#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <stdexcept>

namespace dcl {

namespace {

void check_endpoints(NodeId n, NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("DynamicGraph: self-loop");
  if (a < 0 || b < 0 || a >= n || b >= n) {
    throw std::invalid_argument("DynamicGraph: endpoint out of range");
  }
}

}  // namespace

DynamicGraph::DynamicGraph(NodeId n) : n_(n) {
  if (n < 0) throw std::invalid_argument("DynamicGraph: negative node count");
  seg_.assign(static_cast<std::size_t>(n), Segment{});
}

DynamicGraph DynamicGraph::from_graph(const Graph& g) {
  DynamicGraph d(g.node_count());
  // Lay the arena out in node order with a little slack per segment, so a
  // seeded graph starts as compact as a static CSR but absorbs the first
  // few inserts without relocating.
  std::size_t total = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    Segment& s = d.seg_[static_cast<std::size_t>(v)];
    s.offset = total;
    s.size = g.degree(v);
    s.capacity = static_cast<NodeId>(s.size + s.size / 4 + 2);
    total += static_cast<std::size_t>(s.capacity);
  }
  d.arena_adj_.assign(total, -1);
  d.arena_eid_.assign(total, -1);
  d.arena_used_ = total;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Segment& s = d.seg_[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    std::copy(nbrs.begin(), nbrs.end(), d.arena_adj_.begin() +
                                            static_cast<std::ptrdiff_t>(s.offset));
    std::copy(eids.begin(), eids.end(), d.arena_eid_.begin() +
                                            static_cast<std::ptrdiff_t>(s.offset));
  }
  d.edges_.assign(g.edges().begin(), g.edges().end());
  d.live_.assign(g.edge_count(), true);
  d.live_count_ = g.edge_count();
  return d;
}

NodeId DynamicGraph::find_in_segment(NodeId v, NodeId b) const {
  const auto nbrs = neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
  if (it == nbrs.end() || *it != b) return -1;
  return static_cast<NodeId>(it - nbrs.begin());
}

std::optional<EdgeId> DynamicGraph::edge_id(NodeId a, NodeId b) const {
  if (a == b || a < 0 || b < 0 || a >= n_ || b >= n_) return std::nullopt;
  // Probe the lower-degree endpoint, like the static graph.
  if (degree(b) < degree(a)) std::swap(a, b);
  const NodeId at = find_in_segment(a, b);
  if (at < 0) return std::nullopt;
  const Segment& s = seg_[static_cast<std::size_t>(a)];
  return arena_eid_[s.offset + static_cast<std::size_t>(at)];
}

void DynamicGraph::relocate(NodeId v) {
  Segment& s = seg_[static_cast<std::size_t>(v)];
  const auto new_cap =
      static_cast<NodeId>(std::max<NodeId>(4, s.size + s.size / 2 + 1));
  const std::size_t new_offset = arena_used_;
  arena_used_ += static_cast<std::size_t>(new_cap);
  if (arena_used_ > arena_adj_.size()) {
    arena_adj_.resize(arena_used_ + arena_used_ / 2, -1);
    arena_eid_.resize(arena_adj_.size(), -1);
  }
  std::copy_n(arena_adj_.begin() + static_cast<std::ptrdiff_t>(s.offset),
              s.size,
              arena_adj_.begin() + static_cast<std::ptrdiff_t>(new_offset));
  std::copy_n(arena_eid_.begin() + static_cast<std::ptrdiff_t>(s.offset),
              s.size,
              arena_eid_.begin() + static_cast<std::ptrdiff_t>(new_offset));
  s.offset = new_offset;
  s.capacity = new_cap;
  ++relocations_;
  // Compact when dead slack dominates the arena: live adjacency is 2m
  // slots, so a 3x bound keeps the arena linear in the live graph.
  const std::size_t live_slots =
      2 * static_cast<std::size_t>(live_count_) + static_cast<std::size_t>(n_);
  if (arena_used_ > 1024 && arena_used_ > 3 * live_slots) compact();
}

void DynamicGraph::compact() {
  std::vector<NodeId> new_adj;
  std::vector<EdgeId> new_eid;
  std::size_t total = 0;
  for (const Segment& s : seg_) {
    total += static_cast<std::size_t>(s.size + s.size / 4 + 2);
  }
  new_adj.assign(total, -1);
  new_eid.assign(total, -1);
  std::size_t at = 0;
  for (Segment& s : seg_) {
    std::copy_n(arena_adj_.begin() + static_cast<std::ptrdiff_t>(s.offset),
                s.size, new_adj.begin() + static_cast<std::ptrdiff_t>(at));
    std::copy_n(arena_eid_.begin() + static_cast<std::ptrdiff_t>(s.offset),
                s.size, new_eid.begin() + static_cast<std::ptrdiff_t>(at));
    s.offset = at;
    s.capacity = static_cast<NodeId>(s.size + s.size / 4 + 2);
    at += static_cast<std::size_t>(s.capacity);
  }
  arena_adj_ = std::move(new_adj);
  arena_eid_ = std::move(new_eid);
  arena_used_ = total;
  ++compactions_;
}

std::pair<EdgeId, bool> DynamicGraph::insert_edge(NodeId a, NodeId b) {
  check_endpoints(n_, a, b);
  if (const auto existing = edge_id(a, b)) return {*existing, false};

  EdgeId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();  // most recently freed id, reused LIFO
    free_ids_.pop_back();
    edges_[static_cast<std::size_t>(id)] = make_edge(a, b);
  } else {
    id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(make_edge(a, b));
    live_.resize(static_cast<std::int64_t>(edges_.size()));
  }
  live_.set(id);
  ++live_count_;

  for (const auto& [v, w] :
       {std::pair<NodeId, NodeId>{a, b}, std::pair<NodeId, NodeId>{b, a}}) {
    Segment* s = &seg_[static_cast<std::size_t>(v)];
    if (s->size == s->capacity) {
      relocate(v);
      s = &seg_[static_cast<std::size_t>(v)];  // compact() may have moved it
    }
    const auto nbrs = neighbors(v);
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(nbrs.begin(), nbrs.end(), w) - nbrs.begin());
    NodeId* adj = arena_adj_.data() + s->offset;
    EdgeId* eid = arena_eid_.data() + s->offset;
    for (std::size_t i = static_cast<std::size_t>(s->size); i > pos; --i) {
      adj[i] = adj[i - 1];
      eid[i] = eid[i - 1];
    }
    adj[pos] = w;
    eid[pos] = id;
    ++s->size;
  }
  return {id, true};
}

std::optional<EdgeId> DynamicGraph::erase_edge(NodeId a, NodeId b) {
  check_endpoints(n_, a, b);
  const auto id = edge_id(a, b);
  if (!id) return std::nullopt;

  for (const auto& [v, w] :
       {std::pair<NodeId, NodeId>{a, b}, std::pair<NodeId, NodeId>{b, a}}) {
    Segment& s = seg_[static_cast<std::size_t>(v)];
    const NodeId at = find_in_segment(v, w);
    NodeId* adj = arena_adj_.data() + s.offset;
    EdgeId* eid = arena_eid_.data() + s.offset;
    for (std::size_t i = static_cast<std::size_t>(at);
         i + 1 < static_cast<std::size_t>(s.size); ++i) {
      adj[i] = adj[i + 1];
      eid[i] = eid[i + 1];
    }
    --s.size;
  }
  live_.reset(*id);
  --live_count_;
  free_ids_.push_back(*id);
  return id;
}

Graph DynamicGraph::snapshot() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(live_count_));
  live_.for_each_set(
      [&](std::int64_t e) { edges.push_back(edges_[static_cast<std::size_t>(e)]); });
  return Graph::from_edges(n_, std::move(edges));
}

}  // namespace dcl

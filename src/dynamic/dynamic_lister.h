// Batch-dynamic Kp maintenance: the stateful execution model.
//
// Every lister in this repository so far answers one snapshot and forgets.
// `DynamicLister` instead *owns* the clique set across an update stream:
// per batch it enumerates exactly the cliques touching inserted edges
// (delta kernels, enumeration/delta_kernels.h) and retracts the cliques
// touching deleted edges, so the amortized per-batch cost is proportional
// to the cliques that changed — not to the graph (measured ≥5x over
// from-scratch recompute on small-batch churn; see docs/PERFORMANCE.md,
// "Dynamic maintenance").
//
// Batch semantics (mirrors graph/workloads.h UpdateBatch): deletions are
// applied first, one edge at a time against the current graph — each
// deleted edge's cliques are enumerated *before* the edge is removed, so a
// clique with several deleted edges is retracted exactly once, at the
// first of them. Insertions follow, also one at a time, each enumerated in
// the graph-so-far — a clique with several inserted edges appears exactly
// once, at the last of them. A clique retracted and re-added inside one
// batch (delete + re-insert churn) cancels out of the reported delta.
//
// Invariant (the differential contract, enforced per checkpoint by
// tests/test_dynamic_lister.cpp and test_dynamic_sweep.cpp): after any
// prefix of batches, `cliques()` is bit-identical — membership and
// order-independent fingerprint — to a from-scratch static enumeration of
// `graph().snapshot()`.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/dynamic_orientation.h"
#include "enumeration/clique_enumeration.h"
#include "enumeration/delta_kernels.h"
#include "graph/workloads.h"

namespace dcl {

/// What one batch changed: canonical sorted clique lists. Churn inside the
/// batch (a clique removed and re-added, or vice versa) nets to zero and
/// appears in neither list.
struct ListingDelta {
  std::vector<Clique> added;
  std::vector<Clique> removed;
};

/// Per-batch observability counters; all deterministic for a fixed
/// (seed graph, stream) pair, so benches record them as fingerprints.
struct DynamicBatchStats {
  std::int64_t inserted_edges = 0;   ///< applied (non-duplicate) inserts
  std::int64_t erased_edges = 0;     ///< applied (present) erases
  std::int64_t skipped_inserts = 0;  ///< already-live edges in the batch
  std::int64_t skipped_erases = 0;   ///< not-live edges in the batch
  std::uint64_t cliques_added = 0;
  std::uint64_t cliques_removed = 0;
  std::uint64_t clique_count = 0;       ///< total after the batch
  std::uint64_t fingerprint = 0;        ///< CliqueSet fingerprint after
  NodeId arboricity_witness = 0;        ///< orientation max out-degree
  std::uint64_t orientation_flips = 0;  ///< flips this batch's flush cost
};

class DynamicLister {
 public:
  /// Empty graph on n nodes.
  DynamicLister(NodeId n, int p);
  /// Seeded: enumerates `seed` once (static kernels) and maintains from
  /// there. The clique table is reserved from the exact enumeration size —
  /// the expected-clique reserve hint, applied at the one place the count
  /// is known.
  DynamicLister(const Graph& seed, int p);

  int p() const { return p_; }
  const DynamicGraph& graph() const { return graph_; }
  const DynamicOrientation& orientation() const { return orientation_; }
  const CliqueSet& cliques() const { return cliques_; }
  std::uint64_t clique_count() const { return cliques_.size(); }
  std::uint64_t fingerprint() const { return cliques_.fingerprint(); }

  /// Applies one batch; returns the net delta and refreshes last_stats().
  ListingDelta apply(const UpdateBatch& batch);

  const DynamicBatchStats& last_stats() const { return stats_; }

 private:
  int p_;
  DynamicGraph graph_;
  DynamicOrientation orientation_;
  CliqueSet cliques_;
  DeltaScratch scratch_;
  DynamicBatchStats stats_;
};

}  // namespace dcl

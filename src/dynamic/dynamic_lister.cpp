#include "dynamic/dynamic_lister.h"

#include <algorithm>
#include <stdexcept>

#include "common/telemetry.h"

namespace dcl {

namespace {

void check_p(int p) {
  if (p < 2) {
    throw std::invalid_argument("DynamicLister: p must be at least 2");
  }
}

}  // namespace

DynamicLister::DynamicLister(NodeId n, int p)
    : p_((check_p(p), p)),
      graph_(n),
      orientation_(graph_),
      scratch_(make_delta_scratch(p)) {}

DynamicLister::DynamicLister(const Graph& seed, int p)
    : p_((check_p(p), p)),
      graph_(DynamicGraph::from_graph(seed)),
      orientation_(graph_),
      scratch_(make_delta_scratch(p)) {
  const auto all = list_k_cliques(seed, p);
  cliques_.reserve(all.size());
  for (const auto& c : all) cliques_.insert(c);
  stats_.clique_count = cliques_.size();
  stats_.fingerprint = cliques_.fingerprint();
  stats_.arboricity_witness = orientation_.max_out_degree();
}

ListingDelta DynamicLister::apply(const UpdateBatch& batch) {
  // Telemetry: one span per maintenance batch. The dynamic structure is
  // purely local (no ledger), so the span's virtual-time extent is its work
  // units: the number of edge updates actually applied.
  TraceCollector* const telemetry = active_telemetry();
  SpanGuard batch_span(telemetry, "dynamic-batch", "dynamic");
  stats_ = DynamicBatchStats{};
  CliqueSet batch_added;
  CliqueSet batch_removed;
  const auto neighbors = [this](NodeId x) { return graph_.neighbors(x); };

  // Deletions first: enumerate each doomed edge's cliques while the edge
  // is still present, then drop it — later deleted edges of the same
  // clique no longer see it complete, so each loss is recorded once.
  for (const Edge& e : batch.erase) {
    if (!graph_.has_edge(e.u, e.v)) {
      ++stats_.skipped_erases;
      continue;
    }
    for_each_clique_with_edge(neighbors, e.u, e.v, p_, scratch_,
                              [&](std::span<const NodeId> clique) {
                                if (cliques_.erase(clique)) {
                                  batch_removed.insert(clique);
                                }
                              });
    const auto id = graph_.erase_edge(e.u, e.v);
    orientation_.on_erase(*id);
    ++stats_.erased_edges;
  }

  // Insertions: each new edge is enumerated in the graph that already
  // contains it (and every earlier insert), so a clique spanning several
  // inserted edges completes — and is recorded — exactly at the last one.
  for (const Edge& e : batch.insert) {
    const auto [id, fresh] = graph_.insert_edge(e.u, e.v);
    if (!fresh) {
      ++stats_.skipped_inserts;
      continue;
    }
    orientation_.on_insert(id);
    for_each_clique_with_edge(neighbors, e.u, e.v, p_, scratch_,
                              [&](std::span<const NodeId> clique) {
                                if (cliques_.insert(clique)) {
                                  // Re-added after a removal earlier in
                                  // this batch: pure churn, net zero.
                                  if (!batch_removed.erase(clique)) {
                                    batch_added.insert(clique);
                                  }
                                }
                              });
    ++stats_.inserted_edges;
  }

  stats_.orientation_flips = orientation_.flush();
  stats_.cliques_added = batch_added.size();
  stats_.cliques_removed = batch_removed.size();
  stats_.clique_count = cliques_.size();
  stats_.fingerprint = cliques_.fingerprint();
  stats_.arboricity_witness = orientation_.max_out_degree();
  if (telemetry != nullptr) {
    batch_span.add_work(stats_.erased_edges + stats_.inserted_edges);
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("dynamic.batches", 1);
    metrics.counter_add("dynamic.inserted_edges", stats_.inserted_edges);
    metrics.counter_add("dynamic.erased_edges", stats_.erased_edges);
    metrics.counter_add("dynamic.skipped_inserts", stats_.skipped_inserts);
    metrics.counter_add("dynamic.skipped_erases", stats_.skipped_erases);
    metrics.counter_add("dynamic.cliques_added", stats_.cliques_added);
    metrics.counter_add("dynamic.cliques_removed", stats_.cliques_removed);
    metrics.counter_add("dynamic.orientation_flips", stats_.orientation_flips);
    metrics.gauge_set("dynamic.clique_count",
                      static_cast<std::int64_t>(stats_.clique_count));
    metrics.gauge_max("dynamic.arboricity_witness",
                      static_cast<std::int64_t>(stats_.arboricity_witness));
  }

  ListingDelta delta;
  delta.added = batch_added.to_vector();
  delta.removed = batch_removed.to_vector();
  std::sort(delta.added.begin(), delta.added.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  return delta;
}

}  // namespace dcl

#include "dynamic/dynamic_orientation.h"

#include <algorithm>

#include "graph/orientation.h"

namespace dcl {

DynamicOrientation::DynamicOrientation(const DynamicGraph& g) : g_(&g) {
  out_.assign(static_cast<std::size_t>(g.node_count()), {});
  queued_.assign(g.node_count(), false);
  rebuild();
}

void DynamicOrientation::push_out(NodeId v, EdgeId e) {
  auto& list = out_[static_cast<std::size_t>(v)];
  pos_in_out_[static_cast<std::size_t>(e)] =
      static_cast<std::int32_t>(list.size());
  list.push_back(e);
}

void DynamicOrientation::remove_from_out(NodeId v, EdgeId e) {
  auto& list = out_[static_cast<std::size_t>(v)];
  const auto at =
      static_cast<std::size_t>(pos_in_out_[static_cast<std::size_t>(e)]);
  const EdgeId moved = list.back();
  list[at] = moved;
  pos_in_out_[static_cast<std::size_t>(moved)] = static_cast<std::int32_t>(at);
  list.pop_back();
}

void DynamicOrientation::on_insert(EdgeId e) {
  if (static_cast<std::int64_t>(e) >= away_.size()) {
    away_.resize(g_->edge_id_bound());
    pos_in_out_.resize(static_cast<std::size_t>(g_->edge_id_bound()), -1);
  }
  const Edge& ed = g_->edge(e);
  // Away from the smaller out-degree (ties toward the lower endpoint,
  // which is ed.u): the greedy rule of the Brodal–Fagerberg scheme,
  // fully deterministic.
  const NodeId t = (out_degree(ed.u) <= out_degree(ed.v)) ? ed.u : ed.v;
  away_.set(e, t == ed.u);
  push_out(t, e);
  if (out_degree(t) > cap_ && !queued_.test(t)) {
    queued_.set(t);
    over_cap_.push_back(t);
  }
}

void DynamicOrientation::on_erase(EdgeId e) {
  remove_from_out(tail(e), e);
  pos_in_out_[static_cast<std::size_t>(e)] = -1;
}

std::uint64_t DynamicOrientation::flush() {
  std::uint64_t flips = 0;
  // Generous budget: with a correct cap the amortized flip count per
  // update is O(1); blowing this bound means the cap sits below the live
  // arboricity, so double it and keep going (termination: a cap at or
  // above the maximum degree can never be exceeded again).
  std::uint64_t budget =
      8 * (static_cast<std::uint64_t>(g_->edge_count()) +
           static_cast<std::uint64_t>(g_->node_count()) + 16);
  std::vector<EdgeId> flipping;
  for (std::size_t at = 0; at < over_cap_.size(); ++at) {
    const NodeId v = over_cap_[at];
    queued_.reset(v);
    if (out_degree(v) <= cap_) continue;
    if (flips > budget) {
      cap_ = static_cast<NodeId>(cap_ * 2);
      ++cap_doublings_;
      budget *= 2;
      if (out_degree(v) <= cap_) continue;
    }
    // Flip every out-edge of v inward: v drops to out-degree 0, each
    // former head gains one.
    flipping.assign(out_[static_cast<std::size_t>(v)].begin(),
                    out_[static_cast<std::size_t>(v)].end());
    for (const EdgeId e : flipping) {
      const NodeId h = head(e);
      remove_from_out(v, e);
      away_.set(e, !away_.test(e));
      push_out(h, e);
      if (out_degree(h) > cap_ && !queued_.test(h)) {
        queued_.set(h);
        over_cap_.push_back(h);
      }
    }
    flips += flipping.size();
    // v itself is now at zero; no re-queue needed.
  }
  over_cap_.clear();
  total_flips_ += flips;
  return flips;
}

NodeId DynamicOrientation::max_out_degree() const {
  NodeId best = 0;
  for (const auto& list : out_) {
    best = std::max(best, to_node(list.size()));
  }
  return best;
}

void DynamicOrientation::rebuild() {
  const Graph snap = g_->snapshot();
  const DegeneracyResult dec = degeneracy_order(snap);
  std::vector<NodeId> rank(static_cast<std::size_t>(snap.node_count()));
  for (std::size_t i = 0; i < dec.order.size(); ++i) {
    rank[static_cast<std::size_t>(dec.order[i])] = static_cast<NodeId>(i);
  }
  away_.assign(g_->edge_id_bound(), false);
  pos_in_out_.assign(static_cast<std::size_t>(g_->edge_id_bound()), -1);
  for (auto& list : out_) list.clear();
  g_->live_edges().for_each_set([&](std::int64_t e) {
    const Edge& ed = g_->edge(e);
    const bool away = rank[static_cast<std::size_t>(ed.u)] <
                      rank[static_cast<std::size_t>(ed.v)];
    away_.set(e, away);
    push_out(away ? ed.u : ed.v, e);
  });
  over_cap_.clear();
  queued_.assign(g_->node_count(), false);
  cap_ = std::max<NodeId>(kMinCap, static_cast<NodeId>(2 * dec.degeneracy));
}

}  // namespace dcl

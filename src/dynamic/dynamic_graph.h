// Mutable undirected simple graph with batched updates and stable edge ids.
//
// The static `Graph` is immutable by design: every listing algorithm in the
// repository indexes edge subsets, orientations, and masks by dense edge
// ids, so edges must never move. `DynamicGraph` keeps that contract under
// insertions and deletions:
//  * every live edge has a stable id, assigned at insertion and unchanged
//    until the edge is erased (erased ids are recycled for later inserts,
//    so the id space stays dense enough for EdgeMask indexing);
//  * adjacency is a CSR-with-slack arena: each node owns a contiguous,
//    *sorted* segment with spare capacity, so `neighbors(v)` is a sorted
//    span exactly like the static CSR and the intersect kernels of
//    common/intersect.h run on it unchanged. An insert into a full segment
//    relocates that segment to the arena tail with fresh slack (amortized
//    O(1) per update); when the arena is mostly dead space it is compacted
//    in node order.
//
// `snapshot()` materializes the live edges as a static `Graph` — the
// bridge to every from-scratch oracle the differential tests compare the
// dynamic engine against.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/edge_mask.h"
#include "graph/graph.h"

namespace dcl {

class DynamicGraph {
 public:
  explicit DynamicGraph(NodeId n);

  /// Seeds a dynamic graph with the edges of `g`; edge ids coincide with
  /// the static ids of `g` (0..m-1) at construction.
  static DynamicGraph from_graph(const Graph& g);

  NodeId node_count() const { return n_; }
  /// Number of live edges (erased edges excluded).
  EdgeId edge_count() const { return live_count_; }
  /// One past the largest edge id ever assigned: the index bound for any
  /// per-edge-id array or EdgeMask (erased ids below this may be dead).
  EdgeId edge_id_bound() const { return static_cast<EdgeId>(edges_.size()); }

  bool is_live(EdgeId e) const { return live_.test(e); }
  /// Bitmap of live edge ids over [0, edge_id_bound()).
  const EdgeMask& live_edges() const { return live_; }

  /// Endpoints of a live edge id (normalized u < v).
  const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(seg_[static_cast<std::size_t>(v)].size);
  }

  /// Sorted neighbor list of v. Invalidated by any mutation.
  std::span<const NodeId> neighbors(NodeId v) const {
    const Segment& s = seg_[static_cast<std::size_t>(v)];
    return {arena_adj_.data() + s.offset, static_cast<std::size_t>(s.size)};
  }

  /// Edge ids aligned with `neighbors(v)`.
  std::span<const EdgeId> incident_edges(NodeId v) const {
    const Segment& s = seg_[static_cast<std::size_t>(v)];
    return {arena_eid_.data() + s.offset, static_cast<std::size_t>(s.size)};
  }

  bool has_edge(NodeId a, NodeId b) const { return edge_id(a, b).has_value(); }
  std::optional<EdgeId> edge_id(NodeId a, NodeId b) const;

  /// Inserts edge {a,b}. Returns (id, true) for a new edge — recycling the
  /// most recently freed id when one exists — or (existing id, false)
  /// if the edge is already live. Throws on self-loops / out-of-range ids.
  std::pair<EdgeId, bool> insert_edge(NodeId a, NodeId b);

  /// Erases edge {a,b}; returns its (now recycled) id, or nullopt if the
  /// edge was not live.
  std::optional<EdgeId> erase_edge(NodeId a, NodeId b);

  /// Static CSR of the live edges (edges sorted lexicographically; the
  /// static ids are the sort ranks, not the dynamic ids).
  Graph snapshot() const;

  /// Maintenance counters (observability for tests and benches).
  std::uint64_t relocations() const { return relocations_; }
  std::uint64_t compactions() const { return compactions_; }
  std::size_t arena_slots() const { return arena_adj_.size(); }

 private:
  struct Segment {
    std::size_t offset = 0;
    NodeId size = 0;
    NodeId capacity = 0;
  };

  /// Index of `b` within v's sorted segment, or -1 when absent.
  NodeId find_in_segment(NodeId v, NodeId b) const;
  /// Moves v's segment to the arena tail with capacity for one more entry.
  void relocate(NodeId v);
  /// Rebuilds the arena in node order when dead slack dominates.
  void compact();

  NodeId n_ = 0;
  EdgeId live_count_ = 0;
  std::vector<Segment> seg_;
  std::vector<NodeId> arena_adj_;
  std::vector<EdgeId> arena_eid_;
  std::size_t arena_used_ = 0;  ///< high-water mark; slots past it are free

  std::vector<Edge> edges_;      ///< by edge id; erased ids keep stale values
  EdgeMask live_;                ///< live flag per edge id
  std::vector<EdgeId> free_ids_; ///< recycled ids, popped from the back

  std::uint64_t relocations_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace dcl

// Incrementally maintained degeneracy-style edge orientation.
//
// The paper's entire schedule is driven by an arboricity *witness*: "an
// orientation with maximum out-degree A" (Theorem 2.8). The static
// pipeline recomputes that witness with a full degeneracy peel per
// iteration; under edge updates we maintain it incrementally instead,
// Brodal–Fagerberg style:
//  * an inserted edge is oriented away from the endpoint with the smaller
//    current out-degree (ties toward the lower id — fully deterministic);
//  * whenever a node's out-degree exceeds the cap, *all* its out-edges are
//    flipped inward, which resets that node to zero and charges one
//    out-degree to each former head. With cap ≥ 2·arboricity + 1 the
//    standard potential argument bounds the cascade; because the true
//    arboricity is unknown and drifts under updates, the cap self-tunes:
//    when a fix-up pass blows its flip budget the cap doubles and the pass
//    resumes (termination is then guaranteed — a cap above the maximum
//    degree can never be exceeded).
//
// Unlike the static peel's orientation this one is not acyclic (a flip can
// close a cycle), so it must NOT be used to direct clique enumeration —
// its job is the out-degree bound itself: `max_out_degree()` is the live
// arboricity witness the dynamic engine reports per batch, and the bound
// is test-enforced against the static peel on every rebuild
// (tests/test_dynamic_orientation.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/edge_mask.h"
#include "graph/graph.h"

namespace dcl {

class DynamicOrientation {
 public:
  /// Binds to `g` (which must outlive this object) and runs `rebuild()`.
  explicit DynamicOrientation(const DynamicGraph& g);

  /// Must be called for every DynamicGraph::insert_edge, with its id.
  void on_insert(EdgeId e);
  /// Must be called for every DynamicGraph::erase_edge, with its id,
  /// *after* the edge is gone from the graph.
  void on_erase(EdgeId e);
  /// Flushes the over-cap fix-up queue; call once per batch after the
  /// updates. Returns the number of edge flips performed.
  std::uint64_t flush();

  NodeId out_degree(NodeId v) const {
    return to_node(out_[static_cast<std::size_t>(v)].size());
  }
  /// The live arboricity witness A (maximum out-degree). O(n) scan.
  NodeId max_out_degree() const;
  /// Current out-degree cap; `max_out_degree() <= cap()` holds whenever
  /// the fix-up queue is flushed.
  NodeId cap() const { return cap_; }

  NodeId tail(EdgeId e) const {
    const Edge& ed = g_->edge(e);
    return away_.test(e) ? ed.u : ed.v;
  }
  NodeId head(EdgeId e) const {
    const Edge& ed = g_->edge(e);
    return away_.test(e) ? ed.v : ed.u;
  }
  bool away_from_lower(EdgeId e) const { return away_.test(e); }

  /// Out-edge ids of v (unordered; the order is deterministic for a fixed
  /// update sequence but carries no meaning).
  std::span<const EdgeId> out_edges(NodeId v) const {
    return out_[static_cast<std::size_t>(v)];
  }

  /// Recomputes the orientation from a static degeneracy peel of the
  /// current live graph and resets the cap to max(kMinCap, 2·degeneracy).
  /// The resulting directions are bit-identical to
  /// `degeneracy_orientation(g.snapshot())` (regression-tested).
  void rebuild();

  std::uint64_t total_flips() const { return total_flips_; }
  std::uint64_t cap_doublings() const { return cap_doublings_; }

  static constexpr NodeId kMinCap = 4;

 private:
  void remove_from_out(NodeId v, EdgeId e);
  void push_out(NodeId v, EdgeId e);

  const DynamicGraph* g_ = nullptr;
  EdgeMask away_;                          ///< direction bit per edge id
  std::vector<std::vector<EdgeId>> out_;   ///< out-edge ids per node
  std::vector<std::int32_t> pos_in_out_;   ///< index of e in out_[tail(e)]
  std::vector<NodeId> over_cap_;           ///< fix-up queue (FIFO)
  EdgeMask queued_;                        ///< node already in over_cap_
  NodeId cap_ = kMinCap;
  std::uint64_t total_flips_ = 0;
  std::uint64_t cap_doublings_ = 0;
};

}  // namespace dcl

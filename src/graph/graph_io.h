// Plain-text edge-list serialization.
//
// Format (whitespace separated, '#' comments allowed):
//   n m
//   u v          (one line per edge)
// Used by the examples so users can run the listers on their own graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dcl {

void write_edge_list(const Graph& g, std::ostream& out);

/// Parses the format above. Every malformed input raises a one-line
/// `std::runtime_error` naming the offending token or edge index: negative
/// or > 2^31-1 counts, edge counts beyond n(n-1)/2 (checked *before* any
/// allocation), unparsable tokens, truncated files, out-of-range or
/// negative endpoints, self-loops, and duplicate edges. No input can
/// trigger UB, an abort, or an oversized upfront allocation.
Graph read_edge_list(std::istream& in);

void save_edge_list(const Graph& g, const std::string& path);
Graph load_edge_list(const std::string& path);

}  // namespace dcl

// Plain-text edge-list serialization.
//
// Format (whitespace separated, '#' comments allowed):
//   n m
//   u v          (one line per edge)
// Used by the examples so users can run the listers on their own graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dcl {

void write_edge_list(const Graph& g, std::ostream& out);

/// Parses the format above. Throws `std::runtime_error` on malformed input
/// (bad counts, out-of-range endpoints, self-loops).
Graph read_edge_list(std::istream& in);

void save_edge_list(const Graph& g, const std::string& path);
Graph load_edge_list(const std::string& path);

}  // namespace dcl

// Structured workload families for experiments and stress tests.
//
// Plain random graphs are not enough to exercise the paper's machinery:
// a dense Erdős–Rényi graph is a whole-graph expander (the decomposition
// returns a single cluster and the outside-edge machinery idles), while a
// sparse one never forms clusters at all. These families target specific
// mechanisms:
//  * `power_workload`      — G(n, c·n^α): density-controlled scaling sweeps;
//  * `clustered_workload`  — dense blocks + sparse cross edges + hub nodes;
//  * `periphery_workload`  — dense core + *peeling* periphery pairs whose
//    K4s straddle the cluster boundary (Challenge 1 / Theorem 1.2 traffic);
//  * `ring_of_cliques_workload` — blocks joined by single bridges, the only
//    cuts sparse enough for the 1/Θ(log m) conductance threshold, so Er
//    decays over several ARB-LIST iterations (§2.3's geometry).
#pragma once

#include "common/rng.h"
#include "graph/graph.h"

namespace dcl {

/// G(n, m) with m = round(c · n^alpha), capped at a third of all pairs.
Graph power_workload(NodeId n, double c, double alpha, Rng& rng);

/// ~n^{1/4} dense blocks of ~n^{3/4} nodes, sparse cross edges, plus `hubs`
/// nodes adjacent to a 0.3 fraction of the graph (C-heavy everywhere).
Graph clustered_workload(NodeId n, Rng& rng, double p_in = 0.45,
                         double p_out = 0.015, int hubs = 4);

/// Dense ER core of ~n^{0.8} nodes plus periphery pairs, each pair sharing
/// 2–8 random core attachments and one pair edge.
Graph periphery_workload(NodeId n, Rng& rng, double core_density = 0.4);

/// Ring of `blocks` dense blocks joined by single bridge edges.
Graph ring_of_cliques_workload(NodeId n, Rng& rng, int blocks = 6,
                               double density = 0.5);

}  // namespace dcl

// Structured workload families for experiments and stress tests.
//
// Plain random graphs are not enough to exercise the paper's machinery:
// a dense Erdős–Rényi graph is a whole-graph expander (the decomposition
// returns a single cluster and the outside-edge machinery idles), while a
// sparse one never forms clusters at all. These families target specific
// mechanisms:
//  * `power_workload`      — G(n, c·n^α): density-controlled scaling sweeps;
//  * `clustered_workload`  — dense blocks + sparse cross edges + hub nodes;
//  * `periphery_workload`  — dense core + *peeling* periphery pairs whose
//    K4s straddle the cluster boundary (Challenge 1 / Theorem 1.2 traffic);
//  * `ring_of_cliques_workload` — blocks joined by single bridges, the only
//    cuts sparse enough for the 1/Θ(log m) conductance threshold, so Er
//    decays over several ARB-LIST iterations (§2.3's geometry).
#pragma once

#include "common/rng.h"
#include "graph/graph.h"

namespace dcl {

/// G(n, m) with m = round(c · n^alpha), capped at a third of all pairs.
Graph power_workload(NodeId n, double c, double alpha, Rng& rng);

/// ~n^{1/4} dense blocks of ~n^{3/4} nodes, sparse cross edges, plus `hubs`
/// nodes adjacent to a 0.3 fraction of the graph (C-heavy everywhere).
Graph clustered_workload(NodeId n, Rng& rng, double p_in = 0.45,
                         double p_out = 0.015, int hubs = 4);

/// Dense ER core of ~n^{0.8} nodes plus periphery pairs, each pair sharing
/// 2–8 random core attachments and one pair edge.
Graph periphery_workload(NodeId n, Rng& rng, double core_density = 0.4);

/// Ring of `blocks` dense blocks joined by single bridge edges.
Graph ring_of_cliques_workload(NodeId n, Rng& rng, int blocks = 6,
                               double density = 0.5);

// ---------------------------------------------------------------------------
// Update streams for the batch-dynamic engine (src/dynamic/).
// ---------------------------------------------------------------------------

/// One batch of edge updates, applied atomically by the dynamic engine:
/// deletions first (against the pre-batch graph), then insertions. Either
/// list may be empty; inserting a live edge or erasing an absent one is a
/// recorded no-op.
struct UpdateBatch {
  std::vector<Edge> insert;
  std::vector<Edge> erase;
};

/// A reproducible update stream: the initial edge set plus the batches to
/// replay. Every generator below is a pure function of (parameters, rng),
/// so a (seed, parameters) pair pins the whole stream.
struct UpdateStream {
  NodeId n = 0;
  std::vector<Edge> initial;
  std::vector<UpdateBatch> batches;
};

/// Sliding-window stream: each batch inserts `batch_size` fresh random
/// edges and deletes the batch inserted `window` batches earlier — the
/// "recent-interactions graph" workload. Starts empty; after the warm-up
/// the live size is ~window·batch_size.
UpdateStream sliding_window_stream(NodeId n, int batches, int batch_size,
                                   int window, Rng& rng);

/// Churn stream: a G(n, m) base graph, then per batch `churn` live edges
/// deleted and `churn` fresh edges inserted — steady-state size, constant
/// turnover. The small-batch amortization workload of the benches.
UpdateStream churn_stream(NodeId n, EdgeId base_edges, int batches, int churn,
                          Rng& rng);

/// Densifying-community stream: `blocks` communities over a sparse random
/// background; each batch pours `per_batch` edges into a rotating hot
/// block (plus a trickle elsewhere) and every third batch deletes a few
/// cross-community edges. Clique counts grow superlinearly — the stress
/// case for per-batch delta sizes.
UpdateStream densifying_community_stream(NodeId n, int blocks, int batches,
                                         int per_batch, Rng& rng);

/// Build-teardown stream: grows to ~`peak_edges` over the first half of
/// the batches, then deletes everything over the second half (the final
/// batch empties the graph). Covers monotone growth, monotone shrinkage,
/// and the delete-everything edge case.
UpdateStream build_teardown_stream(NodeId n, EdgeId peak_edges, int batches,
                                   Rng& rng);

}  // namespace dcl

// Checked conversions between the id/index widths the engine mixes.
//
// The repo's scale contract (ROADMAP item 5): `NodeId` is 32-bit because
// node counts stay below 2^31 even at "tens of millions of nodes", but
// *edge-scale* quantities — edge ids, CSR offsets, per-phase message
// totals, out-degree² work estimates — must be 64-bit, because m and
// Σdeg = 2m pass 2^32 long before n does. Narrowing back down to 32 bits
// is legitimate only where a value is node-scale by construction; these
// helpers make that claim explicit and Debug-checked at every such seam.
//
// All helpers compile to a bare `static_cast` in Release builds (NDEBUG):
// the bench pins in BENCH_core.json must not move. In Debug builds an
// out-of-range value trips an assert at the conversion site instead of
// corrupting a listing thousands of instructions later.
//
// `tools/dcl_semlint.py` (rule `sem-narrow`) flags *implicit* 64→32
// narrowing; routing a justified narrowing through `to_node`/`to_edge`
// both silences the rule and buys the Debug range check.
#pragma once

#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <utility>

namespace dcl {

// The two id widths everything else derives from (this header is the root
// of the include graph — graph.h re-exports these). 32-bit node ids hold
// to hundreds of millions of nodes; edge ids and every edge-scale
// offset/cursor/accumulator are 64-bit because m and Σdeg = 2m cross 2^32
// far earlier.
using NodeId = std::int32_t;
using EdgeId = std::int64_t;

/// Narrow an integer to `NodeId`, asserting (Debug only) that the value is
/// representable. Use at seams where an edge-scale or size_t quantity is
/// node-scale by construction (e.g. a degree, a CSR row length).
template <std::integral T>
constexpr NodeId to_node(T v) {
  assert(std::in_range<NodeId>(v) && "to_node: value exceeds NodeId range");
  return static_cast<NodeId>(v);
}

/// Convert an integer to `EdgeId` (64-bit signed), asserting (Debug only)
/// representability — only unsigned values above 2^63 can fail.
template <std::integral T>
constexpr EdgeId to_edge(T v) {
  assert(std::in_range<EdgeId>(v) && "to_edge: value exceeds EdgeId range");
  return static_cast<EdgeId>(v);
}

/// 64-bit product of two non-negative integer operands, asserting (Debug
/// only) that neither operand is negative and the product fits in
/// uint64. This is the PR 6 out-degree² class: `d * d` with `d` a 32-bit
/// degree overflows int32 at d ≥ 2^16, so work estimates and table sizes
/// must widen *before* multiplying — `checked_mul64(d, d)`, never
/// `static_cast<std::uint64_t>(d * d)`.
template <std::integral A, std::integral B>
constexpr std::uint64_t checked_mul64(A a, B b) {
  if constexpr (std::is_signed_v<A>) {
    assert(a >= 0 && "checked_mul64: negative operand");
  }
  if constexpr (std::is_signed_v<B>) {
    assert(b >= 0 && "checked_mul64: negative operand");
  }
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  assert((ub == 0 ||
          ua <= std::numeric_limits<std::uint64_t>::max() / ub) &&
         "checked_mul64: product overflows uint64");
  return ua * ub;
}

}  // namespace dcl

// Immutable undirected simple graph in CSR form, with stable edge ids.
//
// This is the substrate every other module builds on. The listing
// algorithms of the paper repeatedly partition the edge set (E = Em ∪ Es ∪
// Er, goal edges vs. bad edges, ...), so edges carry dense ids `0..m-1`
// that subsets and orientations can index by.
//
// Conventions:
//  * Nodes are `0..n-1`. Edges are stored normalized with `u < v`.
//  * Self-loops and duplicate edges are rejected at construction.
//  * Neighbor lists are sorted, enabling O(log deg) adjacency queries and
//    linear-time sorted-list intersections in the enumeration module.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/ids.h"

namespace dcl {

/// An undirected edge, normalized so that `u < v`.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Returns {min(a,b), max(a,b)}; the canonical form used everywhere.
constexpr Edge make_edge(NodeId a, NodeId b) {
  return (a < b) ? Edge{a, b} : Edge{b, a};
}

/// Immutable simple graph. Construct via `from_edges` or an `EdgeListBuilder`.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph on nodes 0..n-1 from an arbitrary edge collection.
  /// Edges are normalized, sorted, and deduplicated. Throws
  /// `std::invalid_argument` on self-loops or endpoints outside [0, n).
  static Graph from_edges(NodeId n, std::vector<Edge> edges);

  /// Fast-path factory for callers that already hold a normalized
  /// (`u < v`), lexicographically sorted, duplicate-free edge list — e.g.
  /// the in-cluster lister's fragment assembly, which emits edges in
  /// sorted order by construction. Skips the normalize/sort/unique pass of
  /// `from_edges` and builds the CSR with one counting scatter (the
  /// scatter of a sorted edge list leaves every neighbor row sorted, so no
  /// per-row sort is needed either). The precondition is checked in debug
  /// builds (assert); edge ids equal positions in `edges`.
  static Graph from_sorted_edges(NodeId n, std::vector<Edge> edges);

  NodeId node_count() const { return n_; }
  EdgeId edge_count() const { return to_edge(edges_.size()); }

  /// All edges, sorted lexicographically; `edges()[e]` is the edge with id e.
  std::span<const Edge> edges() const { return edges_; }
  const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  NodeId degree(NodeId v) const {
    return to_node(offset(v + 1) - offset(v));
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + offset(v), adj_.data() + offset(v + 1)};
  }

  /// Edge ids aligned with `neighbors(v)`: incident_edges(v)[i] is the id of
  /// the edge {v, neighbors(v)[i]}.
  std::span<const EdgeId> incident_edges(NodeId v) const {
    return {adj_edge_.data() + offset(v), adj_edge_.data() + offset(v + 1)};
  }

  bool has_edge(NodeId a, NodeId b) const { return edge_id(a, b).has_value(); }

  /// Id of edge {a,b} if present.
  std::optional<EdgeId> edge_id(NodeId a, NodeId b) const;

  /// Given an endpoint `v` of edge `e`, returns the other endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const Edge& ed = edge(e);
    return (ed.u == v) ? ed.v : ed.u;
  }

  NodeId max_degree() const;
  double average_degree() const;

  /// Connected components; returns (component id per node, component count).
  std::pair<std::vector<int>, int> connected_components() const;

 private:
  /// Shared CSR build over a normalized, sorted, duplicate-free edge list
  /// (the tail of both factories).
  static Graph build_from_sorted(NodeId n, std::vector<Edge> edges);

  std::size_t offset(NodeId v) const {
    return offsets_[static_cast<std::size_t>(v)];
  }

  NodeId n_ = 0;
  std::vector<Edge> edges_;          // sorted, normalized
  std::vector<std::size_t> offsets_; // size n+1
  std::vector<NodeId> adj_;          // size 2m, sorted per node
  std::vector<EdgeId> adj_edge_;     // size 2m, aligned with adj_
};

/// Incremental edge collector that tolerates duplicates and reversed pairs;
/// `build` normalizes everything into a `Graph`.
class EdgeListBuilder {
 public:
  explicit EdgeListBuilder(NodeId n) : n_(n) {}

  /// Records edge {a,b}; duplicates are dropped at build time. Self-loops
  /// are rejected immediately.
  void add_edge(NodeId a, NodeId b);

  NodeId node_count() const { return n_; }
  std::size_t pending_edges() const { return edges_.size(); }

  Graph build() &&;

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

/// Builds the subgraph of `g` induced by keeping exactly the edges with
/// `keep[e] == true` (same node set). `keep.size()` must equal edge count.
Graph edge_subgraph(const Graph& g, const std::vector<bool>& keep);

/// Builds the subgraph induced by a node subset. Returns the subgraph (whose
/// nodes are re-numbered 0..|subset|-1) and the mapping from new id to
/// original id.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;
};
InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const NodeId> nodes);

}  // namespace dcl

// Word-parallel bitset over dense edge (or node) ids.
//
// The listing pipeline threads logical edge-set masks (Es, Er, the current
// graph, orientation bits) through every stage. As std::vector<bool> these
// cost a masked read-modify-write per bit and an O(m) loop per population
// count; EdgeMask stores 64 bits per uint64_t word so counting is a
// popcount sweep, bulk set algebra (E = Es ∪ Er, goal = Em \ bad) is one
// op per word, and set-bit iteration skips empty words via countr_zero.
//
// Tail bits past `size()` are kept zero as a class invariant, so count()
// and the bulk operators never need a final partial-word fixup.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace dcl {

class EdgeMask {
 public:
  EdgeMask() = default;
  explicit EdgeMask(std::int64_t n, bool value = false) { assign(n, value); }

  void assign(std::int64_t n, bool value) {
    size_ = n;
    words_.assign(word_count(n), value ? ~std::uint64_t{0} : 0);
    trim_tail();
  }

  std::int64_t size() const { return size_; }

  /// Grows (or shrinks) to n bits, preserving existing bits; new bits are
  /// zero. Used by the dynamic graph, whose edge-id space grows over time.
  void resize(std::int64_t n) {
    words_.resize(word_count(n), 0);
    size_ = n;
    trim_tail();
  }

  bool test(std::int64_t i) const {
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  bool operator[](std::int64_t i) const { return test(i); }

  void set(std::int64_t i, bool value = true) {
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    auto& w = words_[static_cast<std::size_t>(i >> 6)];
    if (value) {
      w |= bit;
    } else {
      w &= ~bit;
    }
  }
  void reset(std::int64_t i) { set(i, false); }

  void fill(bool value) {
    for (auto& w : words_) w = value ? ~std::uint64_t{0} : 0;
    trim_tail();
  }

  /// Population count — one hardware popcount per 64 edges.
  std::int64_t count() const {
    std::int64_t c = 0;
    for (const std::uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool none() const { return !any(); }

  EdgeMask& operator|=(const EdgeMask& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  EdgeMask& operator&=(const EdgeMask& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  /// this \ other, word-parallel.
  EdgeMask& and_not(const EdgeMask& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
    return *this;
  }

  friend EdgeMask operator|(EdgeMask a, const EdgeMask& b) { return a |= b; }
  friend EdgeMask operator&(EdgeMask a, const EdgeMask& b) { return a &= b; }

  friend bool operator==(const EdgeMask&, const EdgeMask&) = default;

  /// Calls `fn(i)` for every set bit in increasing order, skipping clear
  /// words entirely.
  template <typename F>
  void for_each_set(F&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(static_cast<std::int64_t>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

 private:
  static std::size_t word_count(std::int64_t n) {
    return static_cast<std::size_t>((n + 63) >> 6);
  }
  void trim_tail() {
    if (const int tail = static_cast<int>(size_ & 63); tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::int64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dcl

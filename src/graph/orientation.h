// Edge orientations and degeneracy (arboricity witness) machinery.
//
// The paper never computes arboricity exactly; it works with *witness
// orientations*: "arboricity at most A, along with an orientation of its
// edges with a maximum out-degree of A" (Theorem 2.8). We mirror that: an
// `Orientation` assigns each edge a direction, and a degeneracy ordering
// yields the canonical witness with out-degree ≤ degeneracy ≤ 2·arboricity-1
// (and arboricity ≤ degeneracy), tight enough for every bound in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcl {

/// A direction for every edge of a fixed graph. Edge e = {u,v} with u < v is
/// oriented u→v when `away_from_lower(e)` is true.
class Orientation {
 public:
  Orientation() = default;

  /// Orients every edge from the endpoint appearing *earlier* in `order` to
  /// the later one. With a degeneracy order this gives out-degree ≤
  /// degeneracy. `order` must be a permutation of 0..n-1.
  static Orientation from_order(const Graph& g, std::span<const NodeId> order);

  /// Explicit per-edge directions: `away_from_lower[e]` == true orients the
  /// edge from its lower-id endpoint to its higher-id endpoint.
  static Orientation from_directions(const Graph& g,
                                     std::vector<bool> away_from_lower);

  const Graph& graph() const { return *g_; }

  NodeId tail(EdgeId e) const {
    const Edge& ed = g_->edge(e);
    return away_[static_cast<std::size_t>(e)] ? ed.u : ed.v;
  }
  NodeId head(EdgeId e) const {
    const Edge& ed = g_->edge(e);
    return away_[static_cast<std::size_t>(e)] ? ed.v : ed.u;
  }
  bool away_from_lower(EdgeId e) const {
    return away_[static_cast<std::size_t>(e)];
  }

  NodeId out_degree(NodeId v) const {
    return to_node(out_offsets_[static_cast<std::size_t>(v) + 1] -
                               out_offsets_[static_cast<std::size_t>(v)]);
  }
  NodeId max_out_degree() const;

  /// Heads of the edges oriented away from v.
  std::span<const NodeId> out_neighbors(NodeId v) const {
    return {out_adj_.data() + out_offsets_[static_cast<std::size_t>(v)],
            out_adj_.data() + out_offsets_[static_cast<std::size_t>(v) + 1]};
  }
  /// Edge ids aligned with `out_neighbors(v)`.
  std::span<const EdgeId> out_edges(NodeId v) const {
    return {out_edge_.data() + out_offsets_[static_cast<std::size_t>(v)],
            out_edge_.data() + out_offsets_[static_cast<std::size_t>(v) + 1]};
  }

 private:
  void build_out_csr();

  const Graph* g_ = nullptr;
  std::vector<bool> away_;
  std::vector<std::size_t> out_offsets_;
  std::vector<NodeId> out_adj_;
  std::vector<EdgeId> out_edge_;
};

/// Result of the linear-time core-decomposition peeling.
struct DegeneracyResult {
  std::vector<NodeId> order;        ///< peeling order (lowest-degree-first)
  std::vector<NodeId> core_number;  ///< k-core number per node
  NodeId degeneracy = 0;            ///< max core number
};

/// Matula–Beck bucket peeling; O(n + m).
DegeneracyResult degeneracy_order(const Graph& g);

/// Canonical arboricity-witness orientation (out-degree ≤ degeneracy).
Orientation degeneracy_orientation(const Graph& g);

}  // namespace dcl

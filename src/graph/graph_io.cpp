#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace dcl {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

namespace {

/// Reads the next non-comment token line-by-line.
bool next_token(std::istream& in, std::string& token) {
  while (in >> token) {
    if (token[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    return true;
  }
  return false;
}

std::int64_t parse_int(const std::string& token, const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("read_edge_list: bad ") + what +
                             " token '" + token + "'");
  }
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string token;
  if (!next_token(in, token)) {
    throw std::runtime_error("read_edge_list: missing node count");
  }
  const std::int64_t n = parse_int(token, "node count");
  if (n < 0) throw std::runtime_error("read_edge_list: negative node count");
  if (n > std::numeric_limits<NodeId>::max()) {
    throw std::runtime_error("read_edge_list: node count " +
                             std::to_string(n) + " exceeds 2^31-1");
  }
  if (!next_token(in, token)) {
    throw std::runtime_error("read_edge_list: missing edge count");
  }
  const std::int64_t m = parse_int(token, "edge count");
  if (m < 0) throw std::runtime_error("read_edge_list: negative edge count");
  // A simple graph on n nodes holds at most n(n-1)/2 edges; checking before
  // the reserve means a corrupt header can never trigger a huge allocation.
  const std::int64_t max_m = n * (n - 1) / 2;
  if (m > max_m) {
    throw std::runtime_error("read_edge_list: edge count " +
                             std::to_string(m) + " exceeds n(n-1)/2 = " +
                             std::to_string(max_m));
  }
  std::vector<Edge> edges;
  // Cap the upfront reservation: the count is still untrusted relative to
  // the actual file size, and geometric growth amortizes the rest.
  edges.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(m, std::int64_t{1} << 20)));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(2 * m, std::int64_t{1} << 21)));
  for (std::int64_t i = 0; i < m; ++i) {
    if (!next_token(in, token)) {
      throw std::runtime_error("read_edge_list: truncated edge list (" +
                               std::to_string(i) + " of " +
                               std::to_string(m) + " edges)");
    }
    const std::int64_t u = parse_int(token, "endpoint");
    if (!next_token(in, token)) {
      throw std::runtime_error("read_edge_list: truncated edge " +
                               std::to_string(i));
    }
    const std::int64_t v = parse_int(token, "endpoint");
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw std::runtime_error("read_edge_list: edge " + std::to_string(i) +
                               " endpoint (" + std::to_string(u) + ", " +
                               std::to_string(v) +
                               ") outside [0, " + std::to_string(n) + ")");
    }
    if (u == v) {
      throw std::runtime_error("read_edge_list: self-loop (" +
                               std::to_string(u) + ", " + std::to_string(v) +
                               ") at edge " + std::to_string(i));
    }
    const Edge e = make_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)) << 32) |
        static_cast<std::uint32_t>(e.v);
    if (!seen.insert(key).second) {
      throw std::runtime_error("read_edge_list: duplicate edge (" +
                               std::to_string(e.u) + ", " +
                               std::to_string(e.v) + ") at edge " +
                               std::to_string(i));
    }
    edges.push_back(e);
  }
  return Graph::from_edges(static_cast<NodeId>(n), std::move(edges));
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(g, out);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace dcl

#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dcl {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

namespace {

/// Reads the next non-comment token line-by-line.
bool next_token(std::istream& in, std::string& token) {
  while (in >> token) {
    if (token[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    return true;
  }
  return false;
}

std::int64_t parse_int(const std::string& token, const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("read_edge_list: bad ") + what +
                             " token '" + token + "'");
  }
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string token;
  if (!next_token(in, token)) {
    throw std::runtime_error("read_edge_list: missing node count");
  }
  const std::int64_t n = parse_int(token, "node count");
  if (!next_token(in, token)) {
    throw std::runtime_error("read_edge_list: missing edge count");
  }
  const std::int64_t m = parse_int(token, "edge count");
  if (n < 0 || m < 0) {
    throw std::runtime_error("read_edge_list: negative counts");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    if (!next_token(in, token)) {
      throw std::runtime_error("read_edge_list: truncated edge list");
    }
    const std::int64_t u = parse_int(token, "endpoint");
    if (!next_token(in, token)) {
      throw std::runtime_error("read_edge_list: truncated edge");
    }
    const std::int64_t v = parse_int(token, "endpoint");
    edges.push_back(make_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)));
  }
  return Graph::from_edges(static_cast<NodeId>(n), std::move(edges));
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(g, out);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace dcl

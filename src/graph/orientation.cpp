#include "graph/orientation.h"

#include <algorithm>
#include <stdexcept>

namespace dcl {

Orientation Orientation::from_order(const Graph& g,
                                    std::span<const NodeId> order) {
  if (order.size() != static_cast<std::size_t>(g.node_count())) {
    throw std::invalid_argument("Orientation: order size mismatch");
  }
  std::vector<NodeId> rank(order.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<NodeId>(i);
  }
  for (NodeId r : rank) {
    if (r < 0) throw std::invalid_argument("Orientation: not a permutation");
  }
  std::vector<bool> away(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    away[static_cast<std::size_t>(e)] =
        rank[static_cast<std::size_t>(ed.u)] <
        rank[static_cast<std::size_t>(ed.v)];
  }
  return from_directions(g, std::move(away));
}

Orientation Orientation::from_directions(const Graph& g,
                                         std::vector<bool> away_from_lower) {
  if (away_from_lower.size() != static_cast<std::size_t>(g.edge_count())) {
    throw std::invalid_argument("Orientation: direction size mismatch");
  }
  Orientation o;
  o.g_ = &g;
  o.away_ = std::move(away_from_lower);
  o.build_out_csr();
  return o;
}

void Orientation::build_out_csr() {
  const Graph& g = *g_;
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::size_t> deg(n + 1, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    ++deg[static_cast<std::size_t>(tail(e))];
  }
  out_offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] = out_offsets_[v] + deg[v];
  }
  out_adj_.resize(static_cast<std::size_t>(g.edge_count()));
  out_edge_.resize(static_cast<std::size_t>(g.edge_count()));
  std::vector<std::size_t> cursor(out_offsets_.begin(),
                                  out_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    auto& c = cursor[static_cast<std::size_t>(tail(e))];
    out_adj_[c] = head(e);
    out_edge_[c] = e;
    ++c;
  }
}

NodeId Orientation::max_out_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < g_->node_count(); ++v) {
    best = std::max(best, out_degree(v));
  }
  return best;
}

DegeneracyResult degeneracy_order(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DegeneracyResult result;
  result.order.reserve(n);
  result.core_number.assign(n, 0);
  if (n == 0) return result;

  // Bucket queue keyed by current degree: intrusive doubly-linked lists
  // over the nodes, one list per degree. A decrement unlinks the node and
  // pushes it onto the front of the lower bucket, so each node sits in
  // exactly one bucket — no stale entries to skip, and the whole working
  // set is three n-sized arrays. The pop rule (front of the lowest
  // non-empty bucket = most recently pushed node of minimum degree) is the
  // LIFO order of the per-bucket-stack formulation, kept bit-identical
  // because the resulting orientation feeds the Kp pipeline's round
  // ledger.
  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Circular lists with one sentinel per bucket (ids n, n+1, …): every
  // element always has live prev/next neighbors, so unlink and push-front
  // are four unconditional stores each — no nil branches in the inner
  // loop. Bucket b is empty iff its sentinel points at itself.
  const std::size_t buckets = static_cast<std::size_t>(max_deg) + 1;
  const auto sentinel = [n](std::size_t b) { return n + b; };
  std::vector<std::size_t> next(n + buckets);
  std::vector<std::size_t> prev(n + buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    next[sentinel(b)] = prev[sentinel(b)] = sentinel(b);
  }
  const auto push_front = [&](std::size_t bucket, std::size_t v) {
    const std::size_t s = sentinel(bucket);
    const std::size_t h = next[s];
    next[v] = h;
    prev[v] = s;
    prev[h] = v;
    next[s] = v;
  };
  for (NodeId v = 0; v < g.node_count(); ++v) {
    push_front(static_cast<std::size_t>(deg[static_cast<std::size_t>(v)]),
               static_cast<std::size_t>(v));
  }
  NodeId current_core = 0;
  std::size_t cursor = 0;  // lowest possibly non-empty bucket
  std::vector<NodeId> live;  // branchless-compacted surviving neighbors
  live.resize(static_cast<std::size_t>(max_deg));
  for (std::size_t peeled = 0; peeled < n; ++peeled) {
    while (next[sentinel(cursor)] == sentinel(cursor)) ++cursor;
    const std::size_t vi = next[sentinel(cursor)];
    const NodeId v = to_node(vi);
    next[sentinel(cursor)] = next[vi];
    prev[next[vi]] = sentinel(cursor);
    current_core = std::max(current_core, to_node(cursor));
    result.core_number[vi] = current_core;
    result.order.push_back(v);
    deg[vi] = -1;
    // The `still live?` test rejects a data-dependent ~half of the visits;
    // compacting survivors branchlessly first keeps the mispredict-prone
    // check out of the pointer-surgery loop.
    std::size_t k = 0;
    for (const NodeId w : g.neighbors(v)) {
      live[k] = w;
      k += static_cast<std::size_t>(deg[static_cast<std::size_t>(w)] >= 0);
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto wi = static_cast<std::size_t>(live[i]);
      next[prev[wi]] = next[wi];
      prev[next[wi]] = prev[wi];
      --deg[wi];
      push_front(static_cast<std::size_t>(deg[wi]), wi);
      if (static_cast<std::size_t>(deg[wi]) < cursor) {
        cursor = static_cast<std::size_t>(deg[wi]);
      }
    }
  }
  result.degeneracy = current_core;
  return result;
}

Orientation degeneracy_orientation(const Graph& g) {
  const auto dec = degeneracy_order(g);
  return Orientation::from_order(g, dec.order);
}

}  // namespace dcl

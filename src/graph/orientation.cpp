#include "graph/orientation.h"

#include <algorithm>
#include <stdexcept>

namespace dcl {

Orientation Orientation::from_order(const Graph& g,
                                    std::span<const NodeId> order) {
  if (order.size() != static_cast<std::size_t>(g.node_count())) {
    throw std::invalid_argument("Orientation: order size mismatch");
  }
  std::vector<NodeId> rank(order.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<NodeId>(i);
  }
  for (NodeId r : rank) {
    if (r < 0) throw std::invalid_argument("Orientation: not a permutation");
  }
  std::vector<bool> away(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    away[static_cast<std::size_t>(e)] =
        rank[static_cast<std::size_t>(ed.u)] <
        rank[static_cast<std::size_t>(ed.v)];
  }
  return from_directions(g, std::move(away));
}

Orientation Orientation::from_directions(const Graph& g,
                                         std::vector<bool> away_from_lower) {
  if (away_from_lower.size() != static_cast<std::size_t>(g.edge_count())) {
    throw std::invalid_argument("Orientation: direction size mismatch");
  }
  Orientation o;
  o.g_ = &g;
  o.away_ = std::move(away_from_lower);
  o.build_out_csr();
  return o;
}

void Orientation::build_out_csr() {
  const Graph& g = *g_;
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::size_t> deg(n + 1, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    ++deg[static_cast<std::size_t>(tail(e))];
  }
  out_offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] = out_offsets_[v] + deg[v];
  }
  out_adj_.resize(static_cast<std::size_t>(g.edge_count()));
  out_edge_.resize(static_cast<std::size_t>(g.edge_count()));
  std::vector<std::size_t> cursor(out_offsets_.begin(),
                                  out_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    auto& c = cursor[static_cast<std::size_t>(tail(e))];
    out_adj_[c] = head(e);
    out_edge_[c] = e;
    ++c;
  }
}

NodeId Orientation::max_out_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < g_->node_count(); ++v) {
    best = std::max(best, out_degree(v));
  }
  return best;
}

DegeneracyResult degeneracy_order(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DegeneracyResult result;
  result.order.reserve(n);
  result.core_number.assign(n, 0);
  if (n == 0) return result;

  // Bucket queue keyed by current degree.
  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    max_deg = std::max(max_deg, g.degree(v));
  }
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(max_deg) + 1);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    buckets[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  std::vector<bool> removed(n, false);
  NodeId current_core = 0;
  std::size_t cursor = 0;  // lowest possibly non-empty bucket
  for (std::size_t peeled = 0; peeled < n; ++peeled) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    // Entries can be stale (degree decreased after insertion); skip them.
    while (true) {
      NodeId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      const auto vi = static_cast<std::size_t>(v);
      if (!removed[vi] && deg[vi] == static_cast<NodeId>(cursor)) {
        current_core = std::max(current_core, static_cast<NodeId>(cursor));
        result.core_number[vi] = current_core;
        result.order.push_back(v);
        removed[vi] = true;
        for (NodeId w : g.neighbors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (!removed[wi]) {
            --deg[wi];
            buckets[static_cast<std::size_t>(deg[wi])].push_back(w);
            if (static_cast<std::size_t>(deg[wi]) < cursor) {
              cursor = static_cast<std::size_t>(deg[wi]);
            }
          }
        }
        break;
      }
      while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    }
  }
  result.degeneracy = current_core;
  return result;
}

Orientation degeneracy_orientation(const Graph& g) {
  const auto dec = degeneracy_order(g);
  return Orientation::from_order(g, dec.order);
}

}  // namespace dcl

#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace dcl {

/// Shared CSR build over a normalized, lexicographically sorted,
/// duplicate-free edge list. A counting scatter in edge order fills every
/// neighbor row already sorted: row v first receives its lower-id
/// neighbors x (edges {x, v} with x < v appear in ascending x before any
/// edge {v, ·}), then its higher-id neighbors w (edges {v, w} in ascending
/// w) — so no per-row sort is needed.
Graph Graph::build_from_sorted(NodeId n, std::vector<Edge> edges) {
  Graph g;
  g.n_ = n;
  g.edges_ = std::move(edges);
  const auto m = g.edges_.size();

  std::vector<std::size_t> deg(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : g.edges_) {
    ++deg[static_cast<std::size_t>(e.u)];
    ++deg[static_cast<std::size_t>(e.v)];
  }
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[static_cast<std::size_t>(v) + 1] =
        g.offsets_[static_cast<std::size_t>(v)] +
        deg[static_cast<std::size_t>(v)];
  }
  g.adj_.resize(2 * m);
  g.adj_edge_.resize(2 * m);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const Edge& e = g.edges_[i];
    auto& cu = cursor[static_cast<std::size_t>(e.u)];
    g.adj_[cu] = e.v;
    g.adj_edge_[cu] = static_cast<EdgeId>(i);
    ++cu;
    auto& cv = cursor[static_cast<std::size_t>(e.v)];
    g.adj_[cv] = e.u;
    g.adj_edge_[cv] = static_cast<EdgeId>(i);
    ++cv;
  }
  return g;
}

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges) {
  if (n < 0) throw std::invalid_argument("Graph: negative node count");
  for (auto& e : edges) {
    if (e.u == e.v) throw std::invalid_argument("Graph: self-loop");
    if (e.u < 0 || e.v < 0 || e.u >= n || e.v >= n) {
      throw std::invalid_argument("Graph: endpoint out of range");
    }
    e = make_edge(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return build_from_sorted(n, std::move(edges));
}

Graph Graph::from_sorted_edges(NodeId n, std::vector<Edge> edges) {
  if (n < 0) throw std::invalid_argument("Graph: negative node count");
#ifndef NDEBUG
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    assert(e.u < e.v && e.u >= 0 && e.v < n && "from_sorted_edges: not normalized");
    assert((i == 0 || edges[i - 1] < e) && "from_sorted_edges: not sorted/unique");
  }
#endif
  return build_from_sorted(n, std::move(edges));
}

std::optional<EdgeId> Graph::edge_id(NodeId a, NodeId b) const {
  if (a < 0 || b < 0 || a >= n_ || b >= n_ || a == b) return std::nullopt;
  // Search from the lower-degree endpoint.
  if (degree(a) > degree(b)) std::swap(a, b);
  const auto nbrs = neighbors(a);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
  if (it == nbrs.end() || *it != b) return std::nullopt;
  const auto pos = static_cast<std::size_t>(it - nbrs.begin());
  return incident_edges(a)[pos];
}

NodeId Graph::max_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

double Graph::average_degree() const {
  if (n_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) / static_cast<double>(n_);
}

std::pair<std::vector<int>, int> Graph::connected_components() const {
  std::vector<int> comp(static_cast<std::size_t>(n_), -1);
  int count = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n_; ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    comp[static_cast<std::size_t>(s)] = count;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : neighbors(v)) {
        if (comp[static_cast<std::size_t>(w)] == -1) {
          comp[static_cast<std::size_t>(w)] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  return {std::move(comp), count};
}

void EdgeListBuilder::add_edge(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("EdgeListBuilder: self-loop");
  if (a < 0 || b < 0 || a >= n_ || b >= n_) {
    throw std::invalid_argument("EdgeListBuilder: endpoint out of range");
  }
  edges_.push_back(make_edge(a, b));
}

Graph EdgeListBuilder::build() && {
  return Graph::from_edges(n_, std::move(edges_));
}

Graph edge_subgraph(const Graph& g, const std::vector<bool>& keep) {
  if (keep.size() != static_cast<std::size_t>(g.edge_count())) {
    throw std::invalid_argument("edge_subgraph: mask size mismatch");
  }
  std::vector<Edge> kept;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (keep[static_cast<std::size_t>(e)]) kept.push_back(g.edge(e));
  }
  return Graph::from_edges(g.node_count(), std::move(kept));
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const NodeId> nodes) {
  std::vector<NodeId> to_original(nodes.begin(), nodes.end());
  std::sort(to_original.begin(), to_original.end());
  to_original.erase(std::unique(to_original.begin(), to_original.end()),
                    to_original.end());
  std::vector<NodeId> to_new(static_cast<std::size_t>(g.node_count()), -1);
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    to_new[static_cast<std::size_t>(to_original[i])] =
        static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  for (NodeId nv = 0; nv < to_node(to_original.size()); ++nv) {
    const NodeId ov = to_original[static_cast<std::size_t>(nv)];
    for (NodeId ow : g.neighbors(ov)) {
      const NodeId nw = to_new[static_cast<std::size_t>(ow)];
      if (nw > nv) edges.push_back(Edge{nv, nw});
    }
  }
  InducedSubgraph result;
  result.graph = Graph::from_edges(to_node(to_original.size()),
                                   std::move(edges));
  result.to_original = std::move(to_original);
  return result;
}

}  // namespace dcl

#include "graph/workloads.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/math_util.h"
#include "graph/generators.h"
#include "graph/ids.h"

namespace dcl {

Graph power_workload(NodeId n, double c, double alpha, Rng& rng) {
  const auto max_m = static_cast<EdgeId>(n) * (n - 1) / 3;
  const auto m = std::min<EdgeId>(
      max_m, static_cast<EdgeId>(c * std::pow(static_cast<double>(n), alpha)));
  return erdos_renyi_gnm(n, m, rng);
}

Graph clustered_workload(NodeId n, Rng& rng, double p_in, double p_out,
                         int hubs) {
  const auto block = std::max<NodeId>(
      8, static_cast<NodeId>(floor_pow(n, 0.75)));
  std::vector<Edge> edges;
  const NodeId body = static_cast<NodeId>(n - hubs);
  for (NodeId u = 0; u < body; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < body; ++v) {
      const double p = (u / block == v / block) ? p_in : p_out;
      if (rng.next_bool(p)) edges.push_back({u, v});
    }
  }
  for (NodeId h = body; h < n; ++h) {
    for (NodeId v = 0; v < body; ++v) {
      if (rng.next_bool(0.3)) edges.push_back(make_edge(v, h));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph periphery_workload(NodeId n, Rng& rng, double core_density) {
  const auto core = static_cast<NodeId>(floor_pow(n, 0.8));
  std::vector<Edge> edges;
  for (NodeId u = 0; u < core; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < core; ++v) {
      if (rng.next_bool(core_density)) edges.push_back({u, v});
    }
  }
  for (NodeId v = core; v + 1 < n; v = static_cast<NodeId>(v + 2)) {
    const NodeId v2 = static_cast<NodeId>(v + 1);
    // dcl-lint: allow(reserve-hint): one-shot workload generator, size
    edges.push_back({v, v2});  // depends on RNG draws; not a hot path
    const auto shared = 2 + rng.next_below(7);
    for (std::uint64_t i = 0; i < shared; ++i) {
      const auto u = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(core)));
      edges.push_back(make_edge(u, v));
      edges.push_back(make_edge(u, v2));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph ring_of_cliques_workload(NodeId n, Rng& rng, int blocks,
                               double density) {
  const auto size = static_cast<NodeId>(n / blocks);
  std::vector<Edge> edges;
  for (int b = 0; b < blocks; ++b) {
    const auto lo = static_cast<NodeId>(b * size);
    const auto hi = static_cast<NodeId>((b + 1 == blocks) ? n : lo + size);
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < hi; ++v) {
        if (rng.next_bool(density)) edges.push_back({u, v});
      }
    }
    const auto next_lo = static_cast<NodeId>(((b + 1) % blocks) * size);
    edges.push_back(make_edge(lo, next_lo));
  }
  return Graph::from_edges(n, std::move(edges));
}

// ---------------------------------------------------------------------------
// Update streams.
// ---------------------------------------------------------------------------

namespace {

/// Stream-generation bookkeeping: the live edge set with O(log) membership
/// and O(1) uniform random picks (position-tracked swap-remove).
class LivePool {
 public:
  bool contains(const Edge& e) const { return pos_.count(e) != 0; }
  std::size_t size() const { return list_.size(); }

  void add(const Edge& e) {
    if (!pos_.emplace(e, list_.size()).second) return;
    list_.push_back(e);
  }

  void remove(const Edge& e) {
    const auto it = pos_.find(e);
    const std::size_t i = it->second;
    pos_.erase(it);
    const Edge last = list_.back();
    list_.pop_back();
    if (i < list_.size()) {
      list_[i] = last;
      pos_[last] = i;
    }
  }

  Edge pick(Rng& rng) const {
    return list_[static_cast<std::size_t>(rng.next_below(list_.size()))];
  }

 private:
  std::map<Edge, std::size_t> pos_;
  std::vector<Edge> list_;
};

Edge random_pair(NodeId n, Rng& rng) {
  const auto u = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
  auto v = to_node(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  if (v >= u) ++v;
  return make_edge(u, v);
}

/// A uniformly random edge not currently live.
Edge fresh_edge(NodeId n, const LivePool& pool, Rng& rng) {
  while (true) {
    const Edge e = random_pair(n, rng);
    if (!pool.contains(e)) return e;
  }
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

UpdateStream sliding_window_stream(NodeId n, int batches, int batch_size,
                                   int window, Rng& rng) {
  require(n >= 2 && batches >= 0 && batch_size >= 0 && window >= 1,
          "sliding_window_stream: bad parameters");
  // Keep the rejection sampler in fresh_edge fast (and total): the live
  // set peaks at (window+1)·batch_size edges during a batch; cap it at
  // half of all pairs.
  require(static_cast<EdgeId>(window + 1) * batch_size <=
              static_cast<EdgeId>(n) * (n - 1) / 4,
          "sliding_window_stream: window x batch_size above half density");
  UpdateStream stream;
  stream.n = n;
  LivePool pool;
  std::vector<std::vector<Edge>> inserted_at(static_cast<std::size_t>(batches));
  for (int b = 0; b < batches; ++b) {
    UpdateBatch batch;
    if (b >= window) {
      batch.erase = inserted_at[static_cast<std::size_t>(b - window)];
      for (const Edge& e : batch.erase) pool.remove(e);
    }
    for (int i = 0; i < batch_size; ++i) {
      const Edge e = fresh_edge(n, pool, rng);
      pool.add(e);
      batch.insert.push_back(e);
    }
    inserted_at[static_cast<std::size_t>(b)] = batch.insert;
    stream.batches.push_back(std::move(batch));
  }
  return stream;
}

UpdateStream churn_stream(NodeId n, EdgeId base_edges, int batches, int churn,
                          Rng& rng) {
  require(n >= 2 && base_edges >= 0 && batches >= 0 && churn >= 0,
          "churn_stream: bad parameters");
  // Same totality guard as the other families: the live set stays near
  // base_edges (plus the in-flight churn); cap it at half of all pairs.
  require(base_edges + churn <= static_cast<EdgeId>(n) * (n - 1) / 4,
          "churn_stream: base_edges above half density");
  UpdateStream stream;
  stream.n = n;
  const Graph base = erdos_renyi_gnm(n, base_edges, rng);
  stream.initial.assign(base.edges().begin(), base.edges().end());
  LivePool pool;
  for (const Edge& e : stream.initial) pool.add(e);
  for (int b = 0; b < batches; ++b) {
    UpdateBatch batch;
    for (int i = 0; i < churn && pool.size() > 0; ++i) {
      const Edge e = pool.pick(rng);
      pool.remove(e);
      // dcl-lint: allow(reserve-hint): one-shot stream generator, batches
      batch.erase.push_back(e);  // are churn-sized and tiny; not a hot path
    }
    for (int i = 0; i < churn; ++i) {
      const Edge e = fresh_edge(n, pool, rng);
      pool.add(e);
      batch.insert.push_back(e);
    }
    stream.batches.push_back(std::move(batch));
  }
  return stream;
}

UpdateStream densifying_community_stream(NodeId n, int blocks, int batches,
                                         int per_batch, Rng& rng) {
  require(n >= 2 && blocks >= 1 && n >= 2 * blocks && batches >= 0 &&
              per_batch >= 0,
          "densifying_community_stream: bad parameters");
  UpdateStream stream;
  stream.n = n;
  const NodeId block = n / static_cast<NodeId>(blocks);
  LivePool pool;
  // Sparse random background so cross-community edges exist to delete.
  for (NodeId i = 0; i < n / 2; ++i) {
    const Edge e = fresh_edge(n, pool, rng);
    pool.add(e);
    // dcl-lint: allow(reserve-hint): one-shot stream generator setup;
    stream.initial.push_back(e);  // not a hot path
  }
  for (int b = 0; b < batches; ++b) {
    UpdateBatch batch;
    const int hot = b % blocks;
    const NodeId lo = static_cast<NodeId>(hot) * block;
    const NodeId hi = (hot + 1 == blocks) ? n : static_cast<NodeId>(lo + block);
    if (b % 3 == 2) {
      // Trim a few cross-community edges (rejection-pick from the pool).
      // Trims are drawn before this batch's insertions: the engine applies
      // deletions against the pre-batch graph, so they must name pre-batch
      // edges.
      int removed = 0;
      for (int attempt = 0; attempt < 50 && removed < 3 && pool.size() > 0;
           ++attempt) {
        const Edge e = pool.pick(rng);
        if (e.u / block != e.v / block) {
          pool.remove(e);
          batch.erase.push_back(e);
          ++removed;
        }
      }
    }
    for (int i = 0; i < per_batch; ++i) {
      Edge e{};
      bool found = false;
      // Mostly intra-hot-block edges; a dense block may near-fill, so
      // bounded retries fall back to a background edge.
      if (!rng.next_bool(0.2)) {
        for (int attempt = 0; attempt < 20 && !found; ++attempt) {
          const NodeId u =
              to_node(static_cast<std::uint64_t>(lo) +
                      rng.next_below(static_cast<std::uint64_t>(hi - lo)));
          NodeId v =
              to_node(static_cast<std::uint64_t>(lo) +
                      rng.next_below(static_cast<std::uint64_t>(hi - lo - 1)));
          if (v >= u) ++v;
          e = make_edge(u, v);
          found = !pool.contains(e);
        }
      }
      if (!found) e = fresh_edge(n, pool, rng);
      pool.add(e);
      batch.insert.push_back(e);
    }
    stream.batches.push_back(std::move(batch));
  }
  return stream;
}

UpdateStream build_teardown_stream(NodeId n, EdgeId peak_edges, int batches,
                                   Rng& rng) {
  require(n >= 2 && peak_edges >= 0 && batches >= 2,
          "build_teardown_stream: bad parameters");
  // Keep the rejection sampler in fresh_edge fast (and total): cap the
  // peak at half of all pairs.
  require(peak_edges <= static_cast<EdgeId>(n) * (n - 1) / 4,
          "build_teardown_stream: peak_edges above half density");
  UpdateStream stream;
  stream.n = n;
  LivePool pool;
  const int build = batches / 2;
  const int teardown = batches - build;
  for (int b = 0; b < build; ++b) {
    UpdateBatch batch;
    const auto target = static_cast<std::size_t>(
        peak_edges * (b + 1) / build);
    while (pool.size() < target) {
      const Edge e = fresh_edge(n, pool, rng);
      pool.add(e);
      batch.insert.push_back(e);
    }
    stream.batches.push_back(std::move(batch));
  }
  for (int b = 0; b < teardown; ++b) {
    UpdateBatch batch;
    const int remaining_batches = teardown - b;
    const std::size_t to_delete =
        (pool.size() + static_cast<std::size_t>(remaining_batches) - 1) /
        static_cast<std::size_t>(remaining_batches);
    for (std::size_t i = 0; i < to_delete && pool.size() > 0; ++i) {
      const Edge e = pool.pick(rng);
      pool.remove(e);
      // dcl-lint: allow(reserve-hint): one-shot teardown-stream generator;
      batch.erase.push_back(e);  // not a hot path
    }
    stream.batches.push_back(std::move(batch));
  }
  return stream;
}

}  // namespace dcl

#include "graph/workloads.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "graph/generators.h"

namespace dcl {

Graph power_workload(NodeId n, double c, double alpha, Rng& rng) {
  const auto max_m = static_cast<EdgeId>(n) * (n - 1) / 3;
  const auto m = std::min<EdgeId>(
      max_m, static_cast<EdgeId>(c * std::pow(static_cast<double>(n), alpha)));
  return erdos_renyi_gnm(n, m, rng);
}

Graph clustered_workload(NodeId n, Rng& rng, double p_in, double p_out,
                         int hubs) {
  const auto block = std::max<NodeId>(
      8, static_cast<NodeId>(floor_pow(n, 0.75)));
  std::vector<Edge> edges;
  const NodeId body = static_cast<NodeId>(n - hubs);
  for (NodeId u = 0; u < body; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < body; ++v) {
      const double p = (u / block == v / block) ? p_in : p_out;
      if (rng.next_bool(p)) edges.push_back({u, v});
    }
  }
  for (NodeId h = body; h < n; ++h) {
    for (NodeId v = 0; v < body; ++v) {
      if (rng.next_bool(0.3)) edges.push_back(make_edge(v, h));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph periphery_workload(NodeId n, Rng& rng, double core_density) {
  const auto core = static_cast<NodeId>(floor_pow(n, 0.8));
  std::vector<Edge> edges;
  for (NodeId u = 0; u < core; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < core; ++v) {
      if (rng.next_bool(core_density)) edges.push_back({u, v});
    }
  }
  for (NodeId v = core; v + 1 < n; v = static_cast<NodeId>(v + 2)) {
    const NodeId v2 = static_cast<NodeId>(v + 1);
    edges.push_back({v, v2});
    const auto shared = 2 + rng.next_below(7);
    for (std::uint64_t i = 0; i < shared; ++i) {
      const auto u = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(core)));
      edges.push_back(make_edge(u, v));
      edges.push_back(make_edge(u, v2));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph ring_of_cliques_workload(NodeId n, Rng& rng, int blocks,
                               double density) {
  const auto size = static_cast<NodeId>(n / blocks);
  std::vector<Edge> edges;
  for (int b = 0; b < blocks; ++b) {
    const auto lo = static_cast<NodeId>(b * size);
    const auto hi = static_cast<NodeId>((b + 1 == blocks) ? n : lo + size);
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < hi; ++v) {
        if (rng.next_bool(density)) edges.push_back({u, v});
      }
    }
    const auto next_lo = static_cast<NodeId>(((b + 1) % blocks) * size);
    edges.push_back(make_edge(lo, next_lo));
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace dcl

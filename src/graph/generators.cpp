#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "common/math_util.h"

namespace dcl {

namespace {

std::uint64_t encode_pair(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

Graph erdos_renyi_gnm(NodeId n, EdgeId m, Rng& rng) {
  const auto max_m = static_cast<EdgeId>(n) * (n - 1) / 2;
  if (m < 0 || m > max_m) {
    throw std::invalid_argument("erdos_renyi_gnm: m out of range");
  }
  // Dense request: sample edges to *remove* instead, to keep rejection cheap.
  if (m > max_m / 2) {
    std::vector<bool> removed_mask;
    const Graph full = complete_graph(n);
    std::unordered_set<std::uint64_t> removed;
    removed.reserve(static_cast<std::size_t>(max_m - m) * 2);
    while (static_cast<EdgeId>(removed.size()) < max_m - m) {
      const auto u = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto v = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const Edge e = make_edge(u, v);
      removed.insert(encode_pair(e.u, e.v));
    }
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(m));
    for (const Edge& e : full.edges()) {
      if (!removed.contains(encode_pair(e.u, e.v))) edges.push_back(e);
    }
    return Graph::from_edges(n, std::move(edges));
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<EdgeId>(edges.size()) < m) {
    const auto u = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const Edge e = make_edge(u, v);
    if (chosen.insert(encode_pair(e.u, e.v)).second) edges.push_back(e);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph erdos_renyi_gnp(NodeId n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi_gnp: p out of [0,1]");
  }
  std::vector<Edge> edges;
  if (p >= 1.0) return complete_graph(n);
  if (p > 0.0 && n >= 2) {
    // Geometric skipping over the C(n,2) potential edges in lexicographic
    // order (row u holds pairs (u, u+1..n-1)); O(n + m) expected time.
    const double log_q = std::log1p(-p);
    NodeId u = 0;
    NodeId v = 0;  // cursor sits one position *before* the next candidate
    while (u < n - 1) {
      const double r = std::max(rng.next_double(), 1e-300);
      auto skip = static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
      // Advance the (u, v) cursor by skip+1 positions.
      std::int64_t advance = skip + 1;
      while (u < n - 1) {
        const std::int64_t left_in_row = static_cast<std::int64_t>(n) - 1 - v;
        if (advance <= left_in_row) {
          v = static_cast<NodeId>(v + advance);
          advance = 0;
          break;
        }
        advance -= left_in_row;
        ++u;
        v = u;  // next row starts at (u, u+1); cursor one before
      }
      if (u >= n - 1) break;
      edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

PlantedClique planted_clique(NodeId n, NodeId clique_size, double noise_p,
                             Rng& rng) {
  if (clique_size > n) {
    throw std::invalid_argument("planted_clique: clique larger than graph");
  }
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(perm);
  std::vector<NodeId> members(perm.begin(), perm.begin() + clique_size);
  std::sort(members.begin(), members.end());

  const Graph noise = erdos_renyi_gnp(n, noise_p, rng);
  std::vector<Edge> edges(noise.edges().begin(), noise.edges().end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      edges.push_back(make_edge(members[i], members[j]));
    }
  }
  PlantedClique result;
  result.graph = Graph::from_edges(n, std::move(edges));
  result.clique_nodes = std::move(members);
  return result;
}

Graph stochastic_block_model(const std::vector<NodeId>& block_sizes,
                             double p_in, double p_out, Rng& rng) {
  NodeId n = 0;
  for (NodeId s : block_sizes) n += s;
  std::vector<int> block(static_cast<std::size_t>(n));
  {
    NodeId v = 0;
    for (std::size_t b = 0; b < block_sizes.size(); ++b) {
      for (NodeId i = 0; i < block_sizes[b]; ++i) {
        block[static_cast<std::size_t>(v++)] = static_cast<int>(b);
      }
    }
  }
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = (block[static_cast<std::size_t>(u)] ==
                        block[static_cast<std::size_t>(v)])
                           ? p_in
                           : p_out;
      if (rng.next_bool(p)) edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph power_law_chung_lu(NodeId n, double exponent, double target_avg_degree,
                         Rng& rng) {
  if (n == 0) return empty_graph(0);
  std::vector<double> weight(static_cast<std::size_t>(n));
  const double gamma = 1.0 / (exponent - 1.0);
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    weight[static_cast<std::size_t>(i)] =
        std::pow(static_cast<double>(i) + 1.0, -gamma);
    sum += weight[static_cast<std::size_t>(i)];
  }
  const double scale =
      target_avg_degree * static_cast<double>(n) / sum;
  for (auto& w : weight) w *= scale;
  const double total_weight = target_avg_degree * static_cast<double>(n);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p =
          std::min(1.0, weight[static_cast<std::size_t>(u)] *
                            weight[static_cast<std::size_t>(v)] /
                            total_weight);
      if (rng.next_bool(p)) edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_regular(NodeId n, NodeId d, Rng& rng) {
  if (d >= n || (static_cast<std::int64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("random_regular: invalid (n, d)");
  }
  // Configuration model with per-pair retries: repeatedly match two random
  // remaining stubs, rejecting self-loops and duplicates locally; restart
  // from scratch only if the tail of the matching gets stuck. For d ≪ n
  // this succeeds in O(1) expected restarts (unlike whole-matching
  // rejection, whose success probability vanishes already at d ≈ 8).
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId i = 0; i < d; ++i) stubs.push_back(v);
    }
    std::unordered_set<std::uint64_t> seen;
    std::vector<Edge> edges;
    bool stuck = false;
    while (stubs.size() >= 2 && !stuck) {
      int local_tries = 0;
      while (true) {
        const auto i = static_cast<std::size_t>(rng.next_below(stubs.size()));
        auto j = static_cast<std::size_t>(rng.next_below(stubs.size() - 1));
        if (j >= i) ++j;
        const NodeId u = stubs[i];
        const NodeId v = stubs[j];
        const Edge e = make_edge(u, v);
        if (u != v && !seen.contains(encode_pair(e.u, e.v))) {
          seen.insert(encode_pair(e.u, e.v));
          edges.push_back(e);
          // Remove both stubs (larger index first).
          const auto hi = std::max(i, j), lo = std::min(i, j);
          stubs[hi] = stubs.back();
          stubs.pop_back();
          stubs[lo] = stubs.back();
          stubs.pop_back();
          break;
        }
        if (++local_tries > 200) {
          stuck = true;  // tail is unmatchable; restart the whole pairing
          break;
        }
      }
    }
    if (!stuck && stubs.empty()) return Graph::from_edges(n, std::move(edges));
  }
  throw std::runtime_error("random_regular: too many restarts");
}

Graph complete_graph(NodeId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      edges.push_back(Edge{u, static_cast<NodeId>(a + v)});
    }
  }
  return Graph::from_edges(a + b, std::move(edges));
}

Graph star_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return Graph::from_edges(n, std::move(edges));
}

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back(Edge{v, static_cast<NodeId>(v + 1)});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle_graph(NodeId n) {
  if (n < 3) return path_graph(n);
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back(Edge{v, static_cast<NodeId>(v + 1)});
  }
  edges.push_back(make_edge(0, static_cast<NodeId>(n - 1)));
  return Graph::from_edges(n, std::move(edges));
}

Graph empty_graph(NodeId n) { return Graph::from_edges(n, {}); }

Graph disjoint_union(const Graph& a, const Graph& b) {
  std::vector<Edge> edges(a.edges().begin(), a.edges().end());
  const NodeId shift = a.node_count();
  for (const Edge& e : b.edges()) {
    edges.push_back(Edge{static_cast<NodeId>(e.u + shift),
                         static_cast<NodeId>(e.v + shift)});
  }
  return Graph::from_edges(a.node_count() + b.node_count(), std::move(edges));
}

}  // namespace dcl

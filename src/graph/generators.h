// Random and structured graph generators.
//
// The experiment harnesses sweep Erdős–Rényi graphs G(n,m) across densities
// (the natural workload for sparsity-aware listing, Theorem 1.3), stochastic
// block models (community graphs whose blocks the expander decomposition
// should recover), power-law graphs (the skewed-degree stress case for the
// heavy/light machinery of Section 2.4.1), and closed-form families used as
// correctness oracles (K_n has C(n,p) cliques, bipartite graphs have none).
#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace dcl {

/// G(n, m): exactly m distinct edges, uniform over all edge sets.
/// Throws if m exceeds C(n,2).
Graph erdos_renyi_gnm(NodeId n, EdgeId m, Rng& rng);

/// G(n, p): each edge present independently with probability p.
Graph erdos_renyi_gnp(NodeId n, double p, Rng& rng);

/// G(n, p) noise plus a clique planted on a uniformly random vertex subset.
struct PlantedClique {
  Graph graph;
  std::vector<NodeId> clique_nodes;  ///< sorted members of the planted clique
};
PlantedClique planted_clique(NodeId n, NodeId clique_size, double noise_p,
                             Rng& rng);

/// Stochastic block model: nodes are split into consecutive blocks of the
/// given sizes; intra-block edges appear with probability `p_in`, cross-block
/// with `p_out`.
Graph stochastic_block_model(const std::vector<NodeId>& block_sizes,
                             double p_in, double p_out, Rng& rng);

/// Chung–Lu power-law graph: expected degree of node i proportional to
/// (i+1)^{-1/(exponent-1)}, scaled so the expected average degree is
/// `target_avg_degree`. Typical social-network exponent: 2.5.
Graph power_law_chung_lu(NodeId n, double exponent, double target_avg_degree,
                         Rng& rng);

/// Random d-regular graph via the configuration model with rejection
/// (restart on self-loop/duplicate). Requires n*d even and d < n.
Graph random_regular(NodeId n, NodeId d, Rng& rng);

Graph complete_graph(NodeId n);
Graph complete_bipartite(NodeId a, NodeId b);
Graph star_graph(NodeId n);   ///< node 0 is the hub
Graph path_graph(NodeId n);
Graph cycle_graph(NodeId n);
Graph empty_graph(NodeId n);

/// Disjoint union (node ids of `b` shifted by a.node_count()).
Graph disjoint_union(const Graph& a, const Graph& b);

}  // namespace dcl

#include "core/broadcast_listing.h"

#include <algorithm>
#include <stdexcept>

#include "enumeration/clique_enumeration.h"

namespace dcl {

BroadcastListingStats broadcast_listing(const BroadcastListingArgs& args,
                                        RoundLedger& ledger,
                                        ListingOutput& out) {
  const Graph& base = *args.base;
  if (args.mode == BroadcastMode::out_edges && args.away == nullptr) {
    throw std::invalid_argument("broadcast_listing: out_edges needs away bits");
  }
  const auto is_current = [&](EdgeId e) {
    return args.current == nullptr || (*args.current)[e];
  };

  // Per-node current degree and out-degree.
  std::vector<std::int64_t> deg(static_cast<std::size_t>(base.node_count()),
                                0);
  std::vector<std::int64_t> outdeg(static_cast<std::size_t>(base.node_count()),
                                   0);
  std::int64_t current_edges = 0;
  for (EdgeId e = 0; e < base.edge_count(); ++e) {
    if (!is_current(e)) continue;
    ++current_edges;
    const Edge& ed = base.edge(e);
    ++deg[static_cast<std::size_t>(ed.u)];
    ++deg[static_cast<std::size_t>(ed.v)];
    if (args.mode == BroadcastMode::out_edges) {
      const NodeId tail = (*args.away)[e] ? ed.u : ed.v;
      ++outdeg[static_cast<std::size_t>(tail)];
    }
  }

  // Exact exchange cost: on directed current edge (u→v) node u sends its
  // list (out-edges or whole neighborhood), so the congestion is the list
  // length; the phase costs the max, and Σ list lengths messages.
  BroadcastListingStats stats;
  const auto& load_of =
      (args.mode == BroadcastMode::out_edges) ? outdeg : deg;
  for (EdgeId e = 0; e < base.edge_count(); ++e) {
    if (!is_current(e)) continue;
    const Edge& ed = base.edge(e);
    stats.rounds = std::max({stats.rounds,
                             load_of[static_cast<std::size_t>(ed.u)],
                             load_of[static_cast<std::size_t>(ed.v)]});
    stats.messages +=
        static_cast<std::uint64_t>(load_of[static_cast<std::size_t>(ed.u)] +
                                   load_of[static_cast<std::size_t>(ed.v)]);
  }
  if (current_edges > 0) {
    ledger.charge_exchange(args.label, static_cast<double>(stats.rounds),
                           stats.messages);
  }

  // Equivalent local listing: every Kp of the current graph is known to all
  // its members; report once with the minimum-id member as reporter.
  std::vector<Edge> edges;
  std::vector<EdgeId> kept_ids;
  edges.reserve(static_cast<std::size_t>(current_edges));
  kept_ids.reserve(static_cast<std::size_t>(current_edges));
  for (EdgeId e = 0; e < base.edge_count(); ++e) {
    if (!is_current(e)) continue;
    edges.push_back(base.edge(e));
    kept_ids.push_back(e);
  }
  const Graph current_graph =
      Graph::from_edges(base.node_count(), std::move(edges));
  const auto cliques = list_k_cliques(current_graph, args.p);
  for (const auto& clique : cliques) {
    if (args.require_edge != nullptr) {
      bool ok = false;
      for (std::size_t x = 0; x < clique.size() && !ok; ++x) {
        for (std::size_t y = x + 1; y < clique.size() && !ok; ++y) {
          const auto eid = base.edge_id(clique[x], clique[y]);
          if (eid && (*args.require_edge)[*eid]) {
            ok = true;
          }
        }
      }
      if (!ok) continue;
    }
    const NodeId reporter = *std::min_element(clique.begin(), clique.end());
    out.report(reporter, clique);
    ++stats.cliques_reported;
  }
  return stats;
}

}  // namespace dcl

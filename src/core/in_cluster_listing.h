// The sparsity-aware in-cluster Kp lister of Section 2.4.3.
//
// Input: one n^δ-cluster C (k nodes, re-identified 0..k-1 per Lemma 2.5)
// whose nodes collectively hold every edge that can participate in a Kp
// with a goal edge of C. The edges have already been reshuffled so that the
// node with new ID i holds exactly the known edges whose tail falls in its
// responsibility range (Section 2.4.3, "Reshuffling the edges").
//
// This routine then
//  1. draws the random partition V → [q] with q = floor(k^{1/p}) parts
//     (every cluster node picks the parts of the O(n/k) original nodes it
//     is responsible for — we draw them from the cluster's seeded RNG);
//  2. assigns node i the p parts given by the base-q digits of i
//     (the k^{1/p}-radix representation of its new ID);
//  3. delivers every held edge to every cluster node whose part multiset
//     contains both endpoint parts, computing the exact per-node send and
//     receive loads that Theorem 2.4 routing would charge;
//  4. has every node enumerate the Kp instances inside its received edge
//     set and report those containing at least one goal edge of C.
//
// Cost model: the returned loads feed a ParallelRoutingCharge in the
// caller; `InClusterChargeMode::worst_case` replaces the measured loads by
// the oblivious O(p² (n/q)²) potential-pair budget that a non-sparsity-
// aware algorithm must schedule for (ablation E7b).
//
// Execution note (docs/PERFORMANCE.md "Cluster-parallel listing"): step 4
// compiles each part-pair bucket once into an interned CSR fragment and
// assembles every representative's local graph by a linear fragment merge
// (identical-multiset representatives still enumerate once). The routine
// is safe to call concurrently for DISTINCT clusters from worker threads —
// its only shared state is per-thread (thread_local interning buffers) —
// which is exactly how arb_list's sharded per-cluster tail drives it; the
// caller supplies a pre-split per-cluster Rng so results never depend on
// scheduling.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/listing_types.h"
#include "expander/decomposition.h"
#include "graph/edge_mask.h"
#include "graph/graph.h"

namespace dcl {

/// A directed known edge: `tail` is the endpoint the edge is oriented away
/// from (the reshuffle/grouping key), `head` the other endpoint.
struct KnownEdge {
  NodeId tail = -1;
  NodeId head = -1;
  friend bool operator==(const KnownEdge&, const KnownEdge&) = default;
  friend auto operator<=>(const KnownEdge&, const KnownEdge&) = default;
};

struct InClusterProblem {
  const Graph* base = nullptr;      ///< the ambient n-node graph
  const Cluster* cluster = nullptr;
  /// Known edges per holder (indexed by new cluster ID); already grouped by
  /// responsibility range and deduplicated.
  const std::vector<std::vector<KnownEdge>>* edges_by_holder = nullptr;
  /// Per base-edge-id goal flag (the Êm edges of this ARB-LIST call).
  const EdgeMask* goal_edge = nullptr;
  int p = 4;
  InClusterChargeMode charge_mode = InClusterChargeMode::measured;
};

struct InClusterCost {
  std::int64_t max_send = 0;     ///< max messages sent by one cluster node
  std::int64_t max_recv = 0;     ///< max messages received by one node
  std::uint64_t messages = 0;    ///< total edge copies delivered
  std::int64_t parts = 0;        ///< q, the number of partition parts
  std::uint64_t cliques_reported = 0;
};

/// Runs the listing step; reports cliques into `out` (reporter = the global
/// id of the cluster node that lists the clique) and returns the loads.
InClusterCost in_cluster_list(const InClusterProblem& problem, Rng& rng,
                              ListingOutput& out);

}  // namespace dcl

// The sparsity-aware in-cluster Kp lister of Section 2.4.3.
//
// Input: one n^δ-cluster C (k nodes, re-identified 0..k-1 per Lemma 2.5)
// whose nodes collectively hold every edge that can participate in a Kp
// with a goal edge of C. The edges have already been reshuffled so that the
// node with new ID i holds exactly the known edges whose tail falls in its
// responsibility range (Section 2.4.3, "Reshuffling the edges").
//
// This routine then
//  1. draws the random partition V → [q] with q = floor(k^{1/p}) parts
//     (every cluster node picks the parts of the O(n/k) original nodes it
//     is responsible for — we draw them from the cluster's seeded RNG);
//  2. assigns node i the p parts given by the base-q digits of i
//     (the k^{1/p}-radix representation of its new ID);
//  3. delivers every held edge to every cluster node whose part multiset
//     contains both endpoint parts, computing the exact per-node send and
//     receive loads that Theorem 2.4 routing would charge;
//  4. has every node enumerate the Kp instances inside its received edge
//     set and report those containing at least one goal edge of C.
//
// Cost model: the returned loads feed a ParallelRoutingCharge in the
// caller; `InClusterChargeMode::worst_case` replaces the measured loads by
// the oblivious O(p² (n/q)²) potential-pair budget that a non-sparsity-
// aware algorithm must schedule for (ablation E7b).
//
// Execution note (docs/PERFORMANCE.md "Cluster-parallel listing"): the
// routine is split into a *plan* half (steps 1-3.5: partition, buckets,
// interned CSR fragments, representative roster, and ALL load accounting)
// and an *enumerate* half (step 4: per-representative local-graph assembly
// and listing), so arb_list can shard the enumeration *inside* a cluster by
// representative ranges without touching the ledger — the charges are a
// pure function of the plan. `in_cluster_plan` is safe to call concurrently
// for DISTINCT clusters (its only shared state is a thread_local interning
// buffer); `in_cluster_enumerate` is read-only on the plan and safe for
// concurrent disjoint ranges of the SAME plan. The caller supplies a
// pre-split per-cluster Rng so results never depend on scheduling.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/listing_types.h"
#include "expander/decomposition.h"
#include "graph/edge_mask.h"
#include "graph/graph.h"

namespace dcl {

/// A directed known edge: `tail` is the endpoint the edge is oriented away
/// from (the reshuffle/grouping key), `head` the other endpoint.
struct KnownEdge {
  NodeId tail = -1;
  NodeId head = -1;
  friend bool operator==(const KnownEdge&, const KnownEdge&) = default;
  friend auto operator<=>(const KnownEdge&, const KnownEdge&) = default;
};

struct InClusterProblem {
  const Graph* base = nullptr;      ///< the ambient n-node graph
  const Cluster* cluster = nullptr;
  /// Known edges per holder (indexed by new cluster ID); already grouped by
  /// responsibility range and deduplicated.
  const std::vector<std::vector<KnownEdge>>* edges_by_holder = nullptr;
  /// Per base-edge-id goal flag (the Êm edges of this ARB-LIST call).
  const EdgeMask* goal_edge = nullptr;
  int p = 4;
  InClusterChargeMode charge_mode = InClusterChargeMode::measured;
};

struct InClusterCost {
  std::int64_t max_send = 0;     ///< max messages sent by one cluster node
  std::int64_t max_recv = 0;     ///< max messages received by one node
  std::uint64_t messages = 0;    ///< total edge copies delivered
  std::int64_t parts = 0;        ///< q, the number of partition parts
  std::uint64_t cliques_reported = 0;
};

/// The compiled, enumeration-ready form of one cluster's listing problem —
/// the plan half of the plan/enumerate split. Holds everything steps 1-3.5
/// produce (partition, interned compact ids, part-pair CSR fragments, the
/// surviving representatives with their per-representative work estimates)
/// plus the full load accounting, which is a pure function of the plan: the
/// ledger charges never depend on how the enumeration half is sharded.
///
/// The plan owns all of its data (no thread_local leakage), so
/// `in_cluster_enumerate` may run on any thread, at any later time, and
/// concurrently for disjoint representative ranges of the SAME plan — the
/// enumeration half only reads it.
struct InClusterPlan {
  /// One compiled part-pair bucket: the deduplicated edges whose endpoint
  /// parts are {a, b}, in compact node ids, stored as a CSR grouped by the
  /// lower endpoint (rows are dense over part a's compact range). Compiled
  /// once; every representative covering {a, b} assembles its local graph
  /// by walking these rows.
  struct Fragment {
    /// Row offsets index into `nbr` — edge-scale in the q=1 one-fragment
    /// regime (a fragment can hold every known edge of the cluster), so
    /// 64-bit like every other edge-position type.
    std::vector<std::uint64_t> off;  ///< lower-part-range row offsets (+1)
    std::vector<NodeId> nbr;         ///< higher endpoints, ascending per row
    std::vector<std::uint8_t> goal;  ///< goal flag, aligned with `nbr`
    std::int64_t goal_count = 0;

    std::int64_t edge_count() const {
      return static_cast<std::int64_t>(nbr.size());
    }
  };

  /// A covered fragment of one representative, in ascending (a, b) part
  /// order — the order the local-graph assembly concatenates rows in.
  struct FragRef {
    int lower_part = 0;
    std::uint32_t frag = 0;  ///< index into `fragments`
  };

  /// One representative that survived the skip filters (enough edges for a
  /// Kp, at least one goal edge). Representatives below the thresholds are
  /// excluded at plan time — they cannot report anything.
  struct Rep {
    NodeId node = -1;        ///< cluster-local index of the representative
    std::int64_t edges = 0;  ///< local-graph edge count (fragments summed)
    bool all_goal = false;   ///< every received edge is a goal edge
    /// Out-degree² estimate of the representative's enumeration cost:
    /// Σ over local-graph sources u of (deg⁺(u))², accumulated in 64 bits —
    /// a single 70 000-degree hub already overflows 32 (70 000² ≈ 4.9e9).
    std::uint64_t est_work = 0;
    /// `frag_refs` positions: bounded by reps × covered pairs, which scales
    /// with k·p² — 64-bit so a million-node cluster roster cannot wrap.
    std::uint64_t frag_begin = 0;  ///< range into `frag_refs`
    std::uint64_t frag_end = 0;
  };

  const Cluster* cluster = nullptr;  ///< for reporter ids (global node ids)
  int p = 4;
  int q = 1;
  NodeId compact_n = 0;
  /// Loads + parts; `cliques_reported` stays 0 here (it is an enumeration
  /// output, accumulated by the `in_cluster_enumerate` return values).
  InClusterCost cost;
  std::vector<NodeId> compact_to_global;
  std::vector<NodeId> part_begin;  ///< compact range of each part, q+1 fences
  std::vector<Fragment> fragments;
  std::vector<FragRef> frag_refs;
  std::vector<Rep> reps;
  std::uint64_t est_work_total = 0;  ///< Σ reps[i].est_work
};

/// Steps 1-3.5: partition, bucket, compile fragments, pick representatives,
/// and account every load the routing would charge. Pure with respect to
/// `rng` (one plan per cluster per pre-split Rng); safe to call concurrently
/// for DISTINCT clusters.
InClusterPlan in_cluster_plan(const InClusterProblem& problem, Rng& rng);

/// Step 4 for the representative range [rep_begin, rep_end): assembles each
/// representative's local graph from the plan's fragments, lists its Kp
/// instances, and reports the goal-containing ones into `out` (reporter =
/// the global id of the representative's cluster node). Returns the number
/// of cliques reported. Read-only on `plan`: concurrent calls over disjoint
/// ranges of the same plan are safe, and a representative's output does not
/// depend on which range contains it — any partition of [0, reps.size())
/// yields the same union of reports.
std::uint64_t in_cluster_enumerate(const InClusterPlan& plan,
                                   std::size_t rep_begin, std::size_t rep_end,
                                   ListingOutput& out);

/// Plan + enumerate everything: reports cliques into `out` and returns the
/// loads. The one-call form used by tests and single-cluster callers.
InClusterCost in_cluster_list(const InClusterProblem& problem, Rng& rng,
                              ListingOutput& out);

}  // namespace dcl

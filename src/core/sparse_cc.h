// Sparsity-aware Kp listing in the CONGESTED CLIQUE (Theorem 1.3).
//
// The byproduct algorithm of Section 4: Θ̃(1 + m/n^{1+2/p}) rounds for every
// p ≥ 3. It is the Section 2.4.3 in-cluster lister applied to the whole
// clique network:
//  * the vertex set is randomly partitioned into q = floor(n^{1/p}) parts
//    (each node draws and announces its own part);
//  * node i is assigned the p parts given by the base-q digits of i
//    (n^{1/p}-radix representation) and learns every edge between them;
//  * edges are delivered by their tails (an arboricity-witness degeneracy
//    orientation, so every edge has exactly one sender) to every node whose
//    part multiset covers the edge's part pair;
//  * load balance is Lemma 2.7: with high probability each part pair holds
//    O(m/n^{2/p}) edges, so by Lenzen routing each node receives
//    O(p²·m/n^{2/p}) messages = O(p²·m/n^{1+2/p} + 1) rounds.
//
// Fake-edge padding (Section 4): when m/n^{1/p} < pad_factor·n·log n the
// paper pads with marked fake edges so Lemma 2.7's conditions hold; padding
// only matters in the regime where the round count is Õ(1) anyway. The
// paper's factor is 20; that padds every laptop-scale instance, so the knob
// defaults to 0 (off) and the mechanism is exercised separately in tests
// (DESIGN.md §4 on asymptotic constants).
#pragma once

#include <cstdint>

#include "congest/clique_network.h"
#include "core/listing_types.h"
#include "graph/graph.h"

namespace dcl {

struct SparseCcConfig {
  int p = 3;
  std::uint64_t seed = 1;
  /// Fake-edge padding factor (paper: 20); <= 0 disables padding.
  double pad_factor = 0.0;
  CliqueRoutingMode routing = CliqueRoutingMode::lenzen;
  /// When false, skip the per-node local enumeration and only compute the
  /// communication loads / round costs. Used by density sweeps whose dense
  /// end would materialize millions of cliques; correctness is covered by
  /// the test suite at listing-enabled sizes.
  bool perform_listing = true;
  /// Optional fault plan (congest/fault_plan.h). The clique phases are
  /// accounting-level, so recoverable faults surface as charged retry
  /// entries and budget-exhausted losses as charged resends — the listed
  /// cliques are unchanged. Not owned; nullptr = fault-free.
  FaultPlan* faults = nullptr;
};

struct SparseCcResult {
  RoundLedger ledger;
  std::uint64_t unique_cliques = 0;
  std::uint64_t total_reports = 0;
  std::int64_t parts = 0;
  std::int64_t fake_edges = 0;
  std::int64_t max_pair_bucket = 0;  ///< Lemma 2.7 quantity (real+fake)
  std::int64_t max_recv_load = 0;
  /// Messages whose retry budget was exhausted (escalated to resends).
  std::uint64_t lost_messages = 0;
  double total_rounds() const { return ledger.total_rounds(); }
};

/// Lists every Kp of `g` in the simulated CONGESTED CLIQUE; node outputs go
/// to `out` (union over nodes = all Kp instances).
SparseCcResult sparse_cc_list(const Graph& g, const SparseCcConfig& cfg,
                              ListingOutput& out);

}  // namespace dcl

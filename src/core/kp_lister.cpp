#include "core/kp_lister.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/telemetry.h"
#include "core/arb_list.h"
#include "core/broadcast_listing.h"
#include "graph/orientation.h"

namespace dcl {

namespace {

/// Max out-degree of the current logical edge set under `away`.
std::int64_t measured_out_degree_bound(const Graph& base,
                                       const EdgeMask& current,
                                       const EdgeMask& away) {
  std::vector<std::int64_t> outdeg(static_cast<std::size_t>(base.node_count()),
                                   0);
  current.for_each_set([&](EdgeId e) {
    const Edge& ed = base.edge(e);
    ++outdeg[static_cast<std::size_t>(away[e] ? ed.u : ed.v)];
  });
  std::int64_t best = 0;
  for (const auto d : outdeg) best = std::max(best, d);
  return best;
}

/// Procedure LIST (Theorem 2.8): iterates ARB-LIST on the edges of
/// `current` until Er is empty. On return `current` holds the surviving
/// low-arboricity edge set Ẽs (with `away` updated), and every Kp with an
/// edge in the removed set has been listed.
struct ListOutcome {
  int arb_iterations = 0;
  bool used_fallback = false;
};

ListOutcome run_list_procedure(const Graph& base, const KpConfig& cfg,
                               Rng& rng, RoundLedger& ledger,
                               ListingOutput& out, EdgeMask& current,
                               EdgeMask& away,
                               std::int64_t arboricity_bound,
                               std::int64_t cluster_degree, int list_iteration,
                               std::vector<ArbIterationTrace>& arb_traces,
                               FaultSession* faults, bool* crash_degraded) {
  ListOutcome outcome;
  EdgeMask es(base.edge_count());
  EdgeMask er = current;  // Er starts as the whole edge set (§2.3)

  for (int iter = 0; iter < cfg.max_arb_iterations; ++iter) {
    if (er.none()) break;
    // Telemetry span per ARB-LIST iteration; coordinates come from the run
    // ledger's cumulative totals, so they are identical at any DCL_THREADS.
    SpanGuard arb_span(active_telemetry(), "arb-iteration", "core");
    ArbListContext ctx;
    ctx.base = &base;
    ctx.ledger = &ledger;
    ctx.cfg = &cfg;
    ctx.rng = &rng;
    ctx.out = &out;
    ctx.es_mask = &es;
    ctx.er_mask = &er;
    ctx.away = &away;
    ctx.cluster_degree = cluster_degree;
    ctx.arboricity_bound = arboricity_bound;
    ctx.faults = faults;
    ctx.crash_degraded = crash_degraded;
    const double rounds_before = ledger.total_rounds();
    ArbIterationTrace trace = arb_list(ctx);
    trace.list_iteration = list_iteration;
    trace.arb_iteration = iter;
    trace.rounds = ledger.total_rounds() - rounds_before;
    arb_span.sync_to(ledger.total_rounds(), ledger.total_messages());
    arb_traces.push_back(trace);
    ++outcome.arb_iterations;

    if (trace.er_after >= trace.er_before) {
      // No progress (e.g. the decomposition produced only clusters of bad
      // edges on a pathological instance). Fall back to broadcast listing
      // of everything still touching Er — correct, with an honestly charged
      // O(A) cost — and finish this LIST call.
      const EdgeMask cur_all = es | er;
      BroadcastListingArgs args;
      args.base = &base;
      args.current = &cur_all;
      args.away = &away;
      args.p = cfg.p;
      args.mode = BroadcastMode::out_edges;
      args.require_edge = &er;
      args.label = "list-fallback-broadcast";
      const auto stats = broadcast_listing(args, ledger, out);
      if (faults != nullptr) {
        faults->inject(ledger, "list-fallback-broadcast", stats.messages);
      }
      arb_span.sync_to(ledger.total_rounds(), ledger.total_messages());
      if (TraceCollector* telemetry = arb_span.collector()) {
        telemetry->instant("list-fallback-broadcast", "core");
        telemetry->metrics().counter_add("list.fallbacks", 1);
      }
      er.fill(false);
      outcome.used_fallback = true;
      log_warn() << "LIST fallback broadcast used at list iteration "
                 << list_iteration;
      break;
    }
  }
  // Anything still in Er after the iteration cap is handled by the same
  // fallback (should not happen with the 1/4 decay; the cap is a backstop).
  if (er.any()) {
    const EdgeMask cur_all = es | er;
    BroadcastListingArgs args;
    args.base = &base;
    args.current = &cur_all;
    args.away = &away;
    args.p = cfg.p;
    args.mode = BroadcastMode::out_edges;
    args.require_edge = &er;
    args.label = "list-fallback-broadcast";
    const auto stats = broadcast_listing(args, ledger, out);
    if (faults != nullptr) {
      faults->inject(ledger, "list-fallback-broadcast", stats.messages);
    }
    if (TraceCollector* telemetry = active_telemetry()) {
      telemetry->sync_to(ledger.total_rounds(), ledger.total_messages());
      telemetry->instant("list-fallback-broadcast", "core");
      telemetry->metrics().counter_add("list.fallbacks", 1);
    }
    outcome.used_fallback = true;
  }
  current = std::move(es);
  return outcome;
}

}  // namespace

KpListResult list_kp_collect(const Graph& g, const KpConfig& cfg,
                             ListingOutput& out) {
  if (cfg.p < 3) throw std::invalid_argument("list_kp: p must be >= 3");
  if (cfg.k4_fast && cfg.p != 4) {
    throw std::invalid_argument("list_kp: k4_fast requires p == 4");
  }
  KpListResult result;
  const NodeId n = g.node_count();
  if (n == 0 || g.edge_count() == 0) return result;

  TraceCollector* const telemetry = active_telemetry();
  SpanGuard run_span(telemetry, "list-kp", "core");

  // Fault plane: one session per run threads the logical phase clock, the
  // detected-crash set, and the loss tally through the whole pipeline.
  FaultSession session;
  session.plan = cfg.faults;
  FaultSession* const faults = session.active() ? &session : nullptr;
  bool crash_degraded = false;

  Rng rng(cfg.seed);
  // Initial arboricity witness: the degeneracy orientation.
  const Orientation orient = degeneracy_orientation(g);
  EdgeMask away(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    away.set(e, orient.away_from_lower(e));
  }
  EdgeMask current(g.edge_count(), true);
  std::int64_t arboricity_bound =
      std::max<std::int64_t>(1, orient.max_out_degree());

  const double stop_exp =
      (cfg.stop_exponent_override > 0)
          ? cfg.stop_exponent_override
          : (cfg.k4_fast
                 ? 2.0 / 3.0
                 : std::max(0.75, static_cast<double>(cfg.p) /
                                      static_cast<double>(cfg.p + 2)));
  const std::int64_t log_n =
      std::max<std::int64_t>(1, ceil_log2(static_cast<std::uint64_t>(n)));
  const std::int64_t stop_bound = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(cfg.stop_scale *
                                   static_cast<double>(floor_pow(n, stop_exp))));

  int list_iteration = 0;
  while (arboricity_bound > stop_bound && current.any() &&
         list_iteration < 64) {
    SpanGuard iter_span(telemetry, "list-iteration", "core");
    ListIterationTrace trace;
    trace.list_iteration = list_iteration;
    trace.arboricity_bound_before = arboricity_bound;
    trace.edges_before = current.count();
    // Coupling of Section 2.2: n^δ = A / (coupling_scale · log n).
    const std::int64_t cluster_degree = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(arboricity_bound) /
               (cfg.coupling_scale * static_cast<double>(log_n))));
    trace.cluster_degree = cluster_degree;
    const double rounds_before = result.ledger.total_rounds();

    run_list_procedure(g, cfg, rng, result.ledger, out, current, away,
                       arboricity_bound, cluster_degree, list_iteration,
                       result.arb_traces, faults, &crash_degraded);

    const std::int64_t new_bound =
        std::max<std::int64_t>(1, measured_out_degree_bound(g, current, away));
    trace.arboricity_bound_after = new_bound;
    trace.edges_after = current.count();
    trace.rounds = result.ledger.total_rounds() - rounds_before;
    iter_span.sync_to(result.ledger.total_rounds(),
                      result.ledger.total_messages());
    if (telemetry != nullptr) {
      telemetry->metrics().counter_add("list.iterations", 1);
    }
    result.list_traces.push_back(trace);
    ++list_iteration;
    if (new_bound >= arboricity_bound) break;  // no progress; final stage
    arboricity_bound = new_bound;
  }

  // Final stage (§2.2): broadcast outgoing edges, list everything left.
  // Crash sweep first: a node that died since the last ARB-LIST boundary
  // cannot take part in the broadcast, and its edges left the survivor
  // contract.
  if (faults != nullptr) {
    const auto newly = faults->detect_crashes(n);
    faults->charge_crash_timeout(result.ledger, newly.size());
    if (faults->dead_count() > 0) {
      std::vector<EdgeId> doomed;
      current.for_each_set([&](EdgeId e) {
        const Edge& ed = g.edge(e);
        if (faults->is_dead(ed.u) || faults->is_dead(ed.v)) {
          doomed.push_back(e);
        }
      });
      for (const EdgeId e : doomed) current.set(e, false);
    }
  }
  {
    SpanGuard final_span(telemetry, "final-broadcast", "core");
    BroadcastListingArgs args;
    args.base = &g;
    args.current = &current;
    args.away = &away;
    args.p = cfg.p;
    args.mode = BroadcastMode::out_edges;
    args.label = "final-broadcast";
    const auto final_stats = broadcast_listing(args, result.ledger, out);
    if (faults != nullptr) {
      faults->inject(result.ledger, "final-broadcast", final_stats.messages);
    }
    final_span.sync_to(result.ledger.total_rounds(),
                       result.ledger.total_messages());
  }

  result.unique_cliques = out.unique_count();
  result.total_reports = out.total_reports();
  result.duplication_factor = out.duplication_factor();
  result.lost_messages = result.ledger.lost_messages();
  result.crash_degraded = crash_degraded;
  if (faults != nullptr) {
    for (NodeId v = 0; v < n; ++v) {
      if (faults->is_dead(v)) result.crashed_nodes.push_back(v);
    }
  }
  if (telemetry != nullptr) {
    run_span.sync_to(result.ledger.total_rounds(),
                     result.ledger.total_messages());
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("list.arb_iterations", result.arb_traces.size());
    metrics.gauge_set("list.unique_cliques",
                      static_cast<std::int64_t>(result.unique_cliques));
    metrics.gauge_set("list.total_reports",
                      static_cast<std::int64_t>(result.total_reports));
    metrics.gauge_set("list.crashed_nodes",
                      static_cast<std::int64_t>(result.crashed_nodes.size()));
  }
  return result;
}

KpListResult list_kp(const Graph& g, const KpConfig& cfg) {
  ListingOutput out(g.node_count());
  return list_kp_collect(g, cfg, out);
}

}  // namespace dcl

#include "core/detection.h"

#include <algorithm>

namespace dcl {

DetectionResult detect_kp(const Graph& g, const KpConfig& cfg) {
  DetectionResult result;
  ListingOutput out(g.node_count());
  const KpListResult run = list_kp_collect(g, cfg, out);
  result.rounds = run.total_rounds();
  result.found = out.unique_count() > 0;
  if (result.found) {
    result.witness = out.cliques().to_vector().front();
    std::sort(result.witness.begin(), result.witness.end());
  }
  return result;
}

CountingResult count_kp_distributed(const Graph& g, const KpConfig& cfg) {
  CountingResult result;
  ListingOutput out(g.node_count());
  const KpListResult run = list_kp_collect(g, cfg, out);
  // Canonical-reporter rule: each unique clique is counted by exactly one
  // node — its minimum-id member. (Nodes can apply this rule locally: a
  // node that listed a clique knows all its member ids. A clique may be
  // listed only by nodes that are not members — the in-cluster lister
  // assigns cliques to cluster nodes by part tuples — so the rule is
  // "minimum id among the *reporters*"; the collector already gives us the
  // deduplicated set, and any consistent local tie-break yields the same
  // global sum.)
  result.count = out.unique_count();
  // Aggregation: convergecast of per-node partial counts up a BFS tree
  // rooted at node 0 — one value per tree edge, depth ≤ n rounds; we charge
  // the tree depth (the standard O(D) bound).
  const auto [comp, count] = g.connected_components();
  (void)comp;
  std::int64_t depth = 0;
  if (g.node_count() > 0 && g.edge_count() > 0) {
    // BFS from the minimum-id node of each component; the convergecasts of
    // distinct components run in parallel, so charge the max depth.
    std::vector<int> dist(static_cast<std::size_t>(g.node_count()), -1);
    std::vector<NodeId> queue;
    queue.reserve(static_cast<std::size_t>(g.node_count()));  // never popped
    for (NodeId root = 0; root < g.node_count(); ++root) {
      if (dist[static_cast<std::size_t>(root)] != -1) continue;
      dist[static_cast<std::size_t>(root)] = 0;
      queue.push_back(root);
      std::size_t head = queue.size() - 1;
      for (; head < queue.size(); ++head) {
        const NodeId v = queue[head];
        for (const NodeId w : g.neighbors(v)) {
          if (dist[static_cast<std::size_t>(w)] == -1) {
            dist[static_cast<std::size_t>(w)] =
                dist[static_cast<std::size_t>(v)] + 1;
            depth = std::max<std::int64_t>(
                depth, dist[static_cast<std::size_t>(w)]);
            queue.push_back(w);
          }
        }
      }
    }
  }
  result.aggregation_rounds = static_cast<double>(2 * depth);  // up + down
  result.rounds = run.total_rounds() + result.aggregation_rounds;
  return result;
}

}  // namespace dcl

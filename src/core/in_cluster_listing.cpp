#include "core/in_cluster_listing.h"

#include <algorithm>
#include <stdexcept>

#include "common/intersect.h"
#include "common/math_util.h"
#include "core/part_tables.h"
#include "enumeration/clique_enumeration.h"

namespace dcl {

InClusterCost in_cluster_list(const InClusterProblem& problem, Rng& rng,
                              ListingOutput& out) {
  const Graph& base = *problem.base;
  const Cluster& cluster = *problem.cluster;
  const auto& holders = *problem.edges_by_holder;
  const int p = problem.p;
  const auto k = static_cast<NodeId>(cluster.nodes.size());
  if (holders.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument("in_cluster_list: holder count mismatch");
  }

  InClusterCost cost;
  const int q = std::max<int>(
      1, static_cast<int>(floor_pow(static_cast<std::int64_t>(k),
                                    1.0 / static_cast<double>(p))));
  cost.parts = q;

  // Step 1: random partition of the whole vertex set into q parts. (In the
  // distributed execution each cluster node draws the choices for its
  // responsibility range and broadcasts them; the broadcast is charged by
  // the caller. The draw itself is the same uniform choice.)
  std::vector<int> part(static_cast<std::size_t>(base.node_count()));
  for (auto& pt : part) {
    pt = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(q)));
  }

  // Step 2: part multisets per cluster node, and the coverage table
  // cover[(a,b)] = number of cluster nodes whose multiset covers {a,b}.
  std::vector<std::vector<int>> tuple(static_cast<std::size_t>(k));
  for (NodeId j = 0; j < k; ++j) {
    tuple[static_cast<std::size_t>(j)] = part_multiset(j, q, p);
  }
  const std::vector<std::int64_t> cover = coverage_table(tuple, q);

  // Step 3: bucket every known edge by its unordered part pair, tracking
  // exact send loads (holder sends each edge to every covering node). The
  // goal flag is resolved here, once per held edge per cluster — each
  // representative below reads it for free instead of re-deriving it with
  // base-graph edge_id binary searches (ROADMAP lever b).
  struct HeldEdge {
    KnownEdge e;
    bool goal = false;
  };
  std::vector<std::vector<HeldEdge>> bucket(static_cast<std::size_t>(q * q));
  std::vector<std::int64_t> send_load(static_cast<std::size_t>(k), 0);
  for (NodeId holder = 0; holder < k; ++holder) {
    for (const KnownEdge& e : holders[static_cast<std::size_t>(holder)]) {
      const int a = part[static_cast<std::size_t>(e.tail)];
      const int b = part[static_cast<std::size_t>(e.head)];
      const int idx = pair_index(a, b, q);
      const auto eid = base.edge_id(e.tail, e.head);
      bucket[static_cast<std::size_t>(idx)].push_back(
          HeldEdge{e, eid.has_value() && (*problem.goal_edge)[*eid]});
      send_load[static_cast<std::size_t>(holder)] +=
          cover[static_cast<std::size_t>(idx)];
    }
  }

  // Receive loads, then the per-node listing. Nodes with identical part
  // multisets receive identical edge sets and would produce identical
  // outputs, so only the first representative of each multiset enumerates
  // (a pure simulation shortcut: loads are still accounted for every node,
  // and the *union* of outputs — the correctness contract — is unchanged).
  // The representative of a multiset is its minimum cluster index, read
  // from the sorted flat table.
  const std::vector<NodeId> rep = representative_table(tuple, q);
  std::vector<std::int64_t> recv_load(static_cast<std::size_t>(k), 0);
  std::vector<HeldEdge> local_edges;
  // Dense global→compact interning table over base ids. thread_local so
  // the O(n) buffer is NOT re-allocated per cluster call (arb_list calls
  // this once per cluster): all slots are -1 between uses — each use
  // resets exactly the entries recorded in compact_to_global, including
  // across calls (the reset below walks the previous use's ids first).
  static thread_local std::vector<NodeId> global_to_compact;
  static thread_local std::vector<NodeId> compact_to_global;
  if (global_to_compact.size() < static_cast<std::size_t>(base.node_count())) {
    global_to_compact.resize(static_cast<std::size_t>(base.node_count()), -1);
  }
  for (NodeId j = 0; j < k; ++j) {
    const auto& s = tuple[static_cast<std::size_t>(j)];
    const bool is_rep = rep[static_cast<std::size_t>(j)] == j;
    local_edges.clear();
    for (int a = 0; a < q; ++a) {
      for (int b = a; b < q; ++b) {
        if (!multiset_covers(s, a, b)) continue;
        const auto& bkt = bucket[static_cast<std::size_t>(pair_index(a, b, q))];
        recv_load[static_cast<std::size_t>(j)] +=
            static_cast<std::int64_t>(bkt.size());
        if (is_rep) {
          local_edges.insert(local_edges.end(), bkt.begin(), bkt.end());
        }
      }
    }
    if (!is_rep || static_cast<int>(local_edges.size()) < p * (p - 1) / 2) {
      continue;
    }
    // Step 4: local Kp enumeration on the received edges.
    for (const NodeId g : compact_to_global) {
      global_to_compact[static_cast<std::size_t>(g)] = -1;
    }
    compact_to_global.clear();
    std::vector<Edge> edges;
    edges.reserve(local_edges.size());
    auto intern = [&](NodeId g) {
      NodeId& slot = global_to_compact[static_cast<std::size_t>(g)];
      if (slot < 0) {
        slot = static_cast<NodeId>(compact_to_global.size());
        compact_to_global.push_back(g);
      }
      return slot;
    };
    std::size_t goal_count = 0;
    for (const HeldEdge& he : local_edges) {
      edges.push_back(make_edge(intern(he.e.tail), intern(he.e.head)));
      goal_count += static_cast<std::size_t>(he.goal);
    }
    // A representative that received no goal edge can skip its enumeration
    // entirely: nothing it lists could be reported.
    if (goal_count == 0) continue;
    // When *every* received edge is a goal edge (the common dense-goal
    // case), every listed clique trivially qualifies — no bitmap, no
    // per-clique checks.
    const bool all_goal = goal_count == local_edges.size();
    // The bitmap build below needs the pre-sort pair order (from_edges
    // moves and sorts `edges`); only the mixed-goal case reads it.
    std::vector<Edge> local_pairs;
    if (!all_goal) local_pairs = edges;
    const Graph local = Graph::from_edges(
        static_cast<NodeId>(compact_to_global.size()), std::move(edges));
    // Goal bitmap over *local* edge ids: the flags resolved at bucket time
    // land on local ids with one local (small, cache-hot) edge_id lookup
    // per received edge, so the per-clique goal checks below never touch
    // the base graph — up to p(p-1)/2 base-graph binary searches per
    // listed clique in the old scheme (every clique pair is a local edge
    // by construction, so the local mask answers the same question).
    EdgeMask local_goal;
    if (!all_goal) {
      local_goal.assign(local.edge_count(), false);
      for (std::size_t i = 0; i < local_edges.size(); ++i) {
        if (!local_edges[i].goal) continue;
        local_goal.set(*local.edge_id(local_pairs[i].u, local_pairs[i].v));
      }
    }
    const auto cliques = list_k_cliques(local, p);
    // Reserve hint: the dedup table absorbs this enumeration without a
    // growth rehash (duplication-discounted inside reserve_additional).
    out.reserve_additional(cliques.size());
    std::vector<NodeId> global(static_cast<std::size_t>(p));
    for (const auto& c : cliques) {
      // Report only cliques containing at least one goal edge of C — the
      // task assigned to this cluster (others are other iterations' work).
      bool has_goal = all_goal;
      for (std::size_t x = 0; x < c.size() && !has_goal; ++x) {
        for (std::size_t y = x + 1; y < c.size() && !has_goal; ++y) {
          const auto leid = local.edge_id(c[x], c[y]);
          has_goal = local_goal[*leid];
        }
      }
      if (!has_goal) continue;
      for (std::size_t i = 0; i < c.size(); ++i) {
        global[i] = compact_to_global[static_cast<std::size_t>(c[i])];
      }
      out.report(cluster.nodes[static_cast<std::size_t>(j)], global);
      ++cost.cliques_reported;
    }
  }

  for (NodeId j = 0; j < k; ++j) {
    cost.max_send =
        std::max(cost.max_send, send_load[static_cast<std::size_t>(j)]);
    cost.max_recv =
        std::max(cost.max_recv, recv_load[static_cast<std::size_t>(j)]);
    cost.messages += static_cast<std::uint64_t>(
        recv_load[static_cast<std::size_t>(j)]);
  }

  if (problem.charge_mode == InClusterChargeMode::worst_case) {
    // Oblivious schedule: every node must budget p² slots of (n/q)²
    // potential pairs regardless of how many edges actually exist.
    const std::int64_t part_size =
        ceil_div(static_cast<std::int64_t>(base.node_count()), q);
    const std::int64_t budget = static_cast<std::int64_t>(p) * p * part_size *
                                part_size / 2;
    cost.max_send = std::max(cost.max_send, budget);
    cost.max_recv = std::max(cost.max_recv, budget);
  }
  return cost;
}

}  // namespace dcl

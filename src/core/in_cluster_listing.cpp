#include "core/in_cluster_listing.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/intersect.h"
#include "common/math_util.h"
#include "core/part_tables.h"
#include "enumeration/clique_enumeration.h"

namespace dcl {

InClusterPlan in_cluster_plan(const InClusterProblem& problem, Rng& rng) {
  const Graph& base = *problem.base;
  const Cluster& cluster = *problem.cluster;
  const auto& holders = *problem.edges_by_holder;
  const int p = problem.p;
  const auto k = to_node(cluster.nodes.size());
  if (holders.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument("in_cluster_plan: holder count mismatch");
  }

  InClusterPlan plan;
  plan.cluster = &cluster;
  plan.p = p;
  const int q = std::max<int>(
      1, static_cast<int>(floor_pow(static_cast<std::int64_t>(k),
                                    1.0 / static_cast<double>(p))));
  plan.q = q;
  plan.cost.parts = q;

  // Step 1: random partition of the whole vertex set into q parts. (In the
  // distributed execution each cluster node draws the choices for its
  // responsibility range and broadcasts them; the broadcast is charged by
  // the caller. The draw itself is the same uniform choice.)
  std::vector<int> part(static_cast<std::size_t>(base.node_count()));
  for (auto& pt : part) {
    pt = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(q)));
  }

  // Step 2: part multisets per cluster node, and the coverage table
  // cover[(a,b)] = number of cluster nodes whose multiset covers {a,b}.
  std::vector<std::vector<int>> tuple(static_cast<std::size_t>(k));
  for (NodeId j = 0; j < k; ++j) {
    tuple[static_cast<std::size_t>(j)] = part_multiset(j, q, p);
  }
  const std::vector<std::int64_t> cover = coverage_table(tuple, q);

  // Step 3: bucket every known edge by its unordered part pair, tracking
  // exact send loads (holder sends each edge to every covering node). The
  // goal flag is resolved here, once per held edge per cluster — each
  // representative reads it for free instead of re-deriving it with
  // base-graph edge_id binary searches (ROADMAP lever b).
  struct HeldEdge {
    KnownEdge e;
    bool goal = false;
  };
  std::vector<std::vector<HeldEdge>> bucket(checked_mul64(q, q));
  std::vector<std::int64_t> send_load(static_cast<std::size_t>(k), 0);
  for (NodeId holder = 0; holder < k; ++holder) {
    for (const KnownEdge& e : holders[static_cast<std::size_t>(holder)]) {
      const int a = part[static_cast<std::size_t>(e.tail)];
      const int b = part[static_cast<std::size_t>(e.head)];
      const int idx = pair_index(a, b, q);
      const auto eid = base.edge_id(e.tail, e.head);
      bucket[static_cast<std::size_t>(idx)].push_back(
          HeldEdge{e, eid.has_value() && (*problem.goal_edge)[*eid]});
      send_load[static_cast<std::size_t>(holder)] +=
          cover[static_cast<std::size_t>(idx)];
    }
  }

  // ---- Step 3.5: compile the buckets into interned fragments. ------------
  //
  // Compact interning over base ids. The dense base-id → compact-id map is
  // thread_local so its O(n) storage is NOT re-allocated per cluster call,
  // and safe under the cluster-parallel caller: each worker thread owns its
  // own buffer. The invariant is "all `global_to_compact` slots are -1
  // between uses"; the scope guard below restores it on every exit path
  // (including exceptions) by walking the ids interned so far. The compact
  // id list itself lives in the returned plan — the plan owns all the data
  // the enumeration half reads, so enumeration may run on other threads.
  static thread_local std::vector<NodeId> global_to_compact;
  const auto needed = static_cast<std::size_t>(base.node_count());
  if (global_to_compact.size() < needed) {
    global_to_compact.resize(needed, -1);
  } else if (global_to_compact.size() > std::max<std::size_t>(4 * needed,
                                                              4096)) {
    // All slots are -1 between uses, so a fresh buffer is equivalent; drop
    // storage left over from a much larger earlier base graph.
    std::vector<NodeId>(needed, -1).swap(global_to_compact);
  }
  struct InternReset {
    std::vector<NodeId>& dense;
    const std::vector<NodeId>& ids;
    ~InternReset() {
      for (const NodeId g : ids) dense[static_cast<std::size_t>(g)] = -1;
    }
  } intern_reset{global_to_compact, plan.compact_to_global};

  // Collect the distinct endpoints of every bucket and order them by
  // (part, global id): each part's nodes then occupy one contiguous
  // compact range, so a node's part-b neighbors form one ascending id
  // block and a representative's adjacency rows come out fully sorted by
  // concatenating its covered fragments in ascending part order.
  for (const auto& bkt : bucket) {
    for (const HeldEdge& he : bkt) {
      for (const NodeId g : {he.e.tail, he.e.head}) {
        NodeId& slot = global_to_compact[static_cast<std::size_t>(g)];
        if (slot < 0) {
          slot = 0;  // seen; the real id is assigned after the sort
          plan.compact_to_global.push_back(g);
        }
      }
    }
  }
  std::sort(plan.compact_to_global.begin(), plan.compact_to_global.end(),
            [&](NodeId x, NodeId y) {
              const int px = part[static_cast<std::size_t>(x)];
              const int py = part[static_cast<std::size_t>(y)];
              return px != py ? px < py : x < y;
            });
  const auto compact_n = to_node(plan.compact_to_global.size());
  plan.compact_n = compact_n;
  for (NodeId c = 0; c < compact_n; ++c) {
    global_to_compact[static_cast<std::size_t>(
        plan.compact_to_global[static_cast<std::size_t>(c)])] = c;
  }
  plan.part_begin.assign(static_cast<std::size_t>(q) + 1, 0);
  for (NodeId c = 0; c < compact_n; ++c) {
    ++plan.part_begin[static_cast<std::size_t>(
        part[static_cast<std::size_t>(
            plan.compact_to_global[static_cast<std::size_t>(c)])]) + 1];
  }
  for (int a = 0; a < q; ++a) {
    plan.part_begin[static_cast<std::size_t>(a) + 1] +=
        plan.part_begin[static_cast<std::size_t>(a)];
  }

  // Compile each non-empty bucket once: sort its compact edge pairs, dedup
  // (goal flags merge by OR — the union of held copies), and lay the rows
  // out as a CSR over the lower part's compact range. This is the only
  // O(m log m) pass left; every representative reuses it.
  plan.fragments.resize(checked_mul64(q, q));
  {
    struct CompactEdge {
      NodeId lo, hi;
      std::uint8_t goal;
    };
    std::vector<CompactEdge> scratch;
    for (int a = 0; a < q; ++a) {
      for (int b = a; b < q; ++b) {
        const auto& bkt = bucket[static_cast<std::size_t>(pair_index(a, b, q))];
        if (bkt.empty()) continue;
        scratch.clear();
        scratch.reserve(bkt.size());
        for (const HeldEdge& he : bkt) {
          NodeId cu = global_to_compact[static_cast<std::size_t>(he.e.tail)];
          NodeId cv = global_to_compact[static_cast<std::size_t>(he.e.head)];
          if (cu > cv) std::swap(cu, cv);
          scratch.push_back(
              CompactEdge{cu, cv, static_cast<std::uint8_t>(he.goal)});
        }
        std::sort(scratch.begin(), scratch.end(),
                  [](const CompactEdge& x, const CompactEdge& y) {
                    return x.lo != y.lo ? x.lo < y.lo : x.hi < y.hi;
                  });
        InClusterPlan::Fragment& f =
            plan.fragments[static_cast<std::size_t>(pair_index(a, b, q))];
        const NodeId lo_begin = plan.part_begin[static_cast<std::size_t>(a)];
        const NodeId lo_end = plan.part_begin[static_cast<std::size_t>(a) + 1];
        f.off.assign(static_cast<std::size_t>(lo_end - lo_begin) + 1, 0);
        f.nbr.reserve(scratch.size());
        f.goal.reserve(scratch.size());
        for (std::size_t i = 0; i < scratch.size(); ++i) {
          const CompactEdge& ce = scratch[i];
          if (i > 0 && scratch[i - 1].lo == ce.lo &&
              scratch[i - 1].hi == ce.hi) {
            // Duplicate held copy of the same edge: keep one, OR the goal.
            auto& g = f.goal.back();
            f.goal_count += static_cast<std::int64_t>(ce.goal & ~g);
            g |= ce.goal;
            continue;
          }
          f.nbr.push_back(ce.hi);
          f.goal.push_back(ce.goal);
          f.goal_count += ce.goal;
          ++f.off[static_cast<std::size_t>(ce.lo - lo_begin) + 1];
        }
        for (std::size_t r = 1; r < f.off.size(); ++r) {
          f.off[r] += f.off[r - 1];
        }
      }
    }
  }

  // Receive loads, then the representative roster. Nodes with identical
  // part multisets receive identical edge sets and would produce identical
  // outputs, so only the first representative of each multiset enumerates
  // (a pure simulation shortcut: loads are still accounted for every node,
  // and the *union* of outputs — the correctness contract — is unchanged).
  // The representative of a multiset is its minimum cluster index, read
  // from the sorted flat table. Representatives that cannot report anything
  // (too few edges for a Kp, or no goal edge received) are dropped HERE, at
  // plan time, so the enumeration half's work items are all real work.
  const std::vector<NodeId> rep = representative_table(tuple, q);
  std::vector<std::int64_t> recv_load(static_cast<std::size_t>(k), 0);
  std::vector<InClusterPlan::FragRef> refs;  // current rep's covered frags
  std::vector<std::uint64_t> deg;            // row-degree scratch, per part
  for (NodeId j = 0; j < k; ++j) {
    const auto& s = tuple[static_cast<std::size_t>(j)];
    const bool is_rep = rep[static_cast<std::size_t>(j)] == j;
    std::int64_t rep_edges = 0;
    std::int64_t rep_goals = 0;
    refs.clear();
    for (int a = 0; a < q; ++a) {
      for (int b = a; b < q; ++b) {
        if (!multiset_covers(s, a, b)) continue;
        const auto idx = static_cast<std::size_t>(pair_index(a, b, q));
        recv_load[static_cast<std::size_t>(j)] +=
            static_cast<std::int64_t>(bucket[idx].size());
        if (!is_rep) continue;
        const InClusterPlan::Fragment& f = plan.fragments[idx];
        if (f.edge_count() == 0) continue;
        refs.push_back(
            InClusterPlan::FragRef{a, static_cast<std::uint32_t>(idx)});
        rep_edges += f.edge_count();
        rep_goals += f.goal_count;
      }
    }
    if (!is_rep || rep_edges < p * (p - 1) / 2 || rep_goals == 0) {
      continue;
    }
    // Out-degree² work estimate: for each local-graph source row, the row
    // degree is the sum of the covered fragments' row lengths (refs with
    // equal lower_part are consecutive — the (a, b) walk above ascends).
    // Accumulated fragment-by-fragment into a per-part degree scratch so
    // each `off` array is read in one sequential pass. 64-bit throughout:
    // one hub row alone can push the square past 2^32.
    std::uint64_t est = 0;
    for (std::size_t i = 0; i < refs.size();) {
      const int a = refs[i].lower_part;
      std::size_t fend = i;
      while (fend < refs.size() && refs[fend].lower_part == a) ++fend;
      const NodeId lo_begin = plan.part_begin[static_cast<std::size_t>(a)];
      const NodeId lo_end = plan.part_begin[static_cast<std::size_t>(a) + 1];
      const auto rows = static_cast<std::size_t>(lo_end - lo_begin);
      deg.assign(rows, 0);
      for (std::size_t fi = i; fi < fend; ++fi) {
        const auto& off = plan.fragments[refs[fi].frag].off;
        for (std::size_t row = 0; row < rows; ++row) {
          deg[row] += off[row + 1] - off[row];
        }
      }
      for (std::size_t row = 0; row < rows; ++row) {
        const auto d = static_cast<std::uint64_t>(deg[row]);
        est += d * d;
      }
      i = fend;
    }
    InClusterPlan::Rep r;
    r.node = j;
    r.edges = rep_edges;
    r.all_goal = rep_goals == rep_edges;
    r.est_work = est;
    r.frag_begin = plan.frag_refs.size();
    plan.frag_refs.insert(plan.frag_refs.end(), refs.begin(), refs.end());
    r.frag_end = plan.frag_refs.size();
    plan.est_work_total += est;
    plan.reps.push_back(r);
  }

  for (NodeId j = 0; j < k; ++j) {
    plan.cost.max_send =
        std::max(plan.cost.max_send, send_load[static_cast<std::size_t>(j)]);
    plan.cost.max_recv =
        std::max(plan.cost.max_recv, recv_load[static_cast<std::size_t>(j)]);
    plan.cost.messages += static_cast<std::uint64_t>(
        recv_load[static_cast<std::size_t>(j)]);
  }

  if (problem.charge_mode == InClusterChargeMode::worst_case) {
    // Oblivious schedule: every node must budget p² slots of (n/q)²
    // potential pairs regardless of how many edges actually exist.
    const std::int64_t part_size =
        ceil_div(static_cast<std::int64_t>(base.node_count()), q);
    const std::int64_t budget = static_cast<std::int64_t>(p) * p * part_size *
                                part_size / 2;
    plan.cost.max_send = std::max(plan.cost.max_send, budget);
    plan.cost.max_recv = std::max(plan.cost.max_recv, budget);
  }
  return plan;
}

std::uint64_t in_cluster_enumerate(const InClusterPlan& plan,
                                   std::size_t rep_begin, std::size_t rep_end,
                                   ListingOutput& out) {
  const int p = plan.p;
  std::uint64_t reported = 0;
  std::vector<Edge> edges;
  std::vector<std::uint8_t> edge_goal;
  EdgeMask local_goal;
  std::vector<NodeId> global(static_cast<std::size_t>(p));
  std::vector<const InClusterPlan::Fragment*> frags;  // current part's group
  for (std::size_t r = rep_begin; r < rep_end; ++r) {
    const InClusterPlan::Rep& rep = plan.reps[r];
    const bool all_goal = rep.all_goal;
    // Assemble the local graph by concatenating the covered fragments.
    // Compact ids ascend part-major, so walking parts in ascending order
    // and each part's range in ascending id order visits sources in
    // ascending compact order, and each source's covered rows (its own
    // part first, then higher parts) concatenate into one ascending
    // neighbor run — the emitted edge list is lexicographically sorted by
    // construction and feeds the sort-free Graph factory. Edge ids equal
    // emission positions, so the goal flags land on local ids with no
    // lookups at all.
    edges.clear();
    edges.reserve(static_cast<std::size_t>(rep.edges));
    edge_goal.clear();
    for (std::uint64_t i = rep.frag_begin; i < rep.frag_end;) {
      const int a = plan.frag_refs[i].lower_part;
      std::uint64_t fend = i;
      while (fend < rep.frag_end && plan.frag_refs[fend].lower_part == a) {
        ++fend;
      }
      const NodeId lo_begin = plan.part_begin[static_cast<std::size_t>(a)];
      const NodeId lo_end = plan.part_begin[static_cast<std::size_t>(a) + 1];
      frags.clear();
      for (std::uint64_t fi = i; fi < fend; ++fi) {
        frags.push_back(&plan.fragments[plan.frag_refs[fi].frag]);
      }
      for (NodeId u = lo_begin; u < lo_end; ++u) {
        const auto row = static_cast<std::size_t>(u - lo_begin);
        for (const InClusterPlan::Fragment* f : frags) {
          const std::uint64_t rb = f->off[row];
          const std::uint64_t re = f->off[row + 1];
          for (std::uint64_t x = rb; x < re; ++x) {
            edges.push_back(Edge{u, f->nbr[x]});
            if (!all_goal) edge_goal.push_back(f->goal[x]);
          }
        }
      }
      i = fend;
    }
    if (!all_goal) {
      local_goal.assign(static_cast<EdgeId>(edges.size()), false);
      for (std::size_t e = 0; e < edge_goal.size(); ++e) {
        if (edge_goal[e]) local_goal.set(static_cast<EdgeId>(e));
      }
    }
    const Graph local =
        Graph::from_sorted_edges(plan.compact_n, std::move(edges));
    edges = {};  // moved-from; reset for the next representative
    const auto cliques = list_k_cliques(local, p);
    // Reserve hint: the dedup table absorbs this enumeration without a
    // growth rehash (duplication-discounted inside reserve_additional).
    out.reserve_additional(cliques.size());
    for (const auto& c : cliques) {
      // Report only cliques containing at least one goal edge of C — the
      // task assigned to this cluster (others are other iterations' work).
      bool has_goal = all_goal;
      for (std::size_t x = 0; x < c.size() && !has_goal; ++x) {
        for (std::size_t y = x + 1; y < c.size() && !has_goal; ++y) {
          const auto leid = local.edge_id(c[x], c[y]);
          has_goal = local_goal[*leid];
        }
      }
      if (!has_goal) continue;
      for (std::size_t i = 0; i < c.size(); ++i) {
        global[i] = plan.compact_to_global[static_cast<std::size_t>(c[i])];
      }
      out.report(plan.cluster->nodes[static_cast<std::size_t>(rep.node)],
                 global);
      ++reported;
    }
  }
  return reported;
}

InClusterCost in_cluster_list(const InClusterProblem& problem, Rng& rng,
                              ListingOutput& out) {
  const InClusterPlan plan = in_cluster_plan(problem, rng);
  InClusterCost cost = plan.cost;
  cost.cliques_reported = in_cluster_enumerate(plan, 0, plan.reps.size(), out);
  return cost;
}

}  // namespace dcl

// Neighborhood-broadcast listing.
//
// Two uses in the paper:
//  * the final stage of Theorem 1.1: once the arboricity bound A drops to
//    the target, "every node broadcasts its outgoing edges to all its
//    neighbors in O(A) rounds ... which ends the algorithm by listing all
//    remaining Kp instances" (out-edge mode: round cost = max out-degree);
//  * the trivial prior-art baseline for p ≥ 6 (Remark 2.6 / §1): every node
//    broadcasts its full neighborhood; round cost = max degree Δ.
//
// Correctness of the local listing: after the broadcast, node v knows every
// edge {x,y} with x,y ∈ N(v) — in out-edge mode because the edge is
// outgoing from x or y, both neighbors of v; in neighborhood mode directly.
// Hence v can list every Kp containing v; the union over nodes is every Kp.
//
// The exchange is *not* materialized message-by-message (it would be
// Θ(Σ_v deg(v)·outdeg(v)) Message objects); instead the exact CONGEST cost
// — max over directed current edges (u→v) of the number of list entries u
// sends — is charged, and the equivalent post-broadcast knowledge is used
// directly for the local listing. Tests cross-check the charge against a
// materialized exchange on small graphs.
#pragma once

#include <optional>
#include <vector>

#include "congest/round_ledger.h"
#include "core/listing_types.h"
#include "graph/edge_mask.h"
#include "graph/graph.h"

namespace dcl {

enum class BroadcastMode {
  out_edges,     ///< send only the edges oriented away from the sender
  neighborhood,  ///< send the full adjacency list
};

struct BroadcastListingArgs {
  const Graph* base = nullptr;
  /// Logical current edge set (nullptr = all edges of base).
  const EdgeMask* current = nullptr;
  /// Orientation bits (away-from-lower-endpoint) — required in out_edges
  /// mode.
  const EdgeMask* away = nullptr;
  int p = 4;
  BroadcastMode mode = BroadcastMode::out_edges;
  /// When set, only cliques containing >= 1 edge with this flag are
  /// reported (the LIST fallback lists only cliques touching Er).
  const EdgeMask* require_edge = nullptr;
  const char* label = "broadcast-listing";
};

struct BroadcastListingStats {
  std::int64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t cliques_reported = 0;
};

/// Charges the exact broadcast cost to `ledger` and reports every remaining
/// clique (reporter = its minimum-id member, the standard tie-break).
BroadcastListingStats broadcast_listing(const BroadcastListingArgs& args,
                                        RoundLedger& ledger,
                                        ListingOutput& out);

}  // namespace dcl

// The CONGEST Kp-listing algorithms of Theorems 1.1 and 1.2.
//
// `list_kp` drives the full pipeline of Section 2.2:
//   * outer loop (proof of Theorem 1.1): maintain a logical graph G_k with
//     an arboricity-witness orientation of out-degree ≤ A_k; while A_k is
//     above the stopping threshold 2·log2(n)·n^{stop} (stop = max(3/4,
//     p/(p+2)), or 2/3 in k4_fast mode), run procedure LIST, which halves
//     the arboricity while listing every Kp containing a removed edge;
//   * procedure LIST (Theorem 2.8): iterate ARB-LIST with the coupled
//     cluster degree n^δ = A/(2·log2 n) until Er is empty (each call
//     shrinks |Er| geometrically and grows Es by ≤ n^δ arboricity);
//   * final stage: every node broadcasts its remaining outgoing edges to
//     its neighbors (O(A) rounds) and lists all remaining Kp locally.
//
// The returned result carries the audited round ledger, the listing
// statistics, and per-iteration traces for experiments E1/E2/E8.
//
// Correctness contract (validated by the test suite): the union of all node
// outputs equals the exact set of Kp instances of the input graph — no
// misses, no false positives.
#pragma once

#include "core/listing_types.h"
#include "graph/graph.h"

namespace dcl {

/// Runs the Theorem 1.1 algorithm (or the Theorem 1.2 K4 variant when
/// cfg.k4_fast is set) and validates nothing — pair with
/// `list_k_cliques(g, p)` for ground truth. Requires cfg.p >= 3 (p = 3
/// degenerates to a Chang-et-al-style triangle lister: no outside-edge
/// learning is needed but the pipeline is identical).
KpListResult list_kp(const Graph& g, const KpConfig& cfg);

/// Same, but also exposes the raw listing output (for validation in tests
/// and examples).
KpListResult list_kp_collect(const Graph& g, const KpConfig& cfg,
                             ListingOutput& out);

}  // namespace dcl

// Shared configuration, output collection, and result types for the
// distributed Kp-listing algorithms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "congest/fault_plan.h"
#include "congest/round_ledger.h"
#include "enumeration/clique_enumeration.h"
#include "expander/decomposition.h"
#include "graph/graph.h"

namespace dcl {

/// Collects the listing output of every node. The distributed guarantee
/// (Section 1) is that the *union* of all node outputs equals the set of Kp
/// instances; several nodes may legitimately report the same clique, so the
/// collector deduplicates and tracks the duplication factor.
class ListingOutput {
 public:
  explicit ListingOutput(NodeId n) : per_node_reports_(static_cast<std::size_t>(n), 0) {}

  /// Records that `reporter` output `clique` (any vertex order). For p ≤ 8
  /// this is allocation-free: the clique is packed straight into the flat
  /// dedup table.
  void report(NodeId reporter, std::span<const NodeId> clique) {
    const std::uint64_t reports =
        ++per_node_reports_[static_cast<std::size_t>(reporter)];
    max_reports_ = std::max(max_reports_, reports);
    ++total_reports_;
    unique_.insert(clique);
  }

  /// Assumed duplication factor on cold start: with zero observations the
  /// heavy phases still duplicate heavily (PR 4 measured the cache loss of
  /// sizing the first enumeration for raw reports), so an undiscounted
  /// cold reserve is the known-bad case. Two is deliberately conservative:
  /// it halves the cold overshoot without risking an undersized table on
  /// genuinely duplication-free workloads.
  static constexpr double kColdStartDuplication = 2.0;

  /// Adopts a duplication factor observed elsewhere (the global collector)
  /// as a floor for this buffer's reserve discount. Per-shard scratch
  /// buffers start empty, so their *local* factor lags reality by a whole
  /// enumeration; seeding them with the global factor makes their reserve
  /// hints as informed as the sequential execution's.
  void set_duplication_hint(double factor) {
    duplication_hint_ = std::max(0.0, factor);
  }

  /// Reserve hint: the caller is about to report up to `upcoming` cliques
  /// (e.g. a local enumeration whose size is known before the report
  /// loop). Pre-sizes the dedup table so those reports trigger no growth
  /// rehash. The raw count is discounted by the duplication factor
  /// observed so far: reports far exceed uniques in the heavy phases, and
  /// a table sized for reports (instead of uniques) costs cache on every
  /// subsequent probe. Cold start (no observations yet, the first heavy
  /// enumeration) is clamped to `kColdStartDuplication` instead of the
  /// undiscounted raw count; an externally supplied hint
  /// (`set_duplication_hint`) floors the discount either way.
  void reserve_additional(std::size_t upcoming) {
    double dup = std::max(duplication_factor(), duplication_hint_);
    if (dup <= 1.0) {
      dup = unique_.empty() ? kColdStartDuplication : 1.0;
    }
    if (dup > 1.0) {
      upcoming = static_cast<std::size_t>(static_cast<double>(upcoming) / dup);
    }
    unique_.reserve(unique_.size() + upcoming);
  }

  /// Folds a per-shard buffer into this collector: traffic statistics add,
  /// per-node totals add (the running maximum is recomputed from the
  /// merged totals, which is exactly where the sequential running max
  /// lands), and the clique sets union. Merging shard buffers in shard
  /// order therefore reproduces the sequential execution's counters and
  /// clique set bit-identically — the contract the cluster-parallel
  /// ARB-LIST tail relies on. `shard` must have been constructed for the
  /// same node count.
  void merge_from(const ListingOutput& shard) {
    total_reports_ += shard.total_reports_;
    for (std::size_t v = 0; v < per_node_reports_.size(); ++v) {
      if (shard.per_node_reports_[v] == 0) continue;
      per_node_reports_[v] += shard.per_node_reports_[v];
      max_reports_ = std::max(max_reports_, per_node_reports_[v]);
    }
    // Reserve the union upper bound BEFORE inserting: for_each_span hands
    // keys over in slot (≈ hash) order, and hash-ordered inserts into a
    // table that is still growing degenerate into long probe clusters —
    // measured 60x slower than the same inserts into a pre-sized table.
    // The overshoot is at most 2x of the final union (not the 10x+ of
    // report-count reserves), so the PR 4 cache trap does not apply.
    unique_.reserve(unique_.size() + shard.unique_.size());
    shard.unique_.for_each_span(
        [&](std::span<const NodeId> clique) { unique_.insert(clique); });
  }

  /// Retracts a previously reported clique (delta support for dynamic
  /// maintenance); returns true if it was present. Per-node report totals
  /// are cumulative traffic statistics and are deliberately not unwound.
  bool retract(std::span<const NodeId> clique) { return unique_.erase(clique); }

  const CliqueSet& cliques() const { return unique_; }
  std::uint64_t total_reports() const { return total_reports_; }
  std::uint64_t unique_count() const { return unique_.size(); }
  double duplication_factor() const {
    return unique_.empty() ? 0.0
                           : static_cast<double>(total_reports_) /
                                 static_cast<double>(unique_.size());
  }
  std::uint64_t reports_of(NodeId v) const {
    return per_node_reports_[static_cast<std::size_t>(v)];
  }
  /// Maintained incrementally at report time — O(1), not an O(n) rescan.
  std::uint64_t max_reports_per_node() const { return max_reports_; }

 private:
  CliqueSet unique_;
  std::uint64_t total_reports_ = 0;
  std::uint64_t max_reports_ = 0;
  double duplication_hint_ = 0.0;
  std::vector<std::uint64_t> per_node_reports_;
};

/// How the in-cluster lister charges the edge-distribution step.
///  * measured  — by the actual maximum load of the random partition (the
///    sparsity-aware accounting that Lemma 2.7 justifies);
///  * worst_case — by the oblivious schedule a non-sparsity-aware algorithm
///    needs: every node must budget for all potential vertex pairs between
///    its parts, O(p² (n/q)²) slots. This is the ablation contrast of
///    DESIGN.md E7(b).
enum class InClusterChargeMode { measured, worst_case };

/// Knobs for the Kp lister. The paper's thresholds are asymptotic formulas;
/// each carries a scale factor so laptop-sized instances can exercise every
/// mechanism (see DESIGN.md §4, "Thresholds and constants").
struct KpConfig {
  int p = 4;

  /// Theorem 1.2 mode: C-light edges are never shipped into the cluster;
  /// light nodes list their own K4s. Requires p == 4.
  bool k4_fast = false;

  /// Heavy threshold: general mode, a node is C-heavy when it has more than
  /// heavy_scale · n^{1/4} neighbors in C (Section 2.4.1); in k4_fast mode
  /// the threshold is heavy_scale · A / n^{1/3} (Section 3).
  double heavy_scale = 1.0;

  /// Bad-node threshold: u ∈ C is bad when it has more than
  /// bad_scale · √n · log2(n) C-light neighbors. (The paper's constant is
  /// 100; at laptop scale that disables the mechanism entirely, so the
  /// default exercises it while tests check the |Er|-budget invariant.)
  double bad_scale = 1.0;

  /// Ablation switch (E7a): when false, bad nodes are never declared and
  /// every Em edge stays a goal edge.
  bool enable_bad_edges = true;

  /// Ablation switch (E7b): sparsity-aware vs oblivious in-cluster charge.
  InClusterChargeMode in_cluster_charge = InClusterChargeMode::measured;

  /// Stop the outer arboricity-halving loop once the out-degree bound A
  /// satisfies A ≤ stop_scale·n^{stop}, stop = max(3/4, p/(p+2)) (general)
  /// or 2/3 (k4_fast). Negative = derive from p; override for experiments.
  double stop_exponent_override = -1.0;

  /// Multiplier on the stopping threshold n^{stop}. The paper's value is
  /// 2·log2(n) (it stops when the coupled cluster degree n^δ = A/(2 log n)
  /// would drop below n^{stop}); at laptop scale that exceeds n itself, so
  /// the default 1.0 keeps the same asymptotic schedule with the polylog
  /// factor normalized away (DESIGN.md §4).
  double stop_scale = 1.0;

  /// The §2.2 coupling n^δ = A / (coupling_scale · log2 n). Paper value:
  /// coupling_scale = 2. The default 1.0 keeps clusters from degenerating
  /// at laptop n; the arboricity-halving invariant is enforced by
  /// measurement (the driver re-measures A and stops on non-progress).
  double coupling_scale = 1.0;

  /// Spectral/conductance knobs forwarded to the expander decomposition.
  DecompositionConfig decomposition;

  /// Safety cap on ARB-LIST iterations inside one LIST call.
  int max_arb_iterations = 64;

  /// Deterministic seed for all randomness (decomposition + partitions).
  std::uint64_t seed = 1;

  /// Optional fault plan (congest/fault_plan.h): drops/dups/delays are
  /// recovered by the charged ack/retransmit protocol (clique output stays
  /// bit-identical; budget-exhausted losses escalate to charged resends),
  /// crash events degrade the output to the survivor contract — every Kp
  /// of the alive-induced subgraph is still listed. Not owned; nullptr =
  /// fault-free (and then the lister's behavior and every charge are
  /// bit-identical to a build without the fault plane).
  FaultPlan* faults = nullptr;
};

/// Per-ARB-LIST-iteration trace (experiment E8).
struct ArbIterationTrace {
  int list_iteration = 0;      ///< outer LIST index
  int arb_iteration = 0;       ///< inner ARB-LIST index
  std::int64_t er_before = 0;
  std::int64_t er_after = 0;
  std::int64_t es_total = 0;
  std::int64_t goal_edges = 0;
  std::int64_t bad_edges = 0;
  std::int64_t clusters = 0;
  std::int64_t heavy_relationships = 0;  ///< (node, cluster) heavy pairs
  std::int64_t max_learned_edges = 0;    ///< Remark 2.10 quantity
  /// Step-5 tail scheduler diagnostics (the two-level work plan): the
  /// flattened (cluster, representative-range) items, the shard count the
  /// weighted allocator derived, the estimated work each shard received,
  /// and the total estimate — the bench container has one CPU, so balance
  /// of these estimates (max/mean across shards) IS the parallelism
  /// evidence, not wall-clock (ROADMAP "standing constraints").
  std::int64_t tail_work_items = 0;
  std::int64_t tail_shards = 0;
  std::vector<std::uint64_t> tail_shard_work;
  std::uint64_t tail_est_work_total = 0;
  double rounds = 0.0;
};

/// Per-LIST-iteration trace: the arboricity-halving schedule of §2.2.
struct ListIterationTrace {
  int list_iteration = 0;
  std::int64_t arboricity_bound_before = 0;  ///< A (max out-degree witness)
  std::int64_t arboricity_bound_after = 0;
  std::int64_t cluster_degree = 0;           ///< n^δ = A/(2 log n)
  std::int64_t edges_before = 0;
  std::int64_t edges_after = 0;
  double rounds = 0.0;
};

struct KpListResult {
  RoundLedger ledger;
  std::uint64_t unique_cliques = 0;
  std::uint64_t total_reports = 0;
  double duplication_factor = 0.0;
  std::vector<ListIterationTrace> list_traces;
  std::vector<ArbIterationTrace> arb_traces;
  /// Fault-plane summary (all zero / empty on a fault-free run): messages
  /// whose retry budget was exhausted (escalated to charged resends),
  /// crash-stop nodes detected, and whether any cluster fell back to
  /// broadcast listing after losing too many members.
  std::uint64_t lost_messages = 0;
  std::vector<NodeId> crashed_nodes;
  bool crash_degraded = false;
  double total_rounds() const { return ledger.total_rounds(); }
};

}  // namespace dcl

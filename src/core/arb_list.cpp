#include "core/arb_list.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/math_util.h"
#include "common/parallel_for.h"
#include "common/telemetry.h"
#include "core/broadcast_listing.h"
#include "core/in_cluster_listing.h"
#include "routing/cluster_router.h"

namespace dcl {

namespace {

/// Per-node adjacency restricted to the current logical edge set.
struct CurrentView {
  // neighbor / edge-id pairs per node (sorted by neighbor id).
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj;
  // out-neighbors per node under the current orientation.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> out;

  CurrentView(const Graph& base, const EdgeMask& cur, const EdgeMask& away) {
    const auto n = static_cast<std::size_t>(base.node_count());
    adj.resize(n);
    out.resize(n);
    cur.for_each_set([&](EdgeId e) {
      const Edge& ed = base.edge(e);
      adj[static_cast<std::size_t>(ed.u)].emplace_back(ed.v, e);
      adj[static_cast<std::size_t>(ed.v)].emplace_back(ed.u, e);
      const NodeId tail = away[e] ? ed.u : ed.v;
      const NodeId head = base.other_endpoint(e, tail);
      out[static_cast<std::size_t>(tail)].emplace_back(head, e);
    });
  }
};

/// Per-node cluster-neighbor counts g_{v,C}: one CSR of (cluster, count)
/// entries, sorted by cluster id within each node's row. Replaces the old
/// vector of per-node unordered_maps — the rows live in one contiguous
/// array and membership is a binary search over a short sorted row.
struct ClusterNeighborTable {
  // Row offsets are prefix sums bounded by Σ_v |N(v)| = 2m — edge-scale,
  // past 2^32 at ROADMAP-item-5 graph sizes — so they are 64-bit even
  // though every individual row length is node-scale.
  std::vector<std::uint64_t> off;  // n+1 row offsets
  std::vector<std::pair<int, std::int32_t>> entries;

  std::span<const std::pair<int, std::int32_t>> row(NodeId v) const {
    const auto b = off[static_cast<std::size_t>(v)];
    const auto e = off[static_cast<std::size_t>(v) + 1];
    return {entries.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Count for cluster `c` at node `v`, or nullptr when v has no
  /// C-neighbors.
  const std::int32_t* find(NodeId v, int c) const {
    const auto r = row(v);
    const auto it = std::lower_bound(
        r.begin(), r.end(), c,
        [](const std::pair<int, std::int32_t>& e, int key) {
          return e.first < key;
        });
    return (it != r.end() && it->first == c) ? &it->second : nullptr;
  }
};

/// Builds the table sharded over the node index: each shard run-length
/// encodes the sorted cluster ids of its nodes into a shard-local buffer;
/// shards cover contiguous ascending node ranges, so concatenating the
/// buffers in shard order IS the node-ordered CSR payload.
/// Per-node work in the sharded step 2a/3 scans is one adjacency walk;
/// below this many nodes per shard the pool dispatch costs more than the
/// loop (grain rule of parallel_for_shards).
constexpr std::int64_t kNodeScanGrain = 256;
/// Step 4 does nested adjacency×adjacency work per node — a coarser unit.
constexpr std::int64_t kLightListGrain = 64;

/// Clears every set edge of `mask` with a crashed endpoint (collect first —
/// mutation during for_each_set is not part of the mask's contract).
void drop_dead_edges(const Graph& base, const FaultSession& faults,
                     EdgeMask& mask) {
  std::vector<EdgeId> doomed;
  mask.for_each_set([&](EdgeId e) {
    const Edge& ed = base.edge(e);
    if (faults.is_dead(ed.u) || faults.is_dead(ed.v)) doomed.push_back(e);
  });
  for (const EdgeId e : doomed) mask.set(e, false);
}

ClusterNeighborTable build_cluster_neighbors(NodeId n, const CurrentView& view,
                                             const std::vector<int>& cluster_of) {
  ClusterNeighborTable table;
  table.off.assign(static_cast<std::size_t>(n) + 1, 0);
  // Sized by shard_threads() alone — an upper bound on whatever shard
  // count parallel_for_shards derives, so the two can never disagree.
  std::vector<std::vector<std::pair<int, std::int32_t>>> shard_entries(
      static_cast<std::size_t>(shard_threads()));
  parallel_for_shards(n, [&](int shard, std::int64_t lo, std::int64_t hi) {
    auto& buf = shard_entries[static_cast<std::size_t>(shard)];
    std::vector<int> scratch;
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto v = static_cast<NodeId>(i);
      scratch.clear();
      for (const auto& [w, e] : view.adj[static_cast<std::size_t>(v)]) {
        const int c = cluster_of[static_cast<std::size_t>(w)];
        if (c >= 0 && cluster_of[static_cast<std::size_t>(v)] != c) {
          scratch.push_back(c);
        }
      }
      std::sort(scratch.begin(), scratch.end());
      const std::size_t row_start = buf.size();
      for (std::size_t x = 0; x < scratch.size();) {
        std::size_t y = x;
        while (y < scratch.size() && scratch[y] == scratch[x]) ++y;
        buf.emplace_back(scratch[x], static_cast<std::int32_t>(y - x));
        x = y;
      }
      table.off[static_cast<std::size_t>(v) + 1] = buf.size() - row_start;
    }
  }, kNodeScanGrain);
  for (std::size_t v = 1; v <= static_cast<std::size_t>(n); ++v) {
    table.off[v] += table.off[v - 1];
  }
  table.entries.reserve(table.off[static_cast<std::size_t>(n)]);
  for (const auto& buf : shard_entries) {
    table.entries.insert(table.entries.end(), buf.begin(), buf.end());
  }
  return table;
}

}  // namespace

ArbIterationTrace arb_list(ArbListContext& ctx) {
  const Graph& base = *ctx.base;
  const KpConfig& cfg = *ctx.cfg;
  const NodeId n = base.node_count();
  auto& es = *ctx.es_mask;
  auto& er = *ctx.er_mask;
  auto& away = *ctx.away;

  // Fault plane: detection and every fault decision happen ONLY at the
  // sequential phase boundaries of this function — decisions mutate the
  // recorded replay schedule, so they must never run inside a parallel
  // region.
  FaultSession* const faults =
      (ctx.faults != nullptr && ctx.faults->active()) ? ctx.faults : nullptr;
  // Crash sweep at call entry: nodes whose crash clock has already passed
  // leave the logical graph before the decomposition sees them — their
  // edges can neither be goal edges (the survivor contract covers only
  // alive-alive edges) nor carry into later iterations.
  if (faults != nullptr) {
    const auto newly = faults->detect_crashes(n);
    faults->charge_crash_timeout(*ctx.ledger, newly.size());
    if (faults->dead_count() > 0) {
      drop_dead_edges(base, *faults, er);
      drop_dead_edges(base, *faults, es);
    }
  }
  auto charge_phase = [&](const char* label, double rounds,
                          std::uint64_t messages) {
    if (faults != nullptr) {
      faults->charge_exchange(*ctx.ledger, label, rounds, messages);
    } else {
      ctx.ledger->charge_exchange(label, rounds, messages);
    }
  };

  // Telemetry: one span per ARB-LIST step, coordinatized by the cumulative
  // ledger totals (virtual time). Spans begin/end only in this sequential
  // orchestration code — never inside a shard body — so the span tree is
  // identical at any DCL_THREADS; shard bodies record into per-shard
  // metric cells merged in shard order below.
  TraceCollector* const telemetry = active_telemetry();
  auto sync_telemetry = [&] {
    if (telemetry != nullptr) {
      telemetry->sync_to(ctx.ledger->total_rounds(),
                         ctx.ledger->total_messages());
    }
  };
  auto begin_step = [&](const char* name) {
    if (telemetry == nullptr) return std::int32_t{-1};
    sync_telemetry();
    return telemetry->begin_span(name, "arb");
  };
  auto end_step = [&](std::int32_t id) {
    if (telemetry == nullptr) return;
    sync_telemetry();
    telemetry->end_span(id);
  };

  ArbIterationTrace trace;
  trace.er_before = er.count();
  if (trace.er_before == 0) return trace;

  // ---- Step 1: expander decomposition of (V, Er) (Theorem 2.3). ----------
  const std::int32_t decompose_span = begin_step("arb/decompose");
  std::vector<Edge> er_edges;
  std::vector<EdgeId> sub_to_base;
  er_edges.reserve(static_cast<std::size_t>(trace.er_before));
  sub_to_base.reserve(static_cast<std::size_t>(trace.er_before));
  er.for_each_set([&](EdgeId e) {
    er_edges.push_back(base.edge(e));
    sub_to_base.push_back(e);
  });
  const Graph gr = Graph::from_edges(n, std::move(er_edges));
  // Graph::from_edges preserves the lexicographic order of the (already
  // sorted, distinct) base edges, so sub edge i corresponds to
  // sub_to_base[i].
  DecompositionConfig dcfg = cfg.decomposition;
  dcfg.absolute_degree = ctx.cluster_degree;
  Rng deco_rng = ctx.rng->split();
  const ExpanderDecomposition deco =
      expander_decompose(gr, n, dcfg, deco_rng);
  ctx.ledger->charge_analytic("expander-decomposition (T2.3)",
                              deco.charged_rounds);

  // Apply the split to the logical edge sets.
  std::vector<EdgeId> em_edges;  // base ids of cluster-internal edges
  for (EdgeId se = 0; se < gr.edge_count(); ++se) {
    const EdgeId be = sub_to_base[static_cast<std::size_t>(se)];
    switch (deco.part[static_cast<std::size_t>(se)]) {
      case EdgePart::sparse:
        er.set(be, false);
        es.set(be, true);
        away.set(be, deco.es_away_from_lower[static_cast<std::size_t>(se)]);
        break;
      case EdgePart::cluster:
        er.set(be, false);  // pending goal/bad split
        em_edges.push_back(be);
        break;
      case EdgePart::removed:
        break;  // stays in Er
    }
  }
  trace.clusters = static_cast<std::int64_t>(deco.clusters.size());
  end_step(decompose_span);

  if (deco.clusters.empty()) {
    trace.er_after = er.count();
    trace.es_total = es.count();
    return trace;
  }

  // The "current graph" for this call: all Es ∪ Er ∪ Em edges that existed
  // on entry (Em edges are removed only after the call).
  EdgeMask cur = es | er;
  for (const EdgeId be : em_edges) cur.set(be);
  CurrentView view(base, cur, away);

  const auto& cluster_of = deco.cluster_of;

  // ---- Step 2a: cluster announcement + g_{v,C} (one exchange round). -----
  // Every cluster node tells its current-graph neighbors its cluster id;
  // v then knows g_{v,C} for each adjacent cluster C. Built sharded into
  // the flat CSR table; the announce message count is the sum of all
  // per-cluster counts (one message per cross-cluster adjacency).
  const std::int32_t announce_span = begin_step("arb/cluster-announce");
  const ClusterNeighborTable cluster_neighbors =
      build_cluster_neighbors(n, view, cluster_of);
  std::uint64_t announce_msgs = 0;
  for (const auto& [c, count] : cluster_neighbors.entries) {
    announce_msgs += static_cast<std::uint64_t>(count);
  }
  charge_phase("cluster-announce", 1.0, announce_msgs);
  end_step(announce_span);

  // Heavy threshold: n^{1/4} in the general algorithm (Section 2.4.1),
  // A / n^{1/3} in k4_fast mode (Section 3).
  const std::int64_t heavy_threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(
             cfg.heavy_scale *
             (cfg.k4_fast
                  ? static_cast<double>(ctx.arboricity_bound) /
                        std::pow(static_cast<double>(std::max<NodeId>(2, n)),
                                 1.0 / 3.0)
                  : std::pow(static_cast<double>(std::max<NodeId>(2, n)),
                             0.25)))));

  auto is_heavy_for = [&](NodeId v, int c) {
    const std::int32_t* count = cluster_neighbors.find(v, c);
    return count != nullptr && *count > heavy_threshold;
  };

  // ---- Step 2b: heavy nodes ship their outgoing edges into the cluster. --
  // v sends its ≤ A outgoing edges in round-robin chunks across its
  // C-neighbors; per-edge congestion is the chunk size.
  const std::int32_t heavy_span = begin_step("arb/heavy-edges");
  std::vector<std::vector<KnownEdge>> learned(static_cast<std::size_t>(n));
  std::int64_t heavy_phase_load = 0;
  std::uint64_t heavy_msgs = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto clusters_of_v = cluster_neighbors.row(v);
    if (clusters_of_v.empty()) continue;
    const auto& out_v = view.out[static_cast<std::size_t>(v)];
    for (const auto& [c, count] : clusters_of_v) {
      if (count <= heavy_threshold) continue;  // C-light
      ++trace.heavy_relationships;
      if (out_v.empty()) continue;
      // Collect v's neighbors inside cluster c (sorted by id via adj order).
      std::vector<NodeId> receivers;
      receivers.reserve(static_cast<std::size_t>(count));
      for (const auto& [w, e] : view.adj[static_cast<std::size_t>(v)]) {
        if (cluster_of[static_cast<std::size_t>(w)] == c) {
          receivers.push_back(w);
        }
      }
      for (std::size_t i = 0; i < out_v.size(); ++i) {
        const NodeId u = receivers[i % receivers.size()];
        learned[static_cast<std::size_t>(u)].push_back(
            KnownEdge{v, out_v[i].first});
      }
      heavy_msgs += out_v.size();
      heavy_phase_load = std::max(
          heavy_phase_load,
          ceil_div(static_cast<std::int64_t>(out_v.size()),
                   static_cast<std::int64_t>(receivers.size())));
    }
  }
  charge_phase("heavy-edge-shipping", static_cast<double>(heavy_phase_load),
               heavy_msgs);
  end_step(heavy_span);

  // ---- Step 3: light-status exchange, bad nodes, bad edges. ---------------
  const std::int32_t status_span = begin_step("arb/light-status");
  // One round: every outside node tells its cluster neighbors whether it is
  // C-light; u ∈ C then knows u_light. Sharded over u: ulight slots are
  // disjoint and the message count is an exact integer sum over shards.
  std::vector<std::int64_t> ulight(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> shard_status_msgs(
      static_cast<std::size_t>(shard_threads()), 0);
  parallel_for_shards(n, [&](int shard, std::int64_t lo, std::int64_t hi) {
    std::uint64_t msgs = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<NodeId>(i);
      const int c = cluster_of[static_cast<std::size_t>(u)];
      if (c < 0) continue;
      for (const auto& [v, e] : view.adj[static_cast<std::size_t>(u)]) {
        if (cluster_of[static_cast<std::size_t>(v)] == c) continue;
        ++msgs;
        if (!is_heavy_for(v, c)) ++ulight[static_cast<std::size_t>(u)];
      }
    }
    shard_status_msgs[static_cast<std::size_t>(shard)] = msgs;
  }, kNodeScanGrain);
  std::uint64_t status_msgs = 0;
  for (const std::uint64_t msgs : shard_status_msgs) status_msgs += msgs;
  charge_phase("light-status", 1.0, status_msgs);
  end_step(status_span);

  const std::int64_t bad_threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(
             cfg.bad_scale *
             std::sqrt(static_cast<double>(std::max<NodeId>(2, n))) *
             std::log2(static_cast<double>(std::max<NodeId>(2, n))))));
  std::vector<bool> bad(static_cast<std::size_t>(n), false);
  if (cfg.enable_bad_edges && !cfg.k4_fast) {
    for (NodeId u = 0; u < n; ++u) {
      if (cluster_of[static_cast<std::size_t>(u)] >= 0 &&
          ulight[static_cast<std::size_t>(u)] > bad_threshold) {
        bad[static_cast<std::size_t>(u)] = true;
      }
    }
  }

  // Goal edges = Em minus edges between two bad nodes; bad edges return to
  // Er for a later iteration (but stay in `cur` for communication).
  EdgeMask goal(base.edge_count());
  for (const EdgeId be : em_edges) {
    const Edge& ed = base.edge(be);
    if (bad[static_cast<std::size_t>(ed.u)] &&
        bad[static_cast<std::size_t>(ed.v)]) {
      er.set(be, true);
      ++trace.bad_edges;
    } else {
      goal.set(be, true);
      ++trace.goal_edges;
    }
  }

  // ---- Step 4: C-light edge learning (general algorithm only). -----------
  // Two sequential exchanges: good cluster nodes broadcast their C-light
  // neighbor lists to every outside neighbor, then the outside neighbors
  // answer with the sublist they are adjacent to. Each exchange is charged
  // its exact per-directed-edge congestion.
  if (!cfg.k4_fast) {
    const std::int32_t light_span = begin_step("arb/light-lists");
    // Sharded over u: each u writes only learned[u] (its own slot, in its
    // own iteration order), the `mark` scratch is per-shard, and the loads
    // merge by exact max / integer sum — all independent of interleaving.
    struct LightListStats {
      std::int64_t broadcast_load = 0;
      std::int64_t response_load = 0;
      std::uint64_t broadcast_msgs = 0;
      std::uint64_t response_msgs = 0;
    };
    std::vector<LightListStats> shard_stats(
        static_cast<std::size_t>(shard_threads()));
    parallel_for_shards(n, [&](int shard, std::int64_t lo, std::int64_t hi) {
      LightListStats stats;
      std::vector<bool> mark(static_cast<std::size_t>(n), false);
      std::vector<NodeId> light_list;
      for (std::int64_t i = lo; i < hi; ++i) {
        const auto u = static_cast<NodeId>(i);
        const int c = cluster_of[static_cast<std::size_t>(u)];
        if (c < 0 || bad[static_cast<std::size_t>(u)]) continue;
        // L(u): u's C-light neighbors outside the cluster.
        light_list.clear();
        for (const auto& [v, e] : view.adj[static_cast<std::size_t>(u)]) {
          if (cluster_of[static_cast<std::size_t>(v)] != c &&
              !is_heavy_for(v, c)) {
            light_list.push_back(v);
          }
        }
        if (light_list.empty()) continue;
        for (const NodeId w : light_list) {
          mark[static_cast<std::size_t>(w)] = true;
        }
        for (const auto& [v, e] : view.adj[static_cast<std::size_t>(u)]) {
          if (cluster_of[static_cast<std::size_t>(v)] == c) continue;
          // u → v: the whole list; v → u: the members adjacent to v.
          stats.broadcast_load = std::max(
              stats.broadcast_load,
              static_cast<std::int64_t>(light_list.size()));
          stats.broadcast_msgs += light_list.size();
          std::int64_t matches = 0;
          for (const auto& [w, we] : view.adj[static_cast<std::size_t>(v)]) {
            if (w == u || !mark[static_cast<std::size_t>(w)]) continue;
            ++matches;
            // v reports the edge {v,w} with its orientation bit.
            const Edge& ed = base.edge(we);
            const NodeId tail = away[we] ? ed.u : ed.v;
            learned[static_cast<std::size_t>(u)].push_back(
                KnownEdge{tail, base.other_endpoint(we, tail)});
          }
          stats.response_msgs += static_cast<std::uint64_t>(matches);
          stats.response_load = std::max(stats.response_load, matches);
        }
        for (const NodeId w : light_list) {
          mark[static_cast<std::size_t>(w)] = false;
        }
      }
      shard_stats[static_cast<std::size_t>(shard)] = stats;
    }, kLightListGrain);
    LightListStats total;
    for (const LightListStats& stats : shard_stats) {
      total.broadcast_load = std::max(total.broadcast_load,
                                      stats.broadcast_load);
      total.response_load = std::max(total.response_load, stats.response_load);
      total.broadcast_msgs += stats.broadcast_msgs;
      total.response_msgs += stats.response_msgs;
    }
    charge_phase("light-list-broadcast",
                 static_cast<double>(total.broadcast_load),
                 total.broadcast_msgs);
    charge_phase("light-list-response",
                 static_cast<double>(total.response_load),
                 total.response_msgs);
    end_step(light_span);
  }

  // ---- Fault plane: mid-call crash handling. ------------------------------
  // Crashes whose clock fell inside steps 2–4 are detected now (the
  // missed-phase timeout of the pre-step-5 barrier), and again after the
  // step-5 plan commits. Each detection:
  //  * removes dead-incident edges from every logical edge set — they stop
  //    being goal edges (the survivor contract covers alive-alive edges);
  //  * redistributes what the dead members had learned in steps 2b/4 to the
  //    surviving cluster members, round-robin ("crash-relearn", charged);
  //  * marks touched clusters so their rosters are rebuilt over the
  //    survivors before (or re-planned after) the Theorem 2.4 routing;
  //  * sends decimated clusters — fewer than 2 survivors, or less than half
  //    the roster — to the broadcast-listing fallback instead.
  std::vector<char> cluster_touched(deco.clusters.size(), 0);
  std::vector<char> cluster_fallback(deco.clusters.size(), 0);
  EdgeMask fallback_goal(base.edge_count());
  const bool crash_mode =
      faults != nullptr && !faults->plan->crashes().empty();
  auto apply_crashes = [&](const std::vector<NodeId>& newly) {
    std::vector<std::size_t> newly_touched;
    if (newly.empty()) return newly_touched;
    for (const NodeId u : newly) {
      const int c = cluster_of[static_cast<std::size_t>(u)];
      if (c < 0) continue;
      if (!cluster_touched[static_cast<std::size_t>(c)]) {
        cluster_touched[static_cast<std::size_t>(c)] = 1;
        newly_touched.push_back(static_cast<std::size_t>(c));
      }
      // Redistribute the dead member's learned edges (steps 2b/4) to the
      // survivors; edges with a dead endpoint are unroutable and dropped.
      auto& learned_u = learned[static_cast<std::size_t>(u)];
      std::vector<NodeId> survivors;
      for (const NodeId w :
           deco.clusters[static_cast<std::size_t>(c)].nodes) {
        if (!faults->is_dead(w)) survivors.push_back(w);
      }
      if (!survivors.empty() && !learned_u.empty()) {
        std::uint64_t relearned = 0;
        std::size_t slot = 0;
        for (const KnownEdge& ke : learned_u) {
          if (faults->is_dead(ke.tail) || faults->is_dead(ke.head)) continue;
          learned[static_cast<std::size_t>(
                      survivors[slot++ % survivors.size()])]
              .push_back(ke);
          ++relearned;
        }
        if (relearned > 0) {
          ctx.ledger->charge_exchange(
              "crash-relearn",
              static_cast<double>(ceil_div(
                  static_cast<std::int64_t>(relearned),
                  static_cast<std::int64_t>(survivors.size()))),
              relearned);
        }
      }
      learned_u.clear();
    }
    drop_dead_edges(base, *faults, goal);
    drop_dead_edges(base, *faults, er);
    drop_dead_edges(base, *faults, es);
    // Decimation check for every touched, not-yet-fallback cluster.
    for (std::size_t ci = 0; ci < deco.clusters.size(); ++ci) {
      if (!cluster_touched[ci] || cluster_fallback[ci]) continue;
      const Cluster& cluster = deco.clusters[ci];
      std::size_t alive = 0;
      for (const NodeId w : cluster.nodes) alive += !faults->is_dead(w);
      if (alive >= 2 && 2 * alive >= cluster.nodes.size()) continue;
      cluster_fallback[ci] = 1;
      std::vector<EdgeId> moved;
      goal.for_each_set([&](EdgeId be) {
        const Edge& ed = base.edge(be);
        if (cluster_of[static_cast<std::size_t>(ed.u)] ==
            static_cast<int>(cluster.id)) {
          moved.push_back(be);
        }
      });
      for (const EdgeId be : moved) {
        goal.set(be, false);
        fallback_goal.set(be, true);
      }
    }
    return newly_touched;
  };
  if (faults != nullptr) {
    const auto newly = faults->detect_crashes(n);
    faults->charge_crash_timeout(*ctx.ledger, newly.size());
    apply_crashes(newly);
  }

  // ---- Step 5: reshuffle to responsibility holders (Theorem 2.4). --------
  // The paper runs every cluster's reshuffle + in-cluster listing
  // independently (§2.4: clusters route and list in parallel on disjoint
  // edge sets). The tail is a two-level scheduler:
  //
  //  * Phase A (plan) shards over *clusters* (ROADMAP lever d): routing to
  //    responsibility holders, the in-cluster plan (partition, fragments,
  //    representative roster), and EVERY ledger charge — the charges are a
  //    pure function of the plans, never of how enumeration is sharded.
  //  * Phase B (enumerate) flattens the plans' representatives into
  //    (cluster, representative-range) work items weighted by their
  //    out-degree² estimates and shards those with the proportional
  //    weighted allocator — so the q=1 one-huge-cluster regime (every ER
  //    bench input decomposes to a single cluster) still splits across
  //    threads instead of collapsing onto one.
  //
  // Determinism contract: per-cluster RNGs are pre-split in cluster order
  // before the region (the parent stream advances exactly as the
  // sequential loop's split() calls did), clusters touch only disjoint
  // node slots of the read-only step 2b/4 state, work items are a pure
  // function of the plans (grain independent of thread count), and the
  // per-shard listing buffers / charge accumulators merge in shard
  // (= ascending cluster / item) order — every fingerprint is
  // bit-identical at any DCL_THREADS (tests/test_parallel_for.cpp,
  // tests/test_single_cluster_sharding.cpp).
  const std::int32_t plan_span = begin_step("arb/tail-plan");
  const auto new_id = assign_cluster_ids(deco.clusters, n, *ctx.ledger);
  std::vector<Rng> cluster_rngs = ctx.rng->split_n(deco.clusters.size());

  // Crash mode: clusters with dead members run on *patched* rosters — the
  // survivors, with dense within-cluster ids reassigned by survivor order
  // and the routing bandwidth reduced by the members lost (each survivor
  // lost at most that many internal neighbors). Untouched clusters keep the
  // original roster objects, so their plans and charges stay bit-identical
  // to the fault-free run.
  std::vector<Cluster> patched_clusters;
  std::vector<NodeId> patched_new_id;
  auto patch_cluster = [&](std::size_t ci) {
    Cluster& pc = patched_clusters[ci];
    const Cluster& oc = deco.clusters[ci];
    pc.nodes.clear();
    for (const NodeId w : oc.nodes) {
      if (!faults->is_dead(w)) pc.nodes.push_back(w);
    }
    const auto members_lost =
        static_cast<std::int64_t>(oc.nodes.size() - pc.nodes.size());
    pc.min_internal_degree = static_cast<NodeId>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(oc.min_internal_degree) - members_lost));
    for (std::size_t i = 0; i < pc.nodes.size(); ++i) {
      patched_new_id[static_cast<std::size_t>(pc.nodes[i])] =
          static_cast<NodeId>(i);
    }
  };
  if (crash_mode) {
    patched_clusters = deco.clusters;
    patched_new_id = new_id;
    for (std::size_t ci = 0; ci < deco.clusters.size(); ++ci) {
      if (cluster_touched[ci] && !cluster_fallback[ci]) patch_cluster(ci);
    }
  }
  const Cluster* const clusters_data =
      crash_mode ? patched_clusters.data() : deco.clusters.data();
  const NodeId* const id_of =
      crash_mode ? patched_new_id.data() : new_id.data();

  struct ClusterTailState {
    ParallelRoutingCharge reshuffle;
    ParallelRoutingCharge partition;
    ParallelRoutingCharge distribution;
    std::int64_t max_learned_edges = 0;
  };

  std::vector<InClusterPlan> plans(deco.clusters.size());

  auto prepare_cluster = [&](std::size_t ci, ClusterTailState& st) {
    if (crash_mode && cluster_fallback[ci]) return;  // broadcast path
    const Cluster& cluster = clusters_data[ci];
    const auto k = to_node(cluster.nodes.size());
    if (k == 0) return;
    const std::int64_t bandwidth =
        std::max<std::int64_t>(1, cluster.min_internal_degree);
    std::vector<std::vector<KnownEdge>> holders(static_cast<std::size_t>(k));
    std::vector<std::int64_t> send_load(static_cast<std::size_t>(k), 0);
    std::vector<std::int64_t> recv_load(static_cast<std::size_t>(k), 0);

    auto route = [&](NodeId from_cluster_node, KnownEdge edge) {
      const NodeId idx = responsible_cluster_index(edge.tail, n, k);
      holders[static_cast<std::size_t>(idx)].push_back(edge);
      ++send_load[static_cast<std::size_t>(
          id_of[static_cast<std::size_t>(from_cluster_node)])];
      ++recv_load[static_cast<std::size_t>(idx)];
    };

    for (const NodeId u : cluster.nodes) {
      // Own outgoing edges.
      for (const auto& [head, e] : view.out[static_cast<std::size_t>(u)]) {
        route(u, KnownEdge{u, head});
      }
      // Crossing edges oriented away from the outside endpoint (u is the
      // only cluster node guaranteed to know them).
      for (const auto& [v, e] : view.adj[static_cast<std::size_t>(u)]) {
        if (cluster_of[static_cast<std::size_t>(v)] == cluster.id) continue;
        const Edge& ed = base.edge(e);
        const NodeId tail = away[e] ? ed.u : ed.v;
        if (tail == v) route(u, KnownEdge{v, u});
      }
      // Everything learned from outside during steps 2b and 4.
      auto& learned_u = learned[static_cast<std::size_t>(u)];
      st.max_learned_edges =
          std::max(st.max_learned_edges,
                   static_cast<std::int64_t>(learned_u.size()));
      for (const KnownEdge& edge : learned_u) route(u, edge);
    }

    std::int64_t max_load = 0;
    std::uint64_t routed = 0;
    for (NodeId i = 0; i < k; ++i) {
      max_load = std::max({max_load, send_load[static_cast<std::size_t>(i)],
                           recv_load[static_cast<std::size_t>(i)]});
      routed += static_cast<std::uint64_t>(
          recv_load[static_cast<std::size_t>(i)]);
      auto& h = holders[static_cast<std::size_t>(i)];
      std::sort(h.begin(), h.end());
      h.erase(std::unique(h.begin(), h.end()), h.end());
    }
    st.reshuffle.add_cluster(max_load, bandwidth, routed);

    // Partition broadcast: every cluster node announces the part choices of
    // its ≤ ceil(n/k) responsibility nodes to all k-1 peers.
    const std::int64_t range = ceil_div(static_cast<std::int64_t>(n),
                                        static_cast<std::int64_t>(k));
    st.partition.add_cluster(
        range * (k - 1), bandwidth,
        static_cast<std::uint64_t>(range) * static_cast<std::uint64_t>(k) *
            static_cast<std::uint64_t>(k - 1));

    // In-cluster sparsity-aware listing plan (Section 2.4.3). The plan
    // carries the exact distribution loads; the enumeration half runs in
    // Phase B below and cannot change any charge.
    InClusterProblem problem;
    problem.base = &base;
    problem.cluster = &cluster;
    problem.edges_by_holder = &holders;
    problem.goal_edge = &goal;
    problem.p = cfg.p;
    problem.charge_mode = cfg.in_cluster_charge;
    plans[ci] = in_cluster_plan(problem, cluster_rngs[ci]);
    const InClusterCost& cost = plans[ci].cost;
    st.distribution.add_cluster(std::max(cost.max_send, cost.max_recv),
                                bandwidth, cost.messages);
  };

  const auto cluster_count =
      static_cast<std::int64_t>(deco.clusters.size());
  ClusterTailState tail;
  // Single-threaded fast path: Phase B is guaranteed sequential (the
  // weighted allocator caps at shard_threads()), so each cluster can
  // enumerate inline right after its plan while the fragments are still
  // cache-hot, and the plan's memory is released before the next cluster
  // — the PR 5 locality, kept. Only the per-representative estimates
  // survive, so the work-item accounting below stays a pure function of
  // the plans and bit-identical to the multi-thread run. Charges are
  // unaffected: enumeration never touches the ledger, and the commits
  // below run in the same order either way.
  // Crash mode keeps the plans alive past Phase A: a crash detected after
  // the plan commits must be able to re-plan the touched clusters before
  // enumeration, which the inline drop-plans-early path cannot do.
  const bool inline_tail = shard_threads() <= 1 && !crash_mode;
  std::vector<std::vector<std::uint64_t>> rep_ests;
  if (inline_tail) {
    rep_ests.resize(deco.clusters.size());
    for (std::size_t ci = 0; ci < deco.clusters.size(); ++ci) {
      prepare_cluster(ci, tail);
      const InClusterPlan plan = std::move(plans[ci]);
      auto& ests = rep_ests[ci];
      ests.reserve(plan.reps.size());
      for (const InClusterPlan::Rep& r : plan.reps) {
        ests.push_back(r.est_work);
      }
      in_cluster_enumerate(plan, 0, plan.reps.size(), *ctx.out);
    }
  } else if (std::min<std::int64_t>(shard_threads(), cluster_count) <= 1) {
    for (std::size_t ci = 0; ci < deco.clusters.size(); ++ci) {
      prepare_cluster(ci, tail);
    }
  } else {
    // Effective shard count (the same formula parallel_for_shards derives,
    // grain 1): accumulators beyond it would never receive a cluster.
    const auto buffers = static_cast<std::size_t>(
        std::min<std::int64_t>(shard_threads(), cluster_count));
    std::vector<ClusterTailState> shard_tail(buffers);
    parallel_for_shards(
        cluster_count, [&](int shard, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t ci = lo; ci < hi; ++ci) {
            prepare_cluster(static_cast<std::size_t>(ci),
                            shard_tail[static_cast<std::size_t>(shard)]);
          }
        });
    for (std::size_t s = 0; s < buffers; ++s) {
      tail.reshuffle.merge_from(shard_tail[s].reshuffle);
      tail.partition.merge_from(shard_tail[s].partition);
      tail.distribution.merge_from(shard_tail[s].distribution);
      tail.max_learned_edges =
          std::max(tail.max_learned_edges, shard_tail[s].max_learned_edges);
    }
  }
  trace.max_learned_edges =
      std::max(trace.max_learned_edges, tail.max_learned_edges);
  tail.reshuffle.commit(*ctx.ledger, "reshuffle (T2.4)", n);
  tail.partition.commit(*ctx.ledger, "partition-broadcast (T2.4)", n);
  tail.distribution.commit(*ctx.ledger, "edge-distribution (T2.4)", n);

  // Fault injection for the committed step-5 phases (sequential point —
  // the decisions were deliberately NOT taken inside the sharded region),
  // then the post-plan crash sweep: crashes landing between the plan and
  // the enumeration re-plan only the touched clusters, reusing the
  // plan/enumerate split — everyone else's plan is already final.
  if (faults != nullptr) {
    faults->inject(*ctx.ledger, "reshuffle (T2.4)",
                   tail.reshuffle.total_messages());
    faults->inject(*ctx.ledger, "partition-broadcast (T2.4)",
                   tail.partition.total_messages());
    faults->inject(*ctx.ledger, "edge-distribution (T2.4)",
                   tail.distribution.total_messages());
    const auto newly = faults->detect_crashes(n);
    faults->charge_crash_timeout(*ctx.ledger, newly.size());
    const auto newly_touched = apply_crashes(newly);
    if (!newly_touched.empty()) {
      ClusterTailState replan;
      for (const std::size_t ci : newly_touched) {
        plans[ci] = InClusterPlan{};
        if (cluster_fallback[ci]) continue;
        patch_cluster(ci);
        prepare_cluster(ci, replan);
      }
      // The survivors redo the routing from scratch; the first attempt's
      // rounds above were genuinely spent, so both charges stand.
      replan.reshuffle.commit(*ctx.ledger, "crash-replan (T2.4)", n);
      replan.partition.commit(*ctx.ledger, "crash-replan (T2.4)", n);
      replan.distribution.commit(*ctx.ledger, "crash-replan (T2.4)", n);
      trace.max_learned_edges =
          std::max(trace.max_learned_edges, replan.max_learned_edges);
    }
  }
  end_step(plan_span);

  // ---- Phase B: flattened weighted enumeration. ---------------------------
  // Every plan's representative list is cut into work items of roughly
  // est_work_total / kTailTargetItems estimated work each. The item grain
  // depends only on the plans (never on DCL_THREADS), so the item list is a
  // pure function of the input; the weighted allocator then assigns the
  // items to shards proportionally. kTailTargetItems trades balance (more
  // items = finer allocation) against per-item overhead: 32 items give a
  // 4-way split 8 items per shard, enough slack for max/mean estimated
  // work ≤ 1.5 on the single-cluster bench inputs.
  constexpr std::uint64_t kTailTargetItems = 32;
  // Below this much total estimated enumeration work the pool dispatch
  // costs more than the listing; the tail then runs inline (the same
  // measured rule as the kNodeScanGrain loops).
  constexpr std::uint64_t kTailEnumGrainWeight = 4096;

  struct TailItem {
    std::uint32_t cluster = 0;
    std::uint32_t rep_begin = 0;
    std::uint32_t rep_end = 0;
  };
  // Per-representative estimate accessors: the inline fast path has
  // already dropped its plans and kept only the estimate lists.
  const auto rep_count = [&](std::size_t ci) {
    return inline_tail ? rep_ests[ci].size() : plans[ci].reps.size();
  };
  const auto rep_est = [&](std::size_t ci, std::size_t r) {
    return inline_tail ? rep_ests[ci][r] : plans[ci].reps[r].est_work;
  };
  std::uint64_t est_total = 0;
  for (std::size_t ci = 0; ci < deco.clusters.size(); ++ci) {
    for (std::size_t r = 0; r < rep_count(ci); ++r) {
      est_total += rep_est(ci, r);
    }
  }
  const std::uint64_t item_grain =
      std::max<std::uint64_t>(1, est_total / kTailTargetItems);
  std::vector<TailItem> items;
  std::vector<std::uint64_t> item_weight;
  for (std::size_t ci = 0; ci < deco.clusters.size(); ++ci) {
    std::uint32_t begin = 0;
    std::uint64_t acc = 0;
    for (std::size_t r = 0; r < rep_count(ci); ++r) {
      acc += rep_est(ci, r);
      if (acc >= item_grain || r + 1 == rep_count(ci)) {
        items.push_back(TailItem{static_cast<std::uint32_t>(ci), begin,
                                 static_cast<std::uint32_t>(r + 1)});
        item_weight.push_back(acc);
        begin = static_cast<std::uint32_t>(r + 1);
        acc = 0;
      }
    }
  }
  trace.tail_work_items = static_cast<std::int64_t>(items.size());
  trace.tail_est_work_total = est_total;

  // Telemetry span for the enumeration tail. Its work-unit delta is
  // `est_total` — the same 64-bit quantity trace.tail_shard_work sums to —
  // added once from this sequential code, so one source of truth feeds
  // both views and the span is identical at any DCL_THREADS (the inline
  // fast path already enumerated during Phase A, but the work *accounting*
  // is a pure function of the plans and lands here in every mode).
  const std::int32_t enumerate_span = begin_step("arb/tail-enumerate");
  if (telemetry != nullptr) telemetry->add_work(est_total);

  const int tail_shards = weighted_shard_count(
      est_total, static_cast<std::int64_t>(items.size()),
      kTailEnumGrainWeight);
  trace.tail_shards = tail_shards;
  auto enumerate_item = [&](const TailItem& item, ListingOutput& sink) {
    in_cluster_enumerate(plans[item.cluster], item.rep_begin, item.rep_end,
                         sink);
  };
  if (inline_tail || tail_shards <= 1) {
    if (inline_tail) {
      // Already enumerated cluster-by-cluster above; just record the trace.
      trace.tail_shard_work.assign(1, est_total);
    } else {
      // Sequential fast path: report straight into the global collector, no
      // buffer merge.
      trace.tail_shard_work.assign(1, est_total);
      for (const TailItem& item : items) enumerate_item(item, *ctx.out);
    }
    // Sequential paths record the per-item metrics directly; values match
    // the sharded path's merged cells exactly (histogram folds are
    // commutative integer adds).
    if (telemetry != nullptr) {
      MetricsRegistry& metrics = telemetry->metrics();
      for (const std::uint64_t w : item_weight) {
        metrics.counter_add("arb.tail.enumerated_items", 1);
        metrics.histogram_record("arb.tail.item_est_work", w);
      }
    }
  } else {
    trace.tail_shard_work.assign(static_cast<std::size_t>(tail_shards), 0);
    std::vector<ListingOutput> shard_out;
    shard_out.reserve(static_cast<std::size_t>(tail_shards));
    const double dup_hint = ctx.out->duplication_factor();
    for (int s = 0; s < tail_shards; ++s) {
      shard_out.emplace_back(n);
      // Shard buffers start cold; seed their reserve discount with the
      // duplication factor the global collector has already observed.
      shard_out.back().set_duplication_hint(dup_hint);
    }
    // Per-shard metric cells: shard bodies write only their own cell; the
    // calling thread folds them back in shard order right after the
    // listing-output merge (the parallel_for_shards merge contract).
    std::vector<MetricsRegistry::ShardCell> tail_cells;
    if (telemetry != nullptr) {
      tail_cells.resize(static_cast<std::size_t>(tail_shards));
    }
    parallel_for_weighted_shards(
        item_weight,
        [&](int shard, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            enumerate_item(items[static_cast<std::size_t>(i)],
                           shard_out[static_cast<std::size_t>(shard)]);
            trace.tail_shard_work[static_cast<std::size_t>(shard)] +=
                item_weight[static_cast<std::size_t>(i)];
            if (telemetry != nullptr) {
              auto& cell = tail_cells[static_cast<std::size_t>(shard)];
              cell.counter_add("arb.tail.enumerated_items", 1);
              cell.histogram_record("arb.tail.item_est_work",
                                    item_weight[static_cast<std::size_t>(i)]);
            }
          }
        },
        kTailEnumGrainWeight);
    for (int s = 0; s < tail_shards; ++s) {
      ctx.out->merge_from(shard_out[static_cast<std::size_t>(s)]);
    }
    if (telemetry != nullptr) telemetry->metrics().merge_cells(tail_cells);
  }
  end_step(enumerate_span);

  // ---- Fault plane: broadcast fallback for decimated clusters. -----------
  // A cluster that lost too many members cannot run the Theorem 2.4
  // routing; its surviving goal edges are covered by a plain broadcast
  // listing over the alive part of the current graph — correct, with the
  // honestly charged O(A) degraded cost.
  if (crash_mode && fallback_goal.any()) {
    EdgeMask cur_alive = cur;
    drop_dead_edges(base, *faults, cur_alive);
    BroadcastListingArgs fargs;
    fargs.base = &base;
    fargs.current = &cur_alive;
    fargs.away = &away;
    fargs.p = cfg.p;
    fargs.mode = BroadcastMode::out_edges;
    fargs.require_edge = &fallback_goal;
    fargs.label = "crash-fallback-broadcast";
    broadcast_listing(fargs, *ctx.ledger, *ctx.out);
    if (ctx.crash_degraded != nullptr) *ctx.crash_degraded = true;
    if (telemetry != nullptr) {
      sync_telemetry();
      telemetry->instant("crash-fallback-broadcast", "arb");
      telemetry->metrics().counter_add("arb.crash_fallbacks", 1);
    }
  }

  // ---- Step 6 (k4_fast): sequential per-cluster C-light probing. ---------
  if (cfg.k4_fast) {
    const std::int32_t probe_span = begin_step("arb/k4-light-probe");
    std::int64_t probe_rounds = 0;
    std::uint64_t probe_msgs = 0;
    std::vector<bool> mark(static_cast<std::size_t>(n), false);
    for (const Cluster& cluster : deco.clusters) {
      std::int64_t cluster_max = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (cluster_of[static_cast<std::size_t>(v)] == cluster.id) continue;
        const std::int32_t* count = cluster_neighbors.find(v, cluster.id);
        if (count == nullptr || *count > heavy_threshold) continue;
        // v is C-light: collect Lv = its cluster-C neighbors.
        std::vector<NodeId> lv;
        for (const auto& [w, e] : view.adj[static_cast<std::size_t>(v)]) {
          if (cluster_of[static_cast<std::size_t>(w)] == cluster.id) {
            lv.push_back(w);
          }
        }
        if (lv.size() < 2) continue;
        cluster_max =
            std::max(cluster_max, static_cast<std::int64_t>(lv.size()));
        for (const NodeId w : lv) mark[static_cast<std::size_t>(w)] = true;
        // v queries each neighbor v2 about every u in Lv and lists the K4s
        // {u, w, v, v2} it can certify.
        for (const auto& [v2, e2] : view.adj[static_cast<std::size_t>(v)]) {
          if (cluster_of[static_cast<std::size_t>(v2)] == cluster.id) continue;
          probe_msgs += 2 * lv.size();  // queries + bit answers
          // M = Lv ∩ N_cur(v2).
          std::vector<NodeId> inter;
          for (const auto& [w, e3] : view.adj[static_cast<std::size_t>(v2)]) {
            if (mark[static_cast<std::size_t>(w)]) inter.push_back(w);
          }
          for (std::size_t x = 0; x < inter.size(); ++x) {
            for (std::size_t y = x + 1; y < inter.size(); ++y) {
              const auto eid = base.edge_id(inter[x], inter[y]);
              if (!eid || !cur[*eid]) continue;
              const NodeId quad[4] = {inter[x], inter[y], v, v2};
              ctx.out->report(v, quad);
            }
          }
        }
        for (const NodeId w : lv) mark[static_cast<std::size_t>(w)] = false;
      }
      probe_rounds += cluster_max;  // clusters handled sequentially (§3)
    }
    charge_phase("k4-light-probe", static_cast<double>(probe_rounds),
                 probe_msgs);
    end_step(probe_span);
  }

  trace.er_after = er.count();
  trace.es_total = es.count();
  if (telemetry != nullptr) {
    sync_telemetry();
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("arb.iterations", 1);
    metrics.counter_add("arb.clusters",
                        static_cast<std::uint64_t>(trace.clusters));
    metrics.counter_add("arb.goal_edges",
                        static_cast<std::uint64_t>(trace.goal_edges));
    metrics.counter_add("arb.bad_edges",
                        static_cast<std::uint64_t>(trace.bad_edges));
    metrics.counter_add("arb.heavy_relationships",
                        static_cast<std::uint64_t>(trace.heavy_relationships));
    metrics.counter_add("arb.tail.items",
                        static_cast<std::uint64_t>(trace.tail_work_items));
    metrics.counter_add("arb.tail.est_work", est_total);
    // NB: the tail shard count is a host execution detail (it tracks
    // DCL_THREADS), so it deliberately stays OUT of the metrics — the run
    // report must be bit-identical at any thread count.
    metrics.gauge_max("arb.max_learned_edges", trace.max_learned_edges);
    // CliqueSet load/displacement after this iteration's inserts: the
    // robin-hood table's fill and worst probe distance, straight from the
    // global collector.
    metrics.gauge_set("cliqueset.size",
                      static_cast<std::int64_t>(ctx.out->cliques().size()));
    metrics.gauge_max(
        "cliqueset.max_displacement",
        static_cast<std::int64_t>(ctx.out->cliques().max_displacement()));
  }
  return trace;
}

}  // namespace dcl

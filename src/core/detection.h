// Kp detection and counting on top of listing.
//
// Section 5 of the paper: "all the results in the CONGEST model regarding
// subgraph related problems with H = Kp are directly for listing, and imply
// detection and counting algorithms with the same runtime, yet no better
// results are known for detection or counting for any Kp." These wrappers
// make that implication concrete:
//  * detection — some node must output "Kp exists" iff one does; we run the
//    lister and report whether any node listed anything (with the honest
//    round cost of the full run — per the paper, nothing faster is known);
//  * counting — every node contributes the number of cliques for which it
//    is the canonical reporter (minimum-id member among the nodes that
//    listed it), so the sum over nodes is the exact global count; the sum
//    is aggregated with a convergecast whose O(D) ≤ O(n) extra rounds are
//    charged explicitly.
#pragma once

#include "core/kp_lister.h"
#include "core/listing_types.h"
#include "graph/graph.h"

namespace dcl {

struct DetectionResult {
  bool found = false;
  double rounds = 0.0;
  /// The witness clique if one was found (sorted node ids).
  Clique witness;
};

/// Kp detection in the CONGEST model via the Theorem 1.1 lister.
DetectionResult detect_kp(const Graph& g, const KpConfig& cfg);

struct CountingResult {
  std::uint64_t count = 0;
  double rounds = 0.0;            ///< listing + aggregation rounds
  double aggregation_rounds = 0;  ///< the convergecast part alone
};

/// Exact Kp counting: canonical-reporter de-duplication plus a BFS-tree
/// convergecast of the per-node counts.
CountingResult count_kp_distributed(const Graph& g, const KpConfig& cfg);

}  // namespace dcl

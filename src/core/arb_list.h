// Algorithm ARB-LIST (Theorem 2.9) — one decomposition pass of the lister.
//
// Given the current logical graph (edge sets Es ∪ Er over the base
// communication graph, with an orientation witnessing arboricity ≤ A),
// one call:
//  1. runs the δ-expander decomposition on (V, Er), splitting Er into
//     clusters E'm, sparse part E's (merged into Es with its orientation)
//     and leftover E'r (Theorem 2.3 cost charged);
//  2. classifies every cluster's outside neighbors as C-heavy/C-light
//     (threshold n^{1/4}; Section 3's A/n^{1/3} in k4_fast mode), ships
//     heavy nodes' outgoing edges into the cluster in chunks;
//  3. declares nodes with too many C-light neighbors *bad*, moves Em edges
//     between two bad nodes into Êr (they stop being goal edges but remain
//     usable for communication);
//  4. has every good cluster node exchange its C-light neighbor list with
//     all outside neighbors to learn the remaining outside edges
//     (Section 2.4.1; skipped in k4_fast mode);
//  5. reshuffles all known edges to responsibility-range holders via
//     Theorem 2.4 routing, runs the sparsity-aware in-cluster lister
//     (Section 2.4.3) on every cluster in parallel;
//  6. in k4_fast mode, additionally runs the sequential per-cluster C-light
//     probing of Section 3 so light nodes list the K4s the cluster cannot.
//
// Net effect on the edge sets: Em \ bad becomes Êm (removed and listed),
// Es grows by E's, and the new Er is E'r ∪ bad. Every Kp of the old
// Es ∪ Er with at least one Êm edge has been reported.
#pragma once

#include "common/rng.h"
#include "congest/round_ledger.h"
#include "core/listing_types.h"
#include "graph/edge_mask.h"
#include "graph/graph.h"

namespace dcl {

struct ArbListContext {
  const Graph* base = nullptr;  ///< the physical communication graph
  RoundLedger* ledger = nullptr;
  const KpConfig* cfg = nullptr;
  Rng* rng = nullptr;
  ListingOutput* out = nullptr;
  /// Logical edge sets over base edge ids; mutated in place.
  EdgeMask* es_mask = nullptr;
  EdgeMask* er_mask = nullptr;
  /// Orientation (away-from-lower bit per base edge); entries of edges
  /// newly placed into Es are updated to the decomposition's orientation.
  EdgeMask* away = nullptr;
  /// n^δ, coupled to the arboricity bound: A / (2·log2 n) (Section 2.2).
  std::int64_t cluster_degree = 1;
  /// A — the current max-out-degree bound n^d.
  std::int64_t arboricity_bound = 1;
  /// Fault state threaded by the driver (nullptr / inactive = fault-free
  /// fast path, zero overhead). Crash detection runs at the sequential
  /// phase boundaries only (entry, pre-step-5, post-plan) — fault decisions
  /// mutate the recorded schedule and must never run inside a parallel
  /// region.
  FaultSession* faults = nullptr;
  /// Set true when a cluster lost too many members and fell back to
  /// broadcast listing (the crash-degraded path).
  bool* crash_degraded = nullptr;
};

/// Executes one ARB-LIST call; returns the iteration trace (er/es/goal/bad
/// counts, heavy statistics, max learned edges, rounds charged).
ArbIterationTrace arb_list(ArbListContext& ctx);

}  // namespace dcl

// Flat partition-multiset tables for the CONGESTED-CLIQUE listers.
//
// Both the sparse-case clique lister (core/sparse_cc.cpp) and the
// in-cluster lister (core/in_cluster_listing.cpp) assign node i the sorted
// multiset of the p base-q digits of i mod q^p, then repeatedly ask
//   * does node i's multiset cover the part pair {a, b}?  and
//   * which node is the representative (minimum id) of each multiset?
// The cover test runs over the sorted digit lists via the shared
// intersection kernels; the representative map — previously a
// std::map<std::vector<int>, NodeId> with a tree walk and a vector compare
// per lookup — is replaced here by a sorted flat table: every multiset
// packs into one integer key (< q^p <= n), one sort of (key, id) pairs
// groups equal multisets into runs, and the run head (the minimum id, since
// ids ascend within a run) is the representative. Lookup is an O(1) array
// read (`rep[i]`).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/intersect.h"
#include "common/math_util.h"
#include "graph/graph.h"
#include "graph/ids.h"

namespace dcl {

/// The p base-q digits of id (mod q^p), as a sorted multiset.
inline std::vector<int> part_multiset(NodeId id, int q, int p) {
  const std::int64_t space = ipow(q, p);
  auto digits = radix_digits(static_cast<std::int64_t>(id) % space, q, p);
  std::sort(digits.begin(), digits.end());
  return digits;
}

/// Whether the sorted multiset `s` contains part `a` and part `b`
/// (with multiplicity two when a == b).
inline bool multiset_covers(const std::vector<int>& s, int a, int b) {
  if (a > b) std::swap(a, b);
  if (a == b) {
    const auto lo = std::lower_bound(s.begin(), s.end(), a);
    return lo != s.end() && *lo == a && (lo + 1) != s.end() && *(lo + 1) == a;
  }
  return sorted_contains(s, a) && sorted_contains(s, b);
}

/// Unordered part pair {a, b} -> dense index into a q*q table.
inline int pair_index(int a, int b, int q) {
  if (a > b) std::swap(a, b);
  return a * q + b;
}

/// rep[i] = minimum id whose multiset equals tuples[i]'s. Sorted flat
/// table: multisets pack into integer keys (digit-weighted base-q sums,
/// unique per multiset and < q^p), one sort groups equal keys into runs,
/// and each run's first id is its representative.
inline std::vector<NodeId> representative_table(
    const std::vector<std::vector<int>>& tuples, int q) {
  const auto k = tuples.size();
  std::vector<std::int64_t> key(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::int64_t packed = 0;
    for (const int digit : tuples[i]) packed = packed * q + digit;
    key[i] = packed;
  }
  std::vector<NodeId> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
    if (key[static_cast<std::size_t>(x)] != key[static_cast<std::size_t>(y)]) {
      return key[static_cast<std::size_t>(x)] < key[static_cast<std::size_t>(y)];
    }
    return x < y;
  });
  std::vector<NodeId> rep(k);
  NodeId head = -1;
  for (std::size_t i = 0; i < k; ++i) {
    if (i == 0 || key[static_cast<std::size_t>(order[i])] !=
                      key[static_cast<std::size_t>(order[i - 1])]) {
      head = order[i];
    }
    rep[static_cast<std::size_t>(order[i])] = head;
  }
  return rep;
}

/// cover[(a,b)] = number of tuples covering the unordered part pair {a,b};
/// a q*q table indexed by pair_index.
inline std::vector<std::int64_t> coverage_table(
    const std::vector<std::vector<int>>& tuples, int q) {
  std::vector<std::int64_t> cover(checked_mul64(q, q), 0);
  for (const auto& s : tuples) {
    for (int a = 0; a < q; ++a) {
      for (int b = a; b < q; ++b) {
        if (multiset_covers(s, a, b)) {
          ++cover[static_cast<std::size_t>(pair_index(a, b, q))];
        }
      }
    }
  }
  return cover;
}

}  // namespace dcl

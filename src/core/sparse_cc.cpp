#include "core/sparse_cc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "common/intersect.h"
#include "common/math_util.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/part_tables.h"
#include "enumeration/clique_enumeration.h"
#include "graph/orientation.h"

namespace dcl {

namespace {

struct DirectedEdge {
  NodeId tail;
  NodeId head;
  bool fake;
};

}  // namespace

SparseCcResult sparse_cc_list(const Graph& g, const SparseCcConfig& cfg,
                              ListingOutput& out) {
  if (cfg.p < 3) throw std::invalid_argument("sparse_cc_list: p must be >= 3");
  SparseCcResult result;
  const NodeId n = g.node_count();
  if (n < 2) return result;
  // Telemetry: one span over the whole sparse CONGESTED-CLIQUE pipeline;
  // its virtual-time extent is synced from the clique ledger at each exit.
  TraceCollector* const telemetry = active_telemetry();
  SpanGuard cc_span(telemetry, "sparse-cc", "core");
  auto record_cc_metrics = [&](const RoundLedger& ledger) {
    if (telemetry == nullptr) return;
    cc_span.sync_to(ledger.total_rounds(), ledger.total_messages());
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("sparsecc.runs", 1);
    metrics.counter_add("sparsecc.fake_edges",
                        static_cast<std::uint64_t>(result.fake_edges));
    metrics.gauge_max("sparsecc.parts", result.parts);
    metrics.gauge_max("sparsecc.max_pair_bucket", result.max_pair_bucket);
    metrics.gauge_max("sparsecc.max_recv_load", result.max_recv_load);
  };
  Rng rng(cfg.seed);

  const int p = cfg.p;
  const int q = std::max<int>(
      1, static_cast<int>(floor_pow(n, 1.0 / static_cast<double>(p))));
  result.parts = q;

  // Arboricity-witness orientation: each edge has a unique sender (tail).
  const Orientation orient = degeneracy_orientation(g);
  std::vector<DirectedEdge> edges;
  edges.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    edges.push_back({orient.tail(e), orient.head(e), false});
  }

  // Fake-edge padding (Section 4): bring m/n^{1/p} up to
  // pad_factor · n · log n. Fake edges are flagged and never listed.
  if (cfg.pad_factor > 0) {
    const double target_m = cfg.pad_factor * static_cast<double>(n) *
                            std::log2(static_cast<double>(std::max<NodeId>(2, n))) *
                            static_cast<double>(q);
    std::unordered_set<std::uint64_t> present;
    present.reserve(edges.size() * 2);
    for (const auto& de : edges) {
      const Edge e = make_edge(de.tail, de.head);
      present.insert((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                          e.u))
                      << 32) |
                     static_cast<std::uint32_t>(e.v));
    }
    const auto possible = static_cast<double>(n) * (n - 1) / 2.0;
    while (static_cast<double>(edges.size()) < std::min(target_m, possible)) {
      const auto a = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto b = to_node(rng.next_below(static_cast<std::uint64_t>(n)));
      if (a == b) continue;
      const Edge e = make_edge(a, b);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)) << 32) |
          static_cast<std::uint32_t>(e.v);
      if (!present.insert(key).second) continue;
      edges.push_back({e.u, e.v, true});
      ++result.fake_edges;
    }
  }

  // Round 1: every node announces its random part (one message to each
  // other node — exactly one CONGEST-CLIQUE round).
  std::vector<int> part(static_cast<std::size_t>(n));
  for (auto& pt : part) {
    pt = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(q)));
  }
  // Fault plane: the clique phases are accounting-level, so the session
  // wraps the two charge sites below (retry entries + resend escalation;
  // the listed cliques are unchanged — see docs/ROBUSTNESS.md).
  FaultSession session;
  session.plan = cfg.faults;
  FaultSession* const faults = session.active() ? &session : nullptr;

  CliqueNetwork net(n, cfg.routing);
  net.begin_phase("part-announce");
  // One representative message per ordered pair would be n(n-1) objects;
  // the cost is exactly 1 round in either accounting mode, so charge it
  // directly and skip materialization (the paper's "broadcast one value").
  net.end_phase();
  const std::uint64_t announce_msgs = static_cast<std::uint64_t>(n) *
                                      static_cast<std::uint64_t>(n - 1);
  if (faults != nullptr) {
    faults->charge_exchange(net.ledger(), "part-announce(broadcast)", 1.0,
                            announce_msgs);
  } else {
    net.ledger().charge_exchange("part-announce(broadcast)", 1.0,
                                 announce_msgs);
  }

  // Bucket edges by part pair (Lemma 2.7 balance check) and compute loads.
  std::vector<std::vector<DirectedEdge>> bucket(
      checked_mul64(q, q));
  for (const auto& de : edges) {
    bucket[static_cast<std::size_t>(
               pair_index(part[static_cast<std::size_t>(de.tail)],
                          part[static_cast<std::size_t>(de.head)], q))]
        .push_back(de);
  }
  for (const auto& b : bucket) {
    result.max_pair_bucket =
        std::max(result.max_pair_bucket, static_cast<std::int64_t>(b.size()));
  }

  // Part multisets and the coverage table, sharded over the node index.
  // Shards write disjoint tuple slots; the per-shard coverage tables are
  // integer histograms whose sum is independent of shard interleaving, so
  // the merged table is bit-identical to the sequential build.
  std::vector<std::vector<int>> tuple(static_cast<std::size_t>(n));
  // Sized by shard_threads() alone — an upper bound on whatever shard
  // count parallel_for_shards derives, so the two can never disagree.
  std::vector<std::vector<std::int64_t>> shard_cover(
      static_cast<std::size_t>(shard_threads()));
  // Per-node work is q^2 multiset probes; the grain keeps small instances
  // inline (see parallel_for_shards).
  constexpr std::int64_t kCoverGrain = 128;
  parallel_for_shards(n, [&](int shard, std::int64_t lo, std::int64_t hi) {
    auto& local_cover = shard_cover[static_cast<std::size_t>(shard)];
    local_cover.assign(checked_mul64(q, q), 0);
    for (std::int64_t i = lo; i < hi; ++i) {
      auto& s = tuple[static_cast<std::size_t>(i)];
      s = part_multiset(static_cast<NodeId>(i), q, p);
      for (int a = 0; a < q; ++a) {
        for (int b = a; b < q; ++b) {
          if (multiset_covers(s, a, b)) {
            ++local_cover[static_cast<std::size_t>(pair_index(a, b, q))];
          }
        }
      }
    }
  }, kCoverGrain);
  std::vector<std::int64_t> cover(checked_mul64(q, q), 0);
  for (const auto& local_cover : shard_cover) {
    for (std::size_t idx = 0; idx < local_cover.size(); ++idx) {
      cover[idx] += local_cover[idx];
    }
  }

  // Edge distribution: each tail sends its edge to every covering node.
  // Loads are computed exactly; the Lenzen-mode round charge is
  // ceil(max(max_send, max_recv)/(n-1)) + O(1) (CliqueNetwork's formula).
  std::vector<std::int64_t> send_load(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> recv_load(static_cast<std::size_t>(n), 0);
  std::uint64_t total_msgs = 0;
  for (const auto& de : edges) {
    const int idx = pair_index(part[static_cast<std::size_t>(de.tail)],
                               part[static_cast<std::size_t>(de.head)], q);
    send_load[static_cast<std::size_t>(de.tail)] +=
        cover[static_cast<std::size_t>(idx)];
  }
  // Receive loads are independent per node: shard over the node index
  // (disjoint recv_load slots; reads are all const).
  parallel_for_shards(n, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      for (int a = 0; a < q; ++a) {
        for (int b = a; b < q; ++b) {
          if (multiset_covers(tuple[static_cast<std::size_t>(i)], a, b)) {
            recv_load[static_cast<std::size_t>(i)] += static_cast<std::int64_t>(
                bucket[static_cast<std::size_t>(pair_index(a, b, q))].size());
          }
        }
      }
    }
  }, kCoverGrain);
  std::int64_t max_load = 0;
  for (NodeId i = 0; i < n; ++i) {
    max_load = std::max({max_load, send_load[static_cast<std::size_t>(i)],
                         recv_load[static_cast<std::size_t>(i)]});
    total_msgs +=
        static_cast<std::uint64_t>(recv_load[static_cast<std::size_t>(i)]);
  }
  result.max_recv_load = max_load;
  const std::int64_t distribution_rounds =
      (max_load == 0)
          ? 0
          : ceil_div(max_load, static_cast<std::int64_t>(n) - 1) + 2;
  if (faults != nullptr) {
    faults->charge_exchange(net.ledger(), "edge-distribution(lenzen)",
                            static_cast<double>(distribution_rounds),
                            total_msgs);
  } else {
    net.ledger().charge_exchange("edge-distribution(lenzen)",
                                 static_cast<double>(distribution_rounds),
                                 total_msgs);
  }

  if (!cfg.perform_listing) {
    result.ledger = net.ledger();
    result.lost_messages = result.ledger.lost_messages();
    record_cc_metrics(result.ledger);
    return result;
  }

  // Local listing at every node: real edges between its parts. Nodes with
  // identical part multisets receive identical edge sets; only the first
  // representative enumerates (simulation shortcut — loads above are per
  // node, and the union of outputs is unchanged). The representative of a
  // multiset is its minimum node id, read from the sorted flat table.
  const std::vector<NodeId> rep = representative_table(tuple, q);
  // Dense global→compact interning table, reset per representative by
  // walking the touched ids (to_global) instead of reallocating a map.
  std::vector<NodeId> to_compact(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> to_global;
  for (NodeId i = 0; i < n; ++i) {
    const auto& s = tuple[static_cast<std::size_t>(i)];
    if (rep[static_cast<std::size_t>(i)] != i) continue;
    std::vector<Edge> local;
    for (const NodeId v : to_global) to_compact[static_cast<std::size_t>(v)] = -1;
    to_global.clear();
    auto intern = [&](NodeId v) {
      NodeId& slot = to_compact[static_cast<std::size_t>(v)];
      if (slot < 0) {
        slot = to_node(to_global.size());
        to_global.push_back(v);
      }
      return slot;
    };
    for (int a = 0; a < q; ++a) {
      for (int b = a; b < q; ++b) {
        if (!multiset_covers(s, a, b)) continue;
        for (const auto& de :
             bucket[static_cast<std::size_t>(pair_index(a, b, q))]) {
          if (de.fake) continue;  // marked fake edges are never listed
          local.push_back(make_edge(intern(de.tail), intern(de.head)));
        }
      }
    }
    if (static_cast<int>(local.size()) < p * (p - 1) / 2) continue;
    const Graph local_graph =
        Graph::from_edges(to_node(to_global.size()),
                          std::move(local));
    const auto cliques = list_k_cliques(local_graph, p);
    std::vector<NodeId> global(static_cast<std::size_t>(p));
    for (const auto& c : cliques) {
      for (std::size_t x = 0; x < c.size(); ++x) {
        global[x] = to_global[static_cast<std::size_t>(c[x])];
      }
      out.report(i, global);
    }
  }

  result.ledger = net.ledger();
  result.lost_messages = result.ledger.lost_messages();
  result.unique_cliques = out.unique_count();
  result.total_reports = out.total_reports();
  record_cc_metrics(result.ledger);
  return result;
}

}  // namespace dcl

#include "expander/decomposition.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "common/math_util.h"
#include "expander/spectral.h"

namespace dcl {

double default_conductance_threshold(std::int64_t edge_count) {
  const double m = std::max<double>(2.0, static_cast<double>(edge_count));
  return 1.0 / (12.0 * std::log2(2.0 * m) + 1.0);
}

double polylog_mixing_bound(std::int64_t edge_count) {
  const double phi = default_conductance_threshold(edge_count);
  const double vol = std::max(4.0, 2.0 * static_cast<double>(edge_count));
  // Cheeger: gap ≥ φ²/2 for the lazy walk; t_mix ≈ log(vol)/gap.
  return std::log2(vol) / (phi * phi / 2.0);
}

namespace {

/// Mutable working view of the not-yet-assigned part of the graph.
struct WorkState {
  const Graph* g;
  std::vector<EdgePart> part;       // current labels; `cluster` = unassigned
  std::vector<bool> assigned;       // edge already finalized into Es/Er?
  std::vector<bool> es_away_from_lower;
  std::vector<std::int64_t> live_degree;  // degree over unassigned edges

  explicit WorkState(const Graph& graph)
      : g(&graph),
        part(static_cast<std::size_t>(graph.edge_count()), EdgePart::cluster),
        assigned(static_cast<std::size_t>(graph.edge_count()), false),
        es_away_from_lower(static_cast<std::size_t>(graph.edge_count()),
                           false),
        live_degree(static_cast<std::size_t>(graph.node_count()), 0) {
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      live_degree[static_cast<std::size_t>(v)] = graph.degree(v);
    }
  }

  void assign_es(EdgeId e, NodeId away_from) {
    part[static_cast<std::size_t>(e)] = EdgePart::sparse;
    assigned[static_cast<std::size_t>(e)] = true;
    const Edge& ed = g->edge(e);
    es_away_from_lower[static_cast<std::size_t>(e)] = (away_from == ed.u);
    --live_degree[static_cast<std::size_t>(ed.u)];
    --live_degree[static_cast<std::size_t>(ed.v)];
  }

  void assign_er(EdgeId e) {
    part[static_cast<std::size_t>(e)] = EdgePart::removed;
    assigned[static_cast<std::size_t>(e)] = true;
    const Edge& ed = g->edge(e);
    --live_degree[static_cast<std::size_t>(ed.u)];
    --live_degree[static_cast<std::size_t>(ed.v)];
  }
};

/// Peels every node of `component` whose live degree (within the component)
/// is below `threshold`; peeled nodes donate their remaining live edges to
/// Es, oriented away from them (out-degree < threshold ≤ n^δ). Returns the
/// surviving nodes.
std::vector<NodeId> peel_low_degree(WorkState& state,
                                    std::vector<NodeId> component,
                                    std::int64_t threshold) {
  const Graph& g = *state.g;
  std::vector<bool> in_component(static_cast<std::size_t>(g.node_count()),
                                 false);
  for (NodeId v : component) in_component[static_cast<std::size_t>(v)] = true;

  std::deque<NodeId> queue;
  std::vector<bool> queued(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId v : component) {
    if (state.live_degree[static_cast<std::size_t>(v)] < threshold) {
      queue.push_back(v);
      queued[static_cast<std::size_t>(v)] = true;
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const EdgeId e = eids[i];
      if (state.assigned[static_cast<std::size_t>(e)]) continue;
      const NodeId w = nbrs[i];
      if (!in_component[static_cast<std::size_t>(w)]) continue;
      state.assign_es(e, v);
      if (!queued[static_cast<std::size_t>(w)] &&
          state.live_degree[static_cast<std::size_t>(w)] < threshold) {
        queue.push_back(w);
        queued[static_cast<std::size_t>(w)] = true;
      }
    }
    in_component[static_cast<std::size_t>(v)] = false;  // v leaves
  }
  std::vector<NodeId> survivors;
  for (NodeId v : component) {
    if (in_component[static_cast<std::size_t>(v)]) survivors.push_back(v);
  }
  return survivors;
}

/// Connected components of `nodes` using only unassigned edges.
std::vector<std::vector<NodeId>> live_components(const WorkState& state,
                                                 const std::vector<NodeId>& nodes) {
  const Graph& g = *state.g;
  std::vector<bool> eligible(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId v : nodes) eligible[static_cast<std::size_t>(v)] = true;
  std::vector<bool> visited(static_cast<std::size_t>(g.node_count()), false);
  std::vector<std::vector<NodeId>> components;
  std::vector<NodeId> stack;
  for (NodeId s : nodes) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    components.emplace_back();
    visited[static_cast<std::size_t>(s)] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      components.back().push_back(v);
      const auto nbrs = g.neighbors(v);
      const auto eids = g.incident_edges(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (state.assigned[static_cast<std::size_t>(eids[i])]) continue;
        const NodeId w = nbrs[i];
        if (eligible[static_cast<std::size_t>(w)] &&
            !visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
    std::sort(components.back().begin(), components.back().end());
  }
  return components;
}

/// Induced live subgraph on `nodes` (unassigned edges only), with the edge
/// ids of the base graph carried along.
struct LiveSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;     // node mapping
  std::vector<EdgeId> edge_to_original;
};

LiveSubgraph live_subgraph(const WorkState& state,
                           const std::vector<NodeId>& nodes) {
  const Graph& g = *state.g;
  LiveSubgraph out;
  out.to_original = nodes;  // already sorted
  std::vector<NodeId> to_new(static_cast<std::size_t>(g.node_count()), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    to_new[static_cast<std::size_t>(nodes[i])] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  std::vector<EdgeId> ids;
  for (NodeId v : nodes) {
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (state.assigned[static_cast<std::size_t>(eids[i])]) continue;
      const NodeId w = nbrs[i];
      if (w <= v) continue;  // visit each live edge once
      const NodeId nv = to_new[static_cast<std::size_t>(v)];
      const NodeId nw = to_new[static_cast<std::size_t>(w)];
      if (nw < 0) continue;
      // dcl-lint: allow(reserve-hint): live intra-cluster edge count is
      edges.push_back(make_edge(nv, nw));  // unknown before this scan; a
      // dcl-lint: allow(reserve-hint): counting prepass would cost as much
      ids.push_back(eids[i]);  // as the growth on these per-level scratches
    }
  }
  // Graph::from_edges sorts edges; sort (edge, id) pairs the same way so the
  // id mapping stays aligned.
  std::vector<std::size_t> perm(edges.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return edges[a] < edges[b];
  });
  std::vector<Edge> sorted_edges(edges.size());
  out.edge_to_original.resize(edges.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    sorted_edges[i] = edges[perm[i]];
    out.edge_to_original[i] = ids[perm[i]];
  }
  out.graph = Graph::from_edges(to_node(nodes.size()),
                                std::move(sorted_edges));
  return out;
}

}  // namespace

ExpanderDecomposition expander_decompose(const Graph& g, NodeId ambient_n,
                                         const DecompositionConfig& config,
                                         Rng& rng) {
  if (ambient_n < g.node_count()) {
    throw std::invalid_argument("expander_decompose: ambient_n too small");
  }
  WorkState state(g);
  const std::int64_t degree_target = (config.absolute_degree > 0)
                                         ? config.absolute_degree
                                         : ceil_pow(ambient_n, config.delta);
  const std::int64_t threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(config.degree_scale *
                                   static_cast<double>(degree_target)));
  const double phi = (config.conductance_threshold > 0)
                         ? config.conductance_threshold
                         : default_conductance_threshold(g.edge_count());

  ExpanderDecomposition result;
  result.cluster_of.assign(static_cast<std::size_t>(g.node_count()), -1);

  std::deque<std::vector<NodeId>> pending;
  {
    std::vector<NodeId> all(static_cast<std::size_t>(g.node_count()));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      all[static_cast<std::size_t>(v)] = v;
    }
    pending.push_back(std::move(all));
  }

  while (!pending.empty()) {
    std::vector<NodeId> piece = std::move(pending.front());
    pending.pop_front();
    piece = peel_low_degree(state, std::move(piece), threshold);
    if (piece.empty()) continue;
    for (auto& component : live_components(state, piece)) {
      if (component.size() <= 1) continue;
      LiveSubgraph sub = live_subgraph(state, component);
      if (sub.graph.edge_count() == 0) continue;
      const auto embedding =
          second_eigenvector(sub.graph, rng, config.power_iterations);
      const Cut cut = sweep_cut(sub.graph, embedding);
      const bool splittable = cut.conductance < phi && !cut.side.empty() &&
                              cut.side.size() < component.size();
      if (splittable) {
        // Remove the cut edges, then recurse on both sides (they may need
        // further peeling as their degrees just dropped).
        std::vector<bool> in_side(
            static_cast<std::size_t>(sub.graph.node_count()), false);
        for (NodeId v : cut.side) in_side[static_cast<std::size_t>(v)] = true;
        for (EdgeId e = 0; e < sub.graph.edge_count(); ++e) {
          const Edge& ed = sub.graph.edge(e);
          if (in_side[static_cast<std::size_t>(ed.u)] !=
              in_side[static_cast<std::size_t>(ed.v)]) {
            state.assign_er(sub.edge_to_original[static_cast<std::size_t>(e)]);
          }
        }
        std::vector<NodeId> side_original, rest_original;
        for (NodeId nv = 0; nv < sub.graph.node_count(); ++nv) {
          (in_side[static_cast<std::size_t>(nv)] ? side_original
                                                 : rest_original)
              .push_back(sub.to_original[static_cast<std::size_t>(nv)]);
        }
        pending.push_back(std::move(side_original));
        pending.push_back(std::move(rest_original));
      } else {
        // Accept as a cluster: its live edges become Em.
        Cluster cluster;
        cluster.id = static_cast<int>(result.clusters.size());
        cluster.nodes = component;
        cluster.internal_edges = sub.graph.edge_count();
        NodeId min_deg = sub.graph.node_count();
        for (NodeId nv = 0; nv < sub.graph.node_count(); ++nv) {
          min_deg = std::min(min_deg, sub.graph.degree(nv));
        }
        cluster.min_internal_degree = min_deg;
        cluster.mixing_time =
            mixing_time_estimate(sub.graph, rng, config.power_iterations);
        for (EdgeId e = 0; e < sub.graph.edge_count(); ++e) {
          const EdgeId orig = sub.edge_to_original[static_cast<std::size_t>(e)];
          state.part[static_cast<std::size_t>(orig)] = EdgePart::cluster;
          state.assigned[static_cast<std::size_t>(orig)] = true;
        }
        for (NodeId v : component) {
          result.cluster_of[static_cast<std::size_t>(v)] = cluster.id;
        }
        result.clusters.push_back(std::move(cluster));
      }
    }
  }

  result.part = std::move(state.part);
  result.es_away_from_lower = std::move(state.es_away_from_lower);
  for (const EdgePart p : result.part) {
    switch (p) {
      case EdgePart::cluster:
        ++result.em_count;
        break;
      case EdgePart::sparse:
        ++result.es_count;
        break;
      case EdgePart::removed:
        ++result.er_count;
        break;
    }
  }
  // Theorem 2.3 charge: Õ(n^{1-δ}) = Õ(n / n^δ); we charge
  // (n / degree_target) · log2(n) (the paper's polylog is unspecified; the
  // factor is constant across an n-sweep fit).
  const double n_d = std::max(2.0, static_cast<double>(ambient_n));
  result.charged_rounds =
      n_d / static_cast<double>(std::max<std::int64_t>(1, degree_target)) *
      std::log2(n_d);
  return result;
}

std::vector<std::string> verify_decomposition(
    const Graph& g, NodeId ambient_n, const DecompositionConfig& config,
    const ExpanderDecomposition& d, double max_mixing_time) {
  std::vector<std::string> errors;
  const auto m = static_cast<std::size_t>(g.edge_count());
  if (d.part.size() != m) {
    errors.push_back("part vector size mismatch");
    return errors;
  }
  // |Er| <= |E|/6.
  if (6 * d.er_count > g.edge_count()) {
    errors.push_back("|Er| > |E|/6: " + std::to_string(d.er_count) + " of " +
                     std::to_string(g.edge_count()));
  }
  // Es out-degree witness <= n^delta (or the absolute override).
  const std::int64_t ndelta = (config.absolute_degree > 0)
                                  ? config.absolute_degree
                                  : ceil_pow(ambient_n, config.delta);
  std::vector<std::int64_t> out_deg(static_cast<std::size_t>(g.node_count()),
                                    0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (d.part[static_cast<std::size_t>(e)] != EdgePart::sparse) continue;
    const Edge& ed = g.edge(e);
    const NodeId tail =
        d.es_away_from_lower[static_cast<std::size_t>(e)] ? ed.u : ed.v;
    ++out_deg[static_cast<std::size_t>(tail)];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (out_deg[static_cast<std::size_t>(v)] > ndelta) {
      errors.push_back("Es out-degree of node " + std::to_string(v) + " is " +
                       std::to_string(out_deg[static_cast<std::size_t>(v)]) +
                       " > n^delta = " + std::to_string(ndelta));
      break;
    }
  }
  // Clusters: consistency of cluster_of with Em components, min degree.
  const std::int64_t degree_target = (config.absolute_degree > 0)
                                         ? config.absolute_degree
                                         : ceil_pow(ambient_n, config.delta);
  const std::int64_t threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(config.degree_scale *
                                   static_cast<double>(degree_target)));
  std::vector<std::int64_t> em_degree(static_cast<std::size_t>(g.node_count()),
                                      0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (d.part[static_cast<std::size_t>(e)] != EdgePart::cluster) continue;
    const Edge& ed = g.edge(e);
    const int cu = d.cluster_of[static_cast<std::size_t>(ed.u)];
    const int cv = d.cluster_of[static_cast<std::size_t>(ed.v)];
    if (cu < 0 || cu != cv) {
      errors.push_back("Em edge " + std::to_string(e) +
                       " does not lie inside one cluster");
      break;
    }
    ++em_degree[static_cast<std::size_t>(ed.u)];
    ++em_degree[static_cast<std::size_t>(ed.v)];
  }
  for (const Cluster& c : d.clusters) {
    for (NodeId v : c.nodes) {
      if (d.cluster_of[static_cast<std::size_t>(v)] != c.id) {
        errors.push_back("cluster_of mismatch for node " + std::to_string(v));
      }
      if (em_degree[static_cast<std::size_t>(v)] < threshold) {
        errors.push_back(
            "cluster node " + std::to_string(v) + " has Em-degree " +
            std::to_string(em_degree[static_cast<std::size_t>(v)]) +
            " < peel threshold " + std::to_string(threshold));
      }
    }
    if (c.mixing_time > max_mixing_time) {
      errors.push_back("cluster " + std::to_string(c.id) +
                       " mixing-time estimate " +
                       std::to_string(c.mixing_time) + " exceeds bound " +
                       std::to_string(max_mixing_time));
    }
    if (errors.size() > 20) return errors;
  }
  return errors;
}

}  // namespace dcl

// Spectral tools for conductance and mixing-time estimation.
//
// The expander decomposition needs two primitives on a candidate cluster:
//  (1) find a sparse cut if one exists (sweep cut over an approximate
//      second eigenvector of the lazy random walk), and
//  (2) certify a good mixing time when no sparse cut exists (spectral gap
//      of the lazy walk; t_mix = O(log(vol)/gap) by the standard bound).
// Definition 2.1 of the paper requires each cluster to have mixing time
// O(polylog n); these estimates are what our tests check against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace dcl {

/// A cut of a graph into (side, complement) with its conductance.
struct Cut {
  std::vector<NodeId> side;  ///< nodes on the smaller-volume side
  std::int64_t cut_edges = 0;
  std::int64_t volume_small = 0;  ///< sum of degrees on `side`
  double conductance = 1.0;       ///< cut_edges / min(vol, vol_complement)
};

/// Approximates the second eigenvector of the lazy random walk
/// P = (I + D^{-1}A)/2 on a connected graph by power iteration with
/// deflation of the stationary component. Returns one value per node.
std::vector<double> second_eigenvector(const Graph& g, Rng& rng,
                                       int iterations = 200);

/// Estimated second eigenvalue λ₂ of the lazy walk (in [1/2, 1] for a
/// connected non-trivial graph); spectral gap is 1 − λ₂.
double lazy_walk_lambda2(const Graph& g, Rng& rng, int iterations = 200);

/// Standard mixing-time estimate t_mix ≈ log(volume) / gap, from λ₂.
double mixing_time_estimate(const Graph& g, Rng& rng, int iterations = 200);

/// Sweep cut: sorts nodes by the given embedding and returns the
/// best-conductance prefix cut. `g` must have at least one edge.
Cut sweep_cut(const Graph& g, const std::vector<double>& embedding);

/// Exact conductance of a node subset (by brute force edge counting).
double conductance_of(const Graph& g, const std::vector<NodeId>& side);

}  // namespace dcl

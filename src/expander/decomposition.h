// δ-expander decomposition (Definition 2.2 of the paper).
//
// Partitions the edge set of a graph into E = Em ∪ Es ∪ Er where
//  * every maximal connected component of Em with more than one node is an
//    n^δ-cluster (Definition 2.1: every node has internal degree Ω(n^δ) and
//    the component mixes in O(polylog n));
//  * Es has arboricity ≤ n^δ, witnessed by an orientation with out-degree
//    ≤ n^δ that we return explicitly (the paper's Es,v sets);
//  * |Er| ≤ |E|/6.
//
// Construction (centralized; DESIGN.md §2 documents the substitution): we
// alternate low-degree peeling (removed nodes contribute their remaining
// edges to Es, oriented away — this is the arboricity witness) with
// spectral sweep-cut refinement (cut edges go to Er; both sides recurse).
// The conductance threshold φ is chosen as 1/Θ(log m) so the recursion
// charges at most |E|/6 edges to Er, while accepted clusters still mix in
// O(polylog) time; see `default_conductance_threshold`.
//
// The distributed construction cost is charged per Theorem 2.3:
// Õ(n^{1-δ}) rounds (`charged_rounds`).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace dcl {

enum class EdgePart : std::uint8_t {
  cluster,  ///< Em: inside an n^δ-cluster
  sparse,   ///< Es: low-arboricity leftover, oriented
  removed,  ///< Er: deferred to the next ARB-LIST iteration
};

struct Cluster {
  int id = 0;
  std::vector<NodeId> nodes;          ///< sorted original node ids
  NodeId min_internal_degree = 0;     ///< min degree w.r.t. Em edges
  std::int64_t internal_edges = 0;    ///< |Em ∩ C×C|
  double mixing_time = 0.0;           ///< spectral estimate, lazy walk
};

struct ExpanderDecomposition {
  /// Per-edge label, aligned with the decomposed graph's edge ids.
  std::vector<EdgePart> part;
  /// Orientation for Es edges: true = oriented from lower-id endpoint to
  /// higher-id endpoint. Entries for non-Es edges are unspecified.
  std::vector<bool> es_away_from_lower;
  /// Cluster id per node, or -1 for nodes in no cluster.
  std::vector<int> cluster_of;
  std::vector<Cluster> clusters;

  std::int64_t em_count = 0;
  std::int64_t es_count = 0;
  std::int64_t er_count = 0;

  /// Simulated CONGEST cost of the distributed construction (Theorem 2.3).
  double charged_rounds = 0.0;
};

struct DecompositionConfig {
  /// Cluster degree exponent δ: the peel threshold is
  /// max(1, ceil(degree_scale · n^δ)).
  double delta = 0.75;
  /// When positive, overrides n^δ with this absolute value. The listing
  /// algorithm couples the cluster degree to the current arboricity bound
  /// (n^δ = A / (2 log n), Section 2.2), which is an absolute quantity.
  std::int64_t absolute_degree = -1;
  /// Fraction of n^δ below which a node is peeled into Es. The paper peels
  /// at Θ(n^δ); 0.5 matches its "at least k·n^δ/2 edges inside" accounting.
  double degree_scale = 0.5;
  /// Sparse-cut threshold φ; ≤ 0 means "use default_conductance_threshold".
  double conductance_threshold = -1.0;
  /// Power-iteration steps for the spectral embedding.
  int power_iterations = 120;
};

/// φ = 1 / (12·log2(2m) + 1): any recursion of sweep cuts with this
/// threshold removes at most |E|/6 edges in total (each edge's endpoint
/// volume lands on the smaller side of a cut at most log2(2m) times).
double default_conductance_threshold(std::int64_t edge_count);

/// The O(polylog) mixing bound that Definition 2.1 guarantees for accepted
/// clusters: a component with no cut sparser than φ = 1/Θ(log m) has
/// spectral gap ≥ φ²/2 (Cheeger), so t_mix ≤ log(vol)/gap = Θ(log³ m).
/// This is the bound verify_decomposition / tests should check against.
double polylog_mixing_bound(std::int64_t edge_count);

/// Decomposes `g` under `config`. Uses n = `ambient_n` for the n^δ
/// threshold (the paper runs the decomposition on the subgraph (V, Er) of
/// an n-node graph; thresholds refer to the ambient n, not the subgraph
/// size). Pass ambient_n = g.node_count() for standalone use.
ExpanderDecomposition expander_decompose(const Graph& g, NodeId ambient_n,
                                         const DecompositionConfig& config,
                                         Rng& rng);

/// Structural check of Definition 2.2; returns a human-readable error list
/// (empty == valid). `max_mixing_time` bounds the per-cluster spectral
/// mixing estimate.
std::vector<std::string> verify_decomposition(
    const Graph& g, NodeId ambient_n, const DecompositionConfig& config,
    const ExpanderDecomposition& d, double max_mixing_time);

}  // namespace dcl

#include "expander/spectral.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel_for.h"

namespace dcl {

namespace {

/// One application of the lazy walk operator P = (I + D^{-1}A)/2.
/// Rows are independent (out[v] reads only x), so they shard over the
/// worker pool — each out[v] is computed by exactly one shard with the
/// same per-row summation order as the sequential loop, so the result is
/// bit-identical at any DCL_THREADS (ROADMAP lever e; the π-weighted
/// reductions around this stay sequential, their summation order is part
/// of the fixed-seed fingerprint).
void apply_lazy_walk(const Graph& g, const std::vector<double>& x,
                     std::vector<double>& out) {
  // A row is a few flops per neighbor, and the power iteration applies
  // the operator hundreds of times — without a grain the per-application
  // pool dispatch dominated on laptop-sized cluster candidates (measured
  // as a net DCL_THREADS=4 *slowdown* on the committed bench inputs).
  constexpr std::int64_t kRowGrain = 2048;
  parallel_for_shards(g.node_count(), [&](int, std::int64_t lo,
                                          std::int64_t hi) {
    for (auto v = static_cast<NodeId>(lo); v < static_cast<NodeId>(hi); ++v) {
      double acc = 0.0;
      const auto nbrs = g.neighbors(v);
      for (NodeId w : nbrs) acc += x[static_cast<std::size_t>(w)];
      const double deg = static_cast<double>(g.degree(v));
      const double walk =
          (deg > 0) ? acc / deg : x[static_cast<std::size_t>(v)];
      out[static_cast<std::size_t>(v)] =
          0.5 * (x[static_cast<std::size_t>(v)] + walk);
    }
  }, kRowGrain);
}

/// Removes the component along the stationary distribution π(v) ∝ deg(v).
/// For the lazy-walk operator acting on functions, the top (eigenvalue-1)
/// right eigenvector is the all-ones vector; deflation must be with respect
/// to the π-weighted inner product under which P is self-adjoint.
void deflate_stationary(const Graph& g, std::vector<double>& x) {
  double num = 0.0, den = 0.0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double pi = static_cast<double>(g.degree(v));
    num += pi * x[static_cast<std::size_t>(v)];
    den += pi;
  }
  if (den <= 0) return;
  const double mean = num / den;
  for (auto& value : x) value -= mean;
}

double pi_norm(const Graph& g, const std::vector<double>& x) {
  double acc = 0.0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double pi = static_cast<double>(g.degree(v));
    acc += pi * x[static_cast<std::size_t>(v)] * x[static_cast<std::size_t>(v)];
  }
  return std::sqrt(acc);
}

}  // namespace

std::vector<double> second_eigenvector(const Graph& g, Rng& rng,
                                       int iterations) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<double> x(n), next(n);
  for (auto& value : x) value = rng.next_double() - 0.5;
  deflate_stationary(g, x);
  for (int it = 0; it < iterations; ++it) {
    apply_lazy_walk(g, x, next);
    x.swap(next);
    deflate_stationary(g, x);
    const double norm = pi_norm(g, x);
    if (norm < 1e-14) {
      // Collapsed (e.g. complete graph where λ₂ component vanishes):
      // re-randomize once; if it collapses again the gap is just large.
      for (auto& value : x) value = rng.next_double() - 0.5;
      deflate_stationary(g, x);
      continue;
    }
    for (auto& value : x) value /= norm;
  }
  return x;
}

double lazy_walk_lambda2(const Graph& g, Rng& rng, int iterations) {
  if (g.node_count() <= 1 || g.edge_count() == 0) return 0.5;
  auto x = second_eigenvector(g, rng, iterations);
  const double before = pi_norm(g, x);
  if (before < 1e-14) return 0.5;
  std::vector<double> next(x.size());
  apply_lazy_walk(g, x, next);
  deflate_stationary(g, next);
  const double after = pi_norm(g, next);
  // Rayleigh-quotient style estimate of |λ₂| via one extra application.
  return std::clamp(after / before, 0.0, 1.0);
}

double mixing_time_estimate(const Graph& g, Rng& rng, int iterations) {
  const double lambda2 = lazy_walk_lambda2(g, rng, iterations);
  const double gap = std::max(1e-9, 1.0 - lambda2);
  const double volume = std::max(2.0, 2.0 * static_cast<double>(g.edge_count()));
  return std::log(volume) / gap;
}

Cut sweep_cut(const Graph& g, const std::vector<double>& embedding) {
  if (g.edge_count() == 0) {
    throw std::invalid_argument("sweep_cut: graph has no edges");
  }
  const NodeId n = g.node_count();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return embedding[static_cast<std::size_t>(a)] <
           embedding[static_cast<std::size_t>(b)];
  });
  std::vector<bool> in_side(static_cast<std::size_t>(n), false);
  const std::int64_t total_volume = 2 * g.edge_count();
  std::int64_t volume = 0;
  std::int64_t cut = 0;
  double best_conductance = 2.0;
  std::size_t best_prefix = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const NodeId v = order[i];
    in_side[static_cast<std::size_t>(v)] = true;
    volume += g.degree(v);
    for (NodeId w : g.neighbors(v)) {
      // Adding v turns edges to outside into cut edges and removes edges to
      // already-inside nodes from the cut.
      cut += in_side[static_cast<std::size_t>(w)] ? -1 : +1;
    }
    const std::int64_t small_vol = std::min(volume, total_volume - volume);
    if (small_vol <= 0) continue;
    const double phi =
        static_cast<double>(cut) / static_cast<double>(small_vol);
    if (phi < best_conductance) {
      best_conductance = phi;
      best_prefix = i + 1;
    }
  }
  Cut result;
  result.conductance = best_conductance;
  // Report the smaller-volume side for the chosen prefix.
  std::int64_t prefix_volume = 0;
  for (std::size_t i = 0; i < best_prefix; ++i) {
    prefix_volume += g.degree(order[i]);
  }
  const bool prefix_is_small = prefix_volume <= total_volume - prefix_volume;
  if (prefix_is_small) {
    result.side.assign(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(best_prefix));
    result.volume_small = prefix_volume;
  } else {
    result.side.assign(order.begin() + static_cast<std::ptrdiff_t>(best_prefix),
                       order.end());
    result.volume_small = total_volume - prefix_volume;
  }
  std::sort(result.side.begin(), result.side.end());
  // Recount cut edges for the reported side (robust to the incremental
  // bookkeeping above).
  std::vector<bool> mark(static_cast<std::size_t>(n), false);
  for (NodeId v : result.side) mark[static_cast<std::size_t>(v)] = true;
  std::int64_t cut_edges = 0;
  for (const Edge& e : g.edges()) {
    if (mark[static_cast<std::size_t>(e.u)] !=
        mark[static_cast<std::size_t>(e.v)]) {
      ++cut_edges;
    }
  }
  result.cut_edges = cut_edges;
  if (result.volume_small > 0) {
    result.conductance = static_cast<double>(cut_edges) /
                         static_cast<double>(result.volume_small);
  }
  return result;
}

double conductance_of(const Graph& g, const std::vector<NodeId>& side) {
  std::vector<bool> mark(static_cast<std::size_t>(g.node_count()), false);
  std::int64_t volume = 0;
  for (NodeId v : side) {
    mark[static_cast<std::size_t>(v)] = true;
    volume += g.degree(v);
  }
  std::int64_t cut = 0;
  for (const Edge& e : g.edges()) {
    if (mark[static_cast<std::size_t>(e.u)] !=
        mark[static_cast<std::size_t>(e.v)]) {
      ++cut;
    }
  }
  const std::int64_t total = 2 * g.edge_count();
  const std::int64_t small_vol = std::min(volume, total - volume);
  if (small_vol <= 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(small_vol);
}

}  // namespace dcl

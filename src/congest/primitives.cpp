#include "congest/primitives.h"

#include <algorithm>
#include <memory>

#include "congest/engine.h"

namespace dcl {

namespace {

enum MessageTag : std::int32_t {
  tag_bfs = 1,
  tag_broadcast = 2,
  tag_upcast = 3,
};

/// BFS flood: a node joins the tree when it first hears a tag_bfs message
/// and re-floods once.
class BfsProgram : public NodeProgram {
 public:
  BfsProgram(NodeId self, NodeId root) : self_(self), root_(root) {}

  void on_start(RoundApi& api) override {
    if (self_ == root_) {
      depth_ = 0;
      parent_ = -1;
      flood(api);
    }
  }

  bool on_round(RoundApi& api, std::span<const Delivery> received) override {
    if (depth_ >= 0 || received.empty()) return false;
    // First delivery wins; ties broken by sender id (inbox is sorted).
    parent_ = received.front().from;
    depth_ = static_cast<int>(received.front().msg.aux) + 1;
    flood(api);
    return true;
  }

  NodeId parent() const { return parent_; }
  int depth() const { return depth_; }

 private:
  void flood(RoundApi& api) {
    for (const NodeId w : api.graph().neighbors(self_)) {
      api.send(w, Message{.tag = tag_bfs, .a = self_, .aux = depth_});
    }
  }

  NodeId self_;
  NodeId root_;
  NodeId parent_ = -1;
  int depth_ = -1;
};

}  // namespace

BfsTreeResult build_bfs_tree(const Graph& g, NodeId root) {
  BfsTreeResult result;
  const auto n = static_cast<std::size_t>(g.node_count());
  result.parent.assign(n, -1);
  result.depth.assign(n, -1);
  if (g.node_count() == 0) return result;
  CongestEngine engine(g, [root](NodeId v) {
    return std::make_unique<BfsProgram>(v, root);
  });
  result.rounds = engine.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& prog = static_cast<BfsProgram&>(engine.program(v));
    result.parent[static_cast<std::size_t>(v)] = prog.parent();
    result.depth[static_cast<std::size_t>(v)] = prog.depth();
  }
  return result;
}

BroadcastResult broadcast_value(const Graph& g, NodeId root,
                                std::int64_t value) {
  // A broadcast is a BFS flood carrying the value; costs are identical, so
  // reuse the tree construction and mark reachability.
  (void)value;
  const BfsTreeResult tree = build_bfs_tree(g, root);
  BroadcastResult result;
  result.rounds = tree.rounds;
  result.received.resize(tree.depth.size());
  for (std::size_t v = 0; v < tree.depth.size(); ++v) {
    result.received[v] = tree.depth[v] >= 0;
  }
  return result;
}

ConvergecastResult convergecast_sum(const Graph& g, NodeId root,
                                    const std::vector<std::int64_t>& values) {
  ConvergecastResult result;
  const BfsTreeResult tree = build_bfs_tree(g, root);
  // Upcast: process nodes bottom-up (deepest first); each sends one
  // aggregate message to its parent. Round cost: one message per tree edge
  // per level, levels drain in parallel — depth extra rounds.
  std::vector<NodeId> order;
  int max_depth = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (tree.depth[static_cast<std::size_t>(v)] >= 0) {
      order.push_back(v);
      max_depth = std::max(max_depth, tree.depth[static_cast<std::size_t>(v)]);
    }
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return tree.depth[static_cast<std::size_t>(a)] >
           tree.depth[static_cast<std::size_t>(b)];
  });
  std::vector<std::int64_t> acc(values.begin(), values.end());
  acc.resize(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId v : order) {
    const NodeId parent = tree.parent[static_cast<std::size_t>(v)];
    if (parent >= 0) acc[static_cast<std::size_t>(parent)] +=
        acc[static_cast<std::size_t>(v)];
  }
  result.sum = acc[static_cast<std::size_t>(root)];
  result.rounds = tree.rounds + max_depth;
  return result;
}

}  // namespace dcl

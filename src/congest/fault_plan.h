// Deterministic, replayable fault injection for the CONGEST simulators.
//
// The paper analyzes a fault-free synchronous network; a serving deployment
// does not get one. This module is the single source of truth for *which*
// deliveries misbehave: a seeded `FaultPlan` decides — as a pure function
// of (seed, logical clock, edge/phase key, message index, attempt number),
// with no wall-clock and no global RNG — whether an individual delivery is
// dropped, duplicated, or delayed by k rounds, and which nodes crash at
// which clock ticks. Identical (spec, traffic) pairs therefore produce
// identical fault histories at any thread count, and every decision the
// plan hands out is *recorded*, so a failing chaos run serializes to a
// text schedule that replays exactly (`serialize`/`deserialize`).
//
// Recovery semantics (shared by every consumer — see docs/ROBUSTNESS.md):
// deliveries ride a sequence-numbered ack protocol with a bounded retry
// budget. A dropped copy is retransmitted after an exponentially backed-off
// wait (attempt t costs 2^(t-1) extra rounds); a duplicated copy is
// discarded by the receiver's sequence filter; a delay of k ≤ max_delay
// rounds stays inside the ack timeout and is waited out. A message whose
// every attempt (1 + max_retries of them) is dropped is *lost* — the
// consumer must degrade explicitly. All recovery cost is charged to the
// `RoundLedger` retry counters; none of it is hidden.
//
// Two consumption styles:
//  * message-level (`CongestNetwork`, `CongestEngine`): `recover()` per
//    queued message, keyed by the directed edge;
//  * phase-level (the accounting-style pipeline phases of arb_list /
//    sparse_cc, which never materialize Message objects): `recover_phase()`
//    folds the per-message outcomes of a whole phase, keyed by the phase
//    label; `FaultSession` threads the clock and the detected-crash set
//    through the pipeline and wraps the ledger charges.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "congest/round_ledger.h"
#include "graph/graph.h"

namespace dcl {

/// A node failing permanently at a chosen logical clock tick (crash-stop:
/// from `clock` on it sends nothing, receives nothing, and never recovers).
struct CrashEvent {
  NodeId node = -1;
  std::int64_t clock = 0;
  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// The generative half of a fault plan: rates, budgets, seed, crashes.
/// Parsed from / printed to the one-line text form used by `dcl --faults`:
///
///   drop=0.1,dup=0.05,delay=0.02:3,retries=4,seed=7,crash=5@2,crash=9@0
///
/// `delay=RATE:K` delays the affected delivery by 1..K rounds (K defaults
/// to 1); `retries` is the per-message retransmission budget; `crash=V@C`
/// kills node V at clock C. Unknown keys and malformed values raise
/// `std::runtime_error` with a one-line message.
struct FaultSpec {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double delay_rate = 0.0;
  int max_delay = 1;
  int max_retries = 4;
  std::uint64_t seed = 1;
  std::vector<CrashEvent> crashes;

  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0 ||
           !crashes.empty();
  }

  static FaultSpec parse(const std::string& text);
  std::string to_text() const;
};

enum class FaultAction : std::uint8_t { deliver, drop, duplicate, delay };

const char* to_string(FaultAction action);

struct FaultDecision {
  FaultAction action = FaultAction::deliver;
  int delay = 0;  ///< rounds, for FaultAction::delay
};

/// One recorded non-deliver decision (the replay schedule entry).
struct FaultEvent {
  std::int64_t clock = 0;
  std::uint64_t key = 0;
  std::uint64_t index = 0;
  int attempt = 0;
  FaultDecision decision;
};

class FaultPlan {
 public:
  /// Inert plan: decides `deliver` for everything, `enabled() == false`.
  FaultPlan() = default;
  explicit FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {}

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }
  /// True when decisions come from a deserialized schedule instead of the
  /// seeded hash.
  bool replaying() const { return replay_; }

  /// Key for a directed communication edge (message-level consumers).
  static std::uint64_t edge_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  /// Key for an accounting-level phase (FNV-1a over the label, top bit set
  /// so phase keys can never collide with edge keys).
  static std::uint64_t label_key(std::string_view label);

  /// The fate of attempt `attempt` of message `index` on `key` at `clock`.
  /// Generative mode: a pure seeded hash, recorded into the schedule;
  /// replay mode: looked up in the deserialized schedule (absent = deliver).
  FaultDecision decide(std::int64_t clock, std::uint64_t key,
                       std::uint64_t index, int attempt);

  /// True when `v` has a crash event with crash clock <= `clock`.
  bool crashed_by(NodeId v, std::int64_t clock) const;
  const std::vector<CrashEvent>& crashes() const { return spec_.crashes; }

  /// Outcome of running the ack/retransmit protocol for one message.
  struct MessageOutcome {
    std::int64_t extra_rounds = 0;  ///< backoff waits + delivery delay
    int retransmissions = 0;        ///< extra copies sent after drops
    int duplicates = 0;             ///< extra copies from duplication
    bool lost = false;              ///< every attempt dropped
  };
  MessageOutcome recover(std::int64_t clock, std::uint64_t key,
                         std::uint64_t index);

  /// Folded outcomes of a whole phase's `messages` deliveries. Edges run in
  /// parallel, so the phase's recovery cost in rounds is the *maximum*
  /// per-message extra-rounds, while retransmitted copies sum.
  struct PhaseFaults {
    std::int64_t retry_rounds = 0;
    std::uint64_t retransmitted = 0;  ///< retransmissions + duplicate copies
    std::uint64_t dropped = 0;        ///< deliveries that needed >= 1 retry
    std::uint64_t lost = 0;           ///< beyond the retry budget
  };
  PhaseFaults recover_phase(std::int64_t clock, std::uint64_t key,
                            std::uint64_t messages);

  /// Every non-deliver decision handed out so far, in decision order.
  const std::vector<FaultEvent>& schedule() const { return schedule_; }

  /// Text schedule: the spec line plus every recorded event. A plan
  /// deserialized from this output replays those exact decisions.
  void serialize(std::ostream& out) const;
  static FaultPlan deserialize(std::istream& in);

 private:
  FaultSpec spec_;
  bool replay_ = false;
  std::vector<FaultEvent> schedule_;
  // (clock, key, index, attempt) -> decision, replay mode only. Chaos
  // schedules are small (they hold faults, not traffic), so an ordered map
  // keeps the format trivially diffable without a perf cost.
  std::map<std::tuple<std::int64_t, std::uint64_t, std::uint64_t, int>,
           FaultDecision>
      replay_events_;
};

/// Mutable per-run fault state threaded through a listing pipeline: the
/// logical phase clock, the set of crashes detected so far, and the loss
/// tally. One session per algorithm run; `plan == nullptr` (or a disabled
/// plan) makes every hook a no-op so the fault plane costs nothing when
/// off.
struct FaultSession {
  FaultPlan* plan = nullptr;
  std::int64_t clock = 0;
  std::vector<char> dead;  ///< detected crashed nodes (sized on first use)
  std::uint64_t lost_messages = 0;
  std::uint64_t crash_timeouts = 0;  ///< missed-phase timeout rounds charged

  bool active() const {
    return plan != nullptr && (plan->enabled() || plan->replaying());
  }
  bool is_dead(NodeId v) const {
    return static_cast<std::size_t>(v) < dead.size() &&
           dead[static_cast<std::size_t>(v)] != 0;
  }
  std::size_t dead_count() const;

  /// Marks every node whose crash clock has passed as dead; returns the
  /// *newly* detected ones in ascending node order. Detection is the
  /// missed-phase timeout of docs/ROBUSTNESS.md: the caller charges one
  /// timeout round per non-empty detection sweep via `charge_crash_timeout`.
  std::vector<NodeId> detect_crashes(NodeId n);

  /// Charges the one-round missed-phase timeout that detected `newly_dead`.
  void charge_crash_timeout(RoundLedger& ledger, std::size_t newly_dead);

  /// Charges `label` exactly as `ledger.charge_exchange` would, then — with
  /// an active plan — injects faults into the phase's messages and charges
  /// the recovery as a separate "<label> [retry]" entry feeding the retry
  /// counters. Advances the phase clock. Returns the permanently lost
  /// message count (0 when recovery succeeded or faults are off).
  std::uint64_t charge_exchange(RoundLedger& ledger, std::string label,
                                double rounds, std::uint64_t messages);

  /// Fault injection for a phase whose base cost was already charged by a
  /// callee (e.g. broadcast_listing): only the retry entry and the clock
  /// advance. Losses beyond the retry budget escalate to a charged
  /// "<label> [resend]" phase (accounting-level pipelines keep their exact
  /// output; the degradation is the extra cost — see docs/ROBUSTNESS.md).
  /// Returns the lost count.
  std::uint64_t inject(RoundLedger& ledger, const std::string& label,
                       std::uint64_t messages);
};

}  // namespace dcl

// Round accounting shared by every simulated algorithm.
//
// Round costs enter the ledger through three channels, mirroring the three
// fidelity levels documented in DESIGN.md §4:
//  * `charge_exchange` — message-level phases whose cost is the exact
//    per-edge congestion measured by the simulator;
//  * `charge_routing`  — intra-cluster routing batches charged by the
//    load/bandwidth formula of Theorem 2.4;
//  * `charge_analytic` — cited-infrastructure costs charged by theorem
//    statement (expander decomposition per Theorem 2.3, ID assignment per
//    Lemma 2.5).
// Every experiment reports the total and can print the audited breakdown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dcl {

enum class CostKind { exchange, routing, analytic };

const char* to_string(CostKind kind);

struct CostEntry {
  std::string label;
  CostKind kind = CostKind::exchange;
  double rounds = 0.0;
  std::uint64_t messages = 0;
};

class RoundLedger {
 public:
  void charge_exchange(std::string label, double rounds,
                       std::uint64_t messages) {
    entries_.push_back(
        {std::move(label), CostKind::exchange, rounds, messages});
  }
  void charge_routing(std::string label, double rounds,
                      std::uint64_t messages) {
    entries_.push_back({std::move(label), CostKind::routing, rounds, messages});
  }
  void charge_analytic(std::string label, double rounds) {
    entries_.push_back({std::move(label), CostKind::analytic, rounds, 0});
  }
  /// Recovery cost of the ack/retransmit protocol (fault plane): `rounds`
  /// backoff/delay rounds and `retransmitted` extra message copies. Feeds
  /// both the normal exchange totals and the dedicated retry counters, so
  /// recovery is visible in the audited breakdown *and* separable from the
  /// fault-free cost.
  void charge_retry(std::string label, double rounds,
                    std::uint64_t retransmitted) {
    retry_rounds_ += rounds;
    retransmitted_messages_ += retransmitted;
    entries_.push_back(
        {std::move(label), CostKind::exchange, rounds, retransmitted});
  }
  /// Messages the retry budget could not save (consumer degraded).
  void note_lost(std::uint64_t lost) { lost_messages_ += lost; }

  double total_rounds() const;
  std::uint64_t total_messages() const;
  double rounds_of_kind(CostKind kind) const;

  double retry_rounds() const { return retry_rounds_; }
  std::uint64_t retransmitted_messages() const {
    return retransmitted_messages_;
  }
  std::uint64_t lost_messages() const { return lost_messages_; }

  const std::vector<CostEntry>& entries() const { return entries_; }

  /// Rounds aggregated by label (phases repeat across iterations).
  /// NOTE: this view folds entries of *different kinds* that share a label
  /// into one number — use `breakdown()` when the exchange/routing/analytic
  /// split matters (it does for the audited printout and the run report).
  std::map<std::string, double> rounds_by_label() const;

  /// One (label, kind) aggregate of the audited breakdown.
  struct BreakdownRow {
    std::string label;
    CostKind kind = CostKind::exchange;
    double rounds = 0.0;
    std::uint64_t messages = 0;
  };
  /// Entries aggregated by (label, kind), sorted by (label, kind): unlike
  /// `rounds_by_label`, a label that repeats across kinds (e.g. an
  /// analytic estimate later re-charged as a measured exchange) keeps one
  /// row per kind, and messages ride along.
  std::vector<BreakdownRow> breakdown() const;

  /// Appends all entries of `other`.
  void merge(const RoundLedger& other);

  void print_breakdown(std::ostream& out) const;

  /// The audited (label, kind) breakdown with messages, label column sized
  /// to the longest label (print_breakdown's fixed setw(42) truncates the
  /// alignment for long phase labels) and stream format flags restored on
  /// exit instead of leaking std::fixed into the caller's stream.
  void print_audited(std::ostream& out) const;

 private:
  std::vector<CostEntry> entries_;
  double retry_rounds_ = 0.0;
  std::uint64_t retransmitted_messages_ = 0;
  std::uint64_t lost_messages_ = 0;
};

}  // namespace dcl

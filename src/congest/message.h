// The O(log n)-bit message type of the CONGEST / CONGESTED CLIQUE models.
//
// In both models a message carries O(log n) bits, i.e. a constant number of
// node identifiers plus a constant number of small control fields. We fix
// the layout at: one tag, up to three node ids, and one integer auxiliary
// value — enough for every primitive in the paper ("edge {u,v}", "is w your
// neighbor?", "node w joins part j", ...). Anything larger must be split
// into multiple messages, which is exactly what the round accounting is
// meant to capture.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace dcl {

struct Message {
  std::int32_t tag = 0;
  NodeId a = -1;
  NodeId b = -1;
  NodeId c = -1;
  std::int64_t aux = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// A received message together with its sender.
struct Delivery {
  NodeId from = -1;
  Message msg;
};

}  // namespace dcl

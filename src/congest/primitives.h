// Standard CONGEST primitives built on the round-driven engine.
//
// These are the folklore building blocks any CONGEST deployment carries —
// BFS-tree construction, global broadcast, convergecast aggregation — with
// their textbook O(D)-round behaviour. The clique listers use their costs
// (e.g. the counting aggregation in core/detection.h); they are exposed as
// a library so downstream users of the simulator can compose their own
// algorithms, and they serve as executable documentation of the engine's
// semantics (see tests/test_primitives.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dcl {

struct BfsTreeResult {
  std::vector<NodeId> parent;  ///< parent[v]; -1 for the root / unreachable
  std::vector<int> depth;      ///< hop distance; -1 if unreachable
  std::int64_t rounds = 0;     ///< simulated rounds (≈ eccentricity(root)+1)
};

/// Distributed BFS flood from `root`, executed message-by-message on the
/// engine: each node learns its parent and depth.
BfsTreeResult build_bfs_tree(const Graph& g, NodeId root);

struct BroadcastResult {
  std::vector<bool> received;  ///< whether the value reached each node
  std::int64_t rounds = 0;
};

/// Floods one O(log n)-bit value from `root` to every reachable node.
BroadcastResult broadcast_value(const Graph& g, NodeId root,
                                std::int64_t value);

struct ConvergecastResult {
  std::int64_t sum = 0;        ///< at the root: Σ values over its component
  std::int64_t rounds = 0;     ///< BFS + upcast rounds
};

/// Sums one value per node up a BFS tree to `root` (leaf-to-root upcast,
/// one aggregate message per tree edge).
ConvergecastResult convergecast_sum(const Graph& g, NodeId root,
                                    const std::vector<std::int64_t>& values);

}  // namespace dcl

// Flat delivery arena shared by the CONGEST / CONGESTED CLIQUE simulators
// and the round-driven engine.
//
// A communication phase queues (from, to, msg) triples in arbitrary send
// order; the contract of `inbox(v)` is "messages for v ordered by (sender,
// send order)". The old implementation materialized one std::vector per
// recipient and ran a std::stable_sort per phase — per-phase allocation
// churn on n vectors plus an O(M log M) sort on the hot delivery path.
//
// The per-recipient receive counts the networks already track make the sort
// unnecessary: delivery is a two-pass LSD counting sort into ONE contiguous
// `Delivery` arena. Counting sort is stable by construction, so scattering
// by sender first and by recipient second leaves every inbox ordered by
// (sender, send order) — bit-identical to the old stable_sort — with zero
// per-phase allocations once the arena has warmed up. `inbox(v)` is an O(1)
// offset read returned as a std::span over the arena.
//
// Sparse phases (ROADMAP lever f): the counting passes are
// generation-stamped instead of zero-filled. A phase that touches d
// distinct endpoints histograms and prefix-sums only those d slots (a
// stale stamp reads as "count 0 / empty inbox"), so delivery costs
// O(traffic + d log d) instead of two O(n) fills — the regime that matters
// on million-node graphs where a phase moves a handful of messages. Dense
// phases (d ≥ n/4) fall back to the classic full passes, which stamp every
// slot in one sweep and avoid the sort of the touched list; both paths
// produce byte-identical arenas.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.h"

namespace dcl {

/// A message sitting in a network's send queue.
struct QueuedMessage {
  NodeId from;
  NodeId to;
  Message msg;
};

class DeliveryArena {
 public:
  /// Sizes the offset tables for `n` recipients and empties all inboxes.
  void reset(NodeId n) {
    n_ = n;
    const auto slots = static_cast<std::size_t>(n);
    send_stamp_.assign(slots, 0);
    send_cursor_.assign(slots, 0);
    recv_stamp_.assign(slots, 0);
    recv_begin_.assign(slots, 0);
    recv_count_.assign(slots, 0);
    recv_cursor_.assign(slots, 0);
    generation_ = 0;
    arena_.clear();
    valid_ = true;
  }

  /// Empties every inbox without releasing memory (phase start: the
  /// previous phase's deliveries stop being visible).
  void invalidate() { valid_ = false; }

  /// Delivers `queue`, leaving each inbox ordered by (sender, send order).
  /// Two stable counting-sort passes: by sender into scratch, then by
  /// recipient into the arena. Stamped histograms: cost is
  /// O(|queue| + distinct·log distinct), never O(n), on sparse phases.
  // dcl-hot
  void deliver(std::span<const QueuedMessage> queue) {
    // dcl-lint: allow(sem-hot-alloc): scratch warms once, then never regrows
    scratch_.resize(queue.size());
    const std::uint64_t gen = ++generation_;
    touched_.clear();
    for (const QueuedMessage& q : queue) {
      const auto s = static_cast<std::size_t>(q.from);
      if (send_stamp_[s] != gen) {
        send_stamp_[s] = gen;
        send_cursor_[s] = 0;
        // dcl-lint: allow(sem-hot-alloc): n-bounded; capacity persists
        touched_.push_back(q.from);
      }
      ++send_cursor_[s];
    }
    if (dense(touched_.size())) {
      // Dense fallback: one full histogram sweep beats sorting the
      // touched list. Every slot is re-stamped so the two paths share
      // the same cursor state.
      std::uint64_t offset = 0;
      for (std::size_t s = 0; s < send_stamp_.size(); ++s) {
        const std::uint64_t count =
            send_stamp_[s] == gen ? send_cursor_[s] : 0;
        send_stamp_[s] = gen;
        send_cursor_[s] = offset;
        offset += count;
      }
    } else {
      // Contiguous sender regions must ascend in sender id for the final
      // inbox order to match the dense execution bit for bit.
      std::sort(touched_.begin(), touched_.end());
      std::uint64_t offset = 0;
      for (const NodeId v : touched_) {
        const auto s = static_cast<std::size_t>(v);
        const std::uint64_t count = send_cursor_[s];
        send_cursor_[s] = offset;
        offset += count;
      }
    }
    for (const QueuedMessage& q : queue) {
      scratch_[send_cursor_[static_cast<std::size_t>(q.from)]++] = q;
    }
    deliver_grouped_by_sender(scratch_);
  }

  /// Fast path when `queue` is already grouped by sender in increasing
  /// sender order (the engine collects node queues in node order): one
  /// stable counting-sort pass by recipient.
  // dcl-hot
  void deliver_grouped_by_sender(std::span<const QueuedMessage> queue) {
    const std::uint64_t gen = ++generation_;
    touched_.clear();
    for (const QueuedMessage& q : queue) {
      const auto r = static_cast<std::size_t>(q.to);
      if (recv_stamp_[r] != gen) {
        recv_stamp_[r] = gen;
        recv_count_[r] = 0;
        // dcl-lint: allow(sem-hot-alloc): n-bounded; capacity persists
        touched_.push_back(q.to);
      }
      ++recv_count_[r];
    }
    // dcl-lint: allow(sem-hot-alloc): arena warms once (see class comment)
    arena_.resize(queue.size());
    if (dense(touched_.size())) {
      std::uint64_t offset = 0;
      for (std::size_t r = 0; r < recv_stamp_.size(); ++r) {
        const std::uint64_t count = recv_stamp_[r] == gen ? recv_count_[r] : 0;
        recv_stamp_[r] = gen;
        recv_count_[r] = count;
        recv_begin_[r] = offset;
        recv_cursor_[r] = offset;
        offset += count;
      }
    } else {
      // Recipient region order does not affect any single inbox's
      // contents (each is filled from the sender-ordered queue), but
      // sorting keeps the arena layout identical to the dense path.
      std::sort(touched_.begin(), touched_.end());
      std::uint64_t offset = 0;
      for (const NodeId v : touched_) {
        const auto r = static_cast<std::size_t>(v);
        recv_begin_[r] = offset;
        recv_cursor_[r] = offset;
        offset += recv_count_[r];
      }
    }
    for (const QueuedMessage& q : queue) {
      arena_[recv_cursor_[static_cast<std::size_t>(q.to)]++] = {q.from, q.msg};
    }
    valid_ = true;
  }

  /// Messages delivered to `v`, ordered by (sender, send order). Empty
  /// between invalidate() and the next deliver call, and for every
  /// recipient the latest delivery did not touch (stale stamp). The span
  /// is valid until the next deliver/reset.
  std::span<const Delivery> inbox(NodeId v) const {
    const auto r = static_cast<std::size_t>(v);
    if (!valid_ || recv_stamp_[r] != generation_) return {};
    return {arena_.data() + recv_begin_[r],
            static_cast<std::size_t>(recv_count_[r])};
  }

  /// Total deliveries in the arena (0 when invalidated).
  std::size_t delivered_count() const { return valid_ ? arena_.size() : 0; }

 private:
  /// Above this touched fraction the full sweep is cheaper than sorting
  /// the touched list.
  bool dense(std::size_t touched) const {
    return touched * 4 >= static_cast<std::size_t>(n_);
  }

  NodeId n_ = 0;
  bool valid_ = false;
  std::uint64_t generation_ = 0;
  std::vector<Delivery> arena_;
  std::vector<QueuedMessage> scratch_;
  // Cursor/offset tables are positions into a phase's traffic — edge-scale
  // and beyond (a Lenzen routing phase moves O(m) messages), so 64-bit.
  // Only the stamps were 64-bit before; a >2^32-message phase would have
  // wrapped the 32-bit cursors and scattered deliveries on top of each
  // other.
  std::vector<NodeId> touched_;            // distinct endpoints, this pass
  std::vector<std::uint64_t> send_stamp_;  // sender-pass generation stamps
  std::vector<std::uint64_t> send_cursor_; // sender histogram, then cursors
  std::vector<std::uint64_t> recv_stamp_;  // recipient-pass stamps
  std::vector<std::uint64_t> recv_begin_;  // per-recipient arena offsets
  std::vector<std::uint64_t> recv_count_;  // per-recipient inbox sizes
  std::vector<std::uint64_t> recv_cursor_; // scatter cursors
};

}  // namespace dcl

// Flat delivery arena shared by the CONGEST / CONGESTED CLIQUE simulators
// and the round-driven engine.
//
// A communication phase queues (from, to, msg) triples in arbitrary send
// order; the contract of `inbox(v)` is "messages for v ordered by (sender,
// send order)". The old implementation materialized one std::vector per
// recipient and ran a std::stable_sort per phase — per-phase allocation
// churn on n vectors plus an O(M log M) sort on the hot delivery path.
//
// The per-recipient receive counts the networks already track make the sort
// unnecessary: delivery is a two-pass LSD counting sort into ONE contiguous
// `Delivery` arena. Counting sort is stable by construction, so scattering
// by sender first and by recipient second leaves every inbox ordered by
// (sender, send order) — bit-identical to the old stable_sort — in O(M + n)
// with zero per-phase allocations once the arena has warmed up. `inbox(v)`
// is a prefix-sum offset pair returned as a std::span over the arena.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.h"

namespace dcl {

/// A message sitting in a network's send queue.
struct QueuedMessage {
  NodeId from;
  NodeId to;
  Message msg;
};

class DeliveryArena {
 public:
  /// Sizes the offset tables for `n` recipients and empties all inboxes.
  void reset(NodeId n) {
    n_ = n;
    counts_.assign(static_cast<std::size_t>(n) + 1, 0);
    offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    arena_.clear();
    valid_ = true;
  }

  /// Empties every inbox without releasing memory (phase start: the
  /// previous phase's deliveries stop being visible).
  void invalidate() { valid_ = false; }

  /// Delivers `queue`, leaving each inbox ordered by (sender, send order).
  /// Two stable counting-sort passes: by sender into scratch, then by
  /// recipient into the arena.
  void deliver(std::span<const QueuedMessage> queue) {
    scratch_.resize(queue.size());
    std::fill(counts_.begin(), counts_.end(), 0);
    for (const QueuedMessage& q : queue) {
      ++counts_[static_cast<std::size_t>(q.from) + 1];
    }
    for (std::size_t v = 1; v <= static_cast<std::size_t>(n_); ++v) {
      counts_[v] += counts_[v - 1];
    }
    for (const QueuedMessage& q : queue) {
      scratch_[counts_[static_cast<std::size_t>(q.from)]++] = q;
    }
    deliver_grouped_by_sender(scratch_);
  }

  /// Fast path when `queue` is already grouped by sender in increasing
  /// sender order (the engine collects node queues in node order): one
  /// stable counting-sort pass by recipient.
  void deliver_grouped_by_sender(std::span<const QueuedMessage> queue) {
    std::fill(offsets_.begin(), offsets_.end(), 0);
    for (const QueuedMessage& q : queue) {
      ++offsets_[static_cast<std::size_t>(q.to) + 1];
    }
    for (std::size_t v = 1; v <= static_cast<std::size_t>(n_); ++v) {
      offsets_[v] += offsets_[v - 1];
    }
    arena_.resize(queue.size());
    // Scatter positions; offsets_ is restored to begin-offsets afterwards.
    cursor_.assign(offsets_.begin(), offsets_.end() - 1);
    for (const QueuedMessage& q : queue) {
      arena_[cursor_[static_cast<std::size_t>(q.to)]++] = {q.from, q.msg};
    }
    valid_ = true;
  }

  /// Messages delivered to `v`, ordered by (sender, send order). Empty
  /// between invalidate() and the next deliver call. The span is valid
  /// until the next deliver/reset.
  std::span<const Delivery> inbox(NodeId v) const {
    if (!valid_) return {};
    const auto b = offsets_[static_cast<std::size_t>(v)];
    const auto e = offsets_[static_cast<std::size_t>(v) + 1];
    return {arena_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Total deliveries in the arena (0 when invalidated).
  std::size_t delivered_count() const { return valid_ ? arena_.size() : 0; }

 private:
  NodeId n_ = 0;
  bool valid_ = false;
  std::vector<Delivery> arena_;
  std::vector<QueuedMessage> scratch_;
  std::vector<std::uint32_t> counts_;   // sender-pass histogram/offsets
  std::vector<std::uint32_t> offsets_;  // final per-recipient begin offsets
  std::vector<std::uint32_t> cursor_;   // scatter cursors (recipient pass)
};

}  // namespace dcl

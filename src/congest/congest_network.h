// Synchronous CONGEST network simulator.
//
// Model (paper, footnote 1): "the n-node graph G is the communication graph
// and messages of O(log n) bits can be sent in synchronous rounds" — one
// message per edge per direction per round.
//
// Algorithms are written as *phases*: every node enqueues the messages it
// wants to send to specific neighbors, then the network delivers everything
// and charges exactly
//
//     rounds(phase) = max over directed edges (u→v) of #messages queued on it
//
// which is the precise CONGEST cost of executing that communication pattern
// (each directed edge delivers one message per round; all edges progress in
// parallel). This is how the paper itself accounts its phases ("sending each
// of its neighbors a chunk of at most O(n^{d-1/4}) of its outgoing edges").
//
// A step-driven `NodeProgram` API (engine.h) is layered on top for
// algorithms that are naturally expressed round-by-round.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "congest/delivery_arena.h"
#include "congest/fault_plan.h"
#include "congest/message.h"
#include "congest/round_ledger.h"
#include "graph/graph.h"

namespace dcl {

class CongestNetwork {
 public:
  explicit CongestNetwork(const Graph& g);

  const Graph& graph() const { return *g_; }
  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }

  /// Starts a communication phase; clears all inboxes.
  void begin_phase(std::string label);

  /// Enqueues a message from `from` to its neighbor `to`. Throws if {from,to}
  /// is not an edge of the communication graph — CONGEST nodes can only talk
  /// to neighbors.
  void send(NodeId from, NodeId to, const Message& msg);

  /// Delivers all queued messages, charges the ledger, returns the phase's
  /// round cost (max per-directed-edge congestion; 0 if nothing was sent).
  std::int64_t end_phase();

  /// Messages delivered to `v` in the last completed phase, ordered by
  /// (sender, send order) for determinism. A view into the flat delivery
  /// arena; valid until the next end_phase().
  std::span<const Delivery> inbox(NodeId v) const { return arena_.inbox(v); }

  std::uint64_t phase_count() const { return phase_count_; }

  /// Attaches a fault plan: from the next phase on, every queued message
  /// runs the ack/retransmit recovery protocol in end_phase(). Recoverable
  /// faults leave the inboxes bit-identical (duplicates are discarded by
  /// the sequence filter, delays are waited out, drops are retransmitted)
  /// while their cost lands in the ledger retry counters; messages lost
  /// beyond the retry budget are withheld from the inbox and counted.
  /// `plan == nullptr` detaches.
  void attach_faults(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* faults() const { return faults_; }

  /// Messages permanently lost (retry budget exhausted) since construction.
  std::uint64_t lost_messages() const { return lost_messages_; }
  /// Logical fault clock: the number of faulted phases completed.
  std::int64_t fault_clock() const { return fault_clock_; }

 private:
  const Graph* g_;
  RoundLedger ledger_;
  std::string phase_label_;
  bool phase_open_ = false;
  std::uint64_t phase_count_ = 0;
  std::vector<QueuedMessage> queue_;
  // Congestion counters per directed edge: slot 2e   = lower→higher endpoint,
  //                                        slot 2e+1 = higher→lower.
  // Invariant: all-zero outside an open phase — end_phase() zeroes exactly
  // the slots the phase touched (`touched_slots_`), so a sparse phase costs
  // O(traffic) instead of an O(2m) fill per phase.
  std::vector<std::int64_t> edge_load_;
  std::vector<std::size_t> touched_slots_;
  DeliveryArena arena_;
  FaultPlan* faults_ = nullptr;
  std::int64_t fault_clock_ = 0;
  std::uint64_t lost_messages_ = 0;
  std::vector<QueuedMessage> surviving_;  ///< scratch for faulted phases
  // Telemetry span of the currently open phase (-1 when telemetry is off
  // or no phase is open); phases are strictly begin/end bracketed, so the
  // span nests under whatever pipeline span is open.
  std::int32_t phase_span_ = -1;
};

}  // namespace dcl

#include "congest/engine.h"

#include <algorithm>
#include <stdexcept>

#include "congest/delivery_arena.h"

namespace dcl {

void RoundApi::send(NodeId to, const Message& msg) {
  const auto nbrs = g_->neighbors(self_);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) {
    throw std::invalid_argument("RoundApi: send to non-neighbor");
  }
  const auto pos = static_cast<std::size_t>(it - nbrs.begin());
  if (sent_to_[pos]) {
    throw std::logic_error(
        "RoundApi: CONGEST allows one message per neighbor per round");
  }
  sent_to_[pos] = true;
  outgoing_.emplace_back(to, msg);
}

CongestEngine::CongestEngine(const Graph& g, const ProgramFactory& factory)
    : g_(&g) {
  programs_.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs_.push_back(factory(v));
  }
}

std::int64_t CongestEngine::run(std::int64_t max_rounds) {
  const NodeId n = g_->node_count();
  std::vector<RoundApi> apis;
  apis.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) apis.emplace_back(v, *g_);

  for (NodeId v = 0; v < n; ++v) {
    programs_[static_cast<std::size_t>(v)]->on_start(apis[static_cast<std::size_t>(v)]);
  }

  // Flat round buffers, reused across rounds: one queue of outgoing
  // messages (collected in node order, so it arrives grouped by sender) and
  // one delivery arena replacing the per-round vector-of-vectors inboxes.
  DeliveryArena arena;
  arena.reset(n);
  std::vector<QueuedMessage> round_queue;
  std::int64_t round = 0;
  std::uint64_t messages = 0;
  while (round < max_rounds) {
    // Deliver what nodes queued (either in on_start or last on_round).
    round_queue.clear();
    for (NodeId v = 0; v < n; ++v) {
      auto& api = apis[static_cast<std::size_t>(v)];
      for (auto& [to, msg] : api.outgoing_) {
        round_queue.push_back({v, to, msg});
      }
      api.outgoing_.clear();
      std::fill(api.sent_to_.begin(), api.sent_to_.end(), false);
    }
    messages += round_queue.size();
    // Collection order is (sender, send order); the counting-sort pass by
    // recipient keeps each inbox sorted by sender, as before.
    arena.deliver_grouped_by_sender(round_queue);

    bool any_active = false;
    for (NodeId v = 0; v < n; ++v) {
      auto& api = apis[static_cast<std::size_t>(v)];
      api.round_ = round;
      if (programs_[static_cast<std::size_t>(v)]->on_round(api,
                                                           arena.inbox(v))) {
        any_active = true;
      }
    }
    ++round;
    // Quiescence: this round's deliveries were consumed by the on_round
    // calls above, so once every node is done and nothing new is queued the
    // run is over — no extra charged round for in-flight bookkeeping.
    bool queued = false;
    for (const auto& api : apis) queued |= !api.outgoing_.empty();
    if (!any_active && !queued) break;
  }
  ledger_.charge_exchange("engine-run", static_cast<double>(round), messages);
  return round;
}

}  // namespace dcl

#include "congest/engine.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "common/telemetry.h"
#include "congest/delivery_arena.h"

namespace dcl {

namespace {

std::string stall_message(std::int64_t round, std::int64_t in_flight,
                          std::int64_t last_progress_round) {
  return "CongestEngine: watchdog: no quiescence after " +
         std::to_string(round) + " rounds (" + std::to_string(in_flight) +
         " messages in flight, last progress at round " +
         std::to_string(last_progress_round) + ")";
}

}  // namespace

EngineStallError::EngineStallError(std::int64_t round_, std::int64_t in_flight_,
                                   std::int64_t last_progress_round_)
    : std::runtime_error(
          stall_message(round_, in_flight_, last_progress_round_)),
      round(round_),
      in_flight(in_flight_),
      last_progress_round(last_progress_round_) {}

void RoundApi::send(NodeId to, const Message& msg) {
  const auto nbrs = g_->neighbors(self_);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) {
    throw std::invalid_argument("RoundApi: send to non-neighbor");
  }
  const auto pos = static_cast<std::size_t>(it - nbrs.begin());
  if (sent_to_[pos]) {
    throw std::logic_error(
        "RoundApi: CONGEST allows one message per neighbor per round");
  }
  sent_to_[pos] = true;
  outgoing_.emplace_back(to, msg);
}

CongestEngine::CongestEngine(const Graph& g, const ProgramFactory& factory)
    : g_(&g) {
  programs_.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs_.push_back(factory(v));
  }
}

std::int64_t CongestEngine::run(std::int64_t max_rounds) {
  // Telemetry: one span per engine run; the round loop below is sequential
  // by construction, so the per-round arena high-water gauge is exact.
  TraceCollector* const telemetry = active_telemetry();
  SpanGuard run_span(telemetry, "engine-run", "congest");
  std::int64_t arena_hwm = 0;
  const NodeId n = g_->node_count();
  std::vector<RoundApi> apis;
  apis.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) apis.emplace_back(v, *g_);

  for (NodeId v = 0; v < n; ++v) {
    programs_[static_cast<std::size_t>(v)]->on_start(apis[static_cast<std::size_t>(v)]);
  }

  // Flat round buffers, reused across rounds: one queue of outgoing
  // messages (collected in node order, so it arrives grouped by sender) and
  // one delivery arena replacing the per-round vector-of-vectors inboxes.
  DeliveryArena arena;
  arena.reset(n);
  std::vector<QueuedMessage> round_queue;
  // Fault mode only: messages in flight, keyed by the absolute round at
  // which they arrive (retransmission backoff and delay-by-k both turn into
  // late delivery — the engine literally executes the recovery rounds, so
  // their cost is charged through the run length itself).
  std::map<std::int64_t, std::vector<QueuedMessage>> delayed;
  const bool faulting =
      faults_ != nullptr && (faults_->enabled() || faults_->replaying());
  std::vector<char> dead(static_cast<std::size_t>(n), 0);
  std::uint64_t retransmitted = 0;
  std::uint64_t lost = 0;
  std::int64_t round = 0;
  std::int64_t last_progress = -1;
  std::uint64_t messages = 0;
  while (round < max_rounds) {
    if (faulting) {
      for (const CrashEvent& c : faults_->crashes()) {
        if (c.clock <= round && c.node >= 0 && c.node < n) {
          dead[static_cast<std::size_t>(c.node)] = 1;
        }
      }
    }
    // Deliver what nodes queued (either in on_start or last on_round).
    round_queue.clear();
    for (NodeId v = 0; v < n; ++v) {
      auto& api = apis[static_cast<std::size_t>(v)];
      if (!dead[static_cast<std::size_t>(v)]) {
        for (auto& [to, msg] : api.outgoing_) {
          round_queue.push_back({v, to, msg});
        }
      }
      api.outgoing_.clear();
      std::fill(api.sent_to_.begin(), api.sent_to_.end(), false);
    }
    messages += round_queue.size();
    if (faulting) {
      // Run the ack/retransmit protocol per fresh message; survivors arrive
      // `extra_rounds` late. Duplicated copies are suppressed by the
      // receiver's sequence filter — counted, never delivered twice.
      for (std::size_t i = 0; i < round_queue.size(); ++i) {
        const QueuedMessage& qm = round_queue[i];
        const FaultPlan::MessageOutcome o = faults_->recover(
            round, FaultPlan::edge_key(qm.from, qm.to),
            static_cast<std::uint64_t>(i));
        retransmitted += static_cast<std::uint64_t>(o.retransmissions) +
                         static_cast<std::uint64_t>(o.duplicates);
        if (o.lost) {
          ++lost;
        } else {
          delayed[round + o.extra_rounds].push_back(qm);
        }
      }
      // This round's arrivals: everything whose delivery round has come,
      // minus deliveries addressed to nodes that have since crashed.
      // Re-grouping by sender keeps inboxes sender-sorted (send order is
      // preserved within a sender — stable sort).
      round_queue.clear();
      if (const auto it = delayed.find(round); it != delayed.end()) {
        for (const QueuedMessage& qm : it->second) {
          if (!dead[static_cast<std::size_t>(qm.to)]) {
            round_queue.push_back(qm);
          }
        }
        delayed.erase(it);
      }
      std::stable_sort(round_queue.begin(), round_queue.end(),
                       [](const QueuedMessage& a, const QueuedMessage& b) {
                         return a.from < b.from;
                       });
    }
    // Collection order is (sender, send order); the counting-sort pass by
    // recipient keeps each inbox sorted by sender, as before.
    arena.deliver_grouped_by_sender(round_queue);
    arena_hwm =
        std::max(arena_hwm, static_cast<std::int64_t>(round_queue.size()));
    if (!round_queue.empty()) last_progress = round;

    bool any_active = false;
    for (NodeId v = 0; v < n; ++v) {
      auto& api = apis[static_cast<std::size_t>(v)];
      api.round_ = round;
      if (dead[static_cast<std::size_t>(v)]) continue;  // crash-stop
      if (programs_[static_cast<std::size_t>(v)]->on_round(api,
                                                           arena.inbox(v))) {
        any_active = true;
      }
    }
    ++round;
    // Quiescence: this round's deliveries were consumed by the on_round
    // calls above, so once every node is done and nothing new is queued the
    // run is over — no extra charged round for in-flight bookkeeping.
    bool queued = false;
    for (const auto& api : apis) queued |= !api.outgoing_.empty();
    if (!any_active && !queued && delayed.empty()) break;
    if (round >= max_rounds) {
      std::int64_t in_flight = 0;
      for (const auto& api : apis) {
        in_flight += static_cast<std::int64_t>(api.outgoing_.size());
      }
      for (const auto& [when, batch] : delayed) {
        in_flight += static_cast<std::int64_t>(batch.size());
      }
      throw EngineStallError(round, in_flight, last_progress);
    }
  }
  ledger_.charge_exchange("engine-run", static_cast<double>(round), messages);
  if (retransmitted > 0) {
    // The recovery *rounds* are inside the run length above; this entry
    // surfaces the extra copies in the retry counters without re-charging
    // rounds.
    ledger_.charge_retry("engine-run [retry]", 0.0, retransmitted);
  }
  if (lost > 0) {
    lost_messages_ += lost;
    ledger_.note_lost(lost);
  }
  if (telemetry != nullptr) {
    run_span.sync_to(ledger_.total_rounds(), ledger_.total_messages());
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("engine.runs", 1);
    metrics.counter_add("engine.rounds", static_cast<std::uint64_t>(round));
    metrics.counter_add("engine.messages", messages);
    metrics.counter_add("engine.retransmitted", retransmitted);
    metrics.counter_add("engine.lost", lost);
    metrics.gauge_max("engine.arena_hwm", arena_hwm);
  }
  return round;
}

}  // namespace dcl

// Round-driven CONGEST execution engine.
//
// For algorithms that are naturally written round-by-round (flooding,
// convergecast, the sequential per-cluster probing loop of the K4
// algorithm), this engine runs per-node programs under the strict CONGEST
// rule: at most one O(log n)-bit message per neighbor per round. The
// batched-phase API in congest_network.h is equivalent in cost for bulk
// patterns; this engine exists for genuinely adaptive interactions and to
// pin the simulator's semantics down in tests.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "congest/fault_plan.h"
#include "congest/message.h"
#include "congest/round_ledger.h"
#include "graph/graph.h"

namespace dcl {

/// Thrown by CongestEngine::run when the max-round watchdog fires: the
/// protocol failed to quiesce within the cap (livelock, or a fault plan
/// starving it). Carries the diagnostic the operator needs to tell a
/// livelock (progress recent) from a deadlock-in-disguise (progress stale).
struct EngineStallError : std::runtime_error {
  EngineStallError(std::int64_t round, std::int64_t in_flight,
                   std::int64_t last_progress_round);
  std::int64_t round = 0;             ///< round at which the cap was hit
  std::int64_t in_flight = 0;         ///< queued + delayed messages pending
  std::int64_t last_progress_round = -1;  ///< last round that delivered
};

class RoundApi {
 public:
  RoundApi(NodeId self, const Graph& g)
      : self_(self),
        g_(&g),
        sent_to_(g.neighbors(self).size(), false) {}

  NodeId self() const { return self_; }
  const Graph& graph() const { return *g_; }
  std::int64_t round() const { return round_; }

  /// Sends one message to a neighbor this round. Throws if {self,to} is not
  /// an edge or if a message was already queued to `to` this round.
  void send(NodeId to, const Message& msg);

 private:
  friend class CongestEngine;
  NodeId self_;
  const Graph* g_;
  std::int64_t round_ = 0;
  std::vector<std::pair<NodeId, Message>> outgoing_;
  // Send-once bookkeeping, indexed by neighbor position. Sized once at
  // construction (neighbor sets are immutable) and reset by the engine when
  // it collects the outgoing queue at the top of every round; `send` must
  // never resize it, or a mis-sized vector would silently erase the
  // round's send-once state.
  std::vector<bool> sent_to_;
};

/// Per-node algorithm. One instance per node; the engine owns them.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before the first round.
  virtual void on_start(RoundApi& api) { (void)api; }

  /// Called every round with last round's deliveries (a view into the
  /// engine's delivery arena, sorted by sender; valid for this call only).
  /// Return false once the node is locally done; the engine stops when
  /// every node is done and nothing is queued.
  virtual bool on_round(RoundApi& api, std::span<const Delivery> received) = 0;
};

class CongestEngine {
 public:
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

  CongestEngine(const Graph& g, const ProgramFactory& factory);

  /// Runs until quiescence; returns rounds executed. If the protocol is
  /// still active (or messages are still in flight) when `max_rounds` is
  /// reached, the watchdog throws EngineStallError instead of spinning or
  /// silently truncating the run.
  std::int64_t run(std::int64_t max_rounds = 1'000'000);

  /// Attaches a fault plan for the next run(): per-message drop (with
  /// ack/retransmit + exponential backoff, arriving late), duplication
  /// (suppressed by the receiver's sequence filter, counted as an extra
  /// copy), delay-by-k (delivered k rounds late), and crash-stop nodes
  /// (from their crash round on: no sends, no receives, no on_round).
  /// Recovery extends the run itself, so its round cost lands in the
  /// charged "engine-run" rounds; retransmitted copies and losses feed the
  /// ledger retry counters. `nullptr` detaches.
  void attach_faults(FaultPlan* plan) { faults_ = plan; }

  /// Messages lost beyond the retry budget across all run() calls.
  std::uint64_t lost_messages() const { return lost_messages_; }

  NodeProgram& program(NodeId v) { return *programs_[static_cast<std::size_t>(v)]; }
  RoundLedger& ledger() { return ledger_; }

 private:
  const Graph* g_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  RoundLedger ledger_;
  FaultPlan* faults_ = nullptr;
  std::uint64_t lost_messages_ = 0;
};

}  // namespace dcl

// Synchronous CONGESTED CLIQUE network simulator.
//
// Model (paper, footnote 3): the n-node input graph G is the *input*; the
// communication graph is the complete graph — any ordered pair of nodes can
// exchange one O(log n)-bit message per round.
//
// Two accounting modes for a batched phase:
//  * `direct` — rounds = max over ordered pairs (u,v) of #messages u→v.
//    The raw model cost of sending the batch naively.
//  * `lenzen` (default) — Lenzen's routing theorem: if every node sends at
//    most S and receives at most R messages in total, the batch routes in
//    ceil(max(S, R) / (n-1)) + O(1) rounds. This is the accounting the
//    paper's Section 2.4.3 complexity analysis relies on ("the number of
//    messages each node receives is O(p² n^{1+d}/k^{2/p})" → rounds by
//    dividing by bandwidth).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "congest/delivery_arena.h"
#include "congest/message.h"
#include "congest/round_ledger.h"
#include "graph/graph.h"

namespace dcl {

enum class CliqueRoutingMode { direct, lenzen };

class CliqueNetwork {
 public:
  /// A clique network over `n` nodes.
  explicit CliqueNetwork(NodeId n,
                         CliqueRoutingMode mode = CliqueRoutingMode::lenzen);

  NodeId node_count() const { return n_; }
  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }
  CliqueRoutingMode mode() const { return mode_; }

  void begin_phase(std::string label);

  /// Enqueues a message from `from` to any other node `to`.
  void send(NodeId from, NodeId to, const Message& msg);

  /// Delivers everything, charges the ledger, returns the round cost.
  std::int64_t end_phase();

  /// Messages delivered to `v` in the last completed phase, ordered by
  /// (sender, send order). A view into the flat delivery arena; valid
  /// until the next end_phase().
  std::span<const Delivery> inbox(NodeId v) const { return arena_.inbox(v); }

  /// Completed phases, empty ones included (API parity with
  /// CongestNetwork::phase_count).
  std::uint64_t phase_count() const { return phase_count_; }

 private:
  NodeId n_;
  CliqueRoutingMode mode_;
  RoundLedger ledger_;
  std::string phase_label_;
  bool phase_open_ = false;
  std::uint64_t phase_count_ = 0;
  std::vector<QueuedMessage> queue_;
  // Per-phase send/receive loads, generation-stamped like the
  // DeliveryArena's counting passes: begin_phase bumps the generation
  // instead of O(n)-filling both arrays, a stale stamp reads as load 0,
  // and end_phase folds loads over the touched endpoint lists only — a
  // sparse phase costs O(touched), not O(n).
  std::uint64_t load_generation_ = 0;
  std::vector<std::uint64_t> sent_stamp_;
  std::vector<std::uint64_t> recv_stamp_;
  std::vector<std::int64_t> sent_;
  std::vector<std::int64_t> received_;
  std::vector<NodeId> touched_senders_;
  std::vector<NodeId> touched_receivers_;
  DeliveryArena arena_;
  // Telemetry span of the currently open phase (-1 when telemetry is off
  // or no phase is open).
  std::int32_t phase_span_ = -1;
};

}  // namespace dcl

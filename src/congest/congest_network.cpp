#include "congest/congest_network.h"

#include <algorithm>
#include <stdexcept>

#include "common/telemetry.h"

namespace dcl {

CongestNetwork::CongestNetwork(const Graph& g) : g_(&g) {
  arena_.reset(g.node_count());
  edge_load_.assign(static_cast<std::size_t>(2 * g.edge_count()), 0);
}

void CongestNetwork::begin_phase(std::string label) {
  if (phase_open_) {
    throw std::logic_error("CongestNetwork: phase already open");
  }
  phase_label_ = std::move(label);
  phase_open_ = true;
  queue_.clear();
  arena_.invalidate();
  phase_span_ = -1;
  if (TraceCollector* telemetry = active_telemetry()) {
    telemetry->sync_to(ledger_.total_rounds(), ledger_.total_messages());
    phase_span_ = telemetry->begin_span(phase_label_, "congest-phase");
  }
}

void CongestNetwork::send(NodeId from, NodeId to, const Message& msg) {
  if (!phase_open_) {
    throw std::logic_error("CongestNetwork: send outside of a phase");
  }
  const auto eid = g_->edge_id(from, to);
  if (!eid) {
    throw std::invalid_argument(
        "CongestNetwork: send along a non-edge (" + std::to_string(from) +
        "," + std::to_string(to) + ")");
  }
  const Edge& e = g_->edge(*eid);
  const std::size_t slot =
      2 * static_cast<std::size_t>(*eid) + (from == e.u ? 0u : 1u);
  if (edge_load_[slot] == 0) touched_slots_.push_back(slot);
  ++edge_load_[slot];
  queue_.push_back({from, to, msg});
}

std::int64_t CongestNetwork::end_phase() {
  if (!phase_open_) {
    throw std::logic_error("CongestNetwork: no phase open");
  }
  phase_open_ = false;
  ++phase_count_;
  std::int64_t rounds = 0;
  for (const std::size_t slot : touched_slots_) {
    rounds = std::max(rounds, edge_load_[slot]);
    edge_load_[slot] = 0;  // restore the all-zero invariant for next phase
  }
  touched_slots_.clear();
  // Base charge first: the fault-free communication pattern was executed
  // either way, so this entry stays bit-identical to a fault-free run.
  ledger_.charge_exchange(phase_label_, static_cast<double>(rounds),
                          queue_.size());
  if (faults_ != nullptr && (faults_->enabled() || faults_->replaying())) {
    // Run the ack/retransmit protocol per queued message. Recoverable
    // outcomes keep the message in the inbox (dups are filtered by the
    // receiver's sequence numbers, delays are waited out inside the phase
    // barrier); only budget-exhausted losses are withheld.
    std::int64_t retry_rounds = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t lost = 0;
    surviving_.clear();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const QueuedMessage& qm = queue_[i];
      const FaultPlan::MessageOutcome o = faults_->recover(
          fault_clock_, FaultPlan::edge_key(qm.from, qm.to),
          static_cast<std::uint64_t>(i));
      retry_rounds = std::max(retry_rounds, o.extra_rounds);
      retransmitted += static_cast<std::uint64_t>(o.retransmissions) +
                       static_cast<std::uint64_t>(o.duplicates);
      if (o.lost) {
        ++lost;
      } else {
        surviving_.push_back(qm);
      }
    }
    ++fault_clock_;
    if (retry_rounds > 0 || retransmitted > 0) {
      ledger_.charge_retry(phase_label_ + " [retry]",
                           static_cast<double>(retry_rounds), retransmitted);
    }
    if (lost > 0) {
      lost_messages_ += lost;
      ledger_.note_lost(lost);
    }
    arena_.deliver(surviving_);
    rounds += retry_rounds;
  } else {
    arena_.deliver(queue_);
  }
  if (TraceCollector* telemetry = active_telemetry()) {
    telemetry->sync_to(ledger_.total_rounds(), ledger_.total_messages());
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("congest.phases", 1);
    metrics.counter_add("congest.messages", queue_.size());
    metrics.gauge_max("congest.arena_hwm",
                      static_cast<std::int64_t>(arena_.delivered_count()));
    telemetry->end_span(phase_span_);
    phase_span_ = -1;
  }
  queue_.clear();
  return rounds;
}

}  // namespace dcl

#include "congest/congest_network.h"

#include <algorithm>
#include <stdexcept>

namespace dcl {

CongestNetwork::CongestNetwork(const Graph& g) : g_(&g) {
  arena_.reset(g.node_count());
  edge_load_.assign(static_cast<std::size_t>(2 * g.edge_count()), 0);
}

void CongestNetwork::begin_phase(std::string label) {
  if (phase_open_) {
    throw std::logic_error("CongestNetwork: phase already open");
  }
  phase_label_ = std::move(label);
  phase_open_ = true;
  queue_.clear();
  arena_.invalidate();
}

void CongestNetwork::send(NodeId from, NodeId to, const Message& msg) {
  if (!phase_open_) {
    throw std::logic_error("CongestNetwork: send outside of a phase");
  }
  const auto eid = g_->edge_id(from, to);
  if (!eid) {
    throw std::invalid_argument(
        "CongestNetwork: send along a non-edge (" + std::to_string(from) +
        "," + std::to_string(to) + ")");
  }
  const Edge& e = g_->edge(*eid);
  const std::size_t slot =
      2 * static_cast<std::size_t>(*eid) + (from == e.u ? 0u : 1u);
  if (edge_load_[slot] == 0) touched_slots_.push_back(slot);
  ++edge_load_[slot];
  queue_.push_back({from, to, msg});
}

std::int64_t CongestNetwork::end_phase() {
  if (!phase_open_) {
    throw std::logic_error("CongestNetwork: no phase open");
  }
  phase_open_ = false;
  ++phase_count_;
  std::int64_t rounds = 0;
  for (const std::size_t slot : touched_slots_) {
    rounds = std::max(rounds, edge_load_[slot]);
    edge_load_[slot] = 0;  // restore the all-zero invariant for next phase
  }
  touched_slots_.clear();
  arena_.deliver(queue_);
  ledger_.charge_exchange(phase_label_, static_cast<double>(rounds),
                          queue_.size());
  queue_.clear();
  return rounds;
}

}  // namespace dcl

#include "congest/fault_plan.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/telemetry.h"

namespace dcl {

namespace {

/// SplitMix64 finalizer: the avalanche mix every decision hash chains
/// through. Identical bit pattern on every platform.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_rate(const std::string& value, const std::string& key) {
  std::size_t used = 0;
  double rate = 0.0;
  try {
    rate = std::stod(value, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != value.size() || rate < 0.0 || rate > 1.0) {
    throw std::runtime_error("FaultSpec: bad rate for '" + key + "': '" +
                             value + "' (want a number in [0,1])");
  }
  return rate;
}

std::int64_t parse_int_field(const std::string& value, const std::string& key) {
  std::size_t used = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(value, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != value.size()) {
    throw std::runtime_error("FaultSpec: bad integer for '" + key + "': '" +
                             value + "'");
  }
  return v;
}

}  // namespace

const char* to_string(FaultAction action) {
  switch (action) {
    case FaultAction::deliver:
      return "deliver";
    case FaultAction::drop:
      return "drop";
    case FaultAction::duplicate:
      return "dup";
    case FaultAction::delay:
      return "delay";
  }
  return "?";
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("FaultSpec: expected key=value, got '" + item +
                               "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop") {
      spec.drop_rate = parse_rate(value, key);
    } else if (key == "dup") {
      spec.dup_rate = parse_rate(value, key);
    } else if (key == "delay") {
      // RATE or RATE:K
      const auto colon = value.find(':');
      spec.delay_rate = parse_rate(value.substr(0, colon), key);
      if (colon != std::string::npos) {
        const std::int64_t k =
            parse_int_field(value.substr(colon + 1), "delay bound");
        if (k < 1 || k > 1'000'000) {
          throw std::runtime_error("FaultSpec: delay bound out of range: " +
                                   value.substr(colon + 1));
        }
        spec.max_delay = static_cast<int>(k);
      }
    } else if (key == "retries") {
      const std::int64_t r = parse_int_field(value, key);
      if (r < 0 || r > 62) {
        throw std::runtime_error("FaultSpec: retries out of range [0,62]: " +
                                 value);
      }
      spec.max_retries = static_cast<int>(r);
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_int_field(value, key));
    } else if (key == "crash") {
      // V@C
      const auto at = value.find('@');
      if (at == std::string::npos) {
        throw std::runtime_error("FaultSpec: crash wants NODE@CLOCK, got '" +
                                 value + "'");
      }
      CrashEvent ev;
      const std::int64_t node = parse_int_field(value.substr(0, at), "crash node");
      if (node < 0) {
        throw std::runtime_error("FaultSpec: negative crash node: " + value);
      }
      ev.node = to_node(node);
      ev.clock = parse_int_field(value.substr(at + 1), "crash clock");
      spec.crashes.push_back(ev);
    } else {
      throw std::runtime_error("FaultSpec: unknown key '" + key + "'");
    }
  }
  if (spec.drop_rate + spec.dup_rate + spec.delay_rate > 1.0) {
    throw std::runtime_error(
        "FaultSpec: drop+dup+delay rates must sum to at most 1");
  }
  return spec;
}

std::string FaultSpec::to_text() const {
  std::ostringstream out;
  out << "drop=" << drop_rate << ",dup=" << dup_rate << ",delay=" << delay_rate
      << ':' << max_delay << ",retries=" << max_retries << ",seed=" << seed;
  for (const CrashEvent& c : crashes) {
    out << ",crash=" << c.node << '@' << c.clock;
  }
  return out.str();
}

std::uint64_t FaultPlan::label_key(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char ch : label) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h | (1ULL << 63);
}

FaultDecision FaultPlan::decide(std::int64_t clock, std::uint64_t key,
                                std::uint64_t index, int attempt) {
  if (replay_) {
    const auto it = replay_events_.find(
        {clock, key, index, attempt});
    return it == replay_events_.end() ? FaultDecision{} : it->second;
  }
  if (!spec_.enabled()) return {};
  // One chained avalanche per coordinate: any coordinate change flips the
  // whole hash, and the draw never consumes shared RNG state.
  std::uint64_t h = mix64(spec_.seed);
  h = mix64(h ^ static_cast<std::uint64_t>(clock));
  h = mix64(h ^ key);
  h = mix64(h ^ index);
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  const double u = to_unit(h);
  FaultDecision d;
  if (u < spec_.drop_rate) {
    d.action = FaultAction::drop;
  } else if (u < spec_.drop_rate + spec_.dup_rate) {
    d.action = FaultAction::duplicate;
  } else if (u < spec_.drop_rate + spec_.dup_rate + spec_.delay_rate) {
    d.action = FaultAction::delay;
    d.delay = 1 + static_cast<int>(
                      mix64(h) %
                      static_cast<std::uint64_t>(std::max(1, spec_.max_delay)));
  }
  if (d.action != FaultAction::deliver) {
    schedule_.push_back({clock, key, index, attempt, d});
  }
  return d;
}

bool FaultPlan::crashed_by(NodeId v, std::int64_t clock) const {
  for (const CrashEvent& c : spec_.crashes) {
    if (c.node == v && c.clock <= clock) return true;
  }
  return false;
}

FaultPlan::MessageOutcome FaultPlan::recover(std::int64_t clock,
                                             std::uint64_t key,
                                             std::uint64_t index) {
  MessageOutcome out;
  if (!enabled() && !replay_) return out;
  for (int attempt = 0;; ++attempt) {
    const FaultDecision d = decide(clock, key, index, attempt);
    if (d.action != FaultAction::drop) {
      // The duplicate copy rides an otherwise idle slot while the ack is in
      // flight: one extra message on the wire, no extra rounds. A delayed
      // copy stays within the ack timeout and is waited out.
      if (d.action == FaultAction::duplicate) out.duplicates = 1;
      if (d.action == FaultAction::delay) out.extra_rounds += d.delay;
      return out;
    }
    if (attempt == spec_.max_retries) {
      out.lost = true;
      return out;
    }
    // Exponential backoff before the retransmission: attempt t waits
    // 2^(t-1) rounds (shift capped only against overflow; specs allow at
    // most 62 retries).
    out.extra_rounds += std::int64_t{1} << std::min(attempt, 60);
    ++out.retransmissions;
  }
}

FaultPlan::PhaseFaults FaultPlan::recover_phase(std::int64_t clock,
                                                std::uint64_t key,
                                                std::uint64_t messages) {
  PhaseFaults pf;
  if (!enabled() && !replay_) return pf;
  for (std::uint64_t i = 0; i < messages; ++i) {
    const MessageOutcome o = recover(clock, key, i);
    pf.retry_rounds = std::max(pf.retry_rounds, o.extra_rounds);
    pf.retransmitted += static_cast<std::uint64_t>(o.retransmissions) +
                        static_cast<std::uint64_t>(o.duplicates);
    if (o.retransmissions > 0) ++pf.dropped;
    if (o.lost) ++pf.lost;
  }
  return pf;
}

void FaultPlan::serialize(std::ostream& out) const {
  out << "dcl-fault-plan v1\n";
  out << "spec " << spec_.to_text() << '\n';
  for (const FaultEvent& e : schedule_) {
    out << "event " << e.clock << ' ' << e.key << ' ' << e.index << ' '
        << e.attempt << ' ' << to_string(e.decision.action);
    if (e.decision.action == FaultAction::delay) out << ' ' << e.decision.delay;
    out << '\n';
  }
  out << "end\n";
}

FaultPlan FaultPlan::deserialize(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "dcl-fault-plan v1") {
    throw std::runtime_error("FaultPlan: bad header (want 'dcl-fault-plan v1')");
  }
  FaultPlan plan;
  plan.replay_ = true;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "spec") {
      std::string rest;
      ls >> rest;
      plan.spec_ = FaultSpec::parse(rest);
    } else if (tag == "event") {
      FaultEvent e;
      std::string action;
      ls >> e.clock >> e.key >> e.index >> e.attempt >> action;
      if (!ls) {
        throw std::runtime_error("FaultPlan: truncated event line: " + line);
      }
      if (action == "drop") {
        e.decision.action = FaultAction::drop;
      } else if (action == "dup") {
        e.decision.action = FaultAction::duplicate;
      } else if (action == "delay") {
        e.decision.action = FaultAction::delay;
        ls >> e.decision.delay;
        if (!ls || e.decision.delay < 1) {
          throw std::runtime_error("FaultPlan: bad delay event: " + line);
        }
      } else {
        throw std::runtime_error("FaultPlan: unknown event action: " + action);
      }
      plan.replay_events_[{e.clock, e.key, e.index, e.attempt}] = e.decision;
      plan.schedule_.push_back(e);
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      throw std::runtime_error("FaultPlan: unknown line tag '" + tag + "'");
    }
  }
  if (!saw_end) {
    throw std::runtime_error("FaultPlan: truncated schedule (missing 'end')");
  }
  return plan;
}

std::size_t FaultSession::dead_count() const {
  std::size_t count = 0;
  for (const char d : dead) count += (d != 0);
  return count;
}

std::vector<NodeId> FaultSession::detect_crashes(NodeId n) {
  std::vector<NodeId> newly;
  if (!active()) return newly;
  if (dead.size() < static_cast<std::size_t>(n)) {
    dead.resize(static_cast<std::size_t>(n), 0);
  }
  for (const CrashEvent& c : plan->crashes()) {
    if (c.clock > clock || c.node < 0 || c.node >= n) continue;
    auto& flag = dead[static_cast<std::size_t>(c.node)];
    if (flag == 0) {
      flag = 1;
      newly.push_back(c.node);
    }
  }
  std::sort(newly.begin(), newly.end());
  if (!newly.empty()) {
    if (TraceCollector* telemetry = active_telemetry()) {
      telemetry->metrics().counter_add("fault.crashes_detected", newly.size());
    }
  }
  return newly;
}

void FaultSession::charge_crash_timeout(RoundLedger& ledger,
                                        std::size_t newly_dead) {
  if (newly_dead == 0) return;
  // One missed-phase timeout window detects the whole batch of deaths:
  // survivors notice the silence concurrently on every edge.
  ledger.charge_exchange("crash-detect-timeout", 1.0, 0);
  ++crash_timeouts;
  if (TraceCollector* telemetry = active_telemetry()) {
    telemetry->metrics().counter_add("fault.crash_timeout_rounds", 1);
  }
}

std::uint64_t FaultSession::inject(RoundLedger& ledger,
                                   const std::string& label,
                                   std::uint64_t messages) {
  if (!active()) return 0;
  const FaultPlan::PhaseFaults pf =
      plan->recover_phase(clock, FaultPlan::label_key(label), messages);
  ++clock;
  if (pf.retry_rounds > 0 || pf.retransmitted > 0) {
    ledger.charge_retry(label + " [retry]",
                        static_cast<double>(pf.retry_rounds),
                        pf.retransmitted);
  }
  if (pf.lost > 0) {
    lost_messages += pf.lost;
    ledger.note_lost(pf.lost);
    // Accounting-level pipelines cannot proceed without the phase's
    // knowledge, so losses beyond the retry budget escalate to the reliable
    // resend path: one extra timeout-triggered phase re-carrying the lost
    // messages. Output stays exact; the degradation is this charged cost.
    ledger.charge_exchange(label + " [resend]", 1.0, pf.lost);
  }
  if (TraceCollector* telemetry = active_telemetry()) {
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("fault.retry_rounds",
                        static_cast<std::uint64_t>(pf.retry_rounds));
    metrics.counter_add("fault.retransmitted", pf.retransmitted);
    metrics.counter_add("fault.lost", pf.lost);
  }
  return pf.lost;
}

std::uint64_t FaultSession::charge_exchange(RoundLedger& ledger,
                                            std::string label, double rounds,
                                            std::uint64_t messages) {
  const std::string retry_label = label;  // ledger takes ownership below
  ledger.charge_exchange(std::move(label), rounds, messages);
  return inject(ledger, retry_label, messages);
}

}  // namespace dcl

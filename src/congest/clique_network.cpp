#include "congest/clique_network.h"

#include <algorithm>
#include <stdexcept>

#include "common/math_util.h"
#include "common/telemetry.h"

namespace dcl {

CliqueNetwork::CliqueNetwork(NodeId n, CliqueRoutingMode mode)
    : n_(n), mode_(mode) {
  if (n < 2) throw std::invalid_argument("CliqueNetwork: need >= 2 nodes");
  arena_.reset(n);
  sent_stamp_.assign(static_cast<std::size_t>(n), 0);
  recv_stamp_.assign(static_cast<std::size_t>(n), 0);
  sent_.assign(static_cast<std::size_t>(n), 0);
  received_.assign(static_cast<std::size_t>(n), 0);
}

void CliqueNetwork::begin_phase(std::string label) {
  if (phase_open_) {
    throw std::logic_error("CliqueNetwork: phase already open");
  }
  phase_label_ = std::move(label);
  phase_open_ = true;
  queue_.clear();
  // Generation bump instead of two O(n) std::fill passes: every slot's
  // stamp is now stale, so all loads read as zero until the phase's first
  // send to that endpoint re-stamps it (regression: a 60-phase sparse
  // sequence must charge exactly like fresh networks; see
  // tests/test_clique_network.cpp).
  ++load_generation_;
  touched_senders_.clear();
  touched_receivers_.clear();
  arena_.invalidate();
  phase_span_ = -1;
  if (TraceCollector* telemetry = active_telemetry()) {
    telemetry->sync_to(ledger_.total_rounds(), ledger_.total_messages());
    phase_span_ = telemetry->begin_span(phase_label_, "clique-phase");
  }
}

void CliqueNetwork::send(NodeId from, NodeId to, const Message& msg) {
  if (!phase_open_) {
    throw std::logic_error("CliqueNetwork: send outside of a phase");
  }
  if (from < 0 || to < 0 || from >= n_ || to >= n_ || from == to) {
    throw std::invalid_argument("CliqueNetwork: bad endpoints");
  }
  const auto f = static_cast<std::size_t>(from);
  const auto t = static_cast<std::size_t>(to);
  if (sent_stamp_[f] != load_generation_) {
    sent_stamp_[f] = load_generation_;
    sent_[f] = 0;
    touched_senders_.push_back(from);
  }
  if (recv_stamp_[t] != load_generation_) {
    recv_stamp_[t] = load_generation_;
    received_[t] = 0;
    touched_receivers_.push_back(to);
  }
  ++sent_[f];
  ++received_[t];
  queue_.push_back({from, to, msg});
}

std::int64_t CliqueNetwork::end_phase() {
  if (!phase_open_) {
    throw std::logic_error("CliqueNetwork: no phase open");
  }
  phase_open_ = false;
  ++phase_count_;
  arena_.deliver(queue_);
  std::int64_t rounds = 0;
  if (!queue_.empty()) {
    if (mode_ == CliqueRoutingMode::direct) {
      // The arena is sorted by (recipient, sender), so each ordered pair
      // (u,v) is one contiguous run per inbox; the direct-mode cost is the
      // longest run. Only touched recipients can have a non-empty inbox,
      // so the scan is O(touched + traffic), not O(n).
      for (const NodeId v : touched_receivers_) {
        const auto in = arena_.inbox(v);
        std::int64_t run = 0;
        for (std::size_t i = 0; i < in.size(); ++i) {
          run = (i > 0 && in[i].from == in[i - 1].from) ? run + 1 : 1;
          rounds = std::max(rounds, run);
        }
      }
    } else {
      // Untouched slots are stale-stamped zeros: the max over touched
      // endpoints IS the max over all n.
      std::int64_t max_load = 0;
      for (const NodeId v : touched_senders_) {
        max_load = std::max(max_load, sent_[static_cast<std::size_t>(v)]);
      }
      for (const NodeId v : touched_receivers_) {
        max_load = std::max(max_load, received_[static_cast<std::size_t>(v)]);
      }
      // Lenzen routing: ceil(load / (n-1)) full-bandwidth rounds plus a
      // constant for the routing protocol itself.
      rounds = ceil_div(max_load, static_cast<std::int64_t>(n_) - 1) + 2;
    }
  }
  ledger_.charge_exchange(phase_label_, static_cast<double>(rounds),
                          queue_.size());
  if (TraceCollector* telemetry = active_telemetry()) {
    telemetry->sync_to(ledger_.total_rounds(), ledger_.total_messages());
    MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter_add("clique.phases", 1);
    metrics.counter_add("clique.messages", queue_.size());
    metrics.gauge_max("clique.arena_hwm",
                      static_cast<std::int64_t>(arena_.delivered_count()));
    telemetry->end_span(phase_span_);
    phase_span_ = -1;
  }
  queue_.clear();
  return rounds;
}

}  // namespace dcl

#include "congest/clique_network.h"

#include <algorithm>
#include <stdexcept>

#include "common/math_util.h"

namespace dcl {

CliqueNetwork::CliqueNetwork(NodeId n, CliqueRoutingMode mode)
    : n_(n), mode_(mode) {
  if (n < 2) throw std::invalid_argument("CliqueNetwork: need >= 2 nodes");
  arena_.reset(n);
  sent_.assign(static_cast<std::size_t>(n), 0);
  received_.assign(static_cast<std::size_t>(n), 0);
}

void CliqueNetwork::begin_phase(std::string label) {
  if (phase_open_) {
    throw std::logic_error("CliqueNetwork: phase already open");
  }
  phase_label_ = std::move(label);
  phase_open_ = true;
  queue_.clear();
  std::fill(sent_.begin(), sent_.end(), 0);
  std::fill(received_.begin(), received_.end(), 0);
  arena_.invalidate();
}

void CliqueNetwork::send(NodeId from, NodeId to, const Message& msg) {
  if (!phase_open_) {
    throw std::logic_error("CliqueNetwork: send outside of a phase");
  }
  if (from < 0 || to < 0 || from >= n_ || to >= n_ || from == to) {
    throw std::invalid_argument("CliqueNetwork: bad endpoints");
  }
  ++sent_[static_cast<std::size_t>(from)];
  ++received_[static_cast<std::size_t>(to)];
  queue_.push_back({from, to, msg});
}

std::int64_t CliqueNetwork::end_phase() {
  if (!phase_open_) {
    throw std::logic_error("CliqueNetwork: no phase open");
  }
  phase_open_ = false;
  ++phase_count_;
  arena_.deliver(queue_);
  std::int64_t rounds = 0;
  if (!queue_.empty()) {
    if (mode_ == CliqueRoutingMode::direct) {
      // The arena is sorted by (recipient, sender), so each ordered pair
      // (u,v) is one contiguous run per inbox; the direct-mode cost is the
      // longest run. Replaces the old per-send unordered_map histogram.
      for (NodeId v = 0; v < n_; ++v) {
        const auto in = arena_.inbox(v);
        std::int64_t run = 0;
        for (std::size_t i = 0; i < in.size(); ++i) {
          run = (i > 0 && in[i].from == in[i - 1].from) ? run + 1 : 1;
          rounds = std::max(rounds, run);
        }
      }
    } else {
      std::int64_t max_load = 0;
      for (NodeId v = 0; v < n_; ++v) {
        max_load = std::max(
            {max_load, sent_[static_cast<std::size_t>(v)],
             received_[static_cast<std::size_t>(v)]});
      }
      // Lenzen routing: ceil(load / (n-1)) full-bandwidth rounds plus a
      // constant for the routing protocol itself.
      rounds = ceil_div(max_load, static_cast<std::int64_t>(n_) - 1) + 2;
    }
  }
  ledger_.charge_exchange(phase_label_, static_cast<double>(rounds),
                          queue_.size());
  queue_.clear();
  return rounds;
}

}  // namespace dcl

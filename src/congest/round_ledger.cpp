#include "congest/round_ledger.h"

#include <iomanip>
#include <ostream>

namespace dcl {

const char* to_string(CostKind kind) {
  switch (kind) {
    case CostKind::exchange:
      return "exchange";
    case CostKind::routing:
      return "routing";
    case CostKind::analytic:
      return "analytic";
  }
  return "?";
}

double RoundLedger::total_rounds() const {
  double total = 0.0;
  for (const auto& e : entries_) total += e.rounds;
  return total;
}

std::uint64_t RoundLedger::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) total += e.messages;
  return total;
}

double RoundLedger::rounds_of_kind(CostKind kind) const {
  double total = 0.0;
  for (const auto& e : entries_) {
    if (e.kind == kind) total += e.rounds;
  }
  return total;
}

std::map<std::string, double> RoundLedger::rounds_by_label() const {
  std::map<std::string, double> by_label;
  for (const auto& e : entries_) by_label[e.label] += e.rounds;
  return by_label;
}

void RoundLedger::merge(const RoundLedger& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
  retry_rounds_ += other.retry_rounds_;
  retransmitted_messages_ += other.retransmitted_messages_;
  lost_messages_ += other.lost_messages_;
}

void RoundLedger::print_breakdown(std::ostream& out) const {
  out << "round ledger: total=" << std::fixed << std::setprecision(1)
      << total_rounds() << " rounds, " << total_messages() << " messages\n";
  for (const auto& [label, rounds] : rounds_by_label()) {
    out << "  " << std::left << std::setw(42) << label << ' ' << std::right
        << std::setw(12) << std::setprecision(1) << rounds << '\n';
  }
  if (retry_rounds_ > 0.0 || retransmitted_messages_ > 0 ||
      lost_messages_ > 0) {
    out << "  recovery: " << std::setprecision(1) << retry_rounds_
        << " retry rounds, " << retransmitted_messages_ << " retransmitted, "
        << lost_messages_ << " lost\n";
  }
}

}  // namespace dcl

#include "congest/round_ledger.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <utility>

namespace dcl {

const char* to_string(CostKind kind) {
  switch (kind) {
    case CostKind::exchange:
      return "exchange";
    case CostKind::routing:
      return "routing";
    case CostKind::analytic:
      return "analytic";
  }
  return "?";
}

double RoundLedger::total_rounds() const {
  double total = 0.0;
  for (const auto& e : entries_) total += e.rounds;
  return total;
}

std::uint64_t RoundLedger::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) total += e.messages;
  return total;
}

double RoundLedger::rounds_of_kind(CostKind kind) const {
  double total = 0.0;
  for (const auto& e : entries_) {
    if (e.kind == kind) total += e.rounds;
  }
  return total;
}

std::map<std::string, double> RoundLedger::rounds_by_label() const {
  std::map<std::string, double> by_label;
  for (const auto& e : entries_) by_label[e.label] += e.rounds;
  return by_label;
}

std::vector<RoundLedger::BreakdownRow> RoundLedger::breakdown() const {
  std::map<std::pair<std::string, int>, BreakdownRow> rows;
  for (const auto& e : entries_) {
    BreakdownRow& row = rows[{e.label, static_cast<int>(e.kind)}];
    if (row.label.empty()) {
      row.label = e.label;
      row.kind = e.kind;
    }
    row.rounds += e.rounds;
    row.messages += e.messages;
  }
  std::vector<BreakdownRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  return out;
}

void RoundLedger::merge(const RoundLedger& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
  retry_rounds_ += other.retry_rounds_;
  retransmitted_messages_ += other.retransmitted_messages_;
  lost_messages_ += other.lost_messages_;
}

void RoundLedger::print_breakdown(std::ostream& out) const {
  out << "round ledger: total=" << std::fixed << std::setprecision(1)
      << total_rounds() << " rounds, " << total_messages() << " messages\n";
  for (const auto& [label, rounds] : rounds_by_label()) {
    out << "  " << std::left << std::setw(42) << label << ' ' << std::right
        << std::setw(12) << std::setprecision(1) << rounds << '\n';
  }
  if (retry_rounds_ > 0.0 || retransmitted_messages_ > 0 ||
      lost_messages_ > 0) {
    out << "  recovery: " << std::setprecision(1) << retry_rounds_
        << " retry rounds, " << retransmitted_messages_ << " retransmitted, "
        << lost_messages_ << " lost\n";
  }
}

void RoundLedger::print_audited(std::ostream& out) const {
  const std::vector<BreakdownRow> rows = breakdown();
  std::size_t label_width = 24;
  for (const auto& row : rows) {
    label_width = std::max(label_width, row.label.size());
  }
  const std::ios_base::fmtflags flags = out.flags();
  const std::streamsize precision = out.precision();
  out << "round ledger: total=" << std::fixed << std::setprecision(1)
      << total_rounds() << " rounds, " << total_messages() << " messages\n";
  out << "  " << std::left << std::setw(static_cast<int>(label_width))
      << "phase" << "  " << std::setw(8) << "kind" << std::right
      << std::setw(12) << "rounds" << std::setw(14) << "messages" << '\n';
  for (const auto& row : rows) {
    out << "  " << std::left << std::setw(static_cast<int>(label_width))
        << row.label << "  " << std::setw(8) << to_string(row.kind)
        << std::right << std::setw(12) << std::setprecision(1) << row.rounds
        << std::setw(14) << row.messages << '\n';
  }
  if (retry_rounds_ > 0.0 || retransmitted_messages_ > 0 ||
      lost_messages_ > 0) {
    out << "  recovery: " << std::setprecision(1) << retry_rounds_
        << " retry rounds, " << retransmitted_messages_ << " retransmitted, "
        << lost_messages_ << " lost\n";
  }
  out.flags(flags);
  out.precision(precision);
}

}  // namespace dcl

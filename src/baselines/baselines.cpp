#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/intersect.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/arb_list.h"
#include "core/broadcast_listing.h"
#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/orientation.h"

namespace dcl {

BaselineResult trivial_broadcast_list(const Graph& g, int p,
                                      ListingOutput& out) {
  BaselineResult result;
  BroadcastListingArgs args;
  args.base = &g;
  args.p = p;
  args.mode = BroadcastMode::neighborhood;
  args.label = "trivial-neighborhood-broadcast";
  broadcast_listing(args, result.ledger, out);
  result.unique_cliques = out.unique_count();
  result.total_reports = out.total_reports();
  return result;
}

double oblivious_cc_rounds(NodeId n, int p) {
  if (n < 2) return 0.0;
  const int q = std::max<int>(
      1, static_cast<int>(floor_pow(n, 1.0 / static_cast<double>(p))));
  const std::int64_t part_size = ceil_div(static_cast<std::int64_t>(n), q);
  // Every node must reserve slots for all potential pairs between its p
  // parts (it cannot know in advance which exist).
  const std::int64_t budget =
      static_cast<std::int64_t>(p) * p * part_size * part_size / 2;
  return static_cast<double>(ceil_div(budget, static_cast<std::int64_t>(n) - 1) +
                             2);
}

BaselineResult oblivious_cc_list(const Graph& g, int p, ListingOutput& out) {
  BaselineResult result;
  const NodeId n = g.node_count();
  if (n < 2) return result;
  const int q = std::max<int>(
      1, static_cast<int>(floor_pow(n, 1.0 / static_cast<double>(p))));
  const std::int64_t part_size = ceil_div(static_cast<std::int64_t>(n), q);

  // Fixed consecutive parts: part(v) = v / part_size.
  auto part_of = [&](NodeId v) { return static_cast<int>(v / part_size); };

  result.ledger.charge_exchange("oblivious-cc-schedule",
                                oblivious_cc_rounds(n, p),
                                static_cast<std::uint64_t>(g.edge_count()));

  // Deliver the actual edges under that schedule and list locally.
  const std::int64_t space = ipow(q, p);
  for (NodeId i = 0; i < n; ++i) {
    auto digits = radix_digits(static_cast<std::int64_t>(i) % space, q, p);
    std::sort(digits.begin(), digits.end());
    std::vector<Edge> local;
    std::vector<NodeId> to_global;
    std::unordered_map<NodeId, NodeId> to_compact;
    auto intern = [&](NodeId v) {
      auto [it, fresh] =
          to_compact.try_emplace(v, to_node(to_global.size()));
      if (fresh) to_global.push_back(v);
      return it->second;
    };
    auto covered = [&](int a, int b) {
      if (a > b) std::swap(a, b);
      if (a == b) {
        const auto lo = std::lower_bound(digits.begin(), digits.end(), a);
        return lo != digits.end() && *lo == a && (lo + 1) != digits.end() &&
               *(lo + 1) == a;
      }
      return sorted_contains(digits, a) && sorted_contains(digits, b);
    };
    for (const Edge& e : g.edges()) {
      if (covered(part_of(e.u), part_of(e.v))) {
        local.push_back(make_edge(intern(e.u), intern(e.v)));
      }
    }
    if (static_cast<int>(local.size()) < p * (p - 1) / 2) continue;
    const Graph local_graph = Graph::from_edges(
        to_node(to_global.size()), std::move(local));
    std::vector<NodeId> global(static_cast<std::size_t>(p));
    for (const auto& c : list_k_cliques(local_graph, p)) {
      for (std::size_t x = 0; x < c.size(); ++x) {
        global[x] = to_global[static_cast<std::size_t>(c[x])];
      }
      out.report(i, global);
    }
  }
  result.unique_cliques = out.unique_count();
  result.total_reports = out.total_reports();
  return result;
}

BaselineResult one_shot_list(const Graph& g, int p, ListingOutput& out,
                             double delta, std::uint64_t seed) {
  BaselineResult result;
  if (g.edge_count() == 0) return result;
  KpConfig cfg;
  cfg.p = p;
  cfg.enable_bad_edges = false;
  cfg.in_cluster_charge = InClusterChargeMode::worst_case;
  cfg.seed = seed;
  Rng rng(seed);

  const Orientation orient = degeneracy_orientation(g);
  EdgeMask away(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    away.set(e, orient.away_from_lower(e));
  }
  EdgeMask es(g.edge_count());
  EdgeMask er(g.edge_count(), true);

  ListingOutput scratch(g.node_count());
  ArbListContext ctx;
  ctx.base = &g;
  ctx.ledger = &result.ledger;
  ctx.cfg = &cfg;
  ctx.rng = &rng;
  ctx.out = &out;
  ctx.es_mask = &es;
  ctx.er_mask = &er;
  ctx.away = &away;
  ctx.cluster_degree = std::max<std::int64_t>(1, ceil_pow(g.node_count(), delta));
  ctx.arboricity_bound = std::max<std::int64_t>(1, orient.max_out_degree());
  arb_list(ctx);

  // Everything the single pass did not remove is finished by a
  // neighborhood broadcast (no arboricity iteration — the cost the paper's
  // coupled iterations avoid).
  const EdgeMask leftover = es | er;
  BroadcastListingArgs args;
  args.base = &g;
  args.current = &leftover;
  args.away = &away;
  args.p = p;
  args.mode = BroadcastMode::neighborhood;
  args.label = "one-shot-leftover-broadcast";
  broadcast_listing(args, result.ledger, out);

  result.unique_cliques = out.unique_count();
  result.total_reports = out.total_reports();
  return result;
}

BaselineResult chang_style_triangle_list(const Graph& g, ListingOutput& out,
                                         std::uint64_t seed) {
  KpConfig cfg;
  cfg.p = 3;
  cfg.seed = seed;
  const KpListResult r = list_kp_collect(g, cfg, out);
  BaselineResult result;
  result.ledger = r.ledger;
  result.unique_cliques = r.unique_cliques;
  result.total_reports = r.total_reports;
  return result;
}

}  // namespace dcl

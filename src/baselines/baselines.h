// Comparator algorithms from the paper's related work (Section 1 / 1.3).
//
// These reproduce the *comparison landscape* the paper positions itself in:
//  * `trivial_broadcast_list` — the folklore O(Δ) ⊆ O(n)-round CONGEST
//    lister (every node broadcasts its neighborhood; Remark 2.6's fallback
//    and the only prior sub-quadratic option for p ≥ 6);
//  * `oblivious_cc_list` — the deterministic Dolev–Lenzen–Peled-style
//    CONGESTED CLIQUE lister: fixed consecutive parts, every node scans all
//    potential vertex pairs between its assigned parts, Θ(n^{1-2/p} · p²)
//    rounds regardless of the input's sparsity. The contrast class for the
//    sparsity-aware Theorem 1.3;
//  * `one_shot_list` — an Eden-et-al-style structural baseline: a single
//    expander-decomposition pass (no arboricity iteration, no bad-edge
//    removal, oblivious in-cluster listing) followed by a neighborhood
//    broadcast of the leftover graph. DESIGN.md §2 documents this
//    simplification of DISC'19's layered algorithm: it preserves the
//    one-pass structure whose leftover-broadcast cost the paper's iterated
//    coupling eliminates;
//  * `chang_style_triangle_list` — the p = 3 instantiation of the paper's
//    own machinery, structurally the SODA'19 triangle lister (clusters list
//    every triangle with an edge inside; no outside-edge learning needed).
#pragma once

#include "congest/round_ledger.h"
#include "core/listing_types.h"
#include "graph/graph.h"

namespace dcl {

struct BaselineResult {
  RoundLedger ledger;
  std::uint64_t unique_cliques = 0;
  std::uint64_t total_reports = 0;
  double total_rounds() const { return ledger.total_rounds(); }
};

/// Every node sends its full adjacency list to each neighbor (max-degree Δ
/// rounds), then lists all Kp containing itself.
BaselineResult trivial_broadcast_list(const Graph& g, int p,
                                      ListingOutput& out);

/// Deterministic CONGESTED CLIQUE listing with fixed consecutive parts.
/// The schedule must budget for every potential pair between assigned
/// parts, so the round charge is ceil(p²·ceil(n/q)²/(n-1)) with
/// q = floor(n^{1/p}) — flat in m (the sparsity-oblivious horizontal line
/// of experiment E3).
BaselineResult oblivious_cc_list(const Graph& g, int p, ListingOutput& out);

/// The closed-form round cost of `oblivious_cc_list` (independent of the
/// input's edges — that is the point of the comparison).
double oblivious_cc_rounds(NodeId n, int p);

/// One decomposition pass at cluster degree ~ n^{delta} (default 2/3), no
/// iteration, oblivious in-cluster listing, then a neighborhood broadcast
/// of whatever the pass did not remove.
BaselineResult one_shot_list(const Graph& g, int p, ListingOutput& out,
                             double delta = 2.0 / 3.0,
                             std::uint64_t seed = 1);

/// The p = 3 special case of the paper's machinery (SODA'19-style).
BaselineResult chang_style_triangle_list(const Graph& g, ListingOutput& out,
                                         std::uint64_t seed = 1);

}  // namespace dcl

// Delta enumeration kernels: all Kp instances through one fixed edge.
//
// The batch-dynamic engine never re-enumerates the graph; per updated edge
// {u,v} it needs exactly the cliques *containing that edge* — inserted
// edges contribute the cliques to add, deleted edges (enumerated before
// removal) the cliques to retract. Every such clique is {u, v} ∪ S where S
// is a (p-2)-clique inside X = N(u) ∩ N(v), so the kernel is the common-
// neighborhood intersection followed by an id-ascending clique recursion
// over X — both running on the sorted-span intersection kernels of
// common/intersect.h. Deliberately *not* orientation-directed: the
// incrementally maintained orientation (dynamic/dynamic_orientation.h) may
// contain cycles, which would make a DAG-path enumeration miss cliques.
//
// The kernel is a template over the adjacency accessor so the same code
// serves the dynamic slack-CSR and the static CSR (the differential tests
// run it against both).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/intersect.h"
#include "graph/graph.h"

namespace dcl {

/// Per-depth scratch for the delta recursion; reused across calls so the
/// per-edge hot path allocates nothing after warm-up.
using DeltaScratch = std::vector<std::vector<NodeId>>;

namespace delta_detail {

/// Emits every (remaining)-clique inside `cands` (sorted ascending, all
/// adjacent to everything already in `clique`), appended to `clique`.
template <typename NeighborsFn, typename Emit>
void extend_delta(const NeighborsFn& neighbors, std::vector<NodeId>& clique,
                  std::span<const NodeId> cands, int remaining,
                  DeltaScratch& scratch, Emit&& emit) {
  if (static_cast<int>(cands.size()) < remaining) return;
  if (remaining == 0) {
    emit(std::span<const NodeId>(clique));
    return;
  }
  if (remaining == 1) {
    clique.push_back(-1);
    for (const NodeId w : cands) {
      clique.back() = w;
      emit(std::span<const NodeId>(clique));
    }
    clique.pop_back();
    return;
  }
  std::vector<NodeId>& next = scratch[static_cast<std::size_t>(remaining)];
  for (std::size_t i = 0; i + static_cast<std::size_t>(remaining) <=
                          cands.size();
       ++i) {
    const NodeId w = cands[i];
    intersect_into(cands.subspan(i + 1), neighbors(w), next);
    // dcl-lint: allow(reserve-hint): depth bounded by p <= 8; the caller's
    clique.push_back(w);  // scratch keeps its capacity across recursions
    extend_delta(neighbors, clique, next, remaining - 1, scratch, emit);
    clique.pop_back();
  }
}

}  // namespace delta_detail

/// Calls `emit(span)` once for every Kp containing the edge {u,v}, where
/// `neighbors(x)` returns the sorted adjacency span of x in the current
/// graph (which must contain the edge). The emitted span holds u, v, then
/// the remaining p-2 vertices ascending — not globally sorted; consumers
/// (CliqueSet) canonicalize. `scratch` must have at least p-1 levels.
template <typename NeighborsFn, typename Emit>
void for_each_clique_with_edge(const NeighborsFn& neighbors, NodeId u,
                               NodeId v, int p, DeltaScratch& scratch,
                               Emit&& emit) {
  if (p < 2) return;
  std::vector<NodeId>& clique = scratch[0];
  clique.assign({u, v});
  if (p == 2) {
    emit(std::span<const NodeId>(clique));
    return;
  }
  std::vector<NodeId>& common = scratch[1];
  intersect_into(neighbors(u), neighbors(v), common);
  delta_detail::extend_delta(neighbors, clique, common, p - 2, scratch, emit);
}

/// Scratch sized for `for_each_clique_with_edge` at clique size p: level 0
/// holds the growing clique, level 1 the common neighborhood, and levels
/// 2..p-2 the recursion's candidate sets.
inline DeltaScratch make_delta_scratch(int p) {
  return DeltaScratch(static_cast<std::size_t>(std::max(2, p)));
}

}  // namespace dcl

// Sequential (centralized) clique enumeration — the ground-truth oracle.
//
// Every distributed lister in this repository is validated against these
// routines: the union of all node outputs must equal the exact set of Kp
// instances. Two independent algorithms are provided so the oracle itself
// is cross-checkable:
//  * `list_k_cliques` — degeneracy-DAG recursive intersection
//    (Chiba–Nishizeki style, O(m · α^{p-2}) for arboricity α);
//  * `count_k_cliques_naive` — direct recursion on sorted adjacency,
//    no degeneracy machinery (slower; used in tests as a second opinion).
// Plus Bron–Kerbosch with pivoting for maximal cliques / clique number.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace dcl {

/// A clique, stored as a strictly increasing vector of node ids — the
/// canonical form used for deduplication and set comparison.
using Clique = std::vector<NodeId>;

/// Canonical set of cliques with value semantics; the comparison target for
/// listing validation.
class CliqueSet {
 public:
  CliqueSet() = default;
  explicit CliqueSet(const std::vector<Clique>& cliques) {
    for (const auto& c : cliques) insert(c);
  }

  /// Inserts a clique given in any vertex order; returns true if new.
  bool insert(Clique clique);
  bool contains(Clique clique) const;
  std::size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  /// Cliques present in `this` but not in `other`.
  std::vector<Clique> difference(const CliqueSet& other) const;

  bool operator==(const CliqueSet& other) const { return set_ == other.set_; }

  std::vector<Clique> to_vector() const {
    return {set_.begin(), set_.end()};
  }

 private:
  struct VectorHash {
    std::size_t operator()(const Clique& c) const {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (NodeId v : c) {
        h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };
  std::unordered_set<Clique, VectorHash> set_;
};

/// All Kp instances of g, each as a sorted vertex vector. p >= 1.
/// p = 1 lists vertices, p = 2 lists edges.
std::vector<Clique> list_k_cliques(const Graph& g, int p);

/// Number of Kp instances (no materialization).
std::uint64_t count_k_cliques(const Graph& g, int p);

/// Independent counting implementation used to cross-check the oracle.
std::uint64_t count_k_cliques_naive(const Graph& g, int p);

/// Whether `nodes` (any order, distinct) induce a complete subgraph.
bool is_clique(const Graph& g, std::span<const NodeId> nodes);

/// All maximal cliques via Bron–Kerbosch with pivoting.
std::vector<Clique> maximal_cliques(const Graph& g);

/// Clique number ω(G) (size of the largest clique).
int clique_number(const Graph& g);

}  // namespace dcl

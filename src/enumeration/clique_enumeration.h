// Sequential (centralized) clique enumeration — the ground-truth oracle.
//
// Every distributed lister in this repository is validated against these
// routines: the union of all node outputs must equal the exact set of Kp
// instances. Two independent algorithms are provided so the oracle itself
// is cross-checkable:
//  * `list_k_cliques` — degeneracy-DAG recursive intersection
//    (Chiba–Nishizeki style, O(m · α^{p-2}) for arboricity α);
//  * `count_k_cliques_naive` — direct recursion on sorted adjacency,
//    no degeneracy machinery (slower; used in tests as a second opinion).
// Plus Bron–Kerbosch with pivoting for maximal cliques / clique number.
//
// The recursions run on the shared sorted-intersection kernels of
// common/intersect.h with per-depth scratch buffers — the hot path
// allocates nothing (see docs/PERFORMANCE.md).
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcl {

/// A clique, stored as a strictly increasing vector of node ids — the
/// canonical form used for deduplication and set comparison.
using Clique = std::vector<NodeId>;

/// Canonical set of cliques with value semantics; the comparison target for
/// listing validation.
///
/// Cliques of up to `kPackedMax` vertices — every Kp the paper's algorithms
/// list (p ≤ 8) — are deduplicated in an open-addressing flat table over
/// fixed-width packed keys (sorted ids, -1-padded, splitmix-mixed), so the
/// simulators' per-report hot path does no heap allocation. Larger cliques
/// (e.g. maximal cliques of dense graphs) spill to a node-based set.
class CliqueSet {
 public:
  /// Widest clique stored inline; chosen for the paper's p ≤ 8 regime
  /// (a packed key is 8 × 32-bit NodeId = one cache line half).
  static constexpr std::size_t kPackedMax = 8;

  CliqueSet() = default;
  explicit CliqueSet(const std::vector<Clique>& cliques) {
    for (const auto& c : cliques) insert(c);
  }

  /// Inserts a clique given in any vertex order; returns true if new.
  bool insert(const Clique& clique);
  /// Allocation-free insert for cliques of ≤ kPackedMax vertices (any
  /// order); falls back to the spill set above that width.
  bool insert(std::span<const NodeId> clique);
  /// Erases a clique (any vertex order); returns true if it was present.
  /// Packed erase is backward-shift deletion (no tombstones), so lookup
  /// probe lengths never degrade under churn — the dynamic engine erases
  /// and re-inserts continuously.
  bool erase(const Clique& clique);
  bool erase(std::span<const NodeId> clique);
  bool contains(const Clique& clique) const;
  bool contains(std::span<const NodeId> clique) const;
  std::size_t size() const { return packed_count_ + overflow_.size(); }
  bool empty() const { return size() == 0; }

  /// Pre-sizes the packed table for `expected` cliques so the insert path
  /// performs no growth rehashes up to that size. Callers with a clique
  /// estimate (local enumerations report their count before the report
  /// loop) use this to kill the grow() churn on the hot path.
  void reserve(std::size_t expected);

  /// Longest probe distance of any packed key from its ideal slot — the
  /// robin-hood balance diagnostic. Insert placement is displacement-
  /// bounded (robin hood: a probing key steals the slot of any resident
  /// closer to its own ideal), so this stays O(log n)-ish at the 0.7 load
  /// ceiling no matter the insert order; in particular hash-ordered bulk
  /// inserts (shard-buffer merges walk tables in slot order) can no longer
  /// degenerate into the long probe chains plain linear probing builds
  /// (measured 60x on a growing table). O(slots) scan; tests assert the
  /// bound after adversarial insert orders.
  std::size_t max_displacement() const;

  /// Order-independent content hash: the wrapping sum of one mixed hash
  /// per member clique, maintained incrementally on insert/erase. Two sets
  /// with equal contents have equal fingerprints regardless of insertion
  /// history; the empty set is 0. Used as the ledger-style drift detector
  /// for the dynamic engine's benches and tests.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Visits every member clique as a sorted `std::span<const NodeId>`
  /// without materializing vectors — the allocation-free bulk-merge path
  /// (`ListingOutput::merge_from` folds per-shard sets with it). Packed
  /// cliques are visited in slot order, overflow cliques after in
  /// lexicographic order (the spill set is ordered precisely so this
  /// visitation order is deterministic — dcl_lint's unordered-iteration
  /// rule bans hash-order walks on any path that can reach fingerprints);
  /// the span is valid only for the duration of the call.
  template <typename F>
  void for_each_span(F&& fn) const {
    for (const PackedKey& key : slots_) {
      if (key[0] == kUnused) continue;
      std::size_t len = 1;
      while (len < kPackedMax && key[len] != kUnused) ++len;
      fn(std::span<const NodeId>(key.data(), len));
    }
    for (const Clique& c : overflow_) {
      fn(std::span<const NodeId>(c.data(), c.size()));
    }
  }

  /// Cliques present in `this` but not in `other`.
  std::vector<Clique> difference(const CliqueSet& other) const;

  bool operator==(const CliqueSet& other) const;

  std::vector<Clique> to_vector() const;

 private:
  /// Sorted node ids padded with kUnused; padding never collides with a
  /// real id, so key equality is exactly clique equality.
  using PackedKey = std::array<NodeId, kPackedMax>;
  static constexpr NodeId kUnused = -1;

  static PackedKey pack(std::span<const NodeId> clique);  // sorts inline
  static std::uint64_t hash_key(const PackedKey& key);
  /// Robin-hood placement of a key known to be absent (rehash + the tail
  /// of insert_packed): probes from the ideal slot, swapping with any
  /// resident that sits closer to its own ideal than the carried key does.
  static void place_robin_hood(std::vector<PackedKey>& slots, PackedKey key);

  bool insert_packed(const PackedKey& key);
  bool erase_packed(const PackedKey& key);
  bool contains_packed(const PackedKey& key) const;
  static std::uint64_t overflow_hash(const Clique& sorted);
  void rehash(std::size_t new_slots);
  void grow();
  template <typename F>
  void for_each(F&& fn) const;  // fn(const Clique&)

  std::vector<PackedKey> slots_;  ///< open addressing; key[0]==kUnused = free
  std::size_t packed_count_ = 0;
  std::uint64_t fingerprint_ = 0;
  /// Spill set for cliques wider than kPackedMax. Ordered (lexicographic
  /// over sorted member ids), NOT hashed: for_each/for_each_span walk it,
  /// and an unordered spill would leak implementation-defined hash order
  /// into every downstream visitation (found by dcl_lint's
  /// unordered-iteration rule). The spill path only carries >8-wide
  /// maximal cliques, so the O(log n) node-based set is not a hot path.
  std::set<Clique> overflow_;
};

/// All Kp instances of g, each as a sorted vertex vector. p >= 1.
/// p = 1 lists vertices, p = 2 lists edges.
std::vector<Clique> list_k_cliques(const Graph& g, int p);

/// Number of Kp instances (no materialization).
std::uint64_t count_k_cliques(const Graph& g, int p);

/// Independent counting implementation used to cross-check the oracle.
std::uint64_t count_k_cliques_naive(const Graph& g, int p);

/// Whether `nodes` (any order, distinct) induce a complete subgraph.
bool is_clique(const Graph& g, std::span<const NodeId> nodes);

/// All maximal cliques via Bron–Kerbosch with pivoting.
std::vector<Clique> maximal_cliques(const Graph& g);

/// Clique number ω(G) (size of the largest clique).
int clique_number(const Graph& g);

}  // namespace dcl

#include "enumeration/clique_enumeration.h"

#include <algorithm>
#include <stdexcept>

#include "graph/orientation.h"

namespace dcl {

bool CliqueSet::insert(Clique clique) {
  std::sort(clique.begin(), clique.end());
  return set_.insert(std::move(clique)).second;
}

bool CliqueSet::contains(Clique clique) const {
  std::sort(clique.begin(), clique.end());
  return set_.contains(clique);
}

std::vector<Clique> CliqueSet::difference(const CliqueSet& other) const {
  std::vector<Clique> out;
  for (const auto& c : set_) {
    if (!other.set_.contains(c)) out.push_back(c);
  }
  return out;
}

namespace {

/// Shared recursive kernel over the degeneracy DAG. `emit` receives each
/// completed clique; counting passes a counter-only lambda.
template <typename Emit>
void extend_clique(const std::vector<std::vector<NodeId>>& dag_out,
                   std::vector<NodeId>& prefix,
                   const std::vector<NodeId>& candidates, int p,
                   Emit&& emit) {
  if (static_cast<int>(prefix.size()) == p) {
    emit(prefix);
    return;
  }
  // Prune: not enough candidates left to complete the clique.
  const int needed = p - static_cast<int>(prefix.size());
  if (static_cast<int>(candidates.size()) < needed) return;

  std::vector<NodeId> next;
  for (const NodeId u : candidates) {
    // Intersect the full candidate list with dag_out[u]: every element of
    // dag_out[u] has strictly larger degeneracy rank than u, so each clique
    // is discovered exactly once, along its unique rank-increasing chain.
    next.clear();
    const auto& out_u = dag_out[static_cast<std::size_t>(u)];
    std::set_intersection(candidates.begin(), candidates.end(), out_u.begin(),
                          out_u.end(), std::back_inserter(next));
    prefix.push_back(u);
    extend_clique(dag_out, prefix, next, p, emit);
    prefix.pop_back();
  }
}

/// Builds, per node, the sorted list of neighbors that come *later* in the
/// degeneracy order. Every clique has exactly one representation as a path
/// in this DAG starting from its earliest-ordered vertex.
std::vector<std::vector<NodeId>> degeneracy_dag(const Graph& g) {
  const auto dec = degeneracy_order(g);
  std::vector<NodeId> rank(static_cast<std::size_t>(g.node_count()));
  for (std::size_t i = 0; i < dec.order.size(); ++i) {
    rank[static_cast<std::size_t>(dec.order[i])] = static_cast<NodeId>(i);
  }
  std::vector<std::vector<NodeId>> dag_out(
      static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId w : g.neighbors(v)) {
      if (rank[static_cast<std::size_t>(v)] <
          rank[static_cast<std::size_t>(w)]) {
        dag_out[static_cast<std::size_t>(v)].push_back(w);
      }
    }
    // neighbors(v) is sorted by id, so dag_out[v] is too.
  }
  return dag_out;
}

template <typename Emit>
void for_each_k_clique(const Graph& g, int p, Emit&& emit) {
  if (p < 1) throw std::invalid_argument("k-clique enumeration: p < 1");
  if (p == 1) {
    std::vector<NodeId> single(1);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      single[0] = v;
      emit(single);
    }
    return;
  }
  const auto dag_out = degeneracy_dag(g);
  std::vector<NodeId> prefix;
  prefix.reserve(static_cast<std::size_t>(p));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    prefix.assign(1, v);
    extend_clique(dag_out, prefix, dag_out[static_cast<std::size_t>(v)], p,
                  emit);
  }
}

}  // namespace

std::vector<Clique> list_k_cliques(const Graph& g, int p) {
  std::vector<Clique> result;
  for_each_k_clique(g, p, [&](const std::vector<NodeId>& clique) {
    Clique c = clique;
    std::sort(c.begin(), c.end());
    result.push_back(std::move(c));
  });
  return result;
}

std::uint64_t count_k_cliques(const Graph& g, int p) {
  std::uint64_t count = 0;
  for_each_k_clique(g, p, [&](const std::vector<NodeId>&) { ++count; });
  return count;
}

std::uint64_t count_k_cliques_naive(const Graph& g, int p) {
  if (p < 1) throw std::invalid_argument("k-clique counting: p < 1");
  if (p == 1) return static_cast<std::uint64_t>(g.node_count());
  // Recursion over id-increasing neighbor chains; independent of the
  // degeneracy machinery above. `depth` = number of vertices chosen so far.
  std::uint64_t count = 0;
  auto recurse = [&](auto&& self, const std::vector<NodeId>& cands,
                     int depth) -> void {
    if (depth == p) {
      ++count;
      return;
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const NodeId u = cands[i];
      std::vector<NodeId> next;
      const auto nbrs = g.neighbors(u);
      std::set_intersection(cands.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                            cands.end(), nbrs.begin(), nbrs.end(),
                            std::back_inserter(next));
      self(self, next, depth + 1);
    }
  };
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<NodeId> cands;
    for (NodeId w : g.neighbors(v)) {
      if (w > v) cands.push_back(w);
    }
    recurse(recurse, cands, 1);
  }
  return count;
}

bool is_clique(const Graph& g, std::span<const NodeId> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i] == nodes[j]) return false;
      if (!g.has_edge(nodes[i], nodes[j])) return false;
    }
  }
  return true;
}

namespace {

void bron_kerbosch(const Graph& g, std::vector<NodeId>& r,
                   std::vector<NodeId> p_set, std::vector<NodeId> x_set,
                   std::vector<Clique>& out) {
  if (p_set.empty() && x_set.empty()) {
    out.push_back(r);
    return;
  }
  // Pivot: vertex of P ∪ X with the most neighbors in P.
  NodeId pivot = -1;
  std::size_t best = 0;
  for (const auto* side : {&p_set, &x_set}) {
    for (NodeId u : *side) {
      const auto nbrs = g.neighbors(u);
      std::size_t cnt = 0;
      for (NodeId w : p_set) {
        if (std::binary_search(nbrs.begin(), nbrs.end(), w)) ++cnt;
      }
      if (pivot == -1 || cnt > best) {
        pivot = u;
        best = cnt;
      }
    }
  }
  const auto pivot_nbrs = g.neighbors(pivot);
  std::vector<NodeId> branch;
  for (NodeId v : p_set) {
    if (!std::binary_search(pivot_nbrs.begin(), pivot_nbrs.end(), v)) {
      branch.push_back(v);
    }
  }
  for (NodeId v : branch) {
    const auto v_nbrs = g.neighbors(v);
    std::vector<NodeId> p_next, x_next;
    std::set_intersection(p_set.begin(), p_set.end(), v_nbrs.begin(),
                          v_nbrs.end(), std::back_inserter(p_next));
    std::set_intersection(x_set.begin(), x_set.end(), v_nbrs.begin(),
                          v_nbrs.end(), std::back_inserter(x_next));
    r.push_back(v);
    bron_kerbosch(g, r, std::move(p_next), std::move(x_next), out);
    r.pop_back();
    p_set.erase(std::find(p_set.begin(), p_set.end(), v));
    x_set.insert(std::lower_bound(x_set.begin(), x_set.end(), v), v);
  }
}

}  // namespace

std::vector<Clique> maximal_cliques(const Graph& g) {
  std::vector<Clique> out;
  if (g.node_count() == 0) return out;
  std::vector<NodeId> p_set(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    p_set[static_cast<std::size_t>(v)] = v;
  }
  std::vector<NodeId> r;
  bron_kerbosch(g, r, std::move(p_set), {}, out);
  for (auto& c : out) std::sort(c.begin(), c.end());
  return out;
}

int clique_number(const Graph& g) {
  int best = 0;
  for (const auto& c : maximal_cliques(g)) {
    best = std::max(best, static_cast<int>(c.size()));
  }
  return best;
}

}  // namespace dcl

#include "enumeration/clique_enumeration.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/intersect.h"
#include "graph/orientation.h"

namespace dcl {

// ---------------------------------------------------------------------------
// CliqueSet — open-addressing flat table over packed keys.
// ---------------------------------------------------------------------------

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CliqueSet::PackedKey CliqueSet::pack(std::span<const NodeId> clique) {
  PackedKey key;
  key.fill(kUnused);
  std::copy(clique.begin(), clique.end(), key.begin());
  // Insertion sort: the keys are at most 8 wide, and report order is
  // usually already sorted or nearly so.
  for (std::size_t i = 1; i < clique.size(); ++i) {
    const NodeId x = key[i];
    std::size_t j = i;
    for (; j > 0 && key[j - 1] > x; --j) key[j] = key[j - 1];
    key[j] = x;
  }
  return key;
}

std::uint64_t CliqueSet::hash_key(const PackedKey& key) {
  static_assert(sizeof(PackedKey) == 4 * sizeof(std::uint64_t));
  const auto lanes = std::bit_cast<std::array<std::uint64_t, 4>>(key);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t lane : lanes) h = splitmix64(h ^ lane);
  return h;
}

void CliqueSet::place_robin_hood(std::vector<PackedKey>& slots,
                                 PackedKey key) {
  const std::size_t mask = slots.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_key(key)) & mask;
  std::size_t dist = 0;
  while (slots[i][0] != kUnused) {
    const std::size_t their =
        (i - (static_cast<std::size_t>(hash_key(slots[i])) & mask)) & mask;
    if (their < dist) {
      std::swap(slots[i], key);
      dist = their;
    }
    i = (i + 1) & mask;
    ++dist;
  }
  slots[i] = key;
}

bool CliqueSet::insert_packed(const PackedKey& key) {
  if (slots_.empty()) {
    PackedKey empty;
    empty.fill(kUnused);
    slots_.assign(32, empty);
  } else if ((packed_count_ + 1) * 10 > slots_.size() * 7) {
    grow();
  }
  // Robin-hood probe: along a probe chain residents appear in
  // non-decreasing ideal-slot order, so an equal key — same ideal slot —
  // must occur before the first resident strictly closer to its own ideal
  // than we are to ours; the duplicate scan is complete the moment a steal
  // happens, and from there the displaced residents just carry forward.
  // Displacement stays bounded regardless of insert order — the
  // hash-ordered-insert trap (slot-order bulk merges into a growing
  // table, measured 60x over pre-reserved) is killed at the root instead
  // of per call site.
  const std::size_t mask = slots_.size() - 1;
  PackedKey cur = key;
  std::size_t i = static_cast<std::size_t>(hash_key(cur)) & mask;
  std::size_t dist = 0;
  bool scanning = true;  // `cur` is still the probe key, not a displacee
  while (slots_[i][0] != kUnused) {
    if (scanning && slots_[i] == cur) return false;
    const std::size_t their =
        (i - (static_cast<std::size_t>(hash_key(slots_[i])) & mask)) & mask;
    if (their < dist) {
      std::swap(slots_[i], cur);
      dist = their;
      scanning = false;
    }
    i = (i + 1) & mask;
    ++dist;
  }
  slots_[i] = cur;
  ++packed_count_;
  fingerprint_ += hash_key(key);
  return true;
}

bool CliqueSet::erase_packed(const PackedKey& key) {
  if (slots_.empty()) return false;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_key(key)) & mask;
  while (slots_[i] != key) {
    if (slots_[i][0] == kUnused) return false;
    i = (i + 1) & mask;
  }
  --packed_count_;
  fingerprint_ -= hash_key(key);
  // Backward-shift deletion: close the probe chain by pulling every
  // displaced follower into the vacated slot; no tombstones, so probe
  // lengths stay a function of load alone even under heavy churn.
  std::size_t hole = i;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (slots_[j][0] == kUnused) break;
    const std::size_t ideal = static_cast<std::size_t>(hash_key(slots_[j])) & mask;
    // slots_[j] may move into the hole iff the hole lies on its probe
    // path, i.e. the cyclic distance ideal→hole does not exceed ideal→j.
    if (((j - ideal) & mask) >= ((j - hole) & mask)) {
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  slots_[hole].fill(kUnused);
  return true;
}

bool CliqueSet::contains_packed(const PackedKey& key) const {
  if (slots_.empty()) return false;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_key(key)) & mask;
  while (slots_[i][0] != kUnused) {
    if (slots_[i] == key) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void CliqueSet::rehash(std::size_t new_slots) {
  std::vector<PackedKey> old = std::move(slots_);
  PackedKey empty;
  empty.fill(kUnused);
  slots_.assign(new_slots, empty);
  // Rehash feeds keys in old-slot (≈ hash) order — exactly the adversarial
  // order for plain linear probing; robin-hood placement keeps the rebuilt
  // table displacement-bounded too.
  for (const PackedKey& key : old) {
    if (key[0] == kUnused) continue;
    place_robin_hood(slots_, key);
  }
}

std::size_t CliqueSet::max_displacement() const {
  if (slots_.empty()) return 0;
  const std::size_t mask = slots_.size() - 1;
  std::size_t worst = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i][0] == kUnused) continue;
    const std::size_t ideal =
        static_cast<std::size_t>(hash_key(slots_[i])) & mask;
    worst = std::max(worst, (i - ideal) & mask);
  }
  return worst;
}

void CliqueSet::grow() {
  // Quadruple small tables so the climb to a large set pays half the
  // rehash passes (each pass rewrites every key — the ~14% grow() churn
  // of the PR 3 profile); double once a step is big enough that the 4x
  // memory overshoot would dominate.
  constexpr std::size_t kQuadrupleBelow = std::size_t{1} << 16;
  rehash(slots_.size() < kQuadrupleBelow ? slots_.size() * 4
                                         : slots_.size() * 2);
}

void CliqueSet::reserve(std::size_t expected) {
  std::size_t target = 32;
  // Smallest power of two keeping `expected` keys at or under 0.7 load.
  while (target * 7 < expected * 10) target *= 2;
  if (target > slots_.size()) rehash(target);
}

std::uint64_t CliqueSet::overflow_hash(const Clique& sorted) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const NodeId v : sorted) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  return h;
}

bool CliqueSet::insert(std::span<const NodeId> clique) {
  if (clique.empty() || clique.size() > kPackedMax) {
    Clique c(clique.begin(), clique.end());
    std::sort(c.begin(), c.end());
    const std::uint64_t h = overflow_hash(c);
    const bool fresh = overflow_.insert(std::move(c)).second;
    if (fresh) fingerprint_ += h;
    return fresh;
  }
  return insert_packed(pack(clique));
}

bool CliqueSet::insert(const Clique& clique) {
  return insert(std::span<const NodeId>(clique));
}

bool CliqueSet::erase(std::span<const NodeId> clique) {
  if (clique.empty() || clique.size() > kPackedMax) {
    Clique c(clique.begin(), clique.end());
    std::sort(c.begin(), c.end());
    const bool present = overflow_.erase(c) > 0;
    if (present) fingerprint_ -= overflow_hash(c);
    return present;
  }
  return erase_packed(pack(clique));
}

bool CliqueSet::erase(const Clique& clique) {
  return erase(std::span<const NodeId>(clique));
}

bool CliqueSet::contains(std::span<const NodeId> clique) const {
  if (clique.empty() || clique.size() > kPackedMax) {
    Clique c(clique.begin(), clique.end());
    std::sort(c.begin(), c.end());
    return overflow_.contains(c);
  }
  return contains_packed(pack(clique));
}

bool CliqueSet::contains(const Clique& clique) const {
  return contains(std::span<const NodeId>(clique));
}

template <typename F>
void CliqueSet::for_each(F&& fn) const {
  Clique scratch;
  for (const PackedKey& key : slots_) {
    if (key[0] == kUnused) continue;
    scratch.clear();
    for (const NodeId v : key) {
      if (v == kUnused) break;
      scratch.push_back(v);
    }
    fn(scratch);
  }
  for (const Clique& c : overflow_) fn(c);
}

std::vector<Clique> CliqueSet::difference(const CliqueSet& other) const {
  std::vector<Clique> out;
  for_each([&](const Clique& c) {
    if (!other.contains(std::span<const NodeId>(c))) out.push_back(c);
  });
  return out;
}

bool CliqueSet::operator==(const CliqueSet& other) const {
  if (size() != other.size()) return false;
  bool equal = true;
  for_each([&](const Clique& c) {
    equal = equal && other.contains(std::span<const NodeId>(c));
  });
  return equal;
}

std::vector<Clique> CliqueSet::to_vector() const {
  std::vector<Clique> out;
  out.reserve(size());
  for_each([&](const Clique& c) { out.push_back(c); });
  return out;
}

// ---------------------------------------------------------------------------
// Degeneracy-DAG enumeration.
// ---------------------------------------------------------------------------

namespace {

/// Per-depth scratch buffers for the candidate sets: depth d of the
/// recursion owns `scratch[d]`, so one allocation per depth serves the
/// whole enumeration instead of a fresh vector per candidate.
using Scratch = std::vector<std::vector<NodeId>>;

/// Per-node recursion level marks. The candidate set at level l is exactly
/// {w : label[w] == l}, so "candidates ∩ dag_out[u]" is a scan of
/// dag_out[u] with one indexed compare per element — no sorted merge, no
/// branches that depend on the interleaving of two lists. This is the
/// candidate-propagation scheme of sequential k-clique engines (kClist /
/// DIST); the sorted-merge kernels of common/intersect.h remain the tool
/// for call sites that have no label context. One byte per node: the
/// recursion depth is ≤ p, and the gathers dominate the kernel, so the
/// smaller footprint matters more than the width.
using Labels = std::vector<std::uint8_t>;

/// The label-scan loops gather label[w] for every w in a CSR segment;
/// prefetching the next candidate's segment hides the adjacency load
/// behind the current scan.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

/// The degeneracy DAG in flat CSR form: out-neighbors (strictly later in
/// the degeneracy order, sorted by id) in one contiguous array — one
/// allocation and sequential scans instead of a vector per node. Every
/// clique has exactly one representation as a path in this DAG starting
/// from its earliest-ordered vertex.
struct DegeneracyDag {
  std::vector<std::size_t> offsets;  ///< size n+1
  std::vector<NodeId> adj;           ///< size m

  std::span<const NodeId> out(NodeId v) const {
    return {adj.data() + offsets[static_cast<std::size_t>(v)],
            adj.data() + offsets[static_cast<std::size_t>(v) + 1]};
  }
};

DegeneracyDag degeneracy_dag(const Graph& g) {
  const auto dec = degeneracy_order(g);
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<NodeId> rank(n);
  for (std::size_t i = 0; i < dec.order.size(); ++i) {
    rank[static_cast<std::size_t>(dec.order[i])] = static_cast<NodeId>(i);
  }
  DegeneracyDag dag;
  dag.offsets.assign(n + 1, 0);
  // Two branchless passes over the (sorted) CSR adjacency: count, then
  // compact the rank-ascending neighbors of each segment. Sequential reads
  // plus one rank gather per visit — and because neighbor lists are id-
  // sorted, every segment comes out in ascending head order.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto rv = rank[static_cast<std::size_t>(v)];
    std::size_t c = 0;
    for (const NodeId w : g.neighbors(v)) {
      c += static_cast<std::size_t>(rank[static_cast<std::size_t>(w)] > rv);
    }
    dag.offsets[static_cast<std::size_t>(v) + 1] = c;
  }
  for (std::size_t v = 0; v < n; ++v) dag.offsets[v + 1] += dag.offsets[v];
  // One pad slot: the compacting write below touches position c even for a
  // skipped neighbor, and for the last node that can be one past its
  // segment (strays inside earlier segments are overwritten by the next
  // node's fill; the counts guarantee every kept slot is written last).
  dag.adj.resize(static_cast<std::size_t>(g.edge_count()) + 1);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto rv = rank[static_cast<std::size_t>(v)];
    std::size_t c = dag.offsets[static_cast<std::size_t>(v)];
    for (const NodeId w : g.neighbors(v)) {
      dag.adj[c] = w;
      c += static_cast<std::size_t>(rank[static_cast<std::size_t>(w)] > rv);
    }
  }
  dag.adj.resize(static_cast<std::size_t>(g.edge_count()));
  return dag;
}

/// Label-scan kernel over the degeneracy DAG for p ≤ 3 (`remaining` ∈
/// {1, 2}): at these depths the merged last levels are optimal as plain
/// label-compare scans, and the trimming machinery below would only add
/// partition writes. `emit` receives each completed clique.
// dcl-hot
template <typename Emit>
void extend_clique(const DegeneracyDag& dag, std::vector<NodeId>& prefix,
                   std::span<const NodeId> candidates, int level,
                   int remaining, Labels& label, Emit&& emit) {
  // Prune: not enough candidates left to complete the clique.
  if (static_cast<int>(candidates.size()) < remaining) return;
  if (remaining == 1) {
    // dcl-lint: allow(sem-hot-alloc): prefix is caller-reserved to depth p
    prefix.push_back(candidates.front());
    for (const NodeId u : candidates) {
      prefix.back() = u;
      emit(prefix);
    }
    prefix.pop_back();
    return;
  }
  // remaining == 2 (p == 3): the last two levels merged — completing pairs
  // are emitted straight from the label scan, with no candidate
  // materialization.
  const std::size_t base = prefix.size();
  // dcl-lint: allow(sem-hot-alloc): prefix is caller-reserved to depth p
  prefix.resize(base + 2);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i + 1 < candidates.size()) {
      prefetch(dag.adj.data() +
               dag.offsets[static_cast<std::size_t>(candidates[i + 1])]);
    }
    prefix[base] = candidates[i];
    for (const NodeId w : dag.out(candidates[i])) {
      if (label[static_cast<std::size_t>(w)] == level) {
        prefix[base + 1] = w;
        emit(prefix);
      }
    }
  }
  // dcl-lint: allow(sem-hot-alloc): shrink back to entry size, no growth
  prefix.resize(base);
}

/// Counting twin of `extend_clique` (p ≤ 3): the innermost levels collapse
/// to label-compare counts, so nothing is materialized where the work is.
// dcl-hot
std::uint64_t count_extend(const DegeneracyDag& dag,
                           std::span<const NodeId> candidates, int level,
                           int remaining, Labels& label) {
  if (static_cast<int>(candidates.size()) < remaining) return 0;
  if (remaining == 1) return candidates.size();
  // remaining == 2 (p == 3).
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i + 1 < candidates.size()) {
      prefetch(dag.adj.data() +
               dag.offsets[static_cast<std::size_t>(candidates[i + 1])]);
    }
    for (const NodeId w : dag.out(candidates[i])) {
      count += static_cast<std::uint64_t>(
          label[static_cast<std::size_t>(w)] == level);
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// kClist-style trimmed sub-DAG kernel (p ≥ 4).
// ---------------------------------------------------------------------------

/// Mutable view of the degeneracy DAG for the trimming kernel: at recursion
/// level l, the first `deg[x]` entries of x's CSR segment are exactly the
/// out-neighbors of x that survive at that level. Descending one level
/// partitions each surviving candidate's prefix in place (swap survivors to
/// the front) and shrinks `deg`; returning restores `deg` from the
/// per-level scratch — the permutation itself never needs undoing, because
/// every deeper survivor set is a subset of the prefix it was carved from.
/// Consequences: the next candidate set is a free span (no filtered copy),
/// inner scans touch induced degrees instead of full degrees, and the last
/// level is a plain degree sum with no scan at all.
struct TrimDag {
  const DegeneracyDag* dag;
  std::vector<NodeId> adj;  ///< per-segment-prefix permutation of dag->adj
  std::vector<NodeId> deg;  ///< current trimmed out-degree per node

  explicit TrimDag(const DegeneracyDag& d) : dag(&d), adj(d.adj) {
    const std::size_t n = d.offsets.size() - 1;
    deg.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      deg[v] = to_node(d.offsets[v + 1] - d.offsets[v]);
    }
  }
  std::span<const NodeId> out(NodeId v) const {
    return {adj.data() + dag->offsets[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])};
  }
};

/// Trims the segment prefix of every x in `cands` (all labeled `mark`) down
/// to the neighbors also labeled `mark`, recording the previous degrees in
/// `saved` for restore.
// dcl-hot
void trim_prefixes(TrimDag& sub, std::span<const NodeId> cands,
                   const Labels& label, std::uint8_t mark,
                   std::vector<NodeId>& saved) {
  saved.clear();
  saved.reserve(cands.size());  // exactly one entry per candidate
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const NodeId x = cands[i];
    if (i + 1 < cands.size()) {
      prefetch(sub.adj.data() +
               sub.dag->offsets[static_cast<std::size_t>(cands[i + 1])]);
    }
    const NodeId d0 = sub.deg[static_cast<std::size_t>(x)];
    saved.push_back(d0);
    NodeId* seg = sub.adj.data() + sub.dag->offsets[static_cast<std::size_t>(x)];
    NodeId k = 0;
    for (NodeId j = 0; j < d0; ++j) {
      // Branchless conditional swap: the survive test flips a
      // data-dependent fraction of the time, so a branch here mispredicts
      // its way through the hottest loop of the kernel.
      const NodeId w = seg[j];
      const NodeId a = seg[k];
      const bool take = label[static_cast<std::size_t>(w)] == mark;
      seg[j] = take ? a : w;
      seg[k] = take ? w : a;
      k += static_cast<NodeId>(take);
    }
    sub.deg[static_cast<std::size_t>(x)] = k;
  }
}

/// Counting recursion over the trimmed sub-DAG. Entry invariant: every
/// candidate is labeled `level` and trimmed to the candidate set (the
/// parent — or the root loop — ran `trim_prefixes`). `remaining` ≥ 2.
std::uint64_t count_trim(TrimDag& sub, std::span<const NodeId> cands,
                         std::uint8_t level, int remaining, Labels& label,
                         Scratch& scratch) {
  if (static_cast<int>(cands.size()) < remaining) return 0;
  if (remaining == 2) {
    // The prefix invariant makes the two last levels a pure degree sum:
    // deg[x] counts exactly the completing pairs (x, w) within `cands`.
    std::uint64_t count = 0;
    for (const NodeId x : cands) {
      count += static_cast<std::uint64_t>(sub.deg[static_cast<std::size_t>(x)]);
    }
    return count;
  }
  std::uint64_t count = 0;
  std::vector<NodeId>& saved = scratch[static_cast<std::size_t>(level)];
  for (const NodeId u : cands) {
    const auto next = sub.out(u);  // already trimmed to `cands` — free
    if (static_cast<int>(next.size()) < remaining - 1) continue;
    for (const NodeId x : next) {
      label[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(level + 1);
    }
    trim_prefixes(sub, next, label, static_cast<std::uint8_t>(level + 1), saved);
    count += count_trim(sub, next, static_cast<std::uint8_t>(level + 1),
                        remaining - 1, label, scratch);
    for (std::size_t i = 0; i < next.size(); ++i) {
      label[static_cast<std::size_t>(next[i])] = level;
      sub.deg[static_cast<std::size_t>(next[i])] = saved[i];
    }
  }
  return count;
}

/// Listing twin of `count_trim`: same trimming, but the last level emits
/// the completed cliques straight from the trimmed prefixes.
template <typename Emit>
void extend_trim(TrimDag& sub, std::vector<NodeId>& prefix,
                 std::span<const NodeId> cands, std::uint8_t level,
                 int remaining, Labels& label, Scratch& scratch,
                 Emit&& emit) {
  if (static_cast<int>(cands.size()) < remaining) return;
  if (remaining == 2) {
    const std::size_t base = prefix.size();
    prefix.resize(base + 2);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (i + 1 < cands.size()) {
        prefetch(sub.adj.data() +
                 sub.dag->offsets[static_cast<std::size_t>(cands[i + 1])]);
      }
      prefix[base] = cands[i];
      for (const NodeId w : sub.out(cands[i])) {
        prefix[base + 1] = w;
        emit(prefix);
      }
    }
    prefix.resize(base);
    return;
  }
  std::vector<NodeId>& saved = scratch[static_cast<std::size_t>(level)];
  for (const NodeId u : cands) {
    const auto next = sub.out(u);
    if (static_cast<int>(next.size()) < remaining - 1) continue;
    for (const NodeId x : next) {
      label[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(level + 1);
    }
    trim_prefixes(sub, next, label, static_cast<std::uint8_t>(level + 1), saved);
    prefix.push_back(u);
    extend_trim(sub, prefix, next, static_cast<std::uint8_t>(level + 1),
                remaining - 1, label, scratch, emit);
    prefix.pop_back();
    for (std::size_t i = 0; i < next.size(); ++i) {
      label[static_cast<std::size_t>(next[i])] = level;
      sub.deg[static_cast<std::size_t>(next[i])] = saved[i];
    }
  }
}

template <typename Emit>
void for_each_k_clique(const Graph& g, int p, Emit&& emit) {
  if (p < 1) throw std::invalid_argument("k-clique enumeration: p < 1");
  if (p == 1) {
    std::vector<NodeId> single(1);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      single[0] = v;
      emit(single);
    }
    return;
  }
  const DegeneracyDag dag = degeneracy_dag(g);
  Scratch scratch(static_cast<std::size_t>(p));
  Labels label(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<NodeId> prefix;
  prefix.reserve(static_cast<std::size_t>(p));
  if (p >= 4) {
    TrimDag sub(dag);
    std::vector<NodeId>& saved = scratch[0];
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto cands = dag.out(v);
      if (static_cast<int>(cands.size()) < p - 1) continue;
      for (const NodeId w : cands) label[static_cast<std::size_t>(w)] = 1;
      trim_prefixes(sub, cands, label, 1, saved);
      prefix.assign(1, v);
      extend_trim(sub, prefix, cands, 1, p - 1, label, scratch, emit);
      for (std::size_t i = 0; i < cands.size(); ++i) {
        label[static_cast<std::size_t>(cands[i])] = 0;
        sub.deg[static_cast<std::size_t>(cands[i])] = saved[i];
      }
    }
    return;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto cands = dag.out(v);
    if (static_cast<int>(cands.size()) < p - 1) continue;
    for (const NodeId w : cands) label[static_cast<std::size_t>(w)] = 1;
    prefix.assign(1, v);
    extend_clique(dag, prefix, cands, 1, p - 1, label, emit);
    for (const NodeId w : cands) label[static_cast<std::size_t>(w)] = 0;
  }
}

}  // namespace

std::vector<Clique> list_k_cliques(const Graph& g, int p) {
  // Two-stage emit: the kernel appends p ids per clique to one flat buffer
  // (amortized-free), and the per-clique vectors are materialized once the
  // total is known — exact outer reserve, no vector-of-vectors growth
  // relocations on the hot path.
  std::vector<NodeId> flat;
  for_each_k_clique(g, p, [&](const std::vector<NodeId>& clique) {
    flat.insert(flat.end(), clique.begin(), clique.end());
  });
  const auto width = static_cast<std::size_t>(p);
  const auto cas = [](NodeId& a, NodeId& b) {  // branchless compare-swap
    const NodeId lo = std::min(a, b);
    b = std::max(a, b);
    a = lo;
  };
  std::vector<Clique> result;
  result.reserve(flat.size() / width);
  for (std::size_t at = 0; at < flat.size(); at += width) {
    // Canonicalize in the flat buffer. Sorting networks for the common
    // widths (optimal compare-swap counts, no data-dependent branches);
    // insertion sort above that.
    NodeId* c = flat.data() + at;
    switch (width) {
      case 2:
        cas(c[0], c[1]);
        break;
      case 3:
        cas(c[0], c[2]); cas(c[0], c[1]); cas(c[1], c[2]);
        break;
      case 4:
        cas(c[0], c[2]); cas(c[1], c[3]); cas(c[0], c[1]); cas(c[2], c[3]);
        cas(c[1], c[2]);
        break;
      case 5:
        cas(c[0], c[3]); cas(c[1], c[4]); cas(c[0], c[2]); cas(c[1], c[3]);
        cas(c[0], c[1]); cas(c[2], c[4]); cas(c[1], c[2]); cas(c[3], c[4]);
        cas(c[2], c[3]);
        break;
      default:
        for (std::size_t i = 1; i < width; ++i) {
          const NodeId x = c[i];
          std::size_t j = i;
          for (; j > 0 && c[j - 1] > x; --j) c[j] = c[j - 1];
          c[j] = x;
        }
        break;
    }
    result.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(at),
                        flat.begin() + static_cast<std::ptrdiff_t>(at + width));
  }
  return result;
}

std::uint64_t count_k_cliques(const Graph& g, int p) {
  if (p < 1) throw std::invalid_argument("k-clique enumeration: p < 1");
  if (p == 1) return static_cast<std::uint64_t>(g.node_count());
  const DegeneracyDag dag = degeneracy_dag(g);
  Scratch scratch(static_cast<std::size_t>(p));
  Labels label(static_cast<std::size_t>(g.node_count()), 0);
  std::uint64_t count = 0;
  if (p >= 4) {
    TrimDag sub(dag);
    std::vector<NodeId>& saved = scratch[0];
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto cands = dag.out(v);
      if (static_cast<int>(cands.size()) < p - 1) continue;
      for (const NodeId w : cands) label[static_cast<std::size_t>(w)] = 1;
      trim_prefixes(sub, cands, label, 1, saved);
      count += count_trim(sub, cands, 1, p - 1, label, scratch);
      for (std::size_t i = 0; i < cands.size(); ++i) {
        label[static_cast<std::size_t>(cands[i])] = 0;
        sub.deg[static_cast<std::size_t>(cands[i])] = saved[i];
      }
    }
    return count;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto cands = dag.out(v);
    if (static_cast<int>(cands.size()) < p - 1) continue;
    for (const NodeId w : cands) label[static_cast<std::size_t>(w)] = 1;
    count += count_extend(dag, cands, 1, p - 1, label);
    for (const NodeId w : cands) label[static_cast<std::size_t>(w)] = 0;
  }
  return count;
}

std::uint64_t count_k_cliques_naive(const Graph& g, int p) {
  if (p < 1) throw std::invalid_argument("k-clique counting: p < 1");
  if (p == 1) return static_cast<std::uint64_t>(g.node_count());
  // Recursion over id-increasing neighbor chains; independent of the
  // degeneracy machinery above. `depth` = number of vertices chosen so far.
  std::uint64_t count = 0;
  Scratch scratch(static_cast<std::size_t>(p));
  auto recurse = [&](auto&& self, std::span<const NodeId> cands,
                     int depth) -> void {
    if (depth == p) {
      ++count;
      return;
    }
    std::vector<NodeId>& next = scratch[static_cast<std::size_t>(depth)];
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const NodeId u = cands[i];
      intersect_into(cands.subspan(i + 1),
                     g.neighbors(u), next);
      self(self, next, depth + 1);
    }
  };
  std::vector<NodeId> cands;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    cands.clear();
    for (NodeId w : g.neighbors(v)) {
      if (w > v) cands.push_back(w);
    }
    recurse(recurse, cands, 1);
  }
  return count;
}

bool is_clique(const Graph& g, std::span<const NodeId> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i] == nodes[j]) return false;
      if (!g.has_edge(nodes[i], nodes[j])) return false;
    }
  }
  return true;
}

namespace {

void bron_kerbosch(const Graph& g, std::vector<NodeId>& r,
                   std::vector<NodeId> p_set, std::vector<NodeId> x_set,
                   std::vector<Clique>& out) {
  if (p_set.empty()) {
    if (x_set.empty()) out.push_back(r);
    return;  // nothing to branch on either way
  }
  // Pivot: vertex of P ∪ X with the most neighbors in P.
  NodeId pivot = -1;
  std::size_t best = 0;
  for (const auto* side : {&p_set, &x_set}) {
    for (NodeId u : *side) {
      const std::size_t cnt = intersect_count(p_set, g.neighbors(u));
      if (pivot == -1 || cnt > best) {
        pivot = u;
        best = cnt;
      }
    }
  }
  const auto pivot_nbrs = g.neighbors(pivot);
  std::vector<NodeId> branch;
  for (NodeId v : p_set) {
    if (!sorted_contains(pivot_nbrs, v)) branch.push_back(v);
  }
  for (NodeId v : branch) {
    const auto v_nbrs = g.neighbors(v);
    std::vector<NodeId> p_next, x_next;
    intersect_into(p_set, v_nbrs, p_next);
    intersect_into(x_set, v_nbrs, x_next);
    r.push_back(v);
    bron_kerbosch(g, r, std::move(p_next), std::move(x_next), out);
    r.pop_back();
    p_set.erase(std::find(p_set.begin(), p_set.end(), v));
    x_set.insert(std::lower_bound(x_set.begin(), x_set.end(), v), v);
  }
}

}  // namespace

std::vector<Clique> maximal_cliques(const Graph& g) {
  std::vector<Clique> out;
  if (g.node_count() == 0) return out;
  std::vector<NodeId> p_set(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    p_set[static_cast<std::size_t>(v)] = v;
  }
  std::vector<NodeId> r;
  bron_kerbosch(g, r, std::move(p_set), {}, out);
  for (auto& c : out) std::sort(c.begin(), c.end());
  return out;
}

int clique_number(const Graph& g) {
  int best = 0;
  for (const auto& c : maximal_cliques(g)) {
    best = std::max(best, static_cast<int>(c.size()));
  }
  return best;
}

}  // namespace dcl

#include "core/arb_list.h"

#include <gtest/gtest.h>

#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "test_util.h"

namespace dcl {
namespace {

struct ArbHarness {
  Graph g;
  RoundLedger ledger;
  KpConfig cfg;
  Rng rng{17};
  EdgeMask es, er, away;
  std::int64_t arboricity_bound = 1;

  explicit ArbHarness(Graph graph, int p) : g(std::move(graph)) {
    cfg.p = p;
    const Orientation o = degeneracy_orientation(g);
    away.assign(g.edge_count(), false);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      away.set(e, o.away_from_lower(e));
    }
    es.assign(g.edge_count(), false);
    er.assign(g.edge_count(), true);
    arboricity_bound = std::max<std::int64_t>(1, o.max_out_degree());
  }

  ArbIterationTrace step(ListingOutput& out, std::int64_t cluster_degree) {
    ArbListContext ctx;
    ctx.base = &g;
    ctx.ledger = &ledger;
    ctx.cfg = &cfg;
    ctx.rng = &rng;
    ctx.out = &out;
    ctx.es_mask = &es;
    ctx.er_mask = &er;
    ctx.away = &away;
    ctx.cluster_degree = cluster_degree;
    ctx.arboricity_bound = arboricity_bound;
    return arb_list(ctx);
  }

  /// Base edge ids removed by the call (goal edges): neither Es nor Er.
  EdgeMask removed_mask() const {
    EdgeMask removed(g.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      removed.set(e, !es[e] && !er[e]);
    }
    return removed;
  }
};

/// The Theorem 2.9 contract: every Kp of the input edge set with at least
/// one removed (goal) edge is listed; listed cliques are real.
void expect_goal_coverage(const ArbHarness& h, const ListingOutput& out,
                          int p) {
  expect_ledger_valid(h.ledger);
  const auto removed = h.removed_mask();
  const auto truth = list_k_cliques(h.g, p);
  std::size_t expected = 0;
  for (const auto& clique : truth) {
    bool has_goal = false;
    for (std::size_t x = 0; x < clique.size() && !has_goal; ++x) {
      for (std::size_t y = x + 1; y < clique.size() && !has_goal; ++y) {
        const auto eid = h.g.edge_id(clique[x], clique[y]);
        if (eid && removed[*eid]) has_goal = true;
      }
    }
    if (has_goal) {
      ++expected;
      EXPECT_TRUE(out.cliques().contains(clique))
          << "missing clique with goal edge";
    }
  }
  // No false positives: everything reported is a real p-clique.
  CliqueSet truth_set{truth};
  for (const auto& c : out.cliques().to_vector()) {
    EXPECT_TRUE(truth_set.contains(c)) << "reported a non-clique";
  }
  EXPECT_GE(out.unique_count(), expected);
}

TEST(ArbList, DenseGraphOnePassCoverage) {
  Rng gen(1);
  ArbHarness h(erdos_renyi_gnm(120, 3200, gen), 4);
  ListingOutput out(h.g.node_count());
  const auto trace = h.step(out, /*cluster_degree=*/8);
  EXPECT_GT(trace.clusters, 0);
  EXPECT_GT(trace.goal_edges, 0);
  EXPECT_LT(trace.er_after, trace.er_before);
  expect_goal_coverage(h, out, 4);
}

TEST(ArbList, P5Coverage) {
  Rng gen(2);
  ArbHarness h(erdos_renyi_gnm(90, 2400, gen), 5);
  ListingOutput out(h.g.node_count());
  h.step(out, 8);
  expect_goal_coverage(h, out, 5);
}

TEST(ArbList, TriangleCoverage) {
  Rng gen(3);
  ArbHarness h(erdos_renyi_gnm(100, 2000, gen), 3);
  ListingOutput out(h.g.node_count());
  h.step(out, 6);
  expect_goal_coverage(h, out, 3);
}

TEST(ArbList, K4FastModeCoverage) {
  Rng gen(4);
  ArbHarness h(erdos_renyi_gnm(110, 2800, gen), 4);
  h.cfg.k4_fast = true;
  ListingOutput out(h.g.node_count());
  h.step(out, 8);
  expect_goal_coverage(h, out, 4);
}

TEST(ArbList, EmptyErIsNoOp) {
  Rng gen(5);
  ArbHarness h(erdos_renyi_gnm(30, 100, gen), 4);
  h.er.fill(false);
  ListingOutput out(h.g.node_count());
  const auto trace = h.step(out, 4);
  EXPECT_EQ(trace.er_before, 0);
  EXPECT_EQ(trace.er_after, 0);
  EXPECT_EQ(out.unique_count(), 0u);
  EXPECT_DOUBLE_EQ(h.ledger.total_rounds(), 0.0);
}

TEST(ArbList, SparseGraphPeelsWithoutClusters) {
  // A path has no n^δ-cluster: everything goes to Es, nothing is listed,
  // and no communication phases run.
  ArbHarness h(path_graph(60), 4);
  ListingOutput out(h.g.node_count());
  const auto trace = h.step(out, 5);
  EXPECT_EQ(trace.clusters, 0);
  EXPECT_EQ(trace.er_after, 0);
  EXPECT_EQ(trace.es_total, h.g.edge_count());
  EXPECT_EQ(out.unique_count(), 0u);
}

TEST(ArbList, EsOrientationStaysBounded) {
  Rng gen(6);
  ArbHarness h(erdos_renyi_gnm(100, 2500, gen), 4);
  ListingOutput out(h.g.node_count());
  const std::int64_t cluster_degree = 8;
  h.step(out, cluster_degree);
  // Theorem 2.9: Es out-degree grows by at most n^δ per call (we ran one
  // call from Es = ∅, so the witness must be ≤ n^δ).
  std::vector<std::int64_t> outdeg(static_cast<std::size_t>(h.g.node_count()),
                                   0);
  h.es.for_each_set([&](EdgeId e) {
    const Edge& ed = h.g.edge(e);
    ++outdeg[static_cast<std::size_t>(h.away[e] ? ed.u : ed.v)];
  });
  for (const auto d : outdeg) EXPECT_LE(d, cluster_degree);
}

TEST(ArbList, BadEdgeBudgetRespected) {
  // Aggressively low bad threshold to force the mechanism on, then check
  // the budget |bad| ≤ |Er|/12 that keeps Theorem 2.9's |Êr| ≤ |Er|/4
  // accounting intact (the paper proves 1/25 with its constants).
  Rng gen(7);
  ArbHarness h(erdos_renyi_gnm(150, 4500, gen), 4);
  h.cfg.bad_scale = 0.2;
  ListingOutput out(h.g.node_count());
  const auto trace = h.step(out, 10);
  // Theorem 2.9 accounting: |Êr| = |E'r| + |bad| must stay ≤ |Er|/4.
  EXPECT_LE(trace.er_after, trace.er_before / 4)
      << "bad edges broke the Er decay budget";
  expect_goal_coverage(h, out, 4);
}

TEST(ArbList, DisabledBadEdgesStillCorrect) {
  Rng gen(8);
  ArbHarness h(erdos_renyi_gnm(100, 2600, gen), 4);
  h.cfg.enable_bad_edges = false;
  ListingOutput out(h.g.node_count());
  const auto trace = h.step(out, 8);
  EXPECT_EQ(trace.bad_edges, 0);
  expect_goal_coverage(h, out, 4);
}

TEST(ArbList, RemarkLearnedEdgeBoundHolds) {
  // Remark 2.10: every cluster node learns Õ(n^{d+3/4}) edges; with
  // A = n^d the bound is A · n^{3/4} (log factors absorbed by slack 8).
  Rng gen(9);
  ArbHarness h(erdos_renyi_gnm(120, 3600, gen), 4);
  ListingOutput out(h.g.node_count());
  const auto trace = h.step(out, 8);
  const double bound =
      8.0 * static_cast<double>(h.arboricity_bound) *
      std::pow(static_cast<double>(h.g.node_count()), 0.75);
  EXPECT_LE(static_cast<double>(trace.max_learned_edges), bound);
}

TEST(ArbList, DeterministicUnderSeed) {
  Rng gen(10);
  const Graph g = erdos_renyi_gnm(80, 1600, gen);
  ArbHarness h1(g, 4), h2(g, 4);
  ListingOutput o1(g.node_count()), o2(g.node_count());
  const auto t1 = h1.step(o1, 6);
  const auto t2 = h2.step(o2, 6);
  EXPECT_EQ(t1.er_after, t2.er_after);
  EXPECT_EQ(t1.goal_edges, t2.goal_edges);
  EXPECT_TRUE(o1.cliques() == o2.cliques());
  EXPECT_DOUBLE_EQ(h1.ledger.total_rounds(), h2.ledger.total_rounds());
}

}  // namespace
}  // namespace dcl

#include "congest/round_ledger.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcl {
namespace {

TEST(RoundLedger, TotalsAcrossKinds) {
  RoundLedger ledger;
  ledger.charge_exchange("phase-a", 10.0, 100);
  ledger.charge_routing("route-b", 5.5, 50);
  ledger.charge_analytic("decomp", 20.0);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 35.5);
  EXPECT_EQ(ledger.total_messages(), 150u);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::exchange), 10.0);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::routing), 5.5);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::analytic), 20.0);
}

TEST(RoundLedger, ByLabelAggregates) {
  RoundLedger ledger;
  ledger.charge_exchange("x", 1.0, 1);
  ledger.charge_exchange("x", 2.0, 1);
  ledger.charge_exchange("y", 4.0, 1);
  const auto by_label = ledger.rounds_by_label();
  EXPECT_DOUBLE_EQ(by_label.at("x"), 3.0);
  EXPECT_DOUBLE_EQ(by_label.at("y"), 4.0);
}

TEST(RoundLedger, MergeAppends) {
  RoundLedger a, b;
  a.charge_exchange("x", 1.0, 5);
  b.charge_routing("y", 2.0, 7);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_rounds(), 3.0);
  EXPECT_EQ(a.total_messages(), 12u);
  EXPECT_EQ(a.entries().size(), 2u);
}

TEST(RoundLedger, EmptyLedger) {
  RoundLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
  EXPECT_EQ(ledger.total_messages(), 0u);
  EXPECT_TRUE(ledger.rounds_by_label().empty());
}

TEST(RoundLedger, PrintBreakdownContainsLabels) {
  RoundLedger ledger;
  ledger.charge_exchange("alpha-phase", 3.0, 9);
  ledger.charge_analytic("beta-charge", 4.0);
  std::ostringstream os;
  ledger.print_breakdown(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha-phase"), std::string::npos);
  EXPECT_NE(text.find("beta-charge"), std::string::npos);
  EXPECT_NE(text.find("total=7.0"), std::string::npos);
}

TEST(CostKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(CostKind::exchange), "exchange");
  EXPECT_STREQ(to_string(CostKind::routing), "routing");
  EXPECT_STREQ(to_string(CostKind::analytic), "analytic");
}

}  // namespace
}  // namespace dcl

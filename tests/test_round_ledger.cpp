#include "congest/round_ledger.h"

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.h"

namespace dcl {
namespace {

TEST(RoundLedger, TotalsAcrossKinds) {
  RoundLedger ledger;
  ledger.charge_exchange("phase-a", 10.0, 100);
  ledger.charge_routing("route-b", 5.5, 50);
  ledger.charge_analytic("decomp", 20.0);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 35.5);
  EXPECT_EQ(ledger.total_messages(), 150u);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::exchange), 10.0);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::routing), 5.5);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::analytic), 20.0);
}

TEST(RoundLedger, ByLabelAggregates) {
  RoundLedger ledger;
  ledger.charge_exchange("x", 1.0, 1);
  ledger.charge_exchange("x", 2.0, 1);
  ledger.charge_exchange("y", 4.0, 1);
  const auto by_label = ledger.rounds_by_label();
  EXPECT_DOUBLE_EQ(by_label.at("x"), 3.0);
  EXPECT_DOUBLE_EQ(by_label.at("y"), 4.0);
}

TEST(RoundLedger, MergeAppends) {
  RoundLedger a, b;
  a.charge_exchange("x", 1.0, 5);
  b.charge_routing("y", 2.0, 7);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_rounds(), 3.0);
  EXPECT_EQ(a.total_messages(), 12u);
  EXPECT_EQ(a.entries().size(), 2u);
}

TEST(RoundLedger, EmptyLedger) {
  RoundLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
  EXPECT_EQ(ledger.total_messages(), 0u);
  EXPECT_TRUE(ledger.rounds_by_label().empty());
}

TEST(RoundLedger, PrintBreakdownContainsLabels) {
  RoundLedger ledger;
  ledger.charge_exchange("alpha-phase", 3.0, 9);
  ledger.charge_analytic("beta-charge", 4.0);
  std::ostringstream os;
  ledger.print_breakdown(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha-phase"), std::string::npos);
  EXPECT_NE(text.find("beta-charge"), std::string::npos);
  EXPECT_NE(text.find("total=7.0"), std::string::npos);
}

TEST(RoundLedger, InvariantsHoldAcrossAllChannels) {
  RoundLedger ledger;
  expect_ledger_valid(ledger);  // empty ledger is trivially valid
  ledger.charge_exchange("exchange-phase", 3.0, 30);
  ledger.charge_routing("routing-phase", 2.5, 12);
  ledger.charge_analytic("analytic-phase", 7.0);
  ledger.charge_exchange("free-phase", 0.0, 0);  // zero-cost entries legal
  expect_ledger_valid(ledger);
}

TEST(RoundLedger, TotalIsMonotoneUnderAppendAndMerge) {
  // Appending entries or merging another ledger can only grow the total:
  // the audited cost of a longer execution is never smaller.
  RoundLedger ledger;
  double previous = ledger.total_rounds();
  for (int i = 0; i < 16; ++i) {
    if (i % 3 == 0) {
      ledger.charge_exchange("e", static_cast<double>(i), 1);
    } else if (i % 3 == 1) {
      ledger.charge_routing("r", 0.5 * i, 2);
    } else {
      ledger.charge_analytic("a", 1.25 * i);
    }
    EXPECT_GE(ledger.total_rounds(), previous) << "entry " << i;
    previous = ledger.total_rounds();
  }
  RoundLedger other;
  other.charge_exchange("tail", 4.0, 4);
  ledger.merge(other);
  EXPECT_GE(ledger.total_rounds(), previous);
  expect_ledger_valid(ledger);
}

TEST(RoundLedger, BreakdownKeepsOneRowPerLabelAndKind) {
  RoundLedger ledger;
  ledger.charge_exchange("x", 1.0, 10);
  ledger.charge_exchange("x", 2.0, 5);
  ledger.charge_routing("x", 4.0, 2);  // same label, different kind
  ledger.charge_analytic("y", 7.0);
  const auto rows = ledger.breakdown();
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by (label, kind declaration order).
  EXPECT_EQ(rows[0].label, "x");
  EXPECT_EQ(rows[0].kind, CostKind::exchange);
  EXPECT_DOUBLE_EQ(rows[0].rounds, 3.0);
  EXPECT_EQ(rows[0].messages, 15u);
  EXPECT_EQ(rows[1].label, "x");
  EXPECT_EQ(rows[1].kind, CostKind::routing);
  EXPECT_DOUBLE_EQ(rows[1].rounds, 4.0);
  EXPECT_EQ(rows[1].messages, 2u);
  EXPECT_EQ(rows[2].label, "y");
  EXPECT_EQ(rows[2].kind, CostKind::analytic);
  EXPECT_DOUBLE_EQ(rows[2].rounds, 7.0);
  EXPECT_EQ(rows[2].messages, 0u);
  // rounds_by_label folds the x rows into one — breakdown must not.
  EXPECT_DOUBLE_EQ(ledger.rounds_by_label().at("x"), 7.0);
}

TEST(RoundLedger, BreakdownCoversRetryEntriesAndMerge) {
  RoundLedger a;
  a.charge_exchange("phase", 10.0, 100);
  a.charge_retry("phase [retry]", 3.0, 6);
  RoundLedger b;
  b.charge_retry("phase [retry]", 2.0, 4);
  b.note_lost(1);
  a.merge(b);
  // Retry entries ride the exchange kind and aggregate across the merge.
  const auto rows = a.breakdown();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].label, "phase [retry]");
  EXPECT_EQ(rows[1].kind, CostKind::exchange);
  EXPECT_DOUBLE_EQ(rows[1].rounds, 5.0);
  EXPECT_EQ(rows[1].messages, 10u);
  // The dedicated retry counters merged too, and the breakdown totals
  // stay consistent with the ledger totals.
  EXPECT_DOUBLE_EQ(a.retry_rounds(), 5.0);
  EXPECT_EQ(a.retransmitted_messages(), 10u);
  EXPECT_EQ(a.lost_messages(), 1u);
  double rounds = 0.0;
  std::uint64_t messages = 0;
  for (const auto& row : rows) {
    rounds += row.rounds;
    messages += row.messages;
  }
  EXPECT_DOUBLE_EQ(rounds, a.total_rounds());
  EXPECT_EQ(messages, a.total_messages());
}

TEST(RoundLedger, PrintAuditedAlignsLongLabelsAndRestoresStream) {
  RoundLedger ledger;
  const std::string long_label(48, 'L');  // longer than the setw(42) legacy
  ledger.charge_exchange(long_label, 2.0, 8);
  ledger.charge_analytic("short", 1.5);
  ledger.charge_retry("short [retry]", 0.5, 3);
  std::ostringstream os;
  os << std::setprecision(6);
  const std::ios_base::fmtflags flags_before = os.flags();
  ledger.print_audited(os);
  // Stream state is restored — print_breakdown leaks std::fixed, the
  // audited printer must not.
  EXPECT_EQ(os.flags(), flags_before);
  EXPECT_EQ(os.precision(), 6);
  const std::string text = os.str();
  EXPECT_NE(text.find(long_label), std::string::npos);
  EXPECT_NE(text.find("exchange"), std::string::npos);
  EXPECT_NE(text.find("analytic"), std::string::npos);
  EXPECT_NE(text.find("recovery: 0.5 retry rounds, 3 retransmitted"),
            std::string::npos);
  // The header and every row share the same label column width, so the
  // "kind" column starts at one fixed offset on every line.
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);  // totals line
  std::vector<std::size_t> kind_columns;
  while (std::getline(lines, line)) {
    if (line.find("recovery:") != std::string::npos) continue;
    std::size_t column = std::string::npos;
    for (const char* kind : {"kind", "exchange", "routing", "analytic"}) {
      column = std::min(column, line.find(kind));
    }
    ASSERT_NE(column, std::string::npos) << line;
    kind_columns.push_back(column);
  }
  ASSERT_GE(kind_columns.size(), 4u);
  for (const std::size_t column : kind_columns) {
    EXPECT_EQ(column, kind_columns.front());
  }
}

TEST(CostKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(CostKind::exchange), "exchange");
  EXPECT_STREQ(to_string(CostKind::routing), "routing");
  EXPECT_STREQ(to_string(CostKind::analytic), "analytic");
}

}  // namespace
}  // namespace dcl

#include "congest/round_ledger.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace dcl {
namespace {

TEST(RoundLedger, TotalsAcrossKinds) {
  RoundLedger ledger;
  ledger.charge_exchange("phase-a", 10.0, 100);
  ledger.charge_routing("route-b", 5.5, 50);
  ledger.charge_analytic("decomp", 20.0);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 35.5);
  EXPECT_EQ(ledger.total_messages(), 150u);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::exchange), 10.0);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::routing), 5.5);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::analytic), 20.0);
}

TEST(RoundLedger, ByLabelAggregates) {
  RoundLedger ledger;
  ledger.charge_exchange("x", 1.0, 1);
  ledger.charge_exchange("x", 2.0, 1);
  ledger.charge_exchange("y", 4.0, 1);
  const auto by_label = ledger.rounds_by_label();
  EXPECT_DOUBLE_EQ(by_label.at("x"), 3.0);
  EXPECT_DOUBLE_EQ(by_label.at("y"), 4.0);
}

TEST(RoundLedger, MergeAppends) {
  RoundLedger a, b;
  a.charge_exchange("x", 1.0, 5);
  b.charge_routing("y", 2.0, 7);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_rounds(), 3.0);
  EXPECT_EQ(a.total_messages(), 12u);
  EXPECT_EQ(a.entries().size(), 2u);
}

TEST(RoundLedger, EmptyLedger) {
  RoundLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
  EXPECT_EQ(ledger.total_messages(), 0u);
  EXPECT_TRUE(ledger.rounds_by_label().empty());
}

TEST(RoundLedger, PrintBreakdownContainsLabels) {
  RoundLedger ledger;
  ledger.charge_exchange("alpha-phase", 3.0, 9);
  ledger.charge_analytic("beta-charge", 4.0);
  std::ostringstream os;
  ledger.print_breakdown(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha-phase"), std::string::npos);
  EXPECT_NE(text.find("beta-charge"), std::string::npos);
  EXPECT_NE(text.find("total=7.0"), std::string::npos);
}

TEST(RoundLedger, InvariantsHoldAcrossAllChannels) {
  RoundLedger ledger;
  expect_ledger_valid(ledger);  // empty ledger is trivially valid
  ledger.charge_exchange("exchange-phase", 3.0, 30);
  ledger.charge_routing("routing-phase", 2.5, 12);
  ledger.charge_analytic("analytic-phase", 7.0);
  ledger.charge_exchange("free-phase", 0.0, 0);  // zero-cost entries legal
  expect_ledger_valid(ledger);
}

TEST(RoundLedger, TotalIsMonotoneUnderAppendAndMerge) {
  // Appending entries or merging another ledger can only grow the total:
  // the audited cost of a longer execution is never smaller.
  RoundLedger ledger;
  double previous = ledger.total_rounds();
  for (int i = 0; i < 16; ++i) {
    if (i % 3 == 0) {
      ledger.charge_exchange("e", static_cast<double>(i), 1);
    } else if (i % 3 == 1) {
      ledger.charge_routing("r", 0.5 * i, 2);
    } else {
      ledger.charge_analytic("a", 1.25 * i);
    }
    EXPECT_GE(ledger.total_rounds(), previous) << "entry " << i;
    previous = ledger.total_rounds();
  }
  RoundLedger other;
  other.charge_exchange("tail", 4.0, 4);
  ledger.merge(other);
  EXPECT_GE(ledger.total_rounds(), previous);
  expect_ledger_valid(ledger);
}

TEST(CostKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(CostKind::exchange), "exchange");
  EXPECT_STREQ(to_string(CostKind::routing), "routing");
  EXPECT_STREQ(to_string(CostKind::analytic), "analytic");
}

}  // namespace
}  // namespace dcl

// The q=1 one-huge-cluster regime (ISSUE 6 tentpole): ER inputs dense
// enough to enter the iterated pipeline decompose into a SINGLE expander
// cluster, so the PR 5 cluster-level sharding had nothing to split — the
// entire step-5 tail ran on one thread. The two-level scheduler flattens
// the in-cluster representative ranges into weighted work items instead.
//
// The bench container has one CPU, so the parallelism evidence here is
// structural, not wall-clock (ROADMAP "standing constraints"): the trace
// must show the tail splitting into ≥ 4 near-balanced shards while every
// fingerprint stays bit-identical to the single-threaded execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/parallel_for.h"
#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

namespace dcl {
namespace {

/// Restores the global shard count on scope exit so suites stay isolated.
class ScopedShardThreads {
 public:
  explicit ScopedShardThreads(int threads) : previous_(shard_threads()) {
    set_shard_threads(threads);
  }
  ~ScopedShardThreads() { set_shard_threads(previous_); }

 private:
  int previous_;
};

/// The one iterated-pipeline configuration of the bench harness: a small
/// stop_scale drives list_kp through ARB-LIST instead of the final
/// broadcast shortcut.
KpConfig iterated_config(int p) {
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = 7;
  cfg.stop_scale = 0.01;
  return cfg;
}

struct RegimeExpectations {
  NodeId n;
  std::int64_t m;
  int p;
};

void check_single_cluster_regime(const RegimeExpectations& e) {
  Rng gen(5);
  const Graph g = erdos_renyi_gnm(e.n, e.m, gen);
  const KpConfig cfg = iterated_config(e.p);

  ListingOutput out_seq(g.node_count());
  KpListResult seq;
  {
    ScopedShardThreads guard(1);
    seq = list_kp_collect(g, cfg, out_seq);
  }
  ListingOutput out_par(g.node_count());
  KpListResult par;
  {
    ScopedShardThreads guard(4);
    par = list_kp_collect(g, cfg, out_par);
  }

  // The regime itself: the pipeline entered ARB-LIST and the decomposition
  // produced exactly one cluster — the input where cluster-level sharding
  // degenerates.
  ASSERT_FALSE(par.arb_traces.size() == 0u);
  for (const auto& t : par.arb_traces) {
    EXPECT_EQ(t.clusters, 1) << "not the q=1 regime";
  }

  // Structural parallelism evidence at 4 threads: the tail split into at
  // least 4 representative-range shards whose estimated work is balanced
  // to max/mean ≤ 1.5; the shard estimates add up to the total.
  const auto& t4 = par.arb_traces.front();
  EXPECT_GE(t4.tail_work_items, 4);
  ASSERT_GE(t4.tail_shards, 4);
  ASSERT_EQ(t4.tail_shard_work.size(),
            static_cast<std::size_t>(t4.tail_shards));
  std::uint64_t total = 0;
  std::uint64_t max_work = 0;
  for (const std::uint64_t w : t4.tail_shard_work) {
    total += w;
    max_work = std::max(max_work, w);
  }
  EXPECT_EQ(total, t4.tail_est_work_total);
  const double mean = static_cast<double>(total) /
                      static_cast<double>(t4.tail_shards);
  EXPECT_LE(static_cast<double>(max_work), 1.5 * mean)
      << "max " << max_work << " vs mean " << mean;

  // The single-threaded execution takes the sequential fast path: one
  // shard carrying all the estimated work.
  const auto& t1 = seq.arb_traces.front();
  EXPECT_EQ(t1.tail_shards, 1);
  ASSERT_EQ(t1.tail_shard_work.size(), 1u);
  EXPECT_EQ(t1.tail_shard_work[0], t1.tail_est_work_total);
  EXPECT_EQ(t1.tail_est_work_total, t4.tail_est_work_total)
      << "the work estimate must not depend on the thread count";
  EXPECT_EQ(t1.tail_work_items, t4.tail_work_items)
      << "the item list must not depend on the thread count";

  // DCL_THREADS is a pure speed knob: bit-identical ledger and output.
  EXPECT_EQ(seq.total_rounds(), par.total_rounds());  // bit-exact doubles
  EXPECT_EQ(seq.unique_cliques, par.unique_cliques);
  EXPECT_EQ(seq.total_reports, par.total_reports);
  EXPECT_EQ(out_seq.max_reports_per_node(), out_par.max_reports_per_node());
  EXPECT_EQ(out_seq.cliques().fingerprint(), out_par.cliques().fingerprint());
  EXPECT_TRUE(out_seq.cliques() == out_par.cliques());

  // And the union of outputs is still exactly the oracle's Kp set.
  EXPECT_TRUE(out_par.cliques() == CliqueSet(list_k_cliques(g, e.p)));
}

TEST(SingleClusterSharding, K4FingerprintsAndBalanceOnOneHugeCluster) {
  check_single_cluster_regime({2000, 30000, 4});
}

TEST(SingleClusterSharding, K5FingerprintsAndBalanceOnOneHugeCluster) {
  check_single_cluster_regime({800, 30000, 5});
}

}  // namespace
}  // namespace dcl

#include "core/kp_lister.h"

#include <gtest/gtest.h>

#include <tuple>

#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

/// The paper's correctness contract: the union of node outputs equals the
/// exact Kp set — no misses, no false positives.
void expect_exact(const Graph& g, const KpConfig& cfg) {
  const CliqueSet truth{list_k_cliques(g, cfg.p)};
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  expect_result_valid(result);
  const auto missing = truth.difference(out.cliques());
  const auto extra = out.cliques().difference(truth);
  EXPECT_TRUE(missing.empty())
      << missing.size() << " cliques missed (of " << truth.size() << ")";
  EXPECT_TRUE(extra.empty()) << extra.size() << " false positives";
  EXPECT_EQ(result.unique_cliques, truth.size());
  EXPECT_GE(result.total_reports, result.unique_cliques);
}

// The end-to-end parameter sweeps (KpListerSweep / K4FastSweep) live in
// test_kp_lister_sweep.cpp, labeled `slow` — run `ctest -LE slow` to skip.

// ---- Adversarial / closed-form graphs ------------------------------------

TEST(KpLister, CompleteGraph) {
  KpConfig cfg;
  cfg.p = 4;
  expect_exact(complete_graph(24), cfg);
}

TEST(KpLister, CompleteGraphP6) {
  KpConfig cfg;
  cfg.p = 6;
  expect_exact(complete_graph(16), cfg);
}

TEST(KpLister, BipartiteHasNoCliques) {
  KpConfig cfg;
  cfg.p = 3;
  const Graph g = complete_bipartite(20, 20);
  ListingOutput out(g.node_count());
  list_kp_collect(g, cfg, out);
  EXPECT_EQ(out.unique_count(), 0u);
}

TEST(KpLister, PlantedCliqueInSparseNoise) {
  Rng rng(5);
  const auto planted = planted_clique(120, 10, 0.02, rng);
  KpConfig cfg;
  cfg.p = 5;
  const CliqueSet truth{list_k_cliques(planted.graph, 5)};
  ListingOutput out(planted.graph.node_count());
  list_kp_collect(planted.graph, cfg, out);
  EXPECT_TRUE(out.cliques() == truth);
  // Spot check: the planted clique's 5-subsets are all found.
  Clique probe(planted.clique_nodes.begin(), planted.clique_nodes.begin() + 5);
  EXPECT_TRUE(out.cliques().contains(probe));
}

TEST(KpLister, DisconnectedComponents) {
  Rng rng(6);
  const Graph g = disjoint_union(complete_graph(10),
                                 erdos_renyi_gnm(60, 500, rng));
  KpConfig cfg;
  cfg.p = 4;
  expect_exact(g, cfg);
}

TEST(KpLister, StarAndPathDegenerate) {
  KpConfig cfg;
  cfg.p = 4;
  expect_exact(star_graph(40), cfg);
  expect_exact(path_graph(40), cfg);
}

TEST(KpLister, EmptyAndTinyGraphs) {
  KpConfig cfg;
  cfg.p = 4;
  ListingOutput out0(0);
  EXPECT_EQ(list_kp_collect(empty_graph(0), cfg, out0).unique_cliques, 0u);
  ListingOutput out1(1);
  EXPECT_EQ(list_kp_collect(empty_graph(1), cfg, out1).unique_cliques, 0u);
  expect_exact(complete_graph(4), cfg);  // exactly one K4
}

TEST(KpLister, RejectsBadConfig) {
  KpConfig cfg;
  cfg.p = 2;
  EXPECT_THROW(list_kp(path_graph(3), cfg), std::invalid_argument);
  KpConfig bad_fast;
  bad_fast.p = 5;
  bad_fast.k4_fast = true;
  EXPECT_THROW(list_kp(path_graph(3), bad_fast), std::invalid_argument);
}

// ---- Configuration and ablation correctness -------------------------------

TEST(KpLister, AblationsPreserveCorrectness) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnm(100, 2400, rng);
  for (const bool bad_edges : {true, false}) {
    for (const auto mode : {InClusterChargeMode::measured,
                            InClusterChargeMode::worst_case}) {
      KpConfig cfg;
      cfg.p = 4;
      cfg.enable_bad_edges = bad_edges;
      cfg.in_cluster_charge = mode;
      expect_exact(g, cfg);
    }
  }
}

TEST(KpLister, StopScaleForcesPipelineCorrectly) {
  Rng rng(8);
  const Graph g = erdos_renyi_gnm(130, 3900, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.stop_scale = 0.1;  // drive the iterated pipeline hard
  const CliqueSet truth{list_k_cliques(g, 4)};
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  EXPECT_TRUE(out.cliques() == truth);
  EXPECT_GE(result.list_traces.size(), 1u);
}

TEST(KpLister, ArboricityDecreasesAcrossListIterations) {
  Rng rng(9);
  const Graph g = erdos_renyi_gnm(150, 5600, rng);
  KpConfig cfg;
  cfg.p = 5;
  cfg.stop_scale = 0.1;
  const auto result = list_kp(g, cfg);
  for (const auto& t : result.list_traces) {
    EXPECT_LT(t.arboricity_bound_after, t.arboricity_bound_before);
    EXPECT_LE(t.edges_after, t.edges_before);
  }
}

TEST(KpLister, ErDecaysWithinList) {
  Rng rng(10);
  const Graph g = erdos_renyi_gnm(150, 5600, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.stop_scale = 0.1;
  const auto result = list_kp(g, cfg);
  for (const auto& t : result.arb_traces) {
    EXPECT_LE(t.er_after, t.er_before);
  }
}

TEST(KpLister, DeterministicUnderSeed) {
  Rng rng(11);
  const Graph g = erdos_renyi_gnm(90, 1800, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.seed = 33;
  const auto a = list_kp(g, cfg);
  const auto b = list_kp(g, cfg);
  EXPECT_DOUBLE_EQ(a.total_rounds(), b.total_rounds());
  EXPECT_EQ(a.unique_cliques, b.unique_cliques);
  EXPECT_EQ(a.total_reports, b.total_reports);
}

TEST(KpLister, LedgerHasAllCostKinds) {
  Rng rng(12);
  const Graph g = erdos_renyi_gnm(140, 4200, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.stop_scale = 0.1;
  const auto result = list_kp(g, cfg);
  EXPECT_GT(result.ledger.rounds_of_kind(CostKind::exchange), 0.0);
  EXPECT_GT(result.ledger.rounds_of_kind(CostKind::routing), 0.0);
  EXPECT_GT(result.ledger.rounds_of_kind(CostKind::analytic), 0.0);
}

TEST(KpLister, K4FastAvoidsLightLearningPhases) {
  Rng rng(13);
  const Graph g = erdos_renyi_gnm(140, 4200, rng);
  KpConfig slow, fast;
  slow.p = fast.p = 4;
  fast.k4_fast = true;
  slow.stop_scale = fast.stop_scale = 0.1;
  const auto rs = list_kp(g, slow);
  const auto rf = list_kp(g, fast);
  const auto slow_labels = rs.ledger.rounds_by_label();
  const auto fast_labels = rf.ledger.rounds_by_label();
  EXPECT_TRUE(slow_labels.contains("light-list-broadcast"));
  EXPECT_FALSE(fast_labels.contains("light-list-broadcast"));
  EXPECT_TRUE(fast_labels.contains("k4-light-probe"));
}

}  // namespace
}  // namespace dcl

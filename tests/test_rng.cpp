#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace dcl {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_below(10))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);  // within 10% relative
  }
}

TEST(Rng, NextInClosedRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child and parent should not track each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(29), b(29);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ca.next_u64(), cb.next_u64());
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesSmallContainers) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  std::vector<int> one = {5};
  rng.shuffle(one);
  EXPECT_EQ(one[0], 5);
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(41);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(41);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace dcl

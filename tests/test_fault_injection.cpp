// Chaos differential suite for the fault-injection plane.
//
// Three layers, matching the degradation contracts of docs/ROBUSTNESS.md:
//  * message-level (CongestNetwork / CongestEngine): recoverable faults
//    leave delivered contents bit-identical and only cost rounds; losses
//    beyond the retry budget are genuinely withheld;
//  * accounting-level pipelines (list_kp / sparse_cc): any drop/dup/delay
//    sweep leaves the clique fingerprint bit-identical to the fault-free
//    run — the degradation is charged cost, never output;
//  * crashes: the survivor contract — every Kp of G[alive] is listed and
//    everything listed is a Kp of G.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "congest/congest_network.h"
#include "congest/engine.h"
#include "congest/fault_plan.h"
#include "core/kp_lister.h"
#include "core/sparse_cc.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/workloads.h"
#include "test_util.h"

namespace dcl {
namespace {

class ScopedShardThreads {
 public:
  explicit ScopedShardThreads(int threads) : previous_(shard_threads()) {
    set_shard_threads(threads);
  }
  ~ScopedShardThreads() { set_shard_threads(previous_); }

 private:
  int previous_;
};

// ---- Message level: CongestNetwork ---------------------------------------

TEST(CongestNetworkFaults, RecoverableFaultsKeepInboxesIdentical) {
  const Graph g = cycle_graph(8);
  auto run = [&](FaultPlan* plan) {
    CongestNetwork net(g);
    net.attach_faults(plan);
    std::int64_t rounds = 0;
    for (int phase = 0; phase < 3; ++phase) {
      net.begin_phase("chatter");
      for (NodeId v = 0; v < 8; ++v) {
        for (const NodeId w : g.neighbors(v)) {
          net.send(v, w, Message{.tag = phase, .a = v, .b = w});
        }
      }
      rounds += net.end_phase();
    }
    std::vector<std::vector<Delivery>> inboxes(8);
    for (NodeId v = 0; v < 8; ++v) {
      const auto box = net.inbox(v);
      inboxes[static_cast<std::size_t>(v)].assign(box.begin(), box.end());
    }
    return std::tuple(rounds, inboxes, net.lost_messages(),
                      net.ledger().retransmitted_messages());
  };

  const auto [base_rounds, base_inboxes, base_lost, base_retx] = run(nullptr);
  EXPECT_EQ(base_lost, 0u);
  EXPECT_EQ(base_retx, 0u);

  FaultPlan plan(
      FaultSpec::parse("drop=0.2,dup=0.1,delay=0.1:2,retries=8,seed=5"));
  const auto [rounds, inboxes, lost, retx] = run(&plan);
  EXPECT_EQ(lost, 0u) << "retries=8 must recover a 0.2 drop rate";
  EXPECT_GT(retx, 0u) << "a 0.4 fault mass over 48 messages never fired";
  EXPECT_GT(rounds, base_rounds) << "recovery rounds must be charged";
  for (NodeId v = 0; v < 8; ++v) {
    const auto& a = base_inboxes[static_cast<std::size_t>(v)];
    const auto& b = inboxes[static_cast<std::size_t>(v)];
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].from, b[i].from);
      EXPECT_EQ(a[i].msg, b[i].msg);
    }
  }
}

TEST(CongestNetworkFaults, BudgetExhaustedMessagesAreWithheld) {
  const Graph g = path_graph(2);
  FaultPlan plan(FaultSpec::parse("drop=1,retries=2"));
  CongestNetwork net(g);
  net.attach_faults(&plan);
  net.begin_phase("doomed");
  net.send(0, 1, Message{.tag = 9});
  net.end_phase();
  EXPECT_TRUE(net.inbox(1).empty()) << "a lost message must not arrive";
  EXPECT_EQ(net.lost_messages(), 1u);
  EXPECT_EQ(net.ledger().lost_messages(), 1u);
  EXPECT_EQ(net.ledger().retransmitted_messages(), 2u);
}

TEST(CongestNetworkFaults, FaultClockAdvancesPerPhase) {
  const Graph g = path_graph(2);
  FaultPlan plan(FaultSpec::parse("dup=0.5,seed=2"));
  CongestNetwork net(g);
  net.attach_faults(&plan);
  for (int i = 0; i < 3; ++i) {
    net.begin_phase("tick");
    net.send(0, 1, Message{.tag = i});
    net.end_phase();
  }
  EXPECT_EQ(net.fault_clock(), 3);
}

// ---- Message level: CongestEngine ----------------------------------------

/// Flood a token from node 0; each node records the round it first hears.
class FloodProgram : public NodeProgram {
 public:
  explicit FloodProgram(NodeId self) : self_(self) {}
  void on_start(RoundApi& api) override {
    if (self_ == 0) {
      heard_at_ = 0;
      for (const NodeId w : api.graph().neighbors(self_)) {
        api.send(w, Message{.tag = 1});
      }
    }
  }
  bool on_round(RoundApi& api, std::span<const Delivery> received) override {
    if (heard_at_ < 0 && !received.empty()) {
      heard_at_ = api.round() + 1;
      for (const NodeId w : api.graph().neighbors(self_)) {
        api.send(w, Message{.tag = 1});
      }
      return true;
    }
    return false;
  }
  std::int64_t heard_at() const { return heard_at_; }

 private:
  NodeId self_;
  std::int64_t heard_at_ = -1;
};

TEST(CongestEngineFaults, FloodSurvivesRecoverableFaults) {
  const Graph g = path_graph(7);
  const auto factory = [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  };
  CongestEngine clean(g, factory);
  const auto clean_rounds = clean.run();

  FaultPlan plan(FaultSpec::parse("drop=0.3,delay=0.2:2,retries=10,seed=4"));
  CongestEngine engine(g, factory);
  engine.attach_faults(&plan);
  const auto rounds = engine.run();
  EXPECT_EQ(engine.lost_messages(), 0u);
  EXPECT_GE(rounds, clean_rounds) << "recovery executes as real rounds";
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_GE(static_cast<FloodProgram&>(engine.program(v)).heard_at(), 0)
        << "node " << v << " never heard the token";
  }
  EXPECT_GT(engine.ledger().retransmitted_messages(), 0u);
}

TEST(CongestEngineFaults, CrashStopPartitionsTheFlood) {
  // Node 2 of a 5-path dies at round 0: the token can never cross it.
  const Graph g = path_graph(5);
  FaultPlan plan(FaultSpec::parse("crash=2@0"));
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  engine.attach_faults(&plan);
  engine.run();
  EXPECT_GE(static_cast<FloodProgram&>(engine.program(1)).heard_at(), 0);
  EXPECT_LT(static_cast<FloodProgram&>(engine.program(2)).heard_at(), 0);
  EXPECT_LT(static_cast<FloodProgram&>(engine.program(3)).heard_at(), 0);
  EXPECT_LT(static_cast<FloodProgram&>(engine.program(4)).heard_at(), 0);
}

/// Two nodes ping-ponging forever: the canonical non-quiescing protocol.
class PingPongProgram : public NodeProgram {
 public:
  void on_start(RoundApi& api) override {
    if (api.self() == 0) api.send(1, Message{.tag = 0});
  }
  bool on_round(RoundApi& api, std::span<const Delivery> received) override {
    for (const Delivery& d : received) {
      api.send(d.from, Message{.tag = d.msg.tag + 1});
    }
    return true;  // never locally done
  }
};

TEST(CongestEngineFaults, WatchdogThrowsInsteadOfSilentlyTruncating) {
  const Graph g = path_graph(2);
  CongestEngine engine(g, [](NodeId) {
    return std::make_unique<PingPongProgram>();
  });
  try {
    engine.run(50);
    FAIL() << "a non-quiescing protocol must trip the watchdog";
  } catch (const EngineStallError& e) {
    EXPECT_EQ(e.round, 50);
    EXPECT_GE(e.last_progress_round, 0) << "the ping-pong was making progress";
    EXPECT_NE(std::string(e.what()).find("50"), std::string::npos);
  }
}

TEST(CongestEngineFaults, WatchdogStaysSilentOnQuiescentRuns) {
  const Graph g = path_graph(6);
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  EXPECT_NO_THROW(engine.run(1'000));
}

// ---- Accounting level: the listing pipelines -----------------------------

struct ChaosFixture {
  const char* name;
  Graph graph;
};

std::vector<ChaosFixture> chaos_fixtures() {
  std::vector<ChaosFixture> fixtures;
  Rng er_rng(7);
  fixtures.push_back({"er", erdos_renyi_gnm(48, 300, er_rng)});
  Rng ring_rng(9);
  fixtures.push_back({"ring", ring_of_cliques_workload(48, ring_rng)});
  return fixtures;
}

TEST(PipelineChaos, RecoverableSweepsKeepFingerprintsBitIdentical) {
  const char* sweeps[] = {
      "drop=0.08,retries=4,seed=3",
      "dup=0.15,seed=5",
      "delay=0.1:3,seed=7",
      "drop=0.05,dup=0.05,delay=0.05:2,retries=5,seed=11",
      // A starved retry budget: losses escalate to charged resends, the
      // output still must not change (accounting-level contract).
      "drop=0.3,retries=0,seed=13",
  };
  for (auto& fixture : chaos_fixtures()) {
    for (const int p : {3, 4, 5}) {
      KpConfig base_cfg;
      base_cfg.p = p;
      base_cfg.seed = 2;
      ListingOutput base_out(fixture.graph.node_count());
      const auto base = list_kp_collect(fixture.graph, base_cfg, base_out);
      for (const char* spec : sweeps) {
        SCOPED_TRACE(std::string(fixture.name) + " p=" + std::to_string(p) +
                     " faults=" + spec);
        FaultPlan plan(FaultSpec::parse(spec));
        KpConfig cfg = base_cfg;
        cfg.faults = &plan;
        ListingOutput out(fixture.graph.node_count());
        const auto result = list_kp_collect(fixture.graph, cfg, out);
        expect_result_valid(result);
        EXPECT_EQ(out.cliques().fingerprint(), base_out.cliques().fingerprint());
        EXPECT_EQ(result.unique_cliques, base.unique_cliques);
        EXPECT_GE(result.total_rounds(), base.total_rounds())
            << "faults can only add cost";
        EXPECT_TRUE(result.crashed_nodes.empty());
      }
    }
  }
}

TEST(PipelineChaos, FingerprintMatchesTheFaultFreeRunExactly) {
  // The sharper form of the sweep above: collect both outputs and compare
  // the order-independent fingerprints directly.
  for (auto& fixture : chaos_fixtures()) {
    for (const int p : {3, 4, 5}) {
      SCOPED_TRACE(std::string(fixture.name) + " p=" + std::to_string(p));
      KpConfig cfg;
      cfg.p = p;
      cfg.seed = 2;
      ListingOutput clean(fixture.graph.node_count());
      list_kp_collect(fixture.graph, cfg, clean);

      FaultPlan plan(FaultSpec::parse(
          "drop=0.1,dup=0.05,delay=0.05:2,retries=4,seed=17"));
      KpConfig chaotic = cfg;
      chaotic.faults = &plan;
      ListingOutput out(fixture.graph.node_count());
      const auto result = list_kp_collect(fixture.graph, chaotic, out);
      EXPECT_EQ(out.cliques().fingerprint(), clean.cliques().fingerprint());
      EXPECT_EQ(out.unique_count(), clean.unique_count());
      // The retry cost the sweep paid is visible in the ledger counters.
      EXPECT_GT(result.ledger.retransmitted_messages(), 0u);
    }
  }
}

TEST(PipelineChaos, FingerprintsAreThreadCountInvariantUnderFaults) {
  Rng rng(3);
  const Graph g = clustered_workload(64, rng);
  const char* spec = "drop=0.1,dup=0.05,delay=0.05:2,retries=4,seed=23";
  auto run = [&](int threads) {
    ScopedShardThreads guard(threads);
    FaultPlan plan(FaultSpec::parse(spec));
    KpConfig cfg;
    cfg.p = 4;
    cfg.seed = 5;
    cfg.faults = &plan;
    ListingOutput out(g.node_count());
    const auto result = list_kp_collect(g, cfg, out);
    return std::tuple(out.cliques().fingerprint(), result.total_rounds(),
                      result.ledger.retransmitted_messages());
  };
  const auto [fp1, rounds1, retx1] = run(1);
  const auto [fp4, rounds4, retx4] = run(4);
  EXPECT_EQ(fp1, fp4);
  EXPECT_DOUBLE_EQ(rounds1, rounds4);
  EXPECT_EQ(retx1, retx4) << "the fault history must not depend on threads";
}

TEST(PipelineChaos, DisabledPlanAttachedCostsExactlyNothing) {
  // cfg.faults pointing at an inert plan must be indistinguishable from
  // cfg.faults == nullptr: same fingerprint, same ledger entry-for-entry.
  Rng rng(6);
  const Graph g = clustered_workload(48, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.seed = 9;
  ListingOutput base_out(g.node_count());
  const auto base = list_kp_collect(g, cfg, base_out);

  FaultPlan inert;
  KpConfig with_plan = cfg;
  with_plan.faults = &inert;
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, with_plan, out);

  EXPECT_EQ(out.cliques().fingerprint(), base_out.cliques().fingerprint());
  ASSERT_EQ(result.ledger.entries().size(), base.ledger.entries().size());
  for (std::size_t i = 0; i < base.ledger.entries().size(); ++i) {
    EXPECT_EQ(result.ledger.entries()[i].label, base.ledger.entries()[i].label);
    EXPECT_DOUBLE_EQ(result.ledger.entries()[i].rounds,
                     base.ledger.entries()[i].rounds);
    EXPECT_EQ(result.ledger.entries()[i].messages,
              base.ledger.entries()[i].messages);
  }
  EXPECT_DOUBLE_EQ(result.ledger.retry_rounds(), 0.0);
}

TEST(PipelineChaos, ReplaySchedulesReproduceChaosRunsExactly) {
  Rng rng(8);
  const Graph g = clustered_workload(48, rng);
  FaultPlan plan(FaultSpec::parse("drop=0.15,dup=0.1,retries=3,seed=29"));
  KpConfig cfg;
  cfg.p = 4;
  cfg.seed = 3;
  cfg.faults = &plan;
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);

  std::stringstream schedule;
  plan.serialize(schedule);
  FaultPlan replay = FaultPlan::deserialize(schedule);
  KpConfig replay_cfg = cfg;
  replay_cfg.faults = &replay;
  ListingOutput replay_out(g.node_count());
  const auto replayed = list_kp_collect(g, replay_cfg, replay_out);

  EXPECT_EQ(replay_out.cliques().fingerprint(), out.cliques().fingerprint());
  EXPECT_DOUBLE_EQ(replayed.total_rounds(), result.total_rounds());
  EXPECT_EQ(replayed.ledger.retransmitted_messages(),
            result.ledger.retransmitted_messages());
  EXPECT_EQ(replayed.lost_messages, result.lost_messages);
}

TEST(PipelineChaos, SparseCcKeepsExactOutputUnderFaults) {
  Rng rng(12);
  const Graph g = erdos_renyi_gnm(40, 220, rng);
  SparseCcConfig cfg;
  cfg.p = 3;
  cfg.seed = 4;
  ListingOutput clean(g.node_count());
  const auto base = sparse_cc_list(g, cfg, clean);

  FaultPlan plan(FaultSpec::parse("drop=0.2,retries=1,seed=31"));
  SparseCcConfig chaotic = cfg;
  chaotic.faults = &plan;
  ListingOutput out(g.node_count());
  const auto result = sparse_cc_list(g, chaotic, out);
  expect_ledger_valid(result.ledger);
  EXPECT_EQ(out.cliques().fingerprint(), clean.cliques().fingerprint());
  EXPECT_EQ(result.unique_cliques, base.unique_cliques);
  EXPECT_GE(result.total_rounds(), base.total_rounds());
  EXPECT_GT(result.ledger.retransmitted_messages(), 0u);
}

// ---- Crashes: the survivor contract --------------------------------------

void expect_survivor_contract(const Graph& g, int p,
                              const KpListResult& result,
                              const ListingOutput& out) {
  ASSERT_FALSE(result.crashed_nodes.empty());
  std::vector<char> dead(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId v : result.crashed_nodes) {
    dead[static_cast<std::size_t>(v)] = 1;
  }
  // Completeness over G[alive]: every clique of the survivor-induced
  // subgraph is listed.
  std::vector<Edge> alive_edges;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (!dead[static_cast<std::size_t>(ed.u)] &&
        !dead[static_cast<std::size_t>(ed.v)]) {
      alive_edges.push_back(ed);
    }
  }
  const Graph alive = Graph::from_edges(g.node_count(),
                                        std::move(alive_edges));
  for (const auto& clique : list_k_cliques(alive, p)) {
    EXPECT_TRUE(out.cliques().contains(clique))
        << "alive clique missing from the degraded output";
  }
  // Soundness w.r.t. G: everything listed is a real Kp (cliques touching a
  // crashed node may appear — they were listed before the crash).
  for (const auto& clique : out.cliques().to_vector()) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(g.has_edge(clique[i], clique[j]))
            << "listed a non-clique";
      }
    }
  }
}

TEST(PipelineChaos, EntryCrashesSatisfyTheSurvivorContract) {
  for (auto& fixture : chaos_fixtures()) {
    for (const int p : {3, 4}) {
      SCOPED_TRACE(std::string(fixture.name) + " p=" + std::to_string(p));
      FaultPlan plan(FaultSpec::parse("crash=3@0,crash=17@0,seed=2"));
      KpConfig cfg;
      cfg.p = p;
      cfg.seed = 2;
      cfg.faults = &plan;
      ListingOutput out(fixture.graph.node_count());
      const auto result = list_kp_collect(fixture.graph, cfg, out);
      expect_result_valid(result);
      ASSERT_EQ(result.crashed_nodes.size(), 2u);
      EXPECT_EQ(result.crashed_nodes[0], 3);
      EXPECT_EQ(result.crashed_nodes[1], 17);
      expect_survivor_contract(fixture.graph, p, result, out);
    }
  }
}

TEST(PipelineChaos, MidRunCrashesWithMessageFaultsStaySound) {
  // Crashes at later clock ticks land mid-pipeline (after phases have run),
  // combined with recoverable message faults — the hardest regime.
  Rng rng(10);
  const Graph g = clustered_workload(64, rng);
  for (const char* spec :
       {"crash=5@2,seed=3", "drop=0.1,retries=3,crash=5@1,crash=29@4,seed=7"}) {
    SCOPED_TRACE(spec);
    FaultPlan plan(FaultSpec::parse(spec));
    KpConfig cfg;
    cfg.p = 4;
    cfg.seed = 6;
    cfg.faults = &plan;
    ListingOutput out(g.node_count());
    const auto result = list_kp_collect(g, cfg, out);
    expect_result_valid(result);
    if (!result.crashed_nodes.empty()) {
      expect_survivor_contract(g, 4, result, out);
    }
  }
}

TEST(PipelineChaos, CrashRunsChargeDetectionTimeouts) {
  Rng rng(14);
  const Graph g = erdos_renyi_gnm(40, 260, rng);
  FaultPlan plan(FaultSpec::parse("crash=1@0,seed=2"));
  KpConfig cfg;
  cfg.p = 3;
  cfg.seed = 2;
  cfg.faults = &plan;
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  bool saw_timeout = false;
  for (const auto& entry : result.ledger.entries()) {
    saw_timeout |= entry.label == "crash-detect-timeout";
  }
  EXPECT_TRUE(saw_timeout) << "crash detection must be charged";
}

}  // namespace
}  // namespace dcl

// Packed CliqueSet vs an unordered_set<vector> oracle under duplicate and
// permuted-order inserts, across widths that cross the packed/overflow
// boundary (kPackedMax = 8) and table growth.
#include "enumeration/clique_enumeration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace dcl {
namespace {

Clique random_clique(Rng& rng, std::size_t size, NodeId universe) {
  std::set<NodeId> s;
  while (s.size() < size) {
    s.insert(static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(universe))));
  }
  return {s.begin(), s.end()};
}

Clique shuffled(Clique c, Rng& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    std::swap(c[i - 1], c[static_cast<std::size_t>(rng.next_below(i))]);
  }
  return c;
}

TEST(CliqueSetPacked, RandomizedAgainstSetOracle) {
  Rng rng(1);
  CliqueSet set;
  std::set<Clique> oracle;
  for (int op = 0; op < 5000; ++op) {
    // Sizes 1..10 cross the packed/overflow boundary; a small universe
    // forces frequent duplicates.
    const std::size_t size = 1 + rng.next_below(10);
    Clique c = random_clique(rng, size, 24);
    const Clique permuted = shuffled(c, rng);
    const bool fresh_expected = oracle.insert(c).second;
    EXPECT_EQ(set.insert(permuted), fresh_expected) << "op " << op;
    EXPECT_EQ(set.size(), oracle.size());
  }
  // Every oracle element is found (again under permutation), and
  // to_vector() round-trips the exact same set.
  for (const Clique& c : oracle) {
    EXPECT_TRUE(set.contains(shuffled(c, rng)));
  }
  auto listed = set.to_vector();
  std::sort(listed.begin(), listed.end());
  EXPECT_TRUE(std::equal(listed.begin(), listed.end(), oracle.begin(),
                         oracle.end()));
}

TEST(CliqueSetPacked, GrowthKeepsAllElements) {
  // Push well past several doublings of the initial table.
  CliqueSet set;
  constexpr NodeId kCount = 20000;
  for (NodeId i = 0; i < kCount; ++i) {
    EXPECT_TRUE(set.insert({i, i + 100000, i + 200000}));
  }
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kCount));
  for (NodeId i = 0; i < kCount; ++i) {
    // Membership probes in reversed vertex order.
    EXPECT_TRUE(set.contains({i + 200000, i + 100000, i}));
  }
  EXPECT_FALSE(set.contains({kCount, kCount + 100000, kCount + 200000}));
}

TEST(CliqueSetPacked, EraseRandomizedAgainstSetOracle) {
  // Mixed insert/erase workload (permuted vertex orders, widths crossing
  // the packed/overflow boundary): size, membership, and fingerprint must
  // track the oracle through arbitrary churn — the backward-shift erase
  // must never strand or lose a key.
  Rng rng(3);
  CliqueSet set;
  std::set<Clique> oracle;
  for (int op = 0; op < 8000; ++op) {
    const std::size_t size = 1 + rng.next_below(10);
    Clique c = random_clique(rng, size, 20);
    const Clique permuted = shuffled(c, rng);
    if (rng.next_bool(0.45)) {
      EXPECT_EQ(set.erase(permuted), oracle.erase(c) > 0) << "op " << op;
    } else {
      EXPECT_EQ(set.insert(permuted), oracle.insert(c).second) << "op " << op;
    }
    ASSERT_EQ(set.size(), oracle.size());
    if (op % 500 == 499) {
      // Full membership audit plus fingerprint equality with a rebuilt
      // set: the incremental fingerprint is order-independent and must
      // land exactly where a fresh build lands.
      CliqueSet rebuilt;
      for (const Clique& x : oracle) rebuilt.insert(x);
      EXPECT_EQ(set.fingerprint(), rebuilt.fingerprint());
      for (const Clique& x : oracle) {
        EXPECT_TRUE(set.contains(x));
      }
    }
  }
}

TEST(CliqueSetPacked, FingerprintIsOrderIndependentAndCancels) {
  Rng rng(4);
  std::vector<Clique> cliques;
  for (int i = 0; i < 300; ++i) {
    cliques.push_back(random_clique(rng, 1 + rng.next_below(9), 64));
  }
  CliqueSet forward, backward;
  for (const auto& c : cliques) forward.insert(c);
  for (auto it = cliques.rbegin(); it != cliques.rend(); ++it) {
    backward.insert(shuffled(*it, rng));
  }
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());

  // Inserting then erasing extra cliques returns to the exact value;
  // erasing everything returns to zero (the empty-set fingerprint).
  const std::uint64_t fp = forward.fingerprint();
  forward.insert({901, 902, 903});
  EXPECT_NE(forward.fingerprint(), fp);
  forward.erase({903, 901, 902});
  EXPECT_EQ(forward.fingerprint(), fp);
  for (const auto& c : cliques) forward.erase(c);
  EXPECT_EQ(forward.fingerprint(), 0u);
  EXPECT_TRUE(forward.empty());
}

TEST(CliqueSetPacked, ReservePreservesContentsAndAbsorbsInserts) {
  CliqueSet set;
  for (NodeId i = 0; i < 100; ++i) set.insert({i, i + 1000});
  const std::uint64_t fp = set.fingerprint();
  set.reserve(50000);
  EXPECT_EQ(set.size(), 100u);
  EXPECT_EQ(set.fingerprint(), fp);
  for (NodeId i = 0; i < 100; ++i) {
    EXPECT_TRUE(set.contains({i, i + 1000}));
  }
  for (NodeId i = 100; i < 40000; ++i) set.insert({i, i + 1000});
  EXPECT_EQ(set.size(), 40000u);
  EXPECT_TRUE(set.contains({39999, 40999}));
}

TEST(CliqueSetPacked, DifferenceAndEqualityAcrossRepresentations) {
  // Same logical set built in different insert orders (and with
  // duplicates) must compare equal; difference must be exact.
  Rng rng(2);
  std::vector<Clique> cliques;
  for (int i = 0; i < 200; ++i) {
    cliques.push_back(random_clique(rng, 1 + rng.next_below(9), 64));
  }
  CliqueSet forward, backward;
  for (const auto& c : cliques) forward.insert(shuffled(c, rng));
  for (auto it = cliques.rbegin(); it != cliques.rend(); ++it) {
    backward.insert(*it);
    backward.insert(shuffled(*it, rng));  // duplicate, permuted
  }
  EXPECT_TRUE(forward == backward);
  EXPECT_TRUE(forward.difference(backward).empty());

  backward.insert({1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008});
  EXPECT_FALSE(forward == backward);
  const auto extra = backward.difference(forward);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0].size(), 9u);
  EXPECT_TRUE(forward.difference(backward).empty());
}

}  // namespace
}  // namespace dcl

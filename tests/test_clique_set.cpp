// Packed CliqueSet vs an unordered_set<vector> oracle under duplicate and
// permuted-order inserts, across widths that cross the packed/overflow
// boundary (kPackedMax = 8) and table growth.
#include "enumeration/clique_enumeration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <set>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace dcl {
namespace {

Clique random_clique(Rng& rng, std::size_t size, NodeId universe) {
  std::set<NodeId> s;
  while (s.size() < size) {
    s.insert(static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(universe))));
  }
  return {s.begin(), s.end()};
}

Clique shuffled(Clique c, Rng& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    std::swap(c[i - 1], c[static_cast<std::size_t>(rng.next_below(i))]);
  }
  return c;
}

TEST(CliqueSetPacked, RandomizedAgainstSetOracle) {
  Rng rng(1);
  CliqueSet set;
  std::set<Clique> oracle;
  for (int op = 0; op < 5000; ++op) {
    // Sizes 1..10 cross the packed/overflow boundary; a small universe
    // forces frequent duplicates.
    const std::size_t size = 1 + rng.next_below(10);
    Clique c = random_clique(rng, size, 24);
    const Clique permuted = shuffled(c, rng);
    const bool fresh_expected = oracle.insert(c).second;
    EXPECT_EQ(set.insert(permuted), fresh_expected) << "op " << op;
    EXPECT_EQ(set.size(), oracle.size());
  }
  // Every oracle element is found (again under permutation), and
  // to_vector() round-trips the exact same set.
  for (const Clique& c : oracle) {
    EXPECT_TRUE(set.contains(shuffled(c, rng)));
  }
  auto listed = set.to_vector();
  std::sort(listed.begin(), listed.end());
  EXPECT_TRUE(std::equal(listed.begin(), listed.end(), oracle.begin(),
                         oracle.end()));
}

TEST(CliqueSetPacked, GrowthKeepsAllElements) {
  // Push well past several doublings of the initial table.
  CliqueSet set;
  constexpr NodeId kCount = 20000;
  for (NodeId i = 0; i < kCount; ++i) {
    EXPECT_TRUE(set.insert({i, i + 100000, i + 200000}));
  }
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kCount));
  for (NodeId i = 0; i < kCount; ++i) {
    // Membership probes in reversed vertex order.
    EXPECT_TRUE(set.contains({i + 200000, i + 100000, i}));
  }
  EXPECT_FALSE(set.contains({kCount, kCount + 100000, kCount + 200000}));
}

TEST(CliqueSetPacked, EraseRandomizedAgainstSetOracle) {
  // Mixed insert/erase workload (permuted vertex orders, widths crossing
  // the packed/overflow boundary): size, membership, and fingerprint must
  // track the oracle through arbitrary churn — the backward-shift erase
  // must never strand or lose a key.
  Rng rng(3);
  CliqueSet set;
  std::set<Clique> oracle;
  for (int op = 0; op < 8000; ++op) {
    const std::size_t size = 1 + rng.next_below(10);
    Clique c = random_clique(rng, size, 20);
    const Clique permuted = shuffled(c, rng);
    if (rng.next_bool(0.45)) {
      EXPECT_EQ(set.erase(permuted), oracle.erase(c) > 0) << "op " << op;
    } else {
      EXPECT_EQ(set.insert(permuted), oracle.insert(c).second) << "op " << op;
    }
    ASSERT_EQ(set.size(), oracle.size());
    if (op % 500 == 499) {
      // Full membership audit plus fingerprint equality with a rebuilt
      // set: the incremental fingerprint is order-independent and must
      // land exactly where a fresh build lands.
      CliqueSet rebuilt;
      for (const Clique& x : oracle) rebuilt.insert(x);
      EXPECT_EQ(set.fingerprint(), rebuilt.fingerprint());
      for (const Clique& x : oracle) {
        EXPECT_TRUE(set.contains(x));
      }
    }
  }
}

TEST(CliqueSetPacked, FingerprintIsOrderIndependentAndCancels) {
  Rng rng(4);
  std::vector<Clique> cliques;
  for (int i = 0; i < 300; ++i) {
    cliques.push_back(random_clique(rng, 1 + rng.next_below(9), 64));
  }
  CliqueSet forward, backward;
  for (const auto& c : cliques) forward.insert(c);
  for (auto it = cliques.rbegin(); it != cliques.rend(); ++it) {
    backward.insert(shuffled(*it, rng));
  }
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());

  // Inserting then erasing extra cliques returns to the exact value;
  // erasing everything returns to zero (the empty-set fingerprint).
  const std::uint64_t fp = forward.fingerprint();
  forward.insert({901, 902, 903});
  EXPECT_NE(forward.fingerprint(), fp);
  forward.erase({903, 901, 902});
  EXPECT_EQ(forward.fingerprint(), fp);
  for (const auto& c : cliques) forward.erase(c);
  EXPECT_EQ(forward.fingerprint(), 0u);
  EXPECT_TRUE(forward.empty());
}

TEST(CliqueSetPacked, ReservePreservesContentsAndAbsorbsInserts) {
  CliqueSet set;
  for (NodeId i = 0; i < 100; ++i) set.insert({i, i + 1000});
  const std::uint64_t fp = set.fingerprint();
  set.reserve(50000);
  EXPECT_EQ(set.size(), 100u);
  EXPECT_EQ(set.fingerprint(), fp);
  for (NodeId i = 0; i < 100; ++i) {
    EXPECT_TRUE(set.contains({i, i + 1000}));
  }
  for (NodeId i = 100; i < 40000; ++i) set.insert({i, i + 1000});
  EXPECT_EQ(set.size(), 40000u);
  EXPECT_TRUE(set.contains({39999, 40999}));
}

TEST(CliqueSetPacked, DifferenceAndEqualityAcrossRepresentations) {
  // Same logical set built in different insert orders (and with
  // duplicates) must compare equal; difference must be exact.
  Rng rng(2);
  std::vector<Clique> cliques;
  for (int i = 0; i < 200; ++i) {
    cliques.push_back(random_clique(rng, 1 + rng.next_below(9), 64));
  }
  CliqueSet forward, backward;
  for (const auto& c : cliques) forward.insert(shuffled(c, rng));
  for (auto it = cliques.rbegin(); it != cliques.rend(); ++it) {
    backward.insert(*it);
    backward.insert(shuffled(*it, rng));  // duplicate, permuted
  }
  EXPECT_TRUE(forward == backward);
  EXPECT_TRUE(forward.difference(backward).empty());

  backward.insert({1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008});
  EXPECT_FALSE(forward == backward);
  const auto extra = backward.difference(forward);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0].size(), 9u);
  EXPECT_TRUE(forward.difference(backward).empty());
}

// ---- Backward-shift erase across the table boundary -----------------------
//
// The backward-shift displacement rule compares *cyclic* probe distances
// (`((j - ideal) & mask) >= ((j - hole) & mask)`); a sign slip there only
// shows on probe clusters that wrap from the last slot back to slot 0 —
// randomized churn rarely parks a full cluster exactly on the boundary, so
// this pins it deterministically. The test replicates the packed key hash
// (pack → 4 splitmix-mixed 64-bit lanes) to *construct* cliques whose
// ideal slot is at the table end; the replica is asserted against the
// public fingerprint of a singleton set, so if the production hash ever
// changes this test fails loudly at the assert rather than silently
// testing nothing.

std::uint64_t test_splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t test_hash_clique(Clique c) {
  std::sort(c.begin(), c.end());
  std::array<NodeId, 8> key;
  key.fill(-1);
  std::copy(c.begin(), c.end(), key.begin());
  const auto lanes = std::bit_cast<std::array<std::uint64_t, 4>>(key);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t lane : lanes) h = test_splitmix64(h ^ lane);
  return h;
}

TEST(CliqueSetPacked, BackwardShiftEraseAcrossWrappingProbeCluster) {
  // The replica must agree with production: a singleton set's fingerprint
  // is exactly the member's key hash.
  {
    CliqueSet probe;
    probe.insert({1, 2, 3});
    ASSERT_EQ(probe.fingerprint(), test_hash_clique({1, 2, 3}))
        << "hash replica out of sync with CliqueSet::hash_key — "
           "update test_hash_clique";
  }

  // Mine cliques by ideal slot in the fresh table's 32 slots: three whose
  // probe starts at slot 31 and one at slot 30 (fewer than 22 keys keeps
  // the table at 32 slots, so ideal slots are stable for the whole test).
  constexpr std::size_t kSlots = 32;
  std::vector<Clique> at31, at30;
  for (NodeId x = 0; at31.size() < 3 || at30.size() < 1; ++x) {
    ASSERT_LT(x, 100000) << "slot mining failed";
    const Clique c{x, x + 100000, x + 200000};
    const std::size_t slot =
        static_cast<std::size_t>(test_hash_clique(c)) & (kSlots - 1);
    if (slot == 31 && at31.size() < 3) at31.push_back(c);
    if (slot == 30 && at30.empty()) at30.push_back(c);
  }

  // Layout after these inserts: d at 30; a at 31; b, c displaced past the
  // boundary into 0 and 1 — one probe cluster spanning 30,31,0,1.
  CliqueSet set;
  const Clique& d = at30[0];
  const Clique& a = at31[0];
  const Clique& b = at31[1];
  const Clique& c = at31[2];
  EXPECT_TRUE(set.insert(d));
  EXPECT_TRUE(set.insert(a));
  EXPECT_TRUE(set.insert(b));
  EXPECT_TRUE(set.insert(c));
  ASSERT_EQ(set.size(), 4u);

  // Erasing the key AT the boundary slot must pull both wrapped followers
  // back across it (b: 0 → 31, c: 1 → 0); membership of everything else
  // must survive.
  EXPECT_TRUE(set.erase(a));
  EXPECT_FALSE(set.contains(a));
  EXPECT_TRUE(set.contains(b));
  EXPECT_TRUE(set.contains(c));
  EXPECT_TRUE(set.contains(d));

  // Re-insert and instead erase from the middle of the wrapped segment.
  EXPECT_TRUE(set.insert(a));
  EXPECT_TRUE(set.erase(b));
  EXPECT_TRUE(set.contains(a));
  EXPECT_FALSE(set.contains(b));
  EXPECT_TRUE(set.contains(c));
  EXPECT_TRUE(set.contains(d));

  // Erase d (slot 30, the head of the cluster) with the wrap still live.
  EXPECT_TRUE(set.erase(d));
  EXPECT_TRUE(set.contains(a));
  EXPECT_TRUE(set.contains(c));

  // Drain completely: the incremental fingerprint must round-trip to the
  // empty-set value 0.
  EXPECT_TRUE(set.erase(a));
  EXPECT_TRUE(set.erase(c));
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.fingerprint(), 0u);
}

TEST(CliqueSetPacked, ChurnDifferentialAgainstUnorderedSetOracle) {
  // Randomized insert/erase churn against an unordered_set oracle (hash
  // iteration order ≠ tree order — a genuinely independent second
  // opinion), with periodic audits and a full drain at the end: emptying
  // the set through erase alone must round-trip fingerprint() to 0.
  struct OracleHash {
    std::size_t operator()(const Clique& c) const {
      std::uint64_t h = 0x2545f4914f6cdd1dULL;
      for (const NodeId v : c) {
        h = test_splitmix64(h ^ static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(v)));
      }
      return static_cast<std::size_t>(h);
    }
  };
  Rng rng(17);
  CliqueSet set;
  std::unordered_set<Clique, OracleHash> oracle;
  for (int op = 0; op < 6000; ++op) {
    const std::size_t size = 1 + rng.next_below(9);
    Clique c = random_clique(rng, size, 18);  // tiny universe: heavy churn
    const Clique permuted = shuffled(c, rng);
    if (rng.next_bool(0.5)) {
      EXPECT_EQ(set.erase(permuted), oracle.erase(c) > 0) << "op " << op;
    } else {
      EXPECT_EQ(set.insert(permuted), oracle.insert(c).second) << "op " << op;
    }
    ASSERT_EQ(set.size(), oracle.size());
    if (op % 1000 == 999) {
      for (const Clique& x : oracle) {
        EXPECT_TRUE(set.contains(shuffled(x, rng)));
      }
    }
  }
  // Drain in the oracle's (arbitrary) iteration order.
  for (const Clique& x : oracle) {
    EXPECT_TRUE(set.erase(shuffled(x, rng)));
  }
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.fingerprint(), 0u);
  EXPECT_TRUE(set.to_vector().empty());
}

TEST(CliqueSetPacked, RobinHoodBoundsDisplacementUnderBulkInserts) {
  // Robin-hood placement bounds probe distances no matter the insert
  // order. Plain linear probing degenerates under hash-ordered inserts
  // (exactly what shard-buffer merges produce: for_each_span walks the
  // source table in slot ≈ hash order — the measured 60x trap); with the
  // displacement-bounded insert the maximum probe distance at the 0.7 load
  // ceiling stays small. 24 is loose for robin hood at this load (expected
  // max displacement is O(log n)) yet far below the hundreds-long chains
  // the trap produced.
  Rng rng(23);
  CliqueSet random_order;
  std::vector<Clique> cliques;
  for (int i = 0; i < 40000; ++i) {
    cliques.push_back(random_clique(rng, 4, 1 << 20));
  }
  for (const Clique& c : cliques) random_order.insert(c);
  EXPECT_LE(random_order.max_displacement(), 24u);

  // Adversarial order: replay the same cliques sorted by the slot they
  // occupy in the finished table (= hash order), the merge-path pattern.
  std::vector<Clique> slot_order;
  slot_order.reserve(cliques.size());
  random_order.for_each_span([&](std::span<const NodeId> c) {
    slot_order.emplace_back(c.begin(), c.end());
  });
  CliqueSet merged;
  merged.reserve(slot_order.size());
  for (const Clique& c : slot_order) merged.insert(c);
  EXPECT_EQ(merged.size(), random_order.size());
  EXPECT_EQ(merged.fingerprint(), random_order.fingerprint());
  EXPECT_LE(merged.max_displacement(), 24u);

  // And hash-ordered inserts into a GROWING table (no reserve) — the
  // original trap's exact shape.
  CliqueSet growing;
  for (const Clique& c : slot_order) growing.insert(c);
  EXPECT_EQ(growing.fingerprint(), random_order.fingerprint());
  EXPECT_LE(growing.max_displacement(), 24u);
}

}  // namespace
}  // namespace dcl

#include "enumeration/clique_enumeration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/math_util.h"
#include "graph/generators.h"

namespace dcl {
namespace {

TEST(ListKCliques, CompleteGraphClosedForm) {
  const Graph g = complete_graph(8);
  for (int p = 1; p <= 8; ++p) {
    EXPECT_EQ(count_k_cliques(g, p), binomial(8, static_cast<std::uint64_t>(p)))
        << "p=" << p;
  }
  EXPECT_EQ(count_k_cliques(g, 9), 0u);
}

TEST(ListKCliques, BipartiteHasNoTriangles) {
  const Graph g = complete_bipartite(5, 6);
  EXPECT_EQ(count_k_cliques(g, 3), 0u);
  EXPECT_EQ(count_k_cliques(g, 4), 0u);
  EXPECT_EQ(count_k_cliques(g, 2), 30u);  // edges
}

TEST(ListKCliques, SmallPValues) {
  const Graph g = path_graph(5);
  EXPECT_EQ(count_k_cliques(g, 1), 5u);
  EXPECT_EQ(count_k_cliques(g, 2), 4u);
  EXPECT_EQ(count_k_cliques(g, 3), 0u);
  EXPECT_THROW(count_k_cliques(g, 0), std::invalid_argument);
}

TEST(ListKCliques, CycleAndStar) {
  EXPECT_EQ(count_k_cliques(cycle_graph(3), 3), 1u);
  EXPECT_EQ(count_k_cliques(cycle_graph(6), 3), 0u);
  EXPECT_EQ(count_k_cliques(star_graph(10), 3), 0u);
}

TEST(ListKCliques, PlantedCliqueIsFound) {
  Rng rng(1);
  const auto planted = planted_clique(70, 9, 0.03, rng);
  const auto cliques = list_k_cliques(planted.graph, 9);
  CliqueSet set{cliques};
  EXPECT_TRUE(set.contains(planted.clique_nodes));
}

TEST(ListKCliques, ListedCliquesAreRealAndSorted) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(50, 400, rng);
  for (const auto& c : list_k_cliques(g, 4)) {
    ASSERT_EQ(c.size(), 4u);
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    EXPECT_TRUE(is_clique(g, c));
  }
}

TEST(ListKCliques, NoDuplicates) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(60, 700, rng);
  const auto cliques = list_k_cliques(g, 4);
  CliqueSet set{cliques};
  EXPECT_EQ(set.size(), cliques.size());
}

TEST(ListKCliques, DisjointUnionAddsCounts) {
  const Graph g = disjoint_union(complete_graph(5), complete_graph(4));
  EXPECT_EQ(count_k_cliques(g, 3), binomial(5, 3) + binomial(4, 3));
  EXPECT_EQ(count_k_cliques(g, 4), binomial(5, 4) + 1u);
  EXPECT_EQ(count_k_cliques(g, 5), 1u);
}

// Cross-check of the two independent counting implementations across a
// parameter grid — the oracle-validates-oracle property sweep.
class EnumerationCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(EnumerationCrossCheck, DegeneracyDagMatchesNaive) {
  const auto [n, p, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = erdos_renyi_gnp(static_cast<NodeId>(n), density, rng);
  const auto fast = count_k_cliques(g, p);
  const auto naive = count_k_cliques_naive(g, p);
  EXPECT_EQ(fast, naive);
  EXPECT_EQ(list_k_cliques(g, p).size(), fast);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnumerationCrossCheck,
    ::testing::Combine(::testing::Values(20, 45, 70),
                       ::testing::Values(3, 4, 5, 6),
                       ::testing::Values(0.1, 0.3, 0.5),
                       ::testing::Values(1, 2)));

TEST(MaximalCliques, TriangleWithPendant) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const auto maximal = maximal_cliques(g);
  CliqueSet set{maximal};
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains({0, 1, 2}));
  EXPECT_TRUE(set.contains({0, 3}));
}

TEST(MaximalCliques, CompleteGraphHasOne) {
  const auto maximal = maximal_cliques(complete_graph(6));
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].size(), 6u);
}

TEST(MaximalCliques, CountMatchesMoonMoserOnSmallCases) {
  // C(3,3,3) complete tripartite has 3^3 = 27 maximal cliques
  // (Moon–Moser); build it directly.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 9; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 9; ++v) {
      if (u / 3 != v / 3) edges.push_back({u, v});
    }
  }
  const Graph g = Graph::from_edges(9, std::move(edges));
  EXPECT_EQ(maximal_cliques(g).size(), 27u);
}

TEST(MaximalCliques, ConsistentWithKpListing) {
  // Cross-validation between the two enumeration entry points: every
  // p-subset of a maximal clique is a Kp the lister must report, and
  // every listed Kp must be contained in some maximal clique.
  Rng rng(11);
  const Graph g = erdos_renyi_gnp(40, 0.25, rng);
  const auto maximal = maximal_cliques(g);
  const int p = 3;
  const CliqueSet listed{list_k_cliques(g, p)};
  for (const auto& mc : maximal) {
    if (mc.size() < static_cast<std::size_t>(p)) continue;
    // Check the p-prefix and p-suffix subsets (spot checks; the full
    // subset lattice is covered by the differential suite).
    Clique prefix(mc.begin(), mc.begin() + p);
    Clique suffix(mc.end() - p, mc.end());
    EXPECT_TRUE(listed.contains(prefix));
    EXPECT_TRUE(listed.contains(suffix));
  }
  for (const auto& clique : listed.to_vector()) {
    bool inside_some_maximal = false;
    for (const auto& mc : maximal) {
      if (std::includes(mc.begin(), mc.end(), clique.begin(), clique.end())) {
        inside_some_maximal = true;
        break;
      }
    }
    EXPECT_TRUE(inside_some_maximal);
  }
}

TEST(CliqueNumber, KnownValues) {
  EXPECT_EQ(clique_number(complete_graph(7)), 7);
  EXPECT_EQ(clique_number(complete_bipartite(4, 4)), 2);
  EXPECT_EQ(clique_number(empty_graph(5)), 1);
  EXPECT_EQ(clique_number(empty_graph(0)), 0);
  Rng rng(5);
  const auto planted = planted_clique(50, 10, 0.02, rng);
  EXPECT_GE(clique_number(planted.graph), 10);
}

TEST(CliqueSetOps, InsertContainsDifference) {
  CliqueSet a;
  EXPECT_TRUE(a.insert({3, 1, 2}));
  EXPECT_FALSE(a.insert({1, 2, 3}));  // same clique, different order
  EXPECT_TRUE(a.contains({2, 3, 1}));
  EXPECT_EQ(a.size(), 1u);

  CliqueSet b;
  b.insert({1, 2, 3});
  b.insert({4, 5, 6});
  const auto diff = b.difference(a);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], (Clique{4, 5, 6}));
  EXPECT_TRUE(a.difference(b).empty());
  EXPECT_FALSE(a == b);
}

TEST(IsClique, RejectsRepeatsAndNonEdges) {
  const Graph g = complete_graph(4);
  EXPECT_TRUE(is_clique(g, std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_FALSE(is_clique(g, std::vector<NodeId>{0, 0, 1}));
  const Graph h = path_graph(3);
  EXPECT_FALSE(is_clique(h, std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(is_clique(h, std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(is_clique(h, std::vector<NodeId>{}));
}

}  // namespace
}  // namespace dcl

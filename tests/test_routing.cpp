#include "routing/cluster_router.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

TEST(RoutingPolylog, GrowsLogarithmically) {
  EXPECT_DOUBLE_EQ(routing_polylog(2), 1.0);
  EXPECT_DOUBLE_EQ(routing_polylog(1024), 10.0);
  EXPECT_DOUBLE_EQ(routing_polylog(1025), 11.0);
  EXPECT_GE(routing_polylog(0), 1.0);
}

TEST(ClusterRoutingRounds, LoadBandwidthFormula) {
  // load 100, bandwidth 10, n=1024 -> ceil(100/10)*10 = 100.
  EXPECT_DOUBLE_EQ(cluster_routing_rounds(100, 10, 1024), 100.0);
  // Partial chunk rounds up.
  EXPECT_DOUBLE_EQ(cluster_routing_rounds(101, 10, 1024), 110.0);
  // Zero load is free.
  EXPECT_DOUBLE_EQ(cluster_routing_rounds(0, 10, 1024), 0.0);
  // Bandwidth never below 1.
  EXPECT_DOUBLE_EQ(cluster_routing_rounds(5, 0, 2), 5.0);
}

TEST(ParallelRoutingCharge, TakesMaxOverClusters) {
  ParallelRoutingCharge charge;
  charge.add_cluster(/*max_load=*/100, /*bandwidth=*/10, /*messages=*/500);
  charge.add_cluster(/*max_load=*/40, /*bandwidth=*/2, /*messages=*/100);
  RoundLedger ledger;
  const double rounds = charge.commit(ledger, "test", 1024);
  // Cluster 2 dominates: ceil(40/2)=20 > ceil(100/10)=10; ×log2(1024)=10.
  EXPECT_DOUBLE_EQ(rounds, 200.0);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 200.0);
  EXPECT_EQ(ledger.total_messages(), 600u);
  EXPECT_EQ(charge.worst_load(), 100);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::routing), 200.0);
  expect_ledger_valid(ledger);
}

TEST(ParallelRoutingCharge, EmptyCommitsNothing) {
  ParallelRoutingCharge charge;
  RoundLedger ledger;
  EXPECT_DOUBLE_EQ(charge.commit(ledger, "none", 64), 0.0);
  EXPECT_TRUE(ledger.entries().empty());
}

TEST(AssignClusterIds, DenseIdsPerCluster) {
  Cluster a;
  a.id = 0;
  a.nodes = {3, 7, 9};
  Cluster b;
  b.id = 1;
  b.nodes = {1, 4};
  RoundLedger ledger;
  const auto ids = assign_cluster_ids({a, b}, 12, ledger);
  EXPECT_EQ(ids[3], 0);
  EXPECT_EQ(ids[7], 1);
  EXPECT_EQ(ids[9], 2);
  EXPECT_EQ(ids[1], 0);
  EXPECT_EQ(ids[4], 1);
  EXPECT_EQ(ids[0], -1);
  EXPECT_EQ(ids[11], -1);
  // Lemma 2.5 polylog charge, once for all clusters in parallel.
  EXPECT_GT(ledger.total_rounds(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.rounds_of_kind(CostKind::analytic),
                   ledger.total_rounds());
}

TEST(AssignClusterIds, NoClustersNoCharge) {
  RoundLedger ledger;
  const auto ids = assign_cluster_ids({}, 5, ledger);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
}

TEST(ResponsibleClusterIndex, CoversEveryNodeExactlyOnce) {
  // Section 2.4.3: node i ∈ [k] handles original ids in
  // [floor(i·n/k), floor((i+1)·n/k)). Every original node must map to
  // exactly one valid index, and ranges must be balanced.
  const NodeId n = 103, k = 7;
  std::vector<std::int64_t> count(static_cast<std::size_t>(k), 0);
  for (NodeId w = 0; w < n; ++w) {
    const NodeId i = responsible_cluster_index(w, n, k);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, k);
    ++count[static_cast<std::size_t>(i)];
  }
  std::int64_t total = 0;
  for (const auto c : count) {
    total += c;
    EXPECT_LE(c, (n + k - 1) / k + 1);
    EXPECT_GE(c, n / k - 1);
  }
  EXPECT_EQ(total, n);
}

TEST(ResponsibleClusterIndex, MonotoneInNode) {
  const NodeId n = 64, k = 5;
  NodeId prev = 0;
  for (NodeId w = 0; w < n; ++w) {
    const NodeId i = responsible_cluster_index(w, n, k);
    EXPECT_GE(i, prev);
    prev = i;
  }
  EXPECT_EQ(prev, k - 1);  // last range used
}

TEST(ResponsibleClusterIndex, SingleNodeCluster) {
  for (NodeId w = 0; w < 10; ++w) {
    EXPECT_EQ(responsible_cluster_index(w, 10, 1), 0);
  }
  EXPECT_THROW(responsible_cluster_index(0, 10, 0), std::invalid_argument);
}

TEST(ResponsibleClusterIndex, ClusterLargerThanGraphRanges) {
  // k > n: every node still maps into [0, k).
  for (NodeId w = 0; w < 5; ++w) {
    const NodeId i = responsible_cluster_index(w, 5, 8);
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 8);
  }
}

}  // namespace
}  // namespace dcl

#include "core/listing_types.h"

#include <gtest/gtest.h>

namespace dcl {
namespace {

TEST(ListingOutput, CountsAndDeduplicates) {
  ListingOutput out(5);
  const NodeId c1[] = {0, 1, 2};
  const NodeId c1_scrambled[] = {2, 0, 1};
  const NodeId c2[] = {1, 2, 3};
  out.report(0, c1);
  out.report(4, c1_scrambled);  // same clique from another node
  out.report(1, c2);
  EXPECT_EQ(out.unique_count(), 2u);
  EXPECT_EQ(out.total_reports(), 3u);
  EXPECT_DOUBLE_EQ(out.duplication_factor(), 1.5);
  EXPECT_EQ(out.reports_of(0), 1u);
  EXPECT_EQ(out.reports_of(4), 1u);
  EXPECT_EQ(out.reports_of(2), 0u);
  EXPECT_EQ(out.max_reports_per_node(), 1u);
}

TEST(ListingOutput, EmptyHasZeroDuplication) {
  ListingOutput out(3);
  EXPECT_DOUBLE_EQ(out.duplication_factor(), 0.0);
  EXPECT_EQ(out.unique_count(), 0u);
  EXPECT_EQ(out.max_reports_per_node(), 0u);
}

TEST(ListingOutput, CliquesAccessible) {
  ListingOutput out(4);
  const NodeId c[] = {3, 1, 0};
  out.report(2, c);
  EXPECT_TRUE(out.cliques().contains({0, 1, 3}));
  EXPECT_FALSE(out.cliques().contains({0, 1, 2}));
}

TEST(ListingOutput, UnionSemanticsUnderMaximalDuplication) {
  // The Section 1 guarantee is about the union of node outputs: if every
  // node reports the same clique, the collector must still count one
  // unique instance, with duplication factor n.
  const NodeId n = 7;
  ListingOutput out(n);
  const NodeId clique[] = {0, 2, 5};
  for (NodeId v = 0; v < n; ++v) out.report(v, clique);
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_EQ(out.total_reports(), static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(out.duplication_factor(), static_cast<double>(n));
  EXPECT_EQ(out.max_reports_per_node(), 1u);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(out.reports_of(v), 1u);
}

TEST(ListingOutput, MaxReportsTracksRunningMaximum) {
  // max_reports_per_node is maintained at report time, not rescanned;
  // interleave reporters so the maximum moves between nodes.
  ListingOutput out(3);
  const NodeId a[] = {0, 1, 2};
  const NodeId b[] = {1, 2, 3};
  const NodeId c[] = {0, 2, 3};
  out.report(1, a);
  EXPECT_EQ(out.max_reports_per_node(), 1u);
  out.report(2, a);
  out.report(2, b);
  EXPECT_EQ(out.max_reports_per_node(), 2u);
  out.report(0, a);
  out.report(0, b);
  out.report(0, c);
  EXPECT_EQ(out.max_reports_per_node(), 3u);
  EXPECT_EQ(out.unique_count(), 3u);
  EXPECT_EQ(out.total_reports(), 6u);
}

TEST(ListingOutput, RetractRemovesFromUniqueButKeepsTrafficTotals) {
  // Delta support for dynamic consumers: retract() unwinds membership
  // (any vertex order) but deliberately NOT the per-node report totals —
  // those are cumulative traffic statistics.
  ListingOutput out(4);
  const NodeId a[] = {0, 1, 2};
  const NodeId b[] = {1, 2, 3};
  out.report(0, a);
  out.report(3, b);
  EXPECT_EQ(out.unique_count(), 2u);
  const NodeId a_permuted[] = {2, 0, 1};
  EXPECT_TRUE(out.retract(a_permuted));
  EXPECT_FALSE(out.retract(a_permuted));  // already gone
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_FALSE(out.cliques().contains(Clique{0, 1, 2}));
  EXPECT_TRUE(out.cliques().contains(Clique{1, 2, 3}));
  EXPECT_EQ(out.total_reports(), 2u);
  EXPECT_EQ(out.reports_of(0), 1u);
  // A retracted clique can be re-reported and counts as new traffic.
  out.report(1, a);
  EXPECT_EQ(out.unique_count(), 2u);
  EXPECT_EQ(out.total_reports(), 3u);
}

TEST(ListingOutput, ReserveAdditionalPreservesState) {
  ListingOutput out(2);
  const NodeId a[] = {0, 1, 2};
  out.report(0, a);
  out.report(1, a);  // duplicate: duplication factor 2
  out.reserve_additional(10000);
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_EQ(out.total_reports(), 2u);
  EXPECT_TRUE(out.cliques().contains(Clique{0, 1, 2}));
}

TEST(ListingOutput, ReserveAdditionalClampsTheColdStart) {
  // Regression for the cold-start reserve trap: with no observations the
  // duplication factor reads 0.0, which used to mean NO discount — the
  // first heavy enumeration reserved for raw reports, the exact cache-loss
  // case the PR 4 A/B measured. The cold hint must now be discounted by
  // kColdStartDuplication. Observable contract (the table is private):
  // a cold reserve of N must behave identically to a cold reserve of
  // N / kColdStartDuplication — and state must be preserved either way.
  ListingOutput cold(4);
  cold.reserve_additional(1u << 20);
  EXPECT_EQ(cold.unique_count(), 0u);
  EXPECT_EQ(cold.total_reports(), 0u);
  EXPECT_DOUBLE_EQ(cold.duplication_factor(), 0.0);
  const NodeId c[] = {0, 1, 2};
  cold.report(0, c);
  EXPECT_EQ(cold.unique_count(), 1u);
  EXPECT_TRUE(cold.cliques().contains(Clique{0, 1, 2}));
}

TEST(ListingOutput, ReserveDiscountUsesObservedFactorWhenWarm) {
  // Once reports exist, the observed duplication factor drives the
  // discount (kColdStartDuplication must NOT override real observations
  // of no duplication: a warm duplication-free collector reserves the
  // full hint and absorbs that many inserts without losing state).
  ListingOutput warm(4);
  const NodeId a[] = {0, 1, 2};
  warm.report(0, a);
  EXPECT_DOUBLE_EQ(warm.duplication_factor(), 1.0);
  warm.reserve_additional(5000);
  for (NodeId i = 0; i < 5000; ++i) {
    const NodeId c[] = {i, i + 10000, i + 20000};
    warm.report(1, c);
  }
  EXPECT_EQ(warm.unique_count(), 5001u);
}

TEST(ListingOutput, DuplicationHintFloorsTheDiscount) {
  // Per-shard buffers adopt the global collector's duplication factor:
  // a hinted cold buffer must keep working exactly like an unhinted one
  // from the caller's point of view (the hint only changes table sizing).
  ListingOutput shard(4);
  shard.set_duplication_hint(8.0);
  shard.reserve_additional(100000);
  const NodeId a[] = {0, 1, 2};
  const NodeId b[] = {1, 2, 3};
  shard.report(0, a);
  shard.report(1, a);
  shard.report(2, b);
  EXPECT_EQ(shard.unique_count(), 2u);
  EXPECT_EQ(shard.total_reports(), 3u);
  EXPECT_TRUE(shard.cliques().contains(Clique{0, 1, 2}));
  EXPECT_TRUE(shard.cliques().contains(Clique{1, 2, 3}));
}

TEST(ListingOutput, MergeFromReproducesSequentialCounters) {
  // The cluster-parallel ARB-LIST contract: splitting a report stream
  // across shard buffers and merging them in shard order must land on the
  // exact counters and clique set of the sequential execution — including
  // cross-shard duplicates and the running per-node maximum.
  const NodeId n = 6;
  const NodeId cliques[][3] = {{0, 1, 2}, {1, 2, 3}, {2, 3, 4},
                               {0, 1, 2}, {3, 4, 5}, {1, 2, 3}};
  const NodeId reporters[] = {0, 1, 1, 2, 5, 5};

  ListingOutput sequential(n);
  for (std::size_t i = 0; i < 6; ++i) {
    sequential.report(reporters[i], cliques[i]);
  }

  ListingOutput merged(n);
  ListingOutput shard_a(n), shard_b(n);
  for (std::size_t i = 0; i < 3; ++i) shard_a.report(reporters[i], cliques[i]);
  for (std::size_t i = 3; i < 6; ++i) shard_b.report(reporters[i], cliques[i]);
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);

  EXPECT_EQ(merged.unique_count(), sequential.unique_count());
  EXPECT_EQ(merged.total_reports(), sequential.total_reports());
  EXPECT_EQ(merged.max_reports_per_node(), sequential.max_reports_per_node());
  EXPECT_DOUBLE_EQ(merged.duplication_factor(),
                   sequential.duplication_factor());
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(merged.reports_of(v), sequential.reports_of(v)) << "v " << v;
  }
  EXPECT_TRUE(merged.cliques() == sequential.cliques());

  // Merging into a collector that already holds reports (the global out
  // between ARB-LIST iterations) accumulates rather than replaces.
  ListingOutput global(n);
  const NodeId pre[] = {0, 4, 5};
  global.report(3, pre);
  global.merge_from(shard_a);
  EXPECT_EQ(global.total_reports(), 4u);
  EXPECT_EQ(global.unique_count(), 4u);
  EXPECT_EQ(global.reports_of(3), 1u);
  EXPECT_EQ(global.reports_of(1), 2u);
}

TEST(KpConfigDefaults, MatchPaperStructure) {
  const KpConfig cfg;
  EXPECT_EQ(cfg.p, 4);
  EXPECT_FALSE(cfg.k4_fast);
  EXPECT_TRUE(cfg.enable_bad_edges);
  EXPECT_EQ(cfg.in_cluster_charge, InClusterChargeMode::measured);
  EXPECT_LT(cfg.stop_exponent_override, 0.0);  // derive from p by default
}

}  // namespace
}  // namespace dcl

#include "core/listing_types.h"

#include <gtest/gtest.h>

namespace dcl {
namespace {

TEST(ListingOutput, CountsAndDeduplicates) {
  ListingOutput out(5);
  const NodeId c1[] = {0, 1, 2};
  const NodeId c1_scrambled[] = {2, 0, 1};
  const NodeId c2[] = {1, 2, 3};
  out.report(0, c1);
  out.report(4, c1_scrambled);  // same clique from another node
  out.report(1, c2);
  EXPECT_EQ(out.unique_count(), 2u);
  EXPECT_EQ(out.total_reports(), 3u);
  EXPECT_DOUBLE_EQ(out.duplication_factor(), 1.5);
  EXPECT_EQ(out.reports_of(0), 1u);
  EXPECT_EQ(out.reports_of(4), 1u);
  EXPECT_EQ(out.reports_of(2), 0u);
  EXPECT_EQ(out.max_reports_per_node(), 1u);
}

TEST(ListingOutput, EmptyHasZeroDuplication) {
  ListingOutput out(3);
  EXPECT_DOUBLE_EQ(out.duplication_factor(), 0.0);
  EXPECT_EQ(out.unique_count(), 0u);
  EXPECT_EQ(out.max_reports_per_node(), 0u);
}

TEST(ListingOutput, CliquesAccessible) {
  ListingOutput out(4);
  const NodeId c[] = {3, 1, 0};
  out.report(2, c);
  EXPECT_TRUE(out.cliques().contains({0, 1, 3}));
  EXPECT_FALSE(out.cliques().contains({0, 1, 2}));
}

TEST(ListingOutput, UnionSemanticsUnderMaximalDuplication) {
  // The Section 1 guarantee is about the union of node outputs: if every
  // node reports the same clique, the collector must still count one
  // unique instance, with duplication factor n.
  const NodeId n = 7;
  ListingOutput out(n);
  const NodeId clique[] = {0, 2, 5};
  for (NodeId v = 0; v < n; ++v) out.report(v, clique);
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_EQ(out.total_reports(), static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(out.duplication_factor(), static_cast<double>(n));
  EXPECT_EQ(out.max_reports_per_node(), 1u);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(out.reports_of(v), 1u);
}

TEST(ListingOutput, MaxReportsTracksRunningMaximum) {
  // max_reports_per_node is maintained at report time, not rescanned;
  // interleave reporters so the maximum moves between nodes.
  ListingOutput out(3);
  const NodeId a[] = {0, 1, 2};
  const NodeId b[] = {1, 2, 3};
  const NodeId c[] = {0, 2, 3};
  out.report(1, a);
  EXPECT_EQ(out.max_reports_per_node(), 1u);
  out.report(2, a);
  out.report(2, b);
  EXPECT_EQ(out.max_reports_per_node(), 2u);
  out.report(0, a);
  out.report(0, b);
  out.report(0, c);
  EXPECT_EQ(out.max_reports_per_node(), 3u);
  EXPECT_EQ(out.unique_count(), 3u);
  EXPECT_EQ(out.total_reports(), 6u);
}

TEST(ListingOutput, RetractRemovesFromUniqueButKeepsTrafficTotals) {
  // Delta support for dynamic consumers: retract() unwinds membership
  // (any vertex order) but deliberately NOT the per-node report totals —
  // those are cumulative traffic statistics.
  ListingOutput out(4);
  const NodeId a[] = {0, 1, 2};
  const NodeId b[] = {1, 2, 3};
  out.report(0, a);
  out.report(3, b);
  EXPECT_EQ(out.unique_count(), 2u);
  const NodeId a_permuted[] = {2, 0, 1};
  EXPECT_TRUE(out.retract(a_permuted));
  EXPECT_FALSE(out.retract(a_permuted));  // already gone
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_FALSE(out.cliques().contains(Clique{0, 1, 2}));
  EXPECT_TRUE(out.cliques().contains(Clique{1, 2, 3}));
  EXPECT_EQ(out.total_reports(), 2u);
  EXPECT_EQ(out.reports_of(0), 1u);
  // A retracted clique can be re-reported and counts as new traffic.
  out.report(1, a);
  EXPECT_EQ(out.unique_count(), 2u);
  EXPECT_EQ(out.total_reports(), 3u);
}

TEST(ListingOutput, ReserveAdditionalPreservesState) {
  ListingOutput out(2);
  const NodeId a[] = {0, 1, 2};
  out.report(0, a);
  out.report(1, a);  // duplicate: duplication factor 2
  out.reserve_additional(10000);
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_EQ(out.total_reports(), 2u);
  EXPECT_TRUE(out.cliques().contains(Clique{0, 1, 2}));
}

TEST(KpConfigDefaults, MatchPaperStructure) {
  const KpConfig cfg;
  EXPECT_EQ(cfg.p, 4);
  EXPECT_FALSE(cfg.k4_fast);
  EXPECT_TRUE(cfg.enable_bad_edges);
  EXPECT_EQ(cfg.in_cluster_charge, InClusterChargeMode::measured);
  EXPECT_LT(cfg.stop_exponent_override, 0.0);  // derive from p by default
}

}  // namespace
}  // namespace dcl

// Randomized differential tests of the common/intersect.h kernels against
// std::set_intersection — the oracle the kernels replaced. Covers the
// branchless-merge regime (similar sizes), the galloping regime (skewed
// sizes past kGallopSkew), empty inputs, and disjoint/identical extremes.
#include "common/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace dcl {
namespace {

std::vector<NodeId> random_sorted_list(Rng& rng, std::size_t size,
                                       NodeId universe) {
  std::set<NodeId> s;
  while (s.size() < size) {
    s.insert(static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(universe))));
  }
  return {s.begin(), s.end()};
}

std::vector<NodeId> oracle(const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void expect_matches_oracle(const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b) {
  const auto expected = oracle(a, b);
  EXPECT_EQ(intersect_count(a, b), expected.size());
  EXPECT_EQ(intersect_count(b, a), expected.size());
  std::vector<NodeId> got;
  intersect_into(a, b, got);
  EXPECT_EQ(got, expected);
  intersect_into(b, a, got);
  EXPECT_EQ(got, expected);
}

TEST(Intersect, RandomizedSimilarSizes) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto na = rng.next_below(64);
    const auto nb = rng.next_below(64);
    const auto a = random_sorted_list(rng, na, 120);
    const auto b = random_sorted_list(rng, nb, 120);
    expect_matches_oracle(a, b);
  }
}

TEST(Intersect, RandomizedSkewedSizes) {
  // One side far past the galloping threshold of the other.
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto small = random_sorted_list(rng, 1 + rng.next_below(8), 40000);
    const auto large =
        random_sorted_list(rng, 2000 + rng.next_below(2000), 40000);
    expect_matches_oracle(small, large);
  }
}

TEST(Intersect, EmptyInputs) {
  const std::vector<NodeId> empty;
  const std::vector<NodeId> some{1, 5, 9};
  expect_matches_oracle(empty, empty);
  expect_matches_oracle(empty, some);
  std::vector<NodeId> out{7, 7, 7};  // must be cleared, not appended to
  intersect_into(empty, some, out);
  EXPECT_TRUE(out.empty());
}

TEST(Intersect, IdenticalAndDisjoint) {
  Rng rng(3);
  const auto a = random_sorted_list(rng, 100, 500);
  expect_matches_oracle(a, a);
  std::vector<NodeId> shifted;
  for (const NodeId v : a) shifted.push_back(v + 1000);
  expect_matches_oracle(a, shifted);
}

TEST(Intersect, InterleavedRuns) {
  // Long runs from one list between consecutive elements of the other —
  // the worst case for galloping restart positions.
  std::vector<NodeId> sparse, dense;
  for (NodeId i = 0; i < 2000; ++i) dense.push_back(i);
  for (NodeId i = 0; i < 2000; i += 400) sparse.push_back(i);
  expect_matches_oracle(sparse, dense);
}

TEST(SortedContains, MatchesBinarySearch) {
  Rng rng(4);
  const auto a = random_sorted_list(rng, 300, 1000);
  for (NodeId probe = 0; probe < 1000; ++probe) {
    EXPECT_EQ(sorted_contains(a, probe),
              std::binary_search(a.begin(), a.end(), probe))
        << "probe=" << probe;
  }
  EXPECT_FALSE(sorted_contains({}, 3));
}

}  // namespace
}  // namespace dcl

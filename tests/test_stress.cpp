// Stress and failure-injection tests: configuration extremes, forced
// fallbacks, degenerate instances, and ledger consistency — the paths a
// production deployment hits when the input does not look like the happy
// case.
#include <gtest/gtest.h>

#include "core/kp_lister.h"
#include "core/sparse_cc.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/workloads.h"
#include "test_util.h"

namespace dcl {
namespace {

void expect_exact(const Graph& g, const KpConfig& cfg) {
  const CliqueSet truth{list_k_cliques(g, cfg.p)};
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  expect_result_valid(result);
  EXPECT_TRUE(out.cliques() == truth)
      << "expected " << truth.size() << ", got " << out.unique_count();
}

TEST(Stress, ForcedFallbackViaIterationCap) {
  // max_arb_iterations = 1 on a workload needing >= 2 iterations forces
  // the LIST fallback broadcast; correctness must survive.
  Rng rng(1);
  const Graph g = ring_of_cliques_workload(200, rng, 5, 0.5);
  KpConfig cfg;
  cfg.p = 4;
  cfg.max_arb_iterations = 1;
  cfg.stop_scale = 0.05;
  expect_exact(g, cfg);
}

TEST(Stress, ExtremeCouplingScales) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(120, 2400, rng);
  for (const double coupling : {0.1, 1.0, 10.0}) {
    KpConfig cfg;
    cfg.p = 4;
    cfg.coupling_scale = coupling;
    cfg.stop_scale = 0.1;
    expect_exact(g, cfg);
  }
}

TEST(Stress, ExtremeStopScales) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(120, 2400, rng);
  for (const double stop : {0.01, 1.0, 100.0}) {
    KpConfig cfg;
    cfg.p = 4;
    cfg.stop_scale = stop;  // 100: pure final broadcast; 0.01: deep pipeline
    expect_exact(g, cfg);
  }
}

TEST(Stress, AggressiveBadEdgeThreshold) {
  // bad_scale so low that most cluster nodes become bad: the bad-edge
  // budget may force fallbacks but never wrong output.
  Rng rng(4);
  const Graph g = periphery_workload(160, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.bad_scale = 0.01;
  cfg.coupling_scale = 0.25;
  cfg.stop_scale = 0.15;
  expect_exact(g, cfg);
}

TEST(Stress, HeavyThresholdExtremes) {
  Rng rng(5);
  const Graph g = periphery_workload(160, rng);
  for (const double heavy : {0.01, 100.0}) {
    // 0.01: every outside node is heavy (ships all edges);
    // 100: every outside node is light (everything learned via lists).
    KpConfig cfg;
    cfg.p = 4;
    cfg.heavy_scale = heavy;
    cfg.coupling_scale = 0.25;
    cfg.stop_scale = 0.15;
    expect_exact(g, cfg);
  }
}

TEST(Stress, IsolatedNodesAndLoners) {
  // Isolated vertices plus a dense pocket.
  Rng rng(6);
  Graph pocket = complete_graph(12);
  std::vector<Edge> edges(pocket.edges().begin(), pocket.edges().end());
  const Graph g = Graph::from_edges(64, std::move(edges));  // 52 isolated
  KpConfig cfg;
  cfg.p = 5;
  expect_exact(g, cfg);
}

TEST(Stress, ManySmallComponents) {
  Graph g = complete_graph(6);
  for (int i = 0; i < 9; ++i) {
    g = disjoint_union(g, complete_graph(6));
  }
  KpConfig cfg;
  cfg.p = 4;
  expect_exact(g, cfg);  // 10 × C(6,4) = 150 cliques across components
}

TEST(Stress, LargeCliqueNumberGraph) {
  // One K20 inside sparse noise: p up to 7 must find all nested cliques.
  Rng rng(7);
  const auto planted = planted_clique(100, 20, 0.02, rng);
  for (const int p : {6, 7}) {
    KpConfig cfg;
    cfg.p = p;
    expect_exact(planted.graph, cfg);
  }
}

TEST(Stress, SparseCcDegenerateConfigs) {
  Rng rng(8);
  const Graph g = erdos_renyi_gnm(64, 600, rng);
  for (const double pad : {0.0, 0.5, 5.0}) {
    SparseCcConfig cfg;
    cfg.p = 4;
    cfg.pad_factor = pad;
    ListingOutput out(g.node_count());
    sparse_cc_list(g, cfg, out);
    EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, 4)))
        << "pad=" << pad;
  }
}

TEST(Stress, LedgerLabelsAreStable) {
  // The experiment harnesses key off ledger labels; a rename must fail
  // loudly here rather than silently zeroing a bench column.
  Rng rng(9);
  const Graph g = periphery_workload(200, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.coupling_scale = 0.25;
  cfg.stop_scale = 0.15;
  const auto result = list_kp(g, cfg);
  const auto labels = result.ledger.rounds_by_label();
  for (const char* expected :
       {"expander-decomposition (T2.3)", "cluster-announce", "light-status",
        "reshuffle (T2.4)", "partition-broadcast (T2.4)",
        "edge-distribution (T2.4)", "final-broadcast"}) {
    EXPECT_TRUE(labels.contains(expected)) << "missing label " << expected;
  }
}

TEST(Stress, ReportsComeOnlyFromRealNodes) {
  Rng rng(10);
  const Graph g = clustered_workload(150, rng);
  KpConfig cfg;
  cfg.p = 4;
  ListingOutput out(g.node_count());
  list_kp_collect(g, cfg, out);
  std::uint64_t sum = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) sum += out.reports_of(v);
  EXPECT_EQ(sum, out.total_reports());
}

TEST(Stress, RepeatedRunsShareNoState) {
  // Re-running on the same graph must not accumulate hidden state.
  Rng rng(11);
  const Graph g = erdos_renyi_gnm(100, 2000, rng);
  KpConfig cfg;
  cfg.p = 4;
  const auto first = list_kp(g, cfg);
  const auto second = list_kp(g, cfg);
  const auto third = list_kp(g, cfg);
  EXPECT_DOUBLE_EQ(first.total_rounds(), second.total_rounds());
  EXPECT_DOUBLE_EQ(second.total_rounds(), third.total_rounds());
  EXPECT_EQ(first.unique_cliques, third.unique_cliques);
}

}  // namespace
}  // namespace dcl

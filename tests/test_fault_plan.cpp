// Unit tests for the deterministic fault-injection plane (fault_plan.h):
// spec parsing, the seeded decision hash, recovery semantics, the recorded
// schedule's serialize/replay round-trip, and the FaultSession hooks.
#include "congest/fault_plan.h"

#include <gtest/gtest.h>

#include <sstream>

#include "congest/round_ledger.h"

namespace dcl {
namespace {

TEST(FaultSpec, ParsesFullSpec) {
  const auto spec = FaultSpec::parse(
      "drop=0.1,dup=0.05,delay=0.02:3,retries=4,seed=7,crash=5@2,crash=9@0");
  EXPECT_DOUBLE_EQ(spec.drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.dup_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.delay_rate, 0.02);
  EXPECT_EQ(spec.max_delay, 3);
  EXPECT_EQ(spec.max_retries, 4);
  EXPECT_EQ(spec.seed, 7u);
  ASSERT_EQ(spec.crashes.size(), 2u);
  EXPECT_EQ(spec.crashes[0], (CrashEvent{5, 2}));
  EXPECT_EQ(spec.crashes[1], (CrashEvent{9, 0}));
  EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpec, DefaultsAndTextRoundTrip) {
  const FaultSpec def;
  EXPECT_FALSE(def.enabled());
  const auto spec = FaultSpec::parse("drop=0.25,delay=0.5:7,crash=3@1");
  const auto back = FaultSpec::parse(spec.to_text());
  EXPECT_DOUBLE_EQ(back.drop_rate, spec.drop_rate);
  EXPECT_DOUBLE_EQ(back.dup_rate, spec.dup_rate);
  EXPECT_DOUBLE_EQ(back.delay_rate, spec.delay_rate);
  EXPECT_EQ(back.max_delay, spec.max_delay);
  EXPECT_EQ(back.max_retries, spec.max_retries);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.crashes, spec.crashes);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop",                 // no '='
      "drop=1.5",             // rate out of [0,1]
      "drop=-0.1",            // negative rate
      "drop=abc",             // non-numeric
      "drop=0.6,dup=0.6",     // rates sum over 1
      "retries=63",           // retry budget over 62
      "retries=-1",           // negative retries
      "delay=0.1:0",          // delay bound below 1
      "delay=0.1:2000000",    // delay bound over 1e6
      "crash=5",              // missing @CLOCK
      "crash=-2@0",           // negative crash node
      "crash=x@0",            // non-numeric node
      "warp=0.5",             // unknown key
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW(FaultSpec::parse(text), std::runtime_error);
  }
}

TEST(FaultPlan, DecisionsAreDeterministicPureFunctions) {
  FaultPlan a(FaultSpec::parse("drop=0.2,dup=0.2,delay=0.2:4,seed=11"));
  FaultPlan b(FaultSpec::parse("drop=0.2,dup=0.2,delay=0.2:4,seed=11"));
  bool saw_fault = false;
  for (std::int64_t clock = 0; clock < 4; ++clock) {
    for (std::uint64_t idx = 0; idx < 64; ++idx) {
      const auto da = a.decide(clock, FaultPlan::edge_key(1, 2), idx, 0);
      const auto db = b.decide(clock, FaultPlan::edge_key(1, 2), idx, 0);
      EXPECT_EQ(da.action, db.action);
      EXPECT_EQ(da.delay, db.delay);
      saw_fault |= da.action != FaultAction::deliver;
    }
  }
  EXPECT_TRUE(saw_fault) << "0.6 fault mass over 256 draws never fired";
  // A different seed must produce a different history somewhere.
  FaultPlan c(FaultSpec::parse("drop=0.2,dup=0.2,delay=0.2:4,seed=12"));
  bool differs = false;
  for (std::uint64_t idx = 0; idx < 64 && !differs; ++idx) {
    differs = c.decide(0, FaultPlan::edge_key(1, 2), idx, 0).action !=
              a.decide(0, FaultPlan::edge_key(1, 2), idx, 0).action;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, DisabledPlanDeliversEverythingAndRecordsNothing) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t idx = 0; idx < 32; ++idx) {
    EXPECT_EQ(plan.decide(0, idx, idx, 0).action, FaultAction::deliver);
  }
  EXPECT_TRUE(plan.schedule().empty());
  const auto o = plan.recover(0, 1, 2);
  EXPECT_EQ(o.extra_rounds, 0);
  EXPECT_FALSE(o.lost);
}

TEST(FaultPlan, RateOneSpecsPinTheLadder) {
  FaultPlan drops(FaultSpec::parse("drop=1,retries=0"));
  EXPECT_EQ(drops.decide(0, 1, 2, 0).action, FaultAction::drop);
  FaultPlan dups(FaultSpec::parse("dup=1"));
  EXPECT_EQ(dups.decide(0, 1, 2, 0).action, FaultAction::duplicate);
  FaultPlan delays(FaultSpec::parse("delay=1:5"));
  const auto d = delays.decide(0, 1, 2, 0);
  EXPECT_EQ(d.action, FaultAction::delay);
  EXPECT_GE(d.delay, 1);
  EXPECT_LE(d.delay, 5);
}

TEST(FaultPlan, RecoverRunsTheAckRetransmitProtocol) {
  // Every attempt drops: the message is lost after 1 + retries attempts,
  // having charged the full exponential backoff 1 + 2 + 4 = 7 rounds.
  FaultPlan lost(FaultSpec::parse("drop=1,retries=3"));
  const auto o = lost.recover(0, FaultPlan::edge_key(0, 1), 0);
  EXPECT_TRUE(o.lost);
  EXPECT_EQ(o.retransmissions, 3);
  EXPECT_EQ(o.extra_rounds, 1 + 2 + 4);

  // Duplication costs one extra copy and zero extra rounds.
  FaultPlan dup(FaultSpec::parse("dup=1"));
  const auto od = dup.recover(0, FaultPlan::edge_key(0, 1), 0);
  EXPECT_FALSE(od.lost);
  EXPECT_EQ(od.duplicates, 1);
  EXPECT_EQ(od.extra_rounds, 0);

  // A delay is waited out within the ack timeout.
  FaultPlan delay(FaultSpec::parse("delay=1:4"));
  const auto ol = delay.recover(0, FaultPlan::edge_key(0, 1), 0);
  EXPECT_FALSE(ol.lost);
  EXPECT_GE(ol.extra_rounds, 1);
  EXPECT_LE(ol.extra_rounds, 4);
}

TEST(FaultPlan, RecoverPhaseFoldsMaxRoundsSumCopies) {
  // Phase semantics: edges run in parallel, so extra rounds take the max
  // while retransmitted copies sum. With drop=1,retries=2 every message is
  // lost after 1+2 = 3 backoff rounds and 2 retransmissions.
  FaultPlan plan(FaultSpec::parse("drop=1,retries=2"));
  const auto pf = plan.recover_phase(0, FaultPlan::label_key("phase"), 10);
  EXPECT_EQ(pf.retry_rounds, 1 + 2);
  EXPECT_EQ(pf.retransmitted, 20u);
  EXPECT_EQ(pf.dropped, 10u);
  EXPECT_EQ(pf.lost, 10u);
}

TEST(FaultPlan, KeysNeverCollideAcrossKinds) {
  // Phase keys set the top bit; edge keys pack two non-negative 32-bit ids,
  // so the spaces are disjoint and a phase can never shadow an edge.
  EXPECT_NE(FaultPlan::label_key("a"), FaultPlan::label_key("b"));
  EXPECT_TRUE(FaultPlan::label_key("cluster-announce") >> 63);
  EXPECT_FALSE(FaultPlan::edge_key(1'000'000, 2'000'000) >> 63);
  EXPECT_NE(FaultPlan::edge_key(1, 2), FaultPlan::edge_key(2, 1));
}

TEST(FaultPlan, CrashedByHonorsClock) {
  FaultPlan plan(FaultSpec::parse("crash=5@2"));
  EXPECT_FALSE(plan.crashed_by(5, 1));
  EXPECT_TRUE(plan.crashed_by(5, 2));
  EXPECT_TRUE(plan.crashed_by(5, 99));
  EXPECT_FALSE(plan.crashed_by(4, 99));
}

TEST(FaultPlan, SerializeReplayRoundTripIsExact) {
  FaultPlan plan(FaultSpec::parse("drop=0.3,dup=0.2,delay=0.2:3,seed=42"));
  // Generate a history across clocks, keys and attempts.
  std::vector<FaultDecision> history;
  for (std::int64_t clock = 0; clock < 3; ++clock) {
    for (std::uint64_t idx = 0; idx < 40; ++idx) {
      history.push_back(plan.decide(clock, FaultPlan::edge_key(3, 4), idx,
                                    static_cast<int>(idx % 2)));
    }
  }
  ASSERT_FALSE(plan.schedule().empty());

  std::stringstream ss;
  plan.serialize(ss);
  FaultPlan replay = FaultPlan::deserialize(ss);
  EXPECT_TRUE(replay.replaying());
  EXPECT_EQ(replay.schedule().size(), plan.schedule().size());

  std::size_t i = 0;
  for (std::int64_t clock = 0; clock < 3; ++clock) {
    for (std::uint64_t idx = 0; idx < 40; ++idx, ++i) {
      const auto d = replay.decide(clock, FaultPlan::edge_key(3, 4), idx,
                                   static_cast<int>(idx % 2));
      EXPECT_EQ(d.action, history[i].action);
      EXPECT_EQ(d.delay, history[i].delay);
    }
  }
  // Coordinates never recorded replay as clean deliveries.
  EXPECT_EQ(replay.decide(99, 1, 1, 0).action, FaultAction::deliver);
}

TEST(FaultPlan, DeserializeRejectsCorruptSchedules) {
  const char* bad[] = {
      "not-a-plan\n",
      "dcl-fault-plan v1\nspec drop=0.1\n",               // missing end
      "dcl-fault-plan v1\nevent 0 1 2\nend\n",            // truncated event
      "dcl-fault-plan v1\nevent 0 1 2 0 warp\nend\n",     // unknown action
      "dcl-fault-plan v1\nevent 0 1 2 0 delay\nend\n",    // delay without k
      "dcl-fault-plan v1\nbogus line\nend\n",             // unknown tag
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    std::stringstream ss(text);
    EXPECT_THROW(FaultPlan::deserialize(ss), std::runtime_error);
  }
}

TEST(FaultSession, InactiveSessionIsFree) {
  FaultSession session;  // no plan attached
  EXPECT_FALSE(session.active());
  RoundLedger ledger;
  EXPECT_EQ(session.charge_exchange(ledger, "phase", 2.0, 100), 0u);
  ASSERT_EQ(ledger.entries().size(), 1u);  // the base charge only
  EXPECT_EQ(ledger.entries()[0].label, "phase");
  EXPECT_DOUBLE_EQ(ledger.retry_rounds(), 0.0);
  EXPECT_TRUE(session.detect_crashes(8).empty());

  FaultPlan disabled;
  session.plan = &disabled;
  EXPECT_FALSE(session.active()) << "a no-fault plan must keep hooks free";
}

TEST(FaultSession, DetectCrashesGatesOnClockAndDedups) {
  FaultPlan plan(FaultSpec::parse("drop=0,dup=0,crash=2@0,crash=5@3"));
  FaultSession session;
  session.plan = &plan;
  ASSERT_TRUE(session.active());

  auto newly = session.detect_crashes(8);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 2);
  EXPECT_TRUE(session.is_dead(2));
  EXPECT_FALSE(session.is_dead(5));

  session.clock = 3;
  newly = session.detect_crashes(8);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 5);
  EXPECT_TRUE(session.detect_crashes(8).empty()) << "no double detection";
  EXPECT_EQ(session.dead_count(), 2u);

  RoundLedger ledger;
  session.charge_crash_timeout(ledger, newly.size());
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].label, "crash-detect-timeout");
  EXPECT_DOUBLE_EQ(ledger.entries()[0].rounds, 1.0);
  session.charge_crash_timeout(ledger, 0);  // empty sweeps are free
  EXPECT_EQ(ledger.entries().size(), 1u);
}

TEST(FaultSession, ChargeExchangeAddsRetryEntryAndAdvancesClock) {
  FaultPlan plan(FaultSpec::parse("drop=1,retries=2,seed=3"));
  FaultSession session;
  session.plan = &plan;
  RoundLedger ledger;

  const auto lost = session.charge_exchange(ledger, "phase", 4.0, 5);
  EXPECT_EQ(lost, 5u);  // drop=1 exhausts every budget
  EXPECT_EQ(session.clock, 1);
  EXPECT_EQ(session.lost_messages, 5u);

  // Base charge, the retry entry, then the escalated resend.
  ASSERT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[0].label, "phase");
  EXPECT_DOUBLE_EQ(ledger.entries()[0].rounds, 4.0);
  EXPECT_EQ(ledger.entries()[1].label, "phase [retry]");
  EXPECT_DOUBLE_EQ(ledger.entries()[1].rounds, 3.0);  // backoff 1+2
  EXPECT_EQ(ledger.entries()[1].messages, 10u);       // 2 retransmits x 5
  EXPECT_EQ(ledger.entries()[2].label, "phase [resend]");
  EXPECT_EQ(ledger.entries()[2].messages, 5u);
  EXPECT_DOUBLE_EQ(ledger.retry_rounds(), 3.0);
  EXPECT_EQ(ledger.retransmitted_messages(), 10u);
  EXPECT_EQ(ledger.lost_messages(), 5u);
}

TEST(FaultSession, CleanPhasesChargeExactlyTheFaultFreeCost) {
  // An enabled plan whose hash happens to deliver a phase cleanly must add
  // nothing beyond the base entry (the disabled-cost-nothing guarantee is
  // checked per phase, not just per run).
  FaultPlan plan(FaultSpec::parse("crash=7@50"));  // crashes only, far future
  FaultSession session;
  session.plan = &plan;
  RoundLedger ledger;
  session.charge_exchange(ledger, "phase", 2.0, 1000);
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.retry_rounds(), 0.0);
}

}  // namespace
}  // namespace dcl

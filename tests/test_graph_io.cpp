#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace dcl {
namespace {

TEST(GraphIo, RoundTrip) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(50, 300, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph back = read_edge_list(ss);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e), g.edge(e));
  }
}

TEST(GraphIo, CommentsAndWhitespaceTolerated) {
  std::stringstream ss;
  ss << "# a comment line\n3 2\n# another\n0 1\n\n  1   2  \n";
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, MalformedInputsThrow) {
  {
    std::stringstream ss;  // empty
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3");  // missing edge count
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3 2\n0 1");  // truncated edge list
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("abc 2\n");  // non-numeric
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3 1\n0 7\n");  // endpoint out of range
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("3 1\n1 1\n");  // self loop
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("-1 0\n");  // negative node count
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(20, 60, rng);
  const std::string path = "/tmp/dcl_test_graph.txt";
  save_edge_list(g, path);
  const Graph back = load_edge_list(path);
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_THROW(load_edge_list("/nonexistent/dir/file.txt"),
               std::runtime_error);
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  std::stringstream ss;
  write_edge_list(empty_graph(4), ss);
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(GraphIo, RoundTripPreservesAllFamilies) {
  // The CLI pipes every generator family through this format; a lossy
  // round-trip would silently corrupt every downstream experiment.
  Rng rng(4);
  const Graph graphs[] = {
      complete_graph(9),
      star_graph(8),
      cycle_graph(11),
      erdos_renyi_gnp(40, 0.2, rng),
      power_law_chung_lu(50, 2.5, 6.0, rng),
      stochastic_block_model({10, 10, 10}, 0.6, 0.05, rng),
  };
  for (const Graph& g : graphs) {
    std::stringstream ss;
    write_edge_list(g, ss);
    const Graph back = read_edge_list(ss);
    ASSERT_EQ(back.node_count(), g.node_count());
    ASSERT_EQ(back.edge_count(), g.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(back.edge(e), g.edge(e));
    }
  }
}

}  // namespace
}  // namespace dcl

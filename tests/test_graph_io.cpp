#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace dcl {
namespace {

TEST(GraphIo, RoundTrip) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(50, 300, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph back = read_edge_list(ss);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e), g.edge(e));
  }
}

TEST(GraphIo, CommentsAndWhitespaceTolerated) {
  std::stringstream ss;
  ss << "# a comment line\n3 2\n# another\n0 1\n\n  1   2  \n";
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, MalformedInputsThrowOneLineErrors) {
  // Table-driven hostile-input sweep: every row must raise a
  // std::runtime_error whose message contains the expected fragment, and
  // must do so without UB, aborts, or oversized allocations (the huge-count
  // rows are exactly the ones that used to reach `reserve` unchecked).
  struct BadInput {
    const char* name;
    const char* text;
    const char* expect;  // substring of the error message
  };
  const BadInput cases[] = {
      {"empty", "", "missing node count"},
      {"missing edge count", "3", "missing edge count"},
      {"truncated edge list", "3 2\n0 1", "truncated"},
      {"truncated edge", "3 2\n0 1\n2", "truncated"},
      {"non-numeric count", "abc 2\n", "bad node count"},
      {"non-numeric endpoint", "3 1\n0 x\n", "bad endpoint"},
      {"float count", "3.5 2\n", "bad node count"},
      {"negative node count", "-1 0\n", "negative node count"},
      {"negative edge count", "3 -2\n", "negative edge count"},
      {"node count over 2^31", "4294967296 0\n", "exceeds 2^31-1"},
      {"count overflows int64", "999999999999999999999 0\n", "bad node count"},
      {"edge count over n(n-1)/2", "3 4\n0 1\n0 2\n1 2\n0 1\n",
       "exceeds n(n-1)/2"},
      {"huge edge count small n", "4 987654321987\n", "exceeds n(n-1)/2"},
      {"endpoint out of range", "3 1\n0 7\n", "outside [0, 3)"},
      {"negative endpoint", "3 1\n-2 1\n", "outside [0, 3)"},
      {"endpoint over 2^31", "3 1\n0 4294967296\n", "outside [0, 3)"},
      {"self-loop", "3 1\n1 1\n", "self-loop"},
      {"duplicate edge", "3 2\n0 1\n0 1\n", "duplicate edge"},
      {"duplicate reversed", "3 2\n0 1\n1 0\n", "duplicate edge"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    std::stringstream ss(c.text);
    try {
      read_edge_list(ss);
      FAIL() << "expected a runtime_error for input: " << c.text;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(c.expect), std::string::npos)
          << "message '" << what << "' lacks '" << c.expect << "'";
      EXPECT_EQ(what.find('\n'), std::string::npos)
          << "error message must be one line: '" << what << "'";
    }
  }
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(20, 60, rng);
  const std::string path = "/tmp/dcl_test_graph.txt";
  save_edge_list(g, path);
  const Graph back = load_edge_list(path);
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_THROW(load_edge_list("/nonexistent/dir/file.txt"),
               std::runtime_error);
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  std::stringstream ss;
  write_edge_list(empty_graph(4), ss);
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(GraphIo, RoundTripPreservesAllFamilies) {
  // The CLI pipes every generator family through this format; a lossy
  // round-trip would silently corrupt every downstream experiment.
  Rng rng(4);
  const Graph graphs[] = {
      complete_graph(9),
      star_graph(8),
      cycle_graph(11),
      erdos_renyi_gnp(40, 0.2, rng),
      power_law_chung_lu(50, 2.5, 6.0, rng),
      stochastic_block_model({10, 10, 10}, 0.6, 0.05, rng),
  };
  for (const Graph& g : graphs) {
    std::stringstream ss;
    write_edge_list(g, ss);
    const Graph back = read_edge_list(ss);
    ASSERT_EQ(back.node_count(), g.node_count());
    ASSERT_EQ(back.edge_count(), g.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(back.edge(e), g.edge(e));
    }
  }
}

}  // namespace
}  // namespace dcl

#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcl {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(0, 7), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
  EXPECT_EQ(ceil_div(999, 1000), 1);
}

TEST(ILog2, PowersAndBetween) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(CeilLog2, PowersAndBetween) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(IPow, SmallCases) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(5, 3), 125);
  EXPECT_EQ(ipow(1, 100), 1);
}

TEST(CeilPow, ExactPowersAreNotOvershot) {
  // ceil(8^(1/3)) must be 2, not 3, despite floating error.
  EXPECT_EQ(ceil_pow(8, 1.0 / 3.0), 2);
  EXPECT_EQ(ceil_pow(27, 1.0 / 3.0), 3);
  EXPECT_EQ(ceil_pow(1024, 0.5), 32);
  EXPECT_EQ(ceil_pow(1000, 1.0), 1000);
  EXPECT_EQ(ceil_pow(0, 0.5), 0);
}

TEST(FloorPow, ExactAndBetween) {
  EXPECT_EQ(floor_pow(8, 1.0 / 3.0), 2);
  EXPECT_EQ(floor_pow(9, 0.5), 3);
  EXPECT_EQ(floor_pow(10, 0.5), 3);
  EXPECT_EQ(floor_pow(1024, 0.75), 181);
}

TEST(RadixDigits, RoundTrip) {
  const auto d = radix_digits(123, 5, 4);
  ASSERT_EQ(d.size(), 4u);
  // 123 = 3 + 4*5 + 4*25 + 0*125.
  EXPECT_EQ(d[0], 3);
  EXPECT_EQ(d[1], 4);
  EXPECT_EQ(d[2], 4);
  EXPECT_EQ(d[3], 0);
  std::int64_t rebuilt = 0;
  for (int i = 3; i >= 0; --i) rebuilt = rebuilt * 5 + d[static_cast<std::size_t>(i)];
  EXPECT_EQ(rebuilt, 123);
}

TEST(RadixDigits, AllTuplesDistinct) {
  // The k^{1/p}-radix assignment must be a bijection [q^p] -> tuples.
  const int q = 3, p = 3;
  std::set<std::vector<int>> seen;
  for (std::int64_t v = 0; v < ipow(q, p); ++v) {
    seen.insert(radix_digits(v, q, p));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(ipow(q, p)));
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(4, 0), 1u);
  EXPECT_EQ(binomial(4, 4), 1u);
  EXPECT_EQ(binomial(3, 5), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(FitLine, PerfectLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 5, 7, 9, 11};
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitLine, DegenerateInputs) {
  EXPECT_EQ(fit_line({}, {}).slope, 0.0);
  EXPECT_EQ(fit_line({1.0}, {2.0}).slope, 0.0);
  // Vertical data (all x equal) must not divide by zero.
  EXPECT_EQ(fit_line({2.0, 2.0}, {1.0, 5.0}).slope, 0.0);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> n, rounds;
  for (double v : {128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    n.push_back(v);
    rounds.push_back(3.7 * std::pow(v, 0.75));
  }
  const auto fit = fit_power_law(n, rounds);
  EXPECT_NEAR(fit.slope, 0.75, 1e-6);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitPowerLaw, IgnoresNonPositivePoints) {
  const auto fit = fit_power_law({0.0, 10.0, 100.0}, {5.0, 10.0, 100.0});
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace dcl

// DynamicOrientation: the incrementally maintained arboricity witness.
// Bounded out-degree under updates, deterministic flips, and the rebuild
// regression against the static degeneracy peel.
#include "dynamic/dynamic_orientation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "graph/workloads.h"

namespace dcl {
namespace {

/// Sum of out-degrees must equal the live edge count, and every out-edge
/// list must agree with tail().
void expect_consistent(const DynamicGraph& g, const DynamicOrientation& o) {
  EdgeId total = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    total += o.out_degree(v);
    for (const EdgeId e : o.out_edges(v)) {
      EXPECT_TRUE(g.is_live(e));
      EXPECT_EQ(o.tail(e), v);
      const Edge& ed = g.edge(e);
      EXPECT_TRUE(o.head(e) == ed.u || o.head(e) == ed.v);
      EXPECT_NE(o.head(e), v);
    }
  }
  EXPECT_EQ(total, g.edge_count());
}

TEST(DynamicOrientation, RebuildMatchesStaticPeel) {
  Rng rng(3);
  for (const NodeId n : {10, 40, 80}) {
    const Graph g = erdos_renyi_gnm(n, static_cast<EdgeId>(3 * n), rng);
    DynamicGraph d = DynamicGraph::from_graph(g);
    DynamicOrientation o(d);  // constructor rebuilds
    const Orientation statico = degeneracy_orientation(g);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      // from_graph keeps static ids, so directions align index by index.
      EXPECT_EQ(o.away_from_lower(e), statico.away_from_lower(e));
    }
    EXPECT_EQ(o.max_out_degree(), statico.max_out_degree());
    expect_consistent(d, o);
  }
}

TEST(DynamicOrientation, BoundedOutDegreeUnderUpdates) {
  Rng rng(5);
  UpdateStream stream = churn_stream(60, 360, 30, 20, rng);
  DynamicGraph d(stream.n);
  for (const Edge& e : stream.initial) d.insert_edge(e.u, e.v);
  DynamicOrientation o(d);
  NodeId max_degeneracy_seen = degeneracy_order(d.snapshot()).degeneracy;
  for (const UpdateBatch& batch : stream.batches) {
    for (const Edge& e : batch.erase) {
      const auto id = d.erase_edge(e.u, e.v);
      if (id) o.on_erase(*id);
    }
    for (const Edge& e : batch.insert) {
      const auto [id, fresh] = d.insert_edge(e.u, e.v);
      if (fresh) o.on_insert(id);
    }
    o.flush();
    expect_consistent(d, o);
    const NodeId degeneracy = degeneracy_order(d.snapshot()).degeneracy;
    max_degeneracy_seen = std::max(max_degeneracy_seen, degeneracy);
    // The flushed invariant, and the cap staying within a constant factor
    // of the best possible witness (degeneracy) seen so far.
    EXPECT_LE(o.max_out_degree(), o.cap());
    EXPECT_LE(o.cap(),
              std::max<NodeId>(DynamicOrientation::kMinCap,
                               static_cast<NodeId>(4 * max_degeneracy_seen + 4)));
  }
}

TEST(DynamicOrientation, DeterministicAcrossReplays) {
  Rng stream_rng(9);
  UpdateStream stream = sliding_window_stream(40, 20, 15, 4, stream_rng);
  std::vector<bool> first_run;
  for (int run = 0; run < 2; ++run) {
    DynamicGraph d(stream.n);
    DynamicOrientation o(d);
    for (const UpdateBatch& batch : stream.batches) {
      for (const Edge& e : batch.erase) {
        const auto id = d.erase_edge(e.u, e.v);
        if (id) o.on_erase(*id);
      }
      for (const Edge& e : batch.insert) {
        const auto [id, fresh] = d.insert_edge(e.u, e.v);
        if (fresh) o.on_insert(id);
      }
      o.flush();
    }
    std::vector<bool> dirs;
    for (EdgeId e = 0; e < d.edge_id_bound(); ++e) {
      dirs.push_back(d.is_live(e) && o.away_from_lower(e));
    }
    if (run == 0) {
      first_run = dirs;
    } else {
      EXPECT_EQ(dirs, first_run);
    }
  }
}

TEST(DynamicOrientation, RebuildAfterChurnMatchesStaticPeel) {
  // After arbitrary churn, rebuild() must land exactly on the static
  // orientation of the surviving graph (modulo the id mapping).
  Rng rng(11);
  UpdateStream stream = build_teardown_stream(50, 300, 6, rng);
  DynamicGraph d(stream.n);
  DynamicOrientation o(d);
  for (std::size_t b = 0; b + 1 < stream.batches.size(); ++b) {
    for (const Edge& e : stream.batches[b].erase) {
      const auto id = d.erase_edge(e.u, e.v);
      if (id) o.on_erase(*id);
    }
    for (const Edge& e : stream.batches[b].insert) {
      const auto [id, fresh] = d.insert_edge(e.u, e.v);
      if (fresh) o.on_insert(id);
    }
    o.flush();
  }
  o.rebuild();
  const Graph snap = d.snapshot();
  const Orientation statico = degeneracy_orientation(snap);
  // Compare direction per undirected edge via endpoints.
  d.live_edges().for_each_set([&](std::int64_t e) {
    const Edge& ed = d.edge(static_cast<EdgeId>(e));
    const auto se = snap.edge_id(ed.u, ed.v);
    ASSERT_TRUE(se.has_value());
    EXPECT_EQ(o.away_from_lower(static_cast<EdgeId>(e)),
              statico.away_from_lower(*se));
  });
  EXPECT_EQ(o.max_out_degree(), statico.max_out_degree());
  expect_consistent(d, o);
}

}  // namespace
}  // namespace dcl

// Cross-module integration tests: full pipelines on the structured
// workload families, exercising exactly the mechanisms each family targets
// (see graph/workloads.h), with exact-listing validation end to end.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "baselines/baselines.h"
#include "core/detection.h"
#include "core/kp_lister.h"
#include "core/sparse_cc.h"
#include "enumeration/clique_enumeration.h"
#include "graph/graph_io.h"
#include "graph/workloads.h"
#include "test_util.h"

namespace dcl {
namespace {

void expect_exact_listing(const Graph& g, const KpConfig& cfg) {
  const CliqueSet truth{list_k_cliques(g, cfg.p)};
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  expect_result_valid(result);
  const auto missing = truth.difference(out.cliques());
  const auto extra = out.cliques().difference(truth);
  EXPECT_TRUE(missing.empty()) << missing.size() << " missed of "
                               << truth.size();
  EXPECT_TRUE(extra.empty()) << extra.size() << " false positives";
}

// ---- Workload-family sweeps ------------------------------------------------

class WorkloadFamilySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WorkloadFamilySweep, ExactOnStructuredGraphs) {
  const auto [family, p, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  Graph g;
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.stop_scale = 0.15;
  switch (family) {
    case 0:
      g = clustered_workload(160, rng);
      break;
    case 1:
      g = periphery_workload(160, rng);
      cfg.coupling_scale = 0.25;  // periphery below the peel bar
      break;
    default:
      g = ring_of_cliques_workload(160, rng, 4, 0.5);
      break;
  }
  expect_exact_listing(g, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Families, WorkloadFamilySweep,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(3, 4, 5),
                       ::testing::Values(1, 2)));

TEST(Integration, K4FastOnPeripheryWorkload) {
  // The exact scenario Theorem 1.2 targets: K4s with two outside nodes.
  Rng rng(3);
  const Graph g = periphery_workload(180, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.k4_fast = true;
  cfg.coupling_scale = 0.25;
  cfg.stop_scale = 0.15;
  expect_exact_listing(g, cfg);
}

TEST(Integration, HeavyAndLightMachineryBothEngage) {
  // On the periphery workload with the forced coupling, the ARB traces
  // must show heavy relationships and learned edges — i.e. the Challenge 1
  // machinery actually ran (not just the single-cluster fast path).
  Rng rng(4);
  const Graph g = periphery_workload(256, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.coupling_scale = 0.25;
  cfg.stop_scale = 0.15;
  const auto result = list_kp(g, cfg);
  std::int64_t heavy = 0, learned = 0;
  for (const auto& t : result.arb_traces) {
    heavy += t.heavy_relationships;
    learned = std::max(learned, t.max_learned_edges);
  }
  EXPECT_GT(heavy + learned, 0)
      << "outside-edge machinery never engaged on its target workload";
}

TEST(Integration, RingWorkloadProducesMultipleArbIterations) {
  Rng rng(5);
  const Graph g = ring_of_cliques_workload(300, rng, 6, 0.5);
  KpConfig cfg;
  cfg.p = 4;
  cfg.stop_scale = 0.05;
  cfg.coupling_scale = 0.5;
  const auto result = list_kp(g, cfg);
  EXPECT_GE(result.arb_traces.size(), 2u)
      << "bridge edges should defer to a second ARB-LIST iteration";
  // Geometric decay: each ARB iteration shrinks Er by at least 4x
  // (Theorem 2.9 requires exactly that).
  for (const auto& t : result.arb_traces) {
    if (t.er_before > 0) {
      EXPECT_LE(4 * t.er_after, t.er_before)
          << "LIST " << t.list_iteration << " ARB " << t.arb_iteration;
    }
  }
}

// ---- IO round trips into the pipeline -------------------------------------

TEST(Integration, ListerOnSerializedGraph) {
  Rng rng(6);
  const Graph original = clustered_workload(120, rng);
  std::stringstream ss;
  write_edge_list(original, ss);
  const Graph loaded = read_edge_list(ss);
  KpConfig cfg;
  cfg.p = 4;
  const auto a = list_kp(original, cfg);
  const auto b = list_kp(loaded, cfg);
  EXPECT_EQ(a.unique_cliques, b.unique_cliques);
  EXPECT_DOUBLE_EQ(a.total_rounds(), b.total_rounds());
}

// ---- Cross-model agreement -------------------------------------------------

TEST(Integration, CongestAndCliqueModelsAgree) {
  Rng rng(7);
  const Graph g = periphery_workload(140, rng);
  const int p = 4;
  KpConfig congest_cfg;
  congest_cfg.p = p;
  ListingOutput congest_out(g.node_count());
  list_kp_collect(g, congest_cfg, congest_out);

  SparseCcConfig cc_cfg;
  cc_cfg.p = p;
  ListingOutput cc_out(g.node_count());
  sparse_cc_list(g, cc_cfg, cc_out);

  ListingOutput trivial_out(g.node_count());
  trivial_broadcast_list(g, p, trivial_out);

  EXPECT_TRUE(congest_out.cliques() == cc_out.cliques());
  EXPECT_TRUE(cc_out.cliques() == trivial_out.cliques());
}

TEST(Integration, DetectionConsistentWithCounting) {
  Rng rng(8);
  const Graph g = clustered_workload(140, rng);
  for (const int p : {4, 5, 6}) {
    KpConfig cfg;
    cfg.p = p;
    const auto det = detect_kp(g, cfg);
    const auto cnt = count_kp_distributed(g, cfg);
    EXPECT_EQ(det.found, cnt.count > 0) << "p=" << p;
    EXPECT_EQ(cnt.count, count_k_cliques(g, p)) << "p=" << p;
  }
}

// ---- Budget invariants under stress ---------------------------------------

TEST(Integration, ErBudgetAcrossFullRuns) {
  // Theorem 2.8's accounting requires every ARB call to respect the
  // |Êr| ≤ |Er|/4 decay; check it over a whole run on each family.
  for (const int family : {0, 1, 2}) {
    Rng rng(static_cast<std::uint64_t>(family) + 11);
    Graph g;
    switch (family) {
      case 0: g = clustered_workload(150, rng); break;
      case 1: g = periphery_workload(150, rng); break;
      default: g = ring_of_cliques_workload(150, rng, 5, 0.5); break;
    }
    KpConfig cfg;
    cfg.p = 4;
    cfg.stop_scale = 0.1;
    const auto result = list_kp(g, cfg);
    for (const auto& t : result.arb_traces) {
      if (t.er_before > 0 && t.clusters > 0) {
        EXPECT_LE(4 * t.er_after, t.er_before + 4 * t.bad_edges)
            << "family " << family;
      }
    }
  }
}

}  // namespace
}  // namespace dcl

#include "graph/workloads.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/math_util.h"
#include "expander/decomposition.h"
#include "graph/orientation.h"

namespace dcl {
namespace {

TEST(PowerWorkload, EdgeCountTracksExponent) {
  Rng rng(1);
  const Graph g = power_workload(256, 1.0, 1.5, rng);
  EXPECT_EQ(g.node_count(), 256);
  EXPECT_EQ(g.edge_count(), floor_pow(256, 1.5));
}

TEST(PowerWorkload, DensityCapApplies) {
  Rng rng(2);
  const Graph g = power_workload(32, 10.0, 2.0, rng);  // 10·n² ≫ C(n,2)
  EXPECT_EQ(g.edge_count(), static_cast<EdgeId>(32) * 31 / 3);
}

TEST(ClusteredWorkload, HubsAreHighDegree) {
  Rng rng(3);
  const int hubs = 4;
  const Graph g = clustered_workload(256, rng, 0.45, 0.015, hubs);
  // The trailing `hubs` nodes connect to ~30% of the body.
  for (NodeId h = 252; h < 256; ++h) {
    EXPECT_GT(g.degree(h), 50);
  }
  // Body nodes are much lighter than hubs.
  NodeId max_body = 0;
  for (NodeId v = 0; v < 252; ++v) max_body = std::max(max_body, g.degree(v));
  EXPECT_LT(max_body, g.degree(252) * 2);
}

TEST(ClusteredWorkload, BlocksAreDenserThanCross) {
  Rng rng(4);
  const Graph g = clustered_workload(256, rng, 0.45, 0.015, 0);
  const NodeId block = static_cast<NodeId>(floor_pow(256, 0.75));
  std::int64_t within = 0, across = 0;
  for (const Edge& e : g.edges()) {
    ((e.u / block == e.v / block) ? within : across) += 1;
  }
  EXPECT_GT(within, across);
}

TEST(PeripheryWorkload, PairsShareCoreAttachments) {
  Rng rng(5);
  const NodeId n = 256;
  const Graph g = periphery_workload(n, rng);
  const auto core = static_cast<NodeId>(floor_pow(n, 0.8));
  // Every periphery pair has its pair edge and only core attachments
  // otherwise.
  for (NodeId v = core; v + 1 < n; v = static_cast<NodeId>(v + 2)) {
    EXPECT_TRUE(g.has_edge(v, static_cast<NodeId>(v + 1)));
    for (const NodeId w : g.neighbors(v)) {
      EXPECT_TRUE(w < core || w == v + 1)
          << "periphery node " << v << " attached to periphery " << w;
    }
    // Attachment counts stay in the designed 2..8 range.
    EXPECT_GE(g.degree(v), 3);   // pair edge + >= 2 attachments
    EXPECT_LE(g.degree(v), 9);   // pair edge + <= 8 attachments
  }
}

TEST(PeripheryWorkload, PeripheryPairsFormCrossBoundaryK4s) {
  Rng rng(6);
  const NodeId n = 200;
  const Graph g = periphery_workload(n, rng, /*core_density=*/0.8);
  const auto core = static_cast<NodeId>(floor_pow(n, 0.8));
  // With a dense core, some pair (v, v+1) shares two adjacent core nodes —
  // a K4 with two outside nodes.
  bool found = false;
  for (NodeId v = core; v + 1 < n && !found; v = static_cast<NodeId>(v + 2)) {
    const auto nv = g.neighbors(v);
    for (std::size_t i = 0; i < nv.size() && !found; ++i) {
      for (std::size_t j = i + 1; j < nv.size() && !found; ++j) {
        if (nv[i] >= core || nv[j] >= core) continue;
        if (g.has_edge(nv[i], nv[j]) &&
            g.has_edge(nv[i], static_cast<NodeId>(v + 1)) &&
            g.has_edge(nv[j], static_cast<NodeId>(v + 1))) {
          found = true;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(RingOfCliques, BridgesAreTheOnlySparseCuts) {
  Rng rng(7);
  const Graph g = ring_of_cliques_workload(240, rng, 6, 0.5);
  EXPECT_EQ(g.node_count(), 240);
  // Exactly 6 bridges exist between consecutive blocks.
  std::int64_t bridges = 0;
  for (const Edge& e : g.edges()) {
    if (e.u / 40 != e.v / 40) ++bridges;
  }
  EXPECT_EQ(bridges, 6);
}

TEST(RingOfCliques, DecompositionCutsTheBridges) {
  Rng rng(8);
  const Graph g = ring_of_cliques_workload(240, rng, 6, 0.5);
  DecompositionConfig cfg;
  cfg.absolute_degree = 8;
  Rng deco_rng(9);
  const auto d = expander_decompose(g, g.node_count(), cfg, deco_rng);
  // The blocks become clusters; the bridge edges cannot be cluster-internal.
  EXPECT_GE(d.clusters.size(), 4u);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (ed.u / 40 != ed.v / 40) {
      EXPECT_NE(d.part[static_cast<std::size_t>(e)], EdgePart::cluster)
          << "bridge " << ed.u << "-" << ed.v << " inside a cluster";
    }
  }
}

TEST(Workloads, DeterministicUnderSeed) {
  Rng a(10), b(10);
  const Graph ga = periphery_workload(128, a);
  const Graph gb = periphery_workload(128, b);
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (EdgeId e = 0; e < ga.edge_count(); ++e) {
    ASSERT_EQ(ga.edge(e), gb.edge(e));
  }
}

// ---------------------------------------------------------------------------
// Update streams: every generated stream must be *replayable* — deletions
// only ever name live edges, insertions only absent ones — and each family
// must exhibit its defining shape.
// ---------------------------------------------------------------------------

/// Replays a stream against a set model; asserts update validity and
/// returns the per-batch live sizes.
std::vector<std::size_t> replay(const UpdateStream& stream) {
  std::set<Edge> live(stream.initial.begin(), stream.initial.end());
  EXPECT_EQ(live.size(), stream.initial.size()) << "duplicate initial edges";
  std::vector<std::size_t> sizes;
  for (const UpdateBatch& batch : stream.batches) {
    for (const Edge& e : batch.erase) {
      EXPECT_LT(e.u, e.v);
      EXPECT_LT(e.v, stream.n);
      EXPECT_EQ(live.erase(e), 1u) << "deleting a non-live edge";
    }
    for (const Edge& e : batch.insert) {
      EXPECT_LT(e.u, e.v);
      EXPECT_LT(e.v, stream.n);
      EXPECT_TRUE(live.insert(e).second) << "inserting a live edge";
    }
    sizes.push_back(live.size());
  }
  return sizes;
}

TEST(UpdateStreams, SlidingWindowExpiresExactlyTheOldBatch) {
  Rng rng(21);
  const UpdateStream stream = sliding_window_stream(60, 12, 25, 3, rng);
  ASSERT_EQ(stream.batches.size(), 12u);
  EXPECT_TRUE(stream.initial.empty());
  const auto sizes = replay(stream);
  for (std::size_t b = 0; b < stream.batches.size(); ++b) {
    EXPECT_EQ(stream.batches[b].insert.size(), 25u);
    if (b >= 3) {
      // The expiring batch is exactly what entered `window` batches ago.
      EXPECT_EQ(stream.batches[b].erase, stream.batches[b - 3].insert);
      EXPECT_EQ(sizes[b], 3u * 25u);  // steady state
    } else {
      EXPECT_TRUE(stream.batches[b].erase.empty());
    }
  }
}

TEST(UpdateStreams, ChurnHoldsSteadyState) {
  Rng rng(22);
  const UpdateStream stream = churn_stream(50, 200, 10, 15, rng);
  EXPECT_EQ(stream.initial.size(), 200u);
  const auto sizes = replay(stream);
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    EXPECT_EQ(stream.batches[b].erase.size(), 15u);
    EXPECT_EQ(stream.batches[b].insert.size(), 15u);
    EXPECT_EQ(sizes[b], 200u);
  }
}

TEST(UpdateStreams, DensifyingCommunityGrows) {
  Rng rng(23);
  const UpdateStream stream = densifying_community_stream(60, 4, 12, 20, rng);
  const auto sizes = replay(stream);
  // Net growth: insertions dominate the occasional cross-edge trims.
  EXPECT_GT(sizes.back(), stream.initial.size() + 12 * 15);
}

TEST(UpdateStreams, BuildTeardownEndsEmpty) {
  Rng rng(24);
  const UpdateStream stream = build_teardown_stream(40, 150, 9, rng);
  EXPECT_TRUE(stream.initial.empty());
  const auto sizes = replay(stream);
  // Peak at the end of the build half, empty at the very end.
  EXPECT_EQ(sizes[static_cast<std::size_t>(9 / 2) - 1], 150u);
  EXPECT_EQ(sizes.back(), 0u);
}

TEST(UpdateStreams, DeterministicUnderSeed) {
  Rng a(25), b(25);
  const UpdateStream sa = churn_stream(40, 120, 8, 10, a);
  const UpdateStream sb = churn_stream(40, 120, 8, 10, b);
  ASSERT_EQ(sa.batches.size(), sb.batches.size());
  EXPECT_EQ(sa.initial, sb.initial);
  for (std::size_t i = 0; i < sa.batches.size(); ++i) {
    EXPECT_EQ(sa.batches[i].insert, sb.batches[i].insert);
    EXPECT_EQ(sa.batches[i].erase, sb.batches[i].erase);
  }
}

}  // namespace
}  // namespace dcl

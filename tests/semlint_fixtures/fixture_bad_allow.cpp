// bad-allow fixture: malformed allow() annotations must themselves be
// findings — a typo'd rule name or a missing justification suppresses
// nothing and must not rot in the tree. The allow() grammar requires the
// annotation to end its line, so the expect markers below ride *before*
// the allow on the same line. Rule names from dcl_lint's lexical
// vocabulary are legal here (shared grammar), so the wallclock line is
// NOT a finding.
#include <cstdint>

namespace fix {

std::int64_t annotated(std::int64_t x) {
  // dcl-semlint-expect: bad-allow // dcl-lint: allow(sem-narow): typo'd rule
  std::int64_t a = x;

  // dcl-semlint-expect: bad-allow // dcl-lint: allow(sem-narrow)
  std::int64_t b = x;

  // Foreign-but-valid rule name from dcl_lint's vocabulary: silent.
  // dcl-lint: allow(wallclock): fixture demo - not a timing site anyway
  std::int64_t c = x;

  return a + b + c;
}

}  // namespace fix

// sem-hot-alloc fixture: the // dcl-hot annotation contract. Growth calls
// inside an annotated kernel are findings unless the same function
// reserve()s the container first; un-annotated functions are never audited.
#include <cstdlib>
#include <vector>

namespace fix {

// dcl-hot
void hot_kernel(std::vector<int>& out, const std::vector<int>& in) {
  for (int v : in) {
    out.push_back(v);  // dcl-semlint-expect: sem-hot-alloc
  }
  int* raw = new int[4];  // dcl-semlint-expect: sem-hot-alloc
  delete[] raw;
  void* blob = std::malloc(16);  // dcl-semlint-expect: sem-hot-alloc
  std::free(blob);
}

// dcl-hot
void hot_but_reserved(std::vector<int>& out, const std::vector<int>& in) {
  // Negative control: the reserve() exemption — growth after a
  // same-function reserve on the same container is amortization-free.
  out.reserve(in.size());
  for (int v : in) {
    out.push_back(v);
  }
}

// dcl-hot
void hot_with_allow(std::vector<int>& out) {
  // dcl-lint: allow(sem-hot-alloc): fixture demo - warms once then reused
  out.resize(128);
}

// Negative control: not annotated as hot, so never audited.
void cold_setup(std::vector<int>& out) {
  out.push_back(1);
  out.resize(64);
}

}  // namespace fix

// Cross-TU fixture header: the shape tools/dcl_lint.py documents as its
// blind spot. `SpillTracker` declares two member containers here; the
// iteration happens in a *different* file (fixture_cross_tu.cpp), where no
// lexical "unordered" token is visible. Only a type-resolved pass connects
// the dots: the unordered_set member must be flagged at its iteration site,
// and the std::set member — same spelling distance, identical use — must
// stay silent (negative control, mirroring the enumeration module's
// std::set spill set).
#pragma once

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

namespace fix {

struct SpillTracker {
  std::unordered_set<int> hashed_spill;  // iterating this is a finding
  std::set<int> ordered_spill;           // iterating this is fine
  std::vector<int> flat_spill;           // and so is this
};

}  // namespace fix

// sem-narrow / sem-index-32 fixture: 64-bit values flowing into 32-bit
// homes through every conversion site the analyzer instruments (init,
// assignment, call argument, return), plus the loop-wrap shape, plus the
// exemptions that keep the rule usable (literal-bounded expressions,
// explicit casts, the allow() grammar).
#include <cstdint>
#include <vector>

namespace fix {

using EdgeId = std::int64_t;

void sink(int narrow_arg);

int edge_scale(const std::vector<int>& edges, EdgeId total) {
  // Initializer: a 64-bit expression lands in a 32-bit variable.
  int m = total;  // dcl-semlint-expect: sem-narrow

  // Assignment, same hazard.
  unsigned int u = 0;
  u = edges.size();  // dcl-semlint-expect: sem-narrow

  // Call argument against a 32-bit parameter.
  sink(total);  // dcl-semlint-expect: sem-narrow

  // Literal-bounded expressions are the author's range proof: silent.
  int lane = total % 64;
  int lo_byte = static_cast<int>(edges.size() & 0xff);

  // Explicit cast: an authored claim, routed to to_node in real code.
  int claimed = static_cast<int>(total);

  // Justified narrowing via the shared allow() grammar: silent.
  // dcl-lint: allow(sem-narrow): fixture demo - bounded by caller contract
  int vetted = total;

  return m + u + lane + lo_byte + claimed + vetted;
}

// Return-site narrowing: 64-bit size, 32-bit return type.
int count_all(const std::vector<int>& edges) {
  return edges.size();  // dcl-semlint-expect: sem-narrow
}

std::int64_t wrap_risk(const std::vector<int>& edges, EdgeId m) {
  std::int64_t acc = 0;
  // 32-bit induction variable against a 64-bit bound: wraps at 2^31.
  for (int i = 0; i < m; ++i) {  // dcl-semlint-expect: sem-index-32
    acc += i;
  }
  // Negative control: 64-bit induction covers the range.
  for (EdgeId i = 0; i < m; ++i) {
    acc += i;
  }
  // Negative control: 32-bit induction against a literal bound is fine.
  for (int i = 0; i < 1024; ++i) {
    acc += edges.empty() ? 0 : edges[0];
  }
  return acc;
}

}  // namespace fix

// sem-mul-width fixture: the PR 6 out-degree-squared class. A product of
// two 32-bit operands is computed in 32 bits no matter how wide the home it
// lands in; widening must happen on an operand (or via checked_mul64), not
// on the completed product.
#include <cstdint>

namespace fix {

std::uint64_t bucket_table(int q) {
  // Implicit widening of a 32-bit product: overflowed before the
  // conversion.
  std::uint64_t slots = q * q;  // dcl-semlint-expect: sem-mul-width

  // Explicit cast of the completed product: same overflow, louder syntax.
  auto cast_slots =
      static_cast<std::uint64_t>(q * q);  // dcl-semlint-expect: sem-mul-width

  // Negative control: widening an operand makes the product 64-bit.
  std::uint64_t wide = static_cast<std::uint64_t>(q) * q;

  // Negative control: literal operands are author-bounded (wi * 64 etc.).
  std::uint64_t word = q * 64;

  // Justified via the shared allow() grammar: silent.
  // dcl-lint: allow(sem-mul-width): fixture demo - q is capped at 1000 here
  std::uint64_t vetted = q * q;

  return slots + cast_slots + wide + word + vetted;
}

}  // namespace fix

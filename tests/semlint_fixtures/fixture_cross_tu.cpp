// sem-unordered-iter across a TU boundary: every container below was
// *declared* in spill_set.h — this file never mentions "unordered"
// lexically, which is exactly why dcl_lint cannot see it and dcl_semlint
// must.
#include <cstdint>

#include "spill_set.h"

namespace fix {

std::int64_t sum_hashed(const SpillTracker& t) {
  std::int64_t acc = 0;
  for (int v : t.hashed_spill) {  // dcl-semlint-expect: sem-unordered-iter
    acc += v;
  }
  return acc;
}

std::int64_t sum_ordered(const SpillTracker& t) {
  // Negative control: std::set iterates in key order — deterministic, and
  // the analyzer must keep quiet even though the member lives in a header.
  std::int64_t acc = 0;
  for (int v : t.ordered_spill) {
    acc += v;
  }
  return acc;
}

std::int64_t sum_flat(const SpillTracker& t) {
  std::int64_t acc = 0;
  for (int v : t.flat_spill) {
    acc += v;
  }
  return acc;
}

// .begin() on an unordered member — the manual-iterator spelling of the
// same hazard; lookup-style calls (find/count/contains) never flag.
int first_hashed(const SpillTracker& t) {
  auto it = t.hashed_spill.begin();  // dcl-semlint-expect: sem-unordered-iter
  return it == t.hashed_spill.end() ? -1 : *it;
}

bool has_zero(const SpillTracker& t) {
  // Negative control: membership probe, no iteration-order dependence.
  return t.hashed_spill.find(0) != t.hashed_spill.end();
}

}  // namespace fix

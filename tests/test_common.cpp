#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "common/table.h"

namespace dcl {
namespace {

TEST(Table, AlignsColumnsAndRules) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1);
  t.row().add("much-longer-name").add(12345);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header and both rows present.
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // All lines share the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, DoublePrecisionControl) {
  Table t({"x"});
  t.row().add(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.row().add("only-one");
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Logging, ThresholdFilters) {
  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::error);
  // Below-threshold messages must not reach stderr; we can't easily capture
  // std::cerr portably, but the API contract (get/set) is checkable.
  EXPECT_EQ(log_threshold(), LogLevel::error);
  set_log_threshold(LogLevel::debug);
  EXPECT_EQ(log_threshold(), LogLevel::debug);
  set_log_threshold(original);
}

TEST(Logging, LevelsOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::debug), static_cast<int>(LogLevel::info));
  EXPECT_LT(static_cast<int>(LogLevel::info), static_cast<int>(LogLevel::warn));
  EXPECT_LT(static_cast<int>(LogLevel::warn), static_cast<int>(LogLevel::error));
  EXPECT_LT(static_cast<int>(LogLevel::error), static_cast<int>(LogLevel::off));
}

}  // namespace
}  // namespace dcl

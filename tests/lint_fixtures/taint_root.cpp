// Fixture: this TU charges the ledger and includes taint_leaf.h, so the
// leaf's code is compiled into a ledger-bearing TU — the taint pass must
// propagate along the include edge and flag the leaf's hash-order walk
// even though the leaf never names RoundLedger itself.
// Never compiled (see README.md).
#include "taint_leaf.h"

class RoundLedger;

void taint_root_fixture(RoundLedger& ledger) {
  (void)ledger;
  (void)leaf_sum();
}

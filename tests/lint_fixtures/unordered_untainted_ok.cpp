// Fixture: the same iteration patterns as unordered_iteration.cpp but in a
// TU that never reaches RoundLedger/ListingOutput — out of scope for the
// unordered-iteration rule, so nothing here may be flagged. (Hash order is
// still nondeterministic, but it cannot leak into fingerprints from here.)
// Never compiled (see README.md).
#include <unordered_map>

int unordered_untainted_fixture() {
  std::unordered_map<int, int> cache;
  int sum = 0;
  for (const auto& kv : cache) {
    sum += kv.second;
  }
  return sum;
}

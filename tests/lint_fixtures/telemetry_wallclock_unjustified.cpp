// Fixture: this file IS on the wallclock-overlay allowlist
// (WALLCLOCK_OVERLAY_TUS in tools/dcl_lint.py) but carries no
// `dcl-lint: wallclock-overlay:` justification marker, so every clock
// read below must still be flagged — being allowlisted without a written
// justification buys nothing. Never compiled (see README.md).
#include <chrono>

namespace dcl {

unsigned long long unjustified_overlay_stamp() {
  auto now = std::chrono::steady_clock::now();  // dcl-lint-expect: wallclock
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

long long unjustified_overlay_seconds() {
  return std::chrono::system_clock::now()  // dcl-lint-expect: wallclock
      .time_since_epoch()
      .count();
}

}  // namespace dcl

// Fixture: every banned wall-clock / unseeded-randomness token, plus the
// allowlist escape hatch. Never compiled (see README.md).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int wallclock_fixture() {
  int a = rand();                                // dcl-lint-expect: wallclock
  srand(42u);                                    // dcl-lint-expect: wallclock
  std::random_device rd;                         // dcl-lint-expect: wallclock
  long t = time(nullptr);                        // dcl-lint-expect: wallclock
  auto n = std::chrono::system_clock::now();     // dcl-lint-expect: wallclock
  auto s = std::chrono::steady_clock::now();     // dcl-lint-expect: wallclock
  struct timespec ts;
  clock_gettime(0, &ts);                         // dcl-lint-expect: wallclock

  // A comment saying rand() or time() must not trip the lexer, and neither
  // may the string literal below.
  const char* prose = "call rand() at time(0) o'clock";

  // dcl-lint: allow(wallclock): fixture for the allowlist path — a justified
  int b = rand();  // exception is accepted and reported nowhere

  // Identifiers merely *containing* banned names are fine:
  int grand_total = 0;
  int time_steps = 0;
  (void)a; (void)rd; (void)t; (void)n; (void)s; (void)prose; (void)b;
  return grand_total + time_steps;
}

// Fixture: malformed allowlist annotations are themselves findings
// (rule bad-allow) and can never be allowlisted away — an allow() without a
// justification is an unreviewable suppression. Never compiled (README.md).
//
// The expect markers ride in a leading block comment because the allow()
// annotation must end its line (the grammar anchors the justification at
// end-of-comment).

/* dcl-lint-expect: bad-allow */ // dcl-lint: allow(wallclock)
int unjustified = 0;

/* dcl-lint-expect: bad-allow */ // dcl-lint: allow(wallclock):
int empty_justification = 0;

/* dcl-lint-expect: bad-allow */ // dcl-lint: allow(not-a-rule): words here
int unknown_rule = 0;

// A well-formed allow with nothing to suppress is harmless:
// dcl-lint: allow(raw-thread): unused annotations are not errors
int unused_allow = 0;

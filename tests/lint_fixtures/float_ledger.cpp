// Fixture: float accumulators feeding RoundLedger charges. The approved
// pattern is exact integer accumulation with one cast at the charge site
// (shard merges of integers are order-independent; float addition is not).
// Never compiled (see README.md).
#include <cstdint>
#include <vector>

struct RoundLedger {
  void charge_exchange(const char*, double, std::uint64_t);
  void charge_analytic(const char*, double);
};

void float_ledger_fixture(RoundLedger& ledger, const std::vector<int>& xs) {
  double acc = 0.0;
  for (const int x : xs) {
    acc += x;  // order-dependent accumulation...
  }
  ledger.charge_exchange("phase", acc, 1);   // dcl-lint-expect: float-ledger

  // The approved pattern: exact integer sum, one cast at the charge site.
  std::int64_t total = 0;
  for (const int x : xs) {
    total += x;
  }
  ledger.charge_exchange("phase", static_cast<double>(total), 1);

  // A float that is never accumulated may be charged (it is a pure
  // function of its inputs, not an interleaving-dependent sum):
  const double analytic_cost = 3.5 * static_cast<double>(xs.size());
  ledger.charge_analytic("theorem", analytic_cost);

  double tuning = 1.0;
  tuning *= 0.5;  // accumulated, but justified below:
  // dcl-lint: allow(float-ledger): fixture — justified exception, value is
  ledger.charge_analytic("tuned", tuning);  // a single-thread-only diagnostic
}

// Fixture: the reserve-hint warning — unconditional push_back in an
// n/m-bounded loop with no reserve() for that container anywhere in the
// file. Warning-severity: reported, never fatal. Never compiled (README.md).
#include <vector>

void reserve_hint_fixture(int n, const std::vector<int>& src) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(i);                        // dcl-lint-expect: reserve-hint
  }

  // Reserved container: silent.
  std::vector<int> ok;
  ok.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ok.push_back(i);
  }

  // Conditional push: the final size is data-dependent, reserve(bound)
  // would be a guess — not flagged.
  std::vector<int> cond;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) cond.push_back(i);
  }

  // Loop not bounded by an n/m-shaped quantity: silent.
  std::vector<int> fixed;
  for (int i = 0; i < 8; ++i) {
    fixed.push_back(i);
  }

  // size()-bounded loops count as n/m-shaped:
  std::vector<int> copy;
  for (std::size_t i = 0; i < src.size(); ++i) {
    copy.push_back(src[i]);                  // dcl-lint-expect: reserve-hint
  }
}

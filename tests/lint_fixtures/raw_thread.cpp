// Fixture: raw threading primitives outside src/common/parallel_for.cpp.
// All parallelism must go through the audited pool (parallel_for_shards),
// whose merge contract DCL_SHARD_AUDIT can replay; a raw std::thread has no
// such contract. Never compiled (see README.md).
#include <future>
#include <thread>

void raw_thread_fixture() {
  std::thread worker([] {});                   // dcl-lint-expect: raw-thread
  worker.join();
  auto fut = std::async([] { return 1; });     // dcl-lint-expect: raw-thread
  (void)fut.get();
  std::jthread auto_joiner([] {});             // dcl-lint-expect: raw-thread

  // hardware_concurrency is a query, not a spawn — mentioning the type in
  // a nested-name query is still flagged (any std::thread use is suspect):
  // dcl-lint: allow(raw-thread): fixture — justified read-only query of
  auto hc = std::thread::hardware_concurrency();  // the core count
  (void)hc;
}

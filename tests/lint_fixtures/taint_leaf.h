// Fixture: included by taint_root.cpp (which names RoundLedger) — tainted
// transitively, so the iteration below must be flagged despite this header
// never mentioning the ledger. Never compiled (see README.md).
#pragma once
#include <unordered_set>

inline int leaf_sum() {
  std::unordered_set<int> bag;
  int sum = 0;
  for (const int v : bag) {                  // dcl-lint-expect: unordered-iteration
    sum += v;
  }
  return sum;
}

// Fixture: iteration over unordered containers in a TU that names
// RoundLedger — in scope for the taint pass, so every hash-order walk must
// be flagged. Never compiled (see README.md).
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

class RoundLedger;  // taints this TU: its iteration orders can reach charges

int unordered_iteration_fixture(RoundLedger& ledger) {
  std::unordered_map<int, int> table;
  std::unordered_set<long> members;
  std::map<int, int> sorted_table;  // ordered: iteration is deterministic

  int sum = 0;
  for (const auto& kv : table) {             // dcl-lint-expect: unordered-iteration
    sum += kv.second;
  }
  auto it = members.begin();                 // dcl-lint-expect: unordered-iteration
  (void)it;

  // Ordered containers iterate deterministically — never flagged:
  for (const auto& kv : sorted_table) {
    sum += kv.second;
  }

  // Point lookups on unordered containers are fine (no order observed):
  sum += static_cast<int>(table.count(3));
  sum += static_cast<int>(members.size());

  // dcl-lint: allow(unordered-iteration): fixture — justified as a
  for (const auto& kv : table) {  // debug-only dump that never reaches output
    sum -= kv.first;
  }
  (void)ledger;
  return sum;
}

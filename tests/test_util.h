// Shared assertion helpers for the test suites.
//
// The round ledger is the audited cost record every simulated algorithm
// returns; these helpers enforce its structural invariants wherever a
// ledger crosses a test's hands:
//  * every entry charges a non-negative round count, so the cumulative
//    round total is monotone non-decreasing across entries (appending a
//    phase can never make the algorithm cheaper);
//  * the running total matches total_rounds();
//  * the per-kind breakdown sums back to the total.
#pragma once

#include <gtest/gtest.h>

#include "congest/round_ledger.h"
#include "core/listing_types.h"

namespace dcl {

inline void expect_ledger_valid(const RoundLedger& ledger) {
  double cumulative = 0.0;
  for (const auto& entry : ledger.entries()) {
    // Non-negative charges are exactly what makes the running total
    // monotone non-decreasing entry by entry.
    EXPECT_GE(entry.rounds, 0.0)
        << "negative round charge in entry '" << entry.label << "'";
    cumulative += entry.rounds;
    EXPECT_FALSE(entry.label.empty()) << "unlabeled ledger entry";
  }
  EXPECT_NEAR(ledger.total_rounds(), cumulative, 1e-9);
  const double by_kind = ledger.rounds_of_kind(CostKind::exchange) +
                         ledger.rounds_of_kind(CostKind::routing) +
                         ledger.rounds_of_kind(CostKind::analytic);
  EXPECT_NEAR(by_kind, ledger.total_rounds(), 1e-9)
      << "per-kind breakdown does not sum to the total";
}

/// Structural invariants of a lister result: a valid ledger, coherent
/// report counts, and monotone per-iteration round traces.
inline void expect_result_valid(const KpListResult& result) {
  expect_ledger_valid(result.ledger);
  EXPECT_GE(result.total_reports, result.unique_cliques);
  if (result.unique_cliques > 0) {
    EXPECT_GE(result.duplication_factor, 1.0);
  }
  for (const auto& trace : result.list_traces) {
    EXPECT_GE(trace.rounds, 0.0);
    EXPECT_LE(trace.arboricity_bound_after, trace.arboricity_bound_before);
    EXPECT_LE(trace.edges_after, trace.edges_before);
  }
  for (const auto& trace : result.arb_traces) {
    EXPECT_GE(trace.rounds, 0.0);
    EXPECT_LE(trace.er_after, trace.er_before);
    EXPECT_GE(trace.er_before, 0);
  }
}

}  // namespace dcl

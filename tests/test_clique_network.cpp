#include "congest/clique_network.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace dcl {
namespace {

TEST(CliqueNetwork, DirectModeCountsPerPair) {
  CliqueNetwork net(4, CliqueRoutingMode::direct);
  net.begin_phase("t");
  for (int i = 0; i < 3; ++i) net.send(0, 1, Message{.tag = i});
  net.send(2, 3, Message{});
  EXPECT_EQ(net.end_phase(), 3);
  EXPECT_EQ(net.inbox(1).size(), 3u);
  EXPECT_EQ(net.inbox(3).size(), 1u);
  expect_ledger_valid(net.ledger());
}

TEST(CliqueNetwork, DirectModeOppositeDirectionsIndependent) {
  CliqueNetwork net(2, CliqueRoutingMode::direct);
  net.begin_phase("t");
  net.send(0, 1, Message{});
  net.send(1, 0, Message{});
  EXPECT_EQ(net.end_phase(), 1);
}

TEST(CliqueNetwork, LenzenModeUsesAggregateLoads) {
  const NodeId n = 11;
  CliqueNetwork net(n, CliqueRoutingMode::lenzen);
  net.begin_phase("t");
  // Node 0 sends 30 messages spread over all 10 peers: max load 30,
  // bandwidth n-1 = 10 -> ceil(30/10) + 2 = 5 rounds.
  for (int i = 0; i < 30; ++i) {
    net.send(0, static_cast<NodeId>(1 + (i % 10)), Message{.tag = i});
  }
  EXPECT_EQ(net.end_phase(), 5);
}

TEST(CliqueNetwork, LenzenModeReceiveBound) {
  const NodeId n = 11;
  CliqueNetwork net(n, CliqueRoutingMode::lenzen);
  net.begin_phase("t");
  // All 10 peers send 4 messages each to node 0: receive load 40 ->
  // ceil(40/10) + 2 = 6 rounds.
  for (NodeId v = 1; v < n; ++v) {
    for (int i = 0; i < 4; ++i) net.send(v, 0, Message{.tag = i});
  }
  EXPECT_EQ(net.end_phase(), 6);
  EXPECT_EQ(net.inbox(0).size(), 40u);
}

TEST(CliqueNetwork, EmptyPhaseCostsNothing) {
  CliqueNetwork net(5);
  net.begin_phase("idle");
  EXPECT_EQ(net.end_phase(), 0);
}

TEST(CliqueNetwork, RejectsBadEndpoints) {
  CliqueNetwork net(3);
  net.begin_phase("t");
  EXPECT_THROW(net.send(0, 0, Message{}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 5, Message{}), std::invalid_argument);
  EXPECT_THROW(net.send(-1, 1, Message{}), std::invalid_argument);
  net.end_phase();
}

TEST(CliqueNetwork, PhaseProtocolEnforced) {
  CliqueNetwork net(3);
  EXPECT_THROW(net.send(0, 1, Message{}), std::logic_error);
  EXPECT_THROW(net.end_phase(), std::logic_error);
  net.begin_phase("a");
  EXPECT_THROW(net.begin_phase("b"), std::logic_error);
  net.end_phase();
}

TEST(CliqueNetwork, RequiresTwoNodes) {
  EXPECT_THROW(CliqueNetwork net(1), std::invalid_argument);
}

TEST(CliqueNetwork, InboxSortedBySender) {
  CliqueNetwork net(5);
  net.begin_phase("t");
  net.send(4, 0, Message{.tag = 4});
  net.send(2, 0, Message{.tag = 2});
  net.send(3, 0, Message{.tag = 3});
  net.end_phase();
  const auto& inbox = net.inbox(0);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].from, 2);
  EXPECT_EQ(inbox[1].from, 3);
  EXPECT_EQ(inbox[2].from, 4);
}

}  // namespace
}  // namespace dcl

#include "congest/clique_network.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "congest/congest_network.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

TEST(CliqueNetwork, DirectModeCountsPerPair) {
  CliqueNetwork net(4, CliqueRoutingMode::direct);
  net.begin_phase("t");
  for (int i = 0; i < 3; ++i) net.send(0, 1, Message{.tag = i});
  net.send(2, 3, Message{});
  EXPECT_EQ(net.end_phase(), 3);
  EXPECT_EQ(net.inbox(1).size(), 3u);
  EXPECT_EQ(net.inbox(3).size(), 1u);
  expect_ledger_valid(net.ledger());
}

TEST(CliqueNetwork, DirectModeOppositeDirectionsIndependent) {
  CliqueNetwork net(2, CliqueRoutingMode::direct);
  net.begin_phase("t");
  net.send(0, 1, Message{});
  net.send(1, 0, Message{});
  EXPECT_EQ(net.end_phase(), 1);
}

TEST(CliqueNetwork, LenzenModeUsesAggregateLoads) {
  const NodeId n = 11;
  CliqueNetwork net(n, CliqueRoutingMode::lenzen);
  net.begin_phase("t");
  // Node 0 sends 30 messages spread over all 10 peers: max load 30,
  // bandwidth n-1 = 10 -> ceil(30/10) + 2 = 5 rounds.
  for (int i = 0; i < 30; ++i) {
    net.send(0, static_cast<NodeId>(1 + (i % 10)), Message{.tag = i});
  }
  EXPECT_EQ(net.end_phase(), 5);
}

TEST(CliqueNetwork, LenzenModeReceiveBound) {
  const NodeId n = 11;
  CliqueNetwork net(n, CliqueRoutingMode::lenzen);
  net.begin_phase("t");
  // All 10 peers send 4 messages each to node 0: receive load 40 ->
  // ceil(40/10) + 2 = 6 rounds.
  for (NodeId v = 1; v < n; ++v) {
    for (int i = 0; i < 4; ++i) net.send(v, 0, Message{.tag = i});
  }
  EXPECT_EQ(net.end_phase(), 6);
  EXPECT_EQ(net.inbox(0).size(), 40u);
}

TEST(CliqueNetwork, EmptyPhaseCostsNothing) {
  CliqueNetwork net(5);
  net.begin_phase("idle");
  EXPECT_EQ(net.end_phase(), 0);
}

TEST(CliqueNetwork, RejectsBadEndpoints) {
  CliqueNetwork net(3);
  net.begin_phase("t");
  EXPECT_THROW(net.send(0, 0, Message{}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 5, Message{}), std::invalid_argument);
  EXPECT_THROW(net.send(-1, 1, Message{}), std::invalid_argument);
  net.end_phase();
}

TEST(CliqueNetwork, PhaseProtocolEnforced) {
  CliqueNetwork net(3);
  EXPECT_THROW(net.send(0, 1, Message{}), std::logic_error);
  EXPECT_THROW(net.end_phase(), std::logic_error);
  net.begin_phase("a");
  EXPECT_THROW(net.begin_phase("b"), std::logic_error);
  net.end_phase();
}

TEST(CliqueNetwork, RequiresTwoNodes) {
  EXPECT_THROW(CliqueNetwork net(1), std::invalid_argument);
}

TEST(CliqueNetwork, PhaseCountMatchesCongestNetworkParity) {
  // CliqueNetwork must expose the same phase_count() bookkeeping as
  // CongestNetwork: starts at 0, increments per completed phase, and
  // counts empty phases too.
  CliqueNetwork net(4);
  EXPECT_EQ(net.phase_count(), 0u);
  net.begin_phase("a");
  net.send(0, 1, Message{});
  EXPECT_EQ(net.phase_count(), 0u);  // counted at end_phase, not begin
  net.end_phase();
  EXPECT_EQ(net.phase_count(), 1u);
  net.begin_phase("idle");
  net.end_phase();
  EXPECT_EQ(net.phase_count(), 2u);

  // Identical phase protocol on a CONGEST network yields the same count.
  const Graph g = path_graph(2);
  CongestNetwork reference(g);
  reference.begin_phase("a");
  reference.send(0, 1, Message{});
  reference.end_phase();
  reference.begin_phase("idle");
  reference.end_phase();
  EXPECT_EQ(net.phase_count(), reference.phase_count());
}

// ---- Lenzen-accounting boundaries ----------------------------------------

TEST(CliqueNetwork, LenzenExactBandwidthMultiple) {
  // max load exactly 2·(n-1): ceil(20/10) = 2 full-bandwidth rounds + 2
  // protocol rounds — the ceil must not round 2.0 up to 3.
  const NodeId n = 11;
  CliqueNetwork net(n, CliqueRoutingMode::lenzen);
  net.begin_phase("t");
  for (int i = 0; i < 20; ++i) {
    net.send(0, static_cast<NodeId>(1 + (i % 10)), Message{.tag = i});
  }
  EXPECT_EQ(net.end_phase(), 4);
}

TEST(CliqueNetwork, LenzenSingleMessagePhase) {
  // One message: ceil(1/(n-1)) = 1 round + 2 protocol rounds. The +O(1)
  // overhead is charged whenever anything is sent at all...
  const NodeId n = 11;
  CliqueNetwork net(n, CliqueRoutingMode::lenzen);
  net.begin_phase("t");
  net.send(3, 7, Message{.tag = 1});
  EXPECT_EQ(net.end_phase(), 3);
  // ...but never for an empty phase (tested above: EmptyPhaseCostsNothing).
}

TEST(CliqueNetwork, DirectVsLenzenOnTheSameQueue) {
  // The same message queue through both accounting modes: direct charges
  // the max ordered-pair multiplicity, lenzen the bandwidth formula, and
  // the delivered inboxes are identical.
  const NodeId n = 6;
  CliqueNetwork direct(n, CliqueRoutingMode::direct);
  CliqueNetwork lenzen(n, CliqueRoutingMode::lenzen);
  auto drive = [](CliqueNetwork& net) {
    net.begin_phase("t");
    for (int i = 0; i < 7; ++i) net.send(0, 1, Message{.tag = i});
    for (int i = 0; i < 3; ++i) net.send(2, 1, Message{.tag = i});
    net.send(4, 5, Message{.tag = 9});
    return net.end_phase();
  };
  // Direct: heaviest ordered pair is 0→1 with 7 messages.
  EXPECT_EQ(drive(direct), 7);
  // Lenzen: max(S,R) = 10 (node 1 receives 7+3), ceil(10/5) + 2 = 4.
  EXPECT_EQ(drive(lenzen), 4);
  for (NodeId v = 0; v < n; ++v) {
    const auto a = direct.inbox(v);
    const auto b = lenzen.inbox(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].from, b[i].from);
      EXPECT_EQ(a[i].msg, b[i].msg);
    }
  }
  expect_ledger_valid(direct.ledger());
  expect_ledger_valid(lenzen.ledger());
}

TEST(CliqueNetwork, InboxSortedBySender) {
  CliqueNetwork net(5);
  net.begin_phase("t");
  net.send(4, 0, Message{.tag = 4});
  net.send(2, 0, Message{.tag = 2});
  net.send(3, 0, Message{.tag = 3});
  net.end_phase();
  const auto& inbox = net.inbox(0);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].from, 2);
  EXPECT_EQ(inbox[1].from, 3);
  EXPECT_EQ(inbox[2].from, 4);
}

/// Regression for the per-phase O(n) sent/received zero-fill: begin_phase
/// now bumps a generation stamp instead, and end_phase folds loads over
/// the touched endpoints only — so a long sequence of sparse phases must
/// charge exactly what the same phases cost on a fresh network each time
/// (no load may leak across phases, in either accounting mode).
TEST(CliqueNetwork, SparsePhaseSequenceChargesLikeFreshNetworks) {
  const NodeId n = 64;
  for (const CliqueRoutingMode mode :
       {CliqueRoutingMode::lenzen, CliqueRoutingMode::direct}) {
    Rng gen(mode == CliqueRoutingMode::lenzen ? 17u : 18u);
    CliqueNetwork net(n, mode);
    double expected_rounds = 0.0;
    std::uint64_t expected_msgs = 0;
    for (int phase = 0; phase < 60; ++phase) {
      CliqueNetwork fresh(n, mode);
      net.begin_phase("sparse");
      fresh.begin_phase("sparse");
      if (phase % 10 == 9) {
        // Occasional dense burst so sparse phases run right after a phase
        // that stamped every endpoint.
        for (NodeId v = 0; v < n; ++v) {
          const auto to = static_cast<NodeId>((v + 1) % n);
          for (int i = 0; i <= phase % 5; ++i) {
            net.send(v, to, Message{.tag = phase});
            fresh.send(v, to, Message{.tag = phase});
            ++expected_msgs;
          }
        }
      } else {
        const int sends = 1 + phase % 4;
        for (int i = 0; i < sends; ++i) {
          const auto from = static_cast<NodeId>(
              gen.next_below(static_cast<std::uint64_t>(n)));
          auto to = static_cast<NodeId>(
              gen.next_below(static_cast<std::uint64_t>(n)));
          if (to == from) to = static_cast<NodeId>((to + 1) % n);
          net.send(from, to, Message{.tag = i});
          fresh.send(from, to, Message{.tag = i});
          ++expected_msgs;
        }
      }
      const auto fresh_rounds = fresh.end_phase();
      EXPECT_EQ(net.end_phase(), fresh_rounds)
          << "phase " << phase << " mode "
          << (mode == CliqueRoutingMode::lenzen ? "lenzen" : "direct");
      expected_rounds += static_cast<double>(fresh_rounds);
    }
    EXPECT_DOUBLE_EQ(net.ledger().total_rounds(), expected_rounds);
    EXPECT_EQ(net.ledger().total_messages(), expected_msgs);
    EXPECT_EQ(net.phase_count(), 60u);
  }
}

}  // namespace
}  // namespace dcl

// End-to-end Kp-lister parameter sweeps — the long-running part of the
// matrix (n=140, p=7 dominates the tier-1 wall clock), split out of
// test_kp_lister.cpp and labeled `slow` in CMake so `ctest -LE slow` gives
// a fast inner loop. CI still runs the full matrix.
#include <gtest/gtest.h>

#include <tuple>

#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

/// The paper's correctness contract: the union of node outputs equals the
/// exact Kp set — no misses, no false positives.
void expect_exact(const Graph& g, const KpConfig& cfg) {
  const CliqueSet truth{list_k_cliques(g, cfg.p)};
  ListingOutput out(g.node_count());
  const auto result = list_kp_collect(g, cfg, out);
  expect_result_valid(result);
  const auto missing = truth.difference(out.cliques());
  const auto extra = out.cliques().difference(truth);
  EXPECT_TRUE(missing.empty())
      << missing.size() << " cliques missed (of " << truth.size() << ")";
  EXPECT_TRUE(extra.empty()) << extra.size() << " false positives";
  EXPECT_EQ(result.unique_cliques, truth.size());
  EXPECT_GE(result.total_reports, result.unique_cliques);
}

class KpListerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(KpListerSweep, ExactListing) {
  const auto [n, p, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000 + 7);
  const Graph g = erdos_renyi_gnp(static_cast<NodeId>(n), density, rng);
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = static_cast<std::uint64_t>(seed);
  expect_exact(g, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KpListerSweep,
    ::testing::Combine(::testing::Values(48, 96, 140),
                       ::testing::Values(3, 4, 5, 6, 7),
                       ::testing::Values(0.08, 0.2, 0.4),
                       ::testing::Values(1, 2)));

class K4FastSweep : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(K4FastSweep, ExactListing) {
  const auto [n, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 3);
  const Graph g = erdos_renyi_gnp(static_cast<NodeId>(n), density, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.k4_fast = true;
  cfg.seed = static_cast<std::uint64_t>(seed);
  expect_exact(g, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, K4FastSweep,
    ::testing::Combine(::testing::Values(60, 120, 160),
                       ::testing::Values(0.1, 0.25, 0.45),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace dcl

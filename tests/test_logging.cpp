// Regression tests for the locked log sink (src/common/logging.cpp):
// shard bodies logging under DCL_THREADS > 1 must emit whole lines (the
// per-line buffer is written to stderr under one lock, so lines cannot
// interleave mid-write), and info+ lines are routed into the active
// telemetry collector as instant events.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/telemetry.h"

namespace dcl {
namespace {

/// Redirects std::cerr into a buffer for the scope, restoring on exit.
class CerrCapture {
 public:
  CerrCapture() : previous_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(previous_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* previous_;
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Logging, ShardBodiesEmitWholeLinesUnderAuditedInterleavings) {
  const LogLevel previous_threshold = log_threshold();
  set_log_threshold(LogLevel::info);
  const int previous_threads = shard_threads();
  set_shard_threads(4);

  constexpr std::int64_t kItems = 64;
  for (const ShardAudit audit :
       {ShardAudit::off, ShardAudit::random, ShardAudit::reverse}) {
    set_shard_audit(audit);
    CerrCapture capture;
    parallel_for_shards(kItems, [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        log_info() << "logline item=" << i << " payload=0123456789";
      }
    }, /*min_grain=*/1);
    const auto lines = split_lines(capture.text());
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(kItems))
        << "audit mode " << static_cast<int>(audit);
    // Every line is intact: prefix, item id, full payload — a torn write
    // would split or interleave these.
    std::vector<bool> seen(static_cast<std::size_t>(kItems), false);
    for (const std::string& line : lines) {
      ASSERT_EQ(line.rfind("[info ] logline item=", 0), 0u) << line;
      ASSERT_NE(line.find(" payload=0123456789"), std::string::npos) << line;
      const int item = std::stoi(line.substr(21));
      ASSERT_GE(item, 0);
      ASSERT_LT(item, kItems);
      EXPECT_FALSE(seen[static_cast<std::size_t>(item)]) << "dup " << item;
      seen[static_cast<std::size_t>(item)] = true;
    }
  }

  set_shard_audit(ShardAudit::off);
  set_shard_threads(previous_threads);
  set_log_threshold(previous_threshold);
}

TEST(Logging, InfoLinesRouteToActiveCollectorAsInstants) {
  const LogLevel previous_threshold = log_threshold();
  set_log_threshold(LogLevel::debug);
  TraceCollector collector;
  {
    TelemetryScope scope(collector);
    CerrCapture capture;
    log_debug() << "below the routing threshold";
    log_info() << "routed line";
    log_warn() << "warned line";
    // Everything still reached stderr.
    EXPECT_EQ(split_lines(capture.text()).size(), 3u);
  }
  const auto& instants = collector.instants();
  ASSERT_EQ(instants.size(), 2u);  // info and warn route; debug does not
  EXPECT_EQ(instants[0].name, "[info ] routed line");
  EXPECT_EQ(instants[0].category, "log");
  EXPECT_EQ(instants[1].name, "[warn ] warned line");
  set_log_threshold(previous_threshold);
}

TEST(Logging, NoCollectorMeansPlainStderrOnly) {
  const LogLevel previous_threshold = log_threshold();
  set_log_threshold(LogLevel::info);
  CerrCapture capture;
  log_info() << "plain";
  EXPECT_NE(capture.text().find("[info ] plain"), std::string::npos);
  set_log_threshold(previous_threshold);
}

}  // namespace
}  // namespace dcl

#include "congest/congest_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "congest/delivery_arena.h"
#include "congest/engine.h"
#include "graph/generators.h"

namespace dcl {
namespace {

TEST(CongestNetwork, SingleMessageCostsOneRound) {
  const Graph g = path_graph(3);
  CongestNetwork net(g);
  net.begin_phase("t");
  net.send(0, 1, Message{.tag = 7});
  EXPECT_EQ(net.end_phase(), 1);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 0);
  EXPECT_EQ(net.inbox(1)[0].msg.tag, 7);
  EXPECT_TRUE(net.inbox(0).empty());
}

TEST(CongestNetwork, CongestionIsPerDirectedEdge) {
  const Graph g = path_graph(2);
  CongestNetwork net(g);
  net.begin_phase("t");
  for (int i = 0; i < 5; ++i) net.send(0, 1, Message{.tag = i});
  // Opposite direction does not add congestion.
  for (int i = 0; i < 2; ++i) net.send(1, 0, Message{.tag = i});
  EXPECT_EQ(net.end_phase(), 5);
  EXPECT_EQ(net.inbox(1).size(), 5u);
  EXPECT_EQ(net.inbox(0).size(), 2u);
}

TEST(CongestNetwork, ParallelEdgesDoNotInterfere) {
  // A star: center sends one message per leaf — still one round.
  const Graph g = star_graph(6);
  CongestNetwork net(g);
  net.begin_phase("t");
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    net.send(0, leaf, Message{.tag = leaf});
  }
  EXPECT_EQ(net.end_phase(), 1);
}

TEST(CongestNetwork, RejectsNonEdgeSend) {
  const Graph g = path_graph(3);
  CongestNetwork net(g);
  net.begin_phase("t");
  EXPECT_THROW(net.send(0, 2, Message{}), std::invalid_argument);
  net.end_phase();
}

TEST(CongestNetwork, PhaseProtocolEnforced) {
  const Graph g = path_graph(2);
  CongestNetwork net(g);
  EXPECT_THROW(net.send(0, 1, Message{}), std::logic_error);
  EXPECT_THROW(net.end_phase(), std::logic_error);
  net.begin_phase("a");
  EXPECT_THROW(net.begin_phase("b"), std::logic_error);
  net.end_phase();
}

TEST(CongestNetwork, EmptyPhaseIsFree) {
  const Graph g = path_graph(2);
  CongestNetwork net(g);
  net.begin_phase("idle");
  EXPECT_EQ(net.end_phase(), 0);
  EXPECT_DOUBLE_EQ(net.ledger().total_rounds(), 0.0);
}

TEST(CongestNetwork, InboxOrderDeterministic) {
  const Graph g = star_graph(5);
  CongestNetwork net(g);
  net.begin_phase("t");
  // Leaves enqueue toward the hub in scrambled order.
  net.send(4, 0, Message{.tag = 4});
  net.send(1, 0, Message{.tag = 1});
  net.send(3, 0, Message{.tag = 3});
  net.send(2, 0, Message{.tag = 2});
  net.end_phase();
  const auto& inbox = net.inbox(0);
  ASSERT_EQ(inbox.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(inbox[i].from, static_cast<NodeId>(i + 1));
  }
}

TEST(CongestNetwork, LedgerAccumulatesPhases) {
  const Graph g = path_graph(2);
  CongestNetwork net(g);
  net.begin_phase("a");
  net.send(0, 1, Message{});
  net.send(0, 1, Message{});
  net.end_phase();
  net.begin_phase("b");
  net.send(1, 0, Message{});
  net.end_phase();
  EXPECT_DOUBLE_EQ(net.ledger().total_rounds(), 3.0);
  EXPECT_EQ(net.ledger().total_messages(), 3u);
  EXPECT_EQ(net.phase_count(), 2u);
}

// ---- Round-driven engine -------------------------------------------------

/// Flood a token from node 0; each node records the round it first hears.
class FloodProgram : public NodeProgram {
 public:
  explicit FloodProgram(NodeId self) : self_(self) {}
  void on_start(RoundApi& api) override {
    if (self_ == 0) {
      heard_at_ = 0;
      for (const NodeId w : api.graph().neighbors(self_)) {
        api.send(w, Message{.tag = 1});
      }
    }
  }
  bool on_round(RoundApi& api, std::span<const Delivery> received) override {
    if (heard_at_ < 0 && !received.empty()) {
      heard_at_ = api.round() + 1;  // delivered at start of this round
      for (const NodeId w : api.graph().neighbors(self_)) {
        api.send(w, Message{.tag = 1});
      }
      return true;
    }
    return false;
  }
  std::int64_t heard_at() const { return heard_at_; }

 private:
  NodeId self_;
  std::int64_t heard_at_ = -1;
};

TEST(CongestEngine, FloodReachesAllInEccentricityRounds) {
  const Graph g = path_graph(6);
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  engine.run();
  for (NodeId v = 0; v < 6; ++v) {
    const auto& prog = static_cast<FloodProgram&>(engine.program(v));
    EXPECT_EQ(prog.heard_at(), v) << "distance along the path";
  }
}

/// A program that (illegally) sends two messages to the same neighbor.
class DoubleSendProgram : public NodeProgram {
 public:
  bool on_round(RoundApi& api, std::span<const Delivery>) override {
    if (api.self() == 0 && api.round() == 0) {
      api.send(1, Message{});
      api.send(1, Message{});  // must throw
    }
    return false;
  }
};

TEST(CongestEngine, OneMessagePerNeighborPerRound) {
  const Graph g = path_graph(2);
  CongestEngine engine(g, [](NodeId) {
    return std::make_unique<DoubleSendProgram>();
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

/// Sending to a non-neighbor must throw.
class BadTargetProgram : public NodeProgram {
 public:
  bool on_round(RoundApi& api, std::span<const Delivery>) override {
    if (api.self() == 0 && api.round() == 0) api.send(2, Message{});
    return false;
  }
};

TEST(CongestEngine, RejectsNonNeighborTarget) {
  const Graph g = path_graph(3);
  CongestEngine engine(g, [](NodeId) {
    return std::make_unique<BadTargetProgram>();
  });
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

/// Sends one message to the same neighbor every round for `kRounds` rounds.
/// Legal under CONGEST: the send-once bookkeeping must be reset per round,
/// not accumulate across rounds (regression test for `sent_to_` handling).
class RepeatSendProgram : public NodeProgram {
 public:
  static constexpr int kRounds = 5;
  bool on_round(RoundApi& api, std::span<const Delivery> received) override {
    if (api.self() == 0 && api.round() < kRounds) {
      api.send(1, Message{.tag = static_cast<int>(api.round())});
      return true;
    }
    if (api.self() == 1) received_ += static_cast<int>(received.size());
    return false;
  }
  int received() const { return received_; }

 private:
  int received_ = 0;
};

TEST(CongestEngine, SendOnceResetsEveryRound) {
  const Graph g = path_graph(2);
  CongestEngine engine(g, [](NodeId) {
    return std::make_unique<RepeatSendProgram>();
  });
  EXPECT_NO_THROW(engine.run());
  const auto& receiver = static_cast<RepeatSendProgram&>(engine.program(1));
  EXPECT_EQ(receiver.received(), RepeatSendProgram::kRounds);
}

TEST(CongestEngine, LedgerChargesRunCost) {
  const Graph g = path_graph(6);
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  const auto rounds = engine.run();
  EXPECT_DOUBLE_EQ(engine.ledger().total_rounds(),
                   static_cast<double>(rounds));
  EXPECT_GT(engine.ledger().total_messages(), 0u);
}

TEST(CongestEngine, QuiescenceTerminates) {
  const Graph g = cycle_graph(8);
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  const auto rounds = engine.run(1000);
  EXPECT_LT(rounds, 10);  // eccentricity of C8 from node 0 is 4
}

TEST(CongestEngine, QuiescenceChargesNoExtraRound) {
  // Flood on P2: node 1 hears in round 0 and refloods; round 1 delivers
  // that reflood to a node that is already done. The run must stop right
  // there — a delivery consumed by on_round is not "in flight", so no
  // third round may be charged.
  const Graph g = path_graph(2);
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  EXPECT_EQ(engine.run(), 2);
  EXPECT_DOUBLE_EQ(engine.ledger().total_rounds(), 2.0);
  EXPECT_EQ(engine.ledger().total_messages(), 2u);  // 0→1, then 1→0
}

/// Every node is done from the start and nothing is ever queued.
class IdleProgram : public NodeProgram {
 public:
  bool on_round(RoundApi&, std::span<const Delivery>) override {
    return false;
  }
};

TEST(CongestEngine, AllDoneAndNothingQueuedTerminatesAfterOneRound) {
  // One on_round sweep is needed to learn every node is done; with no
  // queued and no in-flight messages the engine must charge exactly that
  // single round and stop.
  const Graph g = cycle_graph(5);
  CongestEngine engine(g, [](NodeId) {
    return std::make_unique<IdleProgram>();
  });
  EXPECT_EQ(engine.run(), 1);
  EXPECT_DOUBLE_EQ(engine.ledger().total_rounds(), 1.0);
  EXPECT_EQ(engine.ledger().total_messages(), 0u);
}

TEST(CongestEngine, FloodLedgerChargeIsPinned) {
  // Exact engine-run charge for the P6 flood: the farthest node (distance
  // 5) hears in round 4 and refloods; round 5 delivers its flood — 6
  // rounds total, and every node floods once, so messages = sum of
  // degrees = 2m = 10. Pins the engine's cost model across refactors.
  const Graph g = path_graph(6);
  CongestEngine engine(g, [](NodeId v) {
    return std::make_unique<FloodProgram>(v);
  });
  EXPECT_EQ(engine.run(), 6);
  EXPECT_DOUBLE_EQ(engine.ledger().total_rounds(), 6.0);
  EXPECT_EQ(engine.ledger().total_messages(),
            static_cast<std::uint64_t>(2 * g.edge_count()));
}


TEST(CongestNetwork, InboxEmptyWhileNextPhaseIsOpen) {
  const Graph g = path_graph(3);
  CongestNetwork net(g);
  net.begin_phase("a");
  net.send(0, 1, Message{.tag = 1});
  net.end_phase();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  // Opening the next phase hides the previous phase's deliveries...
  net.begin_phase("b");
  EXPECT_TRUE(net.inbox(1).empty());
  // ...and an empty phase leaves every inbox empty.
  net.end_phase();
  EXPECT_TRUE(net.inbox(1).empty());
}

/// Regression for the per-phase O(2m) edge-load zero-fill: the network now
/// clears only the directed-edge slots the previous phase touched, so a
/// long sequence of sparse phases must charge exactly what the same phases
/// cost on a fresh network each time (no load may leak across phases).
TEST(CongestNetwork, SparsePhaseSequenceChargesLikeFreshNetworks) {
  Rng gen(99);
  const Graph g = erdos_renyi_gnm(60, 400, gen);
  CongestNetwork net(g);
  double expected_rounds = 0.0;
  std::uint64_t expected_msgs = 0;
  for (int phase = 0; phase < 60; ++phase) {
    CongestNetwork fresh(g);
    net.begin_phase("sparse");
    fresh.begin_phase("sparse");
    if (phase % 10 == 9) {
      // Occasional dense burst so sparse phases run right after a phase
      // that touched every slot.
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const Edge& ed = g.edge(e);
        net.send(ed.u, ed.v, Message{.tag = phase});
        fresh.send(ed.u, ed.v, Message{.tag = phase});
        expected_msgs += 1;
      }
    } else {
      const int sends = 1 + phase % 3;
      for (int i = 0; i < sends; ++i) {
        const auto e = static_cast<EdgeId>(gen.next_below(
            static_cast<std::uint64_t>(g.edge_count())));
        const Edge& ed = g.edge(e);
        const bool forward = gen.next_bool(0.5);
        const NodeId from = forward ? ed.u : ed.v;
        const NodeId to = forward ? ed.v : ed.u;
        net.send(from, to, Message{.tag = i});
        fresh.send(from, to, Message{.tag = i});
        expected_msgs += 1;
      }
    }
    const auto fresh_rounds = fresh.end_phase();
    EXPECT_EQ(net.end_phase(), fresh_rounds) << "phase " << phase;
    expected_rounds += static_cast<double>(fresh_rounds);
  }
  EXPECT_DOUBLE_EQ(net.ledger().total_rounds(), expected_rounds);
  EXPECT_EQ(net.ledger().total_messages(), expected_msgs);
  EXPECT_EQ(net.phase_count(), 60u);
}

/// Reference delivery: the pre-arena semantics (one vector per recipient,
/// stable sort by sender) that every DeliveryArena path must reproduce
/// byte for byte.
std::vector<std::vector<Delivery>> reference_deliver(
    NodeId n, const std::vector<QueuedMessage>& queue) {
  std::vector<std::vector<std::pair<NodeId, Message>>> tagged(
      static_cast<std::size_t>(n));
  for (const QueuedMessage& q : queue) {
    tagged[static_cast<std::size_t>(q.to)].emplace_back(q.from, q.msg);
  }
  std::vector<std::vector<Delivery>> inboxes(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    auto& in = tagged[static_cast<std::size_t>(v)];
    std::stable_sort(in.begin(), in.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    for (const auto& [from, msg] : in) {
      inboxes[static_cast<std::size_t>(v)].push_back({from, msg});
    }
  }
  return inboxes;
}

/// Generation-stamped delivery (ROADMAP lever f): a phase touching a
/// handful of endpoints must not pay — or depend on — O(n) state. The
/// regression alternates sparse phases (the stamped path), dense phases
/// (the full-sweep fallback), and empty phases on one arena, checking
/// every inbox against the reference stable sort each time: stale stamps
/// must read as empty, and no offsets may leak across phases or across
/// the dense/sparse crossover.
TEST(DeliveryArena, SparseDenseCrossoverMatchesReferenceEveryPhase) {
  const NodeId n = 257;
  DeliveryArena arena;
  arena.reset(n);
  Rng gen(123);
  for (int phase = 0; phase < 40; ++phase) {
    std::vector<QueuedMessage> queue;
    const int shape = phase % 4;
    if (shape == 3) {
      // Empty phase: everything must read as empty afterwards.
    } else if (shape == 2) {
      // Dense burst: well past the n/4 touched threshold.
      for (NodeId v = 0; v < n; ++v) {
        for (int i = 0; i < 2; ++i) {
          queue.push_back({v,
                           static_cast<NodeId>(gen.next_below(
                               static_cast<std::uint64_t>(n))),
                           Message{.tag = phase, .a = v, .b = i}});
        }
      }
    } else {
      // Sparse: a handful of senders/recipients out of 257, repeated
      // senders so per-sender send order matters.
      const int sends = 1 + static_cast<int>(gen.next_below(9));
      for (int i = 0; i < sends; ++i) {
        const auto from = static_cast<NodeId>(gen.next_below(7));
        const auto to =
            static_cast<NodeId>(gen.next_below(static_cast<std::uint64_t>(n)));
        queue.push_back({from, to, Message{.tag = phase, .a = i}});
      }
    }
    arena.invalidate();
    EXPECT_EQ(arena.delivered_count(), 0u);
    arena.deliver(queue);
    const auto expected = reference_deliver(n, queue);
    EXPECT_EQ(arena.delivered_count(), queue.size()) << "phase " << phase;
    for (NodeId v = 0; v < n; ++v) {
      const auto in = arena.inbox(v);
      const auto& want = expected[static_cast<std::size_t>(v)];
      ASSERT_EQ(in.size(), want.size()) << "phase " << phase << " v " << v;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(in[i].from, want[i].from);
        EXPECT_EQ(in[i].msg.tag, want[i].msg.tag);
        EXPECT_EQ(in[i].msg.a, want[i].msg.a);
        EXPECT_EQ(in[i].msg.b, want[i].msg.b);
      }
    }
  }
}

/// The ledger contract of the stamped arena, end to end through the
/// network: a long sparse-phase sequence on a large graph must charge and
/// deliver exactly like fresh networks (the sparse-phase analogue of the
/// edge-load regression above, now covering the delivery plane too).
TEST(CongestNetwork, SparsePhaseDeliveryMatchesFreshNetworks) {
  Rng gen(321);
  const Graph g = erdos_renyi_gnm(300, 1200, gen);
  CongestNetwork net(g);
  for (int phase = 0; phase < 30; ++phase) {
    CongestNetwork fresh(g);
    net.begin_phase("sparse");
    fresh.begin_phase("sparse");
    const int sends = 1 + phase % 4;  // touches ≤ 8 of 300 nodes
    for (int i = 0; i < sends; ++i) {
      const auto e = static_cast<EdgeId>(
          gen.next_below(static_cast<std::uint64_t>(g.edge_count())));
      const Edge& ed = g.edge(e);
      net.send(ed.u, ed.v, Message{.tag = phase, .a = i});
      fresh.send(ed.u, ed.v, Message{.tag = phase, .a = i});
    }
    EXPECT_EQ(net.end_phase(), fresh.end_phase()) << "phase " << phase;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto a = net.inbox(v);
      const auto b = fresh.inbox(v);
      ASSERT_EQ(a.size(), b.size()) << "phase " << phase << " v " << v;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].from, b[i].from);
        EXPECT_EQ(a[i].msg.tag, b[i].msg.tag);
        EXPECT_EQ(a[i].msg.a, b[i].msg.a);
      }
    }
  }
}

/// Differential fuzz: the network's congestion accounting must equal a
/// slow reference computation (per-directed-edge counters built
/// independently) across random traffic patterns.
TEST(CongestNetwork, CongestionMatchesReferenceOnRandomTraffic) {
  Rng gen(77);
  const Graph g = erdos_renyi_gnm(40, 200, gen);
  for (int trial = 0; trial < 20; ++trial) {
    CongestNetwork net(g);
    net.begin_phase("fuzz");
    std::map<std::pair<NodeId, NodeId>, std::int64_t> reference;
    const int sends = 1 + static_cast<int>(gen.next_below(300));
    for (int i = 0; i < sends; ++i) {
      const auto e = static_cast<EdgeId>(gen.next_below(
          static_cast<std::uint64_t>(g.edge_count())));
      const Edge& ed = g.edge(e);
      const bool forward = gen.next_bool(0.5);
      const NodeId from = forward ? ed.u : ed.v;
      const NodeId to = forward ? ed.v : ed.u;
      net.send(from, to, Message{.tag = i});
      ++reference[{from, to}];
    }
    std::int64_t expected = 0;
    std::uint64_t expected_msgs = 0;
    for (const auto& [key, load] : reference) {
      expected = std::max(expected, load);
      expected_msgs += static_cast<std::uint64_t>(load);
    }
    EXPECT_EQ(net.end_phase(), expected) << "trial " << trial;
    std::uint64_t delivered = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      delivered += net.inbox(v).size();
    }
    EXPECT_EQ(delivered, expected_msgs);
  }
}

}  // namespace
}  // namespace dcl

// Tests for the deterministic observability plane (src/common/telemetry.h):
// span collection on the virtual clock, the metrics registry and its
// shard-cell merge, exporter byte-stability across DCL_THREADS, and the
// contract that ArbIterationTrace's tail diagnostics and the telemetry
// span work units are the same numbers from the same source.
#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "congest/round_ledger.h"
#include "core/kp_lister.h"
#include "graph/generators.h"

namespace dcl {
namespace {

TEST(Telemetry, DisabledPlaneHasNoActiveCollector) {
  EXPECT_EQ(active_telemetry(), nullptr);
  // A SpanGuard over the null collector is a no-op on every method.
  SpanGuard guard(nullptr, "noop", "test");
  guard.add_work(10);
  guard.sync_to(5.0, 100);
  EXPECT_EQ(active_telemetry(), nullptr);
}

TEST(Telemetry, ScopeInstallsAndRestores) {
  TraceCollector outer;
  {
    TelemetryScope outer_scope(outer);
    EXPECT_EQ(active_telemetry(), &outer);
    {
      TraceCollector inner;
      TelemetryScope inner_scope(inner);
      EXPECT_EQ(active_telemetry(), &inner);
    }
    EXPECT_EQ(active_telemetry(), &outer);
  }
  EXPECT_EQ(active_telemetry(), nullptr);
}

TEST(Telemetry, ClockSyncIsElementwiseMax) {
  TraceCollector collector;
  collector.sync_to(10.0, 100);
  collector.sync_to(5.0, 250);  // lower rounds, higher messages
  EXPECT_DOUBLE_EQ(collector.clock().rounds, 10.0);
  EXPECT_EQ(collector.clock().messages, 250u);
  collector.add_work(7);
  collector.add_work(3);
  EXPECT_EQ(collector.clock().work, 10u);
}

TEST(Telemetry, SpansNestWithParentAndDepth) {
  TraceCollector collector;
  const std::int32_t a = collector.begin_span("a", "test");
  const std::int32_t b = collector.begin_span("b", "test");
  collector.end_span(b);
  collector.end_span(a);
  const auto& spans = collector.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[static_cast<std::size_t>(a)].parent, -1);
  EXPECT_EQ(spans[static_cast<std::size_t>(a)].depth, 0);
  EXPECT_EQ(spans[static_cast<std::size_t>(b)].parent, a);
  EXPECT_EQ(spans[static_cast<std::size_t>(b)].depth, 1);
  EXPECT_FALSE(spans[static_cast<std::size_t>(a)].open);
  EXPECT_FALSE(spans[static_cast<std::size_t>(b)].open);
}

TEST(Telemetry, EndSpanOnClosedSpanIsIgnored) {
  TraceCollector collector;
  const std::int32_t a = collector.begin_span("a", "test");
  const std::int32_t b = collector.begin_span("b", "test");
  collector.end_span(b);
  collector.end_span(b);  // double close must not pop `a`
  EXPECT_TRUE(collector.spans()[static_cast<std::size_t>(a)].open);
  collector.end_span(a);
  EXPECT_FALSE(collector.spans()[static_cast<std::size_t>(a)].open);
  collector.end_span(-1);  // the "telemetry was off at begin" sentinel
}

TEST(Telemetry, MergedShardCellsMatchSequentialRecording) {
  // Whatever the shard bodies recorded, merging the cells in shard order
  // must equal recording the same values sequentially into the registry.
  MetricsRegistry sequential;
  std::vector<MetricsRegistry::ShardCell> cells(3);
  const std::uint64_t values[] = {5, 0, 17, 2, 9, 31};
  for (std::size_t i = 0; i < 6; ++i) {
    sequential.counter_add("work", values[i]);
    sequential.histogram_record("sizes", values[i]);
    sequential.gauge_max("peak", static_cast<std::int64_t>(values[i]));
    auto& cell = cells[i % 3];
    cell.counter_add("work", values[i]);
    cell.histogram_record("sizes", values[i]);
    cell.gauge_max("peak", static_cast<std::int64_t>(values[i]));
  }
  MetricsRegistry merged;
  merged.merge_cells(cells);
  EXPECT_EQ(merged.counters(), sequential.counters());
  EXPECT_EQ(merged.gauges(), sequential.gauges());
  ASSERT_EQ(merged.histograms().size(), 1u);
  const HistogramStats& h = merged.histograms().at("sizes");
  const HistogramStats& hs = sequential.histograms().at("sizes");
  EXPECT_EQ(h.count, hs.count);
  EXPECT_EQ(h.sum, hs.sum);
  EXPECT_EQ(h.min, hs.min);
  EXPECT_EQ(h.max, hs.max);
  EXPECT_EQ(h.buckets, hs.buckets);
}

TEST(Telemetry, HistogramBucketsKeyedByBitWidth) {
  MetricsRegistry metrics;
  metrics.histogram_record("h", 0);  // bucket 0: zeros
  metrics.histogram_record("h", 1);  // bit_width 1
  metrics.histogram_record("h", 2);  // bit_width 2
  metrics.histogram_record("h", 3);  // bit_width 2
  metrics.histogram_record("h", 8);  // bit_width 4
  const HistogramStats& h = metrics.histograms().at("h");
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 14u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 8u);
  EXPECT_EQ(h.buckets.at(0), 1u);
  EXPECT_EQ(h.buckets.at(1), 1u);
  EXPECT_EQ(h.buckets.at(2), 2u);
  EXPECT_EQ(h.buckets.at(4), 1u);
}

/// Single-cluster ER fixture dense enough to drive the iterated ARB-LIST
/// pipeline (degeneracy above the stop bound) — the regime in which the
/// step-5 tail scheduler actually plans and enumerates work items.
Graph tail_fixture() {
  Rng rng(21);
  return erdos_renyi_gnm(120, 6000, rng);
}

KpConfig tail_config() {
  KpConfig cfg;
  cfg.p = 4;
  cfg.seed = 7;
  return cfg;
}

TEST(Telemetry, TailSpanWorkUnitsEqualArbTraceTailFields) {
  const Graph g = tail_fixture();
  const KpConfig cfg = tail_config();
  TraceCollector collector;
  ListingOutput out(g.node_count());
  KpListResult result = [&] {
    TelemetryScope scope(collector);
    return list_kp_collect(g, cfg, out);
  }();
  ASSERT_FALSE(result.arb_traces.empty());

  // One source of truth: per ARB iteration, the trace's estimated tail
  // work must equal the sum of the per-shard work estimates AND the work
  // units attributed to that iteration's arb/tail-enumerate span.
  const auto tail_spans = collector.find_spans("arb/tail-enumerate");
  ASSERT_EQ(tail_spans.size(), result.arb_traces.size());
  for (std::size_t i = 0; i < result.arb_traces.size(); ++i) {
    const ArbIterationTrace& trace = result.arb_traces[i];
    std::uint64_t shard_sum = 0;
    for (const std::uint64_t w : trace.tail_shard_work) shard_sum += w;
    EXPECT_EQ(trace.tail_est_work_total, shard_sum) << "iteration " << i;
    EXPECT_EQ(tail_spans[i]->work_units(), trace.tail_est_work_total)
        << "iteration " << i;
  }

  // The per-item histogram agrees with the same totals.
  const auto& histos = collector.metrics().histograms();
  ASSERT_TRUE(histos.count("arb.tail.item_est_work"));
  std::uint64_t est_total = 0;
  for (const ArbIterationTrace& trace : result.arb_traces) {
    est_total += trace.tail_est_work_total;
  }
  EXPECT_EQ(histos.at("arb.tail.item_est_work").sum, est_total);
}

TEST(Telemetry, RunReportAndTraceAreByteIdenticalAcrossShardCounts) {
  const Graph g = tail_fixture();
  const KpConfig cfg = tail_config();
  const int previous = shard_threads();
  std::string reports[2];
  std::string traces[2];
  const int counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    set_shard_threads(counts[i]);
    TraceCollector collector;
    ListingOutput out(g.node_count());
    KpListResult result = [&] {
      TelemetryScope scope(collector);
      return list_kp_collect(g, cfg, out);
    }();
    std::ostringstream report;
    write_run_report(report, collector, &result.ledger, "test");
    reports[i] = report.str();
    std::ostringstream trace;
    collector.write_chrome_trace(trace);
    traces[i] = trace.str();
  }
  set_shard_threads(previous);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(traces[0], traces[1]);
  // The report is virtual-time only: no wall-clock field may appear at
  // any thread count.
  EXPECT_EQ(reports[0].find("wall"), std::string::npos);
}

TEST(Telemetry, CollectionDoesNotPerturbLedgerOrOutput) {
  const Graph g = tail_fixture();
  const KpConfig cfg = tail_config();
  ListingOutput out_off(g.node_count());
  const KpListResult off = list_kp_collect(g, cfg, out_off);
  TraceCollector collector;
  ListingOutput out_on(g.node_count());
  const KpListResult on = [&] {
    TelemetryScope scope(collector);
    return list_kp_collect(g, cfg, out_on);
  }();
  ASSERT_EQ(off.ledger.entries().size(), on.ledger.entries().size());
  for (std::size_t i = 0; i < off.ledger.entries().size(); ++i) {
    EXPECT_EQ(off.ledger.entries()[i].label, on.ledger.entries()[i].label);
    EXPECT_DOUBLE_EQ(off.ledger.entries()[i].rounds,
                     on.ledger.entries()[i].rounds);
    EXPECT_EQ(off.ledger.entries()[i].messages, on.ledger.entries()[i].messages);
  }
  EXPECT_EQ(out_off.cliques().fingerprint(), out_on.cliques().fingerprint());
  // And the run actually produced a span tree.
  EXPECT_NE(collector.find_span("list-kp"), nullptr);
  EXPECT_NE(collector.find_span("arb/tail-enumerate"), nullptr);
}

TEST(Telemetry, ChromeTraceIsWellFormedJson) {
  TraceCollector collector;
  collector.sync_to(2.0, 10);
  const std::int32_t a = collector.begin_span("outer \"quoted\"", "test");
  collector.instant("marker", "test");
  collector.sync_to(4.0, 20);
  collector.end_span(a);
  std::ostringstream os;
  collector.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("outer \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  std::int64_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace dcl

#include "congest/primitives.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace dcl {
namespace {

TEST(BfsTree, PathDistances) {
  const Graph g = path_graph(7);
  const auto tree = build_bfs_tree(g, 0);
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)], v);
    EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)],
              v == 0 ? -1 : v - 1);
  }
  // Flood completes within eccentricity + O(1) rounds.
  EXPECT_LE(tree.rounds, 9);
}

TEST(BfsTree, DistancesMatchCentralBfsOnRandomGraph) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(80, 300, rng);
  const auto tree = build_bfs_tree(g, 5);
  // Central BFS reference.
  std::vector<int> dist(80, -1);
  std::vector<NodeId> queue = {5};
  dist[5] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const NodeId w : g.neighbors(queue[head])) {
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(queue[head])] + 1;
        queue.push_back(w);
      }
    }
  }
  for (NodeId v = 0; v < 80; ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              dist[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

TEST(BfsTree, ParentPointersFormTree) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(60, 250, rng);
  const auto tree = build_bfs_tree(g, 0);
  for (NodeId v = 1; v < 60; ++v) {
    if (tree.depth[static_cast<std::size_t>(v)] < 0) continue;
    const NodeId p = tree.parent[static_cast<std::size_t>(v)];
    ASSERT_GE(p, 0);
    EXPECT_TRUE(g.has_edge(v, p));
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(p)],
              tree.depth[static_cast<std::size_t>(v)] - 1);
  }
}

TEST(BfsTree, DisconnectedNodesUnreached) {
  const Graph g = disjoint_union(path_graph(4), path_graph(3));
  const auto tree = build_bfs_tree(g, 0);
  for (NodeId v = 4; v < 7; ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)], -1);
    EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)], -1);
  }
}

TEST(Broadcast, ReachesExactlyTheComponent) {
  const Graph g = disjoint_union(cycle_graph(5), complete_graph(4));
  const auto result = broadcast_value(g, 1, 42);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(result.received[static_cast<std::size_t>(v)]);
  }
  for (NodeId v = 5; v < 9; ++v) {
    EXPECT_FALSE(result.received[static_cast<std::size_t>(v)]);
  }
}

TEST(Convergecast, SumsComponentValues) {
  const Graph g = star_graph(6);
  std::vector<std::int64_t> values = {10, 1, 2, 3, 4, 5};
  const auto result = convergecast_sum(g, 0, values);
  EXPECT_EQ(result.sum, 25);
  EXPECT_LE(result.rounds, 6);  // star: depth 1
}

TEST(Convergecast, DeepTreeSum) {
  const Graph g = path_graph(10);
  std::vector<std::int64_t> values(10, 1);
  const auto result = convergecast_sum(g, 0, values);
  EXPECT_EQ(result.sum, 10);
  EXPECT_GE(result.rounds, 9);  // at least eccentricity
}

TEST(Convergecast, IgnoresOtherComponents) {
  const Graph g = disjoint_union(path_graph(3), path_graph(3));
  std::vector<std::int64_t> values = {1, 1, 1, 100, 100, 100};
  const auto result = convergecast_sum(g, 0, values);
  EXPECT_EQ(result.sum, 3);
}

// ---- Round bounds vs eccentricity ----------------------------------------
//
// The textbook guarantee for flood-based primitives is completion in
// eccentricity(root) + 1 rounds: the node at distance ecc hears in round
// ecc - 1 (0-indexed) and refloods, and one further round delivers (and
// discards) that last flood — the inherent quiescence-detection round.
// Paths, stars, and cycles have closed-form eccentricities, so the
// engine-run ledger charge is pinned EXACTLY: any engine refactor that
// charges a different number of rounds for the same program fails here.

void expect_rounds_near_eccentricity(const Graph& g, NodeId root,
                                     std::int64_t ecc) {
  const auto tree = build_bfs_tree(g, root);
  EXPECT_GE(tree.rounds, ecc) << "BFS cannot beat eccentricity";
  EXPECT_EQ(tree.rounds, ecc + 1) << "BFS flood finishes in exactly ecc+1";

  const auto bcast = broadcast_value(g, root, 7);
  EXPECT_GE(bcast.rounds, ecc);
  EXPECT_EQ(bcast.rounds, ecc + 1);

  std::vector<std::int64_t> ones(
      static_cast<std::size_t>(g.node_count()), 1);
  const auto sum = convergecast_sum(g, root, ones);
  // Convergecast = BFS down + upcast back: at least ecc, at most ~2·ecc+2.
  EXPECT_GE(sum.rounds, ecc);
  EXPECT_LE(sum.rounds, 2 * ecc + 3);
}

TEST(RoundBounds, PathFromEnd) {
  // Root at one end of P_n: eccentricity n-1.
  expect_rounds_near_eccentricity(path_graph(9), 0, 8);
}

TEST(RoundBounds, PathFromMiddle) {
  // Root at the center of P_9: eccentricity 4.
  expect_rounds_near_eccentricity(path_graph(9), 4, 4);
}

TEST(RoundBounds, StarFromHub) {
  // Hub of a star: eccentricity 1 regardless of size.
  expect_rounds_near_eccentricity(star_graph(12), 0, 1);
}

TEST(RoundBounds, StarFromLeaf) {
  // A leaf reaches every other leaf through the hub: eccentricity 2.
  expect_rounds_near_eccentricity(star_graph(12), 3, 2);
}

TEST(RoundBounds, EvenCycle) {
  // C_10: eccentricity n/2 = 5 from every node.
  expect_rounds_near_eccentricity(cycle_graph(10), 2, 5);
}

TEST(RoundBounds, OddCycle) {
  // C_11: eccentricity (n-1)/2 = 5.
  expect_rounds_near_eccentricity(cycle_graph(11), 0, 5);
}

TEST(RoundBounds, SingletonTerminatesImmediately) {
  const Graph g = empty_graph(1);
  const auto tree = build_bfs_tree(g, 0);
  EXPECT_EQ(tree.depth[0], 0);
  EXPECT_LE(tree.rounds, 2);
}

}  // namespace
}  // namespace dcl

// Sharded per-node execution: the decomposition contract of
// common/parallel_for.h, and the end-to-end guarantee the ISSUE of record
// cares about — DCL_THREADS=k must leave ledger fingerprints and clique
// outputs bit-identical to the single-threaded reference execution.
#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/kp_lister.h"
#include "core/sparse_cc.h"
#include "graph/generators.h"

namespace dcl {
namespace {

/// Restores the global shard count on scope exit so suites stay isolated.
class ScopedShardThreads {
 public:
  explicit ScopedShardThreads(int threads) : previous_(shard_threads()) {
    set_shard_threads(threads);
  }
  ~ScopedShardThreads() { set_shard_threads(previous_); }

 private:
  int previous_;
};

TEST(ParallelForShards, SingleShardRunsInline) {
  ScopedShardThreads guard(1);
  std::vector<std::int64_t> seen;
  parallel_for_shards(10, [&](int shard, std::int64_t lo, std::int64_t hi) {
    EXPECT_EQ(shard, 0);
    for (std::int64_t i = lo; i < hi; ++i) seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(ParallelForShards, ShardsAreContiguousOrderedAndCoverTheRange) {
  ScopedShardThreads guard(4);
  for (const std::int64_t n : {0, 1, 3, 4, 5, 17, 100}) {
    std::mutex mu;
    std::vector<std::array<std::int64_t, 3>> ranges;
    parallel_for_shards(n, [&](int shard, std::int64_t lo, std::int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.push_back({shard, lo, hi});
    });
    std::sort(ranges.begin(), ranges.end());
    const auto shards = static_cast<std::int64_t>(ranges.size());
    EXPECT_EQ(shards, std::min<std::int64_t>(4, n)) << "n=" << n;
    std::int64_t next = 0;
    for (const auto& [shard, lo, hi] : ranges) {
      EXPECT_EQ(lo, next) << "n=" << n;   // contiguous, in shard order
      EXPECT_LT(lo, hi) << "n=" << n;     // no empty shards
      next = hi;
    }
    EXPECT_EQ(next, n) << "n=" << n;      // full coverage
  }
}

TEST(ParallelForShards, ShardBoundariesAreBalanced) {
  ScopedShardThreads guard(3);
  // 10 = 3·3 + 1: the remainder goes to the leading shards.
  std::mutex mu;
  std::vector<std::int64_t> sizes(3, 0);
  parallel_for_shards(10, [&](int shard, std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    sizes[static_cast<std::size_t>(shard)] = hi - lo;
  });
  EXPECT_EQ(sizes[0], 4);
  EXPECT_EQ(sizes[1], 3);
  EXPECT_EQ(sizes[2], 3);
}

TEST(ParallelForShards, DisjointSlotWritesNeedNoLocking) {
  ScopedShardThreads guard(4);
  const std::int64_t n = 10000;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  parallel_for_shards(n, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      out[static_cast<std::size_t>(i)] = 3 * i + 1;
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], 3 * i + 1);
  }
}

TEST(ParallelForShards, FirstExceptionPropagates) {
  ScopedShardThreads guard(4);
  std::atomic<int> completed{0};
  try {
    parallel_for_shards(4, [&](int shard, std::int64_t, std::int64_t) {
      if (shard == 2) throw std::runtime_error("shard failure");
      completed.fetch_add(1);
    });
    FAIL() << "expected the shard exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard failure");
  }
  // The pool must stay usable after an exception.
  std::atomic<std::int64_t> sum{0};
  parallel_for_shards(100, [&](int, std::int64_t lo, std::int64_t hi) {
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 4950);
}

// ---- Shard-order audit ----------------------------------------------------
//
// DCL_SHARD_AUDIT turns the "order-independent merge" comment into an
// executable check: multi-shard regions run sequentially in a permuted
// order, so any body that observes another shard's writes diverges from
// the shard-order result deterministically.

/// Restores the audit mode on scope exit so suites stay isolated.
class ScopedShardAudit {
 public:
  explicit ScopedShardAudit(ShardAudit mode) : previous_(shard_audit()) {
    set_shard_audit(mode);
  }
  ~ScopedShardAudit() { set_shard_audit(previous_); }

 private:
  ShardAudit previous_;
};

TEST(ShardAudit, ReverseModeRunsShardsSequentiallyInReverse) {
  ScopedShardThreads guard(4);
  ScopedShardAudit audit(ShardAudit::reverse);
  std::vector<int> order;  // no mutex needed: audit mode is sequential
  parallel_for_shards(8, [&](int shard, std::int64_t, std::int64_t) {
    order.push_back(shard);
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(ShardAudit, RandomModePermutesButCoversEveryShardExactlyOnce) {
  ScopedShardThreads guard(8);
  ScopedShardAudit audit(ShardAudit::random);
  // Across several regions the seeded permutations cannot all be the
  // identity (probability (1/8!)^4 for a uniform stream; the stream is
  // deterministic, so this either always passes or always fails).
  bool saw_non_identity = false;
  for (int region = 0; region < 4; ++region) {
    std::vector<int> order;
    parallel_for_shards(64, [&](int shard, std::int64_t, std::int64_t) {
      order.push_back(shard);
    });
    ASSERT_EQ(order.size(), 8u);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    if (!std::is_sorted(order.begin(), order.end())) saw_non_identity = true;
  }
  EXPECT_TRUE(saw_non_identity);
}

TEST(ShardAudit, ContractCompliantBodiesAreAuditInvariant) {
  // Per-shard buffers merged in shard order: the audit permutation must be
  // unobservable in the merged result.
  ScopedShardThreads guard(4);
  const std::int64_t n = 1000;
  const auto run = [&] {
    std::vector<std::vector<std::int64_t>> per_shard(4);
    parallel_for_shards(n, [&](int shard, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        per_shard[static_cast<std::size_t>(shard)].push_back(i * i);
      }
    });
    std::vector<std::int64_t> merged;
    for (const auto& buf : per_shard) {
      merged.insert(merged.end(), buf.begin(), buf.end());
    }
    return merged;
  };
  const std::vector<std::int64_t> reference = run();
  for (const ShardAudit mode : {ShardAudit::random, ShardAudit::reverse}) {
    ScopedShardAudit audit(mode);
    EXPECT_EQ(run(), reference);
  }
}

TEST(ShardAudit, OrderDependentBodyIsCaughtByReverseExecution) {
  // The violation class the audit exists for: a body that folds into
  // shared state non-commutatively observes the execution order. Under
  // reverse audit the folded value must differ from the shard-order
  // value, which is exactly how the suites' fingerprint assertions would
  // catch a real contract breach.
  ScopedShardThreads guard(4);
  const auto fold = [&] {
    std::int64_t acc = 0;
    std::mutex mu;
    parallel_for_shards(4, [&](int shard, std::int64_t, std::int64_t) {
      std::lock_guard<std::mutex> lock(mu);
      acc = acc * 10 + shard;  // order-dependent on purpose
    });
    return acc;
  };
  ScopedShardAudit audit(ShardAudit::reverse);
  const std::int64_t reversed = fold();
  EXPECT_EQ(reversed, 3210);  // shards folded 3,2,1,0
  EXPECT_NE(reversed, 123);   // != the shard-order fold 0,1,2,3
}

TEST(ShardAudit, WeightedShardsHonorAuditMode) {
  ScopedShardThreads guard(4);
  ScopedShardAudit audit(ShardAudit::reverse);
  std::vector<std::uint64_t> weights(32, 1);
  std::vector<int> order;
  parallel_for_weighted_shards(
      weights, [&](int shard, std::int64_t, std::int64_t) {
        order.push_back(shard);
      });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(ShardAudit, ExceptionsStillPropagateUnderAudit) {
  ScopedShardThreads guard(4);
  ScopedShardAudit audit(ShardAudit::random);
  EXPECT_THROW(
      parallel_for_shards(4,
                          [&](int shard, std::int64_t, std::int64_t) {
                            if (shard == 1) {
                              throw std::runtime_error("audit failure");
                            }
                          }),
      std::runtime_error);
}

// ---- Determinism under threads -------------------------------------------
//
// The whole point of the sharded helper: the round ledger carries the
// paper's Õ(n^{p/(p+2)}) claims, so DCL_THREADS=k must be a pure speed
// knob. Run the two pipelines that use sharded loops end to end with 1 and
// 4 shards and require bit-identical ledgers and clique sets.

TEST(DeterminismUnderThreads, ListKpFingerprintsAreBitIdentical) {
  Rng rng(12);
  const Graph g = erdos_renyi_gnm(90, 1400, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.seed = 7;
  cfg.stop_scale = 0.1;  // exercise the iterated arb_list pipeline

  set_shard_threads(1);
  ListingOutput out_seq(g.node_count());
  const KpListResult seq = list_kp_collect(g, cfg, out_seq);

  // Shard counts off, at, and past the cluster counts the decomposition
  // produces: the cluster-parallel ARB-LIST tail must merge its per-shard
  // listing buffers and routing charges onto the sequential fingerprints
  // at every width (including shards > clusters, where trailing shards
  // stay empty).
  for (const int threads : {2, 3, 4, 8}) {
    ListingOutput out_par(g.node_count());
    KpListResult par;
    {
      ScopedShardThreads guard(threads);
      par = list_kp_collect(g, cfg, out_par);
    }
    EXPECT_EQ(seq.total_rounds(), par.total_rounds())
        << "threads " << threads;  // bit-exact doubles
    EXPECT_EQ(seq.unique_cliques, par.unique_cliques) << "threads " << threads;
    EXPECT_EQ(seq.total_reports, par.total_reports) << "threads " << threads;
    EXPECT_EQ(out_seq.max_reports_per_node(), out_par.max_reports_per_node())
        << "threads " << threads;
    EXPECT_TRUE(out_seq.cliques() == out_par.cliques())
        << "threads " << threads;
  }
}

TEST(DeterminismUnderThreads, SparseCcFingerprintsAreBitIdentical) {
  Rng rng(13);
  const Graph g = erdos_renyi_gnm(160, 2600, rng);
  SparseCcConfig cfg;
  cfg.p = 3;
  cfg.seed = 5;

  set_shard_threads(1);
  ListingOutput out_seq(g.node_count());
  const SparseCcResult seq = sparse_cc_list(g, cfg, out_seq);

  ListingOutput out_par(g.node_count());
  SparseCcResult par;
  {
    ScopedShardThreads guard(4);
    par = sparse_cc_list(g, cfg, out_par);
  }

  EXPECT_EQ(seq.total_rounds(), par.total_rounds());
  EXPECT_EQ(seq.unique_cliques, par.unique_cliques);
  EXPECT_EQ(seq.total_reports, par.total_reports);
  EXPECT_EQ(seq.max_recv_load, par.max_recv_load);
  EXPECT_EQ(seq.max_pair_bucket, par.max_pair_bucket);
  EXPECT_TRUE(out_seq.cliques() == out_par.cliques());
}

// ---- Weighted-item sharding -------------------------------------------------

TEST(WeightedShards, BoundsAreContiguousCoverEveryItemAndAreDeterministic) {
  const std::vector<std::uint64_t> weights = {5, 1, 1, 1, 8, 2, 2, 4};
  const auto bounds = weighted_shard_bounds(weights, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), static_cast<std::int64_t>(weights.size()));
  for (std::size_t s = 1; s < bounds.size(); ++s) {
    EXPECT_LE(bounds[s - 1], bounds[s]);
  }
  // Pure function of (weights, shards): a second call is identical.
  EXPECT_EQ(weighted_shard_bounds(weights, 3), bounds);
}

TEST(WeightedShards, FloorThenTopUpQuotasBalanceSkewedWeights) {
  // One dominant item plus a tail of small ones: the allocator must not
  // hand the dominant shard any of the tail beyond its quota.
  std::vector<std::uint64_t> weights = {100};
  for (int i = 0; i < 100; ++i) weights.push_back(1);
  const int shards = 4;
  const auto bounds = weighted_shard_bounds(weights, shards);
  const std::uint64_t total = weighted_total(weights);  // 200
  double max_work = 0;
  for (int s = 0; s < shards; ++s) {
    std::uint64_t w = 0;
    for (std::int64_t i = bounds[static_cast<std::size_t>(s)];
         i < bounds[static_cast<std::size_t>(s) + 1]; ++i) {
      w += weights[static_cast<std::size_t>(i)];
    }
    max_work = std::max(max_work, static_cast<double>(w));
  }
  const double mean = static_cast<double>(total) / shards;
  // The indivisible 100-unit item caps achievable balance at 2x mean; the
  // tail must split at quota boundaries, keeping every other shard ≤ mean+1.
  EXPECT_LE(max_work, 2.0 * mean + 1.0);
}

TEST(WeightedShards, WeightArithmeticIs64BitEndToEnd) {
  // Four items of 2^31 each: a 32-bit accumulator would wrap to 0 total
  // and collapse every boundary. 64-bit sums split them two-and-two.
  const std::uint64_t big = std::uint64_t{1} << 31;
  const std::vector<std::uint64_t> weights = {big, big, big, big};
  EXPECT_EQ(weighted_total(weights), std::uint64_t{1} << 33);
  const auto bounds = weighted_shard_bounds(weights, 2);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[1], 2);
  EXPECT_EQ(bounds[2], 4);
}

TEST(WeightedShards, MinGrainForcesSequentialFastPath) {
  ScopedShardThreads guard(4);
  // Total estimated work (10) below the grain: exactly one inline body
  // invocation covering every item, shard index 0.
  const std::vector<std::uint64_t> weights = {4, 3, 2, 1};
  int invocations = 0;
  parallel_for_weighted_shards(
      weights,
      [&](int shard, std::int64_t lo, std::int64_t hi) {
        ++invocations;
        EXPECT_EQ(shard, 0);
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 4);
      },
      /*min_grain_weight=*/1000);
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(weighted_shard_count(10, 4, 1000), 1);
}

TEST(WeightedShards, EveryItemRunsExactlyOnceUnderParallelExecution) {
  ScopedShardThreads guard(4);
  std::vector<std::uint64_t> weights(64);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1 + (i * 7) % 13;
  }
  std::vector<std::atomic<int>> hits(weights.size());
  parallel_for_weighted_shards(
      weights, [&](int, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace dcl

#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace dcl {
namespace {

Graph triangle_plus_pendant() {
  // 0-1-2 triangle, 3 hangs off 0.
  return Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, EdgesAreSortedAndNormalized) {
  const Graph g = Graph::from_edges(3, {{2, 1}, {1, 0}, {2, 0}});
  ASSERT_EQ(g.edge_count(), 3);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{0, 2}));
  EXPECT_EQ(g.edge(2), (Edge{1, 2}));
}

TEST(Graph, DuplicateEdgesAreMerged) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(3, {{-1, 1}}), std::invalid_argument);
}

TEST(Graph, NeighborsSortedAndAligned) {
  const Graph g = triangle_plus_pendant();
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  const auto eids = g.incident_edges(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const Edge& e = g.edge(eids[i]);
    EXPECT_TRUE((e.u == 0 && e.v == nbrs[i]) || (e.v == 0 && e.u == nbrs[i]));
  }
}

TEST(Graph, EdgeIdLookup) {
  const Graph g = triangle_plus_pendant();
  ASSERT_TRUE(g.edge_id(1, 2).has_value());
  ASSERT_TRUE(g.edge_id(2, 1).has_value());
  EXPECT_EQ(*g.edge_id(1, 2), *g.edge_id(2, 1));
  EXPECT_FALSE(g.edge_id(1, 3).has_value());
  EXPECT_FALSE(g.edge_id(0, 0).has_value());
  EXPECT_FALSE(g.edge_id(0, 99).has_value());
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Graph, OtherEndpoint) {
  const Graph g = triangle_plus_pendant();
  const EdgeId e = *g.edge_id(0, 3);
  EXPECT_EQ(g.other_endpoint(e, 0), 3);
  EXPECT_EQ(g.other_endpoint(e, 3), 0);
}

TEST(Graph, ConnectedComponents) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto [comp, count] = g.connected_components();
  EXPECT_EQ(count, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_EQ(g.connected_components().second, 0);
}

TEST(EdgeListBuilder, BuildsAndValidates) {
  EdgeListBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);  // duplicate, reversed
  builder.add_edge(2, 3);
  EXPECT_EQ(builder.pending_edges(), 3u);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.edge_count(), 2);
  EdgeListBuilder bad(2);
  EXPECT_THROW(bad.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(bad.add_edge(0, 5), std::invalid_argument);
}

TEST(EdgeSubgraph, KeepsSelectedEdges) {
  const Graph g = triangle_plus_pendant();
  std::vector<bool> keep(4, false);
  keep[static_cast<std::size_t>(*g.edge_id(0, 1))] = true;
  keep[static_cast<std::size_t>(*g.edge_id(0, 3))] = true;
  const Graph sub = edge_subgraph(g, keep);
  EXPECT_EQ(sub.node_count(), 4);
  EXPECT_EQ(sub.edge_count(), 2);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(0, 3));
  EXPECT_FALSE(sub.has_edge(1, 2));
}

TEST(EdgeSubgraph, RejectsWrongMaskSize) {
  const Graph g = triangle_plus_pendant();
  EXPECT_THROW(edge_subgraph(g, std::vector<bool>(3)), std::invalid_argument);
}

TEST(InducedSubgraph, RemapsNodes) {
  const Graph g = triangle_plus_pendant();
  const std::vector<NodeId> nodes = {0, 1, 2};
  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.node_count(), 3);
  EXPECT_EQ(sub.graph.edge_count(), 3);  // full triangle
  EXPECT_EQ(sub.to_original.size(), 3u);
  // Node 3's pendant edge must be gone.
  for (const Edge& e : sub.graph.edges()) {
    EXPECT_LT(sub.to_original[static_cast<std::size_t>(e.u)], 3);
    EXPECT_LT(sub.to_original[static_cast<std::size_t>(e.v)], 3);
  }
}

TEST(InducedSubgraph, HandlesDuplicatesInInput) {
  const Graph g = triangle_plus_pendant();
  const std::vector<NodeId> nodes = {2, 0, 2, 1, 0};
  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.node_count(), 3);
  EXPECT_EQ(sub.graph.edge_count(), 3);
}

TEST(MakeEdge, Normalizes) {
  EXPECT_EQ(make_edge(5, 2), (Edge{2, 5}));
  EXPECT_EQ(make_edge(2, 5), (Edge{2, 5}));
}

}  // namespace
}  // namespace dcl

// EdgeMask vs std::vector<bool> reference semantics: randomized single-bit
// ops, bulk set algebra, popcount, and set-bit iteration, across sizes that
// exercise partial tail words, exact word boundaries, and empty masks.
#include "graph/edge_mask.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace dcl {
namespace {

std::int64_t ref_count(const std::vector<bool>& v) {
  std::int64_t c = 0;
  for (const bool b : v) c += b ? 1 : 0;
  return c;
}

void expect_equals_reference(const EdgeMask& mask,
                             const std::vector<bool>& ref) {
  ASSERT_EQ(mask.size(), static_cast<std::int64_t>(ref.size()));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(mask[static_cast<std::int64_t>(i)], ref[i]) << "bit " << i;
  }
  EXPECT_EQ(mask.count(), ref_count(ref));
}

TEST(EdgeMask, RandomizedSetResetAgainstReference) {
  for (const std::int64_t n : {0, 1, 63, 64, 65, 128, 1000}) {
    Rng rng(static_cast<std::uint64_t>(n) + 1);
    EdgeMask mask(n);
    std::vector<bool> ref(static_cast<std::size_t>(n), false);
    for (int op = 0; op < 400 && n > 0; ++op) {
      const auto i = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const bool value = rng.next_below(2) == 0;
      mask.set(i, value);
      ref[static_cast<std::size_t>(i)] = value;
    }
    expect_equals_reference(mask, ref);
  }
}

TEST(EdgeMask, ConstructFilledAndFill) {
  EdgeMask mask(130, true);
  EXPECT_EQ(mask.count(), 130);  // tail bits past size() must not count
  EXPECT_TRUE(mask.any());
  mask.fill(false);
  EXPECT_EQ(mask.count(), 0);
  EXPECT_TRUE(mask.none());
  mask.fill(true);
  EXPECT_EQ(mask.count(), 130);
}

TEST(EdgeMask, BulkOpsMatchReference) {
  const std::int64_t n = 517;  // partial tail word
  Rng rng(7);
  EdgeMask a(n), b(n);
  std::vector<bool> ra(static_cast<std::size_t>(n)), rb(ra);
  for (std::int64_t i = 0; i < n; ++i) {
    const bool ba = rng.next_below(2) == 0;
    const bool bb = rng.next_below(2) == 0;
    a.set(i, ba);
    b.set(i, bb);
    ra[static_cast<std::size_t>(i)] = ba;
    rb[static_cast<std::size_t>(i)] = bb;
  }

  const EdgeMask u = a | b;
  const EdgeMask inter = a & b;
  EdgeMask diff = a;
  diff.and_not(b);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(u[i], ra[idx] || rb[idx]);
    EXPECT_EQ(inter[i], ra[idx] && rb[idx]);
    EXPECT_EQ(diff[i], ra[idx] && !rb[idx]);
  }
}

TEST(EdgeMask, ForEachSetVisitsExactlySetBitsInOrder) {
  const std::int64_t n = 300;
  Rng rng(9);
  EdgeMask mask(n);
  std::vector<std::int64_t> expected;
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.next_below(4) == 0) {
      mask.set(i);
      expected.push_back(i);
    }
  }
  std::vector<std::int64_t> visited;
  mask.for_each_set([&](std::int64_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(EdgeMask, EqualityAndAssign) {
  EdgeMask a(70), b(70);
  EXPECT_TRUE(a == b);
  a.set(69);
  EXPECT_FALSE(a == b);
  b.set(69);
  EXPECT_TRUE(a == b);
  a.assign(10, true);
  EXPECT_EQ(a.size(), 10);
  EXPECT_EQ(a.count(), 10);
}

TEST(EdgeMask, EmptyMask) {
  EdgeMask mask;
  EXPECT_EQ(mask.size(), 0);
  EXPECT_EQ(mask.count(), 0);
  EXPECT_TRUE(mask.none());
  int visits = 0;
  mask.for_each_set([&](std::int64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

}  // namespace
}  // namespace dcl

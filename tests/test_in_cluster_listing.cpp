#include "core/in_cluster_listing.h"

#include <gtest/gtest.h>

#include <limits>

#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "routing/cluster_router.h"

namespace dcl {
namespace {

/// Builds the canonical problem: cluster = all nodes of `g`, every edge
/// known and grouped at its responsibility holder by degeneracy tail.
struct Scenario {
  Graph g;
  Cluster cluster;
  std::vector<std::vector<KnownEdge>> holders;
  EdgeMask goal;

  explicit Scenario(Graph graph) : g(std::move(graph)) {
    cluster.id = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) cluster.nodes.push_back(v);
    cluster.min_internal_degree = 1;
    const auto k = static_cast<NodeId>(cluster.nodes.size());
    holders.resize(static_cast<std::size_t>(k));
    const Orientation o = degeneracy_orientation(g);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const NodeId tail = o.tail(e);
      const NodeId idx = responsible_cluster_index(tail, g.node_count(), k);
      holders[static_cast<std::size_t>(idx)].push_back(
          KnownEdge{tail, o.head(e)});
    }
    goal.assign(g.edge_count(), true);
  }

  InClusterProblem problem(int p, InClusterChargeMode mode =
                                      InClusterChargeMode::measured) const {
    InClusterProblem pr;
    pr.base = &g;
    pr.cluster = &cluster;
    pr.edges_by_holder = &holders;
    pr.goal_edge = &goal;
    pr.p = p;
    pr.charge_mode = mode;
    return pr;
  }
};

TEST(InClusterListing, ListsAllCliquesOfCompleteGraph) {
  Scenario s(complete_graph(8));
  for (const int p : {3, 4, 5}) {
    Rng rng(1);
    ListingOutput out(s.g.node_count());
    const auto cost = in_cluster_list(s.problem(p), rng, out);
    EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(s.g, p)))
        << "p=" << p;
    EXPECT_GT(cost.parts, 0);
  }
}

TEST(InClusterListing, ListsAllCliquesOfRandomGraph) {
  Rng gen(2);
  Scenario s(erdos_renyi_gnm(40, 350, gen));
  Rng rng(3);
  ListingOutput out(s.g.node_count());
  in_cluster_list(s.problem(4), rng, out);
  EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(s.g, 4)));
}

TEST(InClusterListing, GoalEdgeFilterRestrictsOutput) {
  Scenario s(complete_graph(6));
  s.goal.fill(false);
  s.goal.set(*s.g.edge_id(0, 1));
  Rng rng(4);
  ListingOutput out(s.g.node_count());
  in_cluster_list(s.problem(3), rng, out);
  // Only triangles through {0,1}: the other C(4,1) = 4 completions.
  EXPECT_EQ(out.unique_count(), 4u);
  for (const auto& c : out.cliques().to_vector()) {
    EXPECT_EQ(c[0], 0);
    EXPECT_EQ(c[1], 1);
  }
}

TEST(InClusterListing, NoGoalEdgesNoOutput) {
  Scenario s(complete_graph(6));
  s.goal.fill(false);
  Rng rng(5);
  ListingOutput out(s.g.node_count());
  const auto cost = in_cluster_list(s.problem(3), rng, out);
  EXPECT_EQ(out.unique_count(), 0u);
  // Edges still flowed (the cluster cannot know in advance they are all
  // non-goal): loads are positive.
  EXPECT_GT(cost.max_recv, 0);
}

TEST(InClusterListing, ExactOnRandomGraphs) {
  // Differential check on unstructured instances: with the whole graph as
  // one cluster and every edge a goal edge, in-cluster listing must
  // reproduce the oracle exactly (the §2.4 contract).
  for (const int seed : {1, 2, 3}) {
    Rng gen(static_cast<std::uint64_t>(seed) * 53 + 11);
    Scenario s(erdos_renyi_gnp(28, 0.3, gen));
    for (const int p : {3, 4}) {
      Rng rng(static_cast<std::uint64_t>(seed));
      ListingOutput out(s.g.node_count());
      const auto cost = in_cluster_list(s.problem(p), rng, out);
      EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(s.g, p)))
          << "seed=" << seed << " p=" << p;
      EXPECT_GE(cost.max_send, 0);
      EXPECT_GE(cost.max_recv, 0);
      EXPECT_GE(cost.parts, 1);
      EXPECT_GE(cost.cliques_reported, out.unique_count());
    }
  }
}

TEST(InClusterListing, WorstCaseChargeDominatesMeasured) {
  Rng gen(6);
  Scenario s(erdos_renyi_gnm(30, 120, gen));
  Rng rng_a(7), rng_b(7);
  ListingOutput out_a(s.g.node_count()), out_b(s.g.node_count());
  const auto measured = in_cluster_list(
      s.problem(3, InClusterChargeMode::measured), rng_a, out_a);
  const auto worst = in_cluster_list(
      s.problem(3, InClusterChargeMode::worst_case), rng_b, out_b);
  EXPECT_GE(worst.max_recv, measured.max_recv);
  EXPECT_GE(worst.max_send, measured.max_send);
  // The charge mode must not change what gets listed.
  EXPECT_TRUE(out_a.cliques() == out_b.cliques());
}

TEST(InClusterListing, SendLoadsReflectCoverCounts) {
  Scenario s(complete_graph(16));  // k=16, p=4 -> q=2
  Rng rng(8);
  ListingOutput out(s.g.node_count());
  const auto cost = in_cluster_list(s.problem(4), rng, out);
  EXPECT_EQ(cost.parts, 2);
  // With q=2 every edge goes to many of the 16 nodes; send load is at
  // least the number of edges a holder owns.
  EXPECT_GT(cost.max_send, 0);
  EXPECT_GT(cost.messages, static_cast<std::uint64_t>(s.g.edge_count()));
}

TEST(InClusterListing, SingletonPartDegeneratesGracefully) {
  // k < 2^p forces q = 1: everything lands in one bucket, one
  // representative lists everything.
  Scenario s(complete_graph(5));
  Rng rng(9);
  ListingOutput out(s.g.node_count());
  const auto cost = in_cluster_list(s.problem(4), rng, out);
  EXPECT_EQ(cost.parts, 1);
  EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(s.g, 4)));
}

TEST(InClusterListing, ReportersAreClusterMembers) {
  Scenario s(complete_graph(9));
  Rng rng(10);
  ListingOutput out(s.g.node_count());
  in_cluster_list(s.problem(3), rng, out);
  std::uint64_t reporters = 0;
  for (NodeId v = 0; v < s.g.node_count(); ++v) {
    reporters += out.reports_of(v);
  }
  EXPECT_EQ(reporters, out.total_reports());
  EXPECT_GT(out.total_reports(), 0u);
}

TEST(InClusterListing, InternBuffersSurviveShrinkThenGrowAcrossGraphs) {
  // The interning buffers are function-static thread_local and sized to
  // the base graph: a large graph grows them, a much smaller one triggers
  // the shrink policy, and a large graph again must regrow them with the
  // all-slots-reset invariant intact. Any stale compact id or missed
  // reset surfaces as a wrong clique set here. All three calls run on
  // THIS thread (gtest runs the body single-threaded), so they hit the
  // same buffers in sequence.
  Rng big_gen(41);
  Scenario big(erdos_renyi_gnm(9000, 4000, big_gen));
  Rng small_gen(42);
  Scenario small(erdos_renyi_gnp(24, 0.4, small_gen));

  for (int round = 0; round < 2; ++round) {
    {
      Rng rng(100 + static_cast<std::uint64_t>(round));
      ListingOutput out(big.g.node_count());
      in_cluster_list(big.problem(3), rng, out);
      EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(big.g, 3)))
          << "big round " << round;
    }
    {
      // 9000-slot buffer vs max(4·24, 4096) threshold: this call shrinks.
      Rng rng(200 + static_cast<std::uint64_t>(round));
      ListingOutput out(small.g.node_count());
      in_cluster_list(small.problem(3), rng, out);
      EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(small.g, 3)))
          << "small round " << round;
    }
  }
}

TEST(InClusterListing, DuplicateHeldEdgesDoNotChangeTheListing) {
  // Fragment compilation dedups identical held edges and ORs their goal
  // flags; a bucket holding the same edge twice (here: duplicated inside
  // one holder's list before dedup normally happens upstream) must list
  // exactly the same cliques as the clean problem.
  Rng gen(7);
  Scenario clean(erdos_renyi_gnp(20, 0.5, gen));
  Scenario doubled = clean;
  for (auto& h : doubled.holders) {
    const auto original = h;
    h.insert(h.end(), original.begin(), original.end());
  }
  Rng rng_a(31), rng_b(31);
  ListingOutput out_a(clean.g.node_count());
  ListingOutput out_b(doubled.g.node_count());
  in_cluster_list(clean.problem(4), rng_a, out_a);
  in_cluster_list(doubled.problem(4), rng_b, out_b);
  EXPECT_TRUE(out_a.cliques() == out_b.cliques());
  EXPECT_TRUE(out_a.cliques() == CliqueSet(list_k_cliques(clean.g, 4)));
}

TEST(InClusterPlanEnumerate, SplitRangesReproduceTheFullListing) {
  // The plan/enumerate contract: any partition of [0, reps.size()) into
  // ranges yields the same union of reports as the one-call wrapper.
  Rng gen(12);
  Scenario s(erdos_renyi_gnm(64, 600, gen));
  Rng rng_a(13), rng_b(13);
  ListingOutput whole(s.g.node_count());
  const auto cost = in_cluster_list(s.problem(4), rng_a, whole);

  const InClusterPlan plan = in_cluster_plan(s.problem(4), rng_b);
  EXPECT_EQ(plan.cost.max_send, cost.max_send);
  EXPECT_EQ(plan.cost.max_recv, cost.max_recv);
  EXPECT_EQ(plan.cost.messages, cost.messages);
  EXPECT_EQ(plan.cost.parts, cost.parts);
  ASSERT_GE(plan.reps.size(), 2u) << "scenario too small to split";
  ListingOutput split(s.g.node_count());
  std::uint64_t reported = 0;
  const std::size_t mid = plan.reps.size() / 2;
  reported += in_cluster_enumerate(plan, 0, mid, split);
  reported += in_cluster_enumerate(plan, mid, plan.reps.size(), split);
  EXPECT_EQ(reported, cost.cliques_reported);
  EXPECT_TRUE(split.cliques() == whole.cliques());
  EXPECT_EQ(split.total_reports(), whole.total_reports());
}

TEST(InClusterPlanEnumerate, EstimatesAccumulateIn64Bits) {
  // Synthetic star cluster: a 70 000-leaf hub forced into a single part
  // (k = 5 < 2^p, so q = 1) gives ONE representative whose local graph has
  // a single 70 000-entry row — its out-degree² estimate is 4.9e9, past
  // anything a 32-bit accumulator can hold. A wrapped estimate would show
  // up here as est_work != 70 000².
  constexpr NodeId kLeaves = 70000;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(kLeaves));
  for (NodeId v = 1; v <= kLeaves; ++v) edges.push_back(Edge{0, v});
  Graph star = Graph::from_edges(kLeaves + 1, std::move(edges));

  Cluster cluster;
  cluster.id = 0;
  for (NodeId v = 0; v < 5; ++v) cluster.nodes.push_back(v);
  cluster.min_internal_degree = 1;
  std::vector<std::vector<KnownEdge>> holders(5);
  for (EdgeId e = 0; e < star.edge_count(); ++e) {
    const Edge& ed = star.edge(e);
    const NodeId idx =
        responsible_cluster_index(ed.u, star.node_count(), 5);
    holders[static_cast<std::size_t>(idx)].push_back(KnownEdge{ed.u, ed.v});
  }
  EdgeMask goal;
  goal.assign(star.edge_count(), true);

  InClusterProblem pr;
  pr.base = &star;
  pr.cluster = &cluster;
  pr.edges_by_holder = &holders;
  pr.goal_edge = &goal;
  pr.p = 4;

  Rng rng(14);
  const InClusterPlan plan = in_cluster_plan(pr, rng);
  EXPECT_EQ(plan.q, 1);
  ASSERT_EQ(plan.reps.size(), 1u);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kLeaves) * static_cast<std::uint64_t>(kLeaves);
  EXPECT_EQ(plan.reps[0].est_work, expected);
  EXPECT_EQ(plan.est_work_total, expected);
  EXPECT_GT(plan.est_work_total,
            std::uint64_t{std::numeric_limits<std::uint32_t>::max()});
  // A star has no K4: the (cheap) enumeration must report nothing.
  ListingOutput out(star.node_count());
  EXPECT_EQ(in_cluster_enumerate(plan, 0, plan.reps.size(), out), 0u);
}

TEST(InClusterPlanEnumerate, RepsBelowThresholdsAreDroppedAtPlanTime) {
  // No goal edges → every representative is dropped: the enumeration half
  // has literally nothing to do.
  Scenario s(complete_graph(6));
  s.goal.fill(false);
  Rng rng(15);
  const InClusterPlan plan = in_cluster_plan(s.problem(3), rng);
  EXPECT_TRUE(plan.reps.empty());
  EXPECT_EQ(plan.est_work_total, 0u);
}

TEST(InClusterListing, HolderCountMismatchThrows) {
  Scenario s(complete_graph(4));
  s.holders.pop_back();
  Rng rng(11);
  ListingOutput out(s.g.node_count());
  EXPECT_THROW(in_cluster_list(s.problem(3), rng, out), std::invalid_argument);
}

}  // namespace
}  // namespace dcl

// DynamicLister: the batch-dynamic differential contract. After every
// batch, the maintained CliqueSet must be bit-identical (membership and
// order-independent fingerprint) to a from-scratch static enumeration of
// the current snapshot, and the reported delta must reconcile the previous
// checkpoint with the next one.
#include "dynamic/dynamic_lister.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/workloads.h"

namespace dcl {
namespace {

CliqueSet static_recompute(const Graph& g, int p) {
  CliqueSet expected;
  const auto all = list_k_cliques(g, p);
  expected.reserve(all.size());
  for (const auto& c : all) expected.insert(c);
  return expected;
}

/// One checkpoint: maintained state == static recompute, fingerprints
/// equal, and prev + added - removed == current.
void expect_checkpoint(const DynamicLister& lister, const CliqueSet& prev,
                       const ListingDelta& delta) {
  const CliqueSet expected =
      static_recompute(lister.graph().snapshot(), lister.p());
  ASSERT_EQ(lister.clique_count(), expected.size());
  EXPECT_TRUE(lister.cliques() == expected);
  EXPECT_EQ(lister.fingerprint(), expected.fingerprint());
  EXPECT_EQ(lister.last_stats().clique_count, expected.size());
  EXPECT_EQ(lister.last_stats().fingerprint, expected.fingerprint());

  // Delta reconciliation: replay the delta over the previous set.
  CliqueSet replay = prev;
  for (const auto& c : delta.removed) {
    EXPECT_TRUE(replay.erase(c)) << "removed clique missing from prev";
    EXPECT_FALSE(lister.cliques().contains(c));
  }
  for (const auto& c : delta.added) {
    EXPECT_TRUE(replay.insert(c)) << "added clique already in prev";
    EXPECT_TRUE(lister.cliques().contains(c));
  }
  EXPECT_TRUE(replay == lister.cliques());
  EXPECT_EQ(lister.last_stats().cliques_added, delta.added.size());
  EXPECT_EQ(lister.last_stats().cliques_removed, delta.removed.size());
}

void run_stream_differential(const UpdateStream& stream, int p) {
  DynamicLister lister(Graph::from_edges(stream.n, stream.initial), p);
  {
    const CliqueSet expected =
        static_recompute(lister.graph().snapshot(), p);
    ASSERT_TRUE(lister.cliques() == expected);
    ASSERT_EQ(lister.fingerprint(), expected.fingerprint());
  }
  for (const UpdateBatch& batch : stream.batches) {
    const CliqueSet prev = lister.cliques();
    const ListingDelta delta = lister.apply(batch);
    expect_checkpoint(lister, prev, delta);
    EXPECT_LE(lister.orientation().max_out_degree(),
              lister.orientation().cap());
  }
}

TEST(DynamicLister, SlidingWindowDifferential) {
  Rng rng(1);
  run_stream_differential(sliding_window_stream(36, 12, 20, 3, rng), 3);
  Rng rng4(2);
  run_stream_differential(sliding_window_stream(30, 10, 18, 3, rng4), 4);
}

TEST(DynamicLister, ChurnDifferential) {
  Rng rng(3);
  run_stream_differential(churn_stream(32, 140, 12, 10, rng), 3);
  Rng rng4(4);
  run_stream_differential(churn_stream(28, 120, 10, 8, rng4), 4);
}

TEST(DynamicLister, DensifyingCommunityDifferential) {
  Rng rng(5);
  run_stream_differential(densifying_community_stream(32, 4, 12, 14, rng), 3);
  Rng rng4(6);
  run_stream_differential(densifying_community_stream(28, 4, 10, 12, rng4), 4);
}

TEST(DynamicLister, BuildTeardownDifferential) {
  Rng rng(7);
  run_stream_differential(build_teardown_stream(30, 140, 8, rng), 3);
  Rng rng4(8);
  run_stream_differential(build_teardown_stream(26, 110, 8, rng4), 4);
}

TEST(DynamicLister, EmptyBatchesAreNoOps) {
  Rng rng(9);
  const Graph seed = erdos_renyi_gnm(24, 90, rng);
  DynamicLister lister(seed, 3);
  const std::uint64_t count = lister.clique_count();
  const std::uint64_t fp = lister.fingerprint();
  const ListingDelta delta = lister.apply(UpdateBatch{});
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(lister.clique_count(), count);
  EXPECT_EQ(lister.fingerprint(), fp);
  EXPECT_EQ(lister.last_stats().inserted_edges, 0);
  EXPECT_EQ(lister.last_stats().erased_edges, 0);
}

TEST(DynamicLister, ReinsertedEdgesAcrossBatches) {
  // Delete a triangle edge, then re-insert it: the triangle leaves and
  // returns, and the final state matches the original exactly.
  DynamicLister lister(complete_graph(5), 3);
  const std::uint64_t fp0 = lister.fingerprint();
  const std::uint64_t count0 = lister.clique_count();  // C(5,3) = 10
  EXPECT_EQ(count0, 10u);

  UpdateBatch del;
  del.erase.push_back(make_edge(0, 1));
  const ListingDelta d1 = lister.apply(del);
  EXPECT_EQ(d1.removed.size(), 3u);  // triangles {0,1,x}
  EXPECT_TRUE(d1.added.empty());
  EXPECT_EQ(lister.clique_count(), 7u);

  UpdateBatch re;
  re.insert.push_back(make_edge(0, 1));
  const ListingDelta d2 = lister.apply(re);
  EXPECT_EQ(d2.added.size(), 3u);
  EXPECT_TRUE(d2.removed.empty());
  EXPECT_EQ(lister.clique_count(), count0);
  EXPECT_EQ(lister.fingerprint(), fp0);
}

TEST(DynamicLister, DeleteAndReinsertWithinOneBatchCancels) {
  // Same edge in both lists: deletions apply first, the insert restores
  // it, and the net delta must be empty (the churn cancellation rule).
  DynamicLister lister(complete_graph(6), 4);
  const std::uint64_t fp0 = lister.fingerprint();
  UpdateBatch churn;
  churn.erase.push_back(make_edge(2, 3));
  churn.insert.push_back(make_edge(2, 3));
  const ListingDelta delta = lister.apply(churn);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(lister.fingerprint(), fp0);
  EXPECT_EQ(lister.last_stats().erased_edges, 1);
  EXPECT_EQ(lister.last_stats().inserted_edges, 1);
}

TEST(DynamicLister, DeleteEverything) {
  Rng rng(10);
  const Graph seed = erdos_renyi_gnm(20, 80, rng);
  DynamicLister lister(seed, 3);
  UpdateBatch wipe;
  wipe.erase.assign(seed.edges().begin(), seed.edges().end());
  const ListingDelta delta = lister.apply(wipe);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_EQ(delta.removed.size(), lister.last_stats().cliques_removed);
  EXPECT_EQ(lister.clique_count(), 0u);
  EXPECT_EQ(lister.fingerprint(), 0u);
  EXPECT_EQ(lister.graph().edge_count(), 0);
  EXPECT_EQ(lister.orientation().max_out_degree(), 0);
  // The set really is empty, not merely same-sized.
  EXPECT_TRUE(lister.cliques() == CliqueSet{});
}

TEST(DynamicLister, SkippedUpdatesAreCounted) {
  DynamicLister lister(complete_graph(4), 3);
  UpdateBatch batch;
  batch.insert.push_back(make_edge(0, 1));  // already live
  batch.erase.push_back(make_edge(0, 1));   // erased below, then re-added
  batch.erase.push_back(make_edge(0, 1));   // second erase: already gone
  const ListingDelta delta = lister.apply(batch);
  EXPECT_EQ(lister.last_stats().erased_edges, 1);
  EXPECT_EQ(lister.last_stats().skipped_erases, 1);
  EXPECT_EQ(lister.last_stats().inserted_edges, 1);
  EXPECT_EQ(lister.last_stats().skipped_inserts, 0);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
}

TEST(DynamicLister, PairsModeTracksEdges) {
  // p = 2: the maintained set is exactly the live edge set.
  DynamicLister lister(8, 2);
  UpdateBatch batch;
  batch.insert.push_back(make_edge(0, 1));
  batch.insert.push_back(make_edge(2, 3));
  lister.apply(batch);
  EXPECT_EQ(lister.clique_count(), 2u);
  EXPECT_TRUE(lister.cliques().contains(Clique{0, 1}));
  UpdateBatch del;
  del.erase.push_back(make_edge(0, 1));
  const ListingDelta delta = lister.apply(del);
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0], (Clique{0, 1}));
  EXPECT_EQ(lister.clique_count(), 1u);
}

TEST(DynamicLister, FreshListerFromEmptyGraphGrowsCorrectly) {
  // Start from nothing and build a known structure: K5 minus one edge has
  // C(5,3) - 3 = 7 triangles; completing it restores all 10.
  DynamicLister lister(5, 3);
  EXPECT_EQ(lister.clique_count(), 0u);
  UpdateBatch build;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 5; ++v) {
      if (!(u == 0 && v == 1)) build.insert.push_back(make_edge(u, v));
    }
  }
  lister.apply(build);
  EXPECT_EQ(lister.clique_count(), 7u);
  UpdateBatch last;
  last.insert.push_back(make_edge(0, 1));
  const ListingDelta delta = lister.apply(last);
  EXPECT_EQ(delta.added.size(), 3u);
  EXPECT_EQ(lister.clique_count(), 10u);
}

}  // namespace
}  // namespace dcl

#include "core/detection.h"

#include <gtest/gtest.h>

#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

namespace dcl {
namespace {

TEST(Detection, FindsWitnessWhenPresent) {
  Rng rng(1);
  const auto planted = planted_clique(80, 6, 0.03, rng);
  KpConfig cfg;
  cfg.p = 6;
  const auto result = detect_kp(planted.graph, cfg);
  EXPECT_TRUE(result.found);
  ASSERT_EQ(result.witness.size(), 6u);
  EXPECT_TRUE(is_clique(planted.graph, result.witness));
  EXPECT_GT(result.rounds, 0.0);
}

TEST(Detection, NegativeOnCliqueFreeGraphs) {
  KpConfig cfg;
  cfg.p = 3;
  EXPECT_FALSE(detect_kp(complete_bipartite(12, 12), cfg).found);
  cfg.p = 5;
  EXPECT_FALSE(detect_kp(cycle_graph(30), cfg).found);
}

TEST(Detection, ThresholdSensitivity) {
  // K5 contains K4 and K5 but no K6.
  const Graph g = complete_graph(5);
  for (const int p : {4, 5}) {
    KpConfig cfg;
    cfg.p = p;
    EXPECT_TRUE(detect_kp(g, cfg).found) << p;
  }
  KpConfig cfg;
  cfg.p = 6;
  EXPECT_FALSE(detect_kp(g, cfg).found);
}

TEST(Detection, AgreesWithOracleOnRandomSweep) {
  // Differential detection: found ⟺ the oracle count is positive, and
  // any witness is a real clique. Densities straddle the Kp emergence
  // thresholds so both outcomes occur across the sweep.
  int positives = 0, negatives = 0;
  for (const int p : {3, 4, 5}) {
    for (const double density : {0.03, 0.1, 0.3}) {
      for (const int seed : {1, 2}) {
        Rng rng(static_cast<std::uint64_t>(seed) * 271 + 9);
        const Graph g = erdos_renyi_gnp(60, density, rng);
        KpConfig cfg;
        cfg.p = p;
        cfg.seed = static_cast<std::uint64_t>(seed);
        const auto result = detect_kp(g, cfg);
        const bool truth = count_k_cliques(g, p) > 0;
        EXPECT_EQ(result.found, truth)
            << "p=" << p << " density=" << density << " seed=" << seed;
        EXPECT_GE(result.rounds, 0.0);
        if (result.found) {
          ASSERT_EQ(result.witness.size(), static_cast<std::size_t>(p));
          EXPECT_TRUE(is_clique(g, result.witness));
          ++positives;
        } else {
          ++negatives;
        }
      }
    }
  }
  EXPECT_GT(positives, 0) << "sweep never exercised the positive branch";
  EXPECT_GT(negatives, 0) << "sweep never exercised the negative branch";
}

TEST(Counting, MatchesSequentialOracle) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(90, 1200, rng);
  for (const int p : {3, 4, 5}) {
    KpConfig cfg;
    cfg.p = p;
    const auto result = count_kp_distributed(g, cfg);
    EXPECT_EQ(result.count, count_k_cliques(g, p)) << "p=" << p;
  }
}

TEST(Counting, AggregationChargedSeparately) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(70, 500, rng);
  KpConfig cfg;
  cfg.p = 4;
  const auto result = count_kp_distributed(g, cfg);
  EXPECT_GT(result.aggregation_rounds, 0.0);
  EXPECT_GT(result.rounds, result.aggregation_rounds);
}

TEST(Counting, DisconnectedGraph) {
  const Graph g = disjoint_union(complete_graph(5), complete_graph(6));
  KpConfig cfg;
  cfg.p = 4;
  const auto result = count_kp_distributed(g, cfg);
  EXPECT_EQ(result.count, 5u + 15u);  // C(5,4) + C(6,4)
}

TEST(Counting, EmptyGraph) {
  KpConfig cfg;
  cfg.p = 4;
  const auto result = count_kp_distributed(empty_graph(5), cfg);
  EXPECT_EQ(result.count, 0u);
  EXPECT_DOUBLE_EQ(result.aggregation_rounds, 0.0);
}

}  // namespace
}  // namespace dcl

#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

TEST(TrivialBroadcast, ExactAndCostsDelta) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(80, 900, rng);
  for (const int p : {3, 4, 5, 6}) {
    ListingOutput out(g.node_count());
    const auto result = trivial_broadcast_list(g, p, out);
    EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, p))) << p;
    EXPECT_DOUBLE_EQ(result.total_rounds(),
                     static_cast<double>(g.max_degree()));
    expect_ledger_valid(result.ledger);
  }
}

TEST(ObliviousCc, ExactListing) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(81, 1200, rng);
  for (const int p : {3, 4, 5}) {
    ListingOutput out(g.node_count());
    const auto result = oblivious_cc_list(g, p, out);
    EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, p))) << p;
    EXPECT_GT(result.total_rounds(), 0.0);
    expect_ledger_valid(result.ledger);
  }
}

TEST(ObliviousCc, RoundsAreFlatInDensity) {
  // The defining weakness vs Theorem 1.3: the schedule cannot adapt to m.
  Rng rng(3);
  const NodeId n = 100;
  const Graph sparse = erdos_renyi_gnm(n, 300, rng);
  const Graph dense = erdos_renyi_gnm(n, 4000, rng);
  ListingOutput o1(n), o2(n);
  const auto r1 = oblivious_cc_list(sparse, 3, o1);
  const auto r2 = oblivious_cc_list(dense, 3, o2);
  EXPECT_DOUBLE_EQ(r1.total_rounds(), r2.total_rounds());
}

TEST(OneShot, ExactListing) {
  Rng rng(4);
  const Graph g = erdos_renyi_gnm(90, 2000, rng);
  for (const int p : {3, 4, 5}) {
    ListingOutput out(g.node_count());
    one_shot_list(g, p, out);
    EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, p))) << p;
  }
}

TEST(OneShot, SparseGraphStillCorrect) {
  // On a sparse graph the single pass finds no clusters; the leftover
  // broadcast must cover everything.
  Rng rng(5);
  const Graph g = erdos_renyi_gnm(100, 400, rng);
  ListingOutput out(g.node_count());
  one_shot_list(g, 4, out);
  EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, 4)));
}

TEST(ChangStyleTriangles, MatchesGroundTruth) {
  Rng rng(6);
  const Graph g = erdos_renyi_gnm(120, 2400, rng);
  ListingOutput out(g.node_count());
  const auto result = chang_style_triangle_list(g, out);
  EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, 3)));
  EXPECT_GT(result.total_rounds(), 0.0);
}

TEST(Comparison, AllListersAgreeOnTheSameGraph) {
  // Integration: four independent implementations produce the same set.
  Rng rng(7);
  const Graph g = erdos_renyi_gnm(70, 1100, rng);
  const int p = 4;
  ListingOutput o1(g.node_count()), o2(g.node_count()), o3(g.node_count()),
      o4(g.node_count());
  trivial_broadcast_list(g, p, o1);
  oblivious_cc_list(g, p, o2);
  one_shot_list(g, p, o3);
  KpConfig cfg;
  cfg.p = p;
  list_kp_collect(g, cfg, o4);
  EXPECT_TRUE(o1.cliques() == o2.cliques());
  EXPECT_TRUE(o2.cliques() == o3.cliques());
  EXPECT_TRUE(o3.cliques() == o4.cliques());
}

TEST(Comparison, OursBeatsTrivialOnDenseGraphsAtMessageLevel) {
  // The paper's headline: sub-linear rounds where the prior art for p ≥ 6
  // was the Δ-round trivial broadcast. At simulable n the polylog factors
  // buried in the Õ(·) of T2.3/T2.4 dominate absolute totals (EXPERIMENTS.md
  // E5 reports the crossover analysis); the message-level exchange rounds —
  // the part with no polylog charges — must already be sub-Δ here.
  Rng rng(8);
  const Graph g = erdos_renyi_gnm(220, 8500, rng);  // avg degree ~77
  KpConfig cfg;
  cfg.p = 6;
  cfg.stop_scale = 0.5;
  const auto ours = list_kp(g, cfg);
  ListingOutput out(g.node_count());
  const auto trivial = trivial_broadcast_list(g, 6, out);
  EXPECT_LT(ours.ledger.rounds_of_kind(CostKind::exchange),
            trivial.total_rounds());
}

TEST(Baselines, EmptyGraphsAreFree) {
  const Graph g = empty_graph(10);
  ListingOutput o1(10), o3(10);
  EXPECT_DOUBLE_EQ(trivial_broadcast_list(g, 4, o1).total_rounds(), 0.0);
  EXPECT_DOUBLE_EQ(one_shot_list(g, 4, o3).total_rounds(), 0.0);
}

}  // namespace
}  // namespace dcl

#include "core/sparse_cc.h"

#include <gtest/gtest.h>

#include <tuple>

#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

void expect_exact(const Graph& g, const SparseCcConfig& cfg) {
  const CliqueSet truth{list_k_cliques(g, cfg.p)};
  ListingOutput out(g.node_count());
  const auto result = sparse_cc_list(g, cfg, out);
  expect_ledger_valid(result.ledger);
  EXPECT_TRUE(out.cliques() == truth)
      << "truth=" << truth.size() << " got=" << out.unique_count();
  EXPECT_EQ(result.unique_cliques, truth.size());
}

class SparseCcSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(SparseCcSweep, ExactListing) {
  const auto [n, p, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 5);
  const Graph g = erdos_renyi_gnp(static_cast<NodeId>(n), density, rng);
  SparseCcConfig cfg;
  cfg.p = p;
  cfg.seed = static_cast<std::uint64_t>(seed);
  expect_exact(g, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SparseCcSweep,
    ::testing::Combine(::testing::Values(40, 81, 128),
                       ::testing::Values(3, 4, 5, 6),
                       ::testing::Values(0.1, 0.3, 0.5),
                       ::testing::Values(1, 2)));

TEST(SparseCc, CompleteAndBipartite) {
  SparseCcConfig cfg;
  cfg.p = 4;
  expect_exact(complete_graph(20), cfg);
  const Graph bip = complete_bipartite(15, 15);
  ListingOutput out(bip.node_count());
  sparse_cc_list(bip, cfg, out);
  EXPECT_EQ(out.unique_count(), 0u);
}

TEST(SparseCc, FakeEdgePaddingDoesNotPolluteOutput) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(60, 300, rng);
  SparseCcConfig padded;
  padded.p = 3;
  padded.pad_factor = 2.0;  // large enough to engage at n = 60
  ListingOutput out(g.node_count());
  const auto result = sparse_cc_list(g, padded, out);
  EXPECT_GT(result.fake_edges, 0) << "padding should have engaged";
  EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, 3)))
      << "fake edges leaked into the listing";
}

TEST(SparseCc, RoundsGrowWithDensity) {
  // The sparsity-aware property: same n, more edges, more rounds (beyond
  // the Õ(1) floor).
  Rng rng(4);
  const NodeId n = 128;
  SparseCcConfig cfg;
  cfg.p = 3;
  const Graph sparse = erdos_renyi_gnm(n, 500, rng);
  const Graph dense = erdos_renyi_gnm(n, 6000, rng);
  ListingOutput o1(n), o2(n);
  const auto r_sparse = sparse_cc_list(sparse, cfg, o1);
  const auto r_dense = sparse_cc_list(dense, cfg, o2);
  EXPECT_LT(r_sparse.total_rounds(), r_dense.total_rounds());
}

TEST(SparseCc, Lemma27BucketBalance) {
  // With q parts, each pair bucket should hold Õ(m/q²) edges — Lemma 2.7
  // promises ≤ 6·q_prob²·m with q_prob = 1/q, i.e. ≤ 6m/q².
  Rng rng(5);
  const NodeId n = 216;  // q = floor(216^{1/3}) = 6
  const Graph g = erdos_renyi_gnm(n, 8000, rng);
  SparseCcConfig cfg;
  cfg.p = 3;
  ListingOutput out(n);
  const auto result = sparse_cc_list(g, cfg, out);
  ASSERT_EQ(result.parts, 6);
  const double bound = 6.0 * static_cast<double>(g.edge_count()) /
                       static_cast<double>(result.parts * result.parts);
  EXPECT_LE(static_cast<double>(result.max_pair_bucket), bound);
}

TEST(SparseCc, ReceiveLoadMatchesTheorem) {
  // Theorem 1.3 accounting: max receive load O(p² m / n^{2/p}); with the
  // constant slack 8 this must hold on ER instances.
  Rng rng(6);
  const NodeId n = 125;  // q = 5 for p = 3
  const Graph g = erdos_renyi_gnm(n, 4000, rng);
  SparseCcConfig cfg;
  cfg.p = 3;
  ListingOutput out(n);
  const auto result = sparse_cc_list(g, cfg, out);
  const double bound = 8.0 * 9.0 * static_cast<double>(g.edge_count()) /
                       std::pow(static_cast<double>(n), 2.0 / 3.0);
  EXPECT_LE(static_cast<double>(result.max_recv_load), bound);
}

TEST(SparseCc, TinyGraphs) {
  SparseCcConfig cfg;
  cfg.p = 3;
  ListingOutput out0(0);
  EXPECT_EQ(sparse_cc_list(empty_graph(0), cfg, out0).unique_cliques, 0u);
  ListingOutput out1(1);
  EXPECT_EQ(sparse_cc_list(empty_graph(1), cfg, out1).unique_cliques, 0u);
  ListingOutput out3(3);
  const auto r = sparse_cc_list(complete_graph(3), cfg, out3);
  EXPECT_EQ(r.unique_cliques, 1u);
}

TEST(SparseCc, RejectsSmallP) {
  SparseCcConfig cfg;
  cfg.p = 2;
  ListingOutput out(3);
  EXPECT_THROW(sparse_cc_list(complete_graph(3), cfg, out),
               std::invalid_argument);
}

TEST(SparseCc, DeterministicUnderSeed) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnm(80, 1500, rng);
  SparseCcConfig cfg;
  cfg.p = 4;
  cfg.seed = 99;
  ListingOutput o1(g.node_count()), o2(g.node_count());
  const auto a = sparse_cc_list(g, cfg, o1);
  const auto b = sparse_cc_list(g, cfg, o2);
  EXPECT_DOUBLE_EQ(a.total_rounds(), b.total_rounds());
  EXPECT_TRUE(o1.cliques() == o2.cliques());
}

TEST(SparseCc, DirectModeAlsoCorrect) {
  Rng rng(8);
  const Graph g = erdos_renyi_gnm(60, 900, rng);
  SparseCcConfig cfg;
  cfg.p = 4;
  cfg.routing = CliqueRoutingMode::direct;
  expect_exact(g, cfg);
}

}  // namespace
}  // namespace dcl

// Randomized differential validation of the distributed Kp lister.
//
// The correctness contract of core/kp_lister.h — the union of all node
// outputs equals the exact Kp set, no misses, no false positives — is the
// executable form of Theorems 1.1/1.2. This suite sweeps it against the
// sequential ground-truth oracle (enumeration/clique_enumeration.h) over
// randomized Erdős–Rényi and planted-clique instances for every p in
// {3,...,7}, the regime the deterministic follow-up work (PODC 2022) and
// exact listers treat as table stakes: exhaustive, seed-reproducible
// ground-truth comparison, not spot checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dcl {
namespace {

/// Runs the lister and compares its deduplicated output, as a sorted
/// canonical clique list, against brute-force ground truth.
void expect_matches_bruteforce(const Graph& g, const KpConfig& cfg) {
  // Ground truth, sorted and deduped into canonical form.
  std::vector<Clique> truth = list_k_cliques(g, cfg.p);
  std::sort(truth.begin(), truth.end());
  truth.erase(std::unique(truth.begin(), truth.end()), truth.end());

  ListingOutput out(g.node_count());
  const KpListResult result = list_kp_collect(g, cfg, out);
  expect_result_valid(result);

  std::vector<Clique> listed = out.cliques().to_vector();
  std::sort(listed.begin(), listed.end());

  ASSERT_EQ(listed.size(), truth.size())
      << "p=" << cfg.p << " n=" << g.node_count() << " m=" << g.edge_count()
      << ": lister found " << listed.size() << " cliques, oracle found "
      << truth.size();
  EXPECT_EQ(listed, truth);
  EXPECT_EQ(result.unique_cliques, truth.size());

  // Cross-check the oracle itself with the independent counter.
  EXPECT_EQ(count_k_cliques_naive(g, cfg.p),
            static_cast<std::uint64_t>(truth.size()));
}

// ---- Erdős–Rényi sweep ---------------------------------------------------

class ErdosRenyiDifferential
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(ErdosRenyiDifferential, ListerEqualsBruteForce) {
  const auto [p, n, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Graph g = erdos_renyi_gnp(static_cast<NodeId>(n), density, rng);
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = static_cast<std::uint64_t>(seed);
  expect_matches_bruteforce(g, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErdosRenyiDifferential,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7),
                       ::testing::Values(40, 80, 120),
                       ::testing::Values(0.1, 0.25),
                       ::testing::Values(1, 2, 3)));

// ---- Planted-clique sweep ------------------------------------------------
//
// A planted Kq with q > p guarantees a dense pocket of C(q,p) overlapping
// instances inside sparse noise — the adversarial case for the heavy/light
// split and for deduplication across cluster boundaries.

class PlantedCliqueDifferential
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PlantedCliqueDifferential, ListerEqualsBruteForce) {
  const auto [p, n, clique_size, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 29);
  const PlantedClique planted = planted_clique(
      static_cast<NodeId>(n), static_cast<NodeId>(clique_size), 0.08, rng);
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = static_cast<std::uint64_t>(seed);
  expect_matches_bruteforce(planted.graph, cfg);

  // The planted clique itself must be listed: any p of its members form
  // a Kp; check the lexicographically first one explicitly.
  ListingOutput out(planted.graph.node_count());
  list_kp_collect(planted.graph, cfg, out);
  Clique first(planted.clique_nodes.begin(),
               planted.clique_nodes.begin() + p);
  EXPECT_TRUE(out.cliques().contains(first));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedCliqueDifferential,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7),
                       ::testing::Values(60, 110),
                       ::testing::Values(9, 12),
                       ::testing::Values(1, 2)));

// ---- K4-fast differential (Theorem 1.2) ----------------------------------

class K4FastDifferential
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(K4FastDifferential, ListerEqualsBruteForce) {
  const auto [n, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 4241 + 17);
  const Graph g = erdos_renyi_gnp(static_cast<NodeId>(n), density, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.k4_fast = true;
  cfg.seed = static_cast<std::uint64_t>(seed);
  expect_matches_bruteforce(g, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, K4FastDifferential,
    ::testing::Combine(::testing::Values(50, 100, 120),
                       ::testing::Values(0.12, 0.3),
                       ::testing::Values(1, 2, 3)));

// ---- Closed-form oracles -------------------------------------------------

TEST(ClosedFormDifferential, CompleteGraphHasBinomialManyCliques) {
  for (int p = 3; p <= 7; ++p) {
    const Graph g = complete_graph(12);
    KpConfig cfg;
    cfg.p = p;
    expect_matches_bruteforce(g, cfg);
  }
}

TEST(ClosedFormDifferential, BipartiteGraphsHaveNoTriangles) {
  const Graph g = complete_bipartite(8, 9);
  for (int p = 3; p <= 5; ++p) {
    KpConfig cfg;
    cfg.p = p;
    ListingOutput out(g.node_count());
    const auto result = list_kp_collect(g, cfg, out);
    expect_result_valid(result);
    EXPECT_EQ(out.unique_count(), 0u);
    EXPECT_EQ(result.unique_cliques, 0u);
  }
}

}  // namespace
}  // namespace dcl

#include "core/broadcast_listing.h"

#include <gtest/gtest.h>

#include "congest/congest_network.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "test_util.h"

namespace dcl {
namespace {

EdgeMask away_bits(const Graph& g) {
  const Orientation o = degeneracy_orientation(g);
  EdgeMask away(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    away.set(e, o.away_from_lower(e));
  }
  return away;
}

TEST(BroadcastListing, NeighborhoodModeCostsMaxDegree) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(60, 400, rng);
  RoundLedger ledger;
  ListingOutput out(g.node_count());
  BroadcastListingArgs args;
  args.base = &g;
  args.p = 3;
  args.mode = BroadcastMode::neighborhood;
  const auto stats = broadcast_listing(args, ledger, out);
  EXPECT_EQ(stats.rounds, g.max_degree());
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), static_cast<double>(g.max_degree()));
}

TEST(BroadcastListing, OutEdgeModeCostsMaxOutDegreeOnEdges) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(60, 500, rng);
  const auto away = away_bits(g);
  RoundLedger ledger;
  ListingOutput out(g.node_count());
  BroadcastListingArgs args;
  args.base = &g;
  args.away = &away;
  args.p = 3;
  args.mode = BroadcastMode::out_edges;
  const auto stats = broadcast_listing(args, ledger, out);
  // The cost is max over edges of the tail-side out-degree <= degeneracy,
  // strictly less than Δ on this dense-ish instance.
  EXPECT_LT(stats.rounds, g.max_degree());
  EXPECT_GT(stats.rounds, 0);
}

TEST(BroadcastListing, ListsExactlyAllCliques) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(70, 600, rng);
  const auto away = away_bits(g);
  for (const int p : {3, 4, 5}) {
    RoundLedger ledger;
    ListingOutput out(g.node_count());
    BroadcastListingArgs args;
    args.base = &g;
    args.away = &away;
    args.p = p;
    args.mode = BroadcastMode::out_edges;
    broadcast_listing(args, ledger, out);
    EXPECT_TRUE(out.cliques() == CliqueSet(list_k_cliques(g, p))) << "p=" << p;
    expect_ledger_valid(ledger);
  }
}

TEST(BroadcastListing, CurrentMaskRestrictsGraph) {
  // Keep only a triangle out of K5; only that triangle's K3 remains.
  const Graph g = complete_graph(5);
  const auto away = away_bits(g);
  EdgeMask current(g.edge_count());
  current.set(*g.edge_id(0, 1));
  current.set(*g.edge_id(1, 2));
  current.set(*g.edge_id(0, 2));
  RoundLedger ledger;
  ListingOutput out(g.node_count());
  BroadcastListingArgs args;
  args.base = &g;
  args.current = &current;
  args.away = &away;
  args.p = 3;
  broadcast_listing(args, ledger, out);
  EXPECT_EQ(out.unique_count(), 1u);
  EXPECT_TRUE(out.cliques().contains({0, 1, 2}));
}

TEST(BroadcastListing, RequireEdgeFilter) {
  // K5 with require_edge on a single edge: only the C(3,1)=3 triangles
  // through that edge are reported.
  const Graph g = complete_graph(5);
  const auto away = away_bits(g);
  EdgeMask require(g.edge_count());
  require.set(*g.edge_id(0, 1));
  RoundLedger ledger;
  ListingOutput out(g.node_count());
  BroadcastListingArgs args;
  args.base = &g;
  args.away = &away;
  args.p = 3;
  args.require_edge = &require;
  broadcast_listing(args, ledger, out);
  EXPECT_EQ(out.unique_count(), 3u);
  for (const auto& c : out.cliques().to_vector()) {
    EXPECT_TRUE(c[0] == 0 && c[1] == 1);
  }
}

TEST(BroadcastListing, EmptyGraphIsFree) {
  const Graph g = empty_graph(5);
  const auto away = away_bits(g);
  RoundLedger ledger;
  ListingOutput out(g.node_count());
  BroadcastListingArgs args;
  args.base = &g;
  args.away = &away;
  args.p = 3;
  const auto stats = broadcast_listing(args, ledger, out);
  EXPECT_EQ(stats.rounds, 0);
  EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
  EXPECT_EQ(out.unique_count(), 0u);
}

/// Honesty cross-check (DESIGN.md §4): the analytically charged cost of the
/// virtual broadcast must equal the measured congestion of a materialized
/// message-by-message execution of the same pattern.
TEST(BroadcastListing, ChargeMatchesMaterializedExchange) {
  Rng rng(4);
  const Graph g = erdos_renyi_gnm(40, 220, rng);
  const Orientation o = degeneracy_orientation(g);
  const auto away = away_bits(g);

  RoundLedger ledger;
  ListingOutput out(g.node_count());
  BroadcastListingArgs args;
  args.base = &g;
  args.away = &away;
  args.p = 3;
  args.mode = BroadcastMode::out_edges;
  const auto stats = broadcast_listing(args, ledger, out);

  // Materialize: every node sends each of its out-edges to every neighbor.
  CongestNetwork net(g);
  net.begin_phase("materialized");
  std::uint64_t sent = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const NodeId w : g.neighbors(v)) {
      for (const NodeId head : o.out_neighbors(v)) {
        net.send(v, w, Message{.tag = 0, .a = v, .b = head});
        ++sent;
      }
    }
  }
  const auto measured = net.end_phase();
  EXPECT_EQ(stats.rounds, measured);
  EXPECT_EQ(stats.messages, sent);
}

}  // namespace
}  // namespace dcl

#include "expander/decomposition.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/math_util.h"
#include "graph/generators.h"
#include "graph/orientation.h"

namespace dcl {
namespace {

/// Checks Definition 2.2 end to end: exhaustive edge labeling, the Er
/// budget, the Es orientation witness, cluster min-degree and mixing.
void expect_valid(const Graph& g, NodeId ambient_n,
                  const DecompositionConfig& cfg,
                  const ExpanderDecomposition& d) {
  ASSERT_EQ(d.part.size(), static_cast<std::size_t>(g.edge_count()));
  EXPECT_EQ(d.em_count + d.es_count + d.er_count, g.edge_count());
  const auto errors = verify_decomposition(
      g, ambient_n, cfg, d, polylog_mixing_bound(g.edge_count()));
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(Decomposition, ErdosRenyiDense) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(200, 6000, rng);
  DecompositionConfig cfg;
  cfg.delta = 0.5;
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  expect_valid(g, g.node_count(), cfg, d);
  // A dense ER graph is an expander: expect most edges in clusters.
  EXPECT_GT(d.em_count, g.edge_count() / 2);
}

TEST(Decomposition, TreeGoesEntirelyToSparse) {
  Rng rng(2);
  const Graph g = path_graph(100);
  DecompositionConfig cfg;
  cfg.delta = 0.5;
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  expect_valid(g, g.node_count(), cfg, d);
  EXPECT_EQ(d.es_count, g.edge_count());
  EXPECT_TRUE(d.clusters.empty());
  EXPECT_EQ(d.er_count, 0);
}

TEST(Decomposition, SbmSeparatesBlocks) {
  Rng rng(3);
  const Graph g = stochastic_block_model({60, 60}, 0.6, 0.01, rng);
  DecompositionConfig cfg;
  cfg.delta = 0.55;
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  expect_valid(g, g.node_count(), cfg, d);
  // The two blocks should end up in clusters (either two clusters, or one
  // if the sparse cross edges did not meet the cut threshold).
  EXPECT_GE(d.clusters.size(), 1u);
  std::int64_t clustered_nodes = 0;
  for (const auto& c : d.clusters) {
    clustered_nodes += static_cast<std::int64_t>(c.nodes.size());
  }
  EXPECT_GE(clustered_nodes, 100);
}

TEST(Decomposition, EmptyAndTinyGraphs) {
  Rng rng(4);
  DecompositionConfig cfg;
  const Graph e = empty_graph(10);
  const auto d = expander_decompose(e, 10, cfg, rng);
  EXPECT_TRUE(d.clusters.empty());
  const Graph single = path_graph(2);
  const auto d2 = expander_decompose(single, 2, cfg, rng);
  EXPECT_EQ(d2.es_count + d2.em_count + d2.er_count, 1);
}

TEST(Decomposition, AbsoluteDegreeOverride) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnm(150, 3000, rng);
  DecompositionConfig cfg;
  cfg.absolute_degree = 10;
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  expect_valid(g, g.node_count(), cfg, d);
  for (const auto& c : d.clusters) {
    EXPECT_GE(c.min_internal_degree, 5);  // degree_scale 0.5 * 10
  }
}

TEST(Decomposition, ChargedRoundsFollowTheorem) {
  Rng rng(6);
  const Graph g = erdos_renyi_gnm(256, 4000, rng);
  DecompositionConfig cfg;
  cfg.absolute_degree = 16;
  const auto d = expander_decompose(g, 256, cfg, rng);
  // Õ(n^{1-δ}) with n^δ = 16: (256/16)·log2(256) = 128.
  EXPECT_DOUBLE_EQ(d.charged_rounds, 128.0);
}

TEST(Decomposition, DefaultConductanceGuaranteesErBudget) {
  // φ = 1/(12 log2(2m)+1) must keep |Er| ≤ |E|/6 across families; checked
  // empirically here and by the analytic charging argument in the header.
  EXPECT_LT(default_conductance_threshold(1000), 0.01);
  EXPECT_GT(default_conductance_threshold(4), 0.01);
}

TEST(Decomposition, DeterministicUnderSeed) {
  Rng rng_a(7), rng_b(7);
  Rng gen(8);
  const Graph g = erdos_renyi_gnm(100, 2000, gen);
  DecompositionConfig cfg;
  cfg.delta = 0.5;
  const auto da = expander_decompose(g, 100, cfg, rng_a);
  const auto db = expander_decompose(g, 100, cfg, rng_b);
  ASSERT_EQ(da.part.size(), db.part.size());
  for (std::size_t i = 0; i < da.part.size(); ++i) {
    ASSERT_EQ(da.part[i], db.part[i]);
  }
  EXPECT_EQ(da.clusters.size(), db.clusters.size());
}

// Parameterized invariant sweep: every (family, n, δ) must satisfy
// Definition 2.2.
class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(DecompositionSweep, InvariantsHold) {
  const auto [family, n, delta] = GetParam();
  Rng rng(static_cast<std::uint64_t>(family * 1000 + n));
  Graph g;
  switch (family) {
    case 0:
      g = erdos_renyi_gnm(static_cast<NodeId>(n),
                          static_cast<EdgeId>(8LL * n), rng);
      break;
    case 1:
      g = stochastic_block_model(
          {static_cast<NodeId>(n / 2), static_cast<NodeId>(n / 2)}, 0.4,
          0.02, rng);
      break;
    case 2:
      g = power_law_chung_lu(static_cast<NodeId>(n), 2.5, 10.0, rng);
      break;
    default:
      g = random_regular(static_cast<NodeId>(n), 8, rng);
  }
  DecompositionConfig cfg;
  cfg.delta = delta;
  const auto d = expander_decompose(g, g.node_count(), cfg, rng);
  expect_valid(g, g.node_count(), cfg, d);
  // Er budget (Definition 2.2, third bullet).
  EXPECT_LE(6 * d.er_count, g.edge_count());
  // Edge labels are exhaustive and exclusive by construction; re-count.
  std::int64_t em = 0, es = 0, er = 0;
  for (const auto part : d.part) {
    switch (part) {
      case EdgePart::cluster: ++em; break;
      case EdgePart::sparse: ++es; break;
      case EdgePart::removed: ++er; break;
    }
  }
  EXPECT_EQ(em, d.em_count);
  EXPECT_EQ(es, d.es_count);
  EXPECT_EQ(er, d.er_count);
}

INSTANTIATE_TEST_SUITE_P(
    Families, DecompositionSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(64, 128, 200),
                       ::testing::Values(0.4, 0.55, 0.7)));

}  // namespace
}  // namespace dcl

// Contract tests for the checked id conversions (src/graph/ids.h): exact
// boundary behavior at the NodeId/EdgeId limits, Debug-assert on range
// violations, and Release transparency (in NDEBUG builds the helpers are
// bare static_casts — the same binary-level behavior the bench pins rely
// on). EXPECT_DEBUG_DEATH covers both configurations with one spelling:
// it expects the assert in Debug and executes the statement normally under
// NDEBUG.
#include "graph/ids.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace dcl {
namespace {

constexpr std::int64_t kNodeMax = std::numeric_limits<NodeId>::max();

TEST(ToNode, ExactBoundaries) {
  // 2^31 - 1 is the last representable node id, from every integral width.
  EXPECT_EQ(to_node(std::int64_t{kNodeMax}), kNodeMax);
  EXPECT_EQ(to_node(std::uint64_t{0x7fffffffu}), kNodeMax);
  EXPECT_EQ(to_node(std::size_t{0x7fffffffu}), kNodeMax);
  EXPECT_EQ(to_node(0), 0);
  EXPECT_EQ(to_node(std::int16_t{-5}), -5);  // in-range negatives pass through
}

TEST(ToNode, DebugAssertsAboveRange) {
  // 2^31 (first unrepresentable) and 2^32 (the classic size_t truncation
  // that would silently read as 0) both trip the Debug assert.
  EXPECT_DEBUG_DEATH((void)to_node(std::int64_t{kNodeMax} + 1),
                     "to_node: value exceeds NodeId range");
  EXPECT_DEBUG_DEATH((void)to_node(std::uint64_t{1} << 32),
                     "to_node: value exceeds NodeId range");
}

TEST(ToNode, DebugAssertsOnNegativeOutOfRange) {
  EXPECT_DEBUG_DEATH(
      (void)to_node(std::numeric_limits<std::int64_t>::min()),
      "to_node: value exceeds NodeId range");
}

#ifdef NDEBUG
TEST(ToNode, ReleaseIsABareStaticCast) {
  // Release contract: no check, no cost — bit-identical to static_cast.
  // (Covered implicitly by EXPECT_DEBUG_DEATH above, asserted explicitly
  // here so an accidental always-on check fails loudly.)
  const auto big = (std::uint64_t{1} << 32) | 7u;
  EXPECT_EQ(to_node(big), static_cast<NodeId>(big));
}
#endif

TEST(ToEdge, BoundariesAndWidths) {
  constexpr auto kEdgeMax = std::numeric_limits<EdgeId>::max();
  EXPECT_EQ(to_edge(std::uint64_t{0x7fffffffffffffffu}), kEdgeMax);
  EXPECT_EQ(to_edge(std::size_t{1} << 32), EdgeId{1} << 32);
  EXPECT_EQ(to_edge(-1), EdgeId{-1});
  EXPECT_DEBUG_DEATH(
      (void)to_edge(std::numeric_limits<std::uint64_t>::max()),
      "to_edge: value exceeds EdgeId range");
}

TEST(CheckedMul64, WidensBeforeMultiplying) {
  // The PR 6 class: a 32-bit degree squared. 70'000² overflows int32; the
  // helper computes it in 64 bits.
  const NodeId d = 70'000;
  EXPECT_EQ(checked_mul64(d, d), std::uint64_t{4'900'000'000u});
  EXPECT_EQ(checked_mul64(0, 12345), 0u);
  EXPECT_EQ(checked_mul64(std::uint32_t{1} << 31, std::uint32_t{1} << 31),
            std::uint64_t{1} << 62);
}

TEST(CheckedMul64, DebugAssertsOnOverflowAndSign) {
  EXPECT_DEBUG_DEATH(
      (void)checked_mul64(std::uint64_t{1} << 32, std::uint64_t{1} << 32),
      "checked_mul64: product overflows uint64");
  EXPECT_DEBUG_DEATH((void)checked_mul64(-1, 2),
                     "checked_mul64: negative operand");
  EXPECT_DEBUG_DEATH((void)checked_mul64(2, std::int64_t{-7}),
                     "checked_mul64: negative operand");
}

TEST(CheckedMul64, MixedWidthsAndSignedness) {
  EXPECT_EQ(checked_mul64(std::int16_t{300}, std::uint64_t{1} << 32),
            std::uint64_t{300} << 32);
  EXPECT_EQ(checked_mul64(EdgeId{1} << 40, 8), std::uint64_t{1} << 43);
}

}  // namespace
}  // namespace dcl

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "enumeration/clique_enumeration.h"

namespace dcl {
namespace {

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  Rng rng(1);
  for (const EdgeId m : {0, 1, 50, 300}) {
    const Graph g = erdos_renyi_gnm(40, m, rng);
    EXPECT_EQ(g.node_count(), 40);
    EXPECT_EQ(g.edge_count(), m);
  }
}

TEST(ErdosRenyiGnm, DensePathReachesCompleteGraph) {
  Rng rng(2);
  const EdgeId full = 20 * 19 / 2;
  const Graph g = erdos_renyi_gnm(20, full, rng);
  EXPECT_EQ(g.edge_count(), full);
  const Graph g2 = erdos_renyi_gnm(20, full - 3, rng);
  EXPECT_EQ(g2.edge_count(), full - 3);
}

TEST(ErdosRenyiGnm, RejectsImpossibleM) {
  Rng rng(3);
  EXPECT_THROW(erdos_renyi_gnm(5, 11, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_gnm(5, -1, rng), std::invalid_argument);
}

TEST(ErdosRenyiGnp, EdgeCountConcentrates) {
  Rng rng(4);
  const NodeId n = 200;
  const double p = 0.1;
  double total = 0;
  for (int rep = 0; rep < 10; ++rep) {
    total += static_cast<double>(erdos_renyi_gnp(n, p, rng).edge_count());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / 10.0, expected, expected * 0.1);
}

TEST(ErdosRenyiGnp, ExtremeProbabilities) {
  Rng rng(5);
  EXPECT_EQ(erdos_renyi_gnp(30, 0.0, rng).edge_count(), 0);
  EXPECT_EQ(erdos_renyi_gnp(30, 1.0, rng).edge_count(), 30 * 29 / 2);
  EXPECT_THROW(erdos_renyi_gnp(10, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_gnp(10, -0.1, rng), std::invalid_argument);
}

TEST(ErdosRenyiGnp, TinyGraphs) {
  Rng rng(6);
  EXPECT_EQ(erdos_renyi_gnp(0, 0.5, rng).node_count(), 0);
  EXPECT_EQ(erdos_renyi_gnp(1, 0.9, rng).edge_count(), 0);
}

TEST(PlantedClique, CliqueIsPresent) {
  Rng rng(7);
  const auto planted = planted_clique(60, 8, 0.05, rng);
  EXPECT_EQ(planted.clique_nodes.size(), 8u);
  EXPECT_TRUE(is_clique(planted.graph, planted.clique_nodes));
}

TEST(PlantedClique, RejectsOversizedClique) {
  Rng rng(8);
  EXPECT_THROW(planted_clique(5, 6, 0.1, rng), std::invalid_argument);
}

TEST(StochasticBlockModel, RespectsBlockDensities) {
  Rng rng(9);
  const Graph g = stochastic_block_model({50, 50}, 0.5, 0.02, rng);
  EXPECT_EQ(g.node_count(), 100);
  std::int64_t within = 0, across = 0;
  for (const Edge& e : g.edges()) {
    const bool same = (e.u < 50) == (e.v < 50);
    (same ? within : across) += 1;
  }
  // E[within] = 2 * C(50,2) * 0.5 = 1225; E[across] = 2500 * 0.02 = 50.
  EXPECT_NEAR(static_cast<double>(within), 1225, 200);
  EXPECT_NEAR(static_cast<double>(across), 50, 35);
}

TEST(PowerLawChungLu, SkewedDegreesWithTargetAverage) {
  Rng rng(10);
  const Graph g = power_law_chung_lu(300, 2.5, 8.0, rng);
  EXPECT_EQ(g.node_count(), 300);
  EXPECT_NEAR(g.average_degree(), 8.0, 2.5);
  // Skew: earliest node's degree should dwarf the median.
  EXPECT_GT(g.degree(0), 3 * 8);
}

TEST(RandomRegular, ExactDegrees) {
  Rng rng(11);
  const Graph g = random_regular(50, 6, rng);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(g.degree(v), 6);
  }
}

TEST(RandomRegular, RejectsInvalidParameters) {
  Rng rng(12);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);  // n*d odd
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);  // d >= n
}

TEST(ClosedForms, CompleteGraph) {
  const Graph g = complete_graph(7);
  EXPECT_EQ(g.edge_count(), 21);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6);
}

TEST(ClosedForms, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.edge_count(), 12);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 4);
  for (NodeId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(ClosedForms, StarPathCycleEmpty) {
  const Graph star = star_graph(6);
  EXPECT_EQ(star.degree(0), 5);
  EXPECT_EQ(star.edge_count(), 5);

  const Graph path = path_graph(5);
  EXPECT_EQ(path.edge_count(), 4);
  EXPECT_EQ(path.degree(0), 1);
  EXPECT_EQ(path.degree(2), 2);

  const Graph cyc = cycle_graph(5);
  EXPECT_EQ(cyc.edge_count(), 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(cyc.degree(v), 2);

  EXPECT_EQ(empty_graph(9).edge_count(), 0);
  EXPECT_EQ(cycle_graph(2).edge_count(), 1);  // degenerates to path
}

TEST(DisjointUnion, ShiftsSecondGraph) {
  const Graph g = disjoint_union(complete_graph(3), path_graph(3));
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 3 + 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
  EXPECT_EQ(g.connected_components().second, 2);
}

TEST(Generators, Deterministic) {
  Rng a(99), b(99);
  const Graph ga = erdos_renyi_gnm(50, 200, a);
  const Graph gb = erdos_renyi_gnm(50, 200, b);
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (EdgeId e = 0; e < ga.edge_count(); ++e) {
    ASSERT_EQ(ga.edge(e), gb.edge(e));
  }
}

}  // namespace
}  // namespace dcl

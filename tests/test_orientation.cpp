#include "graph/orientation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"

namespace dcl {
namespace {

TEST(DegeneracyOrder, KnownValues) {
  EXPECT_EQ(degeneracy_order(complete_graph(6)).degeneracy, 5);
  EXPECT_EQ(degeneracy_order(path_graph(10)).degeneracy, 1);
  EXPECT_EQ(degeneracy_order(cycle_graph(10)).degeneracy, 2);
  EXPECT_EQ(degeneracy_order(star_graph(10)).degeneracy, 1);
  EXPECT_EQ(degeneracy_order(empty_graph(5)).degeneracy, 0);
  EXPECT_EQ(degeneracy_order(complete_bipartite(3, 7)).degeneracy, 3);
}

TEST(DegeneracyOrder, IsAPermutation) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(80, 600, rng);
  const auto dec = degeneracy_order(g);
  ASSERT_EQ(dec.order.size(), 80u);
  std::vector<bool> seen(80, false);
  for (const NodeId v : dec.order) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(DegeneracyOrder, EveryNodeHasFewLaterNeighbors) {
  // The defining property: each node has at most `degeneracy` neighbors
  // later in the order.
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(100, 900, rng);
  const auto dec = degeneracy_order(g);
  std::vector<NodeId> rank(100);
  for (std::size_t i = 0; i < dec.order.size(); ++i) {
    rank[static_cast<std::size_t>(dec.order[i])] = static_cast<NodeId>(i);
  }
  for (NodeId v = 0; v < 100; ++v) {
    NodeId later = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (rank[static_cast<std::size_t>(w)] > rank[static_cast<std::size_t>(v)]) {
        ++later;
      }
    }
    EXPECT_LE(later, dec.degeneracy);
  }
}

/// Reference copy of the historical per-bucket-stack peel (LIFO with lazy
/// deletion of stale entries). The production implementation was rewritten
/// around intrusive bucket lists for speed, but its pop order — and
/// therefore the orientation the Kp pipeline's round ledger is built on —
/// must stay bit-identical to this rule.
DegeneracyResult reference_degeneracy_order(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DegeneracyResult result;
  result.order.reserve(n);
  result.core_number.assign(n, 0);
  if (n == 0) return result;
  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    max_deg = std::max(max_deg, g.degree(v));
  }
  struct Entry {
    NodeId node;
    std::int32_t next;
  };
  std::vector<Entry> arena;
  std::vector<std::int32_t> head(static_cast<std::size_t>(max_deg) + 1, -1);
  const auto push = [&](std::size_t bucket, NodeId v) {
    arena.push_back(Entry{v, head[bucket]});
    head[bucket] = static_cast<std::int32_t>(arena.size()) - 1;
  };
  for (NodeId v = 0; v < g.node_count(); ++v) {
    push(static_cast<std::size_t>(deg[static_cast<std::size_t>(v)]), v);
  }
  NodeId current_core = 0;
  std::size_t cursor = 0;
  for (std::size_t peeled = 0; peeled < n; ++peeled) {
    while (cursor < head.size() && head[cursor] < 0) ++cursor;
    while (true) {
      const NodeId v = arena[static_cast<std::size_t>(head[cursor])].node;
      head[cursor] = arena[static_cast<std::size_t>(head[cursor])].next;
      const auto vi = static_cast<std::size_t>(v);
      if (deg[vi] == static_cast<NodeId>(cursor)) {
        current_core = std::max(current_core, static_cast<NodeId>(cursor));
        result.core_number[vi] = current_core;
        result.order.push_back(v);
        deg[vi] = -1;
        for (NodeId w : g.neighbors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (deg[wi] >= 0) {
            --deg[wi];
            push(static_cast<std::size_t>(deg[wi]), w);
            if (static_cast<std::size_t>(deg[wi]) < cursor) {
              cursor = static_cast<std::size_t>(deg[wi]);
            }
          }
        }
        break;
      }
      while (cursor < head.size() && head[cursor] < 0) ++cursor;
    }
  }
  result.degeneracy = current_core;
  return result;
}

TEST(DegeneracyOrder, MatchesHistoricalPopOrderExactly) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<NodeId>(2 + rng.next_below(90));
    const auto max_m =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
    const auto m = static_cast<std::int64_t>(rng.next_below(max_m + 1));
    const Graph g = erdos_renyi_gnm(n, m, rng);
    const auto got = degeneracy_order(g);
    const auto want = reference_degeneracy_order(g);
    ASSERT_EQ(got.order, want.order) << "n=" << n << " m=" << m;
    ASSERT_EQ(got.core_number, want.core_number);
    ASSERT_EQ(got.degeneracy, want.degeneracy);
  }
}

TEST(DegeneracyOrder, CoreNumbersMonotone) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(60, 300, rng);
  const auto dec = degeneracy_order(g);
  // Core numbers along the peeling order never decrease.
  NodeId prev = 0;
  for (const NodeId v : dec.order) {
    EXPECT_GE(dec.core_number[static_cast<std::size_t>(v)], prev);
    prev = dec.core_number[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(prev, dec.degeneracy);
}

TEST(Orientation, DegeneracyOrientationBoundsOutDegree) {
  Rng rng(4);
  const Graph g = erdos_renyi_gnm(120, 1500, rng);
  const auto dec = degeneracy_order(g);
  const Orientation o = degeneracy_orientation(g);
  EXPECT_LE(o.max_out_degree(), dec.degeneracy);
}

TEST(Orientation, TailHeadConsistent) {
  const Graph g = complete_graph(5);
  const Orientation o = degeneracy_orientation(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    const NodeId t = o.tail(e), h = o.head(e);
    EXPECT_NE(t, h);
    EXPECT_TRUE((t == ed.u && h == ed.v) || (t == ed.v && h == ed.u));
  }
}

TEST(Orientation, OutCsrMatchesTails) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnm(50, 300, rng);
  const Orientation o = degeneracy_orientation(g);
  std::int64_t total = 0;
  for (NodeId v = 0; v < 50; ++v) {
    const auto heads = o.out_neighbors(v);
    const auto eids = o.out_edges(v);
    ASSERT_EQ(heads.size(), eids.size());
    total += static_cast<std::int64_t>(heads.size());
    for (std::size_t i = 0; i < heads.size(); ++i) {
      EXPECT_EQ(o.tail(eids[i]), v);
      EXPECT_EQ(o.head(eids[i]), heads[i]);
    }
  }
  EXPECT_EQ(total, g.edge_count());  // every edge has exactly one tail
}

TEST(Orientation, FromDirectionsRoundTrip) {
  const Graph g = path_graph(4);
  std::vector<bool> away = {true, false, true};
  const Orientation o = Orientation::from_directions(g, away);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(o.away_from_lower(e), static_cast<bool>(away[static_cast<std::size_t>(e)]));
  }
}

TEST(Orientation, FromOrderValidation) {
  const Graph g = path_graph(3);
  const std::vector<NodeId> bad_size = {0, 1};
  EXPECT_THROW(Orientation::from_order(g, bad_size), std::invalid_argument);
  const std::vector<NodeId> not_perm = {0, 0, 2};
  EXPECT_THROW(Orientation::from_order(g, not_perm), std::invalid_argument);
  const std::vector<NodeId> ok = {2, 0, 1};
  const Orientation o = Orientation::from_order(g, ok);
  // Edge {0,1}: 0 is later than 1? order = [2,0,1], rank(0)=1 < rank(1)=2,
  // so 0 -> 1.
  EXPECT_EQ(o.tail(*g.edge_id(0, 1)), 0);
  // Edge {1,2}: rank(2)=0 < rank(1)=2, so 2 -> 1.
  EXPECT_EQ(o.tail(*g.edge_id(1, 2)), 2);
}

TEST(Orientation, AcyclicFromOrder) {
  // Orientations from an order are acyclic: follow out-edges, ranks only
  // increase.
  Rng rng(6);
  const Graph g = erdos_renyi_gnm(40, 200, rng);
  const auto dec = degeneracy_order(g);
  const Orientation o = Orientation::from_order(g, dec.order);
  std::vector<NodeId> rank(40);
  for (std::size_t i = 0; i < dec.order.size(); ++i) {
    rank[static_cast<std::size_t>(dec.order[i])] = static_cast<NodeId>(i);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_LT(rank[static_cast<std::size_t>(o.tail(e))],
              rank[static_cast<std::size_t>(o.head(e))]);
  }
}

}  // namespace
}  // namespace dcl

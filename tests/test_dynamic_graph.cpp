// DynamicGraph: slack-CSR adjacency under batched insert/erase, stable
// edge ids, and snapshot equivalence against a std::set<Edge> model.
#include "dynamic/dynamic_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"

namespace dcl {
namespace {

void expect_matches_model(const DynamicGraph& d, const std::set<Edge>& model,
                          NodeId n) {
  ASSERT_EQ(d.node_count(), n);
  ASSERT_EQ(d.edge_count(), static_cast<EdgeId>(model.size()));
  // Snapshot is exactly the model's edge set.
  const Graph snap = d.snapshot();
  ASSERT_EQ(snap.edge_count(), static_cast<EdgeId>(model.size()));
  EXPECT_TRUE(std::equal(snap.edges().begin(), snap.edges().end(),
                         model.begin(), model.end()));
  // Adjacency is sorted, edge-id-aligned, and consistent with edge().
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = d.neighbors(v);
    const auto eids = d.incident_edges(v);
    ASSERT_EQ(nbrs.size(), eids.size());
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_TRUE(model.count(make_edge(v, nbrs[i])));
      EXPECT_TRUE(d.is_live(eids[i]));
      EXPECT_EQ(d.edge(eids[i]), make_edge(v, nbrs[i]));
    }
  }
}

TEST(DynamicGraph, InsertEraseBasics) {
  DynamicGraph d(5);
  EXPECT_EQ(d.edge_count(), 0);
  const auto [e01, fresh01] = d.insert_edge(0, 1);
  EXPECT_TRUE(fresh01);
  EXPECT_EQ(e01, 0);
  // Reversed endpoint order resolves to the same edge.
  const auto [again, fresh_again] = d.insert_edge(1, 0);
  EXPECT_FALSE(fresh_again);
  EXPECT_EQ(again, e01);
  const auto [e12, fresh12] = d.insert_edge(1, 2);
  EXPECT_TRUE(fresh12);
  EXPECT_EQ(e12, 1);
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_TRUE(d.has_edge(2, 1));
  EXPECT_FALSE(d.has_edge(0, 2));
  EXPECT_EQ(d.degree(1), 2);

  // Erase recycles the id for the next insert (LIFO).
  EXPECT_EQ(d.erase_edge(0, 1), std::optional<EdgeId>(e01));
  EXPECT_FALSE(d.is_live(e01));
  EXPECT_EQ(d.erase_edge(0, 1), std::nullopt);
  const auto [e23, fresh23] = d.insert_edge(2, 3);
  EXPECT_TRUE(fresh23);
  EXPECT_EQ(e23, e01);
  EXPECT_EQ(d.edge(e23), make_edge(2, 3));
  EXPECT_EQ(d.edge_id_bound(), 2);
}

TEST(DynamicGraph, RejectsBadEndpoints) {
  DynamicGraph d(4);
  EXPECT_THROW(d.insert_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(d.insert_edge(0, 4), std::invalid_argument);
  EXPECT_THROW(d.erase_edge(-1, 2), std::invalid_argument);
  EXPECT_FALSE(d.has_edge(0, 17));  // queries are total, not throwing
}

TEST(DynamicGraph, FromGraphPreservesStaticIds) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnm(40, 160, rng);
  const DynamicGraph d = DynamicGraph::from_graph(g);
  ASSERT_EQ(d.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_TRUE(d.is_live(e));
    EXPECT_EQ(d.edge(e), g.edge(e));
    EXPECT_EQ(d.edge_id(g.edge(e).u, g.edge(e).v), std::optional<EdgeId>(e));
  }
}

TEST(DynamicGraph, RandomizedDifferentialAgainstSetModel) {
  Rng rng(1);
  const NodeId n = 30;
  DynamicGraph d(n);
  std::set<Edge> model;
  for (int op = 0; op < 4000; ++op) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    auto v = static_cast<NodeId>(rng.next_below(n - 1));
    if (v >= u) ++v;
    const Edge e = make_edge(u, v);
    // Biased toward inserts early, erases late, so both live-set growth
    // and shrinkage (with id recycling) are exercised.
    const bool do_insert = rng.next_bool(op < 2000 ? 0.7 : 0.3);
    if (do_insert) {
      const auto [id, fresh] = d.insert_edge(u, v);
      EXPECT_EQ(fresh, model.insert(e).second);
      EXPECT_EQ(d.edge(id), e);
    } else {
      const auto id = d.erase_edge(u, v);
      EXPECT_EQ(id.has_value(), model.erase(e) > 0);
    }
    if (op % 200 == 199) expect_matches_model(d, model, n);
  }
  expect_matches_model(d, model, n);
}

TEST(DynamicGraph, SlackRelocationAndCompaction) {
  // A hub node forces repeated segment growth; mass deletion then forces
  // a compaction. Adjacency must stay exact throughout.
  const NodeId n = 400;
  DynamicGraph d(n);
  for (NodeId v = 1; v < n; ++v) {
    d.insert_edge(0, v);
  }
  EXPECT_EQ(d.degree(0), n - 1);
  EXPECT_GT(d.relocations(), 0u);
  const auto nbrs = d.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  // Tear the hub down (the arena is now mostly dead slack), then grow a
  // different segment: the next relocation must compact.
  for (NodeId v = 1; v < n; ++v) {
    d.erase_edge(0, v);
  }
  for (NodeId v = 2; v < n; ++v) {
    d.insert_edge(1, v);
  }
  EXPECT_GT(d.compactions(), 0u);
  std::set<Edge> model;
  for (NodeId v = 2; v < n; ++v) model.insert(make_edge(1, v));
  expect_matches_model(d, model, n);
}

}  // namespace
}  // namespace dcl

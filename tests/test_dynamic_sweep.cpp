// Slow sweeps for the batch-dynamic engine (ctest label: slow): longer
// streams over all four update-stream families, p ∈ {3,4,5}, checked
// against a from-scratch static recompute at every checkpoint. The fast
// counterpart (small instances, edge cases) is test_dynamic_lister.cpp.
#include "dynamic/dynamic_lister.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/workloads.h"

namespace dcl {
namespace {

CliqueSet static_recompute(const Graph& g, int p) {
  CliqueSet expected;
  const auto all = list_k_cliques(g, p);
  expected.reserve(all.size());
  for (const auto& c : all) expected.insert(c);
  return expected;
}

void sweep(const UpdateStream& stream, int p) {
  DynamicLister lister(Graph::from_edges(stream.n, stream.initial), p);
  std::uint64_t batch_index = 0;
  for (const UpdateBatch& batch : stream.batches) {
    lister.apply(batch);
    const CliqueSet expected =
        static_recompute(lister.graph().snapshot(), p);
    ASSERT_EQ(lister.clique_count(), expected.size())
        << "p=" << p << " batch=" << batch_index;
    ASSERT_TRUE(lister.cliques() == expected)
        << "p=" << p << " batch=" << batch_index;
    ASSERT_EQ(lister.fingerprint(), expected.fingerprint())
        << "p=" << p << " batch=" << batch_index;
    ++batch_index;
  }
}

TEST(DynamicSweep, SlidingWindow) {
  for (const int p : {3, 4, 5}) {
    Rng rng(100 + static_cast<std::uint64_t>(p));
    sweep(sliding_window_stream(110, 40, 60, 6, rng), p);
  }
}

TEST(DynamicSweep, Churn) {
  for (const int p : {3, 4, 5}) {
    Rng rng(200 + static_cast<std::uint64_t>(p));
    sweep(churn_stream(100, 1200, 40, 40, rng), p);
  }
}

TEST(DynamicSweep, DensifyingCommunity) {
  for (const int p : {3, 4, 5}) {
    Rng rng(300 + static_cast<std::uint64_t>(p));
    sweep(densifying_community_stream(90, 5, 36, 36, rng), p);
  }
}

TEST(DynamicSweep, BuildTeardown) {
  for (const int p : {3, 4, 5}) {
    Rng rng(400 + static_cast<std::uint64_t>(p));
    sweep(build_teardown_stream(84, 900, 20, rng), p);
  }
}

}  // namespace
}  // namespace dcl

#include "expander/spectral.h"

#include <gtest/gtest.h>

#include "common/parallel_for.h"
#include "graph/generators.h"

namespace dcl {
namespace {

/// Restores the shard count on scope exit (mirrors test_parallel_for.cpp).
class ScopedShardThreads {
 public:
  explicit ScopedShardThreads(int threads) { set_shard_threads(threads); }
  ~ScopedShardThreads() { set_shard_threads(1); }
};

TEST(Lambda2, ShardedRowsAreBitIdentical) {
  // apply_lazy_walk shards rows over the worker pool; every double the
  // power iteration produces must be exactly the sequential value at any
  // shard count — same per-row summation order, disjoint row writes.
  Rng build_rng(42);
  const Graph g = random_regular(150, 6, build_rng);
  Rng vec_a(5), vec_b(5), l2_a(7), l2_b(7);
  const auto sequential = second_eigenvector(g, vec_a, 60);
  const double l2_seq = lazy_walk_lambda2(g, l2_a, 80);
  {
    ScopedShardThreads threads(4);
    const auto sharded = second_eigenvector(g, vec_b, 60);
    EXPECT_EQ(sequential, sharded);
    EXPECT_EQ(l2_seq, lazy_walk_lambda2(g, l2_b, 80));
  }
}

TEST(Lambda2, CompleteGraphHasLargeGap) {
  Rng rng(1);
  const Graph g = complete_graph(20);
  // Lazy walk on K_n: λ₂ = 1/2 - 1/(2(n-1)) ≈ 0.47.
  const double l2 = lazy_walk_lambda2(g, rng);
  EXPECT_LT(l2, 0.6);
}

TEST(Lambda2, LongCycleHasTinyGap) {
  Rng rng(2);
  const Graph g = cycle_graph(200);
  // Lazy walk on C_n: λ₂ = 1/2 + cos(2π/n)/2 → very close to 1.
  const double l2 = lazy_walk_lambda2(g, rng, 600);
  EXPECT_GT(l2, 0.99);
}

TEST(Lambda2, ExpanderBeatsCycle) {
  Rng rng(3);
  const Graph expander = random_regular(100, 8, rng);
  const Graph cyc = cycle_graph(100);
  EXPECT_LT(lazy_walk_lambda2(expander, rng, 400),
            lazy_walk_lambda2(cyc, rng, 400));
}

TEST(MixingTime, OrdersFamiliesCorrectly) {
  Rng rng(4);
  const double t_expander = mixing_time_estimate(random_regular(128, 8, rng), rng, 400);
  const double t_cycle = mixing_time_estimate(cycle_graph(128), rng, 400);
  EXPECT_LT(t_expander * 10, t_cycle);
  EXPECT_LT(t_expander, 60.0);  // polylog-ish for an expander
}

TEST(SweepCut, FindsDumbbellBridge) {
  // Two K10's joined by a single edge: conductance of the planted cut is
  // 1/90; the sweep must find something comparably sparse.
  Graph g = disjoint_union(complete_graph(10), complete_graph(10));
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  edges.push_back({9, 10});
  g = Graph::from_edges(20, std::move(edges));

  Rng rng(5);
  const auto embedding = second_eigenvector(g, rng, 400);
  const Cut cut = sweep_cut(g, embedding);
  EXPECT_LE(cut.conductance, 2.0 / 90.0);
  EXPECT_EQ(cut.side.size(), 10u);
  EXPECT_EQ(cut.cut_edges, 1);
}

TEST(SweepCut, SbmRecoversPlantedCut) {
  Rng rng(6);
  const Graph g = stochastic_block_model({40, 40}, 0.5, 0.01, rng);
  const auto embedding = second_eigenvector(g, rng, 300);
  const Cut cut = sweep_cut(g, embedding);
  // The planted cut has conductance ≈ 16 cut edges / 800 volume = 0.02.
  EXPECT_LT(cut.conductance, 0.1);
  // The side should be (close to) one block.
  int first_block = 0;
  for (const NodeId v : cut.side) first_block += (v < 40) ? 1 : 0;
  const auto side_size = static_cast<int>(cut.side.size());
  EXPECT_TRUE(first_block >= side_size - 2 || first_block <= 2);
}

TEST(SweepCut, ConductanceMatchesExactRecount) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnm(40, 160, rng);
  const auto embedding = second_eigenvector(g, rng, 200);
  const Cut cut = sweep_cut(g, embedding);
  EXPECT_NEAR(cut.conductance, conductance_of(g, cut.side), 1e-12);
}

TEST(SweepCut, RequiresEdges) {
  const Graph g = empty_graph(5);
  EXPECT_THROW(sweep_cut(g, std::vector<double>(5, 0.0)),
               std::invalid_argument);
}

TEST(ConductanceOf, HandValues) {
  const Graph g = path_graph(4);  // edges 0-1, 1-2, 2-3; volume 6
  // side {0}: cut 1, vol 1 -> 1.
  EXPECT_DOUBLE_EQ(conductance_of(g, {0}), 1.0);
  // side {0,1}: cut 1, vol 3 -> 1/3.
  EXPECT_DOUBLE_EQ(conductance_of(g, {0, 1}), 1.0 / 3.0);
  // whole graph: no valid cut -> 1.
  EXPECT_DOUBLE_EQ(conductance_of(g, {0, 1, 2, 3}), 1.0);
}

TEST(SecondEigenvector, DeterministicUnderSeed) {
  const Graph g = cycle_graph(30);
  Rng a(9), b(9);
  const auto ea = second_eigenvector(g, a, 50);
  const auto eb = second_eigenvector(g, b, 50);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i], eb[i]);
  }
}

}  // namespace
}  // namespace dcl

// M3 — substrate micro-benchmarks: the CONGEST / CONGESTED CLIQUE
// simulators, spectral tools, and the expander decomposition.
// Self-timed (min-of-k); usage: bench_m3 [--out FILE].
#include <cstring>

#include "bench_util.h"
#include "congest/clique_network.h"
#include "congest/congest_network.h"
#include "expander/decomposition.h"
#include "expander/spectral.h"
#include "graph/generators.h"

namespace dcl::bench {
namespace {

int run(const char* out_path) {
  BenchReport report("bench_m3_simulator");

  {
    Rng rng(1);
    const Graph g = erdos_renyi_gnm(1024, 16384, rng);
    CongestNetwork net(g);
    report.add(time_kernel(
        "congest_phase_throughput/n1024_m16384",
        [&] {
          net.begin_phase("bench");
          for (NodeId v = 0; v < g.node_count(); ++v) {
            for (const NodeId w : g.neighbors(v)) {
              net.send(v, w, Message{.tag = 1, .a = v, .b = w});
            }
          }
          return static_cast<std::uint64_t>(net.end_phase());
        },
        static_cast<double>(2 * g.edge_count())));
  }

  {
    CliqueNetwork net(256, CliqueRoutingMode::lenzen);
    Rng rng(2);
    report.add(time_kernel(
        "clique_phase_lenzen/n256_20k",
        [&] {
          net.begin_phase("bench");
          for (int i = 0; i < 20000; ++i) {
            const auto a = static_cast<NodeId>(rng.next_below(256));
            auto b = static_cast<NodeId>(rng.next_below(255));
            if (b >= a) ++b;
            net.send(a, b, Message{.tag = i});
          }
          return static_cast<std::uint64_t>(net.end_phase());
        },
        20000.0));
  }

  for (const int n : {512, 2048}) {
    Rng rng(3);
    const Graph g = erdos_renyi_gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(10LL * n), rng);
    report.add(time_kernel(
        std::string("second_eigenvector/n=") + std::to_string(n), [&] {
          Rng eig_rng(3);
          const auto vec = second_eigenvector(g, eig_rng, 120);
          return static_cast<std::uint64_t>(vec.size());
        }));
  }

  for (const int n : {512, 2048}) {
    Rng rng(4);
    const Graph g = erdos_renyi_gnm(static_cast<NodeId>(n),
                                    static_cast<EdgeId>(12LL * n), rng);
    DecompositionConfig cfg;
    // Absolute degree target keeps both sizes in the cluster-forming regime
    // (at n^{0.55} the larger instance would peel without any spectral work).
    cfg.absolute_degree = 8;
    report.add(time_kernel(
        std::string("expander_decomposition/n=") + std::to_string(n), [&] {
          Rng deco_rng(4);
          return static_cast<std::uint64_t>(
              expander_decompose(g, static_cast<NodeId>(n), cfg, deco_rng)
                  .clusters.size());
        }));
  }

  return finish_report(report, out_path);
}

}  // namespace
}  // namespace dcl::bench

int main(int argc, char** argv) {
  return dcl::bench::bench_main(argc, argv, dcl::bench::run);
}

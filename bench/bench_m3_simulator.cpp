// M3 — substrate micro-benchmarks: the CONGEST / CONGESTED CLIQUE
// simulators, spectral tools, and the expander decomposition.
#include <benchmark/benchmark.h>

#include "congest/clique_network.h"
#include "congest/congest_network.h"
#include "expander/decomposition.h"
#include "expander/spectral.h"
#include "graph/generators.h"

namespace dcl {
namespace {

void BM_CongestPhaseThroughput(benchmark::State& state) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(1024, 16384, rng);
  CongestNetwork net(g);
  std::uint64_t sent = 0;
  for (auto _ : state) {
    net.begin_phase("bench");
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const NodeId w : g.neighbors(v)) {
        net.send(v, w, Message{.tag = 1, .a = v, .b = w});
        ++sent;
      }
    }
    benchmark::DoNotOptimize(net.end_phase());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_CongestPhaseThroughput)->Unit(benchmark::kMillisecond);

void BM_CliquePhaseLenzen(benchmark::State& state) {
  CliqueNetwork net(256, CliqueRoutingMode::lenzen);
  Rng rng(2);
  for (auto _ : state) {
    net.begin_phase("bench");
    for (int i = 0; i < 20000; ++i) {
      const auto a = static_cast<NodeId>(rng.next_below(256));
      auto b = static_cast<NodeId>(rng.next_below(255));
      if (b >= a) ++b;
      net.send(a, b, Message{.tag = i});
    }
    benchmark::DoNotOptimize(net.end_phase());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CliquePhaseLenzen)->Unit(benchmark::kMillisecond);

void BM_SecondEigenvector(benchmark::State& state) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(static_cast<NodeId>(state.range(0)),
                                  static_cast<EdgeId>(10 * state.range(0)),
                                  rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(second_eigenvector(g, rng, 120));
  }
}
BENCHMARK(BM_SecondEigenvector)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_ExpanderDecomposition(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = erdos_renyi_gnm(n, static_cast<EdgeId>(12LL * n), rng);
  DecompositionConfig cfg;
  // Absolute degree target keeps both sizes in the cluster-forming regime
  // (at n^{0.55} the larger instance would peel without any spectral work).
  cfg.absolute_degree = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expander_decompose(g, n, cfg, rng));
  }
}
BENCHMARK(BM_ExpanderDecomposition)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcl

BENCHMARK_MAIN();

// E5 — the paper's §1 comparison landscape.
//
// Head-to-head measured rounds: our Theorem 1.1 lister vs the Eden-style
// one-shot baseline vs the trivial Δ-round broadcast (the only prior
// sub-quadratic option for p ≥ 6). We report absolute rounds, the
// message-level (exchange-kind) rounds — which carry none of the Õ(·)
// polylog charges — and fitted exponents. The reproduction claim is about
// *scaling*: our exponent must sit below the baselines'; at simulable n the
// polylog factors inside T2.3/T2.4 keep absolute totals above Δ (the
// crossover analysis is recorded in EXPERIMENTS.md).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "core/kp_lister.h"

int main() {
  using namespace dcl;
  std::printf("E5: §1 comparison — ours vs one-shot (Eden-style) vs trivial "
              "broadcast.\n");
  const std::vector<NodeId> sizes = {181, 256, 362, 512};
  for (const int p : {4, 6}) {
    std::printf("\n-- p = %d --\n", p);
    Table table({"n", "m", "ours total", "ours msg-level", "one-shot",
                 "trivial (Δ)", "msg-level/Δ"});
    std::vector<double> ns, ours_series, oneshot_series, trivial_series,
        msg_series;
    for (const NodeId n : sizes) {
      Rng rng(static_cast<std::uint64_t>(n) * 13 + static_cast<std::uint64_t>(p));
      const Graph g = erdos_renyi_gnp(n, 0.12, rng);  // dense regime
      KpConfig cfg;
      cfg.p = p;
      cfg.stop_scale = 0.15;
      const auto ours = list_kp(g, cfg);
      ListingOutput o1(n), o2(n);
      // δ = 0.5 keeps the one-shot decomposition in its cluster-forming
      // regime across the whole sweep (at δ = 2/3 the n ≤ ~200 points
      // degenerate to pure broadcast and the series is bimodal).
      const auto oneshot = one_shot_list(g, p, o1, /*delta=*/0.5);
      const auto trivial = trivial_broadcast_list(g, p, o2);
      const double msg_level = ours.ledger.rounds_of_kind(CostKind::exchange);
      table.row()
          .add(static_cast<std::int64_t>(n))
          .add(g.edge_count())
          .add(ours.total_rounds(), 1)
          .add(msg_level, 1)
          .add(oneshot.total_rounds(), 1)
          .add(trivial.total_rounds(), 1)
          .add(msg_level / trivial.total_rounds(), 3);
      ns.push_back(static_cast<double>(n));
      ours_series.push_back(ours.total_rounds());
      msg_series.push_back(msg_level);
      oneshot_series.push_back(oneshot.total_rounds());
      trivial_series.push_back(trivial.total_rounds());
    }
    table.print();
    const double ours_pred = std::max(0.75, static_cast<double>(p) / (p + 2));
    bench::print_exponent("  ours (total)    ", ns, ours_series, ours_pred);
    bench::print_exponent("  one-shot        ", ns, oneshot_series,
                          p == 4 ? 5.0 / 6.0 : 1.0);
    bench::print_exponent("  trivial         ", ns, trivial_series, 1.0);
    // Crossover extrapolation: with ours ~ a·n^x and trivial ~ b·n^y
    // (y > x), ours wins beyond n* = (a/b)^{1/(y-x)}. At simulable n the
    // polylog constants inside T2.3/T2.4 keep a ≫ b, so n* lies beyond the
    // sweep — the scaling, not the absolute total, is the reproduced claim.
    const auto fo = fit_power_law(ns, ours_series);
    const auto ft = fit_power_law(ns, trivial_series);
    if (ft.slope > fo.slope) {
      const double log_nstar =
          (fo.intercept - ft.intercept) / (ft.slope - fo.slope);
      std::printf("  extrapolated ours-vs-trivial crossover: n* ≈ %.2e\n",
                  std::exp(log_nstar));
    }
  }
  return 0;
}

// E8 — the iterative invariants behind Theorems 2.8 and 2.9.
//
// Traces one full run: the outer LIST iterations must (at least) halve the
// arboricity witness A each time (§2.2: "both d_k and δ_k decrease by the
// same amount"), and within each LIST, the inner ARB-LIST iterations must
// shrink |Er| geometrically (Theorem 2.9: |Êr| ≤ |Er|/4) while the bad
// edges stay within the |Er|/25-style budget that keeps the decay intact.
#include <cstdio>

#include "bench_util.h"
#include "core/kp_lister.h"

int main() {
  using namespace dcl;
  std::printf(
      "E8: iteration traces — arboricity halving (Theorem 2.8) and Er decay "
      "(Theorem 2.9).\n");
  const NodeId n = 512;
  Rng rng(11);
  // Ring of dense blocks: the bridge edges are the only sparse-enough
  // cuts, so they populate Er for later ARB iterations.
  const Graph g = bench::ring_of_cliques_workload(n, rng, 6, 0.45);
  KpConfig cfg;
  cfg.p = 4;
  cfg.stop_scale = 0.05;  // run the outer loop as deep as it can go
  cfg.coupling_scale = 0.5;
  cfg.seed = 11;
  const auto result = list_kp(g, cfg);

  std::printf("\nOuter LIST iterations (n = %d, m = %lld):\n", n,
              static_cast<long long>(g.edge_count()));
  Table outer({"iter", "A before", "A after", "halved?", "n^δ (coupled)",
               "edges before", "edges after", "rounds"});
  for (const auto& t : result.list_traces) {
    outer.row()
        .add(t.list_iteration)
        .add(t.arboricity_bound_before)
        .add(t.arboricity_bound_after)
        .add(t.arboricity_bound_after * 2 <= t.arboricity_bound_before
                 ? "yes"
                 : "no")
        .add(t.cluster_degree)
        .add(t.edges_before)
        .add(t.edges_after)
        .add(t.rounds, 1);
  }
  outer.print();

  std::printf("\nInner ARB-LIST iterations:\n");
  Table inner({"LIST", "ARB", "|Er| before", "|Er| after", "decay",
               "goal edges", "bad edges", "bad/|Er|", "clusters",
               "heavy pairs", "max learned", "rounds"});
  for (const auto& t : result.arb_traces) {
    inner.row()
        .add(t.list_iteration)
        .add(t.arb_iteration)
        .add(t.er_before)
        .add(t.er_after)
        .add(t.er_before > 0 ? static_cast<double>(t.er_after) /
                                   static_cast<double>(t.er_before)
                             : 0.0,
             3)
        .add(t.goal_edges)
        .add(t.bad_edges)
        .add(t.er_before > 0 ? static_cast<double>(t.bad_edges) /
                                   static_cast<double>(t.er_before)
                             : 0.0,
             4)
        .add(t.clusters)
        .add(t.heavy_relationships)
        .add(t.max_learned_edges)
        .add(t.rounds, 1);
  }
  inner.print();
  std::printf(
      "\nTargets: A after ≤ A before / 2 per LIST; |Er| decay ≤ 0.25 per "
      "ARB-LIST; bad/|Er| ≤ 0.04 (paper proves 1/25).\n"
      "Total: %.1f rounds, %llu unique cliques (duplication ×%.2f).\n",
      result.total_rounds(),
      static_cast<unsigned long long>(result.unique_cliques),
      result.duplication_factor);
  return 0;
}

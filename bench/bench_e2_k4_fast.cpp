// E2 — Theorem 1.2: the K4-specialized algorithm in Õ(n^{2/3}) rounds.
//
// Side-by-side with the general Theorem 1.1 algorithm at p = 4. The two
// variants share every phase except how outside edges become known:
//   * general (§2.4.1): C-light neighbor lists are broadcast and answered,
//     and the learned edges are shipped through the cluster — this is the
//     Θ̃(n^{3/4}) "Challenge 1" term;
//   * k4_fast (§3): no C-light edges ever enter the cluster; C-light nodes
//     list their own K4s in a sequential per-cluster probe — removing the
//     n^{3/4} term and leaving Õ(n^{2/3}).
// At simulable n the shared phases dominate absolute totals (the light
// traffic is capped near n^{0.45} on any instance this small — see
// EXPERIMENTS.md), so we report the *variant-specific* phase costs, which
// must favour the k4_fast side as n grows, alongside the totals.
#include <cstdio>

#include "bench_util.h"
#include "core/kp_lister.h"

namespace dcl {
namespace {

double labels_sum(const KpListResult& r,
                  std::initializer_list<const char*> labels) {
  const auto by_label = r.ledger.rounds_by_label();
  double total = 0.0;
  for (const char* label : labels) {
    const auto it = by_label.find(label);
    if (it != by_label.end()) total += it->second;
  }
  return total;
}

}  // namespace
}  // namespace dcl

int main() {
  using namespace dcl;
  std::printf(
      "E2: Theorem 1.2 — K4 listing in Õ(n^{2/3}) vs the general "
      "Õ(n^{3/4} + n^{2/3}) algorithm.\n"
      "'variant phases' = light-list broadcast+response (general) vs "
      "light-probe (k4-fast).\n");
  const std::vector<NodeId> sizes = {181, 256, 362, 512, 724, 1024};
  Table table({"n", "m", "general total", "k4-fast total", "general variant",
               "k4-fast variant"});
  std::vector<double> ns, general_variant, fast_variant;
  for (const NodeId n : sizes) {
    double general = 0.0, fast = 0.0, gvar = 0.0, fvar = 0.0;
    EdgeId m = 0;
    const int seeds = 2;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Rng rng(seed * 104729 + static_cast<std::uint64_t>(n));
      const Graph g = bench::periphery_workload(n, rng);
      m = g.edge_count();
      KpConfig cfg;
      cfg.p = 4;
      cfg.seed = seed;
      cfg.stop_scale = 0.15;
      cfg.coupling_scale = 0.25;  // keeps the periphery below the peel bar
      const auto rg = list_kp(g, cfg);
      general += rg.total_rounds();
      gvar += labels_sum(rg, {"light-list-broadcast", "light-list-response"});
      KpConfig fast_cfg = cfg;
      fast_cfg.k4_fast = true;
      const auto rf = list_kp(g, fast_cfg);
      fast += rf.total_rounds();
      fvar += labels_sum(rf, {"k4-light-probe"});
    }
    general /= seeds;
    fast /= seeds;
    gvar /= seeds;
    fvar /= seeds;
    ns.push_back(static_cast<double>(n));
    general_variant.push_back(std::max(1.0, gvar));
    fast_variant.push_back(std::max(1.0, fvar));
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(m)
        .add(general, 1)
        .add(fast, 1)
        .add(gvar, 1)
        .add(fvar, 1);
  }
  table.print();
  bench::print_exponent("  general variant phases", ns, general_variant, 0.75);
  bench::print_exponent("  k4-fast variant phases", ns, fast_variant,
                        2.0 / 3.0);
  return 0;
}

// bench_core — the perf trajectory baseline (see docs/PERFORMANCE.md).
//
// Times the hot kernels every listing algorithm runs on (sequential
// enumeration over ER and planted-clique inputs) plus the end-to-end
// distributed Kp lister, and records fixed-seed round-ledger totals so a
// refactor can prove it changed *speed* without changing the *cost model*:
// the counters in the emitted JSON must stay bit-identical across perf PRs.
//
// Usage: bench_core [--out FILE]    (FILE defaults to "-" = stdout table +
// no JSON; tools/run_bench.sh writes BENCH_core.json). The timing loop is
// shrunk for CI smoke runs via DCL_BENCH_REPS / DCL_BENCH_MIN_MS.
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "common/parallel_for.h"
#include "common/telemetry.h"
#include "congest/clique_network.h"
#include "congest/congest_network.h"
#include "congest/engine.h"
#include "congest/fault_plan.h"
#include "core/kp_lister.h"
#include "dynamic/dynamic_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

namespace dcl::bench {
namespace {

/// BFS flood for the engine benchmark: every node re-floods once on first
/// contact — the canonical round-driven traffic pattern.
class FloodProgram : public NodeProgram {
 public:
  explicit FloodProgram(NodeId self) : self_(self) {}
  void on_start(RoundApi& api) override {
    if (self_ == 0) {
      heard_ = true;
      for (const NodeId w : api.graph().neighbors(self_)) {
        api.send(w, Message{.tag = 1});
      }
    }
  }
  bool on_round(RoundApi& api, std::span<const Delivery> received) override {
    if (heard_ || received.empty()) return false;
    heard_ = true;
    for (const NodeId w : api.graph().neighbors(self_)) {
      api.send(w, Message{.tag = 1});
    }
    return true;
  }

 private:
  NodeId self_;
  bool heard_ = false;
};

/// Message-plane benchmarks: the same fixed traffic patterns as
/// bench_m3_simulator, recorded here so the end-to-end perf anchor tracks
/// the simulators too. The per-phase round cost and the engine ledger
/// totals are fixed-seed fingerprints.
void simulator_benchmarks(BenchReport& report) {
  {
    Rng rng(1);
    const Graph g = erdos_renyi_gnm(1024, 16384, rng);
    CongestNetwork net(g);
    std::int64_t phase_rounds = 0;
    auto& t = report.add(time_kernel(
        "sim_congest_phase/n1024_m16384",
        [&] {
          net.begin_phase("bench");
          for (NodeId v = 0; v < g.node_count(); ++v) {
            for (const NodeId w : g.neighbors(v)) {
              net.send(v, w, Message{.tag = 1, .a = v, .b = w});
            }
          }
          phase_rounds = net.end_phase();
          return static_cast<std::uint64_t>(phase_rounds);
        },
        static_cast<double>(2 * g.edge_count())));
    t.counters.emplace_back("phase_rounds",
                            static_cast<double>(phase_rounds));
  }
  {
    CliqueNetwork net(256, CliqueRoutingMode::lenzen);
    std::int64_t phase_rounds = 0;
    auto& t = report.add(time_kernel(
        "sim_clique_lenzen/n256_20k",
        [&] {
          Rng rng(2);
          net.begin_phase("bench");
          for (int i = 0; i < 20000; ++i) {
            const auto a = static_cast<NodeId>(rng.next_below(256));
            auto b = static_cast<NodeId>(rng.next_below(255));
            if (b >= a) ++b;
            net.send(a, b, Message{.tag = i});
          }
          phase_rounds = net.end_phase();
          return static_cast<std::uint64_t>(phase_rounds);
        },
        20000.0));
    t.counters.emplace_back("phase_rounds",
                            static_cast<double>(phase_rounds));
  }
  {
    Rng rng(3);
    const Graph g = erdos_renyi_gnm(512, 5120, rng);
    double ledger_rounds = 0.0;
    double ledger_msgs = 0.0;
    auto& t = report.add(time_kernel(
        "sim_engine_bfs/er_n512_m5120",
        [&] {
          CongestEngine engine(g, [](NodeId v) {
            return std::make_unique<FloodProgram>(v);
          });
          const auto rounds = engine.run();
          ledger_rounds = engine.ledger().total_rounds();
          ledger_msgs = static_cast<double>(engine.ledger().total_messages());
          return static_cast<std::uint64_t>(rounds);
        },
        static_cast<double>(2 * g.edge_count())));
    t.counters.emplace_back("ledger_total_rounds", ledger_rounds);
    t.counters.emplace_back("ledger_total_messages", ledger_msgs);
  }
}

void enumeration_benchmarks(BenchReport& report, const char* input_name,
                            const Graph& g) {
  for (const int p : {3, 4}) {
    const std::uint64_t cliques = count_k_cliques(g, p);
    {
      auto& t = report.add(time_kernel(
          std::string("count_k_cliques/p=") + std::to_string(p) + "/" +
              input_name,
          [&] { return count_k_cliques(g, p); },
          static_cast<double>(cliques)));
      t.counters.emplace_back("cliques", static_cast<double>(cliques));
    }
    {
      auto& t = report.add(time_kernel(
          std::string("list_k_cliques/p=") + std::to_string(p) + "/" +
              input_name,
          [&] { return static_cast<std::uint64_t>(list_k_cliques(g, p).size()); },
          static_cast<double>(cliques)));
      t.counters.emplace_back("cliques", static_cast<double>(cliques));
    }
  }
}

/// Attaches a machine-readable dcl-run-report to a bench entry: when
/// DCL_BENCH_REPORT_DIR is set, the collector gathered during the entry's
/// untimed reference run is written to <dir>/<name>.report.json (slashes
/// in the entry name become underscores). The timing loops never collect,
/// so attachment cannot perturb the measurement.
void maybe_attach_report(const std::string& entry_name,
                         const TraceCollector& collector,
                         const RoundLedger* ledger) {
  const char* dir = std::getenv("DCL_BENCH_REPORT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string file = entry_name;
  for (char& c : file) {
    if (c == '/') c = '_';
  }
  const std::string path = std::string(dir) + "/" + file + ".report.json";
  std::ofstream out(path);
  if (!out) return;
  write_run_report(out, collector, ledger, entry_name);
}

void list_kp_benchmark(BenchReport& report, const char* input_name,
                       const Graph& g, int p, double stop_scale = 0.1) {
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = 7;
  cfg.stop_scale = stop_scale;  // drive the iterated pipeline, not just the
                                // final broadcast, so the masks and dedup
                                // paths are hot
  const std::string suffix =
      std::string("/p=") + std::to_string(p) + "/" + input_name;
  // One fixed-seed reference run: the ledger totals are the cost-model
  // fingerprint that perf refactors must keep bit-identical. It runs under
  // a collector (collection is non-perturbing — the teleoff A/B entries
  // prove it) so the entry can attach a run report.
  TraceCollector ref_trace;
  const KpListResult ref = [&] {
    TelemetryScope scope(ref_trace);
    return list_kp(g, cfg);
  }();
  maybe_attach_report("list_kp" + suffix, ref_trace, &ref.ledger);
  {
    auto& t = report.add(time_kernel(
        "list_kp" + suffix,
        [&] { return list_kp(g, cfg).total_reports; },
        static_cast<double>(ref.unique_cliques)));
    t.counters.emplace_back("ledger_total_rounds", ref.total_rounds());
    t.counters.emplace_back("unique_cliques",
                            static_cast<double>(ref.unique_cliques));
    t.counters.emplace_back("total_reports",
                            static_cast<double>(ref.total_reports));
  }
  {
    // The same end-to-end run at 4 shards. DCL_THREADS is a pure speed
    // knob, so this entry's counters must be bit-identical to the
    // single-thread entry above — committing both makes the thread
    // invariance part of the CI-enforced fingerprint surface, and the
    // ns_per_op gap is the measured cluster-parallel speedup.
    const int previous = shard_threads();
    set_shard_threads(4);
    TraceCollector ref4_trace;
    const KpListResult ref4 = [&] {  // counters from a 4-shard run
      TelemetryScope scope(ref4_trace);
      return list_kp(g, cfg);
    }();
    maybe_attach_report("list_kp_t4" + suffix, ref4_trace, &ref4.ledger);
    auto& t = report.add(time_kernel(
        "list_kp_t4" + suffix,
        [&] { return list_kp(g, cfg).total_reports; },
        static_cast<double>(ref4.unique_cliques)));
    set_shard_threads(previous);
    t.counters.emplace_back("ledger_total_rounds", ref4.total_rounds());
    t.counters.emplace_back("unique_cliques",
                            static_cast<double>(ref4.unique_cliques));
    t.counters.emplace_back("total_reports",
                            static_cast<double>(ref4.total_reports));
  }
}

/// Folds a 64-bit fingerprint into 32 bits so the JSON double (%.17g)
/// round-trips it bit-exactly (doubles hold integers < 2^53 exactly).
double fold_fingerprint(std::uint64_t fp) {
  return static_cast<double>((fp ^ (fp >> 32)) & 0xffffffffULL);
}

/// Telemetry A/B: the same fixed-seed list_kp run with the observability
/// plane disabled (A: no collector installed — every probe is one relaxed
/// atomic load) and enabled (B: a TraceCollector installed around each
/// run). Mirrors fault_plane_ab_benchmark: the committed counters — ledger
/// totals, folded clique fingerprints, and the explicit ab_*_equal flags —
/// prove the instrumented pipeline's cost model and output are
/// bit-identical with telemetry on and off, and the ns_per_op gap measures
/// what collection (B) and the disabled probes (A) actually cost.
void telemetry_ab_benchmark(BenchReport& report) {
  Rng rng(17);
  const Graph g = erdos_renyi_gnm(140, 3200, rng);
  KpConfig cfg;
  cfg.p = 4;
  cfg.seed = 7;
  cfg.stop_scale = 0.1;

  ListingOutput out_a(g.node_count());
  const KpListResult ref_a = list_kp_collect(g, cfg, out_a);

  TraceCollector collector;
  ListingOutput out_b(g.node_count());
  const KpListResult ref_b = [&] {
    TelemetryScope scope(collector);
    return list_kp_collect(g, cfg, out_b);
  }();
  const bool ledgers_equal = [&] {
    const auto& ea = ref_a.ledger.entries();
    const auto& eb = ref_b.ledger.entries();
    if (ea.size() != eb.size()) return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (ea[i].label != eb[i].label || ea[i].rounds != eb[i].rounds ||
          ea[i].messages != eb[i].messages) {
        return false;
      }
    }
    return true;
  }();
  const bool fingerprints_equal =
      out_a.cliques().fingerprint() == out_b.cliques().fingerprint();
  maybe_attach_report("list_kp_teleoff_b/p=4/er_n140_m3200", collector,
                      &ref_b.ledger);

  {
    auto& t = report.add(time_kernel(
        "list_kp_teleoff_a/p=4/er_n140_m3200",
        [&] { return list_kp(g, cfg).total_reports; },
        static_cast<double>(ref_a.unique_cliques)));
    t.counters.emplace_back("ledger_total_rounds", ref_a.total_rounds());
    t.counters.emplace_back("unique_cliques",
                            static_cast<double>(ref_a.unique_cliques));
    t.counters.emplace_back("fingerprint_fold32",
                            fold_fingerprint(out_a.cliques().fingerprint()));
  }
  {
    auto& t = report.add(time_kernel(
        "list_kp_teleoff_b/p=4/er_n140_m3200",
        [&] {
          TraceCollector per_run;
          TelemetryScope scope(per_run);
          return list_kp(g, cfg).total_reports;
        },
        static_cast<double>(ref_b.unique_cliques)));
    t.counters.emplace_back("ledger_total_rounds", ref_b.total_rounds());
    t.counters.emplace_back("unique_cliques",
                            static_cast<double>(ref_b.unique_cliques));
    t.counters.emplace_back("fingerprint_fold32",
                            fold_fingerprint(out_b.cliques().fingerprint()));
    t.counters.emplace_back("span_count",
                            static_cast<double>(collector.spans().size()));
    t.counters.emplace_back("ab_ledgers_equal", ledgers_equal ? 1.0 : 0.0);
    t.counters.emplace_back("ab_fingerprints_equal",
                            fingerprints_equal ? 1.0 : 0.0);
  }
}

/// Fault-plane A/B: the same fixed-seed list_kp run with cfg.faults left
/// null (A) and with an *inert* FaultPlan attached (B). The two entries are
/// measured back to back on the identical input (re-run either alone via
/// DCL_BENCH_FILTER=list_kp_faultoff for a tighter interleave); their
/// counters — ledger totals, clique counts, folded clique fingerprints, and
/// the explicit ab_*_equal flags — are committed to BENCH_core.json, so CI
/// enforces bit-identical cost models and the ns_per_op gap measures what
/// the disabled hooks cost (expected: nothing).
void fault_plane_ab_benchmark(BenchReport& report) {
  Rng rng(16);
  const Graph g = erdos_renyi_gnm(140, 3200, rng);
  KpConfig cfg_a;
  cfg_a.p = 4;
  cfg_a.seed = 7;
  cfg_a.stop_scale = 0.1;
  FaultPlan inert;  // default spec: enabled() == false, every hook dormant
  KpConfig cfg_b = cfg_a;
  cfg_b.faults = &inert;

  ListingOutput out_a(g.node_count());
  const KpListResult ref_a = list_kp_collect(g, cfg_a, out_a);
  ListingOutput out_b(g.node_count());
  const KpListResult ref_b = list_kp_collect(g, cfg_b, out_b);
  const bool ledgers_equal = [&] {
    const auto& ea = ref_a.ledger.entries();
    const auto& eb = ref_b.ledger.entries();
    if (ea.size() != eb.size()) return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (ea[i].label != eb[i].label || ea[i].rounds != eb[i].rounds ||
          ea[i].messages != eb[i].messages) {
        return false;
      }
    }
    return true;
  }();
  const bool fingerprints_equal =
      out_a.cliques().fingerprint() == out_b.cliques().fingerprint();

  {
    auto& t = report.add(time_kernel(
        "list_kp_faultoff_a/p=4/er_n140_m3200",
        [&] { return list_kp(g, cfg_a).total_reports; },
        static_cast<double>(ref_a.unique_cliques)));
    t.counters.emplace_back("ledger_total_rounds", ref_a.total_rounds());
    t.counters.emplace_back("unique_cliques",
                            static_cast<double>(ref_a.unique_cliques));
    t.counters.emplace_back("fingerprint_fold32",
                            fold_fingerprint(out_a.cliques().fingerprint()));
  }
  {
    auto& t = report.add(time_kernel(
        "list_kp_faultoff_b/p=4/er_n140_m3200",
        [&] { return list_kp(g, cfg_b).total_reports; },
        static_cast<double>(ref_b.unique_cliques)));
    t.counters.emplace_back("ledger_total_rounds", ref_b.total_rounds());
    t.counters.emplace_back("unique_cliques",
                            static_cast<double>(ref_b.unique_cliques));
    t.counters.emplace_back("fingerprint_fold32",
                            fold_fingerprint(out_b.cliques().fingerprint()));
    t.counters.emplace_back("retry_rounds", ref_b.ledger.retry_rounds());
    t.counters.emplace_back("ab_ledgers_equal", ledgers_equal ? 1.0 : 0.0);
    t.counters.emplace_back("ab_fingerprints_equal",
                            fingerprints_equal ? 1.0 : 0.0);
  }
}

/// Batch-dynamic maintenance vs from-scratch recompute on the identical
/// update stream — the amortization claim of docs/PERFORMANCE.md, plus
/// fixed-seed delta fingerprints (clique totals, CliqueSet fingerprint,
/// arboricity witness) that must stay bit-identical across perf PRs.
void dynamic_benchmarks(BenchReport& report) {
  const int p = 4;
  Rng stream_rng(5);
  const UpdateStream stream = churn_stream(512, 8192, 48, 24, stream_rng);
  const Graph initial = Graph::from_edges(stream.n, stream.initial);
  const auto batches = static_cast<double>(stream.batches.size());

  // One reference replay for the fingerprint counters (collected, so the
  // entry can attach a run report; the dynamic engine is purely local —
  // no ledger section).
  std::uint64_t added_total = 0, removed_total = 0;
  TraceCollector churn_trace;
  DynamicLister ref(initial, p);
  {
    TelemetryScope scope(churn_trace);
    for (const UpdateBatch& b : stream.batches) {
      ref.apply(b);
      added_total += ref.last_stats().cliques_added;
      removed_total += ref.last_stats().cliques_removed;
    }
  }
  maybe_attach_report("dyn_churn_apply/p=4/n512_m8192_b48", churn_trace,
                      nullptr);

  {
    auto& t = report.add(time_kernel(
        "dyn_churn_apply/p=4/n512_m8192_b48",
        [&] {
          DynamicLister lister(initial, p);
          std::uint64_t acc = 0;
          for (const UpdateBatch& b : stream.batches) {
            lister.apply(b);
            acc += lister.last_stats().cliques_added;
          }
          return acc ^ lister.fingerprint();
        },
        batches));
    t.counters.emplace_back("clique_count",
                            static_cast<double>(ref.clique_count()));
    t.counters.emplace_back("fingerprint_fold32",
                            fold_fingerprint(ref.fingerprint()));
    t.counters.emplace_back("cliques_added_total",
                            static_cast<double>(added_total));
    t.counters.emplace_back("cliques_removed_total",
                            static_cast<double>(removed_total));
    t.counters.emplace_back(
        "arboricity_witness",
        static_cast<double>(ref.last_stats().arboricity_witness));
  }
  {
    // The from-scratch alternative: apply the updates structurally, then
    // re-enumerate and rebuild the clique set at every checkpoint.
    auto& t = report.add(time_kernel(
        "dyn_churn_recompute/p=4/n512_m8192_b48",
        [&] {
          DynamicGraph g = DynamicGraph::from_graph(initial);
          std::uint64_t acc = 0;
          for (const UpdateBatch& b : stream.batches) {
            for (const Edge& e : b.erase) g.erase_edge(e.u, e.v);
            for (const Edge& e : b.insert) g.insert_edge(e.u, e.v);
            CliqueSet set;
            const auto all = list_k_cliques(g.snapshot(), p);
            set.reserve(all.size());
            for (const auto& c : all) set.insert(c);
            acc = set.size() ^ set.fingerprint();
          }
          return acc;
        },
        batches));
    t.counters.emplace_back("clique_count",
                            static_cast<double>(ref.clique_count()));
  }
  {
    // Second family for fingerprint surface: sliding-window growth and
    // expiry (batch sizes well above churn's, different delta shape;
    // p = 3 — the window graph's density regime).
    const int wp = 3;
    Rng window_rng(6);
    const UpdateStream window = sliding_window_stream(400, 24, 600, 4,
                                                      window_rng);
    const Graph window_initial = Graph::from_edges(window.n, window.initial);
    std::uint64_t w_added = 0, w_removed = 0;
    TraceCollector window_trace;
    DynamicLister w_ref(window_initial, wp);
    {
      TelemetryScope scope(window_trace);
      for (const UpdateBatch& b : window.batches) {
        w_ref.apply(b);
        w_added += w_ref.last_stats().cliques_added;
        w_removed += w_ref.last_stats().cliques_removed;
      }
    }
    maybe_attach_report("dyn_window_apply/p=3/n400_b24_w4", window_trace,
                        nullptr);
    auto& t = report.add(time_kernel(
        "dyn_window_apply/p=3/n400_b24_w4",
        [&] {
          DynamicLister lister(window_initial, wp);
          std::uint64_t acc = 0;
          for (const UpdateBatch& b : window.batches) {
            lister.apply(b);
            acc += lister.last_stats().cliques_removed;
          }
          return acc ^ lister.fingerprint();
        },
        static_cast<double>(window.batches.size())));
    t.counters.emplace_back("clique_count",
                            static_cast<double>(w_ref.clique_count()));
    t.counters.emplace_back("fingerprint_fold32",
                            fold_fingerprint(w_ref.fingerprint()));
    t.counters.emplace_back("cliques_added_total",
                            static_cast<double>(w_added));
    t.counters.emplace_back("cliques_removed_total",
                            static_cast<double>(w_removed));
  }
}

int run(const char* out_path) {
  BenchReport report("bench_core");

  Rng er_rng(1);
  const Graph er2000 = erdos_renyi_gnm(2000, 30000, er_rng);
  enumeration_benchmarks(report, "er_n2000_m30000", er2000);

  Rng planted_rng(2);
  const Graph planted = planted_clique(2000, 24, 0.01, planted_rng).graph;
  enumeration_benchmarks(report, "planted_n2000_k24", planted);

  Rng kp_rng(3);
  const Graph kp_input = erdos_renyi_gnm(140, 3200, kp_rng);
  list_kp_benchmark(report, "er_n140_m3200", kp_input, 4);
  Rng kp5_rng(4);
  const Graph kp5_input = erdos_renyi_gnm(120, 2200, kp5_rng);
  list_kp_benchmark(report, "er_n120_m2200", kp5_input, 5);
  // Multi-cluster instance: the ER inputs above decompose into ONE
  // cluster, so they cannot exercise the cluster-parallel ARB-LIST tail.
  // The ring-of-cliques workload splits into 8 clusters in the first
  // iteration — the shape the per-cluster sharding (and its fingerprint
  // surface) actually covers.
  Rng ring_rng(13);
  const Graph ring_input = ring_of_cliques_workload(480, ring_rng, 8);
  list_kp_benchmark(report, "ring8_n480", ring_input, 4);
  // The q=1 one-huge-cluster regime at real scale: this ER input
  // decomposes into a SINGLE cluster, so the cluster-level sharding above
  // has nothing to split — the entry covers the two-level scheduler's
  // intra-cluster representative-range shards instead (stop_scale 0.01
  // forces the iterated pipeline at n=2000; the default 0.1 threshold
  // stops before ARB-LIST on this input). Its t4 twin pins the
  // thread-invariance fingerprint for exactly the regime ISSUE 6 cracked.
  Rng q1_rng(14);
  const Graph q1_input = erdos_renyi_gnm(2000, 30000, q1_rng);
  list_kp_benchmark(report, "er1c_n2000_m30000", q1_input, 4, 0.01);

  fault_plane_ab_benchmark(report);
  telemetry_ab_benchmark(report);
  simulator_benchmarks(report);
  dynamic_benchmarks(report);

  return finish_report(report, out_path);
}

}  // namespace
}  // namespace dcl::bench

int main(int argc, char** argv) {
  return dcl::bench::bench_main(argc, argv, dcl::bench::run);
}

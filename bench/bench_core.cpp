// bench_core — the perf trajectory baseline (see docs/PERFORMANCE.md).
//
// Times the hot kernels every listing algorithm runs on (sequential
// enumeration over ER and planted-clique inputs) plus the end-to-end
// distributed Kp lister, and records fixed-seed round-ledger totals so a
// refactor can prove it changed *speed* without changing the *cost model*:
// the counters in the emitted JSON must stay bit-identical across perf PRs.
//
// Usage: bench_core [--out FILE]    (FILE defaults to "-" = stdout table +
// no JSON; tools/run_bench.sh writes BENCH_core.json). The timing loop is
// shrunk for CI smoke runs via DCL_BENCH_REPS / DCL_BENCH_MIN_MS.
#include <cstring>

#include "bench_util.h"
#include "core/kp_lister.h"
#include "enumeration/clique_enumeration.h"
#include "graph/generators.h"

namespace dcl::bench {
namespace {

void enumeration_benchmarks(BenchReport& report, const char* input_name,
                            const Graph& g) {
  for (const int p : {3, 4}) {
    const std::uint64_t cliques = count_k_cliques(g, p);
    {
      auto& t = report.add(time_kernel(
          std::string("count_k_cliques/p=") + std::to_string(p) + "/" +
              input_name,
          [&] { return count_k_cliques(g, p); },
          static_cast<double>(cliques)));
      t.counters.emplace_back("cliques", static_cast<double>(cliques));
    }
    {
      auto& t = report.add(time_kernel(
          std::string("list_k_cliques/p=") + std::to_string(p) + "/" +
              input_name,
          [&] { return static_cast<std::uint64_t>(list_k_cliques(g, p).size()); },
          static_cast<double>(cliques)));
      t.counters.emplace_back("cliques", static_cast<double>(cliques));
    }
  }
}

void list_kp_benchmark(BenchReport& report, const char* input_name,
                       const Graph& g, int p) {
  KpConfig cfg;
  cfg.p = p;
  cfg.seed = 7;
  cfg.stop_scale = 0.1;  // drive the iterated pipeline, not just the final
                         // broadcast, so the masks and dedup paths are hot
  // One fixed-seed reference run: the ledger totals are the cost-model
  // fingerprint that perf refactors must keep bit-identical.
  const KpListResult ref = list_kp(g, cfg);
  auto& t = report.add(time_kernel(
      std::string("list_kp/p=") + std::to_string(p) + "/" + input_name,
      [&] { return list_kp(g, cfg).total_reports; },
      static_cast<double>(ref.unique_cliques)));
  t.counters.emplace_back("ledger_total_rounds", ref.total_rounds());
  t.counters.emplace_back("unique_cliques",
                          static_cast<double>(ref.unique_cliques));
  t.counters.emplace_back("total_reports",
                          static_cast<double>(ref.total_reports));
}

int run(const char* out_path) {
  BenchReport report("bench_core");

  Rng er_rng(1);
  const Graph er2000 = erdos_renyi_gnm(2000, 30000, er_rng);
  enumeration_benchmarks(report, "er_n2000_m30000", er2000);

  Rng planted_rng(2);
  const Graph planted = planted_clique(2000, 24, 0.01, planted_rng).graph;
  enumeration_benchmarks(report, "planted_n2000_k24", planted);

  Rng kp_rng(3);
  const Graph kp_input = erdos_renyi_gnm(140, 3200, kp_rng);
  list_kp_benchmark(report, "er_n140_m3200", kp_input, 4);
  Rng kp5_rng(4);
  const Graph kp5_input = erdos_renyi_gnm(120, 2200, kp5_rng);
  list_kp_benchmark(report, "er_n120_m2200", kp5_input, 5);

  return finish_report(report, out_path);
}

}  // namespace
}  // namespace dcl::bench

int main(int argc, char** argv) {
  return dcl::bench::bench_main(argc, argv, dcl::bench::run);
}

// E7 — ablations of the three novelties §1.2 claims.
//
// (a) Bad-edge removal (Challenge 1): with it off, cluster nodes with many
//     C-light neighbors must learn far more outside edges — we report the
//     max learned-edge count (the Remark 2.10 quantity) and the light-list
//     exchange rounds with the mechanism on vs off, on a skewed-degree
//     power-law workload where bad nodes actually arise.
// (b) Sparsity-aware in-cluster listing (Challenge 2): measured loads vs
//     the oblivious worst-case schedule a non-sparsity-aware lister needs.
// (c) Heavy/light threshold: sweep of heavy_scale showing the trade
//     between heavy shipping chunks and light-list sizes.
#include <cstdio>

#include "bench_util.h"
#include "core/kp_lister.h"

namespace dcl {
namespace {

KpListResult run(const Graph& g, KpConfig cfg) {
  cfg.stop_scale = 0.15;
  cfg.seed = 5;
  return list_kp(g, cfg);
}

std::int64_t max_learned(const KpListResult& r) {
  std::int64_t best = 0;
  for (const auto& t : r.arb_traces) {
    best = std::max(best, t.max_learned_edges);
  }
  return best;
}

double label_rounds(const KpListResult& r, const char* label) {
  const auto by_label = r.ledger.rounds_by_label();
  const auto it = by_label.find(label);
  return it == by_label.end() ? 0.0 : it->second;
}

}  // namespace
}  // namespace dcl

int main() {
  using namespace dcl;
  std::printf("E7: ablations of the paper's §1.2 design choices.\n");
  const NodeId n = 362;

  {
    std::printf("\n(a) bad-edge removal on/off (core+periphery workload, "
                "bad_scale 0.02):\n");
    Rng rng(1);
    const Graph g = bench::periphery_workload(n, rng);
    Table table({"bad edges", "total rounds", "light-bcast rounds",
                 "max learned", "bad edges moved"});
    for (const bool enabled : {true, false}) {
      KpConfig cfg;
      cfg.p = 4;
      cfg.enable_bad_edges = enabled;
      cfg.bad_scale = 0.02;  // engages the mechanism at this n (see README)
      cfg.coupling_scale = 0.25;
      const auto r = run(g, cfg);
      std::int64_t bad = 0;
      for (const auto& t : r.arb_traces) bad += t.bad_edges;
      table.row()
          .add(enabled ? "on" : "off")
          .add(r.total_rounds(), 1)
          .add(label_rounds(r, "light-list-broadcast"), 1)
          .add(max_learned(r))
          .add(bad);
    }
    table.print();
  }

  {
    std::printf("\n(b) sparsity-aware vs oblivious in-cluster listing:\n");
    Rng rng(2);
    const Graph g = bench::power_workload(n, 1.0, 1.5, rng);
    Table table({"in-cluster mode", "total rounds",
                 "edge-distribution rounds"});
    for (const auto mode : {InClusterChargeMode::measured,
                            InClusterChargeMode::worst_case}) {
      KpConfig cfg;
      cfg.p = 4;
      cfg.in_cluster_charge = mode;
      const auto r = run(g, cfg);
      table.row()
          .add(mode == InClusterChargeMode::measured ? "sparsity-aware"
                                                     : "oblivious")
          .add(r.total_rounds(), 1)
          .add(label_rounds(r, "edge-distribution (T2.4)"), 1);
    }
    table.print();
  }

  {
    std::printf("\n(c) heavy/light threshold sweep (threshold = scale · "
                "n^{1/4}):\n");
    Rng rng(3);
    const Graph g = bench::periphery_workload(n, rng);
    Table table({"heavy_scale", "total rounds", "heavy-ship rounds",
                 "light-bcast rounds", "max learned"});
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      KpConfig cfg;
      cfg.p = 4;
      cfg.heavy_scale = scale;
      cfg.coupling_scale = 0.25;
      const auto r = run(g, cfg);
      table.row()
          .add(scale, 2)
          .add(r.total_rounds(), 1)
          .add(label_rounds(r, "heavy-edge-shipping"), 1)
          .add(label_rounds(r, "light-list-broadcast"), 1)
          .add(max_learned(r));
    }
    table.print();
  }
  return 0;
}
